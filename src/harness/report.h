/**
 * @file
 * Reporting utilities: aligned text tables, ASCII bar charts and CSV
 * emission for the figure/table regeneration binaries.
 */

#ifndef VCB_HARNESS_REPORT_H
#define VCB_HARNESS_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace vcb::harness {

/** A simple aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    /** Render with column alignment and a header rule. */
    std::string render() const;
    /** Render as CSV (no alignment, comma-escaped). */
    std::string csv() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Horizontal ASCII bar chart: one row per (label, value), bars scaled
 * to max_width characters against the maximum value.  Used to render
 * the figures' shape directly in the terminal.
 */
std::string barChart(const std::vector<std::pair<std::string, double>>
                         &bars,
                     const std::string &unit, size_t max_width = 48);

/** Format a double with given precision. */
std::string fmtF(double v, int precision = 2);

} // namespace vcb::harness

#endif // VCB_HARNESS_REPORT_H

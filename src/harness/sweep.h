/**
 * @file
 * Sweep executor: run a flat plan of independent cells on a pool of
 * isolated engine sessions.
 *
 * The report book, vcb_perf --suite and vcb_load's in-process mode all
 * reduce to the same shape: a statically enumerable list of
 * (device × benchmark × API × size × strategy) cells whose results are
 * pure functions of their inputs — every number they produce comes
 * from simulated clocks, never from wall time.  runSweepPlan()
 * executes such a plan on `jobs` worker threads, each owning a private
 * ScopedDeviceRegistry session (device state, compile-cache stats and
 * samplers never cross-contaminate) with nested dispatch parallelism
 * forced serial (ThreadPool::ScopedSerial) so outer × inner fan-out
 * cannot oversubscribe the machine.  Because cells are independent and
 * deterministic, and callers merge results by plan position, output is
 * byte-identical at ANY job count — jobs only moves wall time.
 *
 * Caller contract:
 *  - Preallocate one result slot per cell; the cell function writes
 *    only its own slot.  Merging in plan order is then structural.
 *  - Resolve devices INSIDE the cell against the worker's registry
 *    (sim::activeDeviceRegistry()[i]); never capture DeviceSpec
 *    references across the plan/execute boundary.  The Vulkan
 *    front-end resolves specs by object identity, so a cell must use
 *    the executing thread's own copy.
 */

#ifndef VCB_HARNESS_SWEEP_H
#define VCB_HARNESS_SWEEP_H

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/device.h"

namespace vcb::harness {

/** How a sweep plan is executed. */
struct SweepOptions
{
    /**
     * Worker sessions: 0 = resolve from VCB_REPORT_JOBS, falling back
     * to the hardware concurrency.  Workers are spawned even at
     * jobs = 1 so the execution environment (private registry, serial
     * inner dispatch) is identical at every job count.
     */
    unsigned jobs = 0;

    /**
     * Registry installed in every worker session.  Empty = snapshot
     * the calling thread's activeDeviceRegistry() at execution start;
     * workers always run under a private copy either way.
     */
    std::vector<sim::DeviceSpec> devices;

    /**
     * Force nested dispatch parallelism serial inside cells (the
     * VCB_THREADS=1 rule).  Defaults on whenever jobs > 1; the
     * VCB_SWEEP_INNER=pool environment override keeps the inner
     * thread-pool fan-out even under a parallel sweep.
     */
    bool innerSerial = true;
};

/** Wall/sim-time ledger of one executed plan. */
struct SweepStats
{
    unsigned jobs = 1;    ///< Worker sessions actually used.
    size_t cells = 0;     ///< Plan length.
    double wallMs = 0.0;  ///< Whole-plan wall time (spawn..join).
    /** Per-cell wall time, plan order. */
    std::vector<double> cellWallMs;
    /** Per-cell simulator time (engine dispatch wall on the worker). */
    std::vector<double> cellSimMs;
    /** Executing worker slot per cell (tests / diagnostics). */
    std::vector<unsigned> cellWorker;
};

/**
 * Job count for a sweep: `requested` when >= 1, else VCB_REPORT_JOBS
 * when set and valid (1..256), else the hardware concurrency (>= 1).
 */
unsigned resolveSweepJobs(unsigned requested);

/**
 * Execute fn(cell) for every cell in [0, cellCount) on a pool of
 * isolated worker sessions (see file comment for the caller
 * contract).  Cells are claimed dynamically in plan order; the call
 * blocks until the whole plan has run.  Exceptions escaping fn are
 * fatal (panic), matching the ThreadPool work-item contract.
 */
SweepStats runSweepPlan(size_t cellCount,
                        const std::function<void(size_t)> &fn,
                        const SweepOptions &opts = {});

} // namespace vcb::harness

#endif // VCB_HARNESS_SWEEP_H

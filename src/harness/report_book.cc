#include "harness/report_book.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>

#include "common/logging.h"
#include "common/strutil.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "sim/device_file.h"
#include "suite/benchmark.h"

namespace vcb::harness {

using sim::Api;

const std::vector<sim::DeviceSpec> &
resolveReportDevices(const std::string &devices_dir)
{
    if (devices_dir.empty())
        return sim::activeDeviceRegistry();
    return sim::setActiveDeviceRegistry(
        sim::loadDeviceDir(devices_dir));
}

std::vector<const sim::DeviceSpec *>
selectDevices(const std::vector<sim::DeviceSpec> &devices, bool mobile)
{
    std::vector<const sim::DeviceSpec *> out;
    for (const auto &d : devices)
        if (d.mobile == mobile)
            out.push_back(&d);
    return out;
}

uint64_t
speedupScale(bool mobile, bool dry)
{
    if (!dry)
        return 1;
    return mobile ? 16 : 64;
}

// ---------------------------------------------------------------------------
// Bandwidth figures (Figs. 1 and 3)
// ---------------------------------------------------------------------------

BandwidthPanel
planBandwidthPanel(const sim::DeviceSpec &dev, bool dry,
                   suite::BandwidthConfig &cfg)
{
    BandwidthPanel panel;
    panel.device = dev.name;
    panel.peakBwGBs = dev.peakBwGBs;

    if (dev.mobile) {
        panel.strides = {1, 2, 4, 6, 8, 10, 12, 14, 16};
        cfg.threads = dry ? 1024 : 4096;
        cfg.rounds = dry ? 8 : 32;
    } else {
        panel.strides = {1, 4, 8, 12, 16, 20, 24, 28, 32};
        cfg.threads = dry ? 2048 : 16384;
        cfg.rounds = dry ? 8 : 64;
    }
    cfg.repeats = dry ? 1 : 3;

    for (int a = 0; a < sim::apiCount; ++a)
        if (dev.profile(static_cast<Api>(a)).available)
            panel.apiRun[a] = true;
    return panel;
}

void
runBandwidthPanelApi(BandwidthPanel &panel, Api api,
                     const sim::DeviceSpec &dev,
                     const suite::BandwidthConfig &cfg)
{
    panel.points[static_cast<int>(api)] =
        suite::runBandwidthSweep(dev, api, panel.strides, cfg);
}

BandwidthPanel
runBandwidthPanel(const sim::DeviceSpec &dev, bool dry)
{
    suite::BandwidthConfig cfg;
    BandwidthPanel panel = planBandwidthPanel(dev, dry, cfg);
    for (int a = 0; a < sim::apiCount; ++a)
        if (panel.apiRun[a])
            runBandwidthPanelApi(panel, static_cast<Api>(a), dev, cfg);
    return panel;
}

std::string
renderBandwidthSection(const std::vector<BandwidthPanel> &panels,
                       bool mobile, bool dry)
{
    std::string out;
    if (dry)
        out += "(dry run: reduced sizes, figures not "
               "paper-comparable)\n";
    const char *fig = mobile ? "3" : "1";
    for (const BandwidthPanel &panel : panels) {
        out += strprintf("=== Fig. %s: %s (peak %.1f GB/s) ===\n", fig,
                         panel.device.c_str(), panel.peakBwGBs);
        int vk = static_cast<int>(Api::Vulkan);
        std::vector<std::string> headers = {"stride (4B elems)"};
        for (int a = 0; a < sim::apiCount; ++a)
            if (panel.apiRun[a])
                headers.push_back(
                    std::string(sim::apiName(static_cast<Api>(a))) +
                    " GB/s");
        if (panel.apiRun[vk])
            headers.push_back("Vulkan %peak");
        Table table(headers);
        for (size_t i = 0; i < panel.strides.size(); ++i) {
            std::vector<std::string> cells = {
                strprintf("%u", panel.strides[i])};
            for (int a = 0; a < sim::apiCount; ++a)
                if (panel.apiRun[a])
                    cells.push_back(
                        fmtF(panel.points[a][i].gbPerSec, 3));
            if (panel.apiRun[vk])
                cells.push_back(fmtF(panel.points[vk][i].gbPerSec /
                                         panel.peakBwGBs * 100.0,
                                     1));
            table.addRow(cells);
        }
        out += table.render();
        out += "\nunit stride:";
        bool first = true;
        for (int a = 0; a < sim::apiCount; ++a) {
            if (!panel.apiRun[a])
                continue;
            double gbs = panel.points[a][0].gbPerSec;
            out += strprintf("%s %s %.2f GB/s (%.1f%% of peak)",
                             first ? "" : ",",
                             sim::apiName(static_cast<Api>(a)), gbs,
                             gbs / panel.peakBwGBs * 100.0);
            first = false;
        }
        out += "\n\n";
    }
    out += mobile
               ? "paper anchors: Nexus unit stride OpenCL 2.85 GB/s "
                 "(89%) vs Vulkan 2.69 GB/s (84%); Snapdragon Vulkan "
                 "worse below 16 B strides (push-constant rebind "
                 "quirk), converging above\n"
               : "paper anchors: GTX1050Ti unit stride 79.6% (Vulkan) "
                 "/ 84% (CUDA) of the 112 GB/s peak; RX560 71.6% / "
                 "71.5% (Vulkan/OpenCL); Vulkan slightly ahead beyond "
                 "64 B strides on both\n";
    return out;
}

// ---------------------------------------------------------------------------
// Oversubscribed-bandwidth sweep (UVM parts)
// ---------------------------------------------------------------------------

OversubPanel
planOversubPanel(const sim::DeviceSpec &dev, bool dry,
                 suite::OversubConfig &cfg)
{
    OversubPanel panel;
    panel.device = dev.name;
    panel.heapBytes = dev.deviceHeapBytes;
    panel.derate = dev.uvmOversubBwDerate;
    if (!dev.uvmPagingEnabled())
        return panel; // hard-cap part: nothing to sweep
    cfg.factors = {0.5, 0.75, 1.0, 1.25, 1.5, 2.0};
    cfg.rounds = dry ? 8 : 32;
    cfg.repeats = dry ? 1 : 3;
    panel.factors = cfg.factors;
    for (int a = 0; a < sim::apiCount; ++a)
        if (dev.profile(static_cast<Api>(a)).available)
            panel.apiRun[a] = true;
    return panel;
}

void
runOversubPanelApi(OversubPanel &panel, Api api,
                   const sim::DeviceSpec &dev,
                   const suite::OversubConfig &cfg)
{
    panel.points[static_cast<int>(api)] =
        suite::runOversubSweep(dev, api, cfg);
}

std::string
renderOversubSection(const std::vector<OversubPanel> &panels, bool dry)
{
    std::string out;
    out += "Unit-stride read bandwidth as the working set grows past "
           "the modeled\ndevice-local heap on the unified-memory "
           "parts: factors <= 1.0 stay\ndevice-local, factors > 1.0 "
           "page through the shared pool and pay\nfirst-touch "
           "migration plus the oversubscribed-bandwidth derate.  Each\n"
           "factor runs in a fresh context, so points are independent "
           "and the\ncurve is the paging model itself, not allocator "
           "history.\n";
    if (dry)
        out += "(dry run: reduced rounds/repeats; the knee's position "
               "is the point,\nnot the absolute GB/s)\n";
    bool any = false;
    for (const OversubPanel &panel : panels) {
        if (panel.factors.empty())
            continue;
        any = true;
        out += strprintf("\n--- %s (heap %llu KiB, derate %.2f) ---\n",
                         panel.device.c_str(),
                         (unsigned long long)(panel.heapBytes >> 10),
                         panel.derate);
        std::vector<std::string> headers = {"factor", "working set"};
        for (int a = 0; a < sim::apiCount; ++a)
            if (panel.apiRun[a]) {
                std::string api = sim::apiName(static_cast<Api>(a));
                headers.push_back(api + " GB/s");
                headers.push_back(api + " migrated");
                headers.push_back(api + " fault ms");
            }
        Table table(headers);
        for (size_t i = 0; i < panel.factors.size(); ++i) {
            std::vector<std::string> cells = {
                fmtF(panel.factors[i], 2)};
            bool have_ws = false;
            for (int a = 0; a < sim::apiCount; ++a) {
                if (!panel.apiRun[a])
                    continue;
                const suite::OversubPoint &p = panel.points[a][i];
                if (!have_ws) {
                    cells.insert(
                        cells.begin() + 1,
                        strprintf("%llu KiB",
                                  (unsigned long long)(
                                      p.workingSetBytes >> 10)));
                    have_ws = true;
                }
                cells.push_back(fmtF(p.gbPerSec, 3));
                cells.push_back(strprintf(
                    "%llu KiB",
                    (unsigned long long)(p.migratedBytes >> 10)));
                cells.push_back(fmtF(p.faultNs / 1e6, 3));
            }
            if (!have_ws)
                cells.insert(cells.begin() + 1, "-");
            table.addRow(cells);
        }
        out += table.render();
    }
    if (!any)
        out += "\n(no unified-memory parts with uvm_oversubscription "
               "> 1 in the\nregistry — add one under devices/ to "
               "populate this section)\n";
    return out;
}

// ---------------------------------------------------------------------------
// Speedup figures (Figs. 2 and 4)
// ---------------------------------------------------------------------------

std::string
renderSpeedupSection(const std::vector<FigureData> &figures, bool mobile,
                     uint64_t scale)
{
    std::string out;
    if (scale > 1)
        out += strprintf("(dry run: sizes / %llu, figures not "
                         "paper-comparable)\n",
                         (unsigned long long)scale);
    for (const FigureData &fig : figures) {
        for (const auto &skip : fig.wholesaleSkips)
            out += strprintf("skipped wholesale on %s: %s — %s\n",
                             fig.dev->name.c_str(), skip.first.c_str(),
                             skip.second.c_str());
        out += formatSpeedupFigure(fig);
        out += "\n";
        if (!fig.allValidated())
            out += "WARNING: some runs failed validation!\n";
    }
    out += mobile ? "paper anchors: Nexus geomean Vulkan/OpenCL 1.59x; "
                    "Snapdragon 0.83x\n"
                  : "paper anchors: GTX1050Ti geomean Vulkan/OpenCL "
                    "1.66x, Vulkan/CUDA 1.53x; RX560 Vulkan/OpenCL "
                    "1.26x\n";
    return out;
}

// ---------------------------------------------------------------------------
// Tables I–III
// ---------------------------------------------------------------------------

std::string
renderTab1Section()
{
    std::string out = "TABLE I: VComputeBench benchmarks\n\n";
    Table table({"Name", "Application", "Dwarf", "Domain",
                 "Vulkan submit strategies"});
    for (const suite::Benchmark *b : suite::registry()) {
        // The smallest desktop size decides the program shape; the
        // strategy set is a property of the host structure, not the
        // input scale.
        suite::Workload w = b->workload(b->desktopSizes()[0]);
        std::string strategies;
        for (suite::SubmitStrategy s : suite::applicableStrategies(w)) {
            if (!strategies.empty())
                strategies += ", ";
            strategies += suite::strategyName(s);
            if (s == w.preferred)
                strategies += "*";
        }
        table.addRow({b->name(), b->fullName(), b->dwarf(), b->domain(),
                      strategies});
    }
    out += table.render();
    out += "\n(paper Table I lists the first nine rows; srad, kmeans"
           " and streamcluster\nextend the suite with the same"
           " Rodinia-derived methodology.  * = the strategy\nthe"
           " paper's method prefers; every strategy listed for a"
           " benchmark produces\nbit-identical outputs — see"
           " bench/abl_command_buffer and tests/test_workload.)\n";
    return out;
}

std::string
renderTab23Section(const std::vector<sim::DeviceSpec> &devices)
{
    std::string out;
    for (bool mobile : {false, true}) {
        out += mobile
                   ? "TABLE III: Mobile GPUs experimental setup\n\n"
                   : "TABLE II: Desktop GPUs experimental setup\n\n";
        Table table({"Device", "Platform", "OpenCL", "CUDA", "Vulkan",
                     "Heap", "Push"});
        for (const auto &dev : devices) {
            if (dev.mobile != mobile)
                continue;
            auto ver = [&](Api api) {
                const auto &p = dev.profile(api);
                return p.available ? p.version : std::string("-");
            };
            table.addRow(
                {dev.name, dev.platform, ver(Api::OpenCl),
                 ver(Api::Cuda), ver(Api::Vulkan),
                 strprintf("%llu MiB",
                           (unsigned long long)(dev.deviceHeapBytes >>
                                                20)),
                 strprintf("%u B", dev.maxPushBytes)});
        }
        out += table.render();
        out += "\n";
    }
    out += "(the paper's parts are the GTX 1050 Ti, RX 560, Adreno "
           "506 and PowerVR\nG6430; any other row is a post-paper "
           "expansion part defined entirely by\nits spec file under "
           "devices/)\n";
    return out;
}

// ---------------------------------------------------------------------------
// Suite sweep
// ---------------------------------------------------------------------------

bool
ReportBook::allValidated() const
{
    for (const DeviceReport &report : devices) {
        if (!report.figure.allValidated())
            return false;
        for (const SweepRun &run : report.strategySweep)
            if (run.result.ok && !run.result.validated)
                return false;
        for (const OverlapRun &run : report.overlapSweep)
            if (run.result.ok && !run.result.validated)
                return false;
    }
    return true;
}

ReportBook
buildReportBook(const std::vector<sim::DeviceSpec> &devices, bool dry,
                unsigned jobs)
{
    ReportBook book;
    book.dry = dry;
    book.devices.resize(devices.size());

    // Plan the whole run as independent cells before executing any:
    // every result slot is preallocated on the main thread, each cell
    // writes only its own slot, and the merge is therefore structural
    // (plan order) no matter which worker finishes when.  Cells
    // resolve their device by INDEX against the executing worker's
    // private registry (sim::activeDeviceRegistry()[di]) — the Vulkan
    // front-end resolves specs by object identity, so a cell must use
    // its own session's copy, never the planning-time reference.
    std::vector<std::function<void()>> plan;
    std::vector<std::vector<FigureCell>> fig_cells(devices.size());

    for (size_t di = 0; di < devices.size(); ++di) {
        const sim::DeviceSpec &dev = devices[di];
        DeviceReport &report = book.devices[di];
        report.dev = &dev;

        // Bandwidth sweep: one cell per available API column.
        suite::BandwidthConfig bw_cfg;
        report.bandwidth = planBandwidthPanel(dev, dry, bw_cfg);
        for (int a = 0; a < sim::apiCount; ++a) {
            if (!report.bandwidth.apiRun[a])
                continue;
            Api api = static_cast<Api>(a);
            plan.push_back([&book, di, api, bw_cfg] {
                runBandwidthPanelApi(book.devices[di].bandwidth, api,
                                     sim::activeDeviceRegistry()[di],
                                     bw_cfg);
            });
        }

        // Speedup figure: one cell per (bench x size, API) row slot.
        uint64_t scale = speedupScale(dev.mobile, dry);
        report.figure =
            planSpeedupFigure(dev, dev.mobile, scale, fig_cells[di]);
        for (size_t ci = 0; ci < fig_cells[di].size(); ++ci) {
            plan.push_back([&book, &fig_cells, di, ci] {
                runFigureCell(book.devices[di].figure,
                              fig_cells[di][ci],
                              sim::activeDeviceRegistry()[di]);
            });
        }

        // Oversubscription sweep: one cell per available API column
        // (plans empty on non-UVM parts).
        suite::OversubConfig os_cfg;
        report.oversub = planOversubPanel(dev, dry, os_cfg);
        for (int a = 0; a < sim::apiCount; ++a) {
            if (!report.oversub.apiRun[a])
                continue;
            Api api = static_cast<Api>(a);
            plan.push_back([&book, di, api, os_cfg] {
                runOversubPanelApi(book.devices[di].oversub, api,
                                   sim::activeDeviceRegistry()[di],
                                   os_cfg);
            });
        }

        if (!dev.profile(Api::Vulkan).available)
            continue;

        for (const suite::Benchmark *bench : suite::registry()) {
            auto sizes = bench->sizesFor(dev);
            if (sizes.empty())
                continue;
            suite::SizeConfig cfg = scaleConfig(sizes.front(), scale);
            // One planning-time workload build enumerates the
            // admissible strategies and the dag flag — both are
            // properties of the program shape, not the input scale.
            suite::Workload w = bench->workload(cfg);

            // Vulkan submission-strategy sweep at the smallest size:
            // one cell per admissible strategy.
            for (suite::SubmitStrategy s :
                 suite::applicableStrategies(w)) {
                SweepRun run;
                run.bench = bench->name();
                run.size = sizes.front().label;
                run.api = Api::Vulkan;
                run.strategy = s;
                run.preferred = s == w.preferred;
                size_t slot = report.strategySweep.size();
                report.strategySweep.push_back(std::move(run));
                plan.push_back([&book, di, slot, cfg, s] {
                    SweepRun &out =
                        book.devices[di].strategySweep[slot];
                    suite::WorkloadOptions opts;
                    opts.strategy = s;
                    out.result = suite::byName(out.bench).run(
                        sim::activeDeviceRegistry()[di], Api::Vulkan,
                        cfg, opts);
                });
            }

            // Multi-queue overlap sweep: dag benchmarks at their
            // largest paper size, deliberately NOT dry-shrunk —
            // overlap only shows when per-chunk kernel time dominates
            // per-submit overhead, and a shrunken size would render a
            // flat (misleading) curve.  Simulated runs stay cheap in
            // real time.  One cell per benchmark (not per queue
            // count): the three runs share one full-size workload
            // build, like the serial path always did.
            if (!w.dag)
                continue;
            size_t slot = report.overlapSweep.size();
            for (uint32_t q : {1u, 2u, 4u}) {
                OverlapRun run;
                run.bench = bench->name();
                run.size = sizes.back().label;
                run.queues = q;
                report.overlapSweep.push_back(std::move(run));
            }
            suite::SizeConfig full = sizes.back();
            plan.push_back([&book, di, slot, full] {
                DeviceReport &rep = book.devices[di];
                const sim::DeviceSpec &d =
                    sim::activeDeviceRegistry()[di];
                suite::Workload full_w =
                    suite::byName(rep.overlapSweep[slot].bench)
                        .workload(full);
                for (size_t i = 0; i < 3; ++i) {
                    OverlapRun &out = rep.overlapSweep[slot + i];
                    suite::WorkloadOptions opts;
                    opts.strategy = suite::SubmitStrategy::ReRecord;
                    opts.queueCount = out.queues;
                    out.result =
                        suite::runWorkloadVulkan(full_w, d, opts);
                }
            });
        }
    }

    SweepOptions opts;
    opts.jobs = jobs;
    opts.devices = devices;
    SweepStats stats = runSweepPlan(
        plan.size(), [&plan](size_t cell) { plan[cell](); }, opts);
    book.jobs = stats.jobs;
    book.cells = stats.cells;
    book.sweepWallMs = stats.wallMs;
    for (double ms : stats.cellSimMs)
        book.sweepSimMs += ms;
    return book;
}

std::string
renderStrategySection(const ReportBook &book)
{
    std::string out;
    out += "Every benchmark x admissible Vulkan submission strategy "
           "at the smallest\npaper size (strategies are derived from "
           "the declared program shape;\noutputs are bit-identical "
           "across a benchmark's strategies — the numbers\nbelow "
           "differ only in submission overhead).  * = the workload's "
           "preferred\nstrategy, the one the figures above report.\n";
    for (const DeviceReport &report : book.devices) {
        if (report.strategySweep.empty())
            continue;
        out += strprintf("\n--- %s ---\n", report.dev->name.c_str());
        Table table({"bench", "size", "strategy", "kernel-region ns",
                     "launches", "note"});
        for (const SweepRun &run : report.strategySweep) {
            // Tag the preferred strategy like Table I does.
            std::string name = suite::strategyName(run.strategy);
            if (run.preferred)
                name += "*";
            std::string note;
            if (!run.result.ok)
                note = run.result.skipReason;
            else if (!run.result.validated)
                note = "VALIDATION FAILED";
            table.addRow(
                {run.bench, run.size, name,
                 run.result.ok ? strprintf("%.0f",
                                           run.result.kernelRegionNs)
                               : "-",
                 run.result.ok
                     ? strprintf("%llu", (unsigned long long)
                                             run.result.launches)
                     : "-",
                 note});
        }
        out += table.render();
    }
    return out;
}

std::string
renderOverlapSection(const ReportBook &book)
{
    std::string out;
    out += "The dag workloads (declared per-step dependencies) spread "
           "independent\ndispatch chains across the device's compute "
           "queues, joined by semaphores;\ntransfers ride the transfer "
           "queue.  Outputs are bit-identical at every\nqueue count — "
           "only the simulated timeline moves.  busy/elapsed > 1 is\n"
           "the signature of genuine overlap; parts exposing a single "
           "compute queue\n(the mobiles) show a flat curve by "
           "construction.\n";
    for (const DeviceReport &report : book.devices) {
        if (report.overlapSweep.empty())
            continue;
        out += strprintf("\n--- %s (%u compute queue%s) ---\n",
                         report.dev->name.c_str(),
                         report.dev->computeQueueCount,
                         report.dev->computeQueueCount == 1 ? "" : "s");
        Table table({"bench", "size", "queues", "kernel-region ns",
                     "busy/elapsed", "speedup", "note"});
        std::map<std::string, double> base;
        for (const OverlapRun &run : report.overlapSweep) {
            std::string note;
            if (!run.result.ok)
                note = run.result.skipReason;
            else if (!run.result.validated)
                note = "VALIDATION FAILED";
            if (!run.result.ok) {
                table.addRow({run.bench, run.size,
                              strprintf("%u", run.queues), "-", "-",
                              "-", note});
                continue;
            }
            if (run.queues == 1)
                base[run.bench] = run.result.kernelRegionNs;
            if (note.empty() && run.result.queuesUsed != run.queues)
                note = strprintf("clamped to %u",
                                 run.result.queuesUsed);
            table.addRow(
                {run.bench, run.size, strprintf("%u", run.queues),
                 strprintf("%.0f", run.result.kernelRegionNs),
                 fmtF(run.result.deviceBusyNs /
                          run.result.kernelRegionNs,
                      2),
                 fmtF(base[run.bench] / run.result.kernelRegionNs, 2) +
                     "x",
                 note});
        }
        out += table.render();
    }
    return out;
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

std::string
deviceSlug(const std::string &device_name)
{
    std::string slug;
    for (char c : device_name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            slug += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!slug.empty() && slug.back() != '-')
            slug += '-';
    }
    while (!slug.empty() && slug.back() == '-')
        slug.pop_back();
    return slug.empty() ? "device" : slug;
}

std::string
deviceCsv(const DeviceReport &report)
{
    Table table({"device", "bench", "size", "api", "strategy",
                 "kernel_region_ns", "total_ns", "launches",
                 "migrated_bytes", "fault_ns", "ok", "validated",
                 "note"});
    const std::string &dev = report.dev->name;
    for (const SpeedupRow &row : report.figure.rows) {
        for (int a = 0; a < sim::apiCount; ++a) {
            Api api = static_cast<Api>(a);
            table.addRow(
                {dev, row.bench, row.sizeLabel, sim::apiName(api),
                 row.ok[a] ? row.strategy[a] : "-",
                 row.ok[a] ? strprintf("%.0f", row.ns[a]) : "-",
                 row.ok[a] ? strprintf("%.0f", row.totalNs[a]) : "-",
                 row.ok[a] ? strprintf("%llu", (unsigned long long)
                                                   row.launches[a])
                           : "-",
                 row.ok[a] ? strprintf("%llu",
                                       (unsigned long long)
                                           row.migratedBytes[a])
                           : "-",
                 row.ok[a] ? strprintf("%.0f", row.faultNs[a]) : "-",
                 row.ok[a] ? "true" : "false",
                 row.validated[a] ? "true" : "false", row.skip[a]});
        }
    }
    for (const SweepRun &run : report.strategySweep) {
        const suite::RunResult &r = run.result;
        table.addRow(
            {dev, run.bench, run.size, sim::apiName(run.api),
             suite::strategyName(run.strategy),
             r.ok ? strprintf("%.0f", r.kernelRegionNs) : "-",
             r.ok ? strprintf("%.0f", r.totalNs) : "-",
             r.ok ? strprintf("%llu", (unsigned long long)r.launches)
                  : "-",
             r.ok ? strprintf("%llu",
                              (unsigned long long)r.migratedBytes)
                  : "-",
             r.ok ? strprintf("%.0f", r.faultNs) : "-",
             r.ok ? "true" : "false", r.validated ? "true" : "false",
             r.skipReason});
    }
    return table.csv();
}

namespace {

/** JSON string literal with escaping (quotes, backslashes, control
 *  characters) — spec files accept arbitrary free text for names. */
std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out + "\"";
}

// Shared line emitters: the --suite-json trajectory (suiteJsonLines)
// and the --out artifact (suiteJsonFromBook) must never drift in
// shape, so both build every line through these.

std::string
jsonWholesaleSkipLine(const std::string &bench,
                      const std::string &dev_name,
                      const std::string &reason)
{
    return strprintf("{\"bench\": %s, \"device\": %s, "
                     "\"skipped\": %s}\n",
                     jsonStr(bench).c_str(), jsonStr(dev_name).c_str(),
                     jsonStr(reason).c_str());
}

std::string
jsonSkipLine(const std::string &bench, const std::string &size, Api api,
             const std::string &dev_name, const std::string &reason)
{
    return strprintf("{\"bench\": %s, \"size\": %s, \"api\": \"%s\", "
                     "\"device\": %s, \"skipped\": %s}\n",
                     jsonStr(bench).c_str(), jsonStr(size).c_str(),
                     sim::apiName(api), jsonStr(dev_name).c_str(),
                     jsonStr(reason).c_str());
}

std::string
jsonRunLine(const std::string &bench, const std::string &size, Api api,
            const std::string &dev_name, const std::string &strategy,
            double kernel_ns, double total_ns, uint64_t launches,
            bool validated, uint64_t migrated_bytes, double fault_ns)
{
    return strprintf("{\"bench\": %s, \"size\": %s, \"api\": \"%s\", "
                     "\"device\": %s, \"strategy\": %s, "
                     "\"kernel_region_ns\": %.0f, \"total_ns\": %.0f, "
                     "\"launches\": %llu, \"validated\": %s, "
                     "\"migrated_bytes\": %llu, \"fault_ns\": %.0f}\n",
                     jsonStr(bench).c_str(), jsonStr(size).c_str(),
                     sim::apiName(api), jsonStr(dev_name).c_str(),
                     jsonStr(strategy).c_str(), kernel_ns, total_ns,
                     (unsigned long long)launches,
                     validated ? "true" : "false",
                     (unsigned long long)migrated_bytes, fault_ns);
}

std::string
jsonDeviceSummary(const char *mode, const std::string &dev_name,
                  double kernel_ns, bool validated)
{
    return strprintf("{\"bench\": \"suite\", \"mode\": \"%s\", "
                     "\"device\": %s, \"kernel_region_ns\": %.0f, "
                     "\"validated\": %s}\n",
                     mode, jsonStr(dev_name).c_str(), kernel_ns,
                     validated ? "true" : "false");
}

std::string
jsonSuiteTrailer(const char *mode, size_t device_count, bool validated)
{
    return strprintf("{\"bench\": \"report\", \"mode\": \"%s\", "
                     "\"devices\": %zu, \"validated\": %s}\n",
                     mode, device_count, validated ? "true" : "false");
}

} // namespace

std::string
suiteJsonFromBook(const ReportBook &book)
{
    const char *mode = book.dry ? "dry-run" : "full";
    std::string out;
    bool all_ok = true;
    for (const DeviceReport &report : book.devices) {
        const std::string &dev = report.dev->name;
        for (const auto &skip : report.figure.wholesaleSkips)
            out += jsonWholesaleSkipLine(skip.first, dev, skip.second);
        double device_kernel_ns = 0;
        bool device_ok = true;
        for (const SpeedupRow &row : report.figure.rows) {
            for (int a = 0; a < sim::apiCount; ++a) {
                Api api = static_cast<Api>(a);
                if (!report.dev->profile(api).available)
                    continue;
                if (!row.ok[a]) {
                    out += jsonSkipLine(row.bench, row.sizeLabel, api,
                                        dev, row.skip[a]);
                    continue;
                }
                device_ok = device_ok && row.validated[a];
                device_kernel_ns += row.ns[a];
                out += jsonRunLine(row.bench, row.sizeLabel, api, dev,
                                   row.strategy[a], row.ns[a],
                                   row.totalNs[a], row.launches[a],
                                   row.validated[a],
                                   row.migratedBytes[a],
                                   row.faultNs[a]);
            }
        }
        out += jsonDeviceSummary(mode, dev, device_kernel_ns,
                                 device_ok);
        all_ok = all_ok && device_ok;
    }
    out += jsonSuiteTrailer(mode, book.devices.size(), all_ok);
    return out;
}

namespace {

/** Sweep-executor ledger line: the ONLY wall-clock-derived line in the
 *  --suite-json output (everything above it is simulated and
 *  deterministic), so diff-based consumers filter it with
 *  grep -v '"bench": "sweep"'.  `slowest_cell_ms` is the longest
 *  single cell — the lower bound any job count can reach. */
std::string
jsonSweepLedger(const char *mode, const SweepStats &stats)
{
    double sim_ms = 0, slowest = 0;
    for (double ms : stats.cellSimMs)
        sim_ms += ms;
    for (double ms : stats.cellWallMs)
        slowest = std::max(slowest, ms);
    return strprintf("{\"bench\": \"sweep\", \"mode\": \"%s\", "
                     "\"jobs\": %u, \"cells\": %zu, "
                     "\"sweep_wall_ms\": %.1f, \"sweep_sim_ms\": %.1f, "
                     "\"slowest_cell_ms\": %.1f}\n",
                     mode, stats.jobs, stats.cells, stats.wallMs,
                     sim_ms, slowest);
}

} // namespace

std::string
suiteJsonLines(const std::vector<sim::DeviceSpec> &devices, bool quick,
               bool *all_validated, unsigned jobs)
{
    const char *mode = quick ? "quick" : "full";

    // Plan: one cell per (device, benchmark); each renders its own
    // line chunk and partial sums into a preallocated slot, so the
    // plan-order merge below is byte-identical at any job count.
    struct Chunk
    {
        std::string lines;
        double kernelNs = 0;
        bool ok = true;
    };
    const auto &benches = suite::registry();
    std::vector<Chunk> chunks(devices.size() * benches.size());

    auto run_chunk = [&](size_t cell) {
        size_t di = cell / benches.size();
        const suite::Benchmark *bench = benches[cell % benches.size()];
        const sim::DeviceSpec &dev = sim::activeDeviceRegistry()[di];
        Chunk &out = chunks[cell];
        auto sizes = bench->sizesFor(dev);
        if (sizes.empty()) {
            out.lines =
                jsonWholesaleSkipLine(bench->name(), dev.name,
                                      bench->mobileSkipReason(dev));
            return;
        }
        const suite::SizeConfig &cfg =
            quick ? sizes.front() : sizes.back();
        for (int a = 0; a < sim::apiCount; ++a) {
            Api api = static_cast<Api>(a);
            if (!dev.profile(api).available)
                continue;
            suite::RunResult r = bench->run(dev, api, cfg);
            if (!r.ok) {
                out.lines += jsonSkipLine(bench->name(), cfg.label,
                                          api, dev.name, r.skipReason);
                continue;
            }
            out.ok = out.ok && r.validated;
            out.kernelNs += r.kernelRegionNs;
            out.lines += jsonRunLine(bench->name(), cfg.label, api,
                                     dev.name, r.strategy,
                                     r.kernelRegionNs, r.totalNs,
                                     r.launches, r.validated,
                                     r.migratedBytes, r.faultNs);
        }
    };

    SweepOptions sweep_opts;
    sweep_opts.jobs = jobs;
    sweep_opts.devices = devices;
    SweepStats stats =
        runSweepPlan(chunks.size(), run_chunk, sweep_opts);

    std::string out;
    bool all_ok = true;
    for (size_t di = 0; di < devices.size(); ++di) {
        double device_kernel_ns = 0;
        bool device_ok = true;
        for (size_t bi = 0; bi < benches.size(); ++bi) {
            const Chunk &c = chunks[di * benches.size() + bi];
            out += c.lines;
            device_kernel_ns += c.kernelNs;
            device_ok = device_ok && c.ok;
        }
        out += jsonDeviceSummary(mode, devices[di].name,
                                 device_kernel_ns, device_ok);
        all_ok = all_ok && device_ok;
    }
    out += jsonSuiteTrailer(mode, devices.size(), all_ok);
    out += jsonSweepLedger(mode, stats);
    if (all_validated)
        *all_validated = all_ok;
    return out;
}

// ---------------------------------------------------------------------------
// The Markdown results book
// ---------------------------------------------------------------------------

namespace {

void
addFencedSection(std::string &out, const std::string &heading,
                 const std::string &intro, const std::string &body)
{
    out += "## " + heading + "\n\n";
    if (!intro.empty())
        out += intro + "\n\n";
    out += "```\n";
    out += body;
    if (!body.empty() && body.back() != '\n')
        out += "\n";
    out += "```\n\n";
}

} // namespace

std::string
renderResultsBook(const ReportBook &book)
{
    size_t desktop = 0, mobile = 0;
    for (const DeviceReport &r : book.devices)
        (r.dev->mobile ? mobile : desktop)++;

    std::string out;
    out += "<!-- GENERATED FILE — do not edit by hand.\n"
           "     Regenerate from the repo root with:\n"
           "         build/tools/vcb_report --dry-run > "
           "docs/RESULTS.md\n"
           "     CI and ctest fail when this file drifts from the "
           "committed copy\n"
           "     (tools/check_docs.sh and the check_results_book "
           "test).\n"
           "     The book builds on the sweep executor "
           "(src/harness/sweep.h); every\n"
           "     number comes from simulated clocks, so this file is "
           "byte-identical\n"
           "     at any --jobs / VCB_REPORT_JOBS worker count "
           "(tests/test_sweep.cc\n"
           "     and the CI parallel-identity gate enforce it). "
           "-->\n\n";
    out += "# VComputeBench results book\n\n";
    out += strprintf(
        "One artifact for the paper's whole measurement story: "
        "generated by\n`vcb_report` from the device registry "
        "(%zu devices: %zu desktop, %zu mobile,\nall loaded from "
        "`devices/*.dev` spec files — see "
        "[DEVICE_MODEL.md](DEVICE_MODEL.md)),\nrunning every "
        "registered benchmark under every available API and every\n"
        "admissible Vulkan submission strategy on the simulated "
        "devices\n([ARCHITECTURE.md](ARCHITECTURE.md)).\n\n",
        book.devices.size(), desktop, mobile);
    if (book.dry)
        out += "**Dry-run scale**: sizes are shrunk so CI can "
               "regenerate and diff this\nbook on every build; "
               "numbers exercise the full pipeline but are *not*\n"
               "paper-comparable.  `build/tools/vcb_report --out "
               "report` writes the\npaper-scale artifact tree "
               "(per-device CSVs, suite JSON, this book).\n\n";

    std::string device_list;
    for (const DeviceReport &r : book.devices)
        device_list += strprintf("- %s (%s, %s)\n",
                                 r.dev->name.c_str(),
                                 r.dev->mobile ? "mobile" : "desktop",
                                 r.dev->vendor.c_str());
    out += "Devices, registry order:\n\n" + device_list + "\n";

    addFencedSection(
        out, "Table I — benchmarks and submission strategies",
        "Straight from the suite registry; a new benchmark family "
        "appears here\n(and in every figure below) the moment it "
        "registers.",
        renderTab1Section());

    std::vector<sim::DeviceSpec> specs;
    for (const DeviceReport &r : book.devices)
        specs.push_back(*r.dev);
    addFencedSection(out, "Tables II & III — experimental setup",
                     "From the loaded device registry: the paper's "
                     "four parts plus the\nspec-file-only expansion "
                     "devices.",
                     renderTab23Section(specs));

    std::vector<BandwidthPanel> desktop_bw, mobile_bw;
    std::vector<FigureData> desktop_figs, mobile_figs;
    for (const DeviceReport &r : book.devices) {
        if (r.dev->mobile) {
            mobile_bw.push_back(r.bandwidth);
            mobile_figs.push_back(r.figure);
        } else {
            desktop_bw.push_back(r.bandwidth);
            desktop_figs.push_back(r.figure);
        }
    }

    addFencedSection(
        out, "Figure 1 — strided memory bandwidth, desktop",
        "Useful-byte bandwidth of the strided-read sweep under every "
        "available\nAPI (paper Sec. V-A1).",
        renderBandwidthSection(desktop_bw, false, book.dry));
    addFencedSection(
        out, "Figure 2 — per-benchmark speedups vs OpenCL, desktop",
        "Kernel-region speedups against the OpenCL baseline at the "
        "preferred\nsubmission strategy (paper Sec. V-A2).",
        renderSpeedupSection(desktop_figs, false,
                             speedupScale(false, book.dry)));
    addFencedSection(
        out, "Figure 3 — strided memory bandwidth, mobile",
        "The mobile strided sweep (paper Sec. V-B1); the Snapdragon "
        "push-constant\nquirk shows below 16-byte strides.",
        renderBandwidthSection(mobile_bw, true, book.dry));
    addFencedSection(
        out, "Figure 4 — per-benchmark speedups vs OpenCL, mobile",
        "Mobile speedups with the paper's wholesale skips and driver "
        "failures\nreproduced through the driver profiles (paper "
        "Sec. V-B2).",
        renderSpeedupSection(mobile_figs, true,
                             speedupScale(true, book.dry)));

    addFencedSection(out, "Vulkan submission-strategy sweep",
                     "The report layer's own axis beyond the paper: "
                     "every admissible\nstrategy per benchmark, so "
                     "command-buffer wins/losses are visible\n"
                     "per device.",
                     renderStrategySection(book));

    addFencedSection(out, "Multi-queue overlap curves",
                     "The paper's last recommendation made "
                     "measurable: independent dispatch\nchains "
                     "spread across compute queues (paper Sec. VI-B), "
                     "at paper-scale\nsizes even in the dry book.",
                     renderOverlapSection(book));

    std::vector<OversubPanel> oversub_panels;
    for (const DeviceReport &r : book.devices)
        oversub_panels.push_back(r.oversub);
    addFencedSection(
        out, "Oversubscribed-bandwidth sweep",
        "The unified-memory expansion parts page working sets past "
        "their modeled\ndevice-local heap instead of failing "
        "allocation (the paper's cfd skip\nmade tunable — see "
        "DEVICE_MODEL.md, UVM fields): bandwidth vs\nworking-set "
        "factor, with first-touch migration traffic itemized.",
        renderOversubSection(oversub_panels, book.dry));

    // Geomean summary as a native markdown table.
    out += "## Geomean summary\n\n";
    out += "| device | class | Vulkan/OpenCL | CUDA/OpenCL | "
           "Vulkan/CUDA | validated |\n";
    out += "|---|---|---|---|---|---|\n";
    for (const DeviceReport &r : book.devices) {
        auto fmtx = [](double v) {
            return v > 0 ? strprintf("%.2fx", v) : std::string("-");
        };
        bool has_cuda = r.dev->profile(Api::Cuda).available;
        out += strprintf(
            "| %s | %s | %s | %s | %s | %s |\n", r.dev->name.c_str(),
            r.dev->mobile ? "mobile" : "desktop",
            fmtx(r.figure.geomeanVsOpenCl(Api::Vulkan)).c_str(),
            has_cuda ? fmtx(r.figure.geomeanVsOpenCl(Api::Cuda)).c_str()
                     : "-",
            has_cuda ? fmtx(r.figure.geomeanVulkanVsCuda()).c_str()
                     : "-",
            r.figure.allValidated() ? "yes" : "**NO**");
    }
    out += "\n";
    out += "Figures and tables above are rendered by "
           "`src/harness/report_book.cc`; the\nstandalone "
           "`bench/fig*` and `bench/tab*` binaries print the same "
           "sections\nfrom the same renderers, so they cannot drift "
           "from this book.\n";
    return out;
}

} // namespace vcb::harness

/**
 * @file
 * The report-book layer: one code path that runs every registered
 * benchmark x API x admissible Vulkan submission strategy across a
 * device registry and renders every paper artifact from the result —
 * the fig1–fig4 sections, the tab1–tab3 tables, per-device CSVs, the
 * suite-wide JSON snapshot and the generated Markdown results book
 * (docs/RESULTS.md).
 *
 * The standalone `bench/fig*` / `bench/tab*` binaries are thin
 * wrappers over the same section renderers, so a figure printed on a
 * terminal can never drift from the committed book: both are the same
 * string from the same run.  `tools/vcb_report` is the one-command
 * driver (see its --help for the artifact tree layout).
 *
 * Every number below comes from simulated clocks, so a report built
 * twice from the same tree is byte-identical — which is what lets CI
 * regenerate docs/RESULTS.md and fail on drift.
 */

#ifndef VCB_HARNESS_REPORT_BOOK_H
#define VCB_HARNESS_REPORT_BOOK_H

#include <string>
#include <vector>

#include "harness/figures.h"
#include "sim/device.h"
#include "suite/bandwidth.h"
#include "suite/workload.h"

namespace vcb::harness {

/**
 * Resolve the report's device registry: when `devices_dir` is
 * non-empty, load its spec files and install them as the active
 * registry (sim/device_file.h — the report pipeline's path);
 * otherwise return the current active registry (the compiled-in paper
 * parts by default).  Benchmarks must run against the exact returned
 * objects — the Vulkan front-end resolves devices by identity — so
 * callers keep references, never copies.
 */
const std::vector<sim::DeviceSpec> &
resolveReportDevices(const std::string &devices_dir);

/** Pointers to the mobile (or desktop) subset, registry order. */
std::vector<const sim::DeviceSpec *>
selectDevices(const std::vector<sim::DeviceSpec> &devices, bool mobile);

/** Figure speedup scale divisors (dry-run shrink used by fig2/fig4
 *  --dry-run and the book): desktop 64, mobile 16, 1 when not dry. */
uint64_t speedupScale(bool mobile, bool dry);

// ---------------------------------------------------------------------------
// Bandwidth figures (Figs. 1 and 3)
// ---------------------------------------------------------------------------

/** One device's strided-bandwidth sweep under every available API. */
struct BandwidthPanel
{
    std::string device;
    double peakBwGBs = 0;
    std::vector<uint32_t> strides;
    bool apiRun[sim::apiCount] = {false, false, false};
    std::vector<suite::BandwidthPoint> points[sim::apiCount];
};

/** Run the device's sweep: desktop strides/sizes for desktop parts,
 *  mobile strides/sizes for mobile parts; `dry` shrinks the sweep. */
BandwidthPanel runBandwidthPanel(const sim::DeviceSpec &dev, bool dry);

/** Enumerate the panel without running anything: strides chosen,
 *  apiRun[] marked, `cfg` filled.  One runBandwidthPanelApi call per
 *  marked API — in any order, each writes a disjoint points[] slot —
 *  reproduces runBandwidthPanel() exactly (the sweep-executor split,
 *  see sweep.h). */
BandwidthPanel planBandwidthPanel(const sim::DeviceSpec &dev, bool dry,
                                  suite::BandwidthConfig &cfg);

/** Execute one API column of a planned panel against `dev` (the
 *  EXECUTING thread's registry copy). */
void runBandwidthPanelApi(BandwidthPanel &panel, sim::Api api,
                          const sim::DeviceSpec &dev,
                          const suite::BandwidthConfig &cfg);

/** Render the Fig. 1 (desktop) or Fig. 3 (mobile) section: one panel
 *  per device with per-stride GB/s columns and the unit-stride
 *  percent-of-peak summary the paper anchors on. */
std::string
renderBandwidthSection(const std::vector<BandwidthPanel> &panels,
                       bool mobile, bool dry);

// ---------------------------------------------------------------------------
// Oversubscribed-bandwidth sweep (UVM parts)
// ---------------------------------------------------------------------------

/** One UVM device's oversubscription sweep under every available API:
 *  unit-stride bandwidth over working sets from 0.5x to 2x the
 *  device-local heap, with the paging traffic each point paid. */
struct OversubPanel
{
    std::string device;
    uint64_t heapBytes = 0;
    double derate = 1.0; ///< uvm_oversub_bw_derate, for the header
    std::vector<double> factors;
    bool apiRun[sim::apiCount] = {false, false, false};
    std::vector<suite::OversubPoint> points[sim::apiCount];
};

/** Enumerate the panel without running anything.  Empty factors (and
 *  all-false apiRun[]) on devices without uvmPagingEnabled() — the
 *  sweep only exists for UVM parts.  One runOversubPanelApi call per
 *  marked API, any order, reproduces the serial sweep exactly (the
 *  sweep-executor split, see sweep.h). */
OversubPanel planOversubPanel(const sim::DeviceSpec &dev, bool dry,
                              suite::OversubConfig &cfg);

/** Execute one API column of a planned panel against `dev` (the
 *  EXECUTING thread's registry copy). */
void runOversubPanelApi(OversubPanel &panel, sim::Api api,
                        const sim::DeviceSpec &dev,
                        const suite::OversubConfig &cfg);

/** Render the oversubscription section: one table per UVM device with
 *  per-factor working set, per-API GB/s and paging-traffic columns. */
std::string
renderOversubSection(const std::vector<OversubPanel> &panels, bool dry);

// ---------------------------------------------------------------------------
// Speedup figures (Figs. 2 and 4)
// ---------------------------------------------------------------------------

/** Render the Fig. 2 (desktop) or Fig. 4 (mobile) section from
 *  already-run figures: per-device speedup tables/bar charts, the
 *  wholesale mobile-skip annotations, validation warnings and the
 *  paper's geomean anchors. */
std::string
renderSpeedupSection(const std::vector<FigureData> &figures, bool mobile,
                     uint64_t scale);

// ---------------------------------------------------------------------------
// Tables I–III
// ---------------------------------------------------------------------------

/** Table I: benchmark metadata + admissible submission strategies. */
std::string renderTab1Section();

/** Tables II and III from the given registry (desktop then mobile). */
std::string
renderTab23Section(const std::vector<sim::DeviceSpec> &devices);

// ---------------------------------------------------------------------------
// Suite sweep (CSV / JSON / strategy section)
// ---------------------------------------------------------------------------

/** One benchmark execution within the report sweep. */
struct SweepRun
{
    std::string bench;
    std::string size;
    sim::Api api = sim::Api::Vulkan;
    suite::SubmitStrategy strategy = suite::SubmitStrategy::ReRecord;
    /** This strategy is the workload's preferred one (Table I's *). */
    bool preferred = false;
    suite::RunResult result;
};

/** One cell of the multi-queue overlap sweep. */
struct OverlapRun
{
    std::string bench;
    std::string size;
    uint32_t queues = 1; ///< requested queue count (result.queuesUsed
                         ///< is the device-clamped effective count)
    suite::RunResult result;
};

/** Everything the book reports about one device. */
struct DeviceReport
{
    /** Into the caller's (active-registry) device vector. */
    const sim::DeviceSpec *dev = nullptr;
    /** Bandwidth sweep (Fig. 1/3 panel). */
    BandwidthPanel bandwidth;
    /** Benchmarks x sizes x APIs at the preferred strategy
     *  (Fig. 2/4 figure; desktop sizes for desktop parts). */
    FigureData figure;
    /** Vulkan submission-strategy sweep at the smallest size: one run
     *  per benchmark x applicable strategy. */
    std::vector<SweepRun> strategySweep;
    /** Multi-queue overlap sweep: each dag benchmark at its largest
     *  paper size (never dry-shrunk — overlap needs per-chunk kernel
     *  time to dominate submission overhead) over 1/2/4 compute
     *  queues. */
    std::vector<OverlapRun> overlapSweep;
    /** Oversubscribed-bandwidth sweep (empty factors on non-UVM
     *  parts — the sweep only exists where paging does). */
    OversubPanel oversub;
};

/** The whole report: one DeviceReport per registry device. */
struct ReportBook
{
    std::vector<DeviceReport> devices;
    bool dry = false;

    /**
     * Sweep-executor ledger for the build (sweep.h): wall time only —
     * every number in the book itself comes from simulated clocks, so
     * these fields never appear in the rendered Markdown/CSV output
     * and the book stays byte-identical at any job count.
     */
    unsigned jobs = 1;       ///< Worker sessions used.
    size_t cells = 0;        ///< Plan length.
    double sweepWallMs = 0;  ///< Whole-plan wall time.
    double sweepSimMs = 0;   ///< Sum of per-cell simulator time.

    /** Every executed run validated against its CPU reference. */
    bool allValidated() const;
};

/**
 * Run the full report across `devices` (dry = shrunken sizes) on the
 * sweep executor: the run is enumerated as independent cells and
 * executed on `jobs` isolated engine sessions (0 = VCB_REPORT_JOBS,
 * else hardware concurrency — see sweep.h).  Output is byte-identical
 * at any job count; jobs only moves wall time.
 */
ReportBook buildReportBook(const std::vector<sim::DeviceSpec> &devices,
                           bool dry, unsigned jobs = 0);

/** The Vulkan submission-strategy sweep section of the book. */
std::string renderStrategySection(const ReportBook &book);

/** The multi-queue overlap-curve section of the book. */
std::string renderOverlapSection(const ReportBook &book);

/** Render the whole Markdown results book (docs/RESULTS.md). */
std::string renderResultsBook(const ReportBook &book);

/** Per-device CSV: every figure run and strategy-sweep run. */
std::string deviceCsv(const DeviceReport &report);

/** Filesystem-safe slug for a device's artifact files. */
std::string deviceSlug(const std::string &device_name);

/**
 * The suite-wide JSON snapshot (one object per line — a superset of
 * `vcb_perf --suite` across every device and API): each registry
 * benchmark at its smallest (quick) or largest (full) paper size under
 * every available API at the preferred strategy, then one summary line
 * per device and one suite trailer.  Wall-clock fields are left out on
 * purpose: every value is simulated, so the snapshot is deterministic
 * and diffable (BENCH_report.json).  Runs the benchmarks itself — the
 * standalone `--suite-json` trajectory path.
 *
 * `all_validated`, when non-null, receives the sweep's verdict.
 *
 * Runs on the sweep executor (`jobs` as in buildReportBook); the
 * deterministic lines are byte-identical at any job count.  One
 * trailing ledger line (`"bench": "sweep"` — jobs, cells,
 * sweep_wall_ms, sweep_sim_ms, slowest cell) records the executor's
 * wall-clock trajectory; it is the single wall-clock-derived line in
 * BENCH_report.json, so diff-based consumers filter it
 * (grep -v '"bench": "sweep"' — see .github/workflows/ci.yml and
 * tools/gen_bench_report.sh).
 */
std::string suiteJsonLines(const std::vector<sim::DeviceSpec> &devices,
                           bool quick, bool *all_validated = nullptr,
                           unsigned jobs = 0);

/**
 * The same JSON-lines format rendered from an already-built book (no
 * benchmark re-execution): one line per figure row x available API at
 * the book's scale, skip lines for driver failures and wholesale
 * mobile skips, per-device summaries and the suite trailer.  This is
 * what `vcb_report --out` writes alongside the book so the artifact
 * tree is internally consistent and costs one suite run.
 */
std::string suiteJsonFromBook(const ReportBook &book);

} // namespace vcb::harness

#endif // VCB_HARNESS_REPORT_BOOK_H

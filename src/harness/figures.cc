#include "harness/figures.h"

#include "common/logging.h"
#include "common/mathutil.h"
#include "harness/report.h"

namespace vcb::harness {

using sim::Api;

double
SpeedupRow::speedupVsOpenCl(Api api) const
{
    int a = static_cast<int>(api);
    int base = static_cast<int>(Api::OpenCl);
    if (!ok[a] || !ok[base] || ns[a] <= 0)
        return 0;
    return ns[base] / ns[a];
}

double
FigureData::geomeanVsOpenCl(Api api) const
{
    std::vector<double> speedups;
    for (const auto &row : rows) {
        double s = row.speedupVsOpenCl(api);
        if (s > 0)
            speedups.push_back(s);
    }
    return geomean(speedups);
}

double
FigureData::geomeanVulkanVsCuda() const
{
    std::vector<double> speedups;
    int vk = static_cast<int>(Api::Vulkan);
    int cu = static_cast<int>(Api::Cuda);
    for (const auto &row : rows)
        if (row.ok[vk] && row.ok[cu] && row.ns[vk] > 0)
            speedups.push_back(row.ns[cu] / row.ns[vk]);
    return geomean(speedups);
}

bool
FigureData::allValidated() const
{
    for (const auto &row : rows)
        for (int a = 0; a < sim::apiCount; ++a)
            if (row.ok[a] && !row.validated[a])
                return false;
    return true;
}

suite::SizeConfig
scaleConfig(const suite::SizeConfig &size, uint64_t scale)
{
    suite::SizeConfig cfg = size;
    if (scale > 1)
        for (auto &p : cfg.params)
            // Shrink toward a floor of 32 but never inflate: small
            // parameters (feature counts, iteration counts) pass
            // through unchanged.
            p = std::max<uint64_t>(p / scale,
                                   std::min<uint64_t>(p, 32));
    return cfg;
}

FigureData
planSpeedupFigure(const sim::DeviceSpec &dev, bool mobile,
                  uint64_t scale, std::vector<FigureCell> &cells)
{
    VCB_ASSERT(scale >= 1, "scale must be >= 1");
    FigureData fig;
    fig.dev = &dev;
    fig.mobile = mobile;

    for (const suite::Benchmark *bench : suite::registry()) {
        auto sizes = mobile ? bench->sizesFor(dev)
                            : bench->desktopSizes();
        if (mobile && sizes.empty()) {
            // cfd on hard-cap parts: skipped wholesale (Sec. V-B2);
            // UVM parts page instead and contribute rows.
            std::string reason = bench->mobileSkipReason(dev);
            inform("%s: skipped on %s: %s", bench->name().c_str(),
                   dev.name.c_str(), reason.c_str());
            fig.wholesaleSkips.push_back(
                {bench->name(), std::move(reason)});
            continue;
        }
        for (const auto &size : sizes) {
            SpeedupRow row;
            row.bench = bench->name();
            row.sizeLabel = size.label;
            for (int a = 0; a < sim::apiCount; ++a) {
                Api api = static_cast<Api>(a);
                if (!dev.profile(api).available) {
                    row.skip[a] = "API not available";
                    continue;
                }
                FigureCell cell;
                cell.row = fig.rows.size();
                cell.api = api;
                cell.cfg = scaleConfig(size, scale);
                cells.push_back(std::move(cell));
            }
            fig.rows.push_back(std::move(row));
        }
    }
    return fig;
}

void
runFigureCell(FigureData &fig, const FigureCell &cell,
              const sim::DeviceSpec &dev)
{
    SpeedupRow &row = fig.rows[cell.row];
    const suite::Benchmark &bench = suite::byName(row.bench);
    int a = static_cast<int>(cell.api);
    suite::RunResult r = bench.run(dev, cell.api, cell.cfg);
    row.ok[a] = r.ok;
    row.skip[a] = r.skipReason;
    row.ns[a] = r.kernelRegionNs;
    row.validated[a] = r.validated;
    row.strategy[a] = r.strategy;
    row.totalNs[a] = r.totalNs;
    row.launches[a] = r.launches;
    row.migratedBytes[a] = r.migratedBytes;
    row.faultNs[a] = r.faultNs;
    if (r.ok && !r.validated)
        warn("%s/%s on %s [%s]: validation FAILED: %s",
             row.bench.c_str(), row.sizeLabel.c_str(),
             dev.name.c_str(), sim::apiName(cell.api),
             r.validationError.c_str());
}

FigureData
runSpeedupFigure(const sim::DeviceSpec &dev, bool mobile, uint64_t scale)
{
    std::vector<FigureCell> cells;
    FigureData fig = planSpeedupFigure(dev, mobile, scale, cells);
    for (const FigureCell &cell : cells)
        runFigureCell(fig, cell, dev);
    return fig;
}

std::string
formatSpeedupFigure(const FigureData &fig)
{
    std::string out;
    out += strprintf("=== Speedup vs OpenCL on %s %s===\n",
                     fig.dev->name.c_str(),
                     fig.mobile ? "(mobile figure) " : "");

    bool has_cuda = fig.dev->profile(Api::Cuda).available;
    std::vector<std::string> headers = {"bench", "size", "OpenCL",
                                        "Vulkan", "vk submit"};
    if (has_cuda)
        headers.push_back("CUDA");
    headers.push_back("note");
    Table table(headers);

    std::vector<std::pair<std::string, double>> bars;
    for (const auto &row : fig.rows) {
        std::vector<std::string> cells = {row.bench, row.sizeLabel};
        int cl = static_cast<int>(Api::OpenCl);
        int vk_ix = static_cast<int>(Api::Vulkan);
        cells.push_back(row.ok[cl] ? "1.00" : "-");
        double vk = row.speedupVsOpenCl(Api::Vulkan);
        cells.push_back(vk > 0 ? fmtF(vk) : "-");
        cells.push_back(row.ok[vk_ix] ? row.strategy[vk_ix] : "-");
        if (has_cuda) {
            double cu = row.speedupVsOpenCl(Api::Cuda);
            cells.push_back(cu > 0 ? fmtF(cu) : "-");
        }
        std::string note;
        for (int a = 0; a < sim::apiCount; ++a)
            if (!row.ok[a] && !row.skip[a].empty() &&
                row.skip[a] != "API not available")
                note += std::string(sim::apiName(static_cast<Api>(a))) +
                        ": " + row.skip[a] + " ";
        cells.push_back(note);
        table.addRow(cells);
        if (vk > 0)
            bars.push_back({row.bench + "/" + row.sizeLabel, vk});
    }
    out += table.render();
    out += "\nVulkan speedup vs OpenCL (shape of the figure):\n";
    out += barChart(bars, "x");
    out += strprintf("\ngeomean Vulkan vs OpenCL: %.2fx\n",
                     fig.geomeanVsOpenCl(Api::Vulkan));
    if (has_cuda) {
        out += strprintf("geomean CUDA   vs OpenCL: %.2fx\n",
                         fig.geomeanVsOpenCl(Api::Cuda));
        out += strprintf("geomean Vulkan vs CUDA  : %.2fx\n",
                         fig.geomeanVulkanVsCuda());
    }
    return out;
}

} // namespace vcb::harness

/**
 * @file
 * Figure orchestration: runs the whole suite on a device under every
 * available API and aggregates the paper's speedup metrics.  Shared by
 * the bench/ binaries that regenerate Figs. 2 and 4 and by the
 * integration tests that assert the figures' shape.
 */

#ifndef VCB_HARNESS_FIGURES_H
#define VCB_HARNESS_FIGURES_H

#include <string>
#include <vector>

#include "sim/device.h"
#include "suite/benchmark.h"

namespace vcb::harness {

/** One benchmark x size entry of a speedup figure. */
struct SpeedupRow
{
    std::string bench;
    std::string sizeLabel;
    /** Kernel-region ns per API (index by static_cast<int>(Api)). */
    double ns[sim::apiCount] = {0, 0, 0};
    bool ok[sim::apiCount] = {false, false, false};
    std::string skip[sim::apiCount];
    bool validated[sim::apiCount] = {false, false, false};
    /** End-to-end ns and launch counts (report-book CSV columns). */
    double totalNs[sim::apiCount] = {0, 0, 0};
    uint64_t launches[sim::apiCount] = {0, 0, 0};
    /** Submission strategy each API's run used (RunResult::strategy):
     *  the Vulkan column reports which command-buffer strategy
     *  produced its number. */
    std::string strategy[sim::apiCount];
    /** UVM paging traffic of each API's run (0 off paging devices). */
    uint64_t migratedBytes[sim::apiCount] = {0, 0, 0};
    double faultNs[sim::apiCount] = {0, 0, 0};

    /** Speedup of `api` relative to the OpenCL baseline (the paper's
     *  convention); 0 when either side is missing. */
    double speedupVsOpenCl(sim::Api api) const;
};

/** A full figure: all benchmarks x sizes on one device. */
struct FigureData
{
    const sim::DeviceSpec *dev = nullptr;
    bool mobile = false;
    std::vector<SpeedupRow> rows;
    /** Benchmarks skipped wholesale on THIS device (bench name,
     *  mobileSkipReason(dev)) — per-device now that UVM parts run
     *  workloads the hard-cap parts cannot. */
    std::vector<std::pair<std::string, std::string>> wholesaleSkips;

    /** Geometric-mean speedup of `api` vs OpenCL over all rows where
     *  both ran (the paper's headline numbers). */
    double geomeanVsOpenCl(sim::Api api) const;
    /** Geometric-mean speedup of Vulkan vs CUDA (GTX1050Ti number). */
    double geomeanVulkanVsCuda() const;
    /** True when every executed run validated against the reference. */
    bool allValidated() const;
};

/**
 * Run every suite benchmark at its desktop or mobile sizes on `dev`
 * under every API the device supports.
 *
 * @param scale optional divisor (>1 shrinks the size parameters for
 *        quick smoke runs; 1 = figure defaults).
 */
FigureData runSpeedupFigure(const sim::DeviceSpec &dev, bool mobile,
                            uint64_t scale = 1);

/** One runnable (row, API) unit of a speedup figure. */
struct FigureCell
{
    size_t row = 0;           ///< Index into FigureData::rows.
    sim::Api api = sim::Api::OpenCl;
    suite::SizeConfig cfg;    ///< Already scaled.
};

/**
 * Enumerate the figure without running anything: rows are created
 * (bench x size, API-unavailable skips prefilled) and one FigureCell
 * per runnable (row, API) pair is appended to `cells`.  Feeding the
 * cells to runFigureCell in any order — including concurrently, since
 * each writes disjoint row slots — reproduces runSpeedupFigure()
 * exactly; the sweep executor (sweep.h) relies on this split.
 */
FigureData planSpeedupFigure(const sim::DeviceSpec &dev, bool mobile,
                             uint64_t scale,
                             std::vector<FigureCell> &cells);

/** Execute one planned cell against `dev` (pass the EXECUTING
 *  thread's registry copy, not the planning-time spec), writing the
 *  row's per-API slots. */
void runFigureCell(FigureData &fig, const FigureCell &cell,
                   const sim::DeviceSpec &dev);

/** Shrink a size configuration by `scale` toward a floor of 32
 *  (small parameters pass through unchanged) — the fig2/fig4 --dry-run
 *  and report-book scaling rule. */
suite::SizeConfig scaleConfig(const suite::SizeConfig &size,
                              uint64_t scale);

/** Render a figure as a table plus per-benchmark bar chart. */
std::string formatSpeedupFigure(const FigureData &fig);

} // namespace vcb::harness

#endif // VCB_HARNESS_FIGURES_H

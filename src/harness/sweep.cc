#include "harness/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string_view>
#include <thread>

#include "common/logging.h"
#include "common/threadpool.h"
#include "sim/engine.h"

namespace vcb::harness {

namespace {

/** Same fatal-on-throw contract as ThreadPool work items: a cell that
 *  throws is a harness bug, and letting it escape a worker thread
 *  would std::terminate without context. */
void
runCell(const std::function<void(size_t)> &fn, size_t cell)
{
    try {
        fn(cell);
    } catch (const std::exception &e) {
        panic("exception escaped a sweep cell: %s", e.what());
    } catch (...) {
        panic("unknown exception escaped a sweep cell");
    }
}

/** VCB_SWEEP_INNER=pool keeps nested dispatch fan-out even under a
 *  parallel sweep; anything else (including unset) applies the
 *  serial-inner rule the caller asked for. */
bool
innerPoolOverride()
{
    const char *env = std::getenv("VCB_SWEEP_INNER");
    return env && std::string_view(env) == "pool";
}

} // namespace

unsigned
resolveSweepJobs(unsigned requested)
{
    if (requested >= 1)
        return requested;
    const char *env = std::getenv("VCB_REPORT_JOBS");
    if (env && *env) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v >= 1 && v <= 256)
            return static_cast<unsigned>(v);
        warn("ignoring invalid VCB_REPORT_JOBS='%s' (want 1..256)", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

SweepStats
runSweepPlan(size_t cellCount, const std::function<void(size_t)> &fn,
             const SweepOptions &opts)
{
    using clock = std::chrono::steady_clock;

    SweepStats stats;
    stats.jobs = resolveSweepJobs(opts.jobs);
    stats.cells = cellCount;
    stats.cellWallMs.assign(cellCount, 0.0);
    stats.cellSimMs.assign(cellCount, 0.0);
    stats.cellWorker.assign(cellCount, 0);
    if (cellCount == 0)
        return stats;

    // Workers run under a private copy of the caller's registry by
    // default; cells resolve devices against it by index/name.
    const std::vector<sim::DeviceSpec> &devices =
        opts.devices.empty() ? sim::activeDeviceRegistry() : opts.devices;

    const bool serial_inner =
        opts.innerSerial && stats.jobs > 1 && !innerPoolOverride();

    // Dynamic claim in plan order: slot writes keep the merge
    // structural, so claim order never shows in the output.
    std::atomic<size_t> next{0};
    auto worker_body = [&](unsigned worker) {
        sim::ScopedDeviceRegistry session{devices};
        std::unique_ptr<ThreadPool::ScopedSerial> serial;
        if (serial_inner)
            serial = std::make_unique<ThreadPool::ScopedSerial>();
        for (;;) {
            size_t cell = next.fetch_add(1);
            if (cell >= cellCount)
                break;
            const uint64_t sim0 = sim::dispatchWallNsThisThread();
            const auto t0 = clock::now();
            runCell(fn, cell);
            stats.cellWallMs[cell] =
                std::chrono::duration<double, std::milli>(clock::now() -
                                                          t0)
                    .count();
            stats.cellSimMs[cell] =
                double(sim::dispatchWallNsThisThread() - sim0) / 1e6;
            stats.cellWorker[cell] = worker;
        }
    };

    // Spawn workers even at jobs = 1: every cell then executes in the
    // same environment (fresh thread, private registry) regardless of
    // job count, which is what makes byte-identity across --jobs a
    // structural property instead of a coincidence.
    const auto plan0 = clock::now();
    std::vector<std::thread> workers;
    workers.reserve(stats.jobs);
    for (unsigned w = 0; w < stats.jobs; ++w)
        workers.emplace_back(worker_body, w);
    for (auto &t : workers)
        t.join();
    stats.wallMs =
        std::chrono::duration<double, std::milli>(clock::now() - plan0)
            .count();
    return stats;
}

} // namespace vcb::harness

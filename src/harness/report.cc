#include "harness/report.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strutil.h"

namespace vcb::harness {

Table::Table(std::vector<std::string> hdrs) : headers(std::move(hdrs)) {}

void
Table::addRow(std::vector<std::string> cells)
{
    VCB_ASSERT(cells.size() == headers.size(),
               "row has %zu cells, table has %zu columns", cells.size(),
               headers.size());
    rows.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            out += padRight(cells[c], widths[c]);
            out += (c + 1 < cells.size()) ? "  " : "";
        }
        out += "\n";
    };
    emit(headers);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
    for (const auto &row : rows)
        emit(row);
    return out;
}

std::string
Table::csv() const
{
    auto escape = [](const std::string &s) {
        if (s.find(',') == std::string::npos &&
            s.find('"') == std::string::npos)
            return s;
        std::string q = "\"";
        for (char c : s) {
            if (c == '"')
                q += "\"\"";
            else
                q += c;
        }
        return q + "\"";
    };
    std::string out;
    for (size_t c = 0; c < headers.size(); ++c)
        out += escape(headers[c]) + (c + 1 < headers.size() ? "," : "\n");
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            out += escape(row[c]) + (c + 1 < row.size() ? "," : "\n");
    return out;
}

std::string
barChart(const std::vector<std::pair<std::string, double>> &bars,
         const std::string &unit, size_t max_width)
{
    double max_v = 0;
    size_t label_w = 0;
    for (const auto &[label, v] : bars) {
        max_v = std::max(max_v, v);
        label_w = std::max(label_w, label.size());
    }
    if (max_v <= 0)
        max_v = 1;
    std::string out;
    for (const auto &[label, v] : bars) {
        size_t len = static_cast<size_t>(v / max_v * max_width + 0.5);
        out += padRight(label, label_w) + " |" +
               std::string(len, '#') +
               strprintf(" %.2f %s\n", v, unit.c_str());
    }
    return out;
}

std::string
fmtF(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

} // namespace vcb::harness

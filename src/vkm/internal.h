/**
 * @file
 * vkm implementation structures, shared between the vkm .cc files.
 * Not part of the public API.
 */

#ifndef VCB_VKM_INTERNAL_H
#define VCB_VKM_INTERNAL_H

#include <map>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/kernel.h"
#include "sim/timeline.h"
#include "sim/uvm.h"
#include "vkm/vkm.h"

namespace vcb::vkm {

struct InstanceImpl
{
    bool validation = true;
    std::string applicationName;
    std::vector<PhysicalDevice> physicalDevices;
};

struct PhysicalDeviceImpl
{
    const sim::DeviceSpec *spec = nullptr;
};

struct DeviceImpl
{
    const sim::DeviceSpec *spec = nullptr;
    std::unique_ptr<sim::ExecutionEngine> engine;
    std::unique_ptr<sim::Timeline> timeline;
    /** Bytes currently allocated per heap. */
    std::vector<uint64_t> heapUsed;
    PhysicalDeviceMemoryProperties memProps;
    /** Running counters for tests and tooling. */
    uint64_t submitCount = 0;
    uint64_t dispatchCount = 0;
    /** UVM paging counters (devices with uvmPagingEnabled() only). */
    uint64_t uvmMigratedBytes = 0;
    double uvmFaultNs = 0;
};

struct QueueImpl
{
    DeviceImpl *dev = nullptr;
    uint32_t family = 0;
    uint32_t timelineIndex = 0;
};

struct DeviceMemoryImpl
{
    DeviceImpl *dev = nullptr;
    uint32_t typeIndex = 0;
    uint32_t heapIndex = 0;
    uint64_t size = 0;
    bool hostVisible = false;
    bool mapped = false;
    bool freed = false;
    /** UVM: allocation overflowed the device heap into the shared pool. */
    bool paged = false;
    /** UVM: pages are device-side; host access clears this and the next
     *  device command pays the first-touch migration again. */
    bool resident = false;
    std::vector<uint32_t> words;

    ~DeviceMemoryImpl();
};

struct BufferImpl
{
    DeviceImpl *dev = nullptr;
    uint64_t size = 0;
    uint32_t usage = 0;
    DeviceMemory memory; ///< keeps the allocation alive
    uint64_t offset = 0;
    bool bound = false;

    uint32_t *data() const;
    uint64_t words() const { return size / 4; }
};

struct ShaderModuleImpl
{
    spirv::Module module;
};

struct DescriptorSetLayoutImpl
{
    std::vector<DescriptorSetLayoutBinding> bindings;
};

struct PipelineLayoutImpl
{
    std::vector<DescriptorSetLayout> setLayouts;
    uint32_t pushBytes = 0;
};

struct PipelineImpl
{
    std::unique_ptr<sim::CompiledKernel> kernel;
    PipelineLayout layout;
};

struct DescriptorPoolImpl
{
    uint32_t maxSets = 0;
    uint32_t allocated = 0;
};

struct DescriptorSetImpl
{
    DescriptorSetLayout layout;
    std::map<uint32_t, Buffer> buffers; ///< binding -> buffer
};

struct CommandPoolImpl
{
    DeviceImpl *dev = nullptr;
    uint32_t family = 0;
};

/** One recorded command (fat-struct variant). */
struct Command
{
    enum class Kind
    {
        BindPipeline,
        BindDescriptorSet,
        PushConstants,
        Dispatch,
        Barrier,
        CopyBuffer,
        FillBuffer,
        WriteTimestamp,
    } kind;

    Pipeline pipeline;
    DescriptorSet set;
    uint32_t setIndex = 0;
    uint32_t pushOffsetWords = 0;
    std::vector<uint32_t> pushData;
    uint32_t groups[3] = {1, 1, 1};
    Buffer src, dst;
    uint64_t srcOffset = 0, dstOffset = 0, copySize = 0;
    uint32_t fillValue = 0;
    QueryPool queryPool;
    uint32_t query = 0;
};

struct CommandBufferImpl
{
    DeviceImpl *dev = nullptr;
    bool recording = false;
    bool ended = false;
    std::vector<Command> commands;
};

struct FenceImpl
{
    bool submitted = false;
    double completionNs = 0;
};

struct SemaphoreImpl
{
    /** Binary semaphore: signaled by a submit's completion, consumed by
     *  the first wait.  Waiting while unsignaled is a validation error
     *  (mirroring the never-submitted-fence path in waitForFences). */
    bool signaled = false;
    double timestampNs = 0;
};

struct QueryPoolImpl
{
    std::vector<double> values;
    std::vector<bool> written;
};

/** Shared submit-replay entry point (command.cc). */
Result replaySubmits(QueueImpl *q, const std::vector<SubmitInfo> &submits,
                     Fence fence);

} // namespace vcb::vkm

#endif // VCB_VKM_INTERNAL_H

/**
 * @file
 * Compute pipeline creation: the vkm front-end of the driver compiler.
 */

#include "vkm/internal.h"

#include "common/logging.h"

namespace vcb::vkm {

Result
createComputePipeline(Device dev, const ComputePipelineCreateInfo &info,
                      Pipeline *out)
{
    VCB_ASSERT(dev.valid() && out, "bad createComputePipeline args");
    if (!info.module.valid() || !info.layout.valid()) {
        warn("vkm validation: pipeline created with null module/layout");
        return Result::ErrorValidation;
    }
    DeviceImpl *d = dev.impl();
    const spirv::Module &m = info.module.impl()->module;

    // The pipeline layout must declare at least the bindings and push
    // range the kernel uses.
    uint32_t push_bytes = m.pushWords * 4;
    if (push_bytes > info.layout.impl()->pushBytes) {
        warn("vkm validation: kernel '%s' needs %u push bytes, layout "
             "provides %u",
             m.name.c_str(), push_bytes, info.layout.impl()->pushBytes);
        return Result::ErrorValidation;
    }
    for (const auto &decl : m.bindings) {
        bool found = false;
        for (const auto &sl : info.layout.impl()->setLayouts)
            for (const auto &b : sl.impl()->bindings)
                found = found || b.binding == decl.binding;
        if (!found) {
            warn("vkm validation: kernel '%s' binding %u missing from "
                 "pipeline layout",
                 m.name.c_str(), decl.binding);
            return Result::ErrorValidation;
        }
    }

    std::string err;
    auto kernel = sim::compileKernel(m, *d->spec, sim::Api::Vulkan, &err);
    if (!kernel) {
        warn("vkm: pipeline compilation failed: %s", err.c_str());
        return Result::ErrorInitializationFailed;
    }

    // Pipeline creation runs the driver compiler on the host (this is
    // the cost Vulkan pays once, where OpenCL JIT-compiles at runtime).
    d->timeline->hostAdvance(kernel->compileNs);

    auto impl = std::make_shared<PipelineImpl>();
    impl->kernel = std::move(kernel);
    impl->layout = info.layout;
    *out = Pipeline(impl);
    return Result::Success;
}

} // namespace vcb::vkm

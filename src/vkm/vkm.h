/**
 * @file
 * Vulkan-mini ("vkm"): the Vulkan compute API surface of the simulator.
 *
 * The object model mirrors the compute-relevant subset of Vulkan 1.0
 * one-for-one (see the paper's Listing 1): instances, physical-device
 * enumeration, queue families, logical devices, buffers, device memory
 * with heaps and types, shader modules, descriptor set layouts / pools
 * / sets, pipeline layouts with push-constant ranges, compute
 * pipelines, command pools / buffers, pipeline barriers, queues,
 * fences, semaphores and timestamp query pools.
 *
 * Handles are shared-pointer wrappers (a boxed analogue of Vulkan's
 * dispatchable handles); creation functions return a Result, and the
 * usage errors that real Vulkan leaves to the validation layers are
 * always checked here, yielding Result::ErrorValidation plus a warn()
 * instead of undefined behaviour.
 *
 * Execution semantics: command buffers are *replayed* when submitted;
 * functional effects (kernel execution, copies, fills) happen eagerly
 * at submit while their simulated cost lands on the queue's timeline.
 * Because hosts may only read results after a fence / queue / device
 * wait, eager execution is observationally equivalent to deferred
 * execution for valid programs.
 */

#ifndef VCB_VKM_VKM_H
#define VCB_VKM_VKM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/device.h"
#include "spirv/module.h"

namespace vcb::vkm {

// ---------------------------------------------------------------------------
// Results and flags
// ---------------------------------------------------------------------------

/** API call outcome (subset of VkResult). */
enum class Result
{
    Success = 0,
    ErrorOutOfDeviceMemory,
    ErrorInitializationFailed,
    ErrorInvalidShader,
    ErrorFeatureNotPresent,
    ErrorMemoryMapFailed,
    ErrorValidation,
    NotReady,
};

/** Printable result name. */
const char *resultName(Result r);

/** Abort via fatal() unless r is Success (convenience for examples). */
void check(Result r, const char *what);

/** Buffer usage flags. */
enum BufferUsage : uint32_t
{
    BufferUsageStorage = 1u << 0,
    BufferUsageUniform = 1u << 1,
    BufferUsageTransferSrc = 1u << 2,
    BufferUsageTransferDst = 1u << 3,
};

/** Memory property flags. */
enum MemoryProperty : uint32_t
{
    MemoryDeviceLocal = 1u << 0,
    MemoryHostVisible = 1u << 1,
    MemoryHostCoherent = 1u << 2,
};

/** Queue capability flags. */
enum QueueFlag : uint32_t
{
    QueueCompute = 1u << 0,
    QueueTransfer = 1u << 1,
};

// ---------------------------------------------------------------------------
// Property structs
// ---------------------------------------------------------------------------

struct QueueFamilyProperties
{
    uint32_t queueFlags = 0;
    uint32_t queueCount = 0;
};

struct MemoryType
{
    uint32_t propertyFlags = 0;
    uint32_t heapIndex = 0;
};

struct MemoryHeap
{
    uint64_t size = 0;
};

struct PhysicalDeviceMemoryProperties
{
    std::vector<MemoryType> memoryTypes;
    std::vector<MemoryHeap> memoryHeaps;
};

struct PhysicalDeviceLimits
{
    uint32_t maxPushConstantsSize = 128;
    uint32_t maxComputeWorkGroupInvocations = 1024;
    uint32_t maxBoundDescriptorSets = 4;
};

struct PhysicalDeviceProperties
{
    std::string deviceName;
    std::string vendorName;
    std::string apiVersion;
    bool mobile = false;
    PhysicalDeviceLimits limits;
};

// ---------------------------------------------------------------------------
// Handles (forward declarations of Impls live in internal.h)
// ---------------------------------------------------------------------------

struct InstanceImpl;
struct PhysicalDeviceImpl;
struct DeviceImpl;
struct QueueImpl;
struct DeviceMemoryImpl;
struct BufferImpl;
struct ShaderModuleImpl;
struct DescriptorSetLayoutImpl;
struct PipelineLayoutImpl;
struct PipelineImpl;
struct DescriptorPoolImpl;
struct DescriptorSetImpl;
struct CommandPoolImpl;
struct CommandBufferImpl;
struct FenceImpl;
struct SemaphoreImpl;
struct QueryPoolImpl;

#define VCB_VKM_HANDLE(Name)                                               \
    class Name                                                             \
    {                                                                      \
      public:                                                              \
        Name() = default;                                                  \
        explicit Name(std::shared_ptr<Name##Impl> i) : impl_(i) {}         \
        bool valid() const { return impl_ != nullptr; }                    \
        Name##Impl *impl() const { return impl_.get(); }                   \
        bool operator==(const Name &o) const { return impl_ == o.impl_; } \
        void reset() { impl_.reset(); }                                    \
                                                                           \
      private:                                                             \
        std::shared_ptr<Name##Impl> impl_;                                 \
    }

VCB_VKM_HANDLE(Instance);
VCB_VKM_HANDLE(PhysicalDevice);
VCB_VKM_HANDLE(Device);
VCB_VKM_HANDLE(Queue);
VCB_VKM_HANDLE(DeviceMemory);
VCB_VKM_HANDLE(Buffer);
VCB_VKM_HANDLE(ShaderModule);
VCB_VKM_HANDLE(DescriptorSetLayout);
VCB_VKM_HANDLE(PipelineLayout);
VCB_VKM_HANDLE(Pipeline);
VCB_VKM_HANDLE(DescriptorPool);
VCB_VKM_HANDLE(DescriptorSet);
VCB_VKM_HANDLE(CommandPool);
VCB_VKM_HANDLE(CommandBuffer);
VCB_VKM_HANDLE(Fence);
VCB_VKM_HANDLE(Semaphore);
VCB_VKM_HANDLE(QueryPool);

#undef VCB_VKM_HANDLE

// ---------------------------------------------------------------------------
// Create infos
// ---------------------------------------------------------------------------

struct InstanceCreateInfo
{
    std::string applicationName = "vcb";
    bool enableValidation = true;
};

struct DeviceQueueCreateInfo
{
    uint32_t queueFamilyIndex = 0;
    uint32_t queueCount = 1;
};

struct DeviceCreateInfo
{
    std::vector<DeviceQueueCreateInfo> queueCreateInfos;
};

struct BufferCreateInfo
{
    uint64_t size = 0;   ///< bytes; must be a positive multiple of 4
    uint32_t usage = 0;  ///< BufferUsage flags
};

struct MemoryRequirements
{
    uint64_t size = 0;
    uint64_t alignment = 256;
    uint32_t memoryTypeBits = 0;
};

struct MemoryAllocateInfo
{
    uint64_t allocationSize = 0;
    uint32_t memoryTypeIndex = 0;
};

struct ShaderModuleCreateInfo
{
    /** Serialized kernel IR words (spirv::Module::serialize output). */
    std::vector<uint32_t> code;
};

struct DescriptorSetLayoutBinding
{
    uint32_t binding = 0;
    /** Only storage buffers exist in the compute subset. */
};

struct DescriptorSetLayoutCreateInfo
{
    std::vector<DescriptorSetLayoutBinding> bindings;
};

struct PushConstantRange
{
    uint32_t offset = 0; ///< bytes
    uint32_t size = 0;   ///< bytes
};

struct PipelineLayoutCreateInfo
{
    std::vector<DescriptorSetLayout> setLayouts;
    std::vector<PushConstantRange> pushConstantRanges;
};

struct ComputePipelineCreateInfo
{
    ShaderModule module;
    PipelineLayout layout;
};

struct DescriptorPoolCreateInfo
{
    uint32_t maxSets = 64;
};

struct WriteDescriptorSet
{
    DescriptorSet dstSet;
    uint32_t dstBinding = 0;
    Buffer buffer;
};

struct CommandPoolCreateInfo
{
    uint32_t queueFamilyIndex = 0;
};

struct SubmitInfo
{
    std::vector<Semaphore> waitSemaphores;
    std::vector<CommandBuffer> commandBuffers;
    std::vector<Semaphore> signalSemaphores;
};

struct BufferCopy
{
    uint64_t srcOffset = 0;
    uint64_t dstOffset = 0;
    uint64_t size = 0;
};

struct QueryPoolCreateInfo
{
    uint32_t queryCount = 0;
};

// ---------------------------------------------------------------------------
// Instance-level API
// ---------------------------------------------------------------------------

/** Create an instance (loads the "loader" and the simulated ICDs). */
Result createInstance(const InstanceCreateInfo &info, Instance *out);

/** All physical devices whose driver exposes Vulkan. */
std::vector<PhysicalDevice> enumeratePhysicalDevices(Instance instance);

PhysicalDeviceProperties getPhysicalDeviceProperties(PhysicalDevice pd);
std::vector<QueueFamilyProperties>
getPhysicalDeviceQueueFamilyProperties(PhysicalDevice pd);
PhysicalDeviceMemoryProperties
getPhysicalDeviceMemoryProperties(PhysicalDevice pd);

/** The simulated hardware behind a physical device. */
const sim::DeviceSpec &physicalDeviceSpec(PhysicalDevice pd);

/** Find a memory type with all required property flags among the
 *  allowed bits; returns UINT32_MAX when none qualifies. */
uint32_t findMemoryType(const PhysicalDeviceMemoryProperties &props,
                        uint32_t type_bits, uint32_t required_flags);

// ---------------------------------------------------------------------------
// Device-level API
// ---------------------------------------------------------------------------

Result createDevice(PhysicalDevice pd, const DeviceCreateInfo &info,
                    Device *out);
Queue getDeviceQueue(Device dev, uint32_t family, uint32_t index);

Result createBuffer(Device dev, const BufferCreateInfo &info, Buffer *out);
MemoryRequirements getBufferMemoryRequirements(Device dev, Buffer buf);
Result allocateMemory(Device dev, const MemoryAllocateInfo &info,
                      DeviceMemory *out);
Result bindBufferMemory(Device dev, Buffer buf, DeviceMemory mem,
                        uint64_t offset);
/** Map host-visible memory; fails on desktop device-local types. */
Result mapMemory(Device dev, DeviceMemory mem, uint64_t offset,
                 uint64_t size, void **out);
void unmapMemory(Device dev, DeviceMemory mem);
/** Free explicitly (handles also release on destruction). */
void freeMemory(Device dev, DeviceMemory mem);

/** Size in bytes of a created buffer. */
uint64_t bufferSize(Buffer buf);
/** The memory a buffer is bound to (null handle before binding). */
DeviceMemory bufferMemory(Buffer buf);

Result createShaderModule(Device dev, const ShaderModuleCreateInfo &info,
                          ShaderModule *out);
Result createDescriptorSetLayout(Device dev,
                                 const DescriptorSetLayoutCreateInfo &info,
                                 DescriptorSetLayout *out);
Result createPipelineLayout(Device dev,
                            const PipelineLayoutCreateInfo &info,
                            PipelineLayout *out);
Result createComputePipeline(Device dev,
                             const ComputePipelineCreateInfo &info,
                             Pipeline *out);
Result createDescriptorPool(Device dev,
                            const DescriptorPoolCreateInfo &info,
                            DescriptorPool *out);
Result allocateDescriptorSet(Device dev, DescriptorPool pool,
                             DescriptorSetLayout layout,
                             DescriptorSet *out);
void updateDescriptorSets(Device dev,
                          const std::vector<WriteDescriptorSet> &writes);

Result createCommandPool(Device dev, const CommandPoolCreateInfo &info,
                         CommandPool *out);
Result allocateCommandBuffer(Device dev, CommandPool pool,
                             CommandBuffer *out);
Result createFence(Device dev, Fence *out);
Result createSemaphore(Device dev, Semaphore *out);
Result createQueryPool(Device dev, const QueryPoolCreateInfo &info,
                       QueryPool *out);

// ---------------------------------------------------------------------------
// Command recording
// ---------------------------------------------------------------------------

Result beginCommandBuffer(CommandBuffer cb);
Result endCommandBuffer(CommandBuffer cb);
/** Clear a command buffer for re-recording. */
Result resetCommandBuffer(CommandBuffer cb);

void cmdBindPipeline(CommandBuffer cb, Pipeline pipeline);
void cmdBindDescriptorSet(CommandBuffer cb, PipelineLayout layout,
                          uint32_t set_index, DescriptorSet set);
void cmdPushConstants(CommandBuffer cb, PipelineLayout layout,
                      uint32_t offset_bytes, uint32_t size_bytes,
                      const void *data);
void cmdDispatch(CommandBuffer cb, uint32_t gx, uint32_t gy, uint32_t gz);
/** Compute->compute execution + memory dependency. */
void cmdPipelineBarrier(CommandBuffer cb);
void cmdCopyBuffer(CommandBuffer cb, Buffer src, Buffer dst,
                   const BufferCopy &region);
void cmdFillBuffer(CommandBuffer cb, Buffer dst, uint64_t offset,
                   uint64_t size, uint32_t value);
void cmdWriteTimestamp(CommandBuffer cb, QueryPool pool, uint32_t query);

// ---------------------------------------------------------------------------
// Submission and synchronisation
// ---------------------------------------------------------------------------

Result queueSubmit(Queue queue, const std::vector<SubmitInfo> &submits,
                   Fence fence);
Result queueWaitIdle(Queue queue);
Result deviceWaitIdle(Device dev);
Result waitForFences(Device dev, const std::vector<Fence> &fences);
Result getFenceStatus(Device dev, Fence fence, bool *signaled);
Result resetFences(Device dev, const std::vector<Fence> &fences);

/** Timestamp results in simulated nanoseconds (absolute). */
Result getQueryPoolResults(Device dev, QueryPool pool, uint32_t first,
                           uint32_t count, std::vector<double> *out);

// ---------------------------------------------------------------------------
// Simulated-clock access (the std::chrono analogue)
// ---------------------------------------------------------------------------

/** Simulated host clock of the device's timeline, in ns. */
double hostNowNs(Device dev);

/** Spend host time explicitly (host-side compute in benchmarks). */
void hostAdvanceNs(Device dev, double ns);

/** Total device busy time across every queue of the device's
 *  timeline, in ns.  Busy time is queue-count invariant for the same
 *  work; comparing it against the host makespan quantifies how much
 *  of the submitted work genuinely overlapped. */
double deviceBusyNs(Device dev);

/** Busy time of one queue's clock, in ns. */
double queueBusyNs(Queue queue);

/** Bytes migrated device-ward by UVM first-touch paging so far.
 *  Always 0 on devices without uvmPagingEnabled(). */
uint64_t uvmMigratedBytes(Device dev);

/** Migration + fault time charged to the device by UVM paging, in ns. */
double uvmFaultNs(Device dev);

} // namespace vcb::vkm

#endif // VCB_VKM_VKM_H

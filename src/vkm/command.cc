/**
 * @file
 * Command recording, queue submission (replay), and synchronisation.
 */

#include "vkm/internal.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "sim/timing.h"

namespace vcb::vkm {

namespace {

CommandBufferImpl *
recording(CommandBuffer cb)
{
    VCB_ASSERT(cb.valid(), "null command buffer");
    CommandBufferImpl *impl = cb.impl();
    VCB_ASSERT(impl->recording,
               "command recorded outside begin/endCommandBuffer");
    return impl;
}

} // namespace

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

Result
beginCommandBuffer(CommandBuffer cb)
{
    VCB_ASSERT(cb.valid(), "null command buffer");
    CommandBufferImpl *impl = cb.impl();
    if (impl->recording) {
        warn("vkm validation: beginCommandBuffer on a recording buffer");
        return Result::ErrorValidation;
    }
    impl->recording = true;
    impl->ended = false;
    impl->commands.clear();
    return Result::Success;
}

Result
endCommandBuffer(CommandBuffer cb)
{
    VCB_ASSERT(cb.valid(), "null command buffer");
    CommandBufferImpl *impl = cb.impl();
    if (!impl->recording) {
        warn("vkm validation: endCommandBuffer without begin");
        return Result::ErrorValidation;
    }
    impl->recording = false;
    impl->ended = true;
    return Result::Success;
}

Result
resetCommandBuffer(CommandBuffer cb)
{
    VCB_ASSERT(cb.valid(), "null command buffer");
    cb.impl()->recording = false;
    cb.impl()->ended = false;
    cb.impl()->commands.clear();
    return Result::Success;
}

void
cmdBindPipeline(CommandBuffer cb, Pipeline pipeline)
{
    VCB_ASSERT(pipeline.valid(), "null pipeline");
    Command c;
    c.kind = Command::Kind::BindPipeline;
    c.pipeline = pipeline;
    recording(cb)->commands.push_back(std::move(c));
}

void
cmdBindDescriptorSet(CommandBuffer cb, PipelineLayout layout,
                     uint32_t set_index, DescriptorSet set)
{
    VCB_ASSERT(layout.valid() && set.valid(), "null layout/set");
    Command c;
    c.kind = Command::Kind::BindDescriptorSet;
    c.set = set;
    c.setIndex = set_index;
    recording(cb)->commands.push_back(std::move(c));
}

void
cmdPushConstants(CommandBuffer cb, PipelineLayout layout,
                 uint32_t offset_bytes, uint32_t size_bytes,
                 const void *data)
{
    VCB_ASSERT(layout.valid() && data, "bad cmdPushConstants args");
    VCB_ASSERT(offset_bytes % 4 == 0 && size_bytes % 4 == 0,
               "push constants must be word aligned");
    VCB_ASSERT(offset_bytes + size_bytes <= layout.impl()->pushBytes,
               "push constants exceed the layout's declared range");
    Command c;
    c.kind = Command::Kind::PushConstants;
    c.pushOffsetWords = offset_bytes / 4;
    c.pushData.resize(size_bytes / 4);
    std::memcpy(c.pushData.data(), data, size_bytes);
    recording(cb)->commands.push_back(std::move(c));
}

void
cmdDispatch(CommandBuffer cb, uint32_t gx, uint32_t gy, uint32_t gz)
{
    VCB_ASSERT(gx >= 1 && gy >= 1 && gz >= 1, "zero dispatch size");
    Command c;
    c.kind = Command::Kind::Dispatch;
    c.groups[0] = gx;
    c.groups[1] = gy;
    c.groups[2] = gz;
    recording(cb)->commands.push_back(std::move(c));
}

void
cmdPipelineBarrier(CommandBuffer cb)
{
    Command c;
    c.kind = Command::Kind::Barrier;
    recording(cb)->commands.push_back(std::move(c));
}

void
cmdCopyBuffer(CommandBuffer cb, Buffer src, Buffer dst,
              const BufferCopy &region)
{
    VCB_ASSERT(src.valid() && dst.valid(), "null buffers in copy");
    VCB_ASSERT(src.impl()->usage & BufferUsageTransferSrc,
               "copy source lacks TRANSFER_SRC usage");
    VCB_ASSERT(dst.impl()->usage & BufferUsageTransferDst,
               "copy destination lacks TRANSFER_DST usage");
    VCB_ASSERT(region.srcOffset + region.size <= src.impl()->size &&
                   region.dstOffset + region.size <= dst.impl()->size,
               "copy region out of bounds");
    Command c;
    c.kind = Command::Kind::CopyBuffer;
    c.src = src;
    c.dst = dst;
    c.srcOffset = region.srcOffset;
    c.dstOffset = region.dstOffset;
    c.copySize = region.size;
    recording(cb)->commands.push_back(std::move(c));
}

void
cmdFillBuffer(CommandBuffer cb, Buffer dst, uint64_t offset, uint64_t size,
              uint32_t value)
{
    VCB_ASSERT(dst.valid(), "null buffer in fill");
    VCB_ASSERT(offset % 4 == 0 && size % 4 == 0, "fill must be word aligned");
    VCB_ASSERT(offset + size <= dst.impl()->size, "fill out of bounds");
    Command c;
    c.kind = Command::Kind::FillBuffer;
    c.dst = dst;
    c.dstOffset = offset;
    c.copySize = size;
    c.fillValue = value;
    recording(cb)->commands.push_back(std::move(c));
}

void
cmdWriteTimestamp(CommandBuffer cb, QueryPool pool, uint32_t query)
{
    VCB_ASSERT(pool.valid(), "null query pool");
    VCB_ASSERT(query < pool.impl()->values.size(), "query out of range");
    Command c;
    c.kind = Command::Kind::WriteTimestamp;
    c.queryPool = pool;
    c.query = query;
    recording(cb)->commands.push_back(std::move(c));
}

// ---------------------------------------------------------------------------
// Submission (replay)
// ---------------------------------------------------------------------------

Result
replaySubmits(QueueImpl *q, const std::vector<SubmitInfo> &submits,
              Fence fence)
{
    DeviceImpl *d = q->dev;
    const sim::DeviceSpec &spec = *d->spec;
    const sim::DriverProfile &prof = spec.profile(sim::Api::Vulkan);

    // Host-side submission cost (once per queueSubmit call).
    d->timeline->hostAdvance(prof.submitOverheadNs);
    d->submitCount += 1;

    // Cross-queue waits first.  A binary semaphore must have been
    // signaled by an earlier submission; the wait consumes it.
    for (const auto &submit : submits) {
        for (const auto &sem : submit.waitSemaphores) {
            if (!sem.valid())
                continue;
            if (!sem.impl()->signaled) {
                warn("vkm validation: waiting on a never-signaled "
                     "semaphore");
                return Result::ErrorValidation;
            }
            sem.impl()->signaled = false;
            d->timeline->queueWaitUntil(q->timelineIndex,
                                        sem.impl()->timestampNs);
        }
    }

    double start = std::max(d->timeline->queueReady(q->timelineIndex),
                            d->timeline->hostNow());
    double device_ns = 0;

    // UVM first-touch migration: a paged allocation that is not
    // resident pays its page-in cost ahead of the device command that
    // touches it.  Host access (mapMemory) clears residency again.
    auto migrateIn = [&](DeviceMemoryImpl *m) {
        if (!m || !m->paged || m->resident)
            return;
        double ns = sim::uvmMigrateNs(spec, m->size);
        device_ns += ns;
        m->resident = true;
        d->uvmMigratedBytes += m->size;
        d->uvmFaultNs += ns;
    };
    // While total usage exceeds the device heap, every dispatch runs
    // its DRAM system derated (thrashing migrations steal bandwidth).
    const bool oversubscribed =
        spec.uvmPagingEnabled() && !d->heapUsed.empty() &&
        d->heapUsed[0] > spec.deviceHeapBytes;

    // Bound state during replay — reset per command buffer below
    // (Vulkan command-buffer state never outlives the recording that
    // set it).  `bound_earlier` distinguishes a plain missing bind
    // from state that an earlier command buffer of this batch would
    // have leaked before the per-CB reset existed.
    PipelineImpl *pipeline = nullptr;
    DescriptorSetImpl *sets[4] = {nullptr, nullptr, nullptr, nullptr};
    std::vector<uint32_t> push(64, 0);
    bool bound_earlier = false;

    for (const auto &submit : submits) {
        for (const auto &cbh : submit.commandBuffers) {
            VCB_ASSERT(cbh.valid(), "null command buffer in submit");
            CommandBufferImpl *cb = cbh.impl();
            if (!cb->ended) {
                warn("vkm validation: submitted command buffer was not "
                     "ended");
                return Result::ErrorValidation;
            }
            bound_earlier = bound_earlier || pipeline != nullptr;
            pipeline = nullptr;
            std::fill(std::begin(sets), std::end(sets), nullptr);
            push.assign(64, 0);
            for (const auto &c : cb->commands) {
                switch (c.kind) {
                  case Command::Kind::BindPipeline: {
                    pipeline = c.pipeline.impl();
                    // The replay push buffer must cover the bound
                    // layout's full declared range, which may exceed
                    // the 64-word baseline on big-push devices.
                    uint32_t words =
                        pipeline->layout.impl()->pushBytes / 4;
                    if (words > push.size())
                        push.resize(words, 0);
                    device_ns += prof.bindPipelineNs;
                    break;
                  }
                  case Command::Kind::BindDescriptorSet:
                    VCB_ASSERT(c.setIndex < 4, "set index out of range");
                    sets[c.setIndex] = c.set.impl();
                    device_ns += prof.bindDescSetNs;
                    break;
                  case Command::Kind::PushConstants: {
                    // cmdPushConstants validated against the layout's
                    // range, which can be larger than the buffer sized
                    // so far when the push precedes the pipeline bind.
                    if (c.pushOffsetWords + c.pushData.size() >
                        push.size())
                        push.resize(c.pushOffsetWords + c.pushData.size(),
                                    0);
                    for (size_t i = 0; i < c.pushData.size(); ++i)
                        push[c.pushOffsetWords + i] = c.pushData[i];
                    // Snapdragon quirk: push constants behave like a
                    // storage-buffer rebind (paper Sec. V-B1).
                    device_ns += prof.pushConstantsAsBufferBind
                                     ? prof.bindDescSetNs
                                     : prof.pushConstantNs;
                    break;
                  }
                  case Command::Kind::Dispatch: {
                    if (!pipeline) {
                        warn(bound_earlier
                                 ? "vkm validation: dispatch relies on "
                                   "pipeline state bound in an earlier "
                                   "command buffer (state is per-CB)"
                                 : "vkm validation: dispatch without a "
                                   "bound pipeline");
                        return Result::ErrorValidation;
                    }
                    const sim::CompiledKernel &kernel = *pipeline->kernel;
                    sim::DispatchContext ctx;
                    ctx.kernel = &kernel;
                    ctx.groups[0] = c.groups[0];
                    ctx.groups[1] = c.groups[1];
                    ctx.groups[2] = c.groups[2];
                    ctx.buffers.resize(kernel.module.bindingBound());
                    for (const auto &decl : kernel.module.bindings) {
                        Buffer buf;
                        for (auto *set : sets) {
                            if (!set)
                                continue;
                            auto it = set->buffers.find(decl.binding);
                            if (it != set->buffers.end())
                                buf = it->second;
                        }
                        if (!buf.valid()) {
                            warn("vkm validation: kernel '%s' binding %u "
                                 "has no descriptor bound",
                                 kernel.module.name.c_str(), decl.binding);
                            return Result::ErrorValidation;
                        }
                        migrateIn(buf.impl()->memory.impl());
                        ctx.buffers[decl.binding] = {
                            buf.impl()->data(), buf.impl()->words()};
                    }
                    ctx.push = push.data();
                    ctx.pushWords = static_cast<uint32_t>(push.size());
                    if (oversubscribed)
                        ctx.dramDerate = spec.uvmOversubBwDerate;
                    sim::DispatchResult r = d->engine->dispatch(ctx);
                    device_ns += r.kernelNs;
                    d->dispatchCount += 1;
                    break;
                  }
                  case Command::Kind::Barrier:
                    device_ns += prof.barrierNs;
                    break;
                  case Command::Kind::CopyBuffer: {
                    migrateIn(c.src.impl()->memory.impl());
                    migrateIn(c.dst.impl()->memory.impl());
                    std::memcpy(
                        reinterpret_cast<uint8_t *>(c.dst.impl()->data()) +
                            c.dstOffset,
                        reinterpret_cast<uint8_t *>(c.src.impl()->data()) +
                            c.srcOffset,
                        c.copySize);
                    device_ns +=
                        sim::TimingModel::deviceCopyNs(spec, c.copySize);
                    break;
                  }
                  case Command::Kind::FillBuffer: {
                    migrateIn(c.dst.impl()->memory.impl());
                    uint32_t *p = c.dst.impl()->data() + c.dstOffset / 4;
                    std::fill(p, p + c.copySize / 4, c.fillValue);
                    device_ns += sim::TimingModel::deviceCopyNs(
                                     spec, c.copySize) /
                                 2.0;
                    break;
                  }
                  case Command::Kind::WriteTimestamp: {
                    QueryPoolImpl *pool = c.queryPool.impl();
                    pool->values[c.query] = start + device_ns;
                    pool->written[c.query] = true;
                    break;
                  }
                }
            }
        }
    }

    d->timeline->queueWaitUntil(q->timelineIndex, start);
    double completion = d->timeline->enqueue(q->timelineIndex, device_ns);

    for (const auto &submit : submits) {
        for (const auto &sem : submit.signalSemaphores) {
            if (!sem.valid())
                continue;
            sem.impl()->signaled = true;
            sem.impl()->timestampNs = completion;
        }
    }

    if (fence.valid()) {
        fence.impl()->submitted = true;
        fence.impl()->completionNs = completion;
    }
    return Result::Success;
}

Result
queueSubmit(Queue queue, const std::vector<SubmitInfo> &submits,
            Fence fence)
{
    VCB_ASSERT(queue.valid(), "null queue");
    return replaySubmits(queue.impl(), submits, fence);
}

// ---------------------------------------------------------------------------
// Waits
// ---------------------------------------------------------------------------

Result
queueWaitIdle(Queue queue)
{
    VCB_ASSERT(queue.valid(), "null queue");
    QueueImpl *q = queue.impl();
    const sim::DriverProfile &prof =
        q->dev->spec->profile(sim::Api::Vulkan);
    q->dev->timeline->hostWaitQueue(q->timelineIndex, prof.syncWakeupNs);
    return Result::Success;
}

Result
deviceWaitIdle(Device dev)
{
    VCB_ASSERT(dev.valid(), "null device");
    const sim::DriverProfile &prof =
        dev.impl()->spec->profile(sim::Api::Vulkan);
    dev.impl()->timeline->hostWaitAll(prof.syncWakeupNs);
    return Result::Success;
}

Result
waitForFences(Device dev, const std::vector<Fence> &fences)
{
    VCB_ASSERT(dev.valid(), "null device");
    double latest = 0;
    for (const auto &f : fences) {
        VCB_ASSERT(f.valid(), "null fence");
        if (!f.impl()->submitted) {
            warn("vkm validation: waiting on a never-submitted fence");
            return Result::ErrorValidation;
        }
        latest = std::max(latest, f.impl()->completionNs);
    }
    const sim::DriverProfile &prof =
        dev.impl()->spec->profile(sim::Api::Vulkan);
    dev.impl()->timeline->hostWaitUntil(latest, prof.syncWakeupNs);
    return Result::Success;
}

Result
getFenceStatus(Device dev, Fence fence, bool *signaled)
{
    VCB_ASSERT(dev.valid() && fence.valid() && signaled,
               "bad getFenceStatus args");
    FenceImpl *f = fence.impl();
    *signaled = f->submitted &&
                f->completionNs <= dev.impl()->timeline->hostNow();
    return Result::Success;
}

Result
resetFences(Device dev, const std::vector<Fence> &fences)
{
    VCB_ASSERT(dev.valid(), "null device");
    for (const auto &f : fences) {
        VCB_ASSERT(f.valid(), "null fence");
        f.impl()->submitted = false;
        f.impl()->completionNs = 0;
    }
    return Result::Success;
}

} // namespace vcb::vkm

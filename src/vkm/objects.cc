/**
 * @file
 * vkm object lifecycle: instance, physical/logical devices, memory,
 * buffers, descriptors, pools, fences, semaphores, query pools.
 */

#include "vkm/internal.h"

#include <algorithm>

#include "common/logging.h"

namespace vcb::vkm {

const char *
resultName(Result r)
{
    switch (r) {
      case Result::Success: return "Success";
      case Result::ErrorOutOfDeviceMemory: return "ErrorOutOfDeviceMemory";
      case Result::ErrorInitializationFailed:
        return "ErrorInitializationFailed";
      case Result::ErrorInvalidShader: return "ErrorInvalidShader";
      case Result::ErrorFeatureNotPresent: return "ErrorFeatureNotPresent";
      case Result::ErrorMemoryMapFailed: return "ErrorMemoryMapFailed";
      case Result::ErrorValidation: return "ErrorValidation";
      case Result::NotReady: return "NotReady";
    }
    return "<bad>";
}

void
check(Result r, const char *what)
{
    if (r != Result::Success)
        fatal("%s failed: %s", what, resultName(r));
}

namespace {

Result
validationError(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    warn("vkm validation: %s", msg.c_str());
    return Result::ErrorValidation;
}

PhysicalDeviceMemoryProperties
buildMemoryProperties(const sim::DeviceSpec &spec)
{
    PhysicalDeviceMemoryProperties props;
    if (spec.unifiedMemory) {
        props.memoryHeaps.push_back({spec.deviceHeapBytes});
        props.memoryTypes.push_back(
            {MemoryDeviceLocal | MemoryHostVisible | MemoryHostCoherent,
             0});
    } else {
        props.memoryHeaps.push_back({spec.deviceHeapBytes});
        props.memoryHeaps.push_back({spec.hostVisibleHeapBytes});
        props.memoryTypes.push_back({MemoryDeviceLocal, 0});
        props.memoryTypes.push_back(
            {MemoryHostVisible | MemoryHostCoherent, 1});
    }
    return props;
}

} // namespace

DeviceMemoryImpl::~DeviceMemoryImpl()
{
    if (dev && !freed)
        dev->heapUsed[heapIndex] -= size;
}

uint32_t *
BufferImpl::data() const
{
    VCB_ASSERT(bound && memory.valid(), "buffer used before memory bind");
    return memory.impl()->words.data() + offset / 4;
}

// ---------------------------------------------------------------------------
// Instance
// ---------------------------------------------------------------------------

Result
createInstance(const InstanceCreateInfo &info, Instance *out)
{
    VCB_ASSERT(out, "null out handle");
    auto impl = std::make_shared<InstanceImpl>();
    impl->validation = info.enableValidation;
    impl->applicationName = info.applicationName;
    for (const auto &spec : sim::activeDeviceRegistry()) {
        if (!spec.profile(sim::Api::Vulkan).available)
            continue;
        auto pd = std::make_shared<PhysicalDeviceImpl>();
        pd->spec = &spec;
        impl->physicalDevices.push_back(PhysicalDevice(pd));
    }
    *out = Instance(impl);
    return Result::Success;
}

std::vector<PhysicalDevice>
enumeratePhysicalDevices(Instance instance)
{
    VCB_ASSERT(instance.valid(), "null instance");
    return instance.impl()->physicalDevices;
}

PhysicalDeviceProperties
getPhysicalDeviceProperties(PhysicalDevice pd)
{
    VCB_ASSERT(pd.valid(), "null physical device");
    const sim::DeviceSpec &spec = *pd.impl()->spec;
    PhysicalDeviceProperties props;
    props.deviceName = spec.name;
    props.vendorName = spec.vendor;
    props.apiVersion = spec.profile(sim::Api::Vulkan).version;
    props.mobile = spec.mobile;
    props.limits.maxPushConstantsSize = spec.maxPushBytes;
    props.limits.maxComputeWorkGroupInvocations =
        spec.maxWorkgroupInvocations;
    return props;
}

std::vector<QueueFamilyProperties>
getPhysicalDeviceQueueFamilyProperties(PhysicalDevice pd)
{
    VCB_ASSERT(pd.valid(), "null physical device");
    const sim::DeviceSpec &spec = *pd.impl()->spec;
    std::vector<QueueFamilyProperties> families;
    families.push_back(
        {QueueCompute | QueueTransfer, spec.computeQueueCount});
    families.push_back({QueueTransfer, spec.transferQueueCount});
    return families;
}

PhysicalDeviceMemoryProperties
getPhysicalDeviceMemoryProperties(PhysicalDevice pd)
{
    VCB_ASSERT(pd.valid(), "null physical device");
    return buildMemoryProperties(*pd.impl()->spec);
}

const sim::DeviceSpec &
physicalDeviceSpec(PhysicalDevice pd)
{
    VCB_ASSERT(pd.valid(), "null physical device");
    return *pd.impl()->spec;
}

uint32_t
findMemoryType(const PhysicalDeviceMemoryProperties &props,
               uint32_t type_bits, uint32_t required_flags)
{
    for (uint32_t i = 0; i < props.memoryTypes.size(); ++i) {
        if (!(type_bits & (1u << i)))
            continue;
        if ((props.memoryTypes[i].propertyFlags & required_flags) ==
            required_flags)
            return i;
    }
    return UINT32_MAX;
}

// ---------------------------------------------------------------------------
// Device and queues
// ---------------------------------------------------------------------------

Result
createDevice(PhysicalDevice pd, const DeviceCreateInfo &info, Device *out)
{
    VCB_ASSERT(pd.valid() && out, "bad createDevice arguments");
    const sim::DeviceSpec &spec = *pd.impl()->spec;
    for (const auto &q : info.queueCreateInfos) {
        if (q.queueFamilyIndex > 1)
            return validationError("queue family %u does not exist",
                                   q.queueFamilyIndex);
        uint32_t avail = q.queueFamilyIndex == 0 ? spec.computeQueueCount
                                                 : spec.transferQueueCount;
        if (q.queueCount > avail)
            return validationError(
                "requested %u queues from family %u (%u available)",
                q.queueCount, q.queueFamilyIndex, avail);
    }
    auto impl = std::make_shared<DeviceImpl>();
    impl->spec = &spec;
    impl->engine = std::make_unique<sim::ExecutionEngine>(spec);
    impl->timeline = std::make_unique<sim::Timeline>(
        spec.computeQueueCount + spec.transferQueueCount);
    impl->memProps = buildMemoryProperties(spec);
    impl->heapUsed.assign(impl->memProps.memoryHeaps.size(), 0);
    *out = Device(impl);
    return Result::Success;
}

Queue
getDeviceQueue(Device dev, uint32_t family, uint32_t index)
{
    VCB_ASSERT(dev.valid(), "null device");
    const sim::DeviceSpec &spec = *dev.impl()->spec;
    VCB_ASSERT(family <= 1, "queue family %u does not exist", family);
    uint32_t avail = family == 0 ? spec.computeQueueCount
                                 : spec.transferQueueCount;
    VCB_ASSERT(index < avail, "queue index %u out of range (family %u)",
               index, family);
    auto impl = std::make_shared<QueueImpl>();
    impl->dev = dev.impl();
    impl->family = family;
    impl->timelineIndex =
        family == 0 ? index : spec.computeQueueCount + index;
    return Queue(impl);
}

// ---------------------------------------------------------------------------
// Buffers and memory
// ---------------------------------------------------------------------------

Result
createBuffer(Device dev, const BufferCreateInfo &info, Buffer *out)
{
    VCB_ASSERT(dev.valid() && out, "bad createBuffer arguments");
    if (info.size == 0 || info.size % 4 != 0)
        return validationError("buffer size %llu must be a positive "
                               "multiple of 4",
                               (unsigned long long)info.size);
    if (info.usage == 0)
        return validationError("buffer created with no usage flags");
    auto impl = std::make_shared<BufferImpl>();
    impl->dev = dev.impl();
    impl->size = info.size;
    impl->usage = info.usage;
    *out = Buffer(impl);
    return Result::Success;
}

MemoryRequirements
getBufferMemoryRequirements(Device dev, Buffer buf)
{
    VCB_ASSERT(dev.valid() && buf.valid(), "bad arguments");
    MemoryRequirements reqs;
    reqs.size = (buf.impl()->size + 255) & ~uint64_t(255);
    reqs.alignment = 256;
    reqs.memoryTypeBits =
        (1u << dev.impl()->memProps.memoryTypes.size()) - 1;
    return reqs;
}

Result
allocateMemory(Device dev, const MemoryAllocateInfo &info,
               DeviceMemory *out)
{
    VCB_ASSERT(dev.valid() && out, "bad allocateMemory arguments");
    DeviceImpl *d = dev.impl();
    if (info.memoryTypeIndex >= d->memProps.memoryTypes.size())
        return validationError("memory type %u does not exist",
                               info.memoryTypeIndex);
    const MemoryType &type = d->memProps.memoryTypes[info.memoryTypeIndex];
    const MemoryHeap &heap = d->memProps.memoryHeaps[type.heapIndex];
    const sim::DeviceSpec &spec = *d->spec;
    // UVM devices page past the unified heap into the shared pool, up
    // to uvmCapBytes(); everything else hits the hard heap limit.
    uint64_t cap = heap.size;
    bool unified_heap = spec.unifiedMemory && type.heapIndex == 0;
    if (unified_heap && spec.uvmPagingEnabled())
        cap = spec.uvmCapBytes();
    if (d->heapUsed[type.heapIndex] + info.allocationSize > cap)
        return Result::ErrorOutOfDeviceMemory;

    auto impl = std::make_shared<DeviceMemoryImpl>();
    impl->dev = d;
    impl->typeIndex = info.memoryTypeIndex;
    impl->heapIndex = type.heapIndex;
    impl->size = info.allocationSize;
    impl->hostVisible = (type.propertyFlags & MemoryHostVisible) != 0;
    impl->paged = unified_heap &&
                  d->heapUsed[type.heapIndex] + info.allocationSize >
                      spec.deviceHeapBytes;
    impl->words.assign((info.allocationSize + 3) / 4, 0);
    d->heapUsed[type.heapIndex] += info.allocationSize;
    *out = DeviceMemory(impl);
    return Result::Success;
}

Result
bindBufferMemory(Device dev, Buffer buf, DeviceMemory mem, uint64_t offset)
{
    VCB_ASSERT(dev.valid() && buf.valid() && mem.valid(),
               "bad bindBufferMemory arguments");
    BufferImpl *b = buf.impl();
    if (b->bound)
        return validationError("buffer already bound to memory");
    if (offset % 256 != 0)
        return validationError("bind offset %llu violates alignment 256",
                               (unsigned long long)offset);
    if (offset + b->size > mem.impl()->size)
        return validationError("buffer (%llu B at +%llu) overruns "
                               "allocation of %llu B",
                               (unsigned long long)b->size,
                               (unsigned long long)offset,
                               (unsigned long long)mem.impl()->size);
    b->memory = mem;
    b->offset = offset;
    b->bound = true;
    return Result::Success;
}

Result
mapMemory(Device dev, DeviceMemory mem, uint64_t offset, uint64_t size,
          void **out)
{
    VCB_ASSERT(dev.valid() && mem.valid() && out, "bad mapMemory args");
    DeviceMemoryImpl *m = mem.impl();
    if (!m->hostVisible)
        return Result::ErrorMemoryMapFailed;
    if (m->mapped)
        return validationError("memory already mapped");
    if (offset % 4 != 0 || offset + size > m->size)
        return validationError("map range out of bounds");
    m->mapped = true;
    // Host access evicts paged allocations: the next device command
    // touching this memory pays the first-touch migration again.
    m->resident = false;
    *out = reinterpret_cast<uint8_t *>(m->words.data()) + offset;
    return Result::Success;
}

void
unmapMemory(Device dev, DeviceMemory mem)
{
    VCB_ASSERT(dev.valid() && mem.valid(), "bad unmapMemory args");
    VCB_ASSERT(mem.impl()->mapped, "memory was not mapped");
    mem.impl()->mapped = false;
}

void
freeMemory(Device dev, DeviceMemory mem)
{
    VCB_ASSERT(dev.valid() && mem.valid(), "bad freeMemory args");
    DeviceMemoryImpl *m = mem.impl();
    if (!m->freed) {
        m->dev->heapUsed[m->heapIndex] -= m->size;
        m->freed = true;
        m->words.clear();
        m->words.shrink_to_fit();
    }
}

// ---------------------------------------------------------------------------
// Shader modules, layouts, descriptors
// ---------------------------------------------------------------------------

uint64_t
bufferSize(Buffer buf)
{
    VCB_ASSERT(buf.valid(), "null buffer");
    return buf.impl()->size;
}

DeviceMemory
bufferMemory(Buffer buf)
{
    VCB_ASSERT(buf.valid(), "null buffer");
    return buf.impl()->memory;
}

Result
createShaderModule(Device dev, const ShaderModuleCreateInfo &info,
                   ShaderModule *out)
{
    VCB_ASSERT(dev.valid() && out, "bad createShaderModule arguments");
    if (info.code.empty())
        return Result::ErrorInvalidShader;
    auto impl = std::make_shared<ShaderModuleImpl>();
    impl->module = spirv::Module::deserialize(info.code);
    std::string err;
    if (!spirv::validate(impl->module, &err)) {
        warn("vkm: shader module rejected: %s", err.c_str());
        return Result::ErrorInvalidShader;
    }
    *out = ShaderModule(impl);
    return Result::Success;
}

Result
createDescriptorSetLayout(Device dev,
                          const DescriptorSetLayoutCreateInfo &info,
                          DescriptorSetLayout *out)
{
    VCB_ASSERT(dev.valid() && out, "bad createDescriptorSetLayout args");
    for (size_t i = 0; i < info.bindings.size(); ++i)
        for (size_t j = i + 1; j < info.bindings.size(); ++j)
            if (info.bindings[i].binding == info.bindings[j].binding)
                return validationError("binding %u repeated in layout",
                                       info.bindings[i].binding);
    auto impl = std::make_shared<DescriptorSetLayoutImpl>();
    impl->bindings = info.bindings;
    *out = DescriptorSetLayout(impl);
    return Result::Success;
}

Result
createPipelineLayout(Device dev, const PipelineLayoutCreateInfo &info,
                     PipelineLayout *out)
{
    VCB_ASSERT(dev.valid() && out, "bad createPipelineLayout args");
    uint32_t push_end = 0;
    for (const auto &range : info.pushConstantRanges)
        push_end = std::max(push_end, range.offset + range.size);
    if (push_end > dev.impl()->spec->maxPushBytes)
        return validationError(
            "push-constant range (%u B) exceeds device limit (%u B)",
            push_end, dev.impl()->spec->maxPushBytes);
    auto impl = std::make_shared<PipelineLayoutImpl>();
    impl->setLayouts = info.setLayouts;
    impl->pushBytes = push_end;
    *out = PipelineLayout(impl);
    return Result::Success;
}

Result
createDescriptorPool(Device dev, const DescriptorPoolCreateInfo &info,
                     DescriptorPool *out)
{
    VCB_ASSERT(dev.valid() && out, "bad createDescriptorPool args");
    auto impl = std::make_shared<DescriptorPoolImpl>();
    impl->maxSets = info.maxSets;
    *out = DescriptorPool(impl);
    return Result::Success;
}

Result
allocateDescriptorSet(Device dev, DescriptorPool pool,
                      DescriptorSetLayout layout, DescriptorSet *out)
{
    VCB_ASSERT(dev.valid() && pool.valid() && layout.valid() && out,
               "bad allocateDescriptorSet args");
    DescriptorPoolImpl *p = pool.impl();
    if (p->allocated >= p->maxSets)
        return validationError("descriptor pool exhausted (%u sets)",
                               p->maxSets);
    ++p->allocated;
    auto impl = std::make_shared<DescriptorSetImpl>();
    impl->layout = layout;
    *out = DescriptorSet(impl);
    return Result::Success;
}

void
updateDescriptorSets(Device dev,
                     const std::vector<WriteDescriptorSet> &writes)
{
    VCB_ASSERT(dev.valid(), "null device");
    for (const auto &w : writes) {
        VCB_ASSERT(w.dstSet.valid() && w.buffer.valid(),
                   "write descriptor with null set or buffer");
        VCB_ASSERT(w.buffer.impl()->bound,
                   "descriptor write with unbound buffer");
        DescriptorSetImpl *set = w.dstSet.impl();
        bool declared = false;
        for (const auto &b : set->layout.impl()->bindings)
            declared = declared || b.binding == w.dstBinding;
        VCB_ASSERT(declared, "binding %u not in descriptor set layout",
                   w.dstBinding);
        set->buffers[w.dstBinding] = w.buffer;
    }
}

// ---------------------------------------------------------------------------
// Pools, fences, semaphores, query pools
// ---------------------------------------------------------------------------

Result
createCommandPool(Device dev, const CommandPoolCreateInfo &info,
                  CommandPool *out)
{
    VCB_ASSERT(dev.valid() && out, "bad createCommandPool args");
    if (info.queueFamilyIndex > 1)
        return validationError("queue family %u does not exist",
                               info.queueFamilyIndex);
    auto impl = std::make_shared<CommandPoolImpl>();
    impl->dev = dev.impl();
    impl->family = info.queueFamilyIndex;
    *out = CommandPool(impl);
    return Result::Success;
}

Result
allocateCommandBuffer(Device dev, CommandPool pool, CommandBuffer *out)
{
    VCB_ASSERT(dev.valid() && pool.valid() && out,
               "bad allocateCommandBuffer args");
    auto impl = std::make_shared<CommandBufferImpl>();
    impl->dev = dev.impl();
    *out = CommandBuffer(impl);
    return Result::Success;
}

Result
createFence(Device dev, Fence *out)
{
    VCB_ASSERT(dev.valid() && out, "bad createFence args");
    *out = Fence(std::make_shared<FenceImpl>());
    return Result::Success;
}

Result
createSemaphore(Device dev, Semaphore *out)
{
    VCB_ASSERT(dev.valid() && out, "bad createSemaphore args");
    *out = Semaphore(std::make_shared<SemaphoreImpl>());
    return Result::Success;
}

Result
createQueryPool(Device dev, const QueryPoolCreateInfo &info,
                QueryPool *out)
{
    VCB_ASSERT(dev.valid() && out, "bad createQueryPool args");
    if (info.queryCount == 0)
        return validationError("query pool with zero queries");
    auto impl = std::make_shared<QueryPoolImpl>();
    impl->values.assign(info.queryCount, 0.0);
    impl->written.assign(info.queryCount, false);
    *out = QueryPool(impl);
    return Result::Success;
}

Result
getQueryPoolResults(Device dev, QueryPool pool, uint32_t first,
                    uint32_t count, std::vector<double> *out)
{
    VCB_ASSERT(dev.valid() && pool.valid() && out,
               "bad getQueryPoolResults args");
    QueryPoolImpl *p = pool.impl();
    if (first + count > p->values.size())
        return validationError("query range [%u, %u) out of bounds", first,
                               first + count);
    out->clear();
    for (uint32_t i = first; i < first + count; ++i) {
        if (!p->written[i])
            return Result::NotReady;
        out->push_back(p->values[i]);
    }
    return Result::Success;
}

// ---------------------------------------------------------------------------
// Clock access
// ---------------------------------------------------------------------------

double
hostNowNs(Device dev)
{
    VCB_ASSERT(dev.valid(), "null device");
    return dev.impl()->timeline->hostNow();
}

void
hostAdvanceNs(Device dev, double ns)
{
    VCB_ASSERT(dev.valid(), "null device");
    dev.impl()->timeline->hostAdvance(ns);
}

double
deviceBusyNs(Device dev)
{
    VCB_ASSERT(dev.valid(), "null device");
    return dev.impl()->timeline->busyTotalNs();
}

double
queueBusyNs(Queue queue)
{
    VCB_ASSERT(queue.valid(), "null queue");
    QueueImpl *q = queue.impl();
    return q->dev->timeline->busyNs(q->timelineIndex);
}

uint64_t
uvmMigratedBytes(Device dev)
{
    VCB_ASSERT(dev.valid(), "null device");
    return dev.impl()->uvmMigratedBytes;
}

double
uvmFaultNs(Device dev)
{
    VCB_ASSERT(dev.valid(), "null device");
    return dev.impl()->uvmFaultNs;
}

} // namespace vcb::vkm

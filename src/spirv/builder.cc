#include "spirv/builder.h"

#include <cstring>
#include <limits>

#include "common/logging.h"

namespace vcb::spirv {

namespace {

uint32_t
floatBits(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

constexpr uint32_t unplaced = std::numeric_limits<uint32_t>::max();

} // namespace

Builder::Builder(std::string name, uint32_t lx, uint32_t ly, uint32_t lz)
{
    VCB_ASSERT(lx >= 1 && ly >= 1 && lz >= 1, "zero local size");
    mod.name = std::move(name);
    mod.localSize[0] = lx;
    mod.localSize[1] = ly;
    mod.localSize[2] = lz;
}

void
Builder::bindStorage(uint32_t binding, ElemType elem, bool read_only)
{
    VCB_ASSERT(!mod.findBinding(binding), "binding %u declared twice",
               binding);
    mod.bindings.push_back({binding, read_only, elem});
}

void
Builder::setPushWords(uint32_t words)
{
    mod.pushWords = words;
}

void
Builder::setSharedWords(uint32_t words)
{
    mod.sharedWords = words;
}

Builder::Reg
Builder::newReg()
{
    return mod.regCount++;
}

void
Builder::emit(Op op, const uint32_t *operands, uint32_t n)
{
    VCB_ASSERT(!finished, "emit after finish()");
    const OpInfo &info = opInfo(op);
    VCB_ASSERT(n == info.numOperands, "%s expects %u operands, got %u",
               info.name, info.numOperands, n);
    mod.code.push_back((static_cast<uint32_t>(1 + n) << 16) |
                       static_cast<uint32_t>(op));
    for (uint32_t i = 0; i < n; ++i) {
        if (info.kinds[i] == OperandKind::Label) {
            // Record the word position for later patching.
            patches.emplace_back(
                static_cast<uint32_t>(mod.code.size()), operands[i]);
        }
        mod.code.push_back(operands[i]);
    }
    ++insnIndex;
}

Builder::Reg
Builder::emitD(Op op, uint32_t b, uint32_t c, uint32_t d)
{
    Reg dst = newReg();
    const OpInfo &info = opInfo(op);
    uint32_t ops[4] = {dst, b, c, d};
    emit(op, ops, info.numOperands);
    return dst;
}

void
Builder::emitTo(Op op, uint32_t a, uint32_t b, uint32_t c, uint32_t d)
{
    const OpInfo &info = opInfo(op);
    uint32_t ops[4] = {a, b, c, d};
    emit(op, ops, info.numOperands);
}

Builder::Reg
Builder::constI(int32_t v)
{
    return emitD(Op::ConstI, static_cast<uint32_t>(v));
}

Builder::Reg
Builder::constU(uint32_t v)
{
    return emitD(Op::ConstI, v);
}

Builder::Reg
Builder::constF(float v)
{
    return emitD(Op::ConstF, floatBits(v));
}

Builder::Reg
Builder::builtin(Builtin b)
{
    auto idx = static_cast<size_t>(b);
    VCB_ASSERT(idx < static_cast<size_t>(Builtin::Count), "bad builtin");
    if (builtinCached[idx])
        return builtinRegs[idx];
    Reg r = emitD(Op::LdBuiltin, static_cast<uint32_t>(b));
    builtinRegs[idx] = r;
    builtinCached[idx] = true;
    return r;
}

Builder::Reg
Builder::ldPush(uint32_t word_off)
{
    return emitD(Op::LdPush, word_off);
}

Builder::Reg
Builder::mov(Reg src)
{
    return emitD(Op::Mov, src);
}

void
Builder::movTo(Reg dst, Reg src)
{
    emitTo(Op::Mov, dst, src);
}

void
Builder::constITo(Reg dst, int32_t v)
{
    emitTo(Op::ConstI, dst, static_cast<uint32_t>(v));
}

void
Builder::constFTo(Reg dst, float v)
{
    emitTo(Op::ConstF, dst, floatBits(v));
}

#define VCB_BIN(name, OPC)                                                 \
    Builder::Reg Builder::name(Reg a, Reg b)                               \
    {                                                                      \
        return emitD(Op::OPC, a, b);                                       \
    }
#define VCB_UN(name, OPC)                                                  \
    Builder::Reg Builder::name(Reg a) { return emitD(Op::OPC, a); }

VCB_BIN(iadd, IAdd)
VCB_BIN(isub, ISub)
VCB_BIN(imul, IMul)
VCB_BIN(idiv, IDiv)
VCB_BIN(irem, IRem)
VCB_BIN(imin, IMin)
VCB_BIN(imax, IMax)
VCB_BIN(iand, IAnd)
VCB_BIN(ior, IOr)
VCB_BIN(ixor, IXor)
VCB_UN(inot, INot)
VCB_UN(ineg, INeg)
VCB_BIN(ishl, IShl)
VCB_BIN(ishru, IShrU)
VCB_BIN(ishrs, IShrS)
VCB_BIN(fadd, FAdd)
VCB_BIN(fsub, FSub)
VCB_BIN(fmul, FMul)
VCB_BIN(fdiv, FDiv)
VCB_BIN(fmin, FMin)
VCB_BIN(fmax, FMax)
VCB_UN(fabs, FAbs)
VCB_UN(fneg, FNeg)
VCB_UN(fsqrt, FSqrt)
VCB_UN(fexp, FExp)
VCB_UN(flog, FLog)
VCB_UN(ffloor, FFloor)
VCB_UN(fsin, FSin)
VCB_UN(fcos, FCos)
VCB_BIN(fpow, FPow)
VCB_UN(cvtSF, CvtSF)
VCB_UN(cvtFS, CvtFS)
VCB_BIN(ieq, IEq)
VCB_BIN(ine, INe)
VCB_BIN(ilt, ILt)
VCB_BIN(ile, ILe)
VCB_BIN(igt, IGt)
VCB_BIN(ige, IGe)
VCB_BIN(ult, ULt)
VCB_BIN(uge, UGe)
VCB_BIN(feq, FEq)
VCB_BIN(fne, FNe)
VCB_BIN(flt, FLt)
VCB_BIN(fle, FLe)
VCB_BIN(fgt, FGt)
VCB_BIN(fge, FGe)

#undef VCB_BIN
#undef VCB_UN

Builder::Reg
Builder::ffma(Reg a, Reg b, Reg c)
{
    return emitD(Op::FFma, a, b, c);
}

Builder::Reg
Builder::select(Reg cond, Reg a, Reg b)
{
    return emitD(Op::Select, cond, a, b);
}

void
Builder::iaddTo(Reg dst, Reg a, Reg b)
{
    emitTo(Op::IAdd, dst, a, b);
}

void
Builder::imulTo(Reg dst, Reg a, Reg b)
{
    emitTo(Op::IMul, dst, a, b);
}

void
Builder::faddTo(Reg dst, Reg a, Reg b)
{
    emitTo(Op::FAdd, dst, a, b);
}

void
Builder::fmulTo(Reg dst, Reg a, Reg b)
{
    emitTo(Op::FMul, dst, a, b);
}

Builder::Reg
Builder::ldBuf(uint32_t binding, Reg addr, uint32_t flags)
{
    return emitD(Op::LdBuf, binding, addr, flags);
}

void
Builder::stBuf(uint32_t binding, Reg addr, Reg src, uint32_t flags)
{
    emitTo(Op::StBuf, binding, addr, src, flags);
}

Builder::Reg
Builder::ldShared(Reg addr)
{
    return emitD(Op::LdShared, addr);
}

void
Builder::stShared(Reg addr, Reg src)
{
    emitTo(Op::StShared, addr, src);
}

Builder::Reg
Builder::atomIAdd(uint32_t binding, Reg addr, Reg src)
{
    return emitD(Op::AtomIAdd, binding, addr, src);
}

Builder::Reg
Builder::atomIMin(uint32_t binding, Reg addr, Reg src)
{
    return emitD(Op::AtomIMin, binding, addr, src);
}

Builder::Reg
Builder::atomIMax(uint32_t binding, Reg addr, Reg src)
{
    return emitD(Op::AtomIMax, binding, addr, src);
}

Builder::Reg
Builder::atomIOr(uint32_t binding, Reg addr, Reg src)
{
    return emitD(Op::AtomIOr, binding, addr, src);
}

Builder::Label
Builder::newLabel()
{
    labelTargets.push_back(unplaced);
    return Label{static_cast<uint32_t>(labelTargets.size() - 1)};
}

void
Builder::place(Label l)
{
    VCB_ASSERT(l.id < labelTargets.size(), "bad label");
    VCB_ASSERT(labelTargets[l.id] == unplaced, "label placed twice");
    labelTargets[l.id] = insnIndex;
}

void
Builder::br(Label l)
{
    emitTo(Op::Br, l.id);
}

void
Builder::brTrue(Reg cond, Label l)
{
    emitTo(Op::BrTrue, cond, l.id);
}

void
Builder::brFalse(Reg cond, Label l)
{
    emitTo(Op::BrFalse, cond, l.id);
}

void
Builder::barrier()
{
    emitTo(Op::Barrier, 0, 0, 0, 0);
}

void
Builder::ret()
{
    emitTo(Op::Ret, 0, 0, 0, 0);
}

void
Builder::ifThen(Reg cond, const std::function<void()> &then_fn)
{
    Label skip = newLabel();
    brFalse(cond, skip);
    then_fn();
    place(skip);
}

void
Builder::ifThenElse(Reg cond, const std::function<void()> &then_fn,
                    const std::function<void()> &else_fn)
{
    Label elseL = newLabel();
    Label endL = newLabel();
    brFalse(cond, elseL);
    then_fn();
    br(endL);
    place(elseL);
    else_fn();
    place(endL);
}

void
Builder::whileLoop(const std::function<Reg()> &cond_fn,
                   const std::function<void()> &body_fn)
{
    Label head = newLabel();
    Label exit = newLabel();
    place(head);
    Reg c = cond_fn();
    brFalse(c, exit);
    body_fn();
    br(head);
    place(exit);
}

void
Builder::forRange(Reg begin, Reg end, Reg step,
                  const std::function<void(Reg)> &body_fn)
{
    Reg i = mov(begin);
    whileLoop([&] { return ilt(i, end); },
              [&] {
                  body_fn(i);
                  iaddTo(i, i, step);
              });
}

Module
Builder::finish()
{
    VCB_ASSERT(!finished, "finish() called twice");
    // Guarantee termination for straight-line kernels.
    ret();
    // Labels placed after the last instruction point at the terminator.
    for (auto &target : labelTargets) {
        if (target == unplaced)
            panic("finish(): label never placed");
        if (target >= insnIndex)
            target = insnIndex - 1;
    }
    for (auto [word_pos, label_id] : patches) {
        VCB_ASSERT(label_id < labelTargets.size(), "bad label id");
        mod.code[word_pos] = labelTargets[label_id];
    }
    finished = true;
    return std::move(mod);
}

} // namespace vcb::spirv

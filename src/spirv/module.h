/**
 * @file
 * Kernel module representation and its self-contained binary format.
 *
 * Mirroring SPIR-V, a serialized module is a flat stream of 32-bit
 * words: a five-word header followed by tagged sections.  A module is
 * what the suite ships "offline-compiled" kernels as: the Vulkan-mini
 * runtime consumes it via shader modules, the OpenCL-mini runtime wraps
 * it in a program that is "JIT-built" at run time, and the CUDA-mini
 * runtime loads it as a fat binary.  All three front-ends hand the same
 * module to their driver compiler, which applies a per-driver
 * optimisation profile — exactly the structure the paper's compiler
 * maturity findings hinge on.
 *
 * Binary layout (all words little-endian on disk):
 *   [0] magic 0x56435042 ("VCPB")
 *   [1] version 0x00010000
 *   [2] generator id
 *   [3] register count bound
 *   [4] reserved (0)
 *   then sections, each: { sectionId, payloadWordCount, payload... }
 *     ENTRY(1):    localX localY localZ sharedWords pushWords
 *                  nameWordCount name-bytes-packed-4-per-word
 *     BINDINGS(2): count { binding flags elemType }*
 *     CODE(3):     instruction words
 */

#ifndef VCB_SPIRV_MODULE_H
#define VCB_SPIRV_MODULE_H

#include <cstdint>
#include <string>
#include <vector>

#include "spirv/opcodes.h"

namespace vcb::spirv {

/** Module file magic: "VCPB". */
constexpr uint32_t moduleMagic = 0x56435042u;
/** Current binary version (major 1, minor 0). */
constexpr uint32_t moduleVersion = 0x00010000u;
/** Generator id written by the Builder. */
constexpr uint32_t generatorBuilder = 0xb001u;

/** Section tags. */
enum SectionId : uint32_t
{
    SectionEntry = 1,
    SectionBindings = 2,
    SectionCode = 3,
};

/** Element type of a bound storage buffer (informational, like SPIR-V
 *  hierarchical type info: preserved for the driver compiler). */
enum class ElemType : uint32_t { F32 = 0, I32 = 1, U32 = 2 };

/** Declaration of one storage-buffer binding used by the kernel. */
struct BindingDecl
{
    uint32_t binding = 0;
    bool readOnly = false;
    ElemType elem = ElemType::F32;
};

/** One decoded instruction: opcode plus up to four raw operand words. */
struct Insn
{
    Op op = Op::Nop;
    uint32_t a = 0;
    uint32_t b = 0;
    uint32_t c = 0;
    uint32_t d = 0;
};

/** A compute kernel module. */
struct Module
{
    /** Entry-point name (e.g. "vectorAdd"). */
    std::string name;
    /** Local workgroup size, set by the kernel itself (SPIR-V style). */
    uint32_t localSize[3] = {1, 1, 1};
    /** Number of 32-bit registers each invocation uses. */
    uint32_t regCount = 0;
    /** Workgroup-shared memory size in 32-bit words. */
    uint32_t sharedWords = 0;
    /** Push-constant block size in 32-bit words. */
    uint32_t pushWords = 0;
    /** Declared storage-buffer bindings. */
    std::vector<BindingDecl> bindings;
    /** Raw instruction stream (word0 = wordCount<<16 | opcode). */
    std::vector<uint32_t> code;

    /** Serialize to the binary word stream described above. */
    std::vector<uint32_t> serialize() const;

    /**
     * Parse a binary word stream.  Structural errors (bad magic, bad
     * version, truncated sections) raise fatal(); instruction-level
     * problems are left to validate().
     */
    static Module deserialize(const std::vector<uint32_t> &words);

    /** Decode the instruction stream into fixed-size Insn records. */
    std::vector<Insn> decode() const;

    /** Total number of encoded instructions. */
    size_t insnCount() const;

    /** Look up a binding declaration; nullptr when not declared. */
    const BindingDecl *findBinding(uint32_t binding) const;

    /** Highest binding number declared plus one (0 when none). */
    uint32_t bindingBound() const;
};

/**
 * Validate a module: header sanity, known opcodes, operand ranges,
 * declared bindings, label targets, push-constant offsets.
 *
 * @param m        module to check
 * @param errorOut optional: receives the first error message
 * @return true when the module is well-formed
 */
bool validate(const Module &m, std::string *errorOut = nullptr);

/** Render a human-readable listing of the module (for tooling/tests). */
std::string disassemble(const Module &m);

} // namespace vcb::spirv

#endif // VCB_SPIRV_MODULE_H

/**
 * @file
 * Human-readable module listings.
 *
 * The paper inspected driver-generated ISA with AMD CodeXL to explain
 * the bfs result; this disassembler is the equivalent introspection
 * tool for VCB kernels and is used heavily by the tests.
 */

#include "spirv/module.h"

#include <set>

#include "common/logging.h"
#include "common/strutil.h"

namespace vcb::spirv {

std::string
disassemble(const Module &m)
{
    std::string out;
    out += strprintf("; module '%s'  local=(%u,%u,%u)  regs=%u  "
                     "shared=%uw  push=%uw\n",
                     m.name.c_str(), m.localSize[0], m.localSize[1],
                     m.localSize[2], m.regCount, m.sharedWords,
                     m.pushWords);
    for (const auto &b : m.bindings) {
        const char *elem = b.elem == ElemType::F32   ? "f32"
                           : b.elem == ElemType::I32 ? "i32"
                                                     : "u32";
        out += strprintf("; binding %u : %s%s\n", b.binding, elem,
                         b.readOnly ? " readonly" : "");
    }

    std::vector<Insn> insns = m.decode();

    // Collect branch targets so we can print labels.
    std::set<uint32_t> targets;
    for (const auto &insn : insns) {
        const OpInfo &info = opInfo(insn.op);
        uint32_t ops[4] = {insn.a, insn.b, insn.c, insn.d};
        for (uint32_t i = 0; i < info.numOperands; ++i)
            if (info.kinds[i] == OperandKind::Label)
                targets.insert(ops[i]);
    }

    for (uint32_t idx = 0; idx < insns.size(); ++idx) {
        if (targets.count(idx))
            out += strprintf("L%u:\n", idx);
        const Insn &insn = insns[idx];
        const OpInfo &info = opInfo(insn.op);
        std::string line = strprintf("  %-10s", info.name);
        uint32_t ops[4] = {insn.a, insn.b, insn.c, insn.d};
        for (uint32_t i = 0; i < info.numOperands; ++i) {
            uint32_t v = ops[i];
            switch (info.kinds[i]) {
              case OperandKind::DstReg:
              case OperandKind::SrcReg:
                line += strprintf(" %%r%u", v);
                break;
              case OperandKind::Label:
                line += strprintf(" L%u", v);
                break;
              case OperandKind::Binding:
                line += strprintf(" buf%u", v);
                break;
              case OperandKind::BuiltinCode:
                line += strprintf(" %s",
                                  builtinName(static_cast<Builtin>(v)));
                break;
              case OperandKind::Imm:
                if (insn.op == Op::ConstF) {
                    float f;
                    static_assert(sizeof(f) == sizeof(v));
                    __builtin_memcpy(&f, &v, sizeof(f));
                    line += strprintf(" %g", (double)f);
                } else if ((insn.op == Op::LdBuf || insn.op == Op::StBuf) &&
                           (v & MemFlagPromoteHint)) {
                    line += " hint=promote";
                } else if (insn.op == Op::LdBuf || insn.op == Op::StBuf) {
                    if (v != 0)
                        line += strprintf(" flags=%u", v);
                } else {
                    line += strprintf(" %d", (int32_t)v);
                }
                break;
              case OperandKind::None:
                break;
            }
        }
        out += line + "\n";
    }
    return out;
}

} // namespace vcb::spirv

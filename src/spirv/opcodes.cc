#include "spirv/opcodes.h"

#include "common/logging.h"

namespace vcb::spirv {

namespace {

constexpr OperandKind N = OperandKind::None;
constexpr OperandKind D = OperandKind::DstReg;
constexpr OperandKind S = OperandKind::SrcReg;
constexpr OperandKind I = OperandKind::Imm;
constexpr OperandKind L = OperandKind::Label;
constexpr OperandKind B = OperandKind::Binding;
constexpr OperandKind U = OperandKind::BuiltinCode;

constexpr uint8_t
countOperands(OperandKind a, OperandKind b, OperandKind c, OperandKind d)
{
    return (a != N) + (b != N) + (c != N) + (d != N);
}

const OpInfo infoTable[] = {
#define VCB_SPV_INFO(name, a, b, c, d)                                     \
    {#name, countOperands(a, b, c, d), {a, b, c, d}},
    VCB_SPV_OP_LIST(VCB_SPV_INFO)
#undef VCB_SPV_INFO
};

static_assert(sizeof(infoTable) / sizeof(infoTable[0]) == opCount,
              "opcode table out of sync with Op enum");

const char *builtinNames[] = {
    "GlobalIdX", "GlobalIdY", "GlobalIdZ",
    "LocalIdX", "LocalIdY", "LocalIdZ",
    "GroupIdX", "GroupIdY", "GroupIdZ",
    "NumGroupsX", "NumGroupsY", "NumGroupsZ",
    "LocalSizeX", "LocalSizeY", "LocalSizeZ",
    "GlobalSizeX", "GlobalSizeY", "GlobalSizeZ",
    "LocalLinearId",
};

static_assert(sizeof(builtinNames) / sizeof(builtinNames[0]) ==
                  static_cast<size_t>(Builtin::Count),
              "builtin name table out of sync");

} // namespace

const OpInfo &
opInfo(Op op)
{
    auto raw = static_cast<uint16_t>(op);
    VCB_ASSERT(raw < opCount, "opInfo(%u) out of range", raw);
    return infoTable[raw];
}

bool
opExists(uint16_t raw)
{
    return raw < opCount;
}

const char *
builtinName(Builtin b)
{
    auto raw = static_cast<uint32_t>(b);
    if (raw >= static_cast<uint32_t>(Builtin::Count))
        return "<bad>";
    return builtinNames[raw];
}

} // namespace vcb::spirv

/**
 * @file
 * Kernel authoring DSL — the suite's stand-in for GLSL.
 *
 * The paper writes kernels in GLSL and compiles them offline with
 * glslangvalidator into SPIR-V binaries.  Here, kernels are authored
 * with this Builder, which emits the VCB kernel IR binary; the text of
 * each kernel in src/kernels/ reads like the corresponding GLSL compute
 * shader (one statement per line, same algorithm, same bindings).
 *
 * Registers are mutable 32-bit cells.  Value-returning helpers allocate
 * a fresh register; *To variants overwrite an existing one (needed for
 * loop-carried variables).  Control flow uses labels with forward-
 * reference patching, plus structured helpers (ifThen / whileLoop /
 * forRange) that cover everything the Rodinia kernels need.
 */

#ifndef VCB_SPIRV_BUILDER_H
#define VCB_SPIRV_BUILDER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "spirv/module.h"

namespace vcb::spirv {

/** Builds a kernel Module instruction by instruction. */
class Builder
{
  public:
    using Reg = uint32_t;
    /** Opaque label handle. */
    struct Label { uint32_t id; };

    /** @param name entry-point name, @param lx/ly/lz local size. */
    Builder(std::string name, uint32_t lx, uint32_t ly = 1,
            uint32_t lz = 1);

    // --- module-level declarations -------------------------------------
    /** Declare a storage-buffer binding used by this kernel. */
    void bindStorage(uint32_t binding, ElemType elem,
                     bool read_only = false);
    /** Declare the push-constant block size in words. */
    void setPushWords(uint32_t words);
    /** Declare workgroup-shared memory size in words. */
    void setSharedWords(uint32_t words);

    // --- registers ------------------------------------------------------
    /** Allocate a fresh (uninitialised) register. */
    Reg newReg();

    // --- constants and inputs -------------------------------------------
    Reg constI(int32_t v);
    Reg constU(uint32_t v);
    Reg constF(float v);
    /** Builtins are cached: repeated calls return the same register. */
    Reg builtin(Builtin b);
    Reg globalIdX() { return builtin(Builtin::GlobalIdX); }
    Reg globalIdY() { return builtin(Builtin::GlobalIdY); }
    Reg localIdX() { return builtin(Builtin::LocalIdX); }
    Reg localIdY() { return builtin(Builtin::LocalIdY); }
    Reg groupIdX() { return builtin(Builtin::GroupIdX); }
    Reg groupIdY() { return builtin(Builtin::GroupIdY); }
    Reg numGroupsX() { return builtin(Builtin::NumGroupsX); }
    Reg localLinearId() { return builtin(Builtin::LocalLinearId); }
    /** Load word `word_off` of the push-constant block. */
    Reg ldPush(uint32_t word_off);

    // --- moves ------------------------------------------------------
    Reg mov(Reg src);
    void movTo(Reg dst, Reg src);
    void constITo(Reg dst, int32_t v);
    void constFTo(Reg dst, float v);

    // --- integer arithmetic ----------------------------------------------
    Reg iadd(Reg a, Reg b);
    Reg isub(Reg a, Reg b);
    Reg imul(Reg a, Reg b);
    Reg idiv(Reg a, Reg b);
    Reg irem(Reg a, Reg b);
    Reg imin(Reg a, Reg b);
    Reg imax(Reg a, Reg b);
    Reg iand(Reg a, Reg b);
    Reg ior(Reg a, Reg b);
    Reg ixor(Reg a, Reg b);
    Reg inot(Reg a);
    Reg ineg(Reg a);
    Reg ishl(Reg a, Reg b);
    Reg ishru(Reg a, Reg b);
    Reg ishrs(Reg a, Reg b);
    void iaddTo(Reg dst, Reg a, Reg b);
    void imulTo(Reg dst, Reg a, Reg b);

    // --- float arithmetic -------------------------------------------------
    Reg fadd(Reg a, Reg b);
    Reg fsub(Reg a, Reg b);
    Reg fmul(Reg a, Reg b);
    Reg fdiv(Reg a, Reg b);
    Reg fmin(Reg a, Reg b);
    Reg fmax(Reg a, Reg b);
    Reg fabs(Reg a);
    Reg fneg(Reg a);
    Reg fsqrt(Reg a);
    Reg fexp(Reg a);
    Reg flog(Reg a);
    Reg ffloor(Reg a);
    Reg fsin(Reg a);
    Reg fcos(Reg a);
    Reg ffma(Reg a, Reg b, Reg c);
    Reg fpow(Reg a, Reg b);
    void faddTo(Reg dst, Reg a, Reg b);
    void fmulTo(Reg dst, Reg a, Reg b);

    // --- conversions ------------------------------------------------------
    Reg cvtSF(Reg a);
    Reg cvtFS(Reg a);

    // --- comparisons (0/1 result) ------------------------------------------
    Reg ieq(Reg a, Reg b);
    Reg ine(Reg a, Reg b);
    Reg ilt(Reg a, Reg b);
    Reg ile(Reg a, Reg b);
    Reg igt(Reg a, Reg b);
    Reg ige(Reg a, Reg b);
    Reg ult(Reg a, Reg b);
    Reg uge(Reg a, Reg b);
    Reg feq(Reg a, Reg b);
    Reg fne(Reg a, Reg b);
    Reg flt(Reg a, Reg b);
    Reg fle(Reg a, Reg b);
    Reg fgt(Reg a, Reg b);
    Reg fge(Reg a, Reg b);
    Reg select(Reg cond, Reg a, Reg b);

    // --- memory -------------------------------------------------------------
    Reg ldBuf(uint32_t binding, Reg addr, uint32_t flags = 0);
    void stBuf(uint32_t binding, Reg addr, Reg src, uint32_t flags = 0);
    Reg ldShared(Reg addr);
    void stShared(Reg addr, Reg src);
    Reg atomIAdd(uint32_t binding, Reg addr, Reg src);
    Reg atomIMin(uint32_t binding, Reg addr, Reg src);
    Reg atomIMax(uint32_t binding, Reg addr, Reg src);
    Reg atomIOr(uint32_t binding, Reg addr, Reg src);

    // --- control flow ---------------------------------------------------------
    Label newLabel();
    /** Bind a label to the *next* emitted instruction. */
    void place(Label l);
    void br(Label l);
    void brTrue(Reg cond, Label l);
    void brFalse(Reg cond, Label l);
    void barrier();
    void ret();

    /** if (cond) { then(); } */
    void ifThen(Reg cond, const std::function<void()> &then_fn);
    /** if (cond) { then(); } else { other(); } */
    void ifThenElse(Reg cond, const std::function<void()> &then_fn,
                    const std::function<void()> &else_fn);
    /**
     * while (cond()) { body(); } — cond is re-evaluated each iteration,
     * so it must re-load whatever it depends on.
     */
    void whileLoop(const std::function<Reg()> &cond_fn,
                   const std::function<void()> &body_fn);
    /**
     * for (i = begin; i < end; i += step) { body(i); } with i a fresh
     * register the body may read (but must not write).
     */
    void forRange(Reg begin, Reg end, Reg step,
                  const std::function<void(Reg)> &body_fn);

    // --- finish -----------------------------------------------------------
    /**
     * Terminate (appends Ret when missing), patch labels, and return
     * the finished module.  The builder must not be reused afterwards.
     */
    Module finish();

    /** Number of instructions emitted so far. */
    uint32_t insnCount() const { return insnIndex; }

  private:
    Reg emitD(Op op, uint32_t b = 0, uint32_t c = 0, uint32_t d = 0);
    void emitTo(Op op, uint32_t a, uint32_t b = 0, uint32_t c = 0,
                uint32_t d = 0);
    void emit(Op op, const uint32_t *operands, uint32_t n);

    Module mod;
    uint32_t insnIndex = 0;
    bool finished = false;
    // Cached builtin registers, index by Builtin value.
    Reg builtinRegs[static_cast<size_t>(Builtin::Count)];
    bool builtinCached[static_cast<size_t>(Builtin::Count)] = {};
    // label id -> instruction index (UINT32_MAX until placed)
    std::vector<uint32_t> labelTargets;
    // (code word offset to patch, label id)
    std::vector<std::pair<uint32_t, uint32_t>> patches;
};

} // namespace vcb::spirv

#endif // VCB_SPIRV_BUILDER_H

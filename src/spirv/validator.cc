/**
 * @file
 * Structural validation of kernel modules.
 *
 * This plays the role of the SPIR-V validator in the Vulkan tooling
 * layers: drivers (vkm/ocl/cuda front-ends) run it at shader-module /
 * program-build time and reject malformed binaries with an API error
 * instead of crashing the "GPU".
 */

#include "spirv/module.h"

#include <set>

#include "common/logging.h"
#include "common/strutil.h"

namespace vcb::spirv {

namespace {

bool
fail(std::string *out, const std::string &msg)
{
    if (out)
        *out = msg;
    return false;
}

} // namespace

bool
validate(const Module &m, std::string *errorOut)
{
    if (m.name.empty())
        return fail(errorOut, "module has no entry-point name");
    if (m.regCount == 0)
        return fail(errorOut, "module declares zero registers");
    if (m.regCount > 4096)
        return fail(errorOut,
                    strprintf("register count %u exceeds limit 4096",
                              m.regCount));
    uint64_t local = uint64_t(m.localSize[0]) * m.localSize[1] *
                     m.localSize[2];
    if (local == 0)
        return fail(errorOut, "local size is zero");
    if (local > 1024)
        return fail(errorOut,
                    strprintf("local size %llu exceeds limit 1024",
                              (unsigned long long)local));
    if (m.sharedWords > 16384)
        return fail(errorOut, "shared memory exceeds 64 KiB");
    if (m.pushWords > 64)
        return fail(errorOut, "push-constant block exceeds 256 bytes");

    std::set<uint32_t> declared;
    for (const auto &b : m.bindings) {
        if (!declared.insert(b.binding).second)
            return fail(errorOut,
                        strprintf("binding %u declared twice", b.binding));
        if (b.binding >= 32)
            return fail(errorOut,
                        strprintf("binding %u exceeds limit 31", b.binding));
    }

    // First pass: collect instruction boundaries and count.
    size_t pos = 0;
    uint32_t count = 0;
    while (pos < m.code.size()) {
        uint32_t head = m.code[pos];
        uint16_t rawOp = static_cast<uint16_t>(head & 0xffffu);
        uint32_t wc = head >> 16;
        if (!opExists(rawOp))
            return fail(errorOut,
                        strprintf("unknown opcode %u at word %zu", rawOp,
                                  pos));
        const OpInfo &info = opInfo(static_cast<Op>(rawOp));
        if (wc != 1u + info.numOperands)
            return fail(errorOut,
                        strprintf("%s: word count %u != %u", info.name, wc,
                                  1u + info.numOperands));
        if (pos + wc > m.code.size())
            return fail(errorOut,
                        strprintf("truncated %s at word %zu", info.name,
                                  pos));
        pos += wc;
        ++count;
    }
    if (count == 0)
        return fail(errorOut, "empty code section");

    // Second pass: operand ranges.
    pos = 0;
    uint32_t index = 0;
    bool sawRet = false;
    while (pos < m.code.size()) {
        uint32_t head = m.code[pos];
        Op op = static_cast<Op>(head & 0xffffu);
        const OpInfo &info = opInfo(op);
        for (uint32_t i = 0; i < info.numOperands; ++i) {
            uint32_t v = m.code[pos + 1 + i];
            switch (info.kinds[i]) {
              case OperandKind::DstReg:
              case OperandKind::SrcReg:
                if (v >= m.regCount)
                    return fail(errorOut,
                                strprintf("%s @%u: register %u out of "
                                          "range (%u declared)",
                                          info.name, index, v, m.regCount));
                break;
              case OperandKind::Label:
                if (v >= count)
                    return fail(errorOut,
                                strprintf("%s @%u: label target %u out of "
                                          "range (%u insns)",
                                          info.name, index, v, count));
                break;
              case OperandKind::Binding:
                if (!declared.count(v))
                    return fail(errorOut,
                                strprintf("%s @%u: binding %u not declared",
                                          info.name, index, v));
                break;
              case OperandKind::BuiltinCode:
                if (v >= static_cast<uint32_t>(Builtin::Count))
                    return fail(errorOut,
                                strprintf("%s @%u: bad builtin code %u",
                                          info.name, index, v));
                break;
              case OperandKind::Imm:
                if (op == Op::LdPush && v >= m.pushWords)
                    return fail(errorOut,
                                strprintf("LdPush @%u: word %u outside "
                                          "push block of %u words",
                                          index, v, m.pushWords));
                break;
              case OperandKind::None:
                break;
            }
        }
        // Writes through a read-only binding are structural errors.
        if (op == Op::StBuf || op == Op::AtomIAdd || op == Op::AtomIMin ||
            op == Op::AtomIMax || op == Op::AtomIOr) {
            uint32_t binding = m.code[pos + 1 +
                                      (op == Op::StBuf ? 0 : 1)];
            const BindingDecl *decl = m.findBinding(binding);
            if (decl && decl->readOnly)
                return fail(errorOut,
                            strprintf("%s @%u: write to read-only "
                                      "binding %u",
                                      info.name, index, binding));
        }
        if ((op == Op::LdShared || op == Op::StShared) &&
            m.sharedWords == 0) {
            return fail(errorOut,
                        strprintf("%s @%u: module declares no shared "
                                  "memory",
                                  info.name, index));
        }
        if (op == Op::Ret)
            sawRet = true;
        pos += head >> 16;
        ++index;
    }
    if (!sawRet)
        return fail(errorOut, "no Ret instruction");

    // The last instruction must not fall through the end of the stream.
    {
        std::vector<Insn> insns = m.decode();
        Op last = insns.back().op;
        if (last != Op::Ret && last != Op::Br)
            return fail(errorOut, "code can fall off the end of the module");
    }
    if (errorOut)
        errorOut->clear();
    return true;
}

} // namespace vcb::spirv

/**
 * @file
 * Opcode definitions for the VCB kernel IR ("mini SPIR-V").
 *
 * The IR mirrors the physical shape of SPIR-V: a module is a stream of
 * 32-bit words; each instruction's first word packs (wordCount << 16) |
 * opcode.  Semantically it is a flat register VM rather than SSA — this
 * keeps the interpreter fast while preserving the properties the paper
 * relies on (self-contained binary kernels, offline compilation, driver
 * side consumption with per-driver optimisation passes).
 *
 * Every instruction has at most four operands.  Operand signatures are
 * described by a static table (see opInfo) that drives the encoder, the
 * decoder, the validator and the disassembler, so they cannot drift
 * apart.
 */

#ifndef VCB_SPIRV_OPCODES_H
#define VCB_SPIRV_OPCODES_H

#include <cstdint>

namespace vcb::spirv {

/**
 * Operand kind letters used in the signature table:
 *  D = destination register, S = source register, I = immediate 32-bit,
 *  L = label (instruction index), B = buffer binding number,
 *  U = builtin code, N = unused slot.
 */
enum class OperandKind : uint8_t { None, DstReg, SrcReg, Imm, Label,
                                   Binding, BuiltinCode };

/**
 * Instruction opcodes.
 *
 * Integer ops operate on 32-bit two's-complement values; float ops
 * reinterpret register bits as IEEE-754 binary32.  Comparison ops write
 * 0 or 1.  Memory addresses are *element* (word) indices, not bytes.
 */
#define VCB_SPV_OP_LIST(X)                                                 \
    /*    name      operand kinds (up to 4)          */                    \
    X(Nop,        N, N, N, N)                                              \
    X(ConstI,     D, I, N, N) /* dst <- signed/raw imm               */    \
    X(ConstF,     D, I, N, N) /* dst <- float bits imm               */    \
    X(Mov,        D, S, N, N)                                              \
    X(LdBuiltin,  D, U, N, N) /* dst <- builtin value                */    \
    X(LdPush,     D, I, N, N) /* dst <- pushConstants[imm word]      */    \
    /* integer arithmetic */                                               \
    X(IAdd,       D, S, S, N)                                              \
    X(ISub,       D, S, S, N)                                              \
    X(IMul,       D, S, S, N)                                              \
    X(IDiv,       D, S, S, N) /* trap on divide by zero              */    \
    X(IRem,       D, S, S, N)                                              \
    X(IMin,       D, S, S, N)                                              \
    X(IMax,       D, S, S, N)                                              \
    X(IAnd,       D, S, S, N)                                              \
    X(IOr,        D, S, S, N)                                              \
    X(IXor,       D, S, S, N)                                              \
    X(INot,       D, S, N, N)                                              \
    X(INeg,       D, S, N, N)                                              \
    X(IShl,       D, S, S, N)                                              \
    X(IShrU,      D, S, S, N) /* logical                             */    \
    X(IShrS,      D, S, S, N) /* arithmetic                          */    \
    /* float arithmetic */                                                 \
    X(FAdd,       D, S, S, N)                                              \
    X(FSub,       D, S, S, N)                                              \
    X(FMul,       D, S, S, N)                                              \
    X(FDiv,       D, S, S, N)                                              \
    X(FMin,       D, S, S, N)                                              \
    X(FMax,       D, S, S, N)                                              \
    X(FAbs,       D, S, N, N)                                              \
    X(FNeg,       D, S, N, N)                                              \
    X(FSqrt,      D, S, N, N)                                              \
    X(FExp,       D, S, N, N)                                              \
    X(FLog,       D, S, N, N)                                              \
    X(FFloor,     D, S, N, N)                                              \
    X(FSin,       D, S, N, N)                                              \
    X(FCos,       D, S, N, N)                                              \
    X(FFma,       D, S, S, S) /* dst = a*b + c                       */    \
    X(FPow,       D, S, S, N)                                              \
    /* conversions */                                                      \
    X(CvtSF,      D, S, N, N) /* signed int -> float                 */    \
    X(CvtFS,      D, S, N, N) /* float -> signed int (truncate)      */    \
    /* comparisons: dst = 0/1 */                                           \
    X(IEq,        D, S, S, N)                                              \
    X(INe,        D, S, S, N)                                              \
    X(ILt,        D, S, S, N) /* signed                              */    \
    X(ILe,        D, S, S, N)                                              \
    X(IGt,        D, S, S, N)                                              \
    X(IGe,        D, S, S, N)                                              \
    X(ULt,        D, S, S, N) /* unsigned                            */    \
    X(UGe,        D, S, S, N)                                              \
    X(FEq,        D, S, S, N)                                              \
    X(FNe,        D, S, S, N)                                              \
    X(FLt,        D, S, S, N)                                              \
    X(FLe,        D, S, S, N)                                              \
    X(FGt,        D, S, S, N)                                              \
    X(FGe,        D, S, S, N)                                              \
    X(Select,     D, S, S, S) /* dst = cond ? a : b                  */    \
    /* memory */                                                           \
    X(LdBuf,      D, B, S, I) /* dst <- buf[binding][addr]; I=flags  */    \
    X(StBuf,      B, S, S, I) /* buf[binding][addr] <- src; I=flags  */    \
    X(LdShared,   D, S, N, N) /* dst <- shared[addr]                 */    \
    X(StShared,   S, S, N, N) /* shared[addr] <- src                 */    \
    X(AtomIAdd,   D, B, S, S) /* dst = old; buf[addr] += src         */    \
    X(AtomIMin,   D, B, S, S)                                              \
    X(AtomIMax,   D, B, S, S)                                              \
    X(AtomIOr,    D, B, S, S)                                              \
    /* control flow */                                                     \
    X(Br,         L, N, N, N)                                              \
    X(BrTrue,     S, L, N, N)                                              \
    X(BrFalse,    S, L, N, N)                                              \
    X(Barrier,    N, N, N, N) /* workgroup control+memory barrier    */    \
    X(Ret,        N, N, N, N)

/** The opcode enumeration itself. */
enum class Op : uint16_t
{
#define VCB_SPV_ENUM(name, a, b, c, d) name,
    VCB_SPV_OP_LIST(VCB_SPV_ENUM)
#undef VCB_SPV_ENUM
    Count
};

/** Memory access flags carried in the Imm slot of LdBuf/StBuf. */
enum MemFlags : uint32_t
{
    /**
     * Marks an access that a mature kernel compiler promotes to on-chip
     * (workgroup local / LDS) storage.  The paper's bfs study found the
     * OpenCL compiler applied this optimisation while the young Vulkan
     * SPIR-V compiler did not; driver profiles honour or ignore this
     * hint accordingly (see sim::DriverProfile::localMemPromotion).
     */
    MemFlagPromoteHint = 1u << 0,
};

/** Built-in input values available to every invocation. */
enum class Builtin : uint32_t
{
    GlobalIdX = 0, GlobalIdY, GlobalIdZ,
    LocalIdX, LocalIdY, LocalIdZ,
    GroupIdX, GroupIdY, GroupIdZ,
    NumGroupsX, NumGroupsY, NumGroupsZ,
    LocalSizeX, LocalSizeY, LocalSizeZ,
    GlobalSizeX, GlobalSizeY, GlobalSizeZ,
    LocalLinearId,
    Count
};

/** Static description of one opcode. */
struct OpInfo
{
    const char *name;
    uint8_t numOperands;
    OperandKind kinds[4];
};

/** Number of opcodes. */
constexpr uint16_t opCount = static_cast<uint16_t>(Op::Count);

/** Look up the descriptor for an opcode (op must be < Op::Count). */
const OpInfo &opInfo(Op op);

/** True if the raw opcode value names a defined instruction. */
bool opExists(uint16_t raw);

/** Name for a builtin code, or "<bad>" when out of range. */
const char *builtinName(Builtin b);

/** Total instruction word count for an opcode (1 + operands). */
inline uint32_t
opWordCount(Op op)
{
    return 1u + opInfo(op).numOperands;
}

} // namespace vcb::spirv

#endif // VCB_SPIRV_OPCODES_H

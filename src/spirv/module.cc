#include "spirv/module.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace vcb::spirv {

namespace {

void
appendString(std::vector<uint32_t> &out, const std::string &s)
{
    out.push_back(static_cast<uint32_t>((s.size() + 3) / 4));
    uint32_t word = 0;
    for (size_t i = 0; i < s.size(); ++i) {
        word |= static_cast<uint32_t>(static_cast<unsigned char>(s[i]))
                << (8 * (i % 4));
        if (i % 4 == 3) {
            out.push_back(word);
            word = 0;
        }
    }
    if (s.size() % 4 != 0)
        out.push_back(word);
}

std::string
readString(const std::vector<uint32_t> &words, size_t &pos, size_t end)
{
    if (pos >= end)
        fatal("module: truncated string header");
    uint32_t nwords = words[pos++];
    if (pos + nwords > end)
        fatal("module: truncated string payload");
    std::string s;
    for (uint32_t w = 0; w < nwords; ++w) {
        uint32_t word = words[pos++];
        for (int b = 0; b < 4; ++b) {
            char c = static_cast<char>((word >> (8 * b)) & 0xff);
            if (c != '\0')
                s.push_back(c);
        }
    }
    return s;
}

} // namespace

std::vector<uint32_t>
Module::serialize() const
{
    std::vector<uint32_t> out;
    out.push_back(moduleMagic);
    out.push_back(moduleVersion);
    out.push_back(generatorBuilder);
    out.push_back(regCount);
    out.push_back(0);

    // ENTRY section.
    {
        std::vector<uint32_t> payload;
        payload.push_back(localSize[0]);
        payload.push_back(localSize[1]);
        payload.push_back(localSize[2]);
        payload.push_back(sharedWords);
        payload.push_back(pushWords);
        appendString(payload, name);
        out.push_back(SectionEntry);
        out.push_back(static_cast<uint32_t>(payload.size()));
        out.insert(out.end(), payload.begin(), payload.end());
    }

    // BINDINGS section.
    {
        out.push_back(SectionBindings);
        out.push_back(static_cast<uint32_t>(1 + bindings.size() * 3));
        out.push_back(static_cast<uint32_t>(bindings.size()));
        for (const auto &b : bindings) {
            out.push_back(b.binding);
            out.push_back(b.readOnly ? 1u : 0u);
            out.push_back(static_cast<uint32_t>(b.elem));
        }
    }

    // CODE section.
    {
        out.push_back(SectionCode);
        out.push_back(static_cast<uint32_t>(code.size()));
        out.insert(out.end(), code.begin(), code.end());
    }
    return out;
}

Module
Module::deserialize(const std::vector<uint32_t> &words)
{
    if (words.size() < 5)
        fatal("module: stream shorter than header");
    if (words[0] != moduleMagic)
        fatal("module: bad magic 0x%08x", words[0]);
    if ((words[1] >> 16) != (moduleVersion >> 16))
        fatal("module: unsupported version 0x%08x", words[1]);

    Module m;
    m.regCount = words[3];

    size_t pos = 5;
    bool sawEntry = false, sawCode = false;
    while (pos < words.size()) {
        if (pos + 2 > words.size())
            fatal("module: truncated section header");
        uint32_t id = words[pos++];
        uint32_t len = words[pos++];
        size_t end = pos + len;
        if (end > words.size())
            fatal("module: section %u overruns stream", id);
        switch (id) {
          case SectionEntry: {
            if (len < 5)
                fatal("module: ENTRY section too short");
            m.localSize[0] = words[pos];
            m.localSize[1] = words[pos + 1];
            m.localSize[2] = words[pos + 2];
            m.sharedWords = words[pos + 3];
            m.pushWords = words[pos + 4];
            size_t spos = pos + 5;
            m.name = readString(words, spos, end);
            sawEntry = true;
            break;
          }
          case SectionBindings: {
            if (len < 1)
                fatal("module: BINDINGS section too short");
            uint32_t count = words[pos];
            if (len != 1 + count * 3)
                fatal("module: BINDINGS length mismatch");
            for (uint32_t i = 0; i < count; ++i) {
                BindingDecl b;
                b.binding = words[pos + 1 + i * 3];
                b.readOnly = words[pos + 2 + i * 3] != 0;
                b.elem = static_cast<ElemType>(words[pos + 3 + i * 3]);
                m.bindings.push_back(b);
            }
            break;
          }
          case SectionCode:
            m.code.assign(words.begin() + static_cast<long>(pos),
                          words.begin() + static_cast<long>(end));
            sawCode = true;
            break;
          default:
            // Unknown sections are skipped for forward compatibility.
            break;
        }
        pos = end;
    }
    if (!sawEntry)
        fatal("module: missing ENTRY section");
    if (!sawCode)
        fatal("module: missing CODE section");
    return m;
}

std::vector<Insn>
Module::decode() const
{
    std::vector<Insn> out;
    size_t pos = 0;
    while (pos < code.size()) {
        uint32_t head = code[pos];
        uint16_t rawOp = static_cast<uint16_t>(head & 0xffffu);
        uint32_t wc = head >> 16;
        if (!opExists(rawOp))
            fatal("module %s: unknown opcode %u at word %zu",
                  name.c_str(), rawOp, pos);
        Op op = static_cast<Op>(rawOp);
        const OpInfo &info = opInfo(op);
        if (wc != 1u + info.numOperands)
            fatal("module %s: opcode %s has word count %u, expected %u",
                  name.c_str(), info.name, wc, 1u + info.numOperands);
        if (pos + wc > code.size())
            fatal("module %s: truncated instruction at word %zu",
                  name.c_str(), pos);
        Insn insn;
        insn.op = op;
        uint32_t operands[4] = {0, 0, 0, 0};
        for (uint32_t i = 0; i < info.numOperands; ++i)
            operands[i] = code[pos + 1 + i];
        insn.a = operands[0];
        insn.b = operands[1];
        insn.c = operands[2];
        insn.d = operands[3];
        out.push_back(insn);
        pos += wc;
    }
    return out;
}

size_t
Module::insnCount() const
{
    size_t count = 0;
    size_t pos = 0;
    while (pos < code.size()) {
        uint32_t wc = code[pos] >> 16;
        if (wc == 0)
            fatal("module %s: zero-length instruction", name.c_str());
        pos += wc;
        ++count;
    }
    return count;
}

const BindingDecl *
Module::findBinding(uint32_t binding) const
{
    for (const auto &b : bindings)
        if (b.binding == binding)
            return &b;
    return nullptr;
}

uint32_t
Module::bindingBound() const
{
    uint32_t bound = 0;
    for (const auto &b : bindings)
        bound = std::max(bound, b.binding + 1);
    return bound;
}

} // namespace vcb::spirv

#include "sim/interpreter.h"

#include <atomic>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace vcb::sim {

namespace {

/**
 * Evaluate one hoisted template op (see MicroKernel::templateOps) on
 * the template register file.  Expressions mirror the interpreter
 * handlers exactly so hoisting is bit-invisible.
 */
void
evalTemplateOp(const MicroOp &op, uint32_t *r, const DispatchContext &ctx,
               const spirv::Module &m)
{
    switch (op.op) {
      case MOp::Const: r[op.a] = op.b; break;
      case MOp::Mov: r[op.a] = r[op.b]; break;
      case MOp::LdPush: r[op.a] = ctx.push[op.b]; break;
      case MOp::LdBuiltin: {
        using spirv::Builtin;
        uint32_t v = 0;
        switch (static_cast<Builtin>(op.aux)) {
          case Builtin::NumGroupsX: v = ctx.groups[0]; break;
          case Builtin::NumGroupsY: v = ctx.groups[1]; break;
          case Builtin::NumGroupsZ: v = ctx.groups[2]; break;
          case Builtin::LocalSizeX: v = m.localSize[0]; break;
          case Builtin::LocalSizeY: v = m.localSize[1]; break;
          case Builtin::LocalSizeZ: v = m.localSize[2]; break;
          case Builtin::GlobalSizeX:
            v = ctx.groups[0] * m.localSize[0];
            break;
          case Builtin::GlobalSizeY:
            v = ctx.groups[1] * m.localSize[1];
            break;
          case Builtin::GlobalSizeZ:
            v = ctx.groups[2] * m.localSize[2];
            break;
          default:
            panic("non-uniform builtin %u in register template", op.aux);
        }
        r[op.a] = v;
        break;
      }
      case MOp::INot: r[op.a] = ~r[op.b]; break;
      case MOp::INeg:
        r[op.a] = static_cast<uint32_t>(-bitsToS(r[op.b]));
        break;
      case MOp::FAbs: r[op.a] = fToBits(std::fabs(bitsToF(r[op.b]))); break;
      case MOp::FNeg: r[op.a] = fToBits(-bitsToF(r[op.b])); break;
      case MOp::FSqrt:
        r[op.a] = fToBits(std::sqrt(bitsToF(r[op.b])));
        break;
      case MOp::FExp: r[op.a] = fToBits(std::exp(bitsToF(r[op.b]))); break;
      case MOp::FLog: r[op.a] = fToBits(std::log(bitsToF(r[op.b]))); break;
      case MOp::FFloor:
        r[op.a] = fToBits(std::floor(bitsToF(r[op.b])));
        break;
      case MOp::FSin: r[op.a] = fToBits(std::sin(bitsToF(r[op.b]))); break;
      case MOp::FCos: r[op.a] = fToBits(std::cos(bitsToF(r[op.b]))); break;
      case MOp::FFma:
        r[op.a] = fToBits(std::fma(bitsToF(r[op.b]), bitsToF(r[op.c]),
                                   bitsToF(r[op.d])));
        break;
      case MOp::FPow:
        r[op.a] = fToBits(std::pow(bitsToF(r[op.b]), bitsToF(r[op.c])));
        break;
      case MOp::CvtSF:
        r[op.a] = fToBits(static_cast<float>(bitsToS(r[op.b])));
        break;
      case MOp::CvtFS:
        r[op.a] =
            static_cast<uint32_t>(static_cast<int32_t>(bitsToF(r[op.b])));
        break;
      case MOp::Select:
        r[op.a] = r[op.b] ? r[op.c] : r[op.d];
        break;
      case MOp::ConstAlu:
        r[op.a] = op.b;
        r[op.c] =
            evalBin(static_cast<BinKind>(op.aux), r[op.d], r[op.e]);
        break;
      case MOp::IMulAdd: {
        uint32_t t = r[op.b] * r[op.c];
        r[op.a] = t;
        r[op.d] = t + r[op.e];
        break;
      }
      case MOp::IAddAdd: {
        uint32_t t = r[op.b] + r[op.c];
        r[op.a] = t;
        r[op.d] = t + r[op.e];
        break;
      }
      default: {
        // Remaining template-pure ops are binary ALU / compares whose
        // MOp order mirrors the interpreter cases; evaluate via the
        // shared evalBin table.
        BinKind kind;
        switch (op.op) {
          case MOp::IAdd: kind = BinKind::IAdd; break;
          case MOp::ISub: kind = BinKind::ISub; break;
          case MOp::IMul: kind = BinKind::IMul; break;
          case MOp::IMin: kind = BinKind::IMin; break;
          case MOp::IMax: kind = BinKind::IMax; break;
          case MOp::IAnd: kind = BinKind::IAnd; break;
          case MOp::IOr:  kind = BinKind::IOr;  break;
          case MOp::IXor: kind = BinKind::IXor; break;
          case MOp::IShl: kind = BinKind::IShl; break;
          case MOp::IShrU: kind = BinKind::IShrU; break;
          case MOp::IShrS: kind = BinKind::IShrS; break;
          case MOp::FAdd: kind = BinKind::FAdd; break;
          case MOp::FSub: kind = BinKind::FSub; break;
          case MOp::FMul: kind = BinKind::FMul; break;
          case MOp::FDiv: kind = BinKind::FDiv; break;
          case MOp::FMin: kind = BinKind::FMin; break;
          case MOp::FMax: kind = BinKind::FMax; break;
          case MOp::IEq: kind = BinKind::IEq; break;
          case MOp::INe: kind = BinKind::INe; break;
          case MOp::ILt: kind = BinKind::ILt; break;
          case MOp::ILe: kind = BinKind::ILe; break;
          case MOp::IGt: kind = BinKind::IGt; break;
          case MOp::IGe: kind = BinKind::IGe; break;
          case MOp::ULt: kind = BinKind::ULt; break;
          case MOp::UGe: kind = BinKind::UGe; break;
          case MOp::FEq: kind = BinKind::FEq; break;
          case MOp::FNe: kind = BinKind::FNe; break;
          case MOp::FLt: kind = BinKind::FLt; break;
          case MOp::FLe: kind = BinKind::FLe; break;
          case MOp::FGt: kind = BinKind::FGt; break;
          case MOp::FGe: kind = BinKind::FGe; break;
          default:
            panic("op %u is not template-pure",
                  static_cast<unsigned>(op.op));
        }
        r[op.a] = evalBin(kind, r[op.b], r[op.c]);
        break;
      }
    }
}

} // namespace

void
Interpreter::prepare(const DispatchContext &new_ctx)
{
    ctx = &new_ctx;
    kernel = new_ctx.kernel;
    VCB_ASSERT(kernel != nullptr, "dispatch without kernel");
    localCount = kernel->localCount();
    regs.resize(static_cast<size_t>(localCount) * kernel->module.regCount);
    pcs.resize(localCount);
    shared.resize(kernel->module.sharedWords);
    tier = effectiveExecTier(*kernel->micro);
    bw = blockWidth();

    // Local-invocation ids per lane, computed once per dispatch: the
    // three divisions per lane entry were measurable at small kernels.
    lids.resize(localCount);
    const uint32_t lx = kernel->module.localSize[0];
    const uint32_t ly = kernel->module.localSize[1];
    for (uint32_t lane = 0; lane < localCount; ++lane)
        lids[lane] = {lane % lx, (lane / lx) % ly, lane / (lx * ly)};

    // Hoisted dispatch-uniform entry ops: evaluate once, then
    // broadcast the written registers to every lane.  The writers are
    // removed from the per-lane stream and write exactly once, so the
    // values stay correct for every workgroup of this dispatch.  The
    // register file is reg-major (reg * localCount + lane), so each
    // broadcast is one contiguous fill.
    const MicroKernel &mk = *kernel->micro;
    if (!mk.templateOps.empty()) {
        const uint32_t reg_count = kernel->module.regCount;
        std::vector<uint32_t> tmpl(reg_count, 0);
        for (const MicroOp &op : mk.templateOps)
            evalTemplateOp(op, tmpl.data(), *ctx, kernel->module);
        for (uint32_t dst : mk.templateDsts)
            std::fill_n(regs.begin() +
                            static_cast<size_t>(dst) * localCount,
                        localCount, tmpl[dst]);
    }
}

void
Interpreter::runWorkgroup(uint32_t wx, uint32_t wy, uint32_t wz,
                          WorkgroupStats &ws, CoalesceSampler *sampler)
{
    const MicroKernel &mk = *kernel->micro;
    // When lowering proved every register is written before it is
    // read, the zero-fill is unobservable: skip it.  Shared memory
    // keeps its deterministic zero state per workgroup.
    if (!mk.skipRegZeroInit)
        std::fill(regs.begin(), regs.end(), 0u);
    std::fill(shared.begin(), shared.end(), 0u);
    if (sampler)
        sampler->beginWorkgroup();

    ws.invocations += localCount;

    // A sampler or robust access forces the instrumented tier for this
    // workgroup regardless of the per-kernel selection.
    const ExecTier t = (sampler != nullptr || ctx->robustAccess)
                           ? ExecTier::Instrumented
                           : tier;
    const bool blocked = t == ExecTier::Trace || t == ExecTier::Block;
    ws.tierWorkgroups[static_cast<size_t>(t)] += 1;

    // Phased execution, one executor call per phase: every lane runs
    // from its pc until Ret or Barrier.  At each phase boundary either
    // all lanes returned (done), all stopped at a barrier (release and
    // run the next phase), or the kernel diverged (trap).  Barrier-free
    // kernels complete in a single phase.  On the block/trace tiers,
    // phases whose lanes all resume at one pc run over lane blocks;
    // phases with scattered resume points (and the lane-major /
    // instrumented tiers throughout) go lane-major.
    std::fill(pcs.begin(), pcs.end(), 0u);
    bool uniform = blocked;
    for (;;) {
        uint32_t done = 0;
        uint32_t at_barrier = 0;
        if (t == ExecTier::Instrumented)
            runPhase<true>(0, localCount, wx, wy, wz, ws, sampler, done,
                           at_barrier);
        else if (t == ExecTier::LaneMajor)
            runPhase<false>(0, localCount, wx, wy, wz, ws, nullptr,
                            done, at_barrier);
        else if (uniform)
            runPhaseWgDyn(t == ExecTier::Trace, pcs[0], wx, wy, wz, ws,
                          done, at_barrier);
        else
            // Scattered resume points (lanes released from different
            // barriers): per-block containment from the saved pcs.
            runPhaseBlocksDyn(wx, wy, wz, ws, done, at_barrier);
        if (at_barrier == 0)
            break;
        if (done > 0) {
            panic("kernel '%s': barrier divergence in workgroup "
                  "(%u,%u,%u): %u lanes at barrier, %u returned",
                  kernel->module.name.c_str(), wx, wy, wz, at_barrier,
                  done);
        }
        // Release the barrier: every lane resumes past its Barrier.
        ws.barriers += 1;
        if (blocked) {
            uniform = true;
            for (uint32_t lane = 1; lane < localCount && uniform; ++lane)
                uniform = pcs[lane] == pcs[0];
        }
    }
    if (sampler)
        sampler->endWorkgroup();
}

/**
 * The lane executor walks the micro-op stream by pointer; one handler
 * body per MOp, shared between two dispatch strategies:
 *
 *  - VCB_THREADED_DISPATCH=1: direct-threaded via GCC/Clang computed
 *    goto — each handler jumps straight to the next handler through a
 *    label table (one indirect-branch site per handler).
 *  - VCB_THREADED_DISPATCH=0: a classic switch-in-loop.
 *
 * Which wins depends on the host branch predictor; the default is
 * chosen by measurement (tools/vcb_perf) and can be overridden with
 * -DVCB_THREADED_DISPATCH=0/1.  On the reference machines the switch
 * form predicts better once the handler set grew past ~80 ops, so it
 * is the default.  NEXT falls through to the following micro-op; XFER
 * transfers control and charges the target's straight-line run cost
 * (see MicroKernel::costFrom).
 */
#ifndef VCB_THREADED_DISPATCH
#define VCB_THREADED_DISPATCH 0
#endif
#if VCB_THREADED_DISPATCH && !defined(__GNUC__) && !defined(__clang__)
#error "threaded dispatch requires computed goto (GCC/Clang)"
#endif

#if VCB_THREADED_DISPATCH
#define VCB_OP(name) L_##name:
#define NEXT                                                              \
    do {                                                                  \
        ++ip;                                                             \
        goto *kJump[static_cast<size_t>(ip->op)];                         \
    } while (0)
#define XFER(target)                                                      \
    do {                                                                  \
        const uint32_t xfer_pc = (target);                                \
        ip = ops + xfer_pc;                                               \
        cycles += cost_from[xfer_pc];                                     \
        goto *kJump[static_cast<size_t>(ip->op)];                         \
    } while (0)
#else
#define VCB_OP(name) case MOp::name:
#define NEXT break
#define XFER(target)                                                      \
    do {                                                                  \
        const uint32_t xfer_pc = (target);                                \
        ip = ops + xfer_pc;                                               \
        cycles += cost_from[xfer_pc];                                     \
        goto dispatch;                                                    \
    } while (0)
#endif

/** Lane register access: the register file is reg-major so the
 *  op-major executor reads each register as a contiguous lane vector;
 *  the lane-major executor indexes column `lane` via this macro. */
#define R(x) r[static_cast<size_t>(x) * lc]

/** Fused compare+branch handler: write the flag, branch on sense. */
#define VCB_CMPBR(name, expr)                                             \
    VCB_OP(name) {                                                        \
        const uint32_t x = R(ip->b);                                      \
        const uint32_t y = R(ip->c);                                      \
        const uint32_t cond = (expr);                                     \
        R(ip->a) = cond;                                                  \
        XFER(cond == ip->aux ? ip->d : pcOf() + 1);                       \
    }

template <bool Instrumented>
void
Interpreter::runPhase(uint32_t lane_begin, uint32_t lane_end,
                      uint32_t wx, uint32_t wy, uint32_t wz,
                      WorkgroupStats &ws, CoalesceSampler *sampler,
                      uint32_t &done_out, uint32_t &barrier_out)
{
#if VCB_THREADED_DISPATCH
    // Must match the MOp enumeration order exactly.
    static const void *const kJump[] = {
        &&L_Const, &&L_Mov, &&L_LdBuiltin, &&L_LdPush,
        &&L_IAdd, &&L_ISub, &&L_IMul, &&L_IDiv, &&L_IRem, &&L_IMin,
        &&L_IMax, &&L_IAnd, &&L_IOr, &&L_IXor,
        &&L_INot, &&L_INeg, &&L_IShl, &&L_IShrU, &&L_IShrS,
        &&L_FAdd, &&L_FSub, &&L_FMul, &&L_FDiv, &&L_FMin, &&L_FMax,
        &&L_FAbs, &&L_FNeg, &&L_FSqrt, &&L_FExp, &&L_FLog,
        &&L_FFloor, &&L_FSin, &&L_FCos, &&L_FFma, &&L_FPow,
        &&L_CvtSF, &&L_CvtFS,
        &&L_IEq, &&L_INe, &&L_ILt, &&L_ILe, &&L_IGt, &&L_IGe, &&L_ULt,
        &&L_UGe, &&L_FEq, &&L_FNe, &&L_FLt, &&L_FLe, &&L_FGt, &&L_FGe,
        &&L_Select,
        &&L_LdBuf, &&L_StBuf, &&L_LdShared, &&L_StShared,
        &&L_AtomIAdd, &&L_AtomIOr, &&L_AtomIMin, &&L_AtomIMax,
        &&L_Jmp, &&L_BrTrue, &&L_BrFalse,
        &&L_CmpBrIEq, &&L_CmpBrINe, &&L_CmpBrILt, &&L_CmpBrILe,
        &&L_CmpBrIGt, &&L_CmpBrIGe, &&L_CmpBrULt, &&L_CmpBrUGe,
        &&L_CmpBrFEq, &&L_CmpBrFNe, &&L_CmpBrFLt, &&L_CmpBrFLe,
        &&L_CmpBrFGt, &&L_CmpBrFGe,
        &&L_ConstAlu, &&L_IAddLd, &&L_IAddSt, &&L_IMulAdd, &&L_IAddAdd,
        &&L_IAddLdSh, &&L_IAddStSh, &&L_MulAddLdSh, &&L_MulAddStSh,
        &&L_FMulFAdd, &&L_FMulFSub,
        &&L_LdShFMul, &&L_LdShFSub, &&L_LdShFDiv,
        &&L_FSubStSh, &&L_FDivStSh, &&L_IDivRem,
        &&L_Super, &&L_SuperLoop,
        &&L_Barrier, &&L_Ret,
    };
    static_assert(sizeof(kJump) / sizeof(kJump[0]) ==
                      static_cast<size_t>(MOp::Count),
                  "jump table out of sync with MOp");
#endif

    const CompiledKernel &k = *kernel;
    const MicroKernel &mk = *k.micro;
    const MicroOp *const ops = mk.ops.data();
    const uint32_t *const cost_from = mk.costFrom.data();
    const size_t lc = localCount;
    const BufferBinding *const bufs = ctx->buffers.data();
    uint64_t *const site_exec = ws.siteExec.data();
    uint32_t *const sh = shared.data();
    const uint64_t shared_words = shared.size();
    const bool robust = Instrumented && ctx->robustAccess;
    const uint32_t lx = k.module.localSize[0];
    const uint32_t ly = k.module.localSize[1];

    uint32_t lane = lane_begin;
    uint32_t done = 0;
    uint32_t at_barrier = 0;
    uint32_t *r = regs.data();
    const MicroOp *ip = nullptr;
    uint64_t cycles = 0;

    auto pcOf = [&]() -> uint32_t {
        return static_cast<uint32_t>(ip - ops);
    };

    auto oob = [&](uint32_t binding, uint64_t addr,
                   uint64_t words) -> void {
        panic("kernel '%s' @%u: binding %u access [%llu] out of bounds "
              "(%llu words)",
              k.module.name.c_str(), pcOf(), binding,
              (unsigned long long)addr, (unsigned long long)words);
    };

    /** Bounds-check/clamp one global-memory access and account it. */
    auto resolve = [&](uint32_t binding, uint64_t addr,
                       uint32_t site) -> uint32_t * {
        const BufferBinding &buf = bufs[binding];
        if (addr >= buf.words) [[unlikely]] {
            if (!robust)
                oob(binding, addr, buf.words);
            addr = buf.words ? buf.words - 1 : 0;
        }
        site_exec[site] += 1;
        if (Instrumented && sampler)
            sampler->record(lane, site, addr * 4);
        return buf.data + addr;
    };

    if (lane >= lane_end)
        return;

new_lane:
    // Per-lane entry: bind the lane's register column (the file is
    // reg-major: R(x) = regs[x * localCount + lane]), charge the first
    // straight-line run (issue cost is pre-summed per run: one add on
    // entry and per control transfer instead of per op), and execute.
    {
        const uint32_t start_pc = pcs[lane];
        r = regs.data() + lane;
        ip = ops + start_pc;
        cycles = cost_from[start_pc];
    }

#if VCB_THREADED_DISPATCH
    goto *kJump[static_cast<size_t>(ip->op)];
#else
dispatch:
    for (;;) {
        switch (ip->op) {
#endif

VCB_OP(Const)
    R(ip->a) = ip->b;
    NEXT;
VCB_OP(Mov)
    R(ip->a) = R(ip->b);
    NEXT;
VCB_OP(LdBuiltin) {
    using spirv::Builtin;
    const LaneId lid = lids[lane];
    uint32_t v = 0;
    switch (static_cast<Builtin>(ip->aux)) {
      case Builtin::GlobalIdX: v = wx * lx + lid.x; break;
      case Builtin::GlobalIdY: v = wy * ly + lid.y; break;
      case Builtin::GlobalIdZ:
        v = wz * k.module.localSize[2] + lid.z;
        break;
      case Builtin::LocalIdX: v = lid.x; break;
      case Builtin::LocalIdY: v = lid.y; break;
      case Builtin::LocalIdZ: v = lid.z; break;
      case Builtin::GroupIdX: v = wx; break;
      case Builtin::GroupIdY: v = wy; break;
      case Builtin::GroupIdZ: v = wz; break;
      case Builtin::NumGroupsX: v = ctx->groups[0]; break;
      case Builtin::NumGroupsY: v = ctx->groups[1]; break;
      case Builtin::NumGroupsZ: v = ctx->groups[2]; break;
      case Builtin::LocalSizeX: v = lx; break;
      case Builtin::LocalSizeY: v = ly; break;
      case Builtin::LocalSizeZ: v = k.module.localSize[2]; break;
      case Builtin::GlobalSizeX: v = ctx->groups[0] * lx; break;
      case Builtin::GlobalSizeY: v = ctx->groups[1] * ly; break;
      case Builtin::GlobalSizeZ:
        v = ctx->groups[2] * k.module.localSize[2];
        break;
      case Builtin::LocalLinearId: v = lane; break;
      case Builtin::Count: break;
    }
    R(ip->a) = v;
    NEXT;
}
VCB_OP(LdPush)
    // Range-checked at lowering against the validated module; the
    // engine asserts the dispatch provides the full block.
    R(ip->a) = ctx->push[ip->b];
    NEXT;

VCB_OP(IAdd) R(ip->a) = R(ip->b) + R(ip->c); NEXT;
VCB_OP(ISub) R(ip->a) = R(ip->b) - R(ip->c); NEXT;
VCB_OP(IMul) R(ip->a) = R(ip->b) * R(ip->c); NEXT;
VCB_OP(IDiv)
    if (R(ip->c) == 0)
        panic("kernel '%s' @%u: integer division by zero",
              k.module.name.c_str(), pcOf());
    R(ip->a) =
        static_cast<uint32_t>(bitsToS(R(ip->b)) / bitsToS(R(ip->c)));
    NEXT;
VCB_OP(IRem)
    if (R(ip->c) == 0)
        panic("kernel '%s' @%u: integer remainder by zero",
              k.module.name.c_str(), pcOf());
    R(ip->a) =
        static_cast<uint32_t>(bitsToS(R(ip->b)) % bitsToS(R(ip->c)));
    NEXT;
VCB_OP(IMin)
    R(ip->a) = static_cast<uint32_t>(
        std::min(bitsToS(R(ip->b)), bitsToS(R(ip->c))));
    NEXT;
VCB_OP(IMax)
    R(ip->a) = static_cast<uint32_t>(
        std::max(bitsToS(R(ip->b)), bitsToS(R(ip->c))));
    NEXT;
VCB_OP(IAnd) R(ip->a) = R(ip->b) & R(ip->c); NEXT;
VCB_OP(IOr)  R(ip->a) = R(ip->b) | R(ip->c); NEXT;
VCB_OP(IXor) R(ip->a) = R(ip->b) ^ R(ip->c); NEXT;
VCB_OP(INot) R(ip->a) = ~R(ip->b); NEXT;
VCB_OP(INeg) R(ip->a) = static_cast<uint32_t>(-bitsToS(R(ip->b))); NEXT;
VCB_OP(IShl) R(ip->a) = R(ip->b) << (R(ip->c) & 31); NEXT;
VCB_OP(IShrU) R(ip->a) = R(ip->b) >> (R(ip->c) & 31); NEXT;
VCB_OP(IShrS)
    R(ip->a) =
        static_cast<uint32_t>(bitsToS(R(ip->b)) >> (R(ip->c) & 31));
    NEXT;

VCB_OP(FAdd) R(ip->a) = fToBits(bitsToF(R(ip->b)) + bitsToF(R(ip->c))); NEXT;
VCB_OP(FSub) R(ip->a) = fToBits(bitsToF(R(ip->b)) - bitsToF(R(ip->c))); NEXT;
VCB_OP(FMul) R(ip->a) = fToBits(bitsToF(R(ip->b)) * bitsToF(R(ip->c))); NEXT;
VCB_OP(FDiv) R(ip->a) = fToBits(bitsToF(R(ip->b)) / bitsToF(R(ip->c))); NEXT;
VCB_OP(FMin)
    R(ip->a) = fToBits(std::fmin(bitsToF(R(ip->b)), bitsToF(R(ip->c))));
    NEXT;
VCB_OP(FMax)
    R(ip->a) = fToBits(std::fmax(bitsToF(R(ip->b)), bitsToF(R(ip->c))));
    NEXT;
VCB_OP(FAbs) R(ip->a) = fToBits(std::fabs(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FNeg) R(ip->a) = fToBits(-bitsToF(R(ip->b))); NEXT;
VCB_OP(FSqrt) R(ip->a) = fToBits(std::sqrt(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FExp) R(ip->a) = fToBits(std::exp(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FLog) R(ip->a) = fToBits(std::log(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FFloor) R(ip->a) = fToBits(std::floor(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FSin) R(ip->a) = fToBits(std::sin(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FCos) R(ip->a) = fToBits(std::cos(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FFma)
    R(ip->a) = fToBits(
        std::fma(bitsToF(R(ip->b)), bitsToF(R(ip->c)), bitsToF(R(ip->d))));
    NEXT;
VCB_OP(FPow)
    R(ip->a) = fToBits(std::pow(bitsToF(R(ip->b)), bitsToF(R(ip->c))));
    NEXT;

VCB_OP(CvtSF) R(ip->a) = fToBits(static_cast<float>(bitsToS(R(ip->b)))); NEXT;
VCB_OP(CvtFS)
    R(ip->a) = static_cast<uint32_t>(static_cast<int32_t>(bitsToF(R(ip->b))));
    NEXT;

VCB_OP(IEq) R(ip->a) = R(ip->b) == R(ip->c); NEXT;
VCB_OP(INe) R(ip->a) = R(ip->b) != R(ip->c); NEXT;
VCB_OP(ILt) R(ip->a) = bitsToS(R(ip->b)) < bitsToS(R(ip->c)); NEXT;
VCB_OP(ILe) R(ip->a) = bitsToS(R(ip->b)) <= bitsToS(R(ip->c)); NEXT;
VCB_OP(IGt) R(ip->a) = bitsToS(R(ip->b)) > bitsToS(R(ip->c)); NEXT;
VCB_OP(IGe) R(ip->a) = bitsToS(R(ip->b)) >= bitsToS(R(ip->c)); NEXT;
VCB_OP(ULt) R(ip->a) = R(ip->b) < R(ip->c); NEXT;
VCB_OP(UGe) R(ip->a) = R(ip->b) >= R(ip->c); NEXT;
VCB_OP(FEq) R(ip->a) = bitsToF(R(ip->b)) == bitsToF(R(ip->c)); NEXT;
VCB_OP(FNe) R(ip->a) = bitsToF(R(ip->b)) != bitsToF(R(ip->c)); NEXT;
VCB_OP(FLt) R(ip->a) = bitsToF(R(ip->b)) < bitsToF(R(ip->c)); NEXT;
VCB_OP(FLe) R(ip->a) = bitsToF(R(ip->b)) <= bitsToF(R(ip->c)); NEXT;
VCB_OP(FGt) R(ip->a) = bitsToF(R(ip->b)) > bitsToF(R(ip->c)); NEXT;
VCB_OP(FGe) R(ip->a) = bitsToF(R(ip->b)) >= bitsToF(R(ip->c)); NEXT;
VCB_OP(Select)
    R(ip->a) = R(ip->b) ? R(ip->c) : R(ip->d);
    NEXT;

VCB_OP(LdBuf) {
    uint32_t *p = resolve(ip->b, R(ip->c), ip->d);
    R(ip->a) =
        std::atomic_ref<uint32_t>(*p).load(std::memory_order_relaxed);
    NEXT;
}
VCB_OP(StBuf) {
    uint32_t *p = resolve(ip->a, R(ip->b), ip->d);
    std::atomic_ref<uint32_t>(*p).store(R(ip->c),
                                        std::memory_order_relaxed);
    NEXT;
}
VCB_OP(LdShared) {
    uint64_t addr = R(ip->b);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    R(ip->a) = sh[addr];
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(StShared) {
    uint64_t addr = R(ip->a);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared store [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    sh[addr] = R(ip->b);
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(AtomIAdd) {
    uint32_t *p = resolve(ip->b, R(ip->c), ip->e);
    R(ip->a) = std::atomic_ref<uint32_t>(*p).fetch_add(
        R(ip->d), std::memory_order_relaxed);
    ws.atomicOps += 1;
    NEXT;
}
VCB_OP(AtomIOr) {
    uint32_t *p = resolve(ip->b, R(ip->c), ip->e);
    R(ip->a) = std::atomic_ref<uint32_t>(*p).fetch_or(
        R(ip->d), std::memory_order_relaxed);
    ws.atomicOps += 1;
    NEXT;
}
VCB_OP(AtomIMin)
VCB_OP(AtomIMax) {
    uint32_t *p = resolve(ip->b, R(ip->c), ip->e);
    std::atomic_ref<uint32_t> ref(*p);
    uint32_t old = ref.load(std::memory_order_relaxed);
    for (;;) {
        int32_t cur = bitsToS(old);
        int32_t arg = bitsToS(R(ip->d));
        int32_t want = ip->op == MOp::AtomIMin ? std::min(cur, arg)
                                               : std::max(cur, arg);
        if (want == cur)
            break;
        if (ref.compare_exchange_weak(old, static_cast<uint32_t>(want),
                                      std::memory_order_relaxed))
            break;
    }
    R(ip->a) = old;
    ws.atomicOps += 1;
    NEXT;
}

VCB_OP(Jmp)
    XFER(ip->a);
VCB_OP(BrTrue)
    XFER(R(ip->a) ? ip->b : pcOf() + 1);
VCB_OP(BrFalse)
    XFER(!R(ip->a) ? ip->b : pcOf() + 1);

VCB_CMPBR(CmpBrIEq, x == y)
VCB_CMPBR(CmpBrINe, x != y)
VCB_CMPBR(CmpBrILt, bitsToS(x) < bitsToS(y))
VCB_CMPBR(CmpBrILe, bitsToS(x) <= bitsToS(y))
VCB_CMPBR(CmpBrIGt, bitsToS(x) > bitsToS(y))
VCB_CMPBR(CmpBrIGe, bitsToS(x) >= bitsToS(y))
VCB_CMPBR(CmpBrULt, x < y)
VCB_CMPBR(CmpBrUGe, x >= y)
VCB_CMPBR(CmpBrFEq, bitsToF(x) == bitsToF(y))
VCB_CMPBR(CmpBrFNe, bitsToF(x) != bitsToF(y))
VCB_CMPBR(CmpBrFLt, bitsToF(x) < bitsToF(y))
VCB_CMPBR(CmpBrFLe, bitsToF(x) <= bitsToF(y))
VCB_CMPBR(CmpBrFGt, bitsToF(x) > bitsToF(y))
VCB_CMPBR(CmpBrFGe, bitsToF(x) >= bitsToF(y))

VCB_OP(ConstAlu)
    R(ip->a) = ip->b;
    R(ip->c) = evalBin(static_cast<BinKind>(ip->aux), R(ip->d), R(ip->e));
    NEXT;
VCB_OP(IAddLd) {
    uint32_t addr = R(ip->b) + R(ip->c);
    R(ip->a) = addr;
    uint32_t *p = resolve(ip->aux, addr, ip->e);
    R(ip->d) =
        std::atomic_ref<uint32_t>(*p).load(std::memory_order_relaxed);
    NEXT;
}
VCB_OP(IAddSt) {
    uint32_t addr = R(ip->b) + R(ip->c);
    R(ip->a) = addr;
    uint32_t *p = resolve(ip->aux, addr, ip->e);
    std::atomic_ref<uint32_t>(*p).store(R(ip->d),
                                        std::memory_order_relaxed);
    NEXT;
}
VCB_OP(IMulAdd) {
    uint32_t t = R(ip->b) * R(ip->c);
    R(ip->a) = t;
    R(ip->d) = t + R(ip->e);
    NEXT;
}
VCB_OP(IAddAdd) {
    uint32_t t = R(ip->b) + R(ip->c);
    R(ip->a) = t;
    R(ip->d) = t + R(ip->e);
    NEXT;
}
VCB_OP(IAddLdSh) {
    uint32_t addr = R(ip->b) + R(ip->c);
    R(ip->a) = addr;
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%u] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), addr,
               (unsigned long long)shared_words);
    R(ip->d) = sh[addr];
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(IAddStSh) {
    uint32_t addr = R(ip->b) + R(ip->c);
    R(ip->a) = addr;
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared store [%u] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), addr,
               (unsigned long long)shared_words);
    sh[addr] = R(ip->d);
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(MulAddLdSh) {
    uint32_t t = R(ip->b) * R(ip->c);
    R(ip->a) = t;
    uint32_t addr = t + R(ip->e);
    R(ip->d) = addr;
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%u] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), addr,
               (unsigned long long)shared_words);
    R(ip->aux) = sh[addr];
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(MulAddStSh) {
    uint32_t t = R(ip->b) * R(ip->c);
    R(ip->a) = t;
    uint32_t addr = t + R(ip->e);
    R(ip->d) = addr;
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared store [%u] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), addr,
               (unsigned long long)shared_words);
    sh[addr] = R(ip->aux);
    ws.sharedAccesses += 1;
    NEXT;
}

VCB_OP(FMulFAdd) {
    const float t = bitsToF(R(ip->b)) * bitsToF(R(ip->c));
    R(ip->a) = fToBits(t);
    const float z = bitsToF(R(ip->e));
    R(ip->d) = fToBits(ip->aux & 1 ? t + z : z + t);
    NEXT;
}
VCB_OP(FMulFSub) {
    const float t = bitsToF(R(ip->b)) * bitsToF(R(ip->c));
    R(ip->a) = fToBits(t);
    const float z = bitsToF(R(ip->e));
    R(ip->d) = fToBits(ip->aux & 1 ? t - z : z - t);
    NEXT;
}
VCB_OP(LdShFMul) {
    uint64_t addr = R(ip->b);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    const uint32_t v = sh[addr];
    R(ip->a) = v;
    ws.sharedAccesses += 1;
    const float z = bitsToF(R(ip->e));
    R(ip->d) = fToBits(ip->aux & 1 ? bitsToF(v) * z : z * bitsToF(v));
    NEXT;
}
VCB_OP(LdShFSub) {
    uint64_t addr = R(ip->b);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    const uint32_t v = sh[addr];
    R(ip->a) = v;
    ws.sharedAccesses += 1;
    const float z = bitsToF(R(ip->e));
    R(ip->d) = fToBits(ip->aux & 1 ? bitsToF(v) - z : z - bitsToF(v));
    NEXT;
}
VCB_OP(LdShFDiv) {
    uint64_t addr = R(ip->b);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    const uint32_t v = sh[addr];
    R(ip->a) = v;
    ws.sharedAccesses += 1;
    const float z = bitsToF(R(ip->e));
    R(ip->d) = fToBits(ip->aux & 1 ? bitsToF(v) / z : z / bitsToF(v));
    NEXT;
}
VCB_OP(FSubStSh) {
    const uint32_t t =
        fToBits(bitsToF(R(ip->b)) - bitsToF(R(ip->c)));
    R(ip->a) = t;
    uint64_t addr = R(ip->d);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared store [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    sh[addr] = t;
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(FDivStSh) {
    const uint32_t t =
        fToBits(bitsToF(R(ip->b)) / bitsToF(R(ip->c)));
    R(ip->a) = t;
    uint64_t addr = R(ip->d);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared store [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    sh[addr] = t;
    ws.sharedAccesses += 1;
    NEXT;
}

VCB_OP(IDivRem) {
    const int32_t den = bitsToS(R(ip->c));
    if (den == 0)
        panic("kernel '%s' @%u: integer division by zero",
              k.module.name.c_str(), pcOf());
    const int32_t num = bitsToS(R(ip->b));
    R(ip->a) = static_cast<uint32_t>(num / den);
    R(ip->d) = static_cast<uint32_t>(num % den);
    NEXT;
}

VCB_OP(Super) {
    // One fused straight-line run (see SuperKind in microop.h).  The
    // recognizer proved the run's scratch registers dead outside it,
    // so intermediates stay in locals; resolve() keeps per-access
    // sampling, robust clamping and site counts exactly as the
    // unfused op sequence produced them.
    const SuperOp &sup = mk.supers[ip->aux];
    switch (sup.kind) {
      case SuperKind::SqDistStep: {
        const uint32_t a1 = R(sup.r[0]) * R(sup.r[1]) + R(sup.r[2]);
        const uint32_t xv =
            std::atomic_ref<uint32_t>(*resolve(sup.buf[0], a1,
                                               sup.site[0]))
                .load(std::memory_order_relaxed);
        const uint32_t a2 = R(sup.r[3]) + R(sup.r[4]);
        const uint32_t yv =
            std::atomic_ref<uint32_t>(*resolve(sup.buf[1], a2,
                                               sup.site[1]))
                .load(std::memory_order_relaxed);
        const float d = bitsToF(xv) - bitsToF(yv);
        const float t = d * d;
        const float z = bitsToF(R(sup.r[5]));
        R(sup.r[5]) = fToBits(sup.aux & 1 ? t + z : z + t);
        R(sup.r[6]) = R(sup.r[7]) + R(sup.r[8]);
        break;
      }
      case SuperKind::ShDotStep: {
        const uint32_t a1 = R(sup.r[0]) * R(sup.r[1]) + R(sup.r[2]);
        VCB_ASSERT(a1 < shared_words,
                   "kernel '%s' @%u: shared load [%u] out of bounds "
                   "(%llu words)",
                   k.module.name.c_str(), pcOf(), a1,
                   (unsigned long long)shared_words);
        const uint32_t v1 = sh[a1];
        const uint32_t a2 =
            R(sup.r[6]) + (R(sup.r[3]) * R(sup.r[4]) + R(sup.r[5]));
        VCB_ASSERT(a2 < shared_words,
                   "kernel '%s' @%u: shared load [%u] out of bounds "
                   "(%llu words)",
                   k.module.name.c_str(), pcOf(), a2,
                   (unsigned long long)shared_words);
        const uint32_t v2 = sh[a2];
        R(sup.r[8]) = fToBits(
            std::fma(bitsToF(v1), bitsToF(v2), bitsToF(R(sup.r[7]))));
        R(sup.r[9]) = R(sup.r[10]) + R(sup.r[11]);
        ws.sharedAccesses += 2;
        break;
      }
      case SuperKind::Count:
        break;
    }
    NEXT;
}

VCB_OP(SuperLoop) {
    // Fused counted loop (lowering pass 3.6): run to completion for
    // this lane.  Each iteration charges headCost + bodyCost — the
    // exact costFrom charges the unfused CmpBr/body/Jmp stream pays
    // per trip around the back edge — and the head's flag register
    // receives the final (failing) test's value before the transfer
    // to the exit pc.  The access order per lane is unchanged, so
    // sampling, robust clamping and site counts stay exact.
    const SuperOp &sup = mk.supers[ip->aux];
    uint64_t iters = 0;
    while (bitsToS(R(sup.loopB)) < bitsToS(R(sup.loopC))) {
        ++iters;
        switch (sup.kind) {
          case SuperKind::SqDistStep: {
            const uint32_t a1 =
                R(sup.r[0]) * R(sup.r[1]) + R(sup.r[2]);
            const uint32_t xv =
                std::atomic_ref<uint32_t>(*resolve(sup.buf[0], a1,
                                                   sup.site[0]))
                    .load(std::memory_order_relaxed);
            const uint32_t a2 = R(sup.r[3]) + R(sup.r[4]);
            const uint32_t yv =
                std::atomic_ref<uint32_t>(*resolve(sup.buf[1], a2,
                                                   sup.site[1]))
                    .load(std::memory_order_relaxed);
            const float d = bitsToF(xv) - bitsToF(yv);
            const float t = d * d;
            const float z = bitsToF(R(sup.r[5]));
            R(sup.r[5]) = fToBits(sup.aux & 1 ? t + z : z + t);
            R(sup.r[6]) = R(sup.r[7]) + R(sup.r[8]);
            break;
          }
          case SuperKind::ShDotStep: {
            const uint32_t a1 =
                R(sup.r[0]) * R(sup.r[1]) + R(sup.r[2]);
            VCB_ASSERT(a1 < shared_words,
                       "kernel '%s' @%u: shared load [%u] out of "
                       "bounds (%llu words)",
                       k.module.name.c_str(), pcOf(), a1,
                       (unsigned long long)shared_words);
            const uint32_t v1 = sh[a1];
            const uint32_t a2 =
                R(sup.r[6]) + (R(sup.r[3]) * R(sup.r[4]) + R(sup.r[5]));
            VCB_ASSERT(a2 < shared_words,
                       "kernel '%s' @%u: shared load [%u] out of "
                       "bounds (%llu words)",
                       k.module.name.c_str(), pcOf(), a2,
                       (unsigned long long)shared_words);
            const uint32_t v2 = sh[a2];
            R(sup.r[8]) = fToBits(std::fma(bitsToF(v1), bitsToF(v2),
                                           bitsToF(R(sup.r[7]))));
            R(sup.r[9]) = R(sup.r[10]) + R(sup.r[11]);
            ws.sharedAccesses += 2;
            break;
          }
          case SuperKind::Count:
            break;
        }
    }
    cycles += iters * (sup.headCost + sup.bodyCost);
    R(sup.loopFlag) = sup.loopAux;
    XFER(sup.exitPc);
}
VCB_OP(Barrier)
    pcs[lane] = pcOf() + 1;
    ws.laneCycles += cycles;
    ++at_barrier;
    goto lane_done;
VCB_OP(Ret)
    ws.laneCycles += cycles;
    ++done;
    goto lane_done;

#if !VCB_THREADED_DISPATCH
          case MOp::Count:
            panic("kernel '%s' @%u: invalid micro-op",
                  k.module.name.c_str(), pcOf());
        }
        ++ip;
    }
#endif

lane_done:
    if (++lane < lane_end)
        goto new_lane;
    done_out += done;
    barrier_out += at_barrier;
}

#undef VCB_CMPBR
#undef VCB_OP
#undef NEXT
#undef XFER
#undef R

template void
Interpreter::runPhase<false>(uint32_t, uint32_t, uint32_t, uint32_t,
                             uint32_t, WorkgroupStats &,
                             CoalesceSampler *, uint32_t &, uint32_t &);
template void
Interpreter::runPhase<true>(uint32_t, uint32_t, uint32_t, uint32_t,
                            uint32_t, WorkgroupStats &,
                            CoalesceSampler *, uint32_t &, uint32_t &);

void
Interpreter::execSuper(const SuperOp &sup, uint32_t pc,
                       uint32_t lane_begin, uint32_t lane_end,
                       WorkgroupStats &ws)
{
    const CompiledKernel &k = *kernel;
    const size_t lc = localCount;
    uint32_t *const regs0 = regs.data();
    const BufferBinding *const bufs = ctx->buffers.data();
    uint64_t *const site_exec = ws.siteExec.data();
    uint32_t *const sh = shared.data();
    const uint64_t shared_words = shared.size();
    const uint32_t n = lane_end - lane_begin;
    // Lane vector of register x, offset to the first lane of the
    // range (the register file is reg-major).
    auto V = [&](uint32_t x) {
        return regs0 + static_cast<size_t>(x) * lc + lane_begin;
    };
    auto oob = [&](uint32_t binding, uint64_t addr,
                   uint64_t words) -> void {
        panic("kernel '%s' @%u: binding %u access [%llu] out of bounds "
              "(%llu words)",
              k.module.name.c_str(), pc, binding,
              (unsigned long long)addr, (unsigned long long)words);
    };

    // Statement order within each lane matches the fused op sequence
    // exactly, so register aliasing between the distilled operands
    // (e.g. the loop counter read early and incremented last) keeps
    // per-lane semantics; lanes are independent, so fusing the whole
    // run per lane is unobservable.
    //
    // Loop records (sup.loop) run the counted loop to completion
    // ITERATION-major: per trip, every still-active lane executes the
    // body before any lane advances — the lane-contiguous memory
    // order of the op-major executor, which is what keeps strided
    // per-lane walks (kmeans reads column gid of a 64K-point matrix)
    // cache-friendly.  The bodies only load from global/shared
    // memory, so the order difference from the lane-major reference
    // is unobservable; a lane whose condition fails stops updating
    // its own registers, so exited lanes stay exited.  The caller
    // performs the exit transfer.
    switch (sup.kind) {
      case SuperKind::SqDistStep: {
        const BufferBinding &b0 = bufs[sup.buf[0]];
        const BufferBinding &b1 = bufs[sup.buf[1]];
        const uint32_t *const IB = V(sup.r[0]);
        const uint32_t *const IC = V(sup.r[1]);
        const uint32_t *const IE = V(sup.r[2]);
        const uint32_t *const AB = V(sup.r[3]);
        const uint32_t *const AC = V(sup.r[4]);
        uint32_t *const ACC = V(sup.r[5]);
        uint32_t *const IA = V(sup.r[6]);
        const uint32_t *const NB = V(sup.r[7]);
        const uint32_t *const NC = V(sup.r[8]);
        const bool left = sup.aux & 1;
        auto body = [&](uint32_t l) __attribute__((always_inline)) {
            const uint32_t a1 = IB[l] * IC[l] + IE[l];
            if (a1 >= b0.words) [[unlikely]]
                oob(sup.buf[0], a1, b0.words);
            const uint32_t xv =
                std::atomic_ref<uint32_t>(b0.data[a1])
                    .load(std::memory_order_relaxed);
            const uint32_t a2 = AB[l] + AC[l];
            if (a2 >= b1.words) [[unlikely]]
                oob(sup.buf[1], a2, b1.words);
            const uint32_t yv =
                std::atomic_ref<uint32_t>(b1.data[a2])
                    .load(std::memory_order_relaxed);
            const float d = bitsToF(xv) - bitsToF(yv);
            const float t = d * d;
            const float z = bitsToF(ACC[l]);
            ACC[l] = fToBits(left ? t + z : z + t);
            IA[l] = NB[l] + NC[l];
        };
        if (!sup.loop) {
            for (uint32_t l = 0; l < n; ++l)
                body(l);
            site_exec[sup.site[0]] += n;
            site_exec[sup.site[1]] += n;
            break;
        }
        const uint32_t *const LB = V(sup.loopB);
        const uint32_t *const LC = V(sup.loopC);
        uint32_t *const FL = V(sup.loopFlag);
        uint64_t total = 0;
        for (;;) {
            uint32_t active = 0;
            for (uint32_t l = 0; l < n; ++l)
                active += bitsToS(LB[l]) < bitsToS(LC[l]);
            if (active == 0)
                break;
            if (active == n) {
                for (uint32_t l = 0; l < n; ++l)
                    body(l);
            } else {
                for (uint32_t l = 0; l < n; ++l)
                    if (bitsToS(LB[l]) < bitsToS(LC[l]))
                        body(l);
            }
            total += active;
        }
        for (uint32_t l = 0; l < n; ++l)
            FL[l] = sup.loopAux;
        site_exec[sup.site[0]] += total;
        site_exec[sup.site[1]] += total;
        ws.laneCycles += total * (sup.headCost + sup.bodyCost);
        break;
      }
      case SuperKind::ShDotStep: {
        const uint32_t *const MB = V(sup.r[0]);
        const uint32_t *const MC = V(sup.r[1]);
        const uint32_t *const ME = V(sup.r[2]);
        const uint32_t *const PB = V(sup.r[3]);
        const uint32_t *const PC = V(sup.r[4]);
        const uint32_t *const PE = V(sup.r[5]);
        const uint32_t *const SB = V(sup.r[6]);
        const uint32_t *const ZD = V(sup.r[7]);
        uint32_t *const ZA = V(sup.r[8]);
        uint32_t *const IA = V(sup.r[9]);
        const uint32_t *const NB = V(sup.r[10]);
        const uint32_t *const NC = V(sup.r[11]);
        auto body = [&](uint32_t l) __attribute__((always_inline)) {
            const uint32_t a1 = MB[l] * MC[l] + ME[l];
            if (a1 >= shared_words) [[unlikely]]
                panic("kernel '%s' @%u: shared load [%u] out of "
                      "bounds (%llu words)",
                      k.module.name.c_str(), pc, a1,
                      (unsigned long long)shared_words);
            const uint32_t v1 = sh[a1];
            const uint32_t a2 = SB[l] + (PB[l] * PC[l] + PE[l]);
            if (a2 >= shared_words) [[unlikely]]
                panic("kernel '%s' @%u: shared load [%u] out of "
                      "bounds (%llu words)",
                      k.module.name.c_str(), pc, a2,
                      (unsigned long long)shared_words);
            const uint32_t v2 = sh[a2];
            ZA[l] = fToBits(
                std::fma(bitsToF(v1), bitsToF(v2), bitsToF(ZD[l])));
            IA[l] = NB[l] + NC[l];
        };
        if (!sup.loop) {
            for (uint32_t l = 0; l < n; ++l)
                body(l);
            ws.sharedAccesses += 2ull * n;
            break;
        }
        const uint32_t *const LB = V(sup.loopB);
        const uint32_t *const LC = V(sup.loopC);
        uint32_t *const FL = V(sup.loopFlag);
        uint64_t total = 0;
        for (;;) {
            uint32_t active = 0;
            for (uint32_t l = 0; l < n; ++l)
                active += bitsToS(LB[l]) < bitsToS(LC[l]);
            if (active == 0)
                break;
            if (active == n) {
                for (uint32_t l = 0; l < n; ++l)
                    body(l);
            } else {
                for (uint32_t l = 0; l < n; ++l)
                    if (bitsToS(LB[l]) < bitsToS(LC[l]))
                        body(l);
            }
            total += active;
        }
        for (uint32_t l = 0; l < n; ++l)
            FL[l] = sup.loopAux;
        ws.sharedAccesses += 2ull * total;
        ws.laneCycles += total * (sup.headCost + sup.bodyCost);
        break;
      }
      case SuperKind::Count:
        break;
    }
}

/** Block lane vector of register x: W contiguous lanes starting at
 *  the current block base (rb points at the block's lane-0 column of
 *  the reg-major file). */
#define BV(x) (rb + static_cast<size_t>(x) * lc)
/** Element-wise binary op over one lane block: compile-time trip
 *  count W over contiguous operands, so the compiler unrolls and
 *  vectorizes.  A may alias B/C only exactly (vector offsets are
 *  multiples of lc), which keeps per-lane semantics. */
#define BBIN(name, expr)                                                  \
    case MOp::name: {                                                     \
        uint32_t *const A = BV(in.a);                                     \
        const uint32_t *const B = BV(in.b);                               \
        const uint32_t *const C = BV(in.c);                               \
        for (uint32_t l = 0; l < W; ++l)                                  \
            A[l] = (expr);                                                \
        break;                                                            \
    }
#define BUN(name, expr)                                                   \
    case MOp::name: {                                                     \
        uint32_t *const A = BV(in.a);                                     \
        const uint32_t *const B = BV(in.b);                               \
        for (uint32_t l = 0; l < W; ++l)                                  \
            A[l] = (expr);                                                \
        break;                                                            \
    }
/** Fused compare+branch: flags written per block lane; a uniform
 *  outcome transfers the whole block, divergence bails only this
 *  block's W lanes to the lane-major executor. */
#define BCMPBR(mop, expr)                                                 \
    case MOp::mop: {                                                      \
        uint32_t *const A = BV(in.a);                                     \
        const uint32_t *const B = BV(in.b);                               \
        const uint32_t *const C = BV(in.c);                               \
        uint32_t taken = 0;                                               \
        const uint32_t sense = in.aux;                                    \
        for (uint32_t l = 0; l < W; ++l) {                                \
            const uint32_t x = B[l];                                      \
            const uint32_t y = C[l];                                      \
            const uint32_t cond = (expr);                                 \
            A[l] = cond;                                                  \
            taken += cond == sense;                                       \
        }                                                                 \
        if (taken == 0 || taken == W) {                                   \
            pc = taken ? in.d : pc + 1;                                   \
            ws.laneCycles +=                                              \
                static_cast<uint64_t>(cost_from[pc]) * W;                 \
            continue;                                                     \
        }                                                                 \
        for (uint32_t l = 0; l < W; ++l)                                  \
            pcs[base + l] = A[l] == sense ? in.d : pc + 1;                \
        runPhase<false>(base, base + W, wx, wy, wz, ws, nullptr, done,    \
                        at_barrier);                                      \
        goto block_done;                                                  \
    }

template <uint32_t W>
void
Interpreter::runPhaseBlocks(uint32_t wx, uint32_t wy, uint32_t wz,
                            WorkgroupStats &ws, uint32_t &done_out,
                            uint32_t &barrier_out)
{
    const CompiledKernel &k = *kernel;
    const MicroKernel &mk = *k.micro;
    const MicroOp *const ops = mk.ops.data();
    const uint32_t *const cost_from = mk.costFrom.data();
    const size_t lc = localCount;
    uint32_t *const regs0 = regs.data();
    const BufferBinding *const bufs = ctx->buffers.data();
    uint64_t *const site_exec = ws.siteExec.data();
    uint32_t *const sh = shared.data();
    const uint64_t shared_words = shared.size();
    const uint32_t lx = k.module.localSize[0];
    const uint32_t ly = k.module.localSize[1];

    uint32_t done = 0;
    uint32_t at_barrier = 0;
    uint32_t pc = 0;

    auto oob = [&](uint32_t binding, uint64_t addr,
                   uint64_t words) -> void {
        panic("kernel '%s' @%u: binding %u access [%llu] out of bounds "
              "(%llu words)",
              k.module.name.c_str(), pc, binding,
              (unsigned long long)addr, (unsigned long long)words);
    };
    auto shOob = [&](const char *what, uint64_t addr) -> void {
        panic("kernel '%s' @%u: shared %s [%llu] out of bounds "
              "(%llu words)",
              k.module.name.c_str(), pc, what, (unsigned long long)addr,
              (unsigned long long)shared_words);
    };

    /**
     * One block global load.  Classify the address vector once:
     *  - contiguous (addr[l] == addr[0] + l) and fully in bounds: one
     *    bounds test, one W-word memcpy.  Global words are relaxed
     *    atomics elsewhere; a word-aligned block copy cannot tear
     *    individual words on supported hosts, and the simulator's
     *    data-race-free execution contract already makes concurrent
     *    conflicting writers to these words UB (benign same-value
     *    races, which a copy preserves, excepted).
     *  - uniform (every lane reads one address): one atomic load,
     *    broadcast — kmeans' centroid reads.
     *  - scattered: per-lane bounds checks, then per-lane loads.
     */
    auto loadBlock = [&](uint32_t *A, const uint32_t *ADDR,
                         uint32_t binding) -> void {
        const BufferBinding &buf = bufs[binding];
        const uint32_t a0 = ADDR[0];
        bool contig = true;
        bool unif = true;
        for (uint32_t l = 1; l < W; ++l) {
            contig &= ADDR[l] == a0 + l;
            unif &= ADDR[l] == a0;
        }
        if (contig && static_cast<uint64_t>(a0) + W <= buf.words) {
            std::memcpy(A, buf.data + a0, W * sizeof(uint32_t));
            return;
        }
        if (a0 >= buf.words) [[unlikely]]
            oob(binding, a0, buf.words);
        if (unif) {
            const uint32_t v = std::atomic_ref<uint32_t>(buf.data[a0])
                                   .load(std::memory_order_relaxed);
            for (uint32_t l = 0; l < W; ++l)
                A[l] = v;
            return;
        }
        for (uint32_t l = 1; l < W; ++l)
            if (ADDR[l] >= buf.words) [[unlikely]]
                oob(binding, ADDR[l], buf.words);
        for (uint32_t l = 0; l < W; ++l)
            A[l] = std::atomic_ref<uint32_t>(buf.data[ADDR[l]])
                       .load(std::memory_order_relaxed);
    };

    /** One block global store: contiguous in-bounds addresses become a
     *  single W-word memcpy (see loadBlock for the race argument);
     *  anything else stores per lane in lane order (duplicate
     *  addresses: last lane wins, as lane-major). */
    auto storeBlock = [&](uint32_t binding, const uint32_t *ADDR,
                          const uint32_t *S) -> void {
        const BufferBinding &buf = bufs[binding];
        const uint32_t a0 = ADDR[0];
        bool contig = true;
        for (uint32_t l = 1; l < W; ++l)
            contig &= ADDR[l] == a0 + l;
        if (contig && static_cast<uint64_t>(a0) + W <= buf.words) {
            std::memcpy(buf.data + a0, S, W * sizeof(uint32_t));
            return;
        }
        for (uint32_t l = 0; l < W; ++l)
            if (ADDR[l] >= buf.words) [[unlikely]]
                oob(binding, ADDR[l], buf.words);
        for (uint32_t l = 0; l < W; ++l)
            std::atomic_ref<uint32_t>(buf.data[ADDR[l]])
                .store(S[l], std::memory_order_relaxed);
    };

    /** Shared-memory bounds: one OR-reduced check per block, the slow
     *  per-lane walk only to report the offending lane. */
    auto shCheck = [&](const uint32_t *ADDR, const char *what) -> void {
        uint32_t bad = 0;
        for (uint32_t l = 0; l < W; ++l)
            bad |= static_cast<uint32_t>(ADDR[l] >= shared_words);
        if (bad) [[unlikely]] {
            for (uint32_t l = 0; l < W; ++l)
                if (ADDR[l] >= shared_words)
                    shOob(what, ADDR[l]);
        }
    };

    // Full blocks of W lanes each run the REST of the phase before the
    // next block starts.  Sequential block order preserves the
    // lane-major executor's global atomic order exactly: a block that
    // reaches an observable-order op (atomic) bails to lane-major
    // below BEFORE executing it, and everything the block ran lockstep
    // up to that point is order-unobservable under the data-race-free
    // contract.
    const uint32_t full = static_cast<uint32_t>(lc - lc % W);
    for (uint32_t base = 0; base < full; base += W) {
        uint32_t *const rb = regs0 + base;
        const LaneId *const lid = lids.data() + base;
        // Resume from the per-lane pcs; a block whose lanes disagree
        // runs lane-major as a block (containing the divergence).
        pc = pcs[base];
        bool blk_uniform = true;
        for (uint32_t l = 1; l < W; ++l)
            blk_uniform &= pcs[base + l] == pc;
        if (!blk_uniform) {
            runPhase<false>(base, base + W, wx, wy, wz, ws, nullptr,
                            done, at_barrier);
            continue;
        }
        // Charge the straight-line run for the block up front, as the
        // lane-major executor does per lane at entry.
        ws.laneCycles += static_cast<uint64_t>(cost_from[pc]) * W;
        for (;;) {
            const MicroOp &in = ops[pc];
            switch (in.op) {
              case MOp::Const: {
                uint32_t *const A = BV(in.a);
                for (uint32_t l = 0; l < W; ++l)
                    A[l] = in.b;
                break;
              }
              case MOp::Mov: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                for (uint32_t l = 0; l < W; ++l)
                    A[l] = B[l];
                break;
              }
              case MOp::LdBuiltin: {
                using spirv::Builtin;
                uint32_t *const A = BV(in.a);
                switch (static_cast<Builtin>(in.aux)) {
                  case Builtin::GlobalIdX:
                    for (uint32_t l = 0; l < W; ++l)
                        A[l] = wx * lx + lid[l].x;
                    break;
                  case Builtin::GlobalIdY:
                    for (uint32_t l = 0; l < W; ++l)
                        A[l] = wy * ly + lid[l].y;
                    break;
                  case Builtin::GlobalIdZ:
                    for (uint32_t l = 0; l < W; ++l)
                        A[l] = wz * k.module.localSize[2] + lid[l].z;
                    break;
                  case Builtin::LocalIdX:
                    for (uint32_t l = 0; l < W; ++l)
                        A[l] = lid[l].x;
                    break;
                  case Builtin::LocalIdY:
                    for (uint32_t l = 0; l < W; ++l)
                        A[l] = lid[l].y;
                    break;
                  case Builtin::LocalIdZ:
                    for (uint32_t l = 0; l < W; ++l)
                        A[l] = lid[l].z;
                    break;
                  case Builtin::LocalLinearId:
                    for (uint32_t l = 0; l < W; ++l)
                        A[l] = base + l;
                    break;
                  case Builtin::GroupIdX: std::fill_n(A, W, wx); break;
                  case Builtin::GroupIdY: std::fill_n(A, W, wy); break;
                  case Builtin::GroupIdZ: std::fill_n(A, W, wz); break;
                  case Builtin::NumGroupsX:
                    std::fill_n(A, W, ctx->groups[0]);
                    break;
                  case Builtin::NumGroupsY:
                    std::fill_n(A, W, ctx->groups[1]);
                    break;
                  case Builtin::NumGroupsZ:
                    std::fill_n(A, W, ctx->groups[2]);
                    break;
                  case Builtin::LocalSizeX: std::fill_n(A, W, lx); break;
                  case Builtin::LocalSizeY: std::fill_n(A, W, ly); break;
                  case Builtin::LocalSizeZ:
                    std::fill_n(A, W, k.module.localSize[2]);
                    break;
                  case Builtin::GlobalSizeX:
                    std::fill_n(A, W, ctx->groups[0] * lx);
                    break;
                  case Builtin::GlobalSizeY:
                    std::fill_n(A, W, ctx->groups[1] * ly);
                    break;
                  case Builtin::GlobalSizeZ:
                    std::fill_n(A, W,
                                ctx->groups[2] * k.module.localSize[2]);
                    break;
                  case Builtin::Count: std::fill_n(A, W, 0u); break;
                }
                break;
              }
              case MOp::LdPush: {
                uint32_t *const A = BV(in.a);
                std::fill_n(A, W, ctx->push[in.b]);
                break;
              }

              BBIN(IAdd, B[l] + C[l])
              BBIN(ISub, B[l] - C[l])
              BBIN(IMul, B[l] * C[l])
              case MOp::IDiv: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                for (uint32_t l = 0; l < W; ++l) {
                    if (C[l] == 0)
                        panic("kernel '%s' @%u: integer division by "
                              "zero",
                              k.module.name.c_str(), pc);
                    A[l] = static_cast<uint32_t>(bitsToS(B[l]) /
                                                 bitsToS(C[l]));
                }
                break;
              }
              case MOp::IRem: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                for (uint32_t l = 0; l < W; ++l) {
                    if (C[l] == 0)
                        panic("kernel '%s' @%u: integer remainder by "
                              "zero",
                              k.module.name.c_str(), pc);
                    A[l] = static_cast<uint32_t>(bitsToS(B[l]) %
                                                 bitsToS(C[l]));
                }
                break;
              }
              BBIN(IMin, static_cast<uint32_t>(
                             std::min(bitsToS(B[l]), bitsToS(C[l]))))
              BBIN(IMax, static_cast<uint32_t>(
                             std::max(bitsToS(B[l]), bitsToS(C[l]))))
              BBIN(IAnd, B[l] & C[l])
              BBIN(IOr, B[l] | C[l])
              BBIN(IXor, B[l] ^ C[l])
              BUN(INot, ~B[l])
              BUN(INeg, static_cast<uint32_t>(-bitsToS(B[l])))
              BBIN(IShl, B[l] << (C[l] & 31))
              BBIN(IShrU, B[l] >> (C[l] & 31))
              BBIN(IShrS,
                   static_cast<uint32_t>(bitsToS(B[l]) >> (C[l] & 31)))

              BBIN(FAdd, fToBits(bitsToF(B[l]) + bitsToF(C[l])))
              BBIN(FSub, fToBits(bitsToF(B[l]) - bitsToF(C[l])))
              BBIN(FMul, fToBits(bitsToF(B[l]) * bitsToF(C[l])))
              BBIN(FDiv, fToBits(bitsToF(B[l]) / bitsToF(C[l])))
              BBIN(FMin,
                   fToBits(std::fmin(bitsToF(B[l]), bitsToF(C[l]))))
              BBIN(FMax,
                   fToBits(std::fmax(bitsToF(B[l]), bitsToF(C[l]))))
              BUN(FAbs, fToBits(std::fabs(bitsToF(B[l]))))
              BUN(FNeg, fToBits(-bitsToF(B[l])))
              BUN(FSqrt, fToBits(std::sqrt(bitsToF(B[l]))))
              BUN(FExp, fToBits(std::exp(bitsToF(B[l]))))
              BUN(FLog, fToBits(std::log(bitsToF(B[l]))))
              BUN(FFloor, fToBits(std::floor(bitsToF(B[l]))))
              BUN(FSin, fToBits(std::sin(bitsToF(B[l]))))
              BUN(FCos, fToBits(std::cos(bitsToF(B[l]))))
              case MOp::FFma: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                const uint32_t *const D = BV(in.d);
                for (uint32_t l = 0; l < W; ++l)
                    A[l] = fToBits(std::fma(bitsToF(B[l]),
                                            bitsToF(C[l]),
                                            bitsToF(D[l])));
                break;
              }
              BBIN(FPow, fToBits(std::pow(bitsToF(B[l]), bitsToF(C[l]))))
              BUN(CvtSF, fToBits(static_cast<float>(bitsToS(B[l]))))
              BUN(CvtFS, static_cast<uint32_t>(
                             static_cast<int32_t>(bitsToF(B[l]))))

              BBIN(IEq, B[l] == C[l])
              BBIN(INe, B[l] != C[l])
              BBIN(ILt, bitsToS(B[l]) < bitsToS(C[l]))
              BBIN(ILe, bitsToS(B[l]) <= bitsToS(C[l]))
              BBIN(IGt, bitsToS(B[l]) > bitsToS(C[l]))
              BBIN(IGe, bitsToS(B[l]) >= bitsToS(C[l]))
              BBIN(ULt, B[l] < C[l])
              BBIN(UGe, B[l] >= C[l])
              BBIN(FEq, bitsToF(B[l]) == bitsToF(C[l]))
              BBIN(FNe, bitsToF(B[l]) != bitsToF(C[l]))
              BBIN(FLt, bitsToF(B[l]) < bitsToF(C[l]))
              BBIN(FLe, bitsToF(B[l]) <= bitsToF(C[l]))
              BBIN(FGt, bitsToF(B[l]) > bitsToF(C[l]))
              BBIN(FGe, bitsToF(B[l]) >= bitsToF(C[l]))
              case MOp::Select: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                const uint32_t *const D = BV(in.d);
                for (uint32_t l = 0; l < W; ++l)
                    A[l] = B[l] ? C[l] : D[l];
                break;
              }

              case MOp::LdBuf: {
                loadBlock(BV(in.a), BV(in.c), in.b);
                site_exec[in.d] += W;
                break;
              }
              case MOp::StBuf: {
                storeBlock(in.a, BV(in.b), BV(in.c));
                site_exec[in.d] += W;
                break;
              }
              case MOp::LdShared: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const ADDR = BV(in.b);
                shCheck(ADDR, "load");
                for (uint32_t l = 0; l < W; ++l)
                    A[l] = sh[ADDR[l]];
                ws.sharedAccesses += W;
                break;
              }
              case MOp::StShared: {
                const uint32_t *const ADDR = BV(in.a);
                const uint32_t *const S = BV(in.b);
                shCheck(ADDR, "store");
                for (uint32_t l = 0; l < W; ++l)
                    sh[ADDR[l]] = S[l];
                ws.sharedAccesses += W;
                break;
              }

              case MOp::IAddLd: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                for (uint32_t l = 0; l < W; ++l)
                    A[l] = B[l] + C[l];
                loadBlock(BV(in.d), A, in.aux);
                site_exec[in.e] += W;
                break;
              }
              case MOp::IAddSt: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                for (uint32_t l = 0; l < W; ++l)
                    A[l] = B[l] + C[l];
                storeBlock(in.aux, A, BV(in.d));
                site_exec[in.e] += W;
                break;
              }
              case MOp::IMulAdd: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                uint32_t *const D = BV(in.d);
                const uint32_t *const E = BV(in.e);
                for (uint32_t l = 0; l < W; ++l) {
                    const uint32_t t = B[l] * C[l];
                    A[l] = t;
                    D[l] = t + E[l];
                }
                break;
              }
              case MOp::IAddAdd: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                uint32_t *const D = BV(in.d);
                const uint32_t *const E = BV(in.e);
                for (uint32_t l = 0; l < W; ++l) {
                    const uint32_t t = B[l] + C[l];
                    A[l] = t;
                    D[l] = t + E[l];
                }
                break;
              }
              case MOp::IAddLdSh: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                uint32_t *const D = BV(in.d);
                for (uint32_t l = 0; l < W; ++l)
                    A[l] = B[l] + C[l];
                shCheck(A, "load");
                for (uint32_t l = 0; l < W; ++l)
                    D[l] = sh[A[l]];
                ws.sharedAccesses += W;
                break;
              }
              case MOp::IAddStSh: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                const uint32_t *const D = BV(in.d);
                for (uint32_t l = 0; l < W; ++l)
                    A[l] = B[l] + C[l];
                shCheck(A, "store");
                for (uint32_t l = 0; l < W; ++l)
                    sh[A[l]] = D[l];
                ws.sharedAccesses += W;
                break;
              }
              case MOp::MulAddLdSh: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                uint32_t *const D = BV(in.d);
                const uint32_t *const E = BV(in.e);
                uint32_t *const X = BV(in.aux);
                for (uint32_t l = 0; l < W; ++l) {
                    const uint32_t t = B[l] * C[l];
                    A[l] = t;
                    D[l] = t + E[l];
                }
                shCheck(D, "load");
                for (uint32_t l = 0; l < W; ++l)
                    X[l] = sh[D[l]];
                ws.sharedAccesses += W;
                break;
              }
              case MOp::MulAddStSh: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                uint32_t *const D = BV(in.d);
                const uint32_t *const E = BV(in.e);
                const uint32_t *const X = BV(in.aux);
                for (uint32_t l = 0; l < W; ++l) {
                    const uint32_t t = B[l] * C[l];
                    A[l] = t;
                    D[l] = t + E[l];
                }
                shCheck(D, "store");
                for (uint32_t l = 0; l < W; ++l)
                    sh[D[l]] = X[l];
                ws.sharedAccesses += W;
                break;
              }
              case MOp::FMulFAdd: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                uint32_t *const D = BV(in.d);
                const uint32_t *const E = BV(in.e);
                const bool left = in.aux & 1;
                for (uint32_t l = 0; l < W; ++l) {
                    const float t = bitsToF(B[l]) * bitsToF(C[l]);
                    A[l] = fToBits(t);
                    const float z = bitsToF(E[l]);
                    D[l] = fToBits(left ? t + z : z + t);
                }
                break;
              }
              case MOp::FMulFSub: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                uint32_t *const D = BV(in.d);
                const uint32_t *const E = BV(in.e);
                const bool left = in.aux & 1;
                for (uint32_t l = 0; l < W; ++l) {
                    const float t = bitsToF(B[l]) * bitsToF(C[l]);
                    A[l] = fToBits(t);
                    const float z = bitsToF(E[l]);
                    D[l] = fToBits(left ? t - z : z - t);
                }
                break;
              }
              case MOp::LdShFMul:
              case MOp::LdShFSub:
              case MOp::LdShFDiv: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                uint32_t *const D = BV(in.d);
                const uint32_t *const E = BV(in.e);
                const bool left = in.aux & 1;
                shCheck(B, "load");
                for (uint32_t l = 0; l < W; ++l) {
                    const uint32_t v = sh[B[l]];
                    A[l] = v;
                    const float fv = bitsToF(v);
                    const float z = bitsToF(E[l]);
                    float res;
                    if (in.op == MOp::LdShFMul)
                        res = left ? fv * z : z * fv;
                    else if (in.op == MOp::LdShFSub)
                        res = left ? fv - z : z - fv;
                    else
                        res = left ? fv / z : z / fv;
                    D[l] = fToBits(res);
                }
                ws.sharedAccesses += W;
                break;
              }
              case MOp::FSubStSh:
              case MOp::FDivStSh: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                const uint32_t *const D = BV(in.d);
                for (uint32_t l = 0; l < W; ++l) {
                    const float x = bitsToF(B[l]);
                    const float y = bitsToF(C[l]);
                    A[l] =
                        fToBits(in.op == MOp::FSubStSh ? x - y : x / y);
                }
                shCheck(D, "store");
                for (uint32_t l = 0; l < W; ++l)
                    sh[D[l]] = A[l];
                ws.sharedAccesses += W;
                break;
              }
              case MOp::IDivRem: {
                uint32_t *const A = BV(in.a);
                const uint32_t *const B = BV(in.b);
                const uint32_t *const C = BV(in.c);
                uint32_t *const D = BV(in.d);
                for (uint32_t l = 0; l < W; ++l) {
                    const int32_t den = bitsToS(C[l]);
                    if (den == 0)
                        panic("kernel '%s' @%u: integer division by "
                              "zero",
                              k.module.name.c_str(), pc);
                    const int32_t num = bitsToS(B[l]);
                    A[l] = static_cast<uint32_t>(num / den);
                    D[l] = static_cast<uint32_t>(num % den);
                }
                break;
              }

              case MOp::Super:
                execSuper(mk.supers[in.aux], pc, base, base + W, ws);
                break;
              case MOp::SuperLoop: {
                // Fused counted loop: all lanes run to completion and
                // reconverge at the exit pc (execSuper charges the
                // per-iteration cycles).
                const SuperOp &sup = mk.supers[in.aux];
                execSuper(sup, pc, base, base + W, ws);
                pc = sup.exitPc;
                ws.laneCycles +=
                    static_cast<uint64_t>(cost_from[pc]) * W;
                continue;
              }

              case MOp::Jmp:
                pc = in.a;
                ws.laneCycles +=
                    static_cast<uint64_t>(cost_from[pc]) * W;
                continue;
              case MOp::BrTrue:
              case MOp::BrFalse: {
                const uint32_t *const A = BV(in.a);
                const uint32_t sense = in.op == MOp::BrTrue ? 1 : 0;
                uint32_t taken = 0;
                for (uint32_t l = 0; l < W; ++l)
                    taken += (A[l] != 0) == (sense != 0);
                if (taken == 0 || taken == W) {
                    pc = taken ? in.b : pc + 1;
                    ws.laneCycles +=
                        static_cast<uint64_t>(cost_from[pc]) * W;
                    continue;
                }
                for (uint32_t l = 0; l < W; ++l)
                    pcs[base + l] =
                        (A[l] != 0) == (sense != 0) ? in.b : pc + 1;
                runPhase<false>(base, base + W, wx, wy, wz, ws,
                                nullptr, done, at_barrier);
                goto block_done;
              }

              BCMPBR(CmpBrIEq, x == y)
              BCMPBR(CmpBrINe, x != y)
              BCMPBR(CmpBrILt, bitsToS(x) < bitsToS(y))
              BCMPBR(CmpBrILe, bitsToS(x) <= bitsToS(y))
              BCMPBR(CmpBrIGt, bitsToS(x) > bitsToS(y))
              BCMPBR(CmpBrIGe, bitsToS(x) >= bitsToS(y))
              BCMPBR(CmpBrULt, x < y)
              BCMPBR(CmpBrUGe, x >= y)
              BCMPBR(CmpBrFEq, bitsToF(x) == bitsToF(y))
              BCMPBR(CmpBrFNe, bitsToF(x) != bitsToF(y))
              BCMPBR(CmpBrFLt, bitsToF(x) < bitsToF(y))
              BCMPBR(CmpBrFLe, bitsToF(x) <= bitsToF(y))
              BCMPBR(CmpBrFGt, bitsToF(x) > bitsToF(y))
              BCMPBR(CmpBrFGe, bitsToF(x) >= bitsToF(y))

              case MOp::ConstAlu: {
                uint32_t *const A = BV(in.a);
                uint32_t *const C2 = BV(in.c);
                const uint32_t *const D = BV(in.d);
                const uint32_t *const E = BV(in.e);
                const BinKind kind = static_cast<BinKind>(in.aux);
                std::fill_n(A, W, in.b);
                for (uint32_t l = 0; l < W; ++l)
                    C2[l] = evalBin(kind, D[l], E[l]);
                break;
              }

              case MOp::Barrier:
                for (uint32_t l = 0; l < W; ++l)
                    pcs[base + l] = pc + 1;
                at_barrier += W;
                goto block_done;
              case MOp::Ret:
                done += W;
                goto block_done;

              default:
                // Atomics: lane order is observable, so un-charge the
                // current straight-line run and hand only THIS block's
                // lanes to the lane-major executor from this pc.
                // Later blocks keep running lockstep; the sequential
                // block order keeps the global atomic order identical
                // to lane-major.
                ws.laneCycles -=
                    static_cast<uint64_t>(cost_from[pc]) * W;
                for (uint32_t l = 0; l < W; ++l)
                    pcs[base + l] = pc;
                runPhase<false>(base, base + W, wx, wy, wz, ws,
                                nullptr, done, at_barrier);
                goto block_done;
            }
            ++pc;
        }
    block_done:;
    }

    // Tail lanes (localCount % W) always run lane-major from their
    // saved pcs, after every full block — the same position they hold
    // in lane-major order.
    if (full < lc) {
        runPhase<false>(full, static_cast<uint32_t>(lc), wx, wy, wz, ws,
                        nullptr, done, at_barrier);
    }
    done_out += done;
    barrier_out += at_barrier;
}

#undef BV
#undef BBIN
#undef BUN
#undef BCMPBR

void
Interpreter::runPhaseBlocksDyn(uint32_t wx, uint32_t wy, uint32_t wz,
                               WorkgroupStats &ws, uint32_t &done_out,
                               uint32_t &barrier_out)
{
    switch (bw) {
      case 4:
        runPhaseBlocks<4>(wx, wy, wz, ws, done_out, barrier_out);
        break;
      case 16:
        runPhaseBlocks<16>(wx, wy, wz, ws, done_out, barrier_out);
        break;
      default:
        runPhaseBlocks<8>(wx, wy, wz, ws, done_out, barrier_out);
        break;
    }
}


/** Lane vector of register x (contiguous, reg-major file). */
#define V(x) (regs0 + static_cast<size_t>(x) * lc)
/** Element-wise binary op handler for the whole-workgroup op-major
 *  executor.  A may alias B/C only exactly (vector offsets are
 *  multiples of lc), which keeps the per-lane semantics of the
 *  lane-major path. */
#define VBIN(name, expr)                                                  \
    case MOp::name: {                                                     \
        uint32_t *const A = V(in.a);                                      \
        const uint32_t *const B = V(in.b);                                \
        const uint32_t *const C = V(in.c);                                \
        for (size_t l = 0; l < lc; ++l)                                   \
            A[l] = (expr);                                                \
        break;                                                            \
    }
#define VUN(name, expr)                                                   \
    case MOp::name: {                                                     \
        uint32_t *const A = V(in.a);                                      \
        const uint32_t *const B = V(in.b);                                \
        for (size_t l = 0; l < lc; ++l)                                   \
            A[l] = (expr);                                                \
        break;                                                            \
    }
/** Fused compare+branch: flags written per lane, then the uniform /
 *  divergent decision.  Divergence writes every lane's resume pc and
 *  hands the rest of the phase to the lane-block continuation, which
 *  contains the split at W-lane granularity.  The trace tier is only
 *  selected for branch-free kernels, so there the whole handler
 *  compiles down to a guard. */
#define VCMPBR(mop, expr)                                                 \
    case MOp::mop: {                                                      \
        if constexpr (TraceTier) {                                        \
            panic("kernel '%s' @%u: branch reached the trace tier",       \
                  k.module.name.c_str(), pc);                             \
        } else {                                                          \
            uint32_t *const A = V(in.a);                                  \
            const uint32_t *const B = V(in.b);                            \
            const uint32_t *const C = V(in.c);                            \
            uint32_t taken = 0;                                           \
            const uint32_t sense = in.aux;                                \
            for (size_t l = 0; l < lc; ++l) {                             \
                const uint32_t x = B[l];                                  \
                const uint32_t y = C[l];                                  \
                const uint32_t cond = (expr);                             \
                A[l] = cond;                                              \
                taken += cond == sense;                                   \
            }                                                             \
            if (taken == lc || taken == 0) {                              \
                pc = taken ? in.d : pc + 1;                               \
                ws.laneCycles +=                                          \
                    static_cast<uint64_t>(cost_from[pc]) * lc;            \
                continue;                                                 \
            }                                                             \
            for (size_t l = 0; l < lc; ++l)                               \
                pcs[l] = A[l] == sense ? in.d : pc + 1;                   \
            runPhaseBlocks<W>(wx, wy, wz, ws, done_out, barrier_out);     \
            return;                                                       \
        }                                                                 \
    }

template <uint32_t W, bool TraceTier>
void
Interpreter::runPhaseWg(uint32_t start_pc, uint32_t wx, uint32_t wy,
                        uint32_t wz, WorkgroupStats &ws,
                        uint32_t &done_out, uint32_t &barrier_out)
{
    const CompiledKernel &k = *kernel;
    const MicroKernel &mk = *k.micro;
    const MicroOp *const ops = mk.ops.data();
    const uint32_t *const cost_from = mk.costFrom.data();
    const size_t lc = localCount;
    uint32_t *const regs0 = regs.data();
    const BufferBinding *const bufs = ctx->buffers.data();
    uint64_t *const site_exec = ws.siteExec.data();
    uint32_t *const sh = shared.data();
    const uint64_t shared_words = shared.size();
    const uint32_t lx = k.module.localSize[0];
    const uint32_t ly = k.module.localSize[1];

    uint32_t pc = start_pc;
    // Charge the whole straight-line run for every lane up front, as
    // the lane-major executor does per lane at entry.
    ws.laneCycles += static_cast<uint64_t>(cost_from[pc]) * lc;

    auto oob = [&](uint32_t binding, uint64_t addr,
                   uint64_t words) -> void {
        panic("kernel '%s' @%u: binding %u access [%llu] out of bounds "
              "(%llu words)",
              k.module.name.c_str(), pc, binding,
              (unsigned long long)addr, (unsigned long long)words);
    };
    auto shOob = [&](const char *what, uint64_t addr) -> void {
        panic("kernel '%s' @%u: shared %s [%llu] out of bounds "
              "(%llu words)",
              k.module.name.c_str(), pc, what, (unsigned long long)addr,
              (unsigned long long)shared_words);
    };

    // W-blocked global-memory fast paths.  A block whose addresses are
    // contiguous takes one bounds test and one memcpy (word-aligned
    // word copies cannot tear, and the data-race-free contract every
    // programming model requires makes the non-atomic copy
    // unobservable); a block loading one uniform address takes a
    // single load.  Anything else falls back to the per-lane guarded
    // loop, which also reproduces the lane-major executor's
    // first-offending-lane panic on out-of-bounds access.
    auto loadVec = [&](uint32_t *A, const uint32_t *ADDR,
                       const BufferBinding &buf, uint32_t binding) {
        size_t l = 0;
        for (; l + W <= lc; l += W) {
            const uint32_t a0 = ADDR[l];
            bool contig = true;
            bool unif = true;
            for (uint32_t j = 1; j < W; ++j) {
                contig &= ADDR[l + j] == a0 + j;
                unif &= ADDR[l + j] == a0;
            }
            if (contig && uint64_t(a0) + W <= buf.words) {
                std::memcpy(A + l, buf.data + a0, W * sizeof(uint32_t));
            } else if (unif && a0 < buf.words) {
                const uint32_t v =
                    std::atomic_ref<uint32_t>(buf.data[a0])
                        .load(std::memory_order_relaxed);
                for (uint32_t j = 0; j < W; ++j)
                    A[l + j] = v;
            } else {
                for (uint32_t j = 0; j < W; ++j) {
                    const uint32_t addr = ADDR[l + j];
                    if (addr >= buf.words) [[unlikely]]
                        oob(binding, addr, buf.words);
                    A[l + j] =
                        std::atomic_ref<uint32_t>(buf.data[addr])
                            .load(std::memory_order_relaxed);
                }
            }
        }
        for (; l < lc; ++l) {
            const uint32_t addr = ADDR[l];
            if (addr >= buf.words) [[unlikely]]
                oob(binding, addr, buf.words);
            A[l] = std::atomic_ref<uint32_t>(buf.data[addr])
                       .load(std::memory_order_relaxed);
        }
    };
    auto storeVec = [&](const uint32_t *S, const uint32_t *ADDR,
                        const BufferBinding &buf, uint32_t binding) {
        size_t l = 0;
        for (; l + W <= lc; l += W) {
            const uint32_t a0 = ADDR[l];
            bool contig = true;
            bool unif = true;
            for (uint32_t j = 1; j < W; ++j) {
                contig &= ADDR[l + j] == a0 + j;
                unif &= ADDR[l + j] == a0;
            }
            if (contig && uint64_t(a0) + W <= buf.words) {
                std::memcpy(buf.data + a0, S + l, W * sizeof(uint32_t));
            } else if (unif && a0 < buf.words) {
                // Sequential lanes overwrite one word: only the last
                // value survives, exactly as in the per-lane loop.
                std::atomic_ref<uint32_t>(buf.data[a0])
                    .store(S[l + W - 1], std::memory_order_relaxed);
            } else {
                for (uint32_t j = 0; j < W; ++j) {
                    const uint32_t addr = ADDR[l + j];
                    if (addr >= buf.words) [[unlikely]]
                        oob(binding, addr, buf.words);
                    std::atomic_ref<uint32_t>(buf.data[addr])
                        .store(S[l + j], std::memory_order_relaxed);
                }
            }
        }
        for (; l < lc; ++l) {
            const uint32_t addr = ADDR[l];
            if (addr >= buf.words) [[unlikely]]
                oob(binding, addr, buf.words);
            std::atomic_ref<uint32_t>(buf.data[addr])
                .store(S[l], std::memory_order_relaxed);
        }
    };

    for (;;) {
        const MicroOp &in = ops[pc];
        switch (in.op) {
          case MOp::Const:
            std::fill_n(V(in.a), lc, in.b);
            break;
          case MOp::Mov:
            std::copy_n(V(in.b), lc, V(in.a));
            break;
          case MOp::LdBuiltin: {
            using spirv::Builtin;
            uint32_t *const A = V(in.a);
            const LaneId *const lid = lids.data();
            switch (static_cast<Builtin>(in.aux)) {
              case Builtin::GlobalIdX:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = wx * lx + lid[l].x;
                break;
              case Builtin::GlobalIdY:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = wy * ly + lid[l].y;
                break;
              case Builtin::GlobalIdZ:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = wz * k.module.localSize[2] + lid[l].z;
                break;
              case Builtin::LocalIdX:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = lid[l].x;
                break;
              case Builtin::LocalIdY:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = lid[l].y;
                break;
              case Builtin::LocalIdZ:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = lid[l].z;
                break;
              case Builtin::LocalLinearId:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = static_cast<uint32_t>(l);
                break;
              case Builtin::GroupIdX: std::fill_n(A, lc, wx); break;
              case Builtin::GroupIdY: std::fill_n(A, lc, wy); break;
              case Builtin::GroupIdZ: std::fill_n(A, lc, wz); break;
              case Builtin::NumGroupsX:
                std::fill_n(A, lc, ctx->groups[0]);
                break;
              case Builtin::NumGroupsY:
                std::fill_n(A, lc, ctx->groups[1]);
                break;
              case Builtin::NumGroupsZ:
                std::fill_n(A, lc, ctx->groups[2]);
                break;
              case Builtin::LocalSizeX: std::fill_n(A, lc, lx); break;
              case Builtin::LocalSizeY: std::fill_n(A, lc, ly); break;
              case Builtin::LocalSizeZ:
                std::fill_n(A, lc, k.module.localSize[2]);
                break;
              case Builtin::GlobalSizeX:
                std::fill_n(A, lc, ctx->groups[0] * lx);
                break;
              case Builtin::GlobalSizeY:
                std::fill_n(A, lc, ctx->groups[1] * ly);
                break;
              case Builtin::GlobalSizeZ:
                std::fill_n(A, lc,
                            ctx->groups[2] * k.module.localSize[2]);
                break;
              case Builtin::Count: std::fill_n(A, lc, 0u); break;
            }
            break;
          }
          case MOp::LdPush:
            std::fill_n(V(in.a), lc, ctx->push[in.b]);
            break;

          VBIN(IAdd, B[l] + C[l])
          VBIN(ISub, B[l] - C[l])
          VBIN(IMul, B[l] * C[l])
          case MOp::IDiv: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            for (size_t l = 0; l < lc; ++l) {
                if (C[l] == 0)
                    panic("kernel '%s' @%u: integer division by zero",
                          k.module.name.c_str(), pc);
                A[l] = static_cast<uint32_t>(bitsToS(B[l]) /
                                             bitsToS(C[l]));
            }
            break;
          }
          case MOp::IRem: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            for (size_t l = 0; l < lc; ++l) {
                if (C[l] == 0)
                    panic("kernel '%s' @%u: integer remainder by zero",
                          k.module.name.c_str(), pc);
                A[l] = static_cast<uint32_t>(bitsToS(B[l]) %
                                             bitsToS(C[l]));
            }
            break;
          }
          VBIN(IMin, static_cast<uint32_t>(
                         std::min(bitsToS(B[l]), bitsToS(C[l]))))
          VBIN(IMax, static_cast<uint32_t>(
                         std::max(bitsToS(B[l]), bitsToS(C[l]))))
          VBIN(IAnd, B[l] & C[l])
          VBIN(IOr, B[l] | C[l])
          VBIN(IXor, B[l] ^ C[l])
          VUN(INot, ~B[l])
          VUN(INeg, static_cast<uint32_t>(-bitsToS(B[l])))
          VBIN(IShl, B[l] << (C[l] & 31))
          VBIN(IShrU, B[l] >> (C[l] & 31))
          VBIN(IShrS,
               static_cast<uint32_t>(bitsToS(B[l]) >> (C[l] & 31)))

          VBIN(FAdd, fToBits(bitsToF(B[l]) + bitsToF(C[l])))
          VBIN(FSub, fToBits(bitsToF(B[l]) - bitsToF(C[l])))
          VBIN(FMul, fToBits(bitsToF(B[l]) * bitsToF(C[l])))
          VBIN(FDiv, fToBits(bitsToF(B[l]) / bitsToF(C[l])))
          VBIN(FMin, fToBits(std::fmin(bitsToF(B[l]), bitsToF(C[l]))))
          VBIN(FMax, fToBits(std::fmax(bitsToF(B[l]), bitsToF(C[l]))))
          VUN(FAbs, fToBits(std::fabs(bitsToF(B[l]))))
          VUN(FNeg, fToBits(-bitsToF(B[l])))
          VUN(FSqrt, fToBits(std::sqrt(bitsToF(B[l]))))
          VUN(FExp, fToBits(std::exp(bitsToF(B[l]))))
          VUN(FLog, fToBits(std::log(bitsToF(B[l]))))
          VUN(FFloor, fToBits(std::floor(bitsToF(B[l]))))
          VUN(FSin, fToBits(std::sin(bitsToF(B[l]))))
          VUN(FCos, fToBits(std::cos(bitsToF(B[l]))))
          case MOp::FFma: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            const uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l)
                A[l] = fToBits(std::fma(bitsToF(B[l]), bitsToF(C[l]),
                                        bitsToF(D[l])));
            break;
          }
          VBIN(FPow, fToBits(std::pow(bitsToF(B[l]), bitsToF(C[l]))))
          VUN(CvtSF, fToBits(static_cast<float>(bitsToS(B[l]))))
          VUN(CvtFS, static_cast<uint32_t>(
                         static_cast<int32_t>(bitsToF(B[l]))))

          VBIN(IEq, B[l] == C[l])
          VBIN(INe, B[l] != C[l])
          VBIN(ILt, bitsToS(B[l]) < bitsToS(C[l]))
          VBIN(ILe, bitsToS(B[l]) <= bitsToS(C[l]))
          VBIN(IGt, bitsToS(B[l]) > bitsToS(C[l]))
          VBIN(IGe, bitsToS(B[l]) >= bitsToS(C[l]))
          VBIN(ULt, B[l] < C[l])
          VBIN(UGe, B[l] >= C[l])
          VBIN(FEq, bitsToF(B[l]) == bitsToF(C[l]))
          VBIN(FNe, bitsToF(B[l]) != bitsToF(C[l]))
          VBIN(FLt, bitsToF(B[l]) < bitsToF(C[l]))
          VBIN(FLe, bitsToF(B[l]) <= bitsToF(C[l]))
          VBIN(FGt, bitsToF(B[l]) > bitsToF(C[l]))
          VBIN(FGe, bitsToF(B[l]) >= bitsToF(C[l]))
          case MOp::Select: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            const uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l)
                A[l] = B[l] ? C[l] : D[l];
            break;
          }

          case MOp::LdBuf:
            loadVec(V(in.a), V(in.c), bufs[in.b], in.b);
            site_exec[in.d] += lc;
            break;
          case MOp::StBuf:
            storeVec(V(in.c), V(in.b), bufs[in.a], in.a);
            site_exec[in.d] += lc;
            break;
          case MOp::LdShared: {
            uint32_t *const A = V(in.a);
            const uint32_t *const ADDR = V(in.b);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = ADDR[l];
                if (addr >= shared_words) [[unlikely]]
                    shOob("load", addr);
                A[l] = sh[addr];
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::StShared: {
            const uint32_t *const ADDR = V(in.a);
            const uint32_t *const S = V(in.b);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = ADDR[l];
                if (addr >= shared_words) [[unlikely]]
                    shOob("store", addr);
                sh[addr] = S[l];
            }
            ws.sharedAccesses += lc;
            break;
          }

          case MOp::IAddLd: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            for (size_t l = 0; l < lc; ++l)
                A[l] = B[l] + C[l];
            loadVec(V(in.d), A, bufs[in.aux], in.aux);
            site_exec[in.e] += lc;
            break;
          }
          case MOp::IAddSt: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            for (size_t l = 0; l < lc; ++l)
                A[l] = B[l] + C[l];
            storeVec(V(in.d), A, bufs[in.aux], in.aux);
            site_exec[in.e] += lc;
            break;
          }
          case MOp::IMulAdd: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t t = B[l] * C[l];
                A[l] = t;
                D[l] = t + E[l];
            }
            break;
          }
          case MOp::IAddAdd: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t t = B[l] + C[l];
                A[l] = t;
                D[l] = t + E[l];
            }
            break;
          }
          case MOp::IAddLdSh: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = B[l] + C[l];
                A[l] = addr;
                if (addr >= shared_words) [[unlikely]]
                    shOob("load", addr);
                D[l] = sh[addr];
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::IAddStSh: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            const uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = B[l] + C[l];
                A[l] = addr;
                if (addr >= shared_words) [[unlikely]]
                    shOob("store", addr);
                sh[addr] = D[l];
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::MulAddLdSh: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            uint32_t *const X = V(in.aux);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t t = B[l] * C[l];
                A[l] = t;
                const uint32_t addr = t + E[l];
                D[l] = addr;
                if (addr >= shared_words) [[unlikely]]
                    shOob("load", addr);
                X[l] = sh[addr];
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::MulAddStSh: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            const uint32_t *const X = V(in.aux);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t t = B[l] * C[l];
                A[l] = t;
                const uint32_t addr = t + E[l];
                D[l] = addr;
                if (addr >= shared_words) [[unlikely]]
                    shOob("store", addr);
                sh[addr] = X[l];
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::FMulFAdd: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            const bool left = in.aux & 1;
            for (size_t l = 0; l < lc; ++l) {
                const float t = bitsToF(B[l]) * bitsToF(C[l]);
                A[l] = fToBits(t);
                const float z = bitsToF(E[l]);
                D[l] = fToBits(left ? t + z : z + t);
            }
            break;
          }
          case MOp::FMulFSub: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            const bool left = in.aux & 1;
            for (size_t l = 0; l < lc; ++l) {
                const float t = bitsToF(B[l]) * bitsToF(C[l]);
                A[l] = fToBits(t);
                const float z = bitsToF(E[l]);
                D[l] = fToBits(left ? t - z : z - t);
            }
            break;
          }
          case MOp::LdShFMul:
          case MOp::LdShFSub:
          case MOp::LdShFDiv: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            const bool left = in.aux & 1;
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = B[l];
                if (addr >= shared_words) [[unlikely]]
                    shOob("load", addr);
                const uint32_t v = sh[addr];
                A[l] = v;
                const float fv = bitsToF(v);
                const float z = bitsToF(E[l]);
                float res;
                if (in.op == MOp::LdShFMul)
                    res = left ? fv * z : z * fv;
                else if (in.op == MOp::LdShFSub)
                    res = left ? fv - z : z - fv;
                else
                    res = left ? fv / z : z / fv;
                D[l] = fToBits(res);
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::FSubStSh:
          case MOp::FDivStSh: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            const uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l) {
                const float x = bitsToF(B[l]);
                const float y = bitsToF(C[l]);
                const uint32_t t =
                    fToBits(in.op == MOp::FSubStSh ? x - y : x / y);
                A[l] = t;
                const uint32_t addr = D[l];
                if (addr >= shared_words) [[unlikely]]
                    shOob("store", addr);
                sh[addr] = t;
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::IDivRem: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l) {
                const int32_t den = bitsToS(C[l]);
                if (den == 0)
                    panic("kernel '%s' @%u: integer division by zero",
                          k.module.name.c_str(), pc);
                const int32_t num = bitsToS(B[l]);
                A[l] = static_cast<uint32_t>(num / den);
                D[l] = static_cast<uint32_t>(num % den);
            }
            break;
          }

          case MOp::Super:
            // Whole-workgroup fused run; one dispatch covers what
            // used to be six per-op passes over the lane vectors.
            execSuper(mk.supers[in.aux], pc, 0,
                      static_cast<uint32_t>(lc), ws);
            break;
          case MOp::SuperLoop: {
            // Fused counted loop: one dispatch covers the whole loop
            // nest level — per-lane trip counts never surface as
            // divergence because every lane reconverges at the exit
            // pc (execSuper charges the per-iteration cycles).
            const SuperOp &sup = mk.supers[in.aux];
            execSuper(sup, pc, 0, static_cast<uint32_t>(lc), ws);
            pc = sup.exitPc;
            ws.laneCycles += static_cast<uint64_t>(cost_from[pc]) * lc;
            continue;
          }

          case MOp::Jmp:
            if constexpr (TraceTier) {
                panic("kernel '%s' @%u: branch reached the trace tier",
                      k.module.name.c_str(), pc);
            } else {
                pc = in.a;
                ws.laneCycles +=
                    static_cast<uint64_t>(cost_from[pc]) * lc;
                continue;
            }
          case MOp::BrTrue:
          case MOp::BrFalse: {
            if constexpr (TraceTier) {
                panic("kernel '%s' @%u: branch reached the trace tier",
                      k.module.name.c_str(), pc);
            } else {
                const uint32_t *const A = V(in.a);
                const uint32_t sense = in.op == MOp::BrTrue ? 1 : 0;
                uint32_t taken = 0;
                for (size_t l = 0; l < lc; ++l)
                    taken += (A[l] != 0) == (sense != 0);
                if (taken == lc || taken == 0) {
                    pc = taken ? in.b : pc + 1;
                    ws.laneCycles +=
                        static_cast<uint64_t>(cost_from[pc]) * lc;
                    continue;
                }
                for (size_t l = 0; l < lc; ++l)
                    pcs[l] = (A[l] != 0) == (sense != 0) ? in.b : pc + 1;
                runPhaseBlocks<W>(wx, wy, wz, ws, done_out, barrier_out);
                return;
            }
          }

          VCMPBR(CmpBrIEq, x == y)
          VCMPBR(CmpBrINe, x != y)
          VCMPBR(CmpBrILt, bitsToS(x) < bitsToS(y))
          VCMPBR(CmpBrILe, bitsToS(x) <= bitsToS(y))
          VCMPBR(CmpBrIGt, bitsToS(x) > bitsToS(y))
          VCMPBR(CmpBrIGe, bitsToS(x) >= bitsToS(y))
          VCMPBR(CmpBrULt, x < y)
          VCMPBR(CmpBrUGe, x >= y)
          VCMPBR(CmpBrFEq, bitsToF(x) == bitsToF(y))
          VCMPBR(CmpBrFNe, bitsToF(x) != bitsToF(y))
          VCMPBR(CmpBrFLt, bitsToF(x) < bitsToF(y))
          VCMPBR(CmpBrFLe, bitsToF(x) <= bitsToF(y))
          VCMPBR(CmpBrFGt, bitsToF(x) > bitsToF(y))
          VCMPBR(CmpBrFGe, bitsToF(x) >= bitsToF(y))

          case MOp::ConstAlu: {
            uint32_t *const A = V(in.a);
            uint32_t *const C2 = V(in.c);
            const uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            const BinKind kind = static_cast<BinKind>(in.aux);
            std::fill_n(A, lc, in.b);
            for (size_t l = 0; l < lc; ++l)
                C2[l] = evalBin(kind, D[l], E[l]);
            break;
          }

          case MOp::Barrier:
            std::fill(pcs.begin(), pcs.end(), pc + 1);
            barrier_out += static_cast<uint32_t>(lc);
            return;
          case MOp::Ret:
            done_out += static_cast<uint32_t>(lc);
            return;

          default:
            if constexpr (TraceTier) {
                panic("kernel '%s' @%u: op %s reached the trace tier",
                      k.module.name.c_str(), pc, mopName(in.op));
            } else {
                // Atomics: every lane is at this pc, so lane order is
                // fully observable — un-charge the straight-line run
                // and hand the rest of the phase to the lane-major
                // executor, which re-charges from this pc and defines
                // the atomic order.
                ws.laneCycles -=
                    static_cast<uint64_t>(cost_from[pc]) * lc;
                std::fill(pcs.begin(), pcs.end(), pc);
                runPhase<false>(0, static_cast<uint32_t>(lc), wx, wy,
                                wz, ws, nullptr, done_out, barrier_out);
                return;
            }
        }
        ++pc;
    }
}

#undef V
#undef VBIN
#undef VUN
#undef VCMPBR

void
Interpreter::runPhaseWgDyn(bool trace, uint32_t start_pc, uint32_t wx,
                           uint32_t wy, uint32_t wz, WorkgroupStats &ws,
                           uint32_t &done_out, uint32_t &barrier_out)
{
    switch (bw) {
      case 4:
        if (trace)
            runPhaseWg<4, true>(start_pc, wx, wy, wz, ws, done_out,
                                barrier_out);
        else
            runPhaseWg<4, false>(start_pc, wx, wy, wz, ws, done_out,
                                 barrier_out);
        break;
      case 16:
        if (trace)
            runPhaseWg<16, true>(start_pc, wx, wy, wz, ws, done_out,
                                 barrier_out);
        else
            runPhaseWg<16, false>(start_pc, wx, wy, wz, ws, done_out,
                                  barrier_out);
        break;
      default:
        if (trace)
            runPhaseWg<8, true>(start_pc, wx, wy, wz, ws, done_out,
                                barrier_out);
        else
            runPhaseWg<8, false>(start_pc, wx, wy, wz, ws, done_out,
                                 barrier_out);
        break;
    }
}


} // namespace vcb::sim

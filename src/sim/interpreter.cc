#include "sim/interpreter.h"

#include <atomic>
#include <cmath>

#include "common/logging.h"

namespace vcb::sim {

namespace {

/**
 * Evaluate one hoisted template op (see MicroKernel::templateOps) on
 * the template register file.  Expressions mirror the interpreter
 * handlers exactly so hoisting is bit-invisible.
 */
void
evalTemplateOp(const MicroOp &op, uint32_t *r, const DispatchContext &ctx,
               const spirv::Module &m)
{
    switch (op.op) {
      case MOp::Const: r[op.a] = op.b; break;
      case MOp::Mov: r[op.a] = r[op.b]; break;
      case MOp::LdPush: r[op.a] = ctx.push[op.b]; break;
      case MOp::LdBuiltin: {
        using spirv::Builtin;
        uint32_t v = 0;
        switch (static_cast<Builtin>(op.aux)) {
          case Builtin::NumGroupsX: v = ctx.groups[0]; break;
          case Builtin::NumGroupsY: v = ctx.groups[1]; break;
          case Builtin::NumGroupsZ: v = ctx.groups[2]; break;
          case Builtin::LocalSizeX: v = m.localSize[0]; break;
          case Builtin::LocalSizeY: v = m.localSize[1]; break;
          case Builtin::LocalSizeZ: v = m.localSize[2]; break;
          case Builtin::GlobalSizeX:
            v = ctx.groups[0] * m.localSize[0];
            break;
          case Builtin::GlobalSizeY:
            v = ctx.groups[1] * m.localSize[1];
            break;
          case Builtin::GlobalSizeZ:
            v = ctx.groups[2] * m.localSize[2];
            break;
          default:
            panic("non-uniform builtin %u in register template", op.aux);
        }
        r[op.a] = v;
        break;
      }
      case MOp::INot: r[op.a] = ~r[op.b]; break;
      case MOp::INeg:
        r[op.a] = static_cast<uint32_t>(-bitsToS(r[op.b]));
        break;
      case MOp::FAbs: r[op.a] = fToBits(std::fabs(bitsToF(r[op.b]))); break;
      case MOp::FNeg: r[op.a] = fToBits(-bitsToF(r[op.b])); break;
      case MOp::FSqrt:
        r[op.a] = fToBits(std::sqrt(bitsToF(r[op.b])));
        break;
      case MOp::FExp: r[op.a] = fToBits(std::exp(bitsToF(r[op.b]))); break;
      case MOp::FLog: r[op.a] = fToBits(std::log(bitsToF(r[op.b]))); break;
      case MOp::FFloor:
        r[op.a] = fToBits(std::floor(bitsToF(r[op.b])));
        break;
      case MOp::FSin: r[op.a] = fToBits(std::sin(bitsToF(r[op.b]))); break;
      case MOp::FCos: r[op.a] = fToBits(std::cos(bitsToF(r[op.b]))); break;
      case MOp::FFma:
        r[op.a] = fToBits(std::fma(bitsToF(r[op.b]), bitsToF(r[op.c]),
                                   bitsToF(r[op.d])));
        break;
      case MOp::FPow:
        r[op.a] = fToBits(std::pow(bitsToF(r[op.b]), bitsToF(r[op.c])));
        break;
      case MOp::CvtSF:
        r[op.a] = fToBits(static_cast<float>(bitsToS(r[op.b])));
        break;
      case MOp::CvtFS:
        r[op.a] =
            static_cast<uint32_t>(static_cast<int32_t>(bitsToF(r[op.b])));
        break;
      case MOp::Select:
        r[op.a] = r[op.b] ? r[op.c] : r[op.d];
        break;
      case MOp::ConstAlu:
        r[op.a] = op.b;
        r[op.c] =
            evalBin(static_cast<BinKind>(op.aux), r[op.d], r[op.e]);
        break;
      case MOp::IMulAdd: {
        uint32_t t = r[op.b] * r[op.c];
        r[op.a] = t;
        r[op.d] = t + r[op.e];
        break;
      }
      case MOp::IAddAdd: {
        uint32_t t = r[op.b] + r[op.c];
        r[op.a] = t;
        r[op.d] = t + r[op.e];
        break;
      }
      default: {
        // Remaining template-pure ops are binary ALU / compares whose
        // MOp order mirrors the interpreter cases; evaluate via the
        // shared evalBin table.
        BinKind kind;
        switch (op.op) {
          case MOp::IAdd: kind = BinKind::IAdd; break;
          case MOp::ISub: kind = BinKind::ISub; break;
          case MOp::IMul: kind = BinKind::IMul; break;
          case MOp::IMin: kind = BinKind::IMin; break;
          case MOp::IMax: kind = BinKind::IMax; break;
          case MOp::IAnd: kind = BinKind::IAnd; break;
          case MOp::IOr:  kind = BinKind::IOr;  break;
          case MOp::IXor: kind = BinKind::IXor; break;
          case MOp::IShl: kind = BinKind::IShl; break;
          case MOp::IShrU: kind = BinKind::IShrU; break;
          case MOp::IShrS: kind = BinKind::IShrS; break;
          case MOp::FAdd: kind = BinKind::FAdd; break;
          case MOp::FSub: kind = BinKind::FSub; break;
          case MOp::FMul: kind = BinKind::FMul; break;
          case MOp::FDiv: kind = BinKind::FDiv; break;
          case MOp::FMin: kind = BinKind::FMin; break;
          case MOp::FMax: kind = BinKind::FMax; break;
          case MOp::IEq: kind = BinKind::IEq; break;
          case MOp::INe: kind = BinKind::INe; break;
          case MOp::ILt: kind = BinKind::ILt; break;
          case MOp::ILe: kind = BinKind::ILe; break;
          case MOp::IGt: kind = BinKind::IGt; break;
          case MOp::IGe: kind = BinKind::IGe; break;
          case MOp::ULt: kind = BinKind::ULt; break;
          case MOp::UGe: kind = BinKind::UGe; break;
          case MOp::FEq: kind = BinKind::FEq; break;
          case MOp::FNe: kind = BinKind::FNe; break;
          case MOp::FLt: kind = BinKind::FLt; break;
          case MOp::FLe: kind = BinKind::FLe; break;
          case MOp::FGt: kind = BinKind::FGt; break;
          case MOp::FGe: kind = BinKind::FGe; break;
          default:
            panic("op %u is not template-pure",
                  static_cast<unsigned>(op.op));
        }
        r[op.a] = evalBin(kind, r[op.b], r[op.c]);
        break;
      }
    }
}

} // namespace

void
Interpreter::prepare(const DispatchContext &new_ctx)
{
    ctx = &new_ctx;
    kernel = new_ctx.kernel;
    VCB_ASSERT(kernel != nullptr, "dispatch without kernel");
    localCount = kernel->localCount();
    regs.resize(static_cast<size_t>(localCount) * kernel->module.regCount);
    pcs.resize(localCount);
    shared.resize(kernel->module.sharedWords);

    // Local-invocation ids per lane, computed once per dispatch: the
    // three divisions per lane entry were measurable at small kernels.
    lids.resize(localCount);
    const uint32_t lx = kernel->module.localSize[0];
    const uint32_t ly = kernel->module.localSize[1];
    for (uint32_t lane = 0; lane < localCount; ++lane)
        lids[lane] = {lane % lx, (lane / lx) % ly, lane / (lx * ly)};

    // Hoisted dispatch-uniform entry ops: evaluate once, then
    // broadcast the written registers to every lane.  The writers are
    // removed from the per-lane stream and write exactly once, so the
    // values stay correct for every workgroup of this dispatch.  The
    // register file is reg-major (reg * localCount + lane), so each
    // broadcast is one contiguous fill.
    const MicroKernel &mk = kernel->micro;
    if (!mk.templateOps.empty()) {
        const uint32_t reg_count = kernel->module.regCount;
        std::vector<uint32_t> tmpl(reg_count, 0);
        for (const MicroOp &op : mk.templateOps)
            evalTemplateOp(op, tmpl.data(), *ctx, kernel->module);
        for (uint32_t dst : mk.templateDsts)
            std::fill_n(regs.begin() +
                            static_cast<size_t>(dst) * localCount,
                        localCount, tmpl[dst]);
    }
}

void
Interpreter::runWorkgroup(uint32_t wx, uint32_t wy, uint32_t wz,
                          WorkgroupStats &ws, CoalesceSampler *sampler)
{
    const MicroKernel &mk = kernel->micro;
    // When lowering proved every register is written before it is
    // read, the zero-fill is unobservable: skip it.  Shared memory
    // keeps its deterministic zero state per workgroup.
    if (!mk.skipRegZeroInit)
        std::fill(regs.begin(), regs.end(), 0u);
    std::fill(shared.begin(), shared.end(), 0u);
    if (sampler)
        sampler->beginWorkgroup();

    ws.invocations += localCount;

    const bool instrumented = sampler != nullptr || ctx->robustAccess;

    // Phased execution, one executor call per phase: every lane runs
    // from its pc until Ret or Barrier.  At each phase boundary either
    // all lanes returned (done), all stopped at a barrier (release and
    // run the next phase), or the kernel diverged (trap).  Barrier-free
    // kernels complete in a single phase.  Phases whose lanes all
    // resume at one pc run op-major (runPhaseVector); instrumented
    // runs and phases with scattered resume points go lane-major.
    std::fill(pcs.begin(), pcs.end(), 0u);
    bool uniform = !instrumented;
    for (;;) {
        uint32_t done = 0;
        uint32_t at_barrier = 0;
        if (instrumented)
            runPhase<true>(wx, wy, wz, ws, sampler, done, at_barrier);
        else if (uniform)
            runPhaseVector(pcs[0], wx, wy, wz, ws, done, at_barrier);
        else
            runPhase<false>(wx, wy, wz, ws, nullptr, done, at_barrier);
        if (at_barrier == 0)
            break;
        if (done > 0) {
            panic("kernel '%s': barrier divergence in workgroup "
                  "(%u,%u,%u): %u lanes at barrier, %u returned",
                  kernel->module.name.c_str(), wx, wy, wz, at_barrier,
                  done);
        }
        // Release the barrier: every lane resumes past its Barrier.
        ws.barriers += 1;
        if (!instrumented) {
            uniform = true;
            for (uint32_t lane = 1; lane < localCount && uniform; ++lane)
                uniform = pcs[lane] == pcs[0];
        }
    }
    if (sampler)
        sampler->endWorkgroup();
}

/**
 * The lane executor walks the micro-op stream by pointer; one handler
 * body per MOp, shared between two dispatch strategies:
 *
 *  - VCB_THREADED_DISPATCH=1: direct-threaded via GCC/Clang computed
 *    goto — each handler jumps straight to the next handler through a
 *    label table (one indirect-branch site per handler).
 *  - VCB_THREADED_DISPATCH=0: a classic switch-in-loop.
 *
 * Which wins depends on the host branch predictor; the default is
 * chosen by measurement (tools/vcb_perf) and can be overridden with
 * -DVCB_THREADED_DISPATCH=0/1.  On the reference machines the switch
 * form predicts better once the handler set grew past ~80 ops, so it
 * is the default.  NEXT falls through to the following micro-op; XFER
 * transfers control and charges the target's straight-line run cost
 * (see MicroKernel::costFrom).
 */
#ifndef VCB_THREADED_DISPATCH
#define VCB_THREADED_DISPATCH 0
#endif
#if VCB_THREADED_DISPATCH && !defined(__GNUC__) && !defined(__clang__)
#error "threaded dispatch requires computed goto (GCC/Clang)"
#endif

#if VCB_THREADED_DISPATCH
#define VCB_OP(name) L_##name:
#define NEXT                                                              \
    do {                                                                  \
        ++ip;                                                             \
        goto *kJump[static_cast<size_t>(ip->op)];                         \
    } while (0)
#define XFER(target)                                                      \
    do {                                                                  \
        const uint32_t xfer_pc = (target);                                \
        ip = ops + xfer_pc;                                               \
        cycles += cost_from[xfer_pc];                                     \
        goto *kJump[static_cast<size_t>(ip->op)];                         \
    } while (0)
#else
#define VCB_OP(name) case MOp::name:
#define NEXT break
#define XFER(target)                                                      \
    do {                                                                  \
        const uint32_t xfer_pc = (target);                                \
        ip = ops + xfer_pc;                                               \
        cycles += cost_from[xfer_pc];                                     \
        goto dispatch;                                                    \
    } while (0)
#endif

/** Lane register access: the register file is reg-major so the
 *  op-major executor reads each register as a contiguous lane vector;
 *  the lane-major executor indexes column `lane` via this macro. */
#define R(x) r[static_cast<size_t>(x) * lc]

/** Fused compare+branch handler: write the flag, branch on sense. */
#define VCB_CMPBR(name, expr)                                             \
    VCB_OP(name) {                                                        \
        const uint32_t x = R(ip->b);                                      \
        const uint32_t y = R(ip->c);                                      \
        const uint32_t cond = (expr);                                     \
        R(ip->a) = cond;                                                  \
        XFER(cond == ip->aux ? ip->d : pcOf() + 1);                       \
    }

template <bool Instrumented>
void
Interpreter::runPhase(uint32_t wx, uint32_t wy, uint32_t wz,
                      WorkgroupStats &ws, CoalesceSampler *sampler,
                      uint32_t &done_out, uint32_t &barrier_out)
{
#if VCB_THREADED_DISPATCH
    // Must match the MOp enumeration order exactly.
    static const void *const kJump[] = {
        &&L_Const, &&L_Mov, &&L_LdBuiltin, &&L_LdPush,
        &&L_IAdd, &&L_ISub, &&L_IMul, &&L_IDiv, &&L_IRem, &&L_IMin,
        &&L_IMax, &&L_IAnd, &&L_IOr, &&L_IXor,
        &&L_INot, &&L_INeg, &&L_IShl, &&L_IShrU, &&L_IShrS,
        &&L_FAdd, &&L_FSub, &&L_FMul, &&L_FDiv, &&L_FMin, &&L_FMax,
        &&L_FAbs, &&L_FNeg, &&L_FSqrt, &&L_FExp, &&L_FLog,
        &&L_FFloor, &&L_FSin, &&L_FCos, &&L_FFma, &&L_FPow,
        &&L_CvtSF, &&L_CvtFS,
        &&L_IEq, &&L_INe, &&L_ILt, &&L_ILe, &&L_IGt, &&L_IGe, &&L_ULt,
        &&L_UGe, &&L_FEq, &&L_FNe, &&L_FLt, &&L_FLe, &&L_FGt, &&L_FGe,
        &&L_Select,
        &&L_LdBuf, &&L_StBuf, &&L_LdShared, &&L_StShared,
        &&L_AtomIAdd, &&L_AtomIOr, &&L_AtomIMin, &&L_AtomIMax,
        &&L_Jmp, &&L_BrTrue, &&L_BrFalse,
        &&L_CmpBrIEq, &&L_CmpBrINe, &&L_CmpBrILt, &&L_CmpBrILe,
        &&L_CmpBrIGt, &&L_CmpBrIGe, &&L_CmpBrULt, &&L_CmpBrUGe,
        &&L_CmpBrFEq, &&L_CmpBrFNe, &&L_CmpBrFLt, &&L_CmpBrFLe,
        &&L_CmpBrFGt, &&L_CmpBrFGe,
        &&L_ConstAlu, &&L_IAddLd, &&L_IAddSt, &&L_IMulAdd, &&L_IAddAdd,
        &&L_IAddLdSh, &&L_IAddStSh, &&L_MulAddLdSh, &&L_MulAddStSh,
        &&L_FMulFAdd, &&L_FMulFSub,
        &&L_LdShFMul, &&L_LdShFSub, &&L_LdShFDiv,
        &&L_FSubStSh, &&L_FDivStSh, &&L_IDivRem,
        &&L_Barrier, &&L_Ret,
    };
    static_assert(sizeof(kJump) / sizeof(kJump[0]) ==
                      static_cast<size_t>(MOp::Count),
                  "jump table out of sync with MOp");
#endif

    const CompiledKernel &k = *kernel;
    const MicroKernel &mk = k.micro;
    const MicroOp *const ops = mk.ops.data();
    const uint32_t *const cost_from = mk.costFrom.data();
    const size_t lc = localCount;
    const BufferBinding *const bufs = ctx->buffers.data();
    uint64_t *const site_exec = ws.siteExec.data();
    uint32_t *const sh = shared.data();
    const uint64_t shared_words = shared.size();
    const bool robust = Instrumented && ctx->robustAccess;
    const uint32_t lx = k.module.localSize[0];
    const uint32_t ly = k.module.localSize[1];

    uint32_t lane = 0;
    uint32_t done = 0;
    uint32_t at_barrier = 0;
    uint32_t *r = regs.data();
    const MicroOp *ip = nullptr;
    uint64_t cycles = 0;

    auto pcOf = [&]() -> uint32_t {
        return static_cast<uint32_t>(ip - ops);
    };

    auto oob = [&](uint32_t binding, uint64_t addr,
                   uint64_t words) -> void {
        panic("kernel '%s' @%u: binding %u access [%llu] out of bounds "
              "(%llu words)",
              k.module.name.c_str(), pcOf(), binding,
              (unsigned long long)addr, (unsigned long long)words);
    };

    /** Bounds-check/clamp one global-memory access and account it. */
    auto resolve = [&](uint32_t binding, uint64_t addr,
                       uint32_t site) -> uint32_t * {
        const BufferBinding &buf = bufs[binding];
        if (addr >= buf.words) [[unlikely]] {
            if (!robust)
                oob(binding, addr, buf.words);
            addr = buf.words ? buf.words - 1 : 0;
        }
        site_exec[site] += 1;
        if (Instrumented && sampler)
            sampler->record(lane, site, addr * 4);
        return buf.data + addr;
    };

new_lane:
    // Per-lane entry: bind the lane's register column (the file is
    // reg-major: R(x) = regs[x * localCount + lane]), charge the first
    // straight-line run (issue cost is pre-summed per run: one add on
    // entry and per control transfer instead of per op), and execute.
    {
        const uint32_t start_pc = pcs[lane];
        r = regs.data() + lane;
        ip = ops + start_pc;
        cycles = cost_from[start_pc];
    }

#if VCB_THREADED_DISPATCH
    goto *kJump[static_cast<size_t>(ip->op)];
#else
dispatch:
    for (;;) {
        switch (ip->op) {
#endif

VCB_OP(Const)
    R(ip->a) = ip->b;
    NEXT;
VCB_OP(Mov)
    R(ip->a) = R(ip->b);
    NEXT;
VCB_OP(LdBuiltin) {
    using spirv::Builtin;
    const LaneId lid = lids[lane];
    uint32_t v = 0;
    switch (static_cast<Builtin>(ip->aux)) {
      case Builtin::GlobalIdX: v = wx * lx + lid.x; break;
      case Builtin::GlobalIdY: v = wy * ly + lid.y; break;
      case Builtin::GlobalIdZ:
        v = wz * k.module.localSize[2] + lid.z;
        break;
      case Builtin::LocalIdX: v = lid.x; break;
      case Builtin::LocalIdY: v = lid.y; break;
      case Builtin::LocalIdZ: v = lid.z; break;
      case Builtin::GroupIdX: v = wx; break;
      case Builtin::GroupIdY: v = wy; break;
      case Builtin::GroupIdZ: v = wz; break;
      case Builtin::NumGroupsX: v = ctx->groups[0]; break;
      case Builtin::NumGroupsY: v = ctx->groups[1]; break;
      case Builtin::NumGroupsZ: v = ctx->groups[2]; break;
      case Builtin::LocalSizeX: v = lx; break;
      case Builtin::LocalSizeY: v = ly; break;
      case Builtin::LocalSizeZ: v = k.module.localSize[2]; break;
      case Builtin::GlobalSizeX: v = ctx->groups[0] * lx; break;
      case Builtin::GlobalSizeY: v = ctx->groups[1] * ly; break;
      case Builtin::GlobalSizeZ:
        v = ctx->groups[2] * k.module.localSize[2];
        break;
      case Builtin::LocalLinearId: v = lane; break;
      case Builtin::Count: break;
    }
    R(ip->a) = v;
    NEXT;
}
VCB_OP(LdPush)
    // Range-checked at lowering against the validated module; the
    // engine asserts the dispatch provides the full block.
    R(ip->a) = ctx->push[ip->b];
    NEXT;

VCB_OP(IAdd) R(ip->a) = R(ip->b) + R(ip->c); NEXT;
VCB_OP(ISub) R(ip->a) = R(ip->b) - R(ip->c); NEXT;
VCB_OP(IMul) R(ip->a) = R(ip->b) * R(ip->c); NEXT;
VCB_OP(IDiv)
    if (R(ip->c) == 0)
        panic("kernel '%s' @%u: integer division by zero",
              k.module.name.c_str(), pcOf());
    R(ip->a) =
        static_cast<uint32_t>(bitsToS(R(ip->b)) / bitsToS(R(ip->c)));
    NEXT;
VCB_OP(IRem)
    if (R(ip->c) == 0)
        panic("kernel '%s' @%u: integer remainder by zero",
              k.module.name.c_str(), pcOf());
    R(ip->a) =
        static_cast<uint32_t>(bitsToS(R(ip->b)) % bitsToS(R(ip->c)));
    NEXT;
VCB_OP(IMin)
    R(ip->a) = static_cast<uint32_t>(
        std::min(bitsToS(R(ip->b)), bitsToS(R(ip->c))));
    NEXT;
VCB_OP(IMax)
    R(ip->a) = static_cast<uint32_t>(
        std::max(bitsToS(R(ip->b)), bitsToS(R(ip->c))));
    NEXT;
VCB_OP(IAnd) R(ip->a) = R(ip->b) & R(ip->c); NEXT;
VCB_OP(IOr)  R(ip->a) = R(ip->b) | R(ip->c); NEXT;
VCB_OP(IXor) R(ip->a) = R(ip->b) ^ R(ip->c); NEXT;
VCB_OP(INot) R(ip->a) = ~R(ip->b); NEXT;
VCB_OP(INeg) R(ip->a) = static_cast<uint32_t>(-bitsToS(R(ip->b))); NEXT;
VCB_OP(IShl) R(ip->a) = R(ip->b) << (R(ip->c) & 31); NEXT;
VCB_OP(IShrU) R(ip->a) = R(ip->b) >> (R(ip->c) & 31); NEXT;
VCB_OP(IShrS)
    R(ip->a) =
        static_cast<uint32_t>(bitsToS(R(ip->b)) >> (R(ip->c) & 31));
    NEXT;

VCB_OP(FAdd) R(ip->a) = fToBits(bitsToF(R(ip->b)) + bitsToF(R(ip->c))); NEXT;
VCB_OP(FSub) R(ip->a) = fToBits(bitsToF(R(ip->b)) - bitsToF(R(ip->c))); NEXT;
VCB_OP(FMul) R(ip->a) = fToBits(bitsToF(R(ip->b)) * bitsToF(R(ip->c))); NEXT;
VCB_OP(FDiv) R(ip->a) = fToBits(bitsToF(R(ip->b)) / bitsToF(R(ip->c))); NEXT;
VCB_OP(FMin)
    R(ip->a) = fToBits(std::fmin(bitsToF(R(ip->b)), bitsToF(R(ip->c))));
    NEXT;
VCB_OP(FMax)
    R(ip->a) = fToBits(std::fmax(bitsToF(R(ip->b)), bitsToF(R(ip->c))));
    NEXT;
VCB_OP(FAbs) R(ip->a) = fToBits(std::fabs(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FNeg) R(ip->a) = fToBits(-bitsToF(R(ip->b))); NEXT;
VCB_OP(FSqrt) R(ip->a) = fToBits(std::sqrt(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FExp) R(ip->a) = fToBits(std::exp(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FLog) R(ip->a) = fToBits(std::log(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FFloor) R(ip->a) = fToBits(std::floor(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FSin) R(ip->a) = fToBits(std::sin(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FCos) R(ip->a) = fToBits(std::cos(bitsToF(R(ip->b)))); NEXT;
VCB_OP(FFma)
    R(ip->a) = fToBits(
        std::fma(bitsToF(R(ip->b)), bitsToF(R(ip->c)), bitsToF(R(ip->d))));
    NEXT;
VCB_OP(FPow)
    R(ip->a) = fToBits(std::pow(bitsToF(R(ip->b)), bitsToF(R(ip->c))));
    NEXT;

VCB_OP(CvtSF) R(ip->a) = fToBits(static_cast<float>(bitsToS(R(ip->b)))); NEXT;
VCB_OP(CvtFS)
    R(ip->a) = static_cast<uint32_t>(static_cast<int32_t>(bitsToF(R(ip->b))));
    NEXT;

VCB_OP(IEq) R(ip->a) = R(ip->b) == R(ip->c); NEXT;
VCB_OP(INe) R(ip->a) = R(ip->b) != R(ip->c); NEXT;
VCB_OP(ILt) R(ip->a) = bitsToS(R(ip->b)) < bitsToS(R(ip->c)); NEXT;
VCB_OP(ILe) R(ip->a) = bitsToS(R(ip->b)) <= bitsToS(R(ip->c)); NEXT;
VCB_OP(IGt) R(ip->a) = bitsToS(R(ip->b)) > bitsToS(R(ip->c)); NEXT;
VCB_OP(IGe) R(ip->a) = bitsToS(R(ip->b)) >= bitsToS(R(ip->c)); NEXT;
VCB_OP(ULt) R(ip->a) = R(ip->b) < R(ip->c); NEXT;
VCB_OP(UGe) R(ip->a) = R(ip->b) >= R(ip->c); NEXT;
VCB_OP(FEq) R(ip->a) = bitsToF(R(ip->b)) == bitsToF(R(ip->c)); NEXT;
VCB_OP(FNe) R(ip->a) = bitsToF(R(ip->b)) != bitsToF(R(ip->c)); NEXT;
VCB_OP(FLt) R(ip->a) = bitsToF(R(ip->b)) < bitsToF(R(ip->c)); NEXT;
VCB_OP(FLe) R(ip->a) = bitsToF(R(ip->b)) <= bitsToF(R(ip->c)); NEXT;
VCB_OP(FGt) R(ip->a) = bitsToF(R(ip->b)) > bitsToF(R(ip->c)); NEXT;
VCB_OP(FGe) R(ip->a) = bitsToF(R(ip->b)) >= bitsToF(R(ip->c)); NEXT;
VCB_OP(Select)
    R(ip->a) = R(ip->b) ? R(ip->c) : R(ip->d);
    NEXT;

VCB_OP(LdBuf) {
    uint32_t *p = resolve(ip->b, R(ip->c), ip->d);
    R(ip->a) =
        std::atomic_ref<uint32_t>(*p).load(std::memory_order_relaxed);
    NEXT;
}
VCB_OP(StBuf) {
    uint32_t *p = resolve(ip->a, R(ip->b), ip->d);
    std::atomic_ref<uint32_t>(*p).store(R(ip->c),
                                        std::memory_order_relaxed);
    NEXT;
}
VCB_OP(LdShared) {
    uint64_t addr = R(ip->b);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    R(ip->a) = sh[addr];
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(StShared) {
    uint64_t addr = R(ip->a);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared store [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    sh[addr] = R(ip->b);
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(AtomIAdd) {
    uint32_t *p = resolve(ip->b, R(ip->c), ip->e);
    R(ip->a) = std::atomic_ref<uint32_t>(*p).fetch_add(
        R(ip->d), std::memory_order_relaxed);
    ws.atomicOps += 1;
    NEXT;
}
VCB_OP(AtomIOr) {
    uint32_t *p = resolve(ip->b, R(ip->c), ip->e);
    R(ip->a) = std::atomic_ref<uint32_t>(*p).fetch_or(
        R(ip->d), std::memory_order_relaxed);
    ws.atomicOps += 1;
    NEXT;
}
VCB_OP(AtomIMin)
VCB_OP(AtomIMax) {
    uint32_t *p = resolve(ip->b, R(ip->c), ip->e);
    std::atomic_ref<uint32_t> ref(*p);
    uint32_t old = ref.load(std::memory_order_relaxed);
    for (;;) {
        int32_t cur = bitsToS(old);
        int32_t arg = bitsToS(R(ip->d));
        int32_t want = ip->op == MOp::AtomIMin ? std::min(cur, arg)
                                               : std::max(cur, arg);
        if (want == cur)
            break;
        if (ref.compare_exchange_weak(old, static_cast<uint32_t>(want),
                                      std::memory_order_relaxed))
            break;
    }
    R(ip->a) = old;
    ws.atomicOps += 1;
    NEXT;
}

VCB_OP(Jmp)
    XFER(ip->a);
VCB_OP(BrTrue)
    XFER(R(ip->a) ? ip->b : pcOf() + 1);
VCB_OP(BrFalse)
    XFER(!R(ip->a) ? ip->b : pcOf() + 1);

VCB_CMPBR(CmpBrIEq, x == y)
VCB_CMPBR(CmpBrINe, x != y)
VCB_CMPBR(CmpBrILt, bitsToS(x) < bitsToS(y))
VCB_CMPBR(CmpBrILe, bitsToS(x) <= bitsToS(y))
VCB_CMPBR(CmpBrIGt, bitsToS(x) > bitsToS(y))
VCB_CMPBR(CmpBrIGe, bitsToS(x) >= bitsToS(y))
VCB_CMPBR(CmpBrULt, x < y)
VCB_CMPBR(CmpBrUGe, x >= y)
VCB_CMPBR(CmpBrFEq, bitsToF(x) == bitsToF(y))
VCB_CMPBR(CmpBrFNe, bitsToF(x) != bitsToF(y))
VCB_CMPBR(CmpBrFLt, bitsToF(x) < bitsToF(y))
VCB_CMPBR(CmpBrFLe, bitsToF(x) <= bitsToF(y))
VCB_CMPBR(CmpBrFGt, bitsToF(x) > bitsToF(y))
VCB_CMPBR(CmpBrFGe, bitsToF(x) >= bitsToF(y))

VCB_OP(ConstAlu)
    R(ip->a) = ip->b;
    R(ip->c) = evalBin(static_cast<BinKind>(ip->aux), R(ip->d), R(ip->e));
    NEXT;
VCB_OP(IAddLd) {
    uint32_t addr = R(ip->b) + R(ip->c);
    R(ip->a) = addr;
    uint32_t *p = resolve(ip->aux, addr, ip->e);
    R(ip->d) =
        std::atomic_ref<uint32_t>(*p).load(std::memory_order_relaxed);
    NEXT;
}
VCB_OP(IAddSt) {
    uint32_t addr = R(ip->b) + R(ip->c);
    R(ip->a) = addr;
    uint32_t *p = resolve(ip->aux, addr, ip->e);
    std::atomic_ref<uint32_t>(*p).store(R(ip->d),
                                        std::memory_order_relaxed);
    NEXT;
}
VCB_OP(IMulAdd) {
    uint32_t t = R(ip->b) * R(ip->c);
    R(ip->a) = t;
    R(ip->d) = t + R(ip->e);
    NEXT;
}
VCB_OP(IAddAdd) {
    uint32_t t = R(ip->b) + R(ip->c);
    R(ip->a) = t;
    R(ip->d) = t + R(ip->e);
    NEXT;
}
VCB_OP(IAddLdSh) {
    uint32_t addr = R(ip->b) + R(ip->c);
    R(ip->a) = addr;
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%u] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), addr,
               (unsigned long long)shared_words);
    R(ip->d) = sh[addr];
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(IAddStSh) {
    uint32_t addr = R(ip->b) + R(ip->c);
    R(ip->a) = addr;
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared store [%u] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), addr,
               (unsigned long long)shared_words);
    sh[addr] = R(ip->d);
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(MulAddLdSh) {
    uint32_t t = R(ip->b) * R(ip->c);
    R(ip->a) = t;
    uint32_t addr = t + R(ip->e);
    R(ip->d) = addr;
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%u] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), addr,
               (unsigned long long)shared_words);
    R(ip->aux) = sh[addr];
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(MulAddStSh) {
    uint32_t t = R(ip->b) * R(ip->c);
    R(ip->a) = t;
    uint32_t addr = t + R(ip->e);
    R(ip->d) = addr;
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared store [%u] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), addr,
               (unsigned long long)shared_words);
    sh[addr] = R(ip->aux);
    ws.sharedAccesses += 1;
    NEXT;
}

VCB_OP(FMulFAdd) {
    const float t = bitsToF(R(ip->b)) * bitsToF(R(ip->c));
    R(ip->a) = fToBits(t);
    const float z = bitsToF(R(ip->e));
    R(ip->d) = fToBits(ip->aux & 1 ? t + z : z + t);
    NEXT;
}
VCB_OP(FMulFSub) {
    const float t = bitsToF(R(ip->b)) * bitsToF(R(ip->c));
    R(ip->a) = fToBits(t);
    const float z = bitsToF(R(ip->e));
    R(ip->d) = fToBits(ip->aux & 1 ? t - z : z - t);
    NEXT;
}
VCB_OP(LdShFMul) {
    uint64_t addr = R(ip->b);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    const uint32_t v = sh[addr];
    R(ip->a) = v;
    ws.sharedAccesses += 1;
    const float z = bitsToF(R(ip->e));
    R(ip->d) = fToBits(ip->aux & 1 ? bitsToF(v) * z : z * bitsToF(v));
    NEXT;
}
VCB_OP(LdShFSub) {
    uint64_t addr = R(ip->b);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    const uint32_t v = sh[addr];
    R(ip->a) = v;
    ws.sharedAccesses += 1;
    const float z = bitsToF(R(ip->e));
    R(ip->d) = fToBits(ip->aux & 1 ? bitsToF(v) - z : z - bitsToF(v));
    NEXT;
}
VCB_OP(LdShFDiv) {
    uint64_t addr = R(ip->b);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared load [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    const uint32_t v = sh[addr];
    R(ip->a) = v;
    ws.sharedAccesses += 1;
    const float z = bitsToF(R(ip->e));
    R(ip->d) = fToBits(ip->aux & 1 ? bitsToF(v) / z : z / bitsToF(v));
    NEXT;
}
VCB_OP(FSubStSh) {
    const uint32_t t =
        fToBits(bitsToF(R(ip->b)) - bitsToF(R(ip->c)));
    R(ip->a) = t;
    uint64_t addr = R(ip->d);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared store [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    sh[addr] = t;
    ws.sharedAccesses += 1;
    NEXT;
}
VCB_OP(FDivStSh) {
    const uint32_t t =
        fToBits(bitsToF(R(ip->b)) / bitsToF(R(ip->c)));
    R(ip->a) = t;
    uint64_t addr = R(ip->d);
    VCB_ASSERT(addr < shared_words,
               "kernel '%s' @%u: shared store [%llu] out of bounds "
               "(%llu words)",
               k.module.name.c_str(), pcOf(), (unsigned long long)addr,
               (unsigned long long)shared_words);
    sh[addr] = t;
    ws.sharedAccesses += 1;
    NEXT;
}

VCB_OP(IDivRem) {
    const int32_t den = bitsToS(R(ip->c));
    if (den == 0)
        panic("kernel '%s' @%u: integer division by zero",
              k.module.name.c_str(), pcOf());
    const int32_t num = bitsToS(R(ip->b));
    R(ip->a) = static_cast<uint32_t>(num / den);
    R(ip->d) = static_cast<uint32_t>(num % den);
    NEXT;
}

VCB_OP(Barrier)
    pcs[lane] = pcOf() + 1;
    ws.laneCycles += cycles;
    ++at_barrier;
    goto lane_done;
VCB_OP(Ret)
    ws.laneCycles += cycles;
    ++done;
    goto lane_done;

#if !VCB_THREADED_DISPATCH
          case MOp::Count:
            panic("kernel '%s' @%u: invalid micro-op",
                  k.module.name.c_str(), pcOf());
        }
        ++ip;
    }
#endif

lane_done:
    if (++lane < localCount)
        goto new_lane;
    done_out = done;
    barrier_out = at_barrier;
}

#undef VCB_CMPBR
#undef VCB_OP
#undef NEXT
#undef XFER
#undef R

template void
Interpreter::runPhase<false>(uint32_t, uint32_t, uint32_t,
                             WorkgroupStats &, CoalesceSampler *,
                             uint32_t &, uint32_t &);
template void
Interpreter::runPhase<true>(uint32_t, uint32_t, uint32_t,
                            WorkgroupStats &, CoalesceSampler *,
                            uint32_t &, uint32_t &);

/** Lane vector of register x (contiguous, reg-major file). */
#define V(x) (regs0 + static_cast<size_t>(x) * lc)
/** Element-wise binary op handler for the op-major executor.  A may
 *  alias B/C only exactly (vector offsets are multiples of lc), which
 *  keeps the per-lane semantics of the lane-major path. */
#define VBIN(name, expr)                                                  \
    case MOp::name: {                                                     \
        uint32_t *const A = V(in.a);                                      \
        const uint32_t *const B = V(in.b);                                \
        const uint32_t *const C = V(in.c);                                \
        for (size_t l = 0; l < lc; ++l)                                   \
            A[l] = (expr);                                                \
        break;                                                            \
    }
#define VUN(name, expr)                                                   \
    case MOp::name: {                                                     \
        uint32_t *const A = V(in.a);                                      \
        const uint32_t *const B = V(in.b);                                \
        for (size_t l = 0; l < lc; ++l)                                   \
            A[l] = (expr);                                                \
        break;                                                            \
    }
/** Fused compare+branch: flags written per lane, then the uniform /
 *  divergent decision below the switch. */
#define VCMPBR(name, expr)                                                \
    case MOp::name: {                                                     \
        uint32_t *const A = V(in.a);                                      \
        const uint32_t *const B = V(in.b);                                \
        const uint32_t *const C = V(in.c);                                \
        uint32_t taken = 0;                                               \
        const uint32_t sense = in.aux;                                    \
        for (size_t l = 0; l < lc; ++l) {                                 \
            const uint32_t x = B[l];                                      \
            const uint32_t y = C[l];                                      \
            const uint32_t cond = (expr);                                 \
            A[l] = cond;                                                  \
            taken += cond == sense;                                       \
        }                                                                 \
        if (taken == lc || taken == 0) {                                  \
            pc = taken ? in.d : pc + 1;                                   \
            ws.laneCycles +=                                              \
                static_cast<uint64_t>(cost_from[pc]) * lc;                \
            continue;                                                     \
        }                                                                 \
        for (size_t l = 0; l < lc; ++l)                                   \
            pcs[l] = A[l] == sense ? in.d : pc + 1;                       \
        runPhase<false>(wx, wy, wz, ws, nullptr, done_out,                \
                        barrier_out);                                     \
        return;                                                           \
    }

void
Interpreter::runPhaseVector(uint32_t start_pc, uint32_t wx, uint32_t wy,
                            uint32_t wz, WorkgroupStats &ws,
                            uint32_t &done_out, uint32_t &barrier_out)
{
    const CompiledKernel &k = *kernel;
    const MicroKernel &mk = k.micro;
    const MicroOp *const ops = mk.ops.data();
    const uint32_t *const cost_from = mk.costFrom.data();
    const size_t lc = localCount;
    uint32_t *const regs0 = regs.data();
    const BufferBinding *const bufs = ctx->buffers.data();
    uint64_t *const site_exec = ws.siteExec.data();
    uint32_t *const sh = shared.data();
    const uint64_t shared_words = shared.size();
    const uint32_t lx = k.module.localSize[0];
    const uint32_t ly = k.module.localSize[1];

    uint32_t pc = start_pc;
    // Charge the whole straight-line run for every lane up front, as
    // the lane-major executor does per lane at entry.
    ws.laneCycles += static_cast<uint64_t>(cost_from[pc]) * lc;

    auto oob = [&](uint32_t binding, uint64_t addr,
                   uint64_t words) -> void {
        panic("kernel '%s' @%u: binding %u access [%llu] out of bounds "
              "(%llu words)",
              k.module.name.c_str(), pc, binding,
              (unsigned long long)addr, (unsigned long long)words);
    };
    auto shOob = [&](const char *what, uint64_t addr) -> void {
        panic("kernel '%s' @%u: shared %s [%llu] out of bounds "
              "(%llu words)",
              k.module.name.c_str(), pc, what, (unsigned long long)addr,
              (unsigned long long)shared_words);
    };

    for (;;) {
        const MicroOp &in = ops[pc];
        switch (in.op) {
          case MOp::Const:
            std::fill_n(V(in.a), lc, in.b);
            break;
          case MOp::Mov:
            std::copy_n(V(in.b), lc, V(in.a));
            break;
          case MOp::LdBuiltin: {
            using spirv::Builtin;
            uint32_t *const A = V(in.a);
            const LaneId *const lid = lids.data();
            switch (static_cast<Builtin>(in.aux)) {
              case Builtin::GlobalIdX:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = wx * lx + lid[l].x;
                break;
              case Builtin::GlobalIdY:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = wy * ly + lid[l].y;
                break;
              case Builtin::GlobalIdZ:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = wz * k.module.localSize[2] + lid[l].z;
                break;
              case Builtin::LocalIdX:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = lid[l].x;
                break;
              case Builtin::LocalIdY:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = lid[l].y;
                break;
              case Builtin::LocalIdZ:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = lid[l].z;
                break;
              case Builtin::LocalLinearId:
                for (size_t l = 0; l < lc; ++l)
                    A[l] = static_cast<uint32_t>(l);
                break;
              case Builtin::GroupIdX: std::fill_n(A, lc, wx); break;
              case Builtin::GroupIdY: std::fill_n(A, lc, wy); break;
              case Builtin::GroupIdZ: std::fill_n(A, lc, wz); break;
              case Builtin::NumGroupsX:
                std::fill_n(A, lc, ctx->groups[0]);
                break;
              case Builtin::NumGroupsY:
                std::fill_n(A, lc, ctx->groups[1]);
                break;
              case Builtin::NumGroupsZ:
                std::fill_n(A, lc, ctx->groups[2]);
                break;
              case Builtin::LocalSizeX: std::fill_n(A, lc, lx); break;
              case Builtin::LocalSizeY: std::fill_n(A, lc, ly); break;
              case Builtin::LocalSizeZ:
                std::fill_n(A, lc, k.module.localSize[2]);
                break;
              case Builtin::GlobalSizeX:
                std::fill_n(A, lc, ctx->groups[0] * lx);
                break;
              case Builtin::GlobalSizeY:
                std::fill_n(A, lc, ctx->groups[1] * ly);
                break;
              case Builtin::GlobalSizeZ:
                std::fill_n(A, lc,
                            ctx->groups[2] * k.module.localSize[2]);
                break;
              case Builtin::Count: std::fill_n(A, lc, 0u); break;
            }
            break;
          }
          case MOp::LdPush:
            std::fill_n(V(in.a), lc, ctx->push[in.b]);
            break;

          VBIN(IAdd, B[l] + C[l])
          VBIN(ISub, B[l] - C[l])
          VBIN(IMul, B[l] * C[l])
          case MOp::IDiv: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            for (size_t l = 0; l < lc; ++l) {
                if (C[l] == 0)
                    panic("kernel '%s' @%u: integer division by zero",
                          k.module.name.c_str(), pc);
                A[l] = static_cast<uint32_t>(bitsToS(B[l]) /
                                             bitsToS(C[l]));
            }
            break;
          }
          case MOp::IRem: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            for (size_t l = 0; l < lc; ++l) {
                if (C[l] == 0)
                    panic("kernel '%s' @%u: integer remainder by zero",
                          k.module.name.c_str(), pc);
                A[l] = static_cast<uint32_t>(bitsToS(B[l]) %
                                             bitsToS(C[l]));
            }
            break;
          }
          VBIN(IMin, static_cast<uint32_t>(
                         std::min(bitsToS(B[l]), bitsToS(C[l]))))
          VBIN(IMax, static_cast<uint32_t>(
                         std::max(bitsToS(B[l]), bitsToS(C[l]))))
          VBIN(IAnd, B[l] & C[l])
          VBIN(IOr, B[l] | C[l])
          VBIN(IXor, B[l] ^ C[l])
          VUN(INot, ~B[l])
          VUN(INeg, static_cast<uint32_t>(-bitsToS(B[l])))
          VBIN(IShl, B[l] << (C[l] & 31))
          VBIN(IShrU, B[l] >> (C[l] & 31))
          VBIN(IShrS,
               static_cast<uint32_t>(bitsToS(B[l]) >> (C[l] & 31)))

          VBIN(FAdd, fToBits(bitsToF(B[l]) + bitsToF(C[l])))
          VBIN(FSub, fToBits(bitsToF(B[l]) - bitsToF(C[l])))
          VBIN(FMul, fToBits(bitsToF(B[l]) * bitsToF(C[l])))
          VBIN(FDiv, fToBits(bitsToF(B[l]) / bitsToF(C[l])))
          VBIN(FMin, fToBits(std::fmin(bitsToF(B[l]), bitsToF(C[l]))))
          VBIN(FMax, fToBits(std::fmax(bitsToF(B[l]), bitsToF(C[l]))))
          VUN(FAbs, fToBits(std::fabs(bitsToF(B[l]))))
          VUN(FNeg, fToBits(-bitsToF(B[l])))
          VUN(FSqrt, fToBits(std::sqrt(bitsToF(B[l]))))
          VUN(FExp, fToBits(std::exp(bitsToF(B[l]))))
          VUN(FLog, fToBits(std::log(bitsToF(B[l]))))
          VUN(FFloor, fToBits(std::floor(bitsToF(B[l]))))
          VUN(FSin, fToBits(std::sin(bitsToF(B[l]))))
          VUN(FCos, fToBits(std::cos(bitsToF(B[l]))))
          case MOp::FFma: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            const uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l)
                A[l] = fToBits(std::fma(bitsToF(B[l]), bitsToF(C[l]),
                                        bitsToF(D[l])));
            break;
          }
          VBIN(FPow, fToBits(std::pow(bitsToF(B[l]), bitsToF(C[l]))))
          VUN(CvtSF, fToBits(static_cast<float>(bitsToS(B[l]))))
          VUN(CvtFS, static_cast<uint32_t>(
                         static_cast<int32_t>(bitsToF(B[l]))))

          VBIN(IEq, B[l] == C[l])
          VBIN(INe, B[l] != C[l])
          VBIN(ILt, bitsToS(B[l]) < bitsToS(C[l]))
          VBIN(ILe, bitsToS(B[l]) <= bitsToS(C[l]))
          VBIN(IGt, bitsToS(B[l]) > bitsToS(C[l]))
          VBIN(IGe, bitsToS(B[l]) >= bitsToS(C[l]))
          VBIN(ULt, B[l] < C[l])
          VBIN(UGe, B[l] >= C[l])
          VBIN(FEq, bitsToF(B[l]) == bitsToF(C[l]))
          VBIN(FNe, bitsToF(B[l]) != bitsToF(C[l]))
          VBIN(FLt, bitsToF(B[l]) < bitsToF(C[l]))
          VBIN(FLe, bitsToF(B[l]) <= bitsToF(C[l]))
          VBIN(FGt, bitsToF(B[l]) > bitsToF(C[l]))
          VBIN(FGe, bitsToF(B[l]) >= bitsToF(C[l]))
          case MOp::Select: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            const uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l)
                A[l] = B[l] ? C[l] : D[l];
            break;
          }

          case MOp::LdBuf: {
            const BufferBinding &buf = bufs[in.b];
            uint32_t *const A = V(in.a);
            const uint32_t *const ADDR = V(in.c);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = ADDR[l];
                if (addr >= buf.words) [[unlikely]]
                    oob(in.b, addr, buf.words);
                A[l] = std::atomic_ref<uint32_t>(buf.data[addr])
                           .load(std::memory_order_relaxed);
            }
            site_exec[in.d] += lc;
            break;
          }
          case MOp::StBuf: {
            const BufferBinding &buf = bufs[in.a];
            const uint32_t *const ADDR = V(in.b);
            const uint32_t *const S = V(in.c);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = ADDR[l];
                if (addr >= buf.words) [[unlikely]]
                    oob(in.a, addr, buf.words);
                std::atomic_ref<uint32_t>(buf.data[addr])
                    .store(S[l], std::memory_order_relaxed);
            }
            site_exec[in.d] += lc;
            break;
          }
          case MOp::LdShared: {
            uint32_t *const A = V(in.a);
            const uint32_t *const ADDR = V(in.b);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = ADDR[l];
                if (addr >= shared_words) [[unlikely]]
                    shOob("load", addr);
                A[l] = sh[addr];
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::StShared: {
            const uint32_t *const ADDR = V(in.a);
            const uint32_t *const S = V(in.b);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = ADDR[l];
                if (addr >= shared_words) [[unlikely]]
                    shOob("store", addr);
                sh[addr] = S[l];
            }
            ws.sharedAccesses += lc;
            break;
          }

          case MOp::IAddLd: {
            const BufferBinding &buf = bufs[in.aux];
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = B[l] + C[l];
                A[l] = addr;
                if (addr >= buf.words) [[unlikely]]
                    oob(in.aux, addr, buf.words);
                D[l] = std::atomic_ref<uint32_t>(buf.data[addr])
                           .load(std::memory_order_relaxed);
            }
            site_exec[in.e] += lc;
            break;
          }
          case MOp::IAddSt: {
            const BufferBinding &buf = bufs[in.aux];
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            const uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = B[l] + C[l];
                A[l] = addr;
                if (addr >= buf.words) [[unlikely]]
                    oob(in.aux, addr, buf.words);
                std::atomic_ref<uint32_t>(buf.data[addr])
                    .store(D[l], std::memory_order_relaxed);
            }
            site_exec[in.e] += lc;
            break;
          }
          case MOp::IMulAdd: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t t = B[l] * C[l];
                A[l] = t;
                D[l] = t + E[l];
            }
            break;
          }
          case MOp::IAddAdd: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t t = B[l] + C[l];
                A[l] = t;
                D[l] = t + E[l];
            }
            break;
          }
          case MOp::IAddLdSh: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = B[l] + C[l];
                A[l] = addr;
                if (addr >= shared_words) [[unlikely]]
                    shOob("load", addr);
                D[l] = sh[addr];
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::IAddStSh: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            const uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = B[l] + C[l];
                A[l] = addr;
                if (addr >= shared_words) [[unlikely]]
                    shOob("store", addr);
                sh[addr] = D[l];
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::MulAddLdSh: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            uint32_t *const X = V(in.aux);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t t = B[l] * C[l];
                A[l] = t;
                const uint32_t addr = t + E[l];
                D[l] = addr;
                if (addr >= shared_words) [[unlikely]]
                    shOob("load", addr);
                X[l] = sh[addr];
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::MulAddStSh: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            const uint32_t *const X = V(in.aux);
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t t = B[l] * C[l];
                A[l] = t;
                const uint32_t addr = t + E[l];
                D[l] = addr;
                if (addr >= shared_words) [[unlikely]]
                    shOob("store", addr);
                sh[addr] = X[l];
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::FMulFAdd: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            const bool left = in.aux & 1;
            for (size_t l = 0; l < lc; ++l) {
                const float t = bitsToF(B[l]) * bitsToF(C[l]);
                A[l] = fToBits(t);
                const float z = bitsToF(E[l]);
                D[l] = fToBits(left ? t + z : z + t);
            }
            break;
          }
          case MOp::FMulFSub: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            const bool left = in.aux & 1;
            for (size_t l = 0; l < lc; ++l) {
                const float t = bitsToF(B[l]) * bitsToF(C[l]);
                A[l] = fToBits(t);
                const float z = bitsToF(E[l]);
                D[l] = fToBits(left ? t - z : z - t);
            }
            break;
          }
          case MOp::LdShFMul:
          case MOp::LdShFSub:
          case MOp::LdShFDiv: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            const bool left = in.aux & 1;
            for (size_t l = 0; l < lc; ++l) {
                const uint32_t addr = B[l];
                if (addr >= shared_words) [[unlikely]]
                    shOob("load", addr);
                const uint32_t v = sh[addr];
                A[l] = v;
                const float fv = bitsToF(v);
                const float z = bitsToF(E[l]);
                float res;
                if (in.op == MOp::LdShFMul)
                    res = left ? fv * z : z * fv;
                else if (in.op == MOp::LdShFSub)
                    res = left ? fv - z : z - fv;
                else
                    res = left ? fv / z : z / fv;
                D[l] = fToBits(res);
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::FSubStSh:
          case MOp::FDivStSh: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            const uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l) {
                const float x = bitsToF(B[l]);
                const float y = bitsToF(C[l]);
                const uint32_t t =
                    fToBits(in.op == MOp::FSubStSh ? x - y : x / y);
                A[l] = t;
                const uint32_t addr = D[l];
                if (addr >= shared_words) [[unlikely]]
                    shOob("store", addr);
                sh[addr] = t;
            }
            ws.sharedAccesses += lc;
            break;
          }
          case MOp::IDivRem: {
            uint32_t *const A = V(in.a);
            const uint32_t *const B = V(in.b);
            const uint32_t *const C = V(in.c);
            uint32_t *const D = V(in.d);
            for (size_t l = 0; l < lc; ++l) {
                const int32_t den = bitsToS(C[l]);
                if (den == 0)
                    panic("kernel '%s' @%u: integer division by zero",
                          k.module.name.c_str(), pc);
                const int32_t num = bitsToS(B[l]);
                A[l] = static_cast<uint32_t>(num / den);
                D[l] = static_cast<uint32_t>(num % den);
            }
            break;
          }

          case MOp::Jmp:
            pc = in.a;
            ws.laneCycles += static_cast<uint64_t>(cost_from[pc]) * lc;
            continue;
          case MOp::BrTrue:
          case MOp::BrFalse: {
            const uint32_t *const A = V(in.a);
            const uint32_t sense = in.op == MOp::BrTrue ? 1 : 0;
            uint32_t taken = 0;
            for (size_t l = 0; l < lc; ++l)
                taken += (A[l] != 0) == (sense != 0);
            if (taken == lc || taken == 0) {
                pc = taken ? in.b : pc + 1;
                ws.laneCycles +=
                    static_cast<uint64_t>(cost_from[pc]) * lc;
                continue;
            }
            for (size_t l = 0; l < lc; ++l)
                pcs[l] = (A[l] != 0) == (sense != 0) ? in.b : pc + 1;
            runPhase<false>(wx, wy, wz, ws, nullptr, done_out,
                            barrier_out);
            return;
          }

          VCMPBR(CmpBrIEq, x == y)
          VCMPBR(CmpBrINe, x != y)
          VCMPBR(CmpBrILt, bitsToS(x) < bitsToS(y))
          VCMPBR(CmpBrILe, bitsToS(x) <= bitsToS(y))
          VCMPBR(CmpBrIGt, bitsToS(x) > bitsToS(y))
          VCMPBR(CmpBrIGe, bitsToS(x) >= bitsToS(y))
          VCMPBR(CmpBrULt, x < y)
          VCMPBR(CmpBrUGe, x >= y)
          VCMPBR(CmpBrFEq, bitsToF(x) == bitsToF(y))
          VCMPBR(CmpBrFNe, bitsToF(x) != bitsToF(y))
          VCMPBR(CmpBrFLt, bitsToF(x) < bitsToF(y))
          VCMPBR(CmpBrFLe, bitsToF(x) <= bitsToF(y))
          VCMPBR(CmpBrFGt, bitsToF(x) > bitsToF(y))
          VCMPBR(CmpBrFGe, bitsToF(x) >= bitsToF(y))

          case MOp::ConstAlu: {
            uint32_t *const A = V(in.a);
            uint32_t *const C2 = V(in.c);
            const uint32_t *const D = V(in.d);
            const uint32_t *const E = V(in.e);
            const BinKind kind = static_cast<BinKind>(in.aux);
            std::fill_n(A, lc, in.b);
            for (size_t l = 0; l < lc; ++l)
                C2[l] = evalBin(kind, D[l], E[l]);
            break;
          }

          case MOp::Barrier:
            std::fill(pcs.begin(), pcs.end(), pc + 1);
            done_out = 0;
            barrier_out = static_cast<uint32_t>(lc);
            return;
          case MOp::Ret:
            done_out = static_cast<uint32_t>(lc);
            barrier_out = 0;
            return;

          default:
            // Atomics (lane order observable) and anything else we do
            // not vectorize: hand the rest of the phase to the
            // lane-major executor, which re-charges from this pc.
            ws.laneCycles -= static_cast<uint64_t>(cost_from[pc]) * lc;
            std::fill(pcs.begin(), pcs.end(), pc);
            runPhase<false>(wx, wy, wz, ws, nullptr, done_out,
                            barrier_out);
            return;
        }
        ++pc;
    }
}

#undef V
#undef VBIN
#undef VUN
#undef VCMPBR

} // namespace vcb::sim

#include "sim/interpreter.h"

#include <atomic>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace vcb::sim {

namespace {

using spirv::Op;

/** ALU issue cost per opcode, in lane-cycles. */
constexpr uint8_t
opCost(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::Ret:
        return 0;
      case Op::IMul:
        return 2;
      case Op::IDiv:
      case Op::IRem:
        return 12;
      case Op::FDiv:
      case Op::FSqrt:
        return 8;
      case Op::FExp:
      case Op::FLog:
      case Op::FSin:
      case Op::FCos:
        return 16;
      case Op::FPow:
        return 24;
      case Op::LdBuf:
      case Op::StBuf:
        return 2;
      case Op::AtomIAdd:
      case Op::AtomIMin:
      case Op::AtomIMax:
      case Op::AtomIOr:
        return 4;
      case Op::Barrier:
        return 2;
      default:
        return 1;
    }
}

inline float
asF(uint32_t v)
{
    return std::bit_cast<float>(v);
}

inline uint32_t
asU(float v)
{
    return std::bit_cast<uint32_t>(v);
}

inline int32_t
asS(uint32_t v)
{
    return static_cast<int32_t>(v);
}

} // namespace

void
Interpreter::prepare(const DispatchContext &new_ctx)
{
    ctx = &new_ctx;
    kernel = new_ctx.kernel;
    VCB_ASSERT(kernel != nullptr, "dispatch without kernel");
    localCount = kernel->localCount();
    regs.resize(static_cast<size_t>(localCount) * kernel->module.regCount);
    pcs.resize(localCount);
    states.resize(localCount);
    shared.resize(kernel->module.sharedWords);
}

void
Interpreter::runWorkgroup(uint32_t wx, uint32_t wy, uint32_t wz,
                          WorkgroupStats &ws, CoalesceSampler *sampler)
{
    std::fill(regs.begin(), regs.end(), 0u);
    std::fill(pcs.begin(), pcs.end(), 0u);
    std::fill(states.begin(), states.end(), LaneState::Ready);
    std::fill(shared.begin(), shared.end(), 0u);
    if (sampler)
        sampler->beginWorkgroup();

    ws.invocations += localCount;

    uint32_t done = 0;
    while (done < localCount) {
        uint32_t at_barrier = 0;
        for (uint32_t lane = 0; lane < localCount; ++lane) {
            if (states[lane] != LaneState::Ready)
                continue;
            LaneState st = runLane(lane, wx, wy, wz, ws, sampler);
            states[lane] = st;
            if (st == LaneState::Done)
                ++done;
            else
                ++at_barrier;
        }
        if (at_barrier > 0) {
            if (done > 0) {
                panic("kernel '%s': barrier divergence in workgroup "
                      "(%u,%u,%u): %u lanes at barrier, %u returned",
                      kernel->module.name.c_str(), wx, wy, wz, at_barrier,
                      done);
            }
            // Release the barrier: all live lanes resume.
            for (uint32_t lane = 0; lane < localCount; ++lane)
                if (states[lane] == LaneState::AtBarrier)
                    states[lane] = LaneState::Ready;
            ws.barriers += 1;
            done = 0; // recount below: no lane is Done here
        }
    }
    if (sampler)
        sampler->endWorkgroup();
}

Interpreter::LaneState
Interpreter::runLane(uint32_t lane, uint32_t wx, uint32_t wy, uint32_t wz,
                     WorkgroupStats &ws, CoalesceSampler *sampler)
{
    const CompiledKernel &k = *kernel;
    const spirv::Insn *insns = k.insns.data();
    const uint32_t insn_count = static_cast<uint32_t>(k.insns.size());
    uint32_t *r = regs.data() +
                  static_cast<size_t>(lane) * k.module.regCount;
    uint32_t pc = pcs[lane];
    uint64_t cycles = 0;

    const uint32_t lx = k.module.localSize[0];
    const uint32_t ly = k.module.localSize[1];
    const uint32_t lid_x = lane % lx;
    const uint32_t lid_y = (lane / lx) % ly;
    const uint32_t lid_z = lane / (lx * ly);

    auto oob = [&](uint32_t binding, uint64_t addr,
                   uint64_t words) -> void {
        panic("kernel '%s' @%u: binding %u access [%llu] out of bounds "
              "(%llu words)",
              k.module.name.c_str(), pc, binding,
              (unsigned long long)addr, (unsigned long long)words);
    };

    auto memAccess = [&](uint32_t binding, uint32_t addr_reg,
                         uint32_t site_slot) -> uint32_t * {
        const BufferBinding &buf = ctx->buffers[binding];
        uint64_t addr = r[addr_reg];
        if (addr >= buf.words) {
            if (!ctx->robustAccess)
                oob(binding, addr, buf.words);
            addr = buf.words ? buf.words - 1 : 0;
        }
        ws.siteExec[site_slot] += 1;
        if (sampler)
            sampler->record(lane, site_slot, addr * 4);
        return buf.data + addr;
    };

    for (;;) {
        VCB_ASSERT(pc < insn_count, "kernel '%s': pc %u fell off the end",
                   k.module.name.c_str(), pc);
        const spirv::Insn &in = insns[pc];
        cycles += opCost(in.op);
        switch (in.op) {
          case Op::Nop:
            break;
          case Op::ConstI:
          case Op::ConstF:
            r[in.a] = in.b;
            break;
          case Op::Mov:
            r[in.a] = r[in.b];
            break;
          case Op::LdBuiltin: {
            using spirv::Builtin;
            uint32_t v = 0;
            switch (static_cast<Builtin>(in.b)) {
              case Builtin::GlobalIdX: v = wx * lx + lid_x; break;
              case Builtin::GlobalIdY: v = wy * ly + lid_y; break;
              case Builtin::GlobalIdZ:
                v = wz * k.module.localSize[2] + lid_z;
                break;
              case Builtin::LocalIdX: v = lid_x; break;
              case Builtin::LocalIdY: v = lid_y; break;
              case Builtin::LocalIdZ: v = lid_z; break;
              case Builtin::GroupIdX: v = wx; break;
              case Builtin::GroupIdY: v = wy; break;
              case Builtin::GroupIdZ: v = wz; break;
              case Builtin::NumGroupsX: v = ctx->groups[0]; break;
              case Builtin::NumGroupsY: v = ctx->groups[1]; break;
              case Builtin::NumGroupsZ: v = ctx->groups[2]; break;
              case Builtin::LocalSizeX: v = lx; break;
              case Builtin::LocalSizeY: v = ly; break;
              case Builtin::LocalSizeZ: v = k.module.localSize[2]; break;
              case Builtin::GlobalSizeX: v = ctx->groups[0] * lx; break;
              case Builtin::GlobalSizeY: v = ctx->groups[1] * ly; break;
              case Builtin::GlobalSizeZ:
                v = ctx->groups[2] * k.module.localSize[2];
                break;
              case Builtin::LocalLinearId: v = lane; break;
              case Builtin::Count: break;
            }
            r[in.a] = v;
            break;
          }
          case Op::LdPush:
            VCB_ASSERT(in.b < ctx->pushWords,
                       "kernel '%s': push word %u not provided (%u)",
                       k.module.name.c_str(), in.b, ctx->pushWords);
            r[in.a] = ctx->push[in.b];
            break;

          case Op::IAdd: r[in.a] = r[in.b] + r[in.c]; break;
          case Op::ISub: r[in.a] = r[in.b] - r[in.c]; break;
          case Op::IMul: r[in.a] = r[in.b] * r[in.c]; break;
          case Op::IDiv:
            if (r[in.c] == 0)
                panic("kernel '%s' @%u: integer division by zero",
                      k.module.name.c_str(), pc);
            r[in.a] = static_cast<uint32_t>(asS(r[in.b]) / asS(r[in.c]));
            break;
          case Op::IRem:
            if (r[in.c] == 0)
                panic("kernel '%s' @%u: integer remainder by zero",
                      k.module.name.c_str(), pc);
            r[in.a] = static_cast<uint32_t>(asS(r[in.b]) % asS(r[in.c]));
            break;
          case Op::IMin:
            r[in.a] = static_cast<uint32_t>(
                std::min(asS(r[in.b]), asS(r[in.c])));
            break;
          case Op::IMax:
            r[in.a] = static_cast<uint32_t>(
                std::max(asS(r[in.b]), asS(r[in.c])));
            break;
          case Op::IAnd: r[in.a] = r[in.b] & r[in.c]; break;
          case Op::IOr:  r[in.a] = r[in.b] | r[in.c]; break;
          case Op::IXor: r[in.a] = r[in.b] ^ r[in.c]; break;
          case Op::INot: r[in.a] = ~r[in.b]; break;
          case Op::INeg:
            r[in.a] = static_cast<uint32_t>(-asS(r[in.b]));
            break;
          case Op::IShl: r[in.a] = r[in.b] << (r[in.c] & 31); break;
          case Op::IShrU: r[in.a] = r[in.b] >> (r[in.c] & 31); break;
          case Op::IShrS:
            r[in.a] = static_cast<uint32_t>(asS(r[in.b]) >>
                                            (r[in.c] & 31));
            break;

          case Op::FAdd: r[in.a] = asU(asF(r[in.b]) + asF(r[in.c])); break;
          case Op::FSub: r[in.a] = asU(asF(r[in.b]) - asF(r[in.c])); break;
          case Op::FMul: r[in.a] = asU(asF(r[in.b]) * asF(r[in.c])); break;
          case Op::FDiv: r[in.a] = asU(asF(r[in.b]) / asF(r[in.c])); break;
          case Op::FMin:
            r[in.a] = asU(std::fmin(asF(r[in.b]), asF(r[in.c])));
            break;
          case Op::FMax:
            r[in.a] = asU(std::fmax(asF(r[in.b]), asF(r[in.c])));
            break;
          case Op::FAbs: r[in.a] = asU(std::fabs(asF(r[in.b]))); break;
          case Op::FNeg: r[in.a] = asU(-asF(r[in.b])); break;
          case Op::FSqrt: r[in.a] = asU(std::sqrt(asF(r[in.b]))); break;
          case Op::FExp: r[in.a] = asU(std::exp(asF(r[in.b]))); break;
          case Op::FLog: r[in.a] = asU(std::log(asF(r[in.b]))); break;
          case Op::FFloor: r[in.a] = asU(std::floor(asF(r[in.b]))); break;
          case Op::FSin: r[in.a] = asU(std::sin(asF(r[in.b]))); break;
          case Op::FCos: r[in.a] = asU(std::cos(asF(r[in.b]))); break;
          case Op::FFma:
            r[in.a] = asU(std::fma(asF(r[in.b]), asF(r[in.c]),
                                   asF(r[in.d])));
            break;
          case Op::FPow:
            r[in.a] = asU(std::pow(asF(r[in.b]), asF(r[in.c])));
            break;

          case Op::CvtSF:
            r[in.a] = asU(static_cast<float>(asS(r[in.b])));
            break;
          case Op::CvtFS:
            r[in.a] = static_cast<uint32_t>(
                static_cast<int32_t>(asF(r[in.b])));
            break;

          case Op::IEq: r[in.a] = r[in.b] == r[in.c]; break;
          case Op::INe: r[in.a] = r[in.b] != r[in.c]; break;
          case Op::ILt: r[in.a] = asS(r[in.b]) < asS(r[in.c]); break;
          case Op::ILe: r[in.a] = asS(r[in.b]) <= asS(r[in.c]); break;
          case Op::IGt: r[in.a] = asS(r[in.b]) > asS(r[in.c]); break;
          case Op::IGe: r[in.a] = asS(r[in.b]) >= asS(r[in.c]); break;
          case Op::ULt: r[in.a] = r[in.b] < r[in.c]; break;
          case Op::UGe: r[in.a] = r[in.b] >= r[in.c]; break;
          case Op::FEq: r[in.a] = asF(r[in.b]) == asF(r[in.c]); break;
          case Op::FNe: r[in.a] = asF(r[in.b]) != asF(r[in.c]); break;
          case Op::FLt: r[in.a] = asF(r[in.b]) < asF(r[in.c]); break;
          case Op::FLe: r[in.a] = asF(r[in.b]) <= asF(r[in.c]); break;
          case Op::FGt: r[in.a] = asF(r[in.b]) > asF(r[in.c]); break;
          case Op::FGe: r[in.a] = asF(r[in.b]) >= asF(r[in.c]); break;
          case Op::Select:
            r[in.a] = r[in.b] ? r[in.c] : r[in.d];
            break;

          case Op::LdBuf: {
            uint32_t *p = memAccess(in.b, in.c, k.siteOfInsn[pc] - 1);
            r[in.a] = std::atomic_ref<uint32_t>(*p).load(
                std::memory_order_relaxed);
            break;
          }
          case Op::StBuf: {
            uint32_t *p = memAccess(in.a, in.b, k.siteOfInsn[pc] - 1);
            std::atomic_ref<uint32_t>(*p).store(
                r[in.c], std::memory_order_relaxed);
            break;
          }
          case Op::LdShared: {
            uint64_t addr = r[in.b];
            VCB_ASSERT(addr < shared.size(),
                       "kernel '%s' @%u: shared load [%llu] out of "
                       "bounds (%zu words)",
                       k.module.name.c_str(), pc,
                       (unsigned long long)addr, shared.size());
            r[in.a] = shared[addr];
            ws.sharedAccesses += 1;
            break;
          }
          case Op::StShared: {
            uint64_t addr = r[in.a];
            VCB_ASSERT(addr < shared.size(),
                       "kernel '%s' @%u: shared store [%llu] out of "
                       "bounds (%zu words)",
                       k.module.name.c_str(), pc,
                       (unsigned long long)addr, shared.size());
            shared[addr] = r[in.b];
            ws.sharedAccesses += 1;
            break;
          }
          case Op::AtomIAdd: {
            uint32_t *p = memAccess(in.b, in.c, k.siteOfInsn[pc] - 1);
            r[in.a] = std::atomic_ref<uint32_t>(*p).fetch_add(
                r[in.d], std::memory_order_relaxed);
            ws.atomicOps += 1;
            break;
          }
          case Op::AtomIOr: {
            uint32_t *p = memAccess(in.b, in.c, k.siteOfInsn[pc] - 1);
            r[in.a] = std::atomic_ref<uint32_t>(*p).fetch_or(
                r[in.d], std::memory_order_relaxed);
            ws.atomicOps += 1;
            break;
          }
          case Op::AtomIMin:
          case Op::AtomIMax: {
            uint32_t *p = memAccess(in.b, in.c, k.siteOfInsn[pc] - 1);
            std::atomic_ref<uint32_t> ref(*p);
            uint32_t old = ref.load(std::memory_order_relaxed);
            for (;;) {
                int32_t cur = asS(old);
                int32_t arg = asS(r[in.d]);
                int32_t want = in.op == Op::AtomIMin ? std::min(cur, arg)
                                                     : std::max(cur, arg);
                if (want == cur)
                    break;
                if (ref.compare_exchange_weak(
                        old, static_cast<uint32_t>(want),
                        std::memory_order_relaxed))
                    break;
            }
            r[in.a] = old;
            ws.atomicOps += 1;
            break;
          }

          case Op::Br:
            pc = in.a;
            continue;
          case Op::BrTrue:
            if (r[in.a]) {
                pc = in.b;
                continue;
            }
            break;
          case Op::BrFalse:
            if (!r[in.a]) {
                pc = in.b;
                continue;
            }
            break;
          case Op::Barrier:
            pcs[lane] = pc + 1;
            ws.laneCycles += cycles;
            return LaneState::AtBarrier;
          case Op::Ret:
            ws.laneCycles += cycles;
            return LaneState::Done;
          case Op::Count:
            panic("kernel '%s' @%u: invalid opcode",
                  k.module.name.c_str(), pc);
        }
        ++pc;
    }
}

} // namespace vcb::sim

/**
 * @file
 * Simulated host and queue clocks.
 *
 * The paper measures kernel-region times on the CPU with std::chrono;
 * the simulator's analogue is the host clock of a Timeline.  Enqueue
 * style APIs advance the host clock by their call overhead and append
 * device work to an in-order queue; blocking waits advance the host
 * clock to the awaited completion plus a wakeup latency.  This
 * naturally reproduces both behaviours the paper contrasts: pipelined
 * enqueue-ahead execution (total = max of host issue rate and device
 * rate) and the blocking multi-kernel method (overheads serialise with
 * the kernels).
 */

#ifndef VCB_SIM_TIMELINE_H
#define VCB_SIM_TIMELINE_H

#include <cstdint>
#include <vector>

namespace vcb::sim {

/** One host clock plus per-queue device clocks (all in ns). */
class Timeline
{
  public:
    explicit Timeline(uint32_t queue_count = 1);

    /** Current simulated host time. */
    double hostNow() const { return hostNs; }

    /** Spend host time (API call overheads, host-side compute). */
    void hostAdvance(double ns);

    /**
     * Append device work to an in-order queue; the work starts when
     * both the queue is free and the host has issued it (i.e. now).
     * @return completion timestamp of this work.
     */
    double enqueue(uint32_t queue, double device_ns);

    /** Earliest time queue becomes idle. */
    double queueReady(uint32_t queue) const;

    /** Block the host until a timestamp has passed (fence/event wait);
     *  charges wakeup_ns on top. */
    void hostWaitUntil(double t, double wakeup_ns);

    /** Block the host until the queue drains. */
    void hostWaitQueue(uint32_t queue, double wakeup_ns);

    /** Block the host until all queues drain. */
    void hostWaitAll(double wakeup_ns);

    /** Number of queues. */
    uint32_t queueCount() const;

    /** Make one queue wait for a timestamp (cross-queue semaphore). */
    void queueWaitUntil(uint32_t queue, double t);

    /** Device time enqueued on one queue since construction (busy
     *  time, excluding idle gaps — the overlap-efficiency numerator). */
    double busyNs(uint32_t queue) const;

    /** Total device busy time across all queues.  Overlap is real
     *  exactly when this exceeds the makespan of the same work. */
    double busyTotalNs() const;

  private:
    double hostNs = 0;
    std::vector<double> queues;
    std::vector<double> busy;
};

} // namespace vcb::sim

#endif // VCB_SIM_TIMELINE_H

/**
 * @file
 * Driver-side lowering of decoded kernels to a dense micro-op IR.
 *
 * The interpreter originally executed raw spirv::Insn records, paying
 * an opCost() table switch and a siteOfInsn[] indirection on every
 * instruction of every lane.  compileKernel now runs this lowering
 * pass once per kernel instead:
 *
 *  - operands are re-packed so everything the executor needs (memory
 *    site slot, builtin code, immediate) sits in the micro-op itself;
 *  - adjacent compare+branch and const+ALU pairs are fused into single
 *    micro-ops (never across branch targets);
 *  - per-op issue costs are folded into a suffix-sum table
 *    (costFrom[pc] = lane-cycles from pc to the end of its straight-
 *    line run), so the executor accumulates cycles once per control
 *    transfer instead of once per instruction;
 *  - a definite-assignment dataflow pass proves, when possible, that
 *    every register is written before it is read on all paths, letting
 *    the interpreter skip the per-workgroup register-file zero-fill.
 *
 * Lowering is observably invisible: output buffers, DispatchStats and
 * simulated kernelNs are bit-identical to direct Insn execution.  It
 * leans on the validator's guarantees (operand ranges, label targets
 * in range, LdPush inside the push block, terminal Ret/Br), which hold
 * for every module compileKernel accepts.
 */

#ifndef VCB_SIM_MICROOP_H
#define VCB_SIM_MICROOP_H

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/dispatch.h"
#include "spirv/opcodes.h"

namespace vcb::sim {

struct CompiledKernel;

/**
 * Micro-op opcodes.  Operand conventions (fields of MicroOp) are given
 * per op; `r[x]` is lane register x, `aux` is the 16-bit auxiliary
 * field.
 */
enum class MOp : uint16_t
{
    Const,     ///< r[a] = b                        (ConstI / ConstF)
    Mov,       ///< r[a] = r[b]
    LdBuiltin, ///< r[a] = builtin(aux)
    LdPush,    ///< r[a] = push[b]

    IAdd, ISub, IMul, IDiv, IRem, IMin, IMax, IAnd, IOr, IXor,
    INot, INeg, IShl, IShrU, IShrS,
    FAdd, FSub, FMul, FDiv, FMin, FMax, FAbs, FNeg, FSqrt, FExp, FLog,
    FFloor, FSin, FCos,
    FFma,      ///< r[a] = fma(r[b], r[c], r[d])
    FPow,
    CvtSF, CvtFS,

    IEq, INe, ILt, ILe, IGt, IGe, ULt, UGe,
    FEq, FNe, FLt, FLe, FGt, FGe,
    Select,    ///< r[a] = r[b] ? r[c] : r[d]

    LdBuf,     ///< r[a] = buf[b][r[c]]; site slot d
    StBuf,     ///< buf[a][r[b]] = r[c]; site slot d
    LdShared,  ///< r[a] = shared[r[b]]
    StShared,  ///< shared[r[a]] = r[b]
    AtomIAdd,  ///< r[a] = old; buf[b][r[c]] += r[d]; site slot e
    AtomIOr,
    AtomIMin,
    AtomIMax,

    Jmp,       ///< pc = a
    BrTrue,    ///< if (r[a]) pc = b
    BrFalse,   ///< if (!r[a]) pc = b
    /** Fused compare+branch family: r[a] = (r[b] <op> r[c]); branch to
     *  d when the result equals aux (the branch sense).  One micro-op
     *  per comparison so the executor needs no inner dispatch; order
     *  matches the BinKind comparison block. */
    CmpBrIEq, CmpBrINe, CmpBrILt, CmpBrILe, CmpBrIGt, CmpBrIGe,
    CmpBrULt, CmpBrUGe,
    CmpBrFEq, CmpBrFNe, CmpBrFLt, CmpBrFLe, CmpBrFGt, CmpBrFGe,
    /** Fused constant+ALU: r[a] = b; r[c] = bin(aux.kind, r[d], r[e]).
     *  The const dst is still written (it may be read downstream). */
    ConstAlu,
    /** Fused address+load: t = r[b] + r[c]; r[a] = t;
     *  r[d] = buf[aux][t]; site slot e. */
    IAddLd,
    /** Fused address+store: t = r[b] + r[c]; r[a] = t;
     *  buf[aux][t] = r[d]; site slot e. */
    IAddSt,
    /** Fused multiply-add (array indexing): t = r[b] * r[c];
     *  r[a] = t; r[d] = t + r[e]. */
    IMulAdd,
    /** Fused add pair: t = r[b] + r[c]; r[a] = t; r[d] = t + r[e]. */
    IAddAdd,
    /** Fused address+shared load: t = r[b] + r[c]; r[a] = t;
     *  r[d] = shared[t]. */
    IAddLdSh,
    /** Fused address+shared store: t = r[b] + r[c]; r[a] = t;
     *  shared[t] = r[d]. */
    IAddStSh,
    /** Fused index+shared load (t1 = r[b] * r[c]; r[a] = t1;
     *  t2 = t1 + r[e]; r[d] = t2; r[aux] = shared[t2]) — the
     *  row*pitch+col staging idiom of the stencil/LU kernels. */
    MulAddLdSh,
    /** As MulAddLdSh but storing: shared[t2] = r[aux]. */
    MulAddStSh,
    /** Fused float pairs: t = r[b] <op1> r[c]; r[a] = t;
     *  r[d] = aux&1 ? t <op2> r[e] : r[e] <op2> t.  Operand order is
     *  preserved exactly (FP NaN payloads are not swap-safe). */
    FMulFAdd,
    FMulFSub,
    /** Fused shared-load + float op: v = shared[r[b]]; r[a] = v;
     *  r[d] = aux&1 ? v <op> r[e] : r[e] <op> v. */
    LdShFMul,
    LdShFSub,
    LdShFDiv,
    /** Fused float op + shared store: t = r[b] <op> r[c]; r[a] = t;
     *  shared[r[d]] = t. */
    FSubStSh,
    FDivStSh,
    /** Fused divide+remainder on identical operands (one host
     *  division): r[a] = r[b] / r[c]; r[d] = r[b] % r[c]. */
    IDivRem,

    /** Templated superop: aux indexes MicroKernel::supers, whose
     *  SuperKind selects a hand-written template for a whole
     *  straight-line run of micro-ops (see SuperOp).  All executor
     *  tiers dispatch the same record, so superop formation can never
     *  change results; its cost is the sum of the fused ops' costs. */
    Super,
    /** A counted loop [CmpBrILt head; Super body; Jmp back] fused
     *  into one record (aux indexes supers, whose loop extension
     *  holds the head/exit wiring).  Every executor runs the whole
     *  loop to completion per lane — trip counts may differ per lane
     *  without ever surfacing as divergence, since all lanes
     *  reconverge at the exit pc.  Terminator (ends with a transfer
     *  to the exit pc). */
    SuperLoop,

    Barrier,
    Ret,
    Count
};

/** Binary-operation kinds shared by CmpBr and ConstAlu (see evalBin). */
enum class BinKind : uint8_t
{
    IAdd, ISub, IMul, IMin, IMax, IAnd, IOr, IXor, IShl, IShrU, IShrS,
    FAdd, FSub, FMul, FDiv, FMin, FMax,
    IEq, INe, ILt, ILe, IGt, IGe, ULt, UGe,
    FEq, FNe, FLt, FLe, FGt, FGe,
    Count
};

/**
 * Superop templates: the suite's dominant straight-line runs, each
 * specialized into one hand-written loop body per executor.  The
 * recognizer (lowerKernel pass 3.5) only forms one when the run's
 * scratch registers are referenced nowhere else in the kernel, so the
 * templates can keep intermediates in host registers instead of
 * round-tripping every value through the lane register file.
 */
enum class SuperKind : uint16_t
{
    /**
     * Squared-distance reduction step (kmeans_assign's inner loop):
     *   IMulAdd; LdBuf; IAddLd; FSub; FMulFAdd; IAdd
     *   a1 = r[0]*r[1] + r[2];   x = buf[buf0][a1]   (site[0])
     *   a2 = r[3] + r[4];        y = buf[buf1][a2]   (site[1])
     *   d = x - y;  t = d*d;
     *   r[5] = aux&1 ? t + r[5] : r[5] + t;
     *   r[6] = r[7] + r[8];
     */
    SqDistStep,
    /**
     * Shared-memory dot-product step (lud_internal's inner loop):
     *   MulAddLdSh; IMulAdd; IAddLdSh; FFma; Mov; IAdd
     *   v1 = shared[r[0]*r[1] + r[2]];
     *   v2 = shared[r[6] + (r[3]*r[4] + r[5])];
     *   r[8] = fma(v1, v2, r[7]);
     *   r[9] = r[10] + r[11];
     */
    ShDotStep,
    Count
};

/**
 * One recognized superop instance: the template id plus the distilled
 * register/buffer/site operands (layout per SuperKind above).  The
 * fused run's summed issue cost rides along so pass 4's costFrom
 * suffix-sums — and therefore laneCycles — are unchanged.
 */
struct SuperOp
{
    SuperKind kind = SuperKind::Count;
    /** FMulFAdd-style operand-order bit(s), template-specific. */
    uint16_t aux = 0;
    uint32_t r[12] = {};
    uint16_t buf[2] = {};
    uint16_t site[2] = {};
    /** Summed issue cost of the fused micro-ops. */
    uint32_t cost = 0;

    /**
     * Counted-loop extension (MOp::SuperLoop): when loop != 0 the
     * record also owns the enclosing `while (int r[loopB] < int
     * r[loopC])` triad.  The executor runs the body to completion per
     * lane, then writes the head's flag register (r[loopFlag] =
     * loopAux, the exact value the final, failing test produces) and
     * transfers to exitPc.  Per iteration it charges headCost +
     * bodyCost lane-cycles — the costFrom charges the unfused stream
     * pays per trip around the back edge — so laneCycles stay
     * bit-identical for any per-lane trip count.
     */
    uint8_t loop = 0;
    uint16_t loopAux = 0;
    uint32_t loopFlag = 0;
    uint32_t loopB = 0;
    uint32_t loopC = 0;
    uint32_t exitPc = 0;
    uint32_t headCost = 0;
    uint32_t bodyCost = 0;
};

/** Symbolic name of a superop template ("SqDistStep", ...). */
const char *superKindName(SuperKind kind);

/** One packed micro-op.  Field meaning depends on `op` (see MOp). */
struct MicroOp
{
    MOp op = MOp::Ret;
    /** CmpBr*: branch sense (0/1); ConstAlu: BinKind;
     *  IAddLd/IAddSt: buffer binding;
     *  MulAddLdSh/MulAddStSh: load dst / store src register;
     *  LdBuiltin: spirv::Builtin code. */
    uint16_t aux = 0;
    uint32_t a = 0;
    uint32_t b = 0;
    uint32_t c = 0;
    uint32_t d = 0;
    uint32_t e = 0;
};

/** The executable form of a kernel, produced by lowerKernel(). */
struct MicroKernel
{
    std::vector<MicroOp> ops;
    /**
     * Dispatch-uniform entry ops hoisted out of the per-lane stream:
     * pure ops from the kernel's entry run whose inputs are dispatch
     * constants (immediates, push words, size builtins) and whose
     * destination registers are written exactly once.  The interpreter
     * evaluates them once per dispatch (prepare()) and scatters the
     * resulting register values into every lane, instead of executing
     * them per lane per workgroup.  Their issue cost is folded into
     * costFrom at the entry pc, so laneCycles are unchanged.
     */
    std::vector<MicroOp> templateOps;
    /** Registers templateOps write, in write order (scatter list). */
    std::vector<uint32_t> templateDsts;
    /**
     * costFrom[pc]: ALU issue cost (lane-cycles) of executing from pc
     * through the terminator of its straight-line run.  The executor
     * adds this once per control transfer; the sum over a lane's
     * execution equals the per-instruction sum of the original stream
     * exactly (fused ops carry the summed cost of their parts).
     */
    std::vector<uint32_t> costFrom;
    /** Summed issue cost of templateOps, folded into costFrom at the
     *  entry pc so hoisting never changes laneCycles. */
    uint32_t hoistedCost = 0;
    /** Definite assignment proven: every register is written before it
     *  is read on all paths, so the per-workgroup register zero-fill
     *  is unobservable and may be skipped. */
    bool skipRegZeroInit = false;
    /** Kernel contains at least one Barrier: barrier-free kernels take
     *  a leaner workgroup loop (no per-lane pc/state bookkeeping). */
    bool hasBarrier = false;
    /** Any control transfer (Jmp/BrTrue/BrFalse/CmpBr*): kernels
     *  without one are straight-line and eligible for the trace tier. */
    bool hasBranches = false;
    /** Any atomic op (lane order observable: block tiers must bail). */
    bool hasAtomics = false;
    /** Number of instruction pairs fused (diagnostics/tests). */
    uint32_t fusedPairs = 0;
    /** Recognized superop records, indexed by MOp::Super's aux. */
    std::vector<SuperOp> supers;
};

/** Lowering knobs; defaults match compileKernel.  Tests disable fusion
 *  to assert fused/unfused equivalence. */
struct LowerOptions
{
    bool fuseCmpBranch = true;
    bool fuseConstAlu = true;
    /** Adds feeding memory addresses (IAddLd/IAddSt/IAddLdSh/IAddStSh;
     *  with fuseMulAdd also the MulAdd{Ld,St}Sh triples). */
    bool fuseAddrMem = true;
    /** Integer ALU pairs (IMulAdd/IAddAdd, the indexing idiom). */
    bool fuseMulAdd = true;
    /** Straight-line runs into templated superops (MOp::Super); also
     *  gated at run time by VCB_SUPEROPS / setSuperopsEnabled(). */
    bool fuseSuperops = true;

    static LowerOptions noFusion()
    {
        return {false, false, false, false, false};
    }
};

/** Populate k.micro from k.insns/k.siteOfInsn.  The module must have
 *  passed validation (compileKernel guarantees this). */
void lowerKernel(CompiledKernel &k, const LowerOptions &opt = {});

/** ALU issue cost per original opcode, in lane-cycles (the timing
 *  model's per-instruction cost table; baked into MicroKernel). */
uint8_t opCost(spirv::Op op);

/** Symbolic name of a micro-op ("IAddLd", "CmpBrULt", ...). */
const char *mopName(MOp op);

/** Tier policy from lowering metadata: Trace for straight-line
 *  branch/atomic-free kernels, Block otherwise.  The engine upgrades
 *  to Instrumented when a sampler or robust access demands it, and
 *  VCB_EXECUTOR overrides the result for debugging. */
ExecTier chooseExecTier(const MicroKernel &mk);

/** The tier a non-instrumented dispatch of this kernel actually runs:
 *  chooseExecTier unless VCB_EXECUTOR / setExecutorOverride forces one
 *  (a forced Trace degrades to Block when the body is not
 *  straight-line). */
ExecTier effectiveExecTier(const MicroKernel &mk);

/** Run-time gate for superop formation (cached VCB_SUPEROPS; any
 *  value but "0" enables).  Checked by lowerKernel on top of
 *  LowerOptions::fuseSuperops. */
bool superopsEnabled();

/** Force superop formation on (1) / off (0), or re-read the
 *  environment (-1).  Test hook, like setExecutorOverride(). */
void setSuperopsEnabled(int enabled);

/** One rendered micro-op with symbolic operands ("r3 = r1 + r2"). */
std::string renderMicroOp(const MicroKernel &mk, uint32_t pc);

/** Full listing of a lowered kernel: hoisted template ops, then the
 *  per-lane stream with pc, rendered operands and costFrom.  Used by
 *  vcb_disasm and the disasm round-trip tests. */
std::string disassembleMicro(const MicroKernel &mk);

// --- shared executor helpers ----------------------------------------------

inline float
bitsToF(uint32_t v)
{
    return std::bit_cast<float>(v);
}

inline uint32_t
fToBits(float v)
{
    return std::bit_cast<uint32_t>(v);
}

inline int32_t
bitsToS(uint32_t v)
{
    return static_cast<int32_t>(v);
}

/** Evaluate a BinKind over two register words — bit-identical to the
 *  corresponding interpreter cases. */
inline uint32_t
evalBin(BinKind kind, uint32_t x, uint32_t y)
{
    switch (kind) {
      case BinKind::IAdd: return x + y;
      case BinKind::ISub: return x - y;
      case BinKind::IMul: return x * y;
      case BinKind::IMin:
        return static_cast<uint32_t>(std::min(bitsToS(x), bitsToS(y)));
      case BinKind::IMax:
        return static_cast<uint32_t>(std::max(bitsToS(x), bitsToS(y)));
      case BinKind::IAnd: return x & y;
      case BinKind::IOr:  return x | y;
      case BinKind::IXor: return x ^ y;
      case BinKind::IShl: return x << (y & 31);
      case BinKind::IShrU: return x >> (y & 31);
      case BinKind::IShrS:
        return static_cast<uint32_t>(bitsToS(x) >> (y & 31));
      case BinKind::FAdd: return fToBits(bitsToF(x) + bitsToF(y));
      case BinKind::FSub: return fToBits(bitsToF(x) - bitsToF(y));
      case BinKind::FMul: return fToBits(bitsToF(x) * bitsToF(y));
      case BinKind::FDiv: return fToBits(bitsToF(x) / bitsToF(y));
      case BinKind::FMin:
        return fToBits(std::fmin(bitsToF(x), bitsToF(y)));
      case BinKind::FMax:
        return fToBits(std::fmax(bitsToF(x), bitsToF(y)));
      case BinKind::IEq: return x == y;
      case BinKind::INe: return x != y;
      case BinKind::ILt: return bitsToS(x) < bitsToS(y);
      case BinKind::ILe: return bitsToS(x) <= bitsToS(y);
      case BinKind::IGt: return bitsToS(x) > bitsToS(y);
      case BinKind::IGe: return bitsToS(x) >= bitsToS(y);
      case BinKind::ULt: return x < y;
      case BinKind::UGe: return x >= y;
      case BinKind::FEq: return bitsToF(x) == bitsToF(y);
      case BinKind::FNe: return bitsToF(x) != bitsToF(y);
      case BinKind::FLt: return bitsToF(x) < bitsToF(y);
      case BinKind::FLe: return bitsToF(x) <= bitsToF(y);
      case BinKind::FGt: return bitsToF(x) > bitsToF(y);
      case BinKind::FGe: return bitsToF(x) >= bitsToF(y);
      case BinKind::Count: break;
    }
    return 0;
}

} // namespace vcb::sim

#endif // VCB_SIM_MICROOP_H

#include "sim/microop.h"

#include "common/logging.h"
#include "sim/kernel.h"

namespace vcb::sim {

using spirv::Insn;
using spirv::Op;
using spirv::OperandKind;

uint8_t
opCost(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::Ret:
        return 0;
      case Op::IMul:
        return 2;
      case Op::IDiv:
      case Op::IRem:
        return 12;
      case Op::FDiv:
      case Op::FSqrt:
        return 8;
      case Op::FExp:
      case Op::FLog:
      case Op::FSin:
      case Op::FCos:
        return 16;
      case Op::FPow:
        return 24;
      case Op::LdBuf:
      case Op::StBuf:
        return 2;
      case Op::AtomIAdd:
      case Op::AtomIMin:
      case Op::AtomIMax:
      case Op::AtomIOr:
        return 4;
      case Op::Barrier:
        return 2;
      default:
        return 1;
    }
}

namespace {

/** Map a source op to the fused-executor BinKind.  Covers exactly the
 *  (DstReg, SrcReg, SrcReg) binary ops whose evaluation evalBin()
 *  reproduces bit-identically; trapping ops (IDiv/IRem) and ternary
 *  ops stay unfused. */
bool
binKindOf(Op op, BinKind *out)
{
    switch (op) {
      case Op::IAdd: *out = BinKind::IAdd; return true;
      case Op::ISub: *out = BinKind::ISub; return true;
      case Op::IMul: *out = BinKind::IMul; return true;
      case Op::IMin: *out = BinKind::IMin; return true;
      case Op::IMax: *out = BinKind::IMax; return true;
      case Op::IAnd: *out = BinKind::IAnd; return true;
      case Op::IOr:  *out = BinKind::IOr;  return true;
      case Op::IXor: *out = BinKind::IXor; return true;
      case Op::IShl: *out = BinKind::IShl; return true;
      case Op::IShrU: *out = BinKind::IShrU; return true;
      case Op::IShrS: *out = BinKind::IShrS; return true;
      case Op::FAdd: *out = BinKind::FAdd; return true;
      case Op::FSub: *out = BinKind::FSub; return true;
      case Op::FMul: *out = BinKind::FMul; return true;
      case Op::FDiv: *out = BinKind::FDiv; return true;
      case Op::FMin: *out = BinKind::FMin; return true;
      case Op::FMax: *out = BinKind::FMax; return true;
      case Op::IEq: *out = BinKind::IEq; return true;
      case Op::INe: *out = BinKind::INe; return true;
      case Op::ILt: *out = BinKind::ILt; return true;
      case Op::ILe: *out = BinKind::ILe; return true;
      case Op::IGt: *out = BinKind::IGt; return true;
      case Op::IGe: *out = BinKind::IGe; return true;
      case Op::ULt: *out = BinKind::ULt; return true;
      case Op::UGe: *out = BinKind::UGe; return true;
      case Op::FEq: *out = BinKind::FEq; return true;
      case Op::FNe: *out = BinKind::FNe; return true;
      case Op::FLt: *out = BinKind::FLt; return true;
      case Op::FLe: *out = BinKind::FLe; return true;
      case Op::FGt: *out = BinKind::FGt; return true;
      case Op::FGe: *out = BinKind::FGe; return true;
      default:
        return false;
    }
}

bool
isCompare(Op op, BinKind *out)
{
    return op >= Op::IEq && op <= Op::FGe && binKindOf(op, out);
}

bool
isCmpBr(MOp op)
{
    return op >= MOp::CmpBrIEq && op <= MOp::CmpBrFGe;
}

bool
isTerminator(MOp op)
{
    switch (op) {
      case MOp::Jmp:
      case MOp::BrTrue:
      case MOp::BrFalse:
      case MOp::Barrier:
      case MOp::Ret:
        return true;
      default:
        return isCmpBr(op);
    }
}

/**
 * Forward must-analysis: at every reachable instruction, is each read
 * register definitely assigned on all paths from entry?  Meet is set
 * intersection; unvisited blocks start at top (all registers).  The
 * validator's guarantees (labels in range, terminal Ret/Br) make all
 * successor indices valid.  Barriers are plain fall-throughs here:
 * registers persist across barrier phases within a workgroup.
 */
bool
provesWriteBeforeRead(const CompiledKernel &k)
{
    const std::vector<Insn> &insns = k.insns;
    const size_t n = insns.size();
    const uint32_t reg_count = k.module.regCount;
    if (n == 0)
        return false;
    const size_t words = (reg_count + 63) / 64;

    std::vector<uint64_t> in(n * words, ~0ull);
    std::vector<uint8_t> reached(n, 0);
    std::fill(in.begin(), in.begin() + words, 0ull);
    reached[0] = 1;

    std::vector<uint32_t> work = {0};
    std::vector<uint64_t> out(words);
    while (!work.empty()) {
        uint32_t pc = work.back();
        work.pop_back();
        const uint64_t *in_pc = in.data() + size_t(pc) * words;
        std::copy(in_pc, in_pc + words, out.begin());

        const Insn &ins = insns[pc];
        const spirv::OpInfo &info = spirv::opInfo(ins.op);
        const uint32_t operands[4] = {ins.a, ins.b, ins.c, ins.d};
        for (uint32_t s = 0; s < info.numOperands; ++s) {
            uint32_t r = operands[s];
            if (info.kinds[s] == OperandKind::SrcReg &&
                !(out[r / 64] >> (r % 64) & 1))
                return false; // read may observe the zero-fill
        }
        for (uint32_t s = 0; s < info.numOperands; ++s) {
            uint32_t r = operands[s];
            if (info.kinds[s] == OperandKind::DstReg)
                out[r / 64] |= 1ull << (r % 64);
        }

        uint32_t succ[2];
        int ns = 0;
        switch (ins.op) {
          case Op::Br:
            succ[ns++] = ins.a;
            break;
          case Op::BrTrue:
          case Op::BrFalse:
            succ[ns++] = ins.b;
            succ[ns++] = pc + 1;
            break;
          case Op::Ret:
            break;
          default:
            succ[ns++] = pc + 1;
            break;
        }
        for (int i = 0; i < ns; ++i) {
            uint32_t s = succ[i];
            VCB_ASSERT(s < n, "kernel '%s': successor %u out of range",
                       k.module.name.c_str(), s);
            uint64_t *in_s = in.data() + size_t(s) * words;
            bool changed = false;
            if (!reached[s]) {
                reached[s] = 1;
                std::copy(out.begin(), out.end(), in_s);
                changed = true;
            } else {
                for (size_t w = 0; w < words; ++w) {
                    uint64_t nv = in_s[w] & out[w];
                    if (nv != in_s[w]) {
                        in_s[w] = nv;
                        changed = true;
                    }
                }
            }
            if (changed)
                work.push_back(s);
        }
    }
    return true;
}

/** Apply fn to every register a micro-op writes. */
template <typename Fn>
void
forEachDst(const MicroOp &op, Fn fn)
{
    switch (op.op) {
      case MOp::StBuf:
      case MOp::StShared:
      case MOp::Jmp:
      case MOp::BrTrue:
      case MOp::BrFalse:
      case MOp::Barrier:
      case MOp::Ret:
        break;
      case MOp::ConstAlu:
        fn(op.a);
        fn(op.c);
        break;
      case MOp::IMulAdd:
      case MOp::IAddAdd:
      case MOp::IAddLd:
      case MOp::IAddLdSh:
      case MOp::MulAddStSh:
      case MOp::FMulFAdd:
      case MOp::FMulFSub:
      case MOp::LdShFMul:
      case MOp::LdShFSub:
      case MOp::LdShFDiv:
      case MOp::IDivRem:
        fn(op.a);
        fn(op.d);
        break;
      case MOp::MulAddLdSh:
        fn(op.a);
        fn(op.d);
        fn(op.aux);
        break;
      default:
        // Everything else (ALU, compares, loads, atomics, CmpBr*,
        // IAddSt/IAddStSh address write) writes exactly op.a.
        fn(op.a);
        break;
    }
}

/** True when the builtin's value is fixed for a whole dispatch. */
bool
isDispatchUniformBuiltin(uint16_t code)
{
    using spirv::Builtin;
    switch (static_cast<Builtin>(code)) {
      case Builtin::NumGroupsX:
      case Builtin::NumGroupsY:
      case Builtin::NumGroupsZ:
      case Builtin::LocalSizeX:
      case Builtin::LocalSizeY:
      case Builtin::LocalSizeZ:
      case Builtin::GlobalSizeX:
      case Builtin::GlobalSizeY:
      case Builtin::GlobalSizeZ:
        return true;
      default:
        return false;
    }
}

/** Pure micro-ops a register template can evaluate at prepare() time:
 *  no memory, no stats, no control, no traps. */
bool
isTemplatePure(const MicroOp &op)
{
    switch (op.op) {
      case MOp::Const:
      case MOp::Mov:
      case MOp::LdPush:
      case MOp::IAdd: case MOp::ISub: case MOp::IMul:
      case MOp::IMin: case MOp::IMax: case MOp::IAnd: case MOp::IOr:
      case MOp::IXor: case MOp::INot: case MOp::INeg: case MOp::IShl:
      case MOp::IShrU: case MOp::IShrS:
      case MOp::FAdd: case MOp::FSub: case MOp::FMul: case MOp::FDiv:
      case MOp::FMin: case MOp::FMax: case MOp::FAbs: case MOp::FNeg:
      case MOp::FSqrt: case MOp::FExp: case MOp::FLog: case MOp::FFloor:
      case MOp::FSin: case MOp::FCos: case MOp::FFma: case MOp::FPow:
      case MOp::CvtSF: case MOp::CvtFS:
      case MOp::IEq: case MOp::INe: case MOp::ILt: case MOp::ILe:
      case MOp::IGt: case MOp::IGe: case MOp::ULt: case MOp::UGe:
      case MOp::FEq: case MOp::FNe: case MOp::FLt: case MOp::FLe:
      case MOp::FGt: case MOp::FGe:
      case MOp::Select:
      case MOp::ConstAlu:
      case MOp::IMulAdd:
      case MOp::IAddAdd:
        return true;
      case MOp::LdBuiltin:
        return isDispatchUniformBuiltin(op.aux);
      default:
        return false;
    }
}

/**
 * Are all source registers of a template-pure op already uniform?
 * Fused ops may read a register they themselves wrote earlier in
 * their own sequence (e.g. ConstAlu's ALU consuming its constant) —
 * those self-references are uniform by construction.
 */
bool
templateSrcsUniform(const MicroOp &op, const std::vector<uint8_t> &uni)
{
    auto u = [&](uint32_t rr) { return uni[rr] != 0; };
    switch (op.op) {
      case MOp::Const:
      case MOp::LdPush:
      case MOp::LdBuiltin:
        return true;
      case MOp::Mov:
      case MOp::INot:
      case MOp::INeg:
      case MOp::FAbs: case MOp::FNeg: case MOp::FSqrt: case MOp::FExp:
      case MOp::FLog: case MOp::FFloor: case MOp::FSin: case MOp::FCos:
      case MOp::CvtSF: case MOp::CvtFS:
        return u(op.b);
      case MOp::FFma:
      case MOp::Select:
        return u(op.b) && u(op.c) && u(op.d);
      case MOp::ConstAlu:
        // r[a] = imm happens first; the ALU may read it.
        return (u(op.d) || op.d == op.a) && (u(op.e) || op.e == op.a);
      case MOp::IMulAdd:
      case MOp::IAddAdd:
        // b and c are read before a is written; e after.
        return u(op.b) && u(op.c) && (u(op.e) || op.e == op.a);
      default:
        // Binary ALU / compare: sources in b and c.
        return u(op.b) && u(op.c);
    }
}

/**
 * Hoist dispatch-uniform entry ops into mk.templateOps (see the field
 * doc).  Requires write-before-read proven (skipRegZeroInit): then no
 * register is read before its unique write, so evaluating the write
 * early is unobservable.
 */
void
hoistUniformEntry(MicroKernel &mk, std::vector<uint8_t> &cost,
                  uint32_t reg_count)
{
    if (!mk.skipRegZeroInit)
        return;

    // Branch targets in micro space; entering mid-entry-run would
    // re-execute a suffix of it, so the hoist region stops at the
    // first target (re-entry at op 0 re-executes the whole region and
    // stays exact — uniform write-once ops rewrite the same values).
    std::vector<uint8_t> is_target(mk.ops.size(), 0);
    for (const MicroOp &op : mk.ops) {
        switch (op.op) {
          case MOp::Jmp: is_target[op.a] = 1; break;
          case MOp::BrTrue:
          case MOp::BrFalse: is_target[op.b] = 1; break;
          default:
            if (isCmpBr(op.op))
                is_target[op.d] = 1;
            break;
        }
    }

    std::vector<uint8_t> write_count(reg_count, 0);
    for (const MicroOp &op : mk.ops)
        forEachDst(op, [&](uint32_t rr) {
            if (write_count[rr] < 2)
                ++write_count[rr];
        });

    std::vector<uint8_t> uniform(reg_count, 0);
    std::vector<uint8_t> hoist(mk.ops.size(), 0);
    uint32_t hoisted = 0;
    uint32_t hoisted_cost = 0;
    for (size_t i = 0; i < mk.ops.size(); ++i) {
        const MicroOp &op = mk.ops[i];
        if ((i > 0 && is_target[i]) || isTerminator(op.op))
            break;
        if (!isTemplatePure(op))
            continue;
        bool ok = templateSrcsUniform(op, uniform);
        forEachDst(op, [&](uint32_t rr) {
            ok = ok && write_count[rr] == 1;
        });
        if (!ok)
            continue;
        forEachDst(op, [&](uint32_t rr) {
            uniform[rr] = 1;
            mk.templateDsts.push_back(rr);
        });
        hoist[i] = 1;
        ++hoisted;
        hoisted_cost += cost[i];
        mk.templateOps.push_back(op);
    }
    if (hoisted == 0)
        return;

    // Compact the stream and remap branch targets.  All removed ops
    // precede every branch target (the region stops at the first one),
    // so every target shifts down by the full removed count.
    std::vector<MicroOp> new_ops;
    std::vector<uint8_t> new_cost;
    new_ops.reserve(mk.ops.size() - hoisted);
    new_cost.reserve(mk.ops.size() - hoisted);
    for (size_t i = 0; i < mk.ops.size(); ++i) {
        if (hoist[i])
            continue;
        new_ops.push_back(mk.ops[i]);
        new_cost.push_back(cost[i]);
    }
    // Targets are either 0 (loop back to entry: re-executes the whole
    // region, which hoisted write-once ops make value- and
    // cost-neutral) or past the hoist region.
    auto remap = [&](uint32_t t) { return t == 0 ? 0 : t - hoisted; };
    for (MicroOp &op : new_ops) {
        switch (op.op) {
          case MOp::Jmp: op.a = remap(op.a); break;
          case MOp::BrTrue:
          case MOp::BrFalse: op.b = remap(op.b); break;
          default:
            if (isCmpBr(op.op))
                op.d = remap(op.d);
            break;
        }
    }
    mk.ops = std::move(new_ops);
    cost = std::move(new_cost);
    mk.hoistedCost = hoisted_cost;
}

} // namespace

void
lowerKernel(CompiledKernel &k, const LowerOptions &opt)
{
    MicroKernel &mk = k.micro;
    mk.ops.clear();
    mk.costFrom.clear();
    mk.templateOps.clear();
    mk.templateDsts.clear();
    mk.hoistedCost = 0;
    mk.fusedPairs = 0;
    mk.hasBarrier = false;

    const std::vector<Insn> &insns = k.insns;
    const size_t n = insns.size();
    VCB_ASSERT(n > 0, "kernel '%s': empty instruction stream",
               k.module.name.c_str());

    // Instructions control flow can land on: fusion must not swallow
    // them as the second half of a pair.
    std::vector<uint8_t> is_target(n, 0);
    for (const Insn &in : insns) {
        switch (in.op) {
          case Op::Br: is_target[in.a] = 1; break;
          case Op::BrTrue:
          case Op::BrFalse: is_target[in.b] = 1; break;
          default: break;
        }
    }

    // Pass 1: emit micro-ops; branch fields keep *source* instruction
    // targets until pass 2 remaps them through micro_of.
    std::vector<uint32_t> micro_of(n, 0);
    std::vector<uint8_t> cost; // per micro-op issue cost
    cost.reserve(n);
    mk.ops.reserve(n);

    auto emit = [&](MicroOp op, uint8_t op_cost) {
        mk.ops.push_back(op);
        cost.push_back(op_cost);
    };

    size_t i = 0;
    while (i < n) {
        micro_of[i] = static_cast<uint32_t>(mk.ops.size());
        const Insn &in = insns[i];

        if (i + 1 < n && !is_target[i + 1]) {
            const Insn &nx = insns[i + 1];
            const uint8_t pair_cost =
                static_cast<uint8_t>(opCost(in.op) + opCost(nx.op));
            auto fused = [&](MicroOp op) {
                emit(op, pair_cost);
                micro_of[i + 1] =
                    static_cast<uint32_t>(mk.ops.size()) - 1;
                ++mk.fusedPairs;
                i += 2;
            };
            BinKind kind;
            if (opt.fuseCmpBranch && isCompare(in.op, &kind) &&
                (nx.op == Op::BrTrue || nx.op == Op::BrFalse) &&
                nx.a == in.a) {
                static_assert(
                    static_cast<int>(MOp::CmpBrFGe) -
                            static_cast<int>(MOp::CmpBrIEq) ==
                        static_cast<int>(BinKind::FGe) -
                            static_cast<int>(BinKind::IEq),
                    "CmpBr block out of sync with BinKind comparisons");
                const MOp cmp_br = static_cast<MOp>(
                    static_cast<int>(MOp::CmpBrIEq) +
                    (static_cast<int>(kind) -
                     static_cast<int>(BinKind::IEq)));
                uint16_t sense = nx.op == Op::BrTrue ? 1 : 0;
                fused({cmp_br, sense, in.a, in.b, in.c, nx.b, 0});
                continue;
            }
            if (in.op == Op::IAdd) {
                // IAdd feeding the next op's memory address — the
                // array-indexing idiom.  The address register is still
                // written (it may be read downstream).
                const uint32_t nx_site =
                    k.siteOfInsn[i + 1] ? k.siteOfInsn[i + 1] - 1 : 0;
                if (opt.fuseAddrMem && nx.op == Op::LdBuf &&
                    nx.c == in.a) {
                    fused({MOp::IAddLd, static_cast<uint16_t>(nx.b),
                           in.a, in.b, in.c, nx.a, nx_site});
                    continue;
                }
                if (opt.fuseAddrMem && nx.op == Op::StBuf &&
                    nx.b == in.a) {
                    fused({MOp::IAddSt, static_cast<uint16_t>(nx.a),
                           in.a, in.b, in.c, nx.c, nx_site});
                    continue;
                }
                if (opt.fuseAddrMem && nx.op == Op::LdShared &&
                    nx.b == in.a) {
                    fused({MOp::IAddLdSh, 0, in.a, in.b, in.c, nx.a, 0});
                    continue;
                }
                if (opt.fuseAddrMem && nx.op == Op::StShared &&
                    nx.a == in.a) {
                    fused({MOp::IAddStSh, 0, in.a, in.b, in.c, nx.b, 0});
                    continue;
                }
                if (opt.fuseMulAdd && nx.op == Op::IAdd &&
                    (nx.b == in.a || nx.c == in.a)) {
                    const uint32_t other = nx.b == in.a ? nx.c : nx.b;
                    fused({MOp::IAddAdd, 0, in.a, in.b, in.c, nx.a,
                           other});
                    continue;
                }
            }
            if (opt.fuseMulAdd && in.op == Op::IMul &&
                nx.op == Op::IAdd && (nx.b == in.a || nx.c == in.a)) {
                // t = b*c feeding an add: addition commutes, so the
                // other operand's position doesn't matter.
                const uint32_t other = nx.b == in.a ? nx.c : nx.b;
                // Triple: the add's result feeding a shared-memory
                // access (the row*pitch+col staging idiom).  Three
                // source ops collapse into one micro-op.
                if (opt.fuseAddrMem && i + 2 < n && !is_target[i + 2]) {
                    const Insn &n2 = insns[i + 2];
                    const uint8_t triple_cost = static_cast<uint8_t>(
                        opCost(in.op) + opCost(nx.op) + opCost(n2.op));
                    if (n2.op == Op::LdShared && n2.b == nx.a) {
                        emit({MOp::MulAddLdSh,
                              static_cast<uint16_t>(n2.a), in.a, in.b,
                              in.c, nx.a, other},
                             triple_cost);
                        micro_of[i + 1] = micro_of[i + 2] =
                            static_cast<uint32_t>(mk.ops.size()) - 1;
                        mk.fusedPairs += 2;
                        i += 3;
                        continue;
                    }
                    if (n2.op == Op::StShared && n2.a == nx.a) {
                        emit({MOp::MulAddStSh,
                              static_cast<uint16_t>(n2.b), in.a, in.b,
                              in.c, nx.a, other},
                             triple_cost);
                        micro_of[i + 1] = micro_of[i + 2] =
                            static_cast<uint32_t>(mk.ops.size()) - 1;
                        mk.fusedPairs += 2;
                        i += 3;
                        continue;
                    }
                }
                fused({MOp::IMulAdd, 0, in.a, in.b, in.c, nx.a, other});
                continue;
            }
            if (opt.fuseConstAlu &&
                (in.op == Op::ConstI || in.op == Op::ConstF) &&
                binKindOf(nx.op, &kind) &&
                (nx.b == in.a || nx.c == in.a)) {
                fused({MOp::ConstAlu, static_cast<uint16_t>(kind), in.a,
                       in.b, nx.a, nx.b, nx.c});
                continue;
            }
            // Float producer/consumer pairs (operand order preserved:
            // aux bit 0 says the produced value is the left operand).
            if (opt.fuseMulAdd && in.op == Op::FMul &&
                (nx.op == Op::FAdd || nx.op == Op::FSub) &&
                (nx.b == in.a || nx.c == in.a)) {
                const uint16_t left = nx.b == in.a ? 1 : 0;
                const uint32_t other = left ? nx.c : nx.b;
                fused({nx.op == Op::FAdd ? MOp::FMulFAdd : MOp::FMulFSub,
                       left, in.a, in.b, in.c, nx.a, other});
                continue;
            }
            if (opt.fuseAddrMem && in.op == Op::LdShared &&
                (nx.op == Op::FMul || nx.op == Op::FSub ||
                 nx.op == Op::FDiv) &&
                (nx.b == in.a || nx.c == in.a)) {
                const uint16_t left = nx.b == in.a ? 1 : 0;
                const uint32_t other = left ? nx.c : nx.b;
                const MOp mop = nx.op == Op::FMul   ? MOp::LdShFMul
                                : nx.op == Op::FSub ? MOp::LdShFSub
                                                    : MOp::LdShFDiv;
                fused({mop, left, in.a, in.b, 0, nx.a, other});
                continue;
            }
            if (opt.fuseAddrMem &&
                (in.op == Op::FSub || in.op == Op::FDiv) &&
                nx.op == Op::StShared && nx.b == in.a) {
                fused({in.op == Op::FSub ? MOp::FSubStSh : MOp::FDivStSh,
                       0, in.a, in.b, in.c, nx.a, 0});
                continue;
            }
            if (opt.fuseMulAdd && in.op == Op::IDiv &&
                nx.op == Op::IRem && nx.b == in.b && nx.c == in.c &&
                in.a != in.b && in.a != in.c) {
                // Same operands and the quotient doesn't clobber them:
                // one host division yields both results.
                fused({MOp::IDivRem, 0, in.a, in.b, in.c, nx.a, 0});
                continue;
            }
        }

        const uint8_t c = opCost(in.op);
        const uint32_t site =
            k.siteOfInsn[i] ? k.siteOfInsn[i] - 1 : 0;
        switch (in.op) {
          case Op::Nop:
            break; // dropped; micro_of already points at the next op
          case Op::ConstI:
          case Op::ConstF:
            emit({MOp::Const, 0, in.a, in.b, 0, 0, 0}, c);
            break;
          case Op::Mov:
            emit({MOp::Mov, 0, in.a, in.b, 0, 0, 0}, c);
            break;
          case Op::LdBuiltin:
            emit({MOp::LdBuiltin, static_cast<uint16_t>(in.b), in.a, 0,
                  0, 0, 0}, c);
            break;
          case Op::LdPush:
            VCB_ASSERT(in.b < k.module.pushWords,
                       "kernel '%s': push word %u outside block (%u)",
                       k.module.name.c_str(), in.b, k.module.pushWords);
            emit({MOp::LdPush, 0, in.a, in.b, 0, 0, 0}, c);
            break;

#define VCB_LOWER_SAME(name)                                              \
          case Op::name:                                                  \
            emit({MOp::name, 0, in.a, in.b, in.c, in.d, 0}, c);           \
            break
          VCB_LOWER_SAME(IAdd); VCB_LOWER_SAME(ISub);
          VCB_LOWER_SAME(IMul); VCB_LOWER_SAME(IDiv);
          VCB_LOWER_SAME(IRem); VCB_LOWER_SAME(IMin);
          VCB_LOWER_SAME(IMax); VCB_LOWER_SAME(IAnd);
          VCB_LOWER_SAME(IOr);  VCB_LOWER_SAME(IXor);
          VCB_LOWER_SAME(INot); VCB_LOWER_SAME(INeg);
          VCB_LOWER_SAME(IShl); VCB_LOWER_SAME(IShrU);
          VCB_LOWER_SAME(IShrS);
          VCB_LOWER_SAME(FAdd); VCB_LOWER_SAME(FSub);
          VCB_LOWER_SAME(FMul); VCB_LOWER_SAME(FDiv);
          VCB_LOWER_SAME(FMin); VCB_LOWER_SAME(FMax);
          VCB_LOWER_SAME(FAbs); VCB_LOWER_SAME(FNeg);
          VCB_LOWER_SAME(FSqrt); VCB_LOWER_SAME(FExp);
          VCB_LOWER_SAME(FLog); VCB_LOWER_SAME(FFloor);
          VCB_LOWER_SAME(FSin); VCB_LOWER_SAME(FCos);
          VCB_LOWER_SAME(FFma); VCB_LOWER_SAME(FPow);
          VCB_LOWER_SAME(CvtSF); VCB_LOWER_SAME(CvtFS);
          VCB_LOWER_SAME(IEq); VCB_LOWER_SAME(INe);
          VCB_LOWER_SAME(ILt); VCB_LOWER_SAME(ILe);
          VCB_LOWER_SAME(IGt); VCB_LOWER_SAME(IGe);
          VCB_LOWER_SAME(ULt); VCB_LOWER_SAME(UGe);
          VCB_LOWER_SAME(FEq); VCB_LOWER_SAME(FNe);
          VCB_LOWER_SAME(FLt); VCB_LOWER_SAME(FLe);
          VCB_LOWER_SAME(FGt); VCB_LOWER_SAME(FGe);
          VCB_LOWER_SAME(Select);
          VCB_LOWER_SAME(LdShared); VCB_LOWER_SAME(StShared);
#undef VCB_LOWER_SAME

          case Op::LdBuf:
            emit({MOp::LdBuf, 0, in.a, in.b, in.c, site, 0}, c);
            break;
          case Op::StBuf:
            emit({MOp::StBuf, 0, in.a, in.b, in.c, site, 0}, c);
            break;
          case Op::AtomIAdd:
            emit({MOp::AtomIAdd, 0, in.a, in.b, in.c, in.d, site}, c);
            break;
          case Op::AtomIOr:
            emit({MOp::AtomIOr, 0, in.a, in.b, in.c, in.d, site}, c);
            break;
          case Op::AtomIMin:
            emit({MOp::AtomIMin, 0, in.a, in.b, in.c, in.d, site}, c);
            break;
          case Op::AtomIMax:
            emit({MOp::AtomIMax, 0, in.a, in.b, in.c, in.d, site}, c);
            break;

          case Op::Br:
            emit({MOp::Jmp, 0, in.a, 0, 0, 0, 0}, c);
            break;
          case Op::BrTrue:
            emit({MOp::BrTrue, 0, in.a, in.b, 0, 0, 0}, c);
            break;
          case Op::BrFalse:
            emit({MOp::BrFalse, 0, in.a, in.b, 0, 0, 0}, c);
            break;
          case Op::Barrier:
            emit({MOp::Barrier, 0, 0, 0, 0, 0, 0}, c);
            mk.hasBarrier = true;
            break;
          case Op::Ret:
            emit({MOp::Ret, 0, 0, 0, 0, 0, 0}, c);
            break;
          case Op::Count:
            panic("kernel '%s' @%zu: invalid opcode",
                  k.module.name.c_str(), i);
        }
        ++i;
    }

    // Pass 2: remap branch targets from source to micro indices.
    for (MicroOp &op : mk.ops) {
        switch (op.op) {
          case MOp::Jmp: op.a = micro_of[op.a]; break;
          case MOp::BrTrue:
          case MOp::BrFalse: op.b = micro_of[op.b]; break;
          default:
            if (isCmpBr(op.op))
                op.d = micro_of[op.d];
            break;
        }
    }

    mk.skipRegZeroInit = provesWriteBeforeRead(k);

    // Pass 3: hoist dispatch-uniform entry ops into the register
    // template (sound only with write-before-read proven).
    hoistUniformEntry(mk, cost, k.module.regCount);

    // Pass 4: suffix-sum costs per straight-line run; the entry run
    // additionally carries the hoisted ops' cost so laneCycles stay
    // bit-identical.
    mk.costFrom.resize(mk.ops.size());
    for (size_t j = mk.ops.size(); j-- > 0;) {
        uint32_t after =
            isTerminator(mk.ops[j].op) ? 0 : mk.costFrom[j + 1];
        mk.costFrom[j] = cost[j] + after;
    }
    mk.costFrom[0] += mk.hoistedCost;
}

} // namespace vcb::sim

#include "sim/microop.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "sim/kernel.h"

namespace vcb::sim {

using spirv::Insn;
using spirv::Op;
using spirv::OperandKind;

uint8_t
opCost(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::Ret:
        return 0;
      case Op::IMul:
        return 2;
      case Op::IDiv:
      case Op::IRem:
        return 12;
      case Op::FDiv:
      case Op::FSqrt:
        return 8;
      case Op::FExp:
      case Op::FLog:
      case Op::FSin:
      case Op::FCos:
        return 16;
      case Op::FPow:
        return 24;
      case Op::LdBuf:
      case Op::StBuf:
        return 2;
      case Op::AtomIAdd:
      case Op::AtomIMin:
      case Op::AtomIMax:
      case Op::AtomIOr:
        return 4;
      case Op::Barrier:
        return 2;
      default:
        return 1;
    }
}

namespace {

/** Map a source op to the fused-executor BinKind.  Covers exactly the
 *  (DstReg, SrcReg, SrcReg) binary ops whose evaluation evalBin()
 *  reproduces bit-identically; trapping ops (IDiv/IRem) and ternary
 *  ops stay unfused. */
bool
binKindOf(Op op, BinKind *out)
{
    switch (op) {
      case Op::IAdd: *out = BinKind::IAdd; return true;
      case Op::ISub: *out = BinKind::ISub; return true;
      case Op::IMul: *out = BinKind::IMul; return true;
      case Op::IMin: *out = BinKind::IMin; return true;
      case Op::IMax: *out = BinKind::IMax; return true;
      case Op::IAnd: *out = BinKind::IAnd; return true;
      case Op::IOr:  *out = BinKind::IOr;  return true;
      case Op::IXor: *out = BinKind::IXor; return true;
      case Op::IShl: *out = BinKind::IShl; return true;
      case Op::IShrU: *out = BinKind::IShrU; return true;
      case Op::IShrS: *out = BinKind::IShrS; return true;
      case Op::FAdd: *out = BinKind::FAdd; return true;
      case Op::FSub: *out = BinKind::FSub; return true;
      case Op::FMul: *out = BinKind::FMul; return true;
      case Op::FDiv: *out = BinKind::FDiv; return true;
      case Op::FMin: *out = BinKind::FMin; return true;
      case Op::FMax: *out = BinKind::FMax; return true;
      case Op::IEq: *out = BinKind::IEq; return true;
      case Op::INe: *out = BinKind::INe; return true;
      case Op::ILt: *out = BinKind::ILt; return true;
      case Op::ILe: *out = BinKind::ILe; return true;
      case Op::IGt: *out = BinKind::IGt; return true;
      case Op::IGe: *out = BinKind::IGe; return true;
      case Op::ULt: *out = BinKind::ULt; return true;
      case Op::UGe: *out = BinKind::UGe; return true;
      case Op::FEq: *out = BinKind::FEq; return true;
      case Op::FNe: *out = BinKind::FNe; return true;
      case Op::FLt: *out = BinKind::FLt; return true;
      case Op::FLe: *out = BinKind::FLe; return true;
      case Op::FGt: *out = BinKind::FGt; return true;
      case Op::FGe: *out = BinKind::FGe; return true;
      default:
        return false;
    }
}

bool
isCompare(Op op, BinKind *out)
{
    return op >= Op::IEq && op <= Op::FGe && binKindOf(op, out);
}

bool
isCmpBr(MOp op)
{
    return op >= MOp::CmpBrIEq && op <= MOp::CmpBrFGe;
}

bool
isTerminator(MOp op)
{
    switch (op) {
      case MOp::Jmp:
      case MOp::BrTrue:
      case MOp::BrFalse:
      case MOp::SuperLoop: // ends with a transfer to its exit pc
      case MOp::Barrier:
      case MOp::Ret:
        return true;
      default:
        return isCmpBr(op);
    }
}

/**
 * Forward must-analysis: at every reachable instruction, is each read
 * register definitely assigned on all paths from entry?  Meet is set
 * intersection; unvisited blocks start at top (all registers).  The
 * validator's guarantees (labels in range, terminal Ret/Br) make all
 * successor indices valid.  Barriers are plain fall-throughs here:
 * registers persist across barrier phases within a workgroup.
 */
bool
provesWriteBeforeRead(const CompiledKernel &k)
{
    const std::vector<Insn> &insns = k.insns;
    const size_t n = insns.size();
    const uint32_t reg_count = k.module.regCount;
    if (n == 0)
        return false;
    const size_t words = (reg_count + 63) / 64;

    std::vector<uint64_t> in(n * words, ~0ull);
    std::vector<uint8_t> reached(n, 0);
    std::fill(in.begin(), in.begin() + words, 0ull);
    reached[0] = 1;

    std::vector<uint32_t> work = {0};
    std::vector<uint64_t> out(words);
    while (!work.empty()) {
        uint32_t pc = work.back();
        work.pop_back();
        const uint64_t *in_pc = in.data() + size_t(pc) * words;
        std::copy(in_pc, in_pc + words, out.begin());

        const Insn &ins = insns[pc];
        const spirv::OpInfo &info = spirv::opInfo(ins.op);
        const uint32_t operands[4] = {ins.a, ins.b, ins.c, ins.d};
        for (uint32_t s = 0; s < info.numOperands; ++s) {
            uint32_t r = operands[s];
            if (info.kinds[s] == OperandKind::SrcReg &&
                !(out[r / 64] >> (r % 64) & 1))
                return false; // read may observe the zero-fill
        }
        for (uint32_t s = 0; s < info.numOperands; ++s) {
            uint32_t r = operands[s];
            if (info.kinds[s] == OperandKind::DstReg)
                out[r / 64] |= 1ull << (r % 64);
        }

        uint32_t succ[2];
        int ns = 0;
        switch (ins.op) {
          case Op::Br:
            succ[ns++] = ins.a;
            break;
          case Op::BrTrue:
          case Op::BrFalse:
            succ[ns++] = ins.b;
            succ[ns++] = pc + 1;
            break;
          case Op::Ret:
            break;
          default:
            succ[ns++] = pc + 1;
            break;
        }
        for (int i = 0; i < ns; ++i) {
            uint32_t s = succ[i];
            VCB_ASSERT(s < n, "kernel '%s': successor %u out of range",
                       k.module.name.c_str(), s);
            uint64_t *in_s = in.data() + size_t(s) * words;
            bool changed = false;
            if (!reached[s]) {
                reached[s] = 1;
                std::copy(out.begin(), out.end(), in_s);
                changed = true;
            } else {
                for (size_t w = 0; w < words; ++w) {
                    uint64_t nv = in_s[w] & out[w];
                    if (nv != in_s[w]) {
                        in_s[w] = nv;
                        changed = true;
                    }
                }
            }
            if (changed)
                work.push_back(s);
        }
    }
    return true;
}

/** Apply fn to every register a micro-op writes. */
template <typename Fn>
void
forEachDst(const MicroOp &op, Fn fn)
{
    switch (op.op) {
      case MOp::StBuf:
      case MOp::StShared:
      case MOp::Jmp:
      case MOp::BrTrue:
      case MOp::BrFalse:
      case MOp::Barrier:
      case MOp::Ret:
        break;
      case MOp::ConstAlu:
        fn(op.a);
        fn(op.c);
        break;
      case MOp::IMulAdd:
      case MOp::IAddAdd:
      case MOp::IAddLd:
      case MOp::IAddLdSh:
      case MOp::MulAddStSh:
      case MOp::FMulFAdd:
      case MOp::FMulFSub:
      case MOp::LdShFMul:
      case MOp::LdShFSub:
      case MOp::LdShFDiv:
      case MOp::IDivRem:
        fn(op.a);
        fn(op.d);
        break;
      case MOp::MulAddLdSh:
        fn(op.a);
        fn(op.d);
        fn(op.aux);
        break;
      case MOp::Super:
      case MOp::SuperLoop:
        // Superops are formed after every forEachDst consumer runs;
        // their writes live in the side table, unreachable from here.
        VCB_ASSERT(false, "forEachDst on a superop");
        break;
      default:
        // Everything else (ALU, compares, loads, atomics, CmpBr*,
        // IAddSt/IAddStSh address write) writes exactly op.a.
        fn(op.a);
        break;
    }
}

/** Apply fn to every register a micro-op reads. */
template <typename Fn>
void
forEachSrc(const MicroOp &op, Fn fn)
{
    switch (op.op) {
      case MOp::Const:
      case MOp::LdBuiltin:
      case MOp::LdPush:
      case MOp::Jmp:
      case MOp::Barrier:
      case MOp::Ret:
        break;
      case MOp::Mov:
      case MOp::INot: case MOp::INeg:
      case MOp::FAbs: case MOp::FNeg: case MOp::FSqrt: case MOp::FExp:
      case MOp::FLog: case MOp::FFloor: case MOp::FSin: case MOp::FCos:
      case MOp::CvtSF: case MOp::CvtFS:
      case MOp::LdShared:
        fn(op.b);
        break;
      case MOp::FFma:
      case MOp::Select:
        fn(op.b);
        fn(op.c);
        fn(op.d);
        break;
      case MOp::LdBuf:
        fn(op.c);
        break;
      case MOp::StBuf:
        fn(op.b);
        fn(op.c);
        break;
      case MOp::StShared:
        fn(op.a);
        fn(op.b);
        break;
      case MOp::AtomIAdd: case MOp::AtomIOr:
      case MOp::AtomIMin: case MOp::AtomIMax:
        fn(op.c);
        fn(op.d);
        break;
      case MOp::BrTrue:
      case MOp::BrFalse:
        fn(op.a);
        break;
      case MOp::ConstAlu:
        fn(op.d);
        fn(op.e);
        break;
      case MOp::IAddLd:
      case MOp::IAddLdSh:
      case MOp::IDivRem:
        fn(op.b);
        fn(op.c);
        break;
      case MOp::IAddSt:
      case MOp::IAddStSh:
      case MOp::FSubStSh:
      case MOp::FDivStSh:
        fn(op.b);
        fn(op.c);
        fn(op.d);
        break;
      case MOp::IMulAdd:
      case MOp::IAddAdd:
      case MOp::MulAddLdSh:
      case MOp::FMulFAdd:
      case MOp::FMulFSub:
        fn(op.b);
        fn(op.c);
        fn(op.e);
        break;
      case MOp::MulAddStSh:
        fn(op.b);
        fn(op.c);
        fn(op.e);
        fn(op.aux);
        break;
      case MOp::LdShFMul:
      case MOp::LdShFSub:
      case MOp::LdShFDiv:
        fn(op.b);
        fn(op.e);
        break;
      case MOp::Super:
      case MOp::SuperLoop:
        VCB_ASSERT(false, "forEachSrc on a superop");
        break;
      default:
        // Binary ALU, compares, CmpBr*: sources in b and c.
        fn(op.b);
        fn(op.c);
        break;
    }
}

/** True when the builtin's value is fixed for a whole dispatch. */
bool
isDispatchUniformBuiltin(uint16_t code)
{
    using spirv::Builtin;
    switch (static_cast<Builtin>(code)) {
      case Builtin::NumGroupsX:
      case Builtin::NumGroupsY:
      case Builtin::NumGroupsZ:
      case Builtin::LocalSizeX:
      case Builtin::LocalSizeY:
      case Builtin::LocalSizeZ:
      case Builtin::GlobalSizeX:
      case Builtin::GlobalSizeY:
      case Builtin::GlobalSizeZ:
        return true;
      default:
        return false;
    }
}

/** Pure micro-ops a register template can evaluate at prepare() time:
 *  no memory, no stats, no control, no traps. */
bool
isTemplatePure(const MicroOp &op)
{
    switch (op.op) {
      case MOp::Const:
      case MOp::Mov:
      case MOp::LdPush:
      case MOp::IAdd: case MOp::ISub: case MOp::IMul:
      case MOp::IMin: case MOp::IMax: case MOp::IAnd: case MOp::IOr:
      case MOp::IXor: case MOp::INot: case MOp::INeg: case MOp::IShl:
      case MOp::IShrU: case MOp::IShrS:
      case MOp::FAdd: case MOp::FSub: case MOp::FMul: case MOp::FDiv:
      case MOp::FMin: case MOp::FMax: case MOp::FAbs: case MOp::FNeg:
      case MOp::FSqrt: case MOp::FExp: case MOp::FLog: case MOp::FFloor:
      case MOp::FSin: case MOp::FCos: case MOp::FFma: case MOp::FPow:
      case MOp::CvtSF: case MOp::CvtFS:
      case MOp::IEq: case MOp::INe: case MOp::ILt: case MOp::ILe:
      case MOp::IGt: case MOp::IGe: case MOp::ULt: case MOp::UGe:
      case MOp::FEq: case MOp::FNe: case MOp::FLt: case MOp::FLe:
      case MOp::FGt: case MOp::FGe:
      case MOp::Select:
      case MOp::ConstAlu:
      case MOp::IMulAdd:
      case MOp::IAddAdd:
        return true;
      case MOp::LdBuiltin:
        return isDispatchUniformBuiltin(op.aux);
      default:
        return false;
    }
}

/**
 * Are all source registers of a template-pure op already uniform?
 * Fused ops may read a register they themselves wrote earlier in
 * their own sequence (e.g. ConstAlu's ALU consuming its constant) —
 * those self-references are uniform by construction.
 */
bool
templateSrcsUniform(const MicroOp &op, const std::vector<uint8_t> &uni)
{
    auto u = [&](uint32_t rr) { return uni[rr] != 0; };
    switch (op.op) {
      case MOp::Const:
      case MOp::LdPush:
      case MOp::LdBuiltin:
        return true;
      case MOp::Mov:
      case MOp::INot:
      case MOp::INeg:
      case MOp::FAbs: case MOp::FNeg: case MOp::FSqrt: case MOp::FExp:
      case MOp::FLog: case MOp::FFloor: case MOp::FSin: case MOp::FCos:
      case MOp::CvtSF: case MOp::CvtFS:
        return u(op.b);
      case MOp::FFma:
      case MOp::Select:
        return u(op.b) && u(op.c) && u(op.d);
      case MOp::ConstAlu:
        // r[a] = imm happens first; the ALU may read it.
        return (u(op.d) || op.d == op.a) && (u(op.e) || op.e == op.a);
      case MOp::IMulAdd:
      case MOp::IAddAdd:
        // b and c are read before a is written; e after.
        return u(op.b) && u(op.c) && (u(op.e) || op.e == op.a);
      default:
        // Binary ALU / compare: sources in b and c.
        return u(op.b) && u(op.c);
    }
}

/**
 * Hoist dispatch-uniform entry ops into mk.templateOps (see the field
 * doc).  Requires write-before-read proven (skipRegZeroInit): then no
 * register is read before its unique write, so evaluating the write
 * early is unobservable.
 */
void
hoistUniformEntry(MicroKernel &mk, std::vector<uint8_t> &cost,
                  uint32_t reg_count)
{
    if (!mk.skipRegZeroInit)
        return;

    // Branch targets in micro space; entering mid-entry-run would
    // re-execute a suffix of it, so the hoist region stops at the
    // first target (re-entry at op 0 re-executes the whole region and
    // stays exact — uniform write-once ops rewrite the same values).
    std::vector<uint8_t> is_target(mk.ops.size(), 0);
    for (const MicroOp &op : mk.ops) {
        switch (op.op) {
          case MOp::Jmp: is_target[op.a] = 1; break;
          case MOp::BrTrue:
          case MOp::BrFalse: is_target[op.b] = 1; break;
          default:
            if (isCmpBr(op.op))
                is_target[op.d] = 1;
            break;
        }
    }

    std::vector<uint8_t> write_count(reg_count, 0);
    for (const MicroOp &op : mk.ops)
        forEachDst(op, [&](uint32_t rr) {
            if (write_count[rr] < 2)
                ++write_count[rr];
        });

    std::vector<uint8_t> uniform(reg_count, 0);
    std::vector<uint8_t> hoist(mk.ops.size(), 0);
    uint32_t hoisted = 0;
    uint32_t hoisted_cost = 0;
    for (size_t i = 0; i < mk.ops.size(); ++i) {
        const MicroOp &op = mk.ops[i];
        if ((i > 0 && is_target[i]) || isTerminator(op.op))
            break;
        if (!isTemplatePure(op))
            continue;
        bool ok = templateSrcsUniform(op, uniform);
        forEachDst(op, [&](uint32_t rr) {
            ok = ok && write_count[rr] == 1;
        });
        if (!ok)
            continue;
        forEachDst(op, [&](uint32_t rr) {
            uniform[rr] = 1;
            mk.templateDsts.push_back(rr);
        });
        hoist[i] = 1;
        ++hoisted;
        hoisted_cost += cost[i];
        mk.templateOps.push_back(op);
    }
    if (hoisted == 0)
        return;

    // Compact the stream and remap branch targets.  All removed ops
    // precede every branch target (the region stops at the first one),
    // so every target shifts down by the full removed count.
    std::vector<MicroOp> new_ops;
    std::vector<uint8_t> new_cost;
    new_ops.reserve(mk.ops.size() - hoisted);
    new_cost.reserve(mk.ops.size() - hoisted);
    for (size_t i = 0; i < mk.ops.size(); ++i) {
        if (hoist[i])
            continue;
        new_ops.push_back(mk.ops[i]);
        new_cost.push_back(cost[i]);
    }
    // Targets are either 0 (loop back to entry: re-executes the whole
    // region, which hoisted write-once ops make value- and
    // cost-neutral) or past the hoist region.
    auto remap = [&](uint32_t t) { return t == 0 ? 0 : t - hoisted; };
    for (MicroOp &op : new_ops) {
        switch (op.op) {
          case MOp::Jmp: op.a = remap(op.a); break;
          case MOp::BrTrue:
          case MOp::BrFalse: op.b = remap(op.b); break;
          default:
            if (isCmpBr(op.op))
                op.d = remap(op.d);
            break;
        }
    }
    mk.ops = std::move(new_ops);
    cost = std::move(new_cost);
    mk.hoistedCost = hoisted_cost;
}

// --- superop recognition (pass 3.5) ---------------------------------------

/**
 * May the candidate run [s, e) keep `scratch` in host registers?
 * Yes iff every scratch register is referenced by NO op outside the
 * run, NO hoisted template op, and is distinct from every distilled
 * operand the template still reads from or writes to the lane
 * register file — then skipping its materialization is invisible.
 */
bool
scratchElidable(const MicroKernel &mk, size_t s, size_t e,
                const uint32_t *scratch, size_t n_scratch,
                const uint32_t *live, size_t n_live)
{
    for (size_t i = 0; i < n_scratch; ++i) {
        const uint32_t reg = scratch[i];
        for (size_t j = 0; j < n_live; ++j)
            if (live[j] == reg)
                return false;
        bool found = false;
        auto mark = [&](uint32_t rr) { found |= rr == reg; };
        for (size_t j = 0; j < mk.ops.size(); ++j) {
            if (j >= s && j < e)
                continue;
            forEachSrc(mk.ops[j], mark);
            forEachDst(mk.ops[j], mark);
        }
        for (const MicroOp &op : mk.templateOps) {
            forEachSrc(op, mark);
            forEachDst(op, mark);
        }
        if (found)
            return false;
    }
    return true;
}

/** Match SuperKind::SqDistStep at mk.ops[i..i+6) (see SuperKind). */
bool
matchSqDistStep(const MicroKernel &mk, size_t i, SuperOp &sup)
{
    const MicroOp *o = mk.ops.data() + i;
    if (o[0].op != MOp::IMulAdd || o[1].op != MOp::LdBuf ||
        o[2].op != MOp::IAddLd || o[3].op != MOp::FSub ||
        o[4].op != MOp::FMulFAdd || o[5].op != MOp::IAdd)
        return false;
    // Wiring: the first load's address comes from the IMulAdd, the
    // subtraction consumes both loads, the multiply-accumulate
    // squares the delta into an in/out accumulator.
    if (o[1].c != o[0].d || o[3].b != o[1].a || o[3].c != o[2].d ||
        o[4].b != o[3].a || o[4].c != o[3].a || o[4].d != o[4].e)
        return false;
    const uint32_t scratch[] = {o[0].a, o[0].d, o[1].a, o[2].a,
                                o[2].d, o[3].a, o[4].a};
    const uint32_t live[] = {o[0].b, o[0].c, o[0].e, o[2].b, o[2].c,
                             o[4].d, o[5].a, o[5].b, o[5].c};
    if (!scratchElidable(mk, i, i + 6, scratch, 7, live, 9))
        return false;
    sup.kind = SuperKind::SqDistStep;
    sup.aux = o[4].aux;
    sup.r[0] = o[0].b;
    sup.r[1] = o[0].c;
    sup.r[2] = o[0].e;
    sup.r[3] = o[2].b;
    sup.r[4] = o[2].c;
    sup.r[5] = o[4].d;
    sup.r[6] = o[5].a;
    sup.r[7] = o[5].b;
    sup.r[8] = o[5].c;
    sup.buf[0] = static_cast<uint16_t>(o[1].b);
    sup.site[0] = static_cast<uint16_t>(o[1].d);
    sup.buf[1] = o[2].aux;
    sup.site[1] = static_cast<uint16_t>(o[2].e);
    return true;
}

/** Match SuperKind::ShDotStep at mk.ops[i..i+6) (see SuperKind). */
bool
matchShDotStep(const MicroKernel &mk, size_t i, SuperOp &sup)
{
    const MicroOp *o = mk.ops.data() + i;
    if (o[0].op != MOp::MulAddLdSh || o[1].op != MOp::IMulAdd ||
        o[2].op != MOp::IAddLdSh || o[3].op != MOp::FFma ||
        o[4].op != MOp::Mov || o[5].op != MOp::IAdd)
        return false;
    // Wiring: the second shared address consumes the IMulAdd, the fma
    // consumes both shared loads, the Mov commits the accumulator.
    if (o[2].c != o[1].d || o[3].b != o[0].aux || o[3].c != o[2].d ||
        o[4].b != o[3].a)
        return false;
    const uint32_t scratch[] = {o[0].a, o[0].d,
                                static_cast<uint32_t>(o[0].aux),
                                o[1].a, o[1].d, o[2].a, o[2].d, o[3].a};
    const uint32_t live[] = {o[0].b, o[0].c, o[0].e, o[1].b, o[1].c,
                             o[1].e, o[2].b, o[3].d, o[4].a,
                             o[5].a,  o[5].b, o[5].c};
    if (!scratchElidable(mk, i, i + 6, scratch, 8, live, 12))
        return false;
    sup.kind = SuperKind::ShDotStep;
    sup.r[0] = o[0].b;
    sup.r[1] = o[0].c;
    sup.r[2] = o[0].e;
    sup.r[3] = o[1].b;
    sup.r[4] = o[1].c;
    sup.r[5] = o[1].e;
    sup.r[6] = o[2].b;
    sup.r[7] = o[3].d;
    sup.r[8] = o[4].a;
    sup.r[9] = o[5].a;
    sup.r[10] = o[5].b;
    sup.r[11] = o[5].c;
    return true;
}

/**
 * Pass 3.5: recognize the suite's dominant straight-line runs and
 * replace each with one MOp::Super record dispatched through the
 * SuperKind template registry.  Runs after hoisting, so the entry
 * analysis sees the plain stream; branch targets are remapped and the
 * per-op costs summed into the record, so costFrom — and therefore
 * laneCycles — are unchanged.  A run is only fused when control flow
 * cannot enter its interior and its scratch registers are provably
 * unreferenced outside it (then every executor tier may keep them in
 * host registers instead of the lane register file).
 */
void
fuseSuperopRuns(MicroKernel &mk, std::vector<uint8_t> &cost)
{
    const size_t n = mk.ops.size();
    std::vector<uint8_t> is_target(n, 0);
    for (const MicroOp &op : mk.ops) {
        switch (op.op) {
          case MOp::Jmp: is_target[op.a] = 1; break;
          case MOp::BrTrue:
          case MOp::BrFalse: is_target[op.b] = 1; break;
          default:
            if (isCmpBr(op.op))
                is_target[op.d] = 1;
            break;
        }
    }
    auto interiorFree = [&](size_t s, size_t e) {
        for (size_t j = s + 1; j < e; ++j)
            if (is_target[j])
                return false;
        return true;
    };

    std::vector<MicroOp> new_ops;
    std::vector<uint8_t> new_cost;
    std::vector<uint32_t> remap(n, 0);
    new_ops.reserve(n);
    new_cost.reserve(n);
    size_t i = 0;
    while (i < n) {
        remap[i] = static_cast<uint32_t>(new_ops.size());
        SuperOp sup;
        size_t len = 0;
        if (i + 6 <= n && interiorFree(i, i + 6) &&
            (matchSqDistStep(mk, i, sup) || matchShDotStep(mk, i, sup)))
            len = 6;
        if (len == 0) {
            new_ops.push_back(mk.ops[i]);
            new_cost.push_back(cost[i]);
            ++i;
            continue;
        }
        uint32_t csum = 0;
        for (size_t j = 0; j < len; ++j)
            csum += cost[i + j];
        sup.cost = csum;
        MicroOp op;
        op.op = MOp::Super;
        op.aux = static_cast<uint16_t>(mk.supers.size());
        mk.supers.push_back(sup);
        new_ops.push_back(op);
        VCB_ASSERT(csum <= 0xff, "superop cost overflow");
        new_cost.push_back(static_cast<uint8_t>(csum));
        i += len;
    }
    if (mk.supers.empty())
        return;
    for (MicroOp &op : new_ops) {
        switch (op.op) {
          case MOp::Jmp: op.a = remap[op.a]; break;
          case MOp::BrTrue:
          case MOp::BrFalse: op.b = remap[op.b]; break;
          default:
            if (isCmpBr(op.op))
                op.d = remap[op.d];
            break;
        }
    }
    mk.ops = std::move(new_ops);
    cost = std::move(new_cost);
}

/** Registers a superop template references (prefix of SuperOp::r). */
size_t
superRegCount(SuperKind kind)
{
    switch (kind) {
      case SuperKind::SqDistStep: return 9;
      case SuperKind::ShDotStep: return 12;
      case SuperKind::Count: break;
    }
    return 0;
}

/**
 * Pass 3.6: wrap each [CmpBrILt head; Super body; Jmp back-to-head]
 * triad into one MOp::SuperLoop terminator that runs the counted loop
 * to completion per lane — the executor pays one dispatch per LOOP
 * instead of three per ITERATION, and per-lane trip counts never
 * surface as divergence (all lanes reconverge at the exit pc).
 *
 * Soundness: control flow cannot land inside the triad (is_target),
 * the head's exit value of the flag register is written exactly
 * (loopAux — the failing test's result), and skipping the flag's
 * intermediate per-test writes is invisible because the flag register
 * is provably not referenced by the head's own operands or the body.
 * Cycle charges are carried per iteration (headCost + bodyCost, the
 * same costFrom charges the unfused stream pays per trip around the
 * back edge), so laneCycles stay bit-identical.
 */
void
fuseSuperLoops(MicroKernel &mk, std::vector<uint8_t> &cost)
{
    const size_t n = mk.ops.size();
    std::vector<uint8_t> is_target(n, 0);
    for (const MicroOp &op : mk.ops) {
        switch (op.op) {
          case MOp::Jmp: is_target[op.a] = 1; break;
          case MOp::BrTrue:
          case MOp::BrFalse: is_target[op.b] = 1; break;
          default:
            if (isCmpBr(op.op))
                is_target[op.d] = 1;
            break;
        }
    }

    std::vector<MicroOp> new_ops;
    std::vector<uint8_t> new_cost;
    std::vector<uint32_t> remap(n, 0);
    new_ops.reserve(n);
    new_cost.reserve(n);
    bool any = false;
    size_t i = 0;
    while (i < n) {
        remap[i] = static_cast<uint32_t>(new_ops.size());
        bool fuse = false;
        if (i + 3 <= n && mk.ops[i].op == MOp::CmpBrILt &&
            mk.ops[i].aux == 0 && mk.ops[i + 1].op == MOp::Super &&
            mk.ops[i + 2].op == MOp::Jmp && mk.ops[i + 2].a == i &&
            !is_target[i + 1] && !is_target[i + 2] &&
            mk.ops[i].d != i && mk.ops[i].d != i + 1 &&
            mk.ops[i].d != i + 2) {
            const MicroOp &head = mk.ops[i];
            SuperOp &sup = mk.supers[mk.ops[i + 1].aux];
            bool flag_free = head.a != head.b && head.a != head.c;
            for (size_t r = 0, cnt = superRegCount(sup.kind); r < cnt;
                 ++r)
                flag_free &= head.a != sup.r[r];
            if (flag_free) {
                sup.loop = 1;
                sup.loopAux = head.aux;
                sup.loopFlag = head.a;
                sup.loopB = head.b;
                sup.loopC = head.c;
                sup.exitPc = head.d; // old index; remapped below
                sup.headCost = cost[i];
                sup.bodyCost =
                    static_cast<uint32_t>(cost[i + 1]) + cost[i + 2];
                MicroOp op;
                op.op = MOp::SuperLoop;
                op.aux = mk.ops[i + 1].aux;
                new_ops.push_back(op);
                // Arrival charge stays the head test's cost; the
                // handler charges the per-iteration costs itself.
                new_cost.push_back(cost[i]);
                fuse = true;
                any = true;
            }
        }
        if (!fuse) {
            new_ops.push_back(mk.ops[i]);
            new_cost.push_back(cost[i]);
            ++i;
            continue;
        }
        remap[i + 1] = remap[i];
        remap[i + 2] = remap[i];
        i += 3;
    }
    if (!any)
        return;
    for (MicroOp &op : new_ops) {
        switch (op.op) {
          case MOp::Jmp: op.a = remap[op.a]; break;
          case MOp::BrTrue:
          case MOp::BrFalse: op.b = remap[op.b]; break;
          default:
            if (isCmpBr(op.op))
                op.d = remap[op.d];
            break;
        }
    }
    for (SuperOp &sup : mk.supers)
        if (sup.loop)
            sup.exitPc = remap[sup.exitPc];
    mk.ops = std::move(new_ops);
    cost = std::move(new_cost);
}

} // namespace

void
lowerKernel(CompiledKernel &k, const LowerOptions &opt)
{
    // Build into a local and publish at the end: k.micro may alias a
    // program shared with other cache clients, which must never see a
    // half-lowered stream (or any mutation at all).
    MicroKernel local;
    MicroKernel &mk = local;

    const std::vector<Insn> &insns = k.insns;
    const size_t n = insns.size();
    VCB_ASSERT(n > 0, "kernel '%s': empty instruction stream",
               k.module.name.c_str());

    // Instructions control flow can land on: fusion must not swallow
    // them as the second half of a pair.
    std::vector<uint8_t> is_target(n, 0);
    for (const Insn &in : insns) {
        switch (in.op) {
          case Op::Br: is_target[in.a] = 1; break;
          case Op::BrTrue:
          case Op::BrFalse: is_target[in.b] = 1; break;
          default: break;
        }
    }

    // Pass 1: emit micro-ops; branch fields keep *source* instruction
    // targets until pass 2 remaps them through micro_of.
    std::vector<uint32_t> micro_of(n, 0);
    std::vector<uint8_t> cost; // per micro-op issue cost
    cost.reserve(n);
    mk.ops.reserve(n);

    auto emit = [&](MicroOp op, uint8_t op_cost) {
        mk.ops.push_back(op);
        cost.push_back(op_cost);
    };

    size_t i = 0;
    while (i < n) {
        micro_of[i] = static_cast<uint32_t>(mk.ops.size());
        const Insn &in = insns[i];

        if (i + 1 < n && !is_target[i + 1]) {
            const Insn &nx = insns[i + 1];
            const uint8_t pair_cost =
                static_cast<uint8_t>(opCost(in.op) + opCost(nx.op));
            auto fused = [&](MicroOp op) {
                emit(op, pair_cost);
                micro_of[i + 1] =
                    static_cast<uint32_t>(mk.ops.size()) - 1;
                ++mk.fusedPairs;
                i += 2;
            };
            BinKind kind;
            if (opt.fuseCmpBranch && isCompare(in.op, &kind) &&
                (nx.op == Op::BrTrue || nx.op == Op::BrFalse) &&
                nx.a == in.a) {
                static_assert(
                    static_cast<int>(MOp::CmpBrFGe) -
                            static_cast<int>(MOp::CmpBrIEq) ==
                        static_cast<int>(BinKind::FGe) -
                            static_cast<int>(BinKind::IEq),
                    "CmpBr block out of sync with BinKind comparisons");
                const MOp cmp_br = static_cast<MOp>(
                    static_cast<int>(MOp::CmpBrIEq) +
                    (static_cast<int>(kind) -
                     static_cast<int>(BinKind::IEq)));
                uint16_t sense = nx.op == Op::BrTrue ? 1 : 0;
                fused({cmp_br, sense, in.a, in.b, in.c, nx.b, 0});
                continue;
            }
            if (in.op == Op::IAdd) {
                // IAdd feeding the next op's memory address — the
                // array-indexing idiom.  The address register is still
                // written (it may be read downstream).
                const uint32_t nx_site =
                    k.siteOfInsn[i + 1] ? k.siteOfInsn[i + 1] - 1 : 0;
                if (opt.fuseAddrMem && nx.op == Op::LdBuf &&
                    nx.c == in.a) {
                    fused({MOp::IAddLd, static_cast<uint16_t>(nx.b),
                           in.a, in.b, in.c, nx.a, nx_site});
                    continue;
                }
                if (opt.fuseAddrMem && nx.op == Op::StBuf &&
                    nx.b == in.a) {
                    fused({MOp::IAddSt, static_cast<uint16_t>(nx.a),
                           in.a, in.b, in.c, nx.c, nx_site});
                    continue;
                }
                if (opt.fuseAddrMem && nx.op == Op::LdShared &&
                    nx.b == in.a) {
                    fused({MOp::IAddLdSh, 0, in.a, in.b, in.c, nx.a, 0});
                    continue;
                }
                if (opt.fuseAddrMem && nx.op == Op::StShared &&
                    nx.a == in.a) {
                    fused({MOp::IAddStSh, 0, in.a, in.b, in.c, nx.b, 0});
                    continue;
                }
                if (opt.fuseMulAdd && nx.op == Op::IAdd &&
                    (nx.b == in.a || nx.c == in.a)) {
                    const uint32_t other = nx.b == in.a ? nx.c : nx.b;
                    fused({MOp::IAddAdd, 0, in.a, in.b, in.c, nx.a,
                           other});
                    continue;
                }
            }
            if (opt.fuseMulAdd && in.op == Op::IMul &&
                nx.op == Op::IAdd && (nx.b == in.a || nx.c == in.a)) {
                // t = b*c feeding an add: addition commutes, so the
                // other operand's position doesn't matter.
                const uint32_t other = nx.b == in.a ? nx.c : nx.b;
                // Triple: the add's result feeding a shared-memory
                // access (the row*pitch+col staging idiom).  Three
                // source ops collapse into one micro-op.
                if (opt.fuseAddrMem && i + 2 < n && !is_target[i + 2]) {
                    const Insn &n2 = insns[i + 2];
                    const uint8_t triple_cost = static_cast<uint8_t>(
                        opCost(in.op) + opCost(nx.op) + opCost(n2.op));
                    if (n2.op == Op::LdShared && n2.b == nx.a) {
                        emit({MOp::MulAddLdSh,
                              static_cast<uint16_t>(n2.a), in.a, in.b,
                              in.c, nx.a, other},
                             triple_cost);
                        micro_of[i + 1] = micro_of[i + 2] =
                            static_cast<uint32_t>(mk.ops.size()) - 1;
                        mk.fusedPairs += 2;
                        i += 3;
                        continue;
                    }
                    if (n2.op == Op::StShared && n2.a == nx.a) {
                        emit({MOp::MulAddStSh,
                              static_cast<uint16_t>(n2.b), in.a, in.b,
                              in.c, nx.a, other},
                             triple_cost);
                        micro_of[i + 1] = micro_of[i + 2] =
                            static_cast<uint32_t>(mk.ops.size()) - 1;
                        mk.fusedPairs += 2;
                        i += 3;
                        continue;
                    }
                }
                fused({MOp::IMulAdd, 0, in.a, in.b, in.c, nx.a, other});
                continue;
            }
            if (opt.fuseConstAlu &&
                (in.op == Op::ConstI || in.op == Op::ConstF) &&
                binKindOf(nx.op, &kind) &&
                (nx.b == in.a || nx.c == in.a)) {
                fused({MOp::ConstAlu, static_cast<uint16_t>(kind), in.a,
                       in.b, nx.a, nx.b, nx.c});
                continue;
            }
            // Float producer/consumer pairs (operand order preserved:
            // aux bit 0 says the produced value is the left operand).
            if (opt.fuseMulAdd && in.op == Op::FMul &&
                (nx.op == Op::FAdd || nx.op == Op::FSub) &&
                (nx.b == in.a || nx.c == in.a)) {
                const uint16_t left = nx.b == in.a ? 1 : 0;
                const uint32_t other = left ? nx.c : nx.b;
                fused({nx.op == Op::FAdd ? MOp::FMulFAdd : MOp::FMulFSub,
                       left, in.a, in.b, in.c, nx.a, other});
                continue;
            }
            if (opt.fuseAddrMem && in.op == Op::LdShared &&
                (nx.op == Op::FMul || nx.op == Op::FSub ||
                 nx.op == Op::FDiv) &&
                (nx.b == in.a || nx.c == in.a)) {
                const uint16_t left = nx.b == in.a ? 1 : 0;
                const uint32_t other = left ? nx.c : nx.b;
                const MOp mop = nx.op == Op::FMul   ? MOp::LdShFMul
                                : nx.op == Op::FSub ? MOp::LdShFSub
                                                    : MOp::LdShFDiv;
                fused({mop, left, in.a, in.b, 0, nx.a, other});
                continue;
            }
            if (opt.fuseAddrMem &&
                (in.op == Op::FSub || in.op == Op::FDiv) &&
                nx.op == Op::StShared && nx.b == in.a) {
                fused({in.op == Op::FSub ? MOp::FSubStSh : MOp::FDivStSh,
                       0, in.a, in.b, in.c, nx.a, 0});
                continue;
            }
            if (opt.fuseMulAdd && in.op == Op::IDiv &&
                nx.op == Op::IRem && nx.b == in.b && nx.c == in.c &&
                in.a != in.b && in.a != in.c) {
                // Same operands and the quotient doesn't clobber them:
                // one host division yields both results.
                fused({MOp::IDivRem, 0, in.a, in.b, in.c, nx.a, 0});
                continue;
            }
        }

        const uint8_t c = opCost(in.op);
        const uint32_t site =
            k.siteOfInsn[i] ? k.siteOfInsn[i] - 1 : 0;
        switch (in.op) {
          case Op::Nop:
            break; // dropped; micro_of already points at the next op
          case Op::ConstI:
          case Op::ConstF:
            emit({MOp::Const, 0, in.a, in.b, 0, 0, 0}, c);
            break;
          case Op::Mov:
            emit({MOp::Mov, 0, in.a, in.b, 0, 0, 0}, c);
            break;
          case Op::LdBuiltin:
            emit({MOp::LdBuiltin, static_cast<uint16_t>(in.b), in.a, 0,
                  0, 0, 0}, c);
            break;
          case Op::LdPush:
            VCB_ASSERT(in.b < k.module.pushWords,
                       "kernel '%s': push word %u outside block (%u)",
                       k.module.name.c_str(), in.b, k.module.pushWords);
            emit({MOp::LdPush, 0, in.a, in.b, 0, 0, 0}, c);
            break;

#define VCB_LOWER_SAME(name)                                              \
          case Op::name:                                                  \
            emit({MOp::name, 0, in.a, in.b, in.c, in.d, 0}, c);           \
            break
          VCB_LOWER_SAME(IAdd); VCB_LOWER_SAME(ISub);
          VCB_LOWER_SAME(IMul); VCB_LOWER_SAME(IDiv);
          VCB_LOWER_SAME(IRem); VCB_LOWER_SAME(IMin);
          VCB_LOWER_SAME(IMax); VCB_LOWER_SAME(IAnd);
          VCB_LOWER_SAME(IOr);  VCB_LOWER_SAME(IXor);
          VCB_LOWER_SAME(INot); VCB_LOWER_SAME(INeg);
          VCB_LOWER_SAME(IShl); VCB_LOWER_SAME(IShrU);
          VCB_LOWER_SAME(IShrS);
          VCB_LOWER_SAME(FAdd); VCB_LOWER_SAME(FSub);
          VCB_LOWER_SAME(FMul); VCB_LOWER_SAME(FDiv);
          VCB_LOWER_SAME(FMin); VCB_LOWER_SAME(FMax);
          VCB_LOWER_SAME(FAbs); VCB_LOWER_SAME(FNeg);
          VCB_LOWER_SAME(FSqrt); VCB_LOWER_SAME(FExp);
          VCB_LOWER_SAME(FLog); VCB_LOWER_SAME(FFloor);
          VCB_LOWER_SAME(FSin); VCB_LOWER_SAME(FCos);
          VCB_LOWER_SAME(FFma); VCB_LOWER_SAME(FPow);
          VCB_LOWER_SAME(CvtSF); VCB_LOWER_SAME(CvtFS);
          VCB_LOWER_SAME(IEq); VCB_LOWER_SAME(INe);
          VCB_LOWER_SAME(ILt); VCB_LOWER_SAME(ILe);
          VCB_LOWER_SAME(IGt); VCB_LOWER_SAME(IGe);
          VCB_LOWER_SAME(ULt); VCB_LOWER_SAME(UGe);
          VCB_LOWER_SAME(FEq); VCB_LOWER_SAME(FNe);
          VCB_LOWER_SAME(FLt); VCB_LOWER_SAME(FLe);
          VCB_LOWER_SAME(FGt); VCB_LOWER_SAME(FGe);
          VCB_LOWER_SAME(Select);
          VCB_LOWER_SAME(LdShared); VCB_LOWER_SAME(StShared);
#undef VCB_LOWER_SAME

          case Op::LdBuf:
            emit({MOp::LdBuf, 0, in.a, in.b, in.c, site, 0}, c);
            break;
          case Op::StBuf:
            emit({MOp::StBuf, 0, in.a, in.b, in.c, site, 0}, c);
            break;
          case Op::AtomIAdd:
            emit({MOp::AtomIAdd, 0, in.a, in.b, in.c, in.d, site}, c);
            break;
          case Op::AtomIOr:
            emit({MOp::AtomIOr, 0, in.a, in.b, in.c, in.d, site}, c);
            break;
          case Op::AtomIMin:
            emit({MOp::AtomIMin, 0, in.a, in.b, in.c, in.d, site}, c);
            break;
          case Op::AtomIMax:
            emit({MOp::AtomIMax, 0, in.a, in.b, in.c, in.d, site}, c);
            break;

          case Op::Br:
            emit({MOp::Jmp, 0, in.a, 0, 0, 0, 0}, c);
            break;
          case Op::BrTrue:
            emit({MOp::BrTrue, 0, in.a, in.b, 0, 0, 0}, c);
            break;
          case Op::BrFalse:
            emit({MOp::BrFalse, 0, in.a, in.b, 0, 0, 0}, c);
            break;
          case Op::Barrier:
            emit({MOp::Barrier, 0, 0, 0, 0, 0, 0}, c);
            mk.hasBarrier = true;
            break;
          case Op::Ret:
            emit({MOp::Ret, 0, 0, 0, 0, 0, 0}, c);
            break;
          case Op::Count:
            panic("kernel '%s' @%zu: invalid opcode",
                  k.module.name.c_str(), i);
        }
        ++i;
    }

    // Pass 2: remap branch targets from source to micro indices.
    for (MicroOp &op : mk.ops) {
        switch (op.op) {
          case MOp::Jmp: op.a = micro_of[op.a]; break;
          case MOp::BrTrue:
          case MOp::BrFalse: op.b = micro_of[op.b]; break;
          default:
            if (isCmpBr(op.op))
                op.d = micro_of[op.d];
            break;
        }
    }

    mk.skipRegZeroInit = provesWriteBeforeRead(k);

    // Pass 3: hoist dispatch-uniform entry ops into the register
    // template (sound only with write-before-read proven).
    hoistUniformEntry(mk, cost, k.module.regCount);

    // Pass 3.5: templated superops over the remaining stream, then
    // pass 3.6: counted loops around a superop body fuse into
    // run-to-completion SuperLoop records.
    if (opt.fuseSuperops && superopsEnabled()) {
        fuseSuperopRuns(mk, cost);
        if (!mk.supers.empty())
            fuseSuperLoops(mk, cost);
    }

    // Pass 4: suffix-sum costs per straight-line run; the entry run
    // additionally carries the hoisted ops' cost so laneCycles stay
    // bit-identical.
    mk.costFrom.resize(mk.ops.size());
    for (size_t j = mk.ops.size(); j-- > 0;) {
        uint32_t after =
            isTerminator(mk.ops[j].op) ? 0 : mk.costFrom[j + 1];
        mk.costFrom[j] = cost[j] + after;
    }
    mk.costFrom[0] += mk.hoistedCost;

    // Tier-policy metadata.
    for (const MicroOp &op : mk.ops) {
        switch (op.op) {
          case MOp::Jmp:
          case MOp::BrTrue:
          case MOp::BrFalse:
            mk.hasBranches = true;
            break;
          case MOp::AtomIAdd:
          case MOp::AtomIOr:
          case MOp::AtomIMin:
          case MOp::AtomIMax:
            mk.hasAtomics = true;
            break;
          default:
            if (isCmpBr(op.op))
                mk.hasBranches = true;
            break;
        }
    }

    k.micro = std::make_shared<const MicroKernel>(std::move(local));
}

ExecTier
chooseExecTier(const MicroKernel &mk)
{
    if (!mk.hasBranches && !mk.hasAtomics)
        return ExecTier::Trace;
    return ExecTier::Block;
}

// --- executor-tier knobs --------------------------------------------------

const char *
execTierName(ExecTier t)
{
    switch (t) {
      case ExecTier::Trace: return "trace";
      case ExecTier::Block: return "block";
      case ExecTier::LaneMajor: return "lane";
      case ExecTier::Instrumented: return "instrumented";
      case ExecTier::Count: break;
    }
    return "auto";
}

namespace {
/** Cached VCB_EXECUTOR: Count+1 = not read yet, Count = auto. */
std::atomic<uint8_t> g_forced_tier{static_cast<uint8_t>(ExecTier::Count) +
                                   1};
/** Cached VCB_BLOCK_W (0 = not read yet). */
std::atomic<uint32_t> g_block_w{0};
/** Cached VCB_SUPEROPS state: -1 = not read yet, else 0/1. */
std::atomic<int> g_superops{-1};
} // namespace

ExecTier
executorOverride()
{
    uint8_t v = g_forced_tier.load(std::memory_order_relaxed);
    if (v > static_cast<uint8_t>(ExecTier::Count)) {
        ExecTier t = ExecTier::Count;
        if (const char *env = std::getenv("VCB_EXECUTOR")) {
            const std::string s(env);
            if (s == "trace")
                t = ExecTier::Trace;
            else if (s == "block")
                t = ExecTier::Block;
            else if (s == "lane")
                t = ExecTier::LaneMajor;
            else if (s == "instrumented")
                t = ExecTier::Instrumented;
            else if (!s.empty() && s != "auto")
                fatal("VCB_EXECUTOR='%s' is not one of "
                      "trace/block/lane/instrumented/auto",
                      env);
        }
        v = static_cast<uint8_t>(t);
        g_forced_tier.store(v, std::memory_order_relaxed);
    }
    return static_cast<ExecTier>(v);
}

void
setExecutorOverride(ExecTier t)
{
    // Count resets to "unread" so the next query re-parses the env.
    g_forced_tier.store(t == ExecTier::Count
                            ? static_cast<uint8_t>(ExecTier::Count) + 1
                            : static_cast<uint8_t>(t),
                        std::memory_order_relaxed);
}

bool
superopsEnabled()
{
    int v = g_superops.load(std::memory_order_relaxed);
    if (v < 0) {
        const char *env = std::getenv("VCB_SUPEROPS");
        v = (env && env[0] == '0' && env[1] == '\0') ? 0 : 1;
        g_superops.store(v, std::memory_order_relaxed);
    }
    return v != 0;
}

void
setSuperopsEnabled(int enabled)
{
    g_superops.store(enabled < 0 ? -1 : (enabled != 0),
                     std::memory_order_relaxed);
}

uint32_t
blockWidth()
{
    uint32_t w = g_block_w.load(std::memory_order_relaxed);
    if (w == 0) {
        w = 8;
        if (const char *env = std::getenv("VCB_BLOCK_W")) {
            w = static_cast<uint32_t>(std::atoi(env));
            if (w != 4 && w != 8 && w != 16)
                fatal("VCB_BLOCK_W=%s is not one of 4/8/16", env);
        }
        g_block_w.store(w, std::memory_order_relaxed);
    }
    return w;
}

void
setBlockWidth(uint32_t w)
{
    VCB_ASSERT(w == 0 || w == 4 || w == 8 || w == 16,
               "block width %u is not one of 4/8/16", w);
    g_block_w.store(w, std::memory_order_relaxed);
}

ExecTier
effectiveExecTier(const MicroKernel &mk)
{
    const ExecTier forced = executorOverride();
    ExecTier tier =
        forced == ExecTier::Count ? chooseExecTier(mk) : forced;
    // The trace tier requires a straight-line atomic-free body; a
    // forced "trace" degrades to the block tier where that fails.
    if (tier == ExecTier::Trace && (mk.hasBranches || mk.hasAtomics))
        tier = ExecTier::Block;
    return tier;
}

// --- disassembly ----------------------------------------------------------

const char *
mopName(MOp op)
{
    static const char *const names[] = {
        "Const", "Mov", "LdBuiltin", "LdPush",
        "IAdd", "ISub", "IMul", "IDiv", "IRem", "IMin", "IMax", "IAnd",
        "IOr", "IXor", "INot", "INeg", "IShl", "IShrU", "IShrS",
        "FAdd", "FSub", "FMul", "FDiv", "FMin", "FMax", "FAbs", "FNeg",
        "FSqrt", "FExp", "FLog", "FFloor", "FSin", "FCos", "FFma",
        "FPow", "CvtSF", "CvtFS",
        "IEq", "INe", "ILt", "ILe", "IGt", "IGe", "ULt", "UGe",
        "FEq", "FNe", "FLt", "FLe", "FGt", "FGe", "Select",
        "LdBuf", "StBuf", "LdShared", "StShared",
        "AtomIAdd", "AtomIOr", "AtomIMin", "AtomIMax",
        "Jmp", "BrTrue", "BrFalse",
        "CmpBrIEq", "CmpBrINe", "CmpBrILt", "CmpBrILe", "CmpBrIGt",
        "CmpBrIGe", "CmpBrULt", "CmpBrUGe",
        "CmpBrFEq", "CmpBrFNe", "CmpBrFLt", "CmpBrFLe", "CmpBrFGt",
        "CmpBrFGe",
        "ConstAlu", "IAddLd", "IAddSt", "IMulAdd", "IAddAdd",
        "IAddLdSh", "IAddStSh", "MulAddLdSh", "MulAddStSh",
        "FMulFAdd", "FMulFSub",
        "LdShFMul", "LdShFSub", "LdShFDiv",
        "FSubStSh", "FDivStSh", "IDivRem",
        "Super", "SuperLoop",
        "Barrier", "Ret",
    };
    static_assert(sizeof(names) / sizeof(names[0]) ==
                      static_cast<size_t>(MOp::Count),
                  "name table out of sync with MOp");
    const size_t raw = static_cast<size_t>(op);
    return raw < static_cast<size_t>(MOp::Count) ? names[raw] : "?";
}

const char *
superKindName(SuperKind kind)
{
    switch (kind) {
      case SuperKind::SqDistStep: return "SqDistStep";
      case SuperKind::ShDotStep: return "ShDotStep";
      case SuperKind::Count: break;
    }
    return "?";
}

namespace {

/** printf into a std::string. */
std::string
strf(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

const char *
binKindName(BinKind k)
{
    static const char *const names[] = {
        "iadd", "isub", "imul", "imin", "imax", "iand", "ior", "ixor",
        "ishl", "ishru", "ishrs",
        "fadd", "fsub", "fmul", "fdiv", "fmin", "fmax",
        "ieq", "ine", "ilt", "ile", "igt", "ige", "ult", "uge",
        "feq", "fne", "flt", "fle", "fgt", "fge",
    };
    static_assert(sizeof(names) / sizeof(names[0]) ==
                      static_cast<size_t>(BinKind::Count),
                  "name table out of sync with BinKind");
    const size_t raw = static_cast<size_t>(k);
    return raw < static_cast<size_t>(BinKind::Count) ? names[raw] : "?";
}

/** Infix symbol of a simple binary micro-op, or null. */
const char *
binSymbol(MOp op)
{
    switch (op) {
      case MOp::IAdd: case MOp::FAdd: return "+";
      case MOp::ISub: case MOp::FSub: return "-";
      case MOp::IMul: case MOp::FMul: return "*";
      case MOp::IDiv: case MOp::FDiv: return "/";
      case MOp::IRem: return "%";
      case MOp::IAnd: return "&";
      case MOp::IOr: return "|";
      case MOp::IXor: return "^";
      case MOp::IShl: return "<<";
      case MOp::IShrU: return ">>u";
      case MOp::IShrS: return ">>s";
      case MOp::IEq: case MOp::FEq: return "==";
      case MOp::INe: case MOp::FNe: return "!=";
      case MOp::ILt: case MOp::FLt: return "<s";
      case MOp::ILe: case MOp::FLe: return "<=s";
      case MOp::IGt: case MOp::FGt: return ">s";
      case MOp::IGe: case MOp::FGe: return ">=s";
      case MOp::ULt: return "<u";
      case MOp::UGe: return ">=u";
      default: return nullptr;
    }
  }

/** Comparison symbol of a CmpBr op (CmpBrIEq..CmpBrFGe). */
const char *
cmpBrSymbol(MOp op)
{
    static const char *const sym[] = {"==", "!=", "<s", "<=s", ">s",
                                      ">=s", "<u", ">=u", "==", "!=",
                                      "<", "<=", ">", ">="};
    return sym[static_cast<size_t>(op) -
               static_cast<size_t>(MOp::CmpBrIEq)];
}

} // namespace

std::string
renderMicroOp(const MicroKernel &mk, uint32_t pc)
{
    const MicroOp &o = mk.ops[pc];
    if (const char *sym = binSymbol(o.op))
        return strf("r%u = r%u %s r%u", o.a, o.b, sym, o.c);
    if (isCmpBr(o.op))
        return strf("r%u = r%u %s r%u; br @%u if %u", o.a, o.b,
                    cmpBrSymbol(o.op), o.c, o.d, o.aux);
    switch (o.op) {
      case MOp::Const:
        return strf("r%u = %u (%g)", o.a, o.b, bitsToF(o.b));
      case MOp::Mov: return strf("r%u = r%u", o.a, o.b);
      case MOp::LdBuiltin:
        return strf("r%u = %s", o.a,
                    spirv::builtinName(
                        static_cast<spirv::Builtin>(o.aux)));
      case MOp::LdPush: return strf("r%u = push[%u]", o.a, o.b);
      case MOp::INot: return strf("r%u = ~r%u", o.a, o.b);
      case MOp::INeg: case MOp::FNeg:
        return strf("r%u = -r%u", o.a, o.b);
      case MOp::FAbs: case MOp::FSqrt: case MOp::FExp: case MOp::FLog:
      case MOp::FFloor: case MOp::FSin: case MOp::FCos:
      case MOp::CvtSF: case MOp::CvtFS:
        return strf("r%u = %s(r%u)", o.a, mopName(o.op), o.b);
      case MOp::FMin: case MOp::FMax: case MOp::IMin: case MOp::IMax:
      case MOp::FPow:
        return strf("r%u = %s(r%u, r%u)", o.a, mopName(o.op), o.b, o.c);
      case MOp::FFma:
        return strf("r%u = fma(r%u, r%u, r%u)", o.a, o.b, o.c, o.d);
      case MOp::Select:
        return strf("r%u = r%u ? r%u : r%u", o.a, o.b, o.c, o.d);
      case MOp::LdBuf:
        return strf("r%u = buf%u[r%u]  site %u", o.a, o.b, o.c, o.d);
      case MOp::StBuf:
        return strf("buf%u[r%u] = r%u  site %u", o.a, o.b, o.c, o.d);
      case MOp::LdShared: return strf("r%u = sh[r%u]", o.a, o.b);
      case MOp::StShared: return strf("sh[r%u] = r%u", o.a, o.b);
      case MOp::AtomIAdd: case MOp::AtomIOr: case MOp::AtomIMin:
      case MOp::AtomIMax:
        return strf("r%u = %s(buf%u[r%u], r%u)  site %u", o.a,
                    mopName(o.op), o.b, o.c, o.d, o.e);
      case MOp::Jmp: return strf("jmp @%u", o.a);
      case MOp::BrTrue: return strf("br @%u if r%u", o.b, o.a);
      case MOp::BrFalse: return strf("br @%u if !r%u", o.b, o.a);
      case MOp::ConstAlu:
        return strf("r%u = %u (%g); r%u = %s(r%u, r%u)", o.a, o.b,
                    bitsToF(o.b), o.c,
                    binKindName(static_cast<BinKind>(o.aux)), o.d, o.e);
      case MOp::IAddLd:
        return strf("r%u = r%u + r%u; r%u = buf%u[r%u]  site %u", o.a,
                    o.b, o.c, o.d, o.aux, o.a, o.e);
      case MOp::IAddSt:
        return strf("r%u = r%u + r%u; buf%u[r%u] = r%u  site %u", o.a,
                    o.b, o.c, o.aux, o.a, o.d, o.e);
      case MOp::IMulAdd:
        return strf("r%u = r%u * r%u; r%u = r%u + r%u", o.a, o.b, o.c,
                    o.d, o.a, o.e);
      case MOp::IAddAdd:
        return strf("r%u = r%u + r%u; r%u = r%u + r%u", o.a, o.b, o.c,
                    o.d, o.a, o.e);
      case MOp::IAddLdSh:
        return strf("r%u = r%u + r%u; r%u = sh[r%u]", o.a, o.b, o.c,
                    o.d, o.a);
      case MOp::IAddStSh:
        return strf("r%u = r%u + r%u; sh[r%u] = r%u", o.a, o.b, o.c,
                    o.a, o.d);
      case MOp::MulAddLdSh:
        return strf("r%u = r%u * r%u; r%u = r%u + r%u; r%u = sh[r%u]",
                    o.a, o.b, o.c, o.d, o.a, o.e, o.aux, o.d);
      case MOp::MulAddStSh:
        return strf("r%u = r%u * r%u; r%u = r%u + r%u; sh[r%u] = r%u",
                    o.a, o.b, o.c, o.d, o.a, o.e, o.d, o.aux);
      case MOp::FMulFAdd:
        return o.aux & 1
                   ? strf("r%u = r%u * r%u; r%u = r%u + r%u", o.a, o.b,
                          o.c, o.d, o.a, o.e)
                   : strf("r%u = r%u * r%u; r%u = r%u + r%u", o.a, o.b,
                          o.c, o.d, o.e, o.a);
      case MOp::FMulFSub:
        return o.aux & 1
                   ? strf("r%u = r%u * r%u; r%u = r%u - r%u", o.a, o.b,
                          o.c, o.d, o.a, o.e)
                   : strf("r%u = r%u * r%u; r%u = r%u - r%u", o.a, o.b,
                          o.c, o.d, o.e, o.a);
      case MOp::LdShFMul: case MOp::LdShFSub: case MOp::LdShFDiv: {
        const char *sym = o.op == MOp::LdShFMul   ? "*"
                          : o.op == MOp::LdShFSub ? "-"
                                                  : "/";
        return o.aux & 1
                   ? strf("r%u = sh[r%u]; r%u = r%u %s r%u", o.a, o.b,
                          o.d, o.a, sym, o.e)
                   : strf("r%u = sh[r%u]; r%u = r%u %s r%u", o.a, o.b,
                          o.d, o.e, sym, o.a);
      }
      case MOp::FSubStSh:
        return strf("r%u = r%u - r%u; sh[r%u] = r%u", o.a, o.b, o.c,
                    o.d, o.a);
      case MOp::FDivStSh:
        return strf("r%u = r%u / r%u; sh[r%u] = r%u", o.a, o.b, o.c,
                    o.d, o.a);
      case MOp::IDivRem:
        return strf("r%u = r%u / r%u; r%u = r%u %% r%u", o.a, o.b, o.c,
                    o.d, o.b, o.c);
      case MOp::Super:
      case MOp::SuperLoop: {
        const SuperOp &s = mk.supers[o.aux];
        std::string body;
        switch (s.kind) {
          case SuperKind::SqDistStep:
            body = strf("SqDistStep: d = buf%u[r%u*r%u+r%u] - "
                        "buf%u[r%u+r%u]; r%u %s d*d; r%u = r%u + r%u"
                        "  sites %u,%u",
                        s.buf[0], s.r[0], s.r[1], s.r[2], s.buf[1],
                        s.r[3], s.r[4], s.r[5],
                        s.aux & 1 ? "=+" : "+=", s.r[6], s.r[7],
                        s.r[8], s.site[0], s.site[1]);
            break;
          case SuperKind::ShDotStep:
            body = strf("ShDotStep: r%u = fma(sh[r%u*r%u+r%u], "
                        "sh[r%u+(r%u*r%u+r%u)], r%u); r%u = r%u + r%u",
                        s.r[8], s.r[0], s.r[1], s.r[2], s.r[6],
                        s.r[3], s.r[4], s.r[5], s.r[7], s.r[9],
                        s.r[10], s.r[11]);
            break;
          case SuperKind::Count:
            body = strf("?%u", o.aux);
            break;
        }
        if (o.op == MOp::Super)
            return "super " + body;
        return strf("superloop while (int r%u < int r%u) [r%u, @%u] ",
                    s.loopB, s.loopC, s.loopFlag, s.exitPc) +
               body;
      }
      case MOp::Barrier: return "barrier";
      case MOp::Ret: return "ret";
      default: break;
    }
    return strf("%s a=%u b=%u c=%u d=%u e=%u aux=%u", mopName(o.op),
                o.a, o.b, o.c, o.d, o.e, o.aux);
}

std::string
disassembleMicro(const MicroKernel &mk)
{
    std::string out;
    out += strf("; %zu micro-ops, %zu hoisted template ops, "
                "%u pairs fused, %zu superops%s\n",
                mk.ops.size(), mk.templateOps.size(), mk.fusedPairs,
                mk.supers.size(),
                mk.skipRegZeroInit ? ", zero-init skipped" : "");
    // Template ops execute once per dispatch; show them with a 't'
    // prefix so listings make the hoist visible.
    MicroKernel tmpl;
    tmpl.ops = mk.templateOps;
    tmpl.costFrom.assign(tmpl.ops.size(), 0);
    for (size_t i = 0; i < tmpl.ops.size(); ++i)
        out += strf("  t%-3zu: %s\n", i,
                    renderMicroOp(tmpl, static_cast<uint32_t>(i))
                        .c_str());
    for (size_t i = 0; i < mk.ops.size(); ++i)
        out += strf("  %4zu: %-55s ; cost_from %u\n", i,
                    renderMicroOp(mk, static_cast<uint32_t>(i)).c_str(),
                    mk.costFrom[i]);
    return out;
}

} // namespace vcb::sim

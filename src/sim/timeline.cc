#include "sim/timeline.h"

#include <algorithm>

#include "common/logging.h"

namespace vcb::sim {

Timeline::Timeline(uint32_t queue_count)
{
    VCB_ASSERT(queue_count >= 1, "timeline needs at least one queue");
    queues.assign(queue_count, 0.0);
    busy.assign(queue_count, 0.0);
}

void
Timeline::hostAdvance(double ns)
{
    VCB_ASSERT(ns >= 0, "negative host advance");
    hostNs += ns;
}

double
Timeline::enqueue(uint32_t queue, double device_ns)
{
    VCB_ASSERT(queue < queues.size(), "queue %u out of range", queue);
    VCB_ASSERT(device_ns >= 0, "negative device work");
    double start = std::max(queues[queue], hostNs);
    queues[queue] = start + device_ns;
    busy[queue] += device_ns;
    return queues[queue];
}

double
Timeline::queueReady(uint32_t queue) const
{
    VCB_ASSERT(queue < queues.size(), "queue %u out of range", queue);
    return queues[queue];
}

void
Timeline::hostWaitUntil(double t, double wakeup_ns)
{
    hostNs = std::max(hostNs, t) + wakeup_ns;
}

void
Timeline::hostWaitQueue(uint32_t queue, double wakeup_ns)
{
    hostWaitUntil(queueReady(queue), wakeup_ns);
}

void
Timeline::hostWaitAll(double wakeup_ns)
{
    double latest = 0;
    for (double q : queues)
        latest = std::max(latest, q);
    hostWaitUntil(latest, wakeup_ns);
}

uint32_t
Timeline::queueCount() const
{
    return static_cast<uint32_t>(queues.size());
}

double
Timeline::busyNs(uint32_t queue) const
{
    VCB_ASSERT(queue < busy.size(), "queue %u out of range", queue);
    return busy[queue];
}

double
Timeline::busyTotalNs() const
{
    double total = 0;
    for (double b : busy)
        total += b;
    return total;
}

void
Timeline::queueWaitUntil(uint32_t queue, double t)
{
    VCB_ASSERT(queue < queues.size(), "queue %u out of range", queue);
    queues[queue] = std::max(queues[queue], t);
}

} // namespace vcb::sim

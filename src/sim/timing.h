/**
 * @file
 * Timing model: converts execution statistics into simulated time.
 *
 * See docs/ARCHITECTURE.md ("Timing model").  A dispatch's device
 * time is the maximum of
 * its compute-bound, DRAM-bandwidth-bound, DRAM-transaction-bound and
 * on-chip-bound components, plus fixed per-dispatch latency.  The two
 * DRAM bounds are what reproduce the strided-bandwidth figures: useful
 * bytes limit unit-stride throughput (scaled by the per-API memory
 * efficiency) while the transaction-issue limit governs wide strides
 * (scaled by the per-API transaction efficiency).
 */

#ifndef VCB_SIM_TIMING_H
#define VCB_SIM_TIMING_H

#include "sim/device.h"
#include "sim/dispatch.h"
#include "sim/kernel.h"

namespace vcb::sim {

/** Pure functions; all results in nanoseconds. */
struct TimingModel
{
    /** Device-side execution time of one dispatch (excludes fixed
     *  per-dispatch latency, which the engine adds).  `dram_derate`
     *  < 1 scales down the effective DRAM throughput — the UVM
     *  oversubscription penalty (sim/uvm.h). */
    static double kernelExecNs(const DeviceSpec &dev,
                               const CompiledKernel &kernel,
                               const DispatchStats &stats,
                               double dram_derate = 1.0);

    /** Host<->device copy time for a byte count. */
    static double transferNs(const DeviceSpec &dev, uint64_t bytes);

    /** Device-local copy time (transfer queue / copy engine). */
    static double deviceCopyNs(const DeviceSpec &dev, uint64_t bytes);
};

} // namespace vcb::sim

#endif // VCB_SIM_TIMING_H

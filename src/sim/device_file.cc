#include "sim/device_file.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/strutil.h"

namespace vcb::sim {

namespace {

// ---------------------------------------------------------------------------
// Field table: one description per serializable field, shared by the
// serializer and the parser so the two can never drift.  The pointers
// are into one specific DeviceSpec, so tables are built per call.
// ---------------------------------------------------------------------------

enum class FieldKind { Str, Bool, U32, U64, Dbl };

struct FieldRef
{
    const char *key;
    FieldKind kind;
    void *p;
    /** Numeric validity range; min is exclusive when strictMin. */
    double min = 0, max = 0;
    bool strictMin = false;
};

std::vector<FieldRef>
deviceFields(DeviceSpec &d)
{
    return {
        {"name", FieldKind::Str, &d.name},
        {"vendor", FieldKind::Str, &d.vendor},
        {"platform", FieldKind::Str, &d.platform},
        {"mobile", FieldKind::Bool, &d.mobile},
        {"compute_units", FieldKind::U32, &d.computeUnits, 1, 4096},
        {"simd_width", FieldKind::U32, &d.simdWidth, 1, 4096},
        {"warp_width", FieldKind::U32, &d.warpWidth, 1, 4096},
        {"clock_ghz", FieldKind::Dbl, &d.clockGhz, 0, 100, true},
        {"peak_bw_gbs", FieldKind::Dbl, &d.peakBwGBs, 0, 1e5, true},
        {"shared_bw_gbs", FieldKind::Dbl, &d.sharedBwGBs, 0, 1e6, true},
        {"cache_line_bytes", FieldKind::U32, &d.cacheLineBytes, 4, 4096},
        {"tx_per_ns", FieldKind::Dbl, &d.txPerNs, 0, 1e4, true},
        {"dispatch_latency_ns", FieldKind::Dbl, &d.dispatchLatencyNs, 0,
         1e9},
        {"atomic_ns_each", FieldKind::Dbl, &d.atomicNsEach, 0, 1e6},
        {"device_heap_bytes", FieldKind::U64, &d.deviceHeapBytes, 1,
         1e15},
        {"host_visible_heap_bytes", FieldKind::U64,
         &d.hostVisibleHeapBytes, 1, 1e15},
        {"host_copy_bw_gbs", FieldKind::Dbl, &d.hostCopyBwGBs, 0, 1e5,
         true},
        {"unified_memory", FieldKind::Bool, &d.unifiedMemory},
        {"max_push_bytes", FieldKind::U32, &d.maxPushBytes, 4, 65536},
        {"max_workgroup_invocations", FieldKind::U32,
         &d.maxWorkgroupInvocations, 1, 1u << 20},
        {"compute_queue_count", FieldKind::U32, &d.computeQueueCount, 1,
         256},
        {"transfer_queue_count", FieldKind::U32, &d.transferQueueCount,
         1, 256},
    };
}

/** UVM paging fields: serialized (and hashed) only for unified-memory
 *  parts; the parser rejects them on `unified_memory = false` specs. */
std::vector<FieldRef>
uvmFields(DeviceSpec &d)
{
    return {
        {"uvm_oversubscription", FieldKind::Dbl, &d.uvmOversubscription,
         1, 256},
        {"uvm_page_bytes", FieldKind::U32, &d.uvmPageBytes, 256,
         1u << 24},
        {"uvm_migration_ns_per_page", FieldKind::Dbl,
         &d.uvmMigrationNsPerPage, 0, 1e9},
        {"uvm_fault_latency_ns", FieldKind::Dbl, &d.uvmFaultLatencyNs,
         0, 1e9},
        {"uvm_oversub_bw_derate", FieldKind::Dbl, &d.uvmOversubBwDerate,
         0, 1, true},
    };
}

std::vector<FieldRef>
profileFields(DriverProfile &p)
{
    return {
        {"available", FieldKind::Bool, &p.available},
        {"version", FieldKind::Str, &p.version},
        {"launch_overhead_ns", FieldKind::Dbl, &p.launchOverheadNs, 0,
         1e12},
        {"submit_overhead_ns", FieldKind::Dbl, &p.submitOverheadNs, 0,
         1e12},
        {"sync_wakeup_ns", FieldKind::Dbl, &p.syncWakeupNs, 0, 1e12},
        {"jit_build_ns_per_insn", FieldKind::Dbl, &p.jitBuildNsPerInsn,
         0, 1e12},
        {"pipeline_compile_ns_per_insn", FieldKind::Dbl,
         &p.pipelineCompileNsPerInsn, 0, 1e12},
        {"dispatch_setup_ns", FieldKind::Dbl, &p.dispatchSetupNs, 0,
         1e12},
        {"barrier_ns", FieldKind::Dbl, &p.barrierNs, 0, 1e12},
        {"bind_pipeline_ns", FieldKind::Dbl, &p.bindPipelineNs, 0, 1e12},
        {"bind_desc_set_ns", FieldKind::Dbl, &p.bindDescSetNs, 0, 1e12},
        {"push_constant_ns", FieldKind::Dbl, &p.pushConstantNs, 0, 1e12},
        {"local_mem_promotion", FieldKind::Bool, &p.localMemPromotion},
        {"code_quality", FieldKind::Dbl, &p.codeQuality, 0, 100, true},
        {"mem_efficiency", FieldKind::Dbl, &p.memEfficiency, 0, 1, true},
        {"tx_efficiency", FieldKind::Dbl, &p.txEfficiency, 0, 100, true},
        {"push_constants_as_buffer_bind", FieldKind::Bool,
         &p.pushConstantsAsBufferBind},
        {"shared_mem_codegen_factor", FieldKind::Dbl,
         &p.sharedMemCodegenFactor, 0, 100, true},
        {"shared_kernel_time_derate", FieldKind::Dbl,
         &p.sharedKernelTimeDerate, 0, 1000, true},
    };
}

const char *kSectionNames[apiCount] = {"vulkan", "opencl", "cuda"};

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/** Shortest decimal form that parses back to the identical double, so
 *  a serialize -> parse round trip is bit-exact. */
std::string
fmtDouble(double v)
{
    for (int prec = 15; prec <= 17; ++prec) {
        std::string s = strprintf("%.*g", prec, v);
        if (std::strtod(s.c_str(), nullptr) == v)
            return s;
    }
    return strprintf("%.17g", v);
}

std::string
fieldValue(const FieldRef &f)
{
    switch (f.kind) {
    case FieldKind::Str:
        return *static_cast<std::string *>(f.p);
    case FieldKind::Bool:
        return *static_cast<bool *>(f.p) ? "true" : "false";
    case FieldKind::U32:
        return strprintf("%u", *static_cast<uint32_t *>(f.p));
    case FieldKind::U64:
        return strprintf("%llu", (unsigned long long)*static_cast<
                                     uint64_t *>(f.p));
    case FieldKind::Dbl:
        return fmtDouble(*static_cast<double *>(f.p));
    }
    panic("unreachable field kind");
}

void
emitFields(std::string &out, const std::vector<FieldRef> &fields)
{
    for (const FieldRef &f : fields)
        out += strprintf("%s = %s\n", f.key, fieldValue(f).c_str());
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/** Parser state: field tables point into `spec`. */
struct Parser
{
    DeviceSpec spec;
    std::string err;

    bool fail(int line, const std::string &msg)
    {
        err = line > 0 ? strprintf("line %d: %s", line, msg.c_str())
                       : msg;
        return false;
    }

    bool setField(const FieldRef &f, const std::string &value, int line);
    bool setListField(DriverProfile &p, const std::string &key,
                      const std::string &value, int line, bool *handled);
    bool parse(const std::string &text);
};

bool
Parser::setField(const FieldRef &f, const std::string &value, int line)
{
    auto rangeFail = [&](const std::string &got) {
        const char *open = f.strictMin ? "(" : "[";
        return fail(line,
                    strprintf("'%s' out of range: %s (must be in %s%s, "
                              "%s])",
                              f.key, got.c_str(), open,
                              fmtDouble(f.min).c_str(),
                              fmtDouble(f.max).c_str()));
    };
    switch (f.kind) {
    case FieldKind::Str:
        *static_cast<std::string *>(f.p) = value;
        return true;
    case FieldKind::Bool:
        if (value == "true")
            *static_cast<bool *>(f.p) = true;
        else if (value == "false")
            *static_cast<bool *>(f.p) = false;
        else
            return fail(line, strprintf("'%s' expects true or false, "
                                        "got '%s'",
                                        f.key, value.c_str()));
        return true;
    case FieldKind::U32:
    case FieldKind::U64: {
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(value.c_str(), &end, 10);
        if (value.empty() || *end != '\0' || errno != 0 ||
            value[0] == '-')
            return fail(line, strprintf("'%s' expects an unsigned "
                                        "integer, got '%s'",
                                        f.key, value.c_str()));
        if (static_cast<double>(v) < f.min ||
            static_cast<double>(v) > f.max)
            return rangeFail(value);
        if (f.kind == FieldKind::U32)
            *static_cast<uint32_t *>(f.p) = static_cast<uint32_t>(v);
        else
            *static_cast<uint64_t *>(f.p) = v;
        return true;
    }
    case FieldKind::Dbl: {
        char *end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (value.empty() || *end != '\0' || !std::isfinite(v))
            return fail(line, strprintf("'%s' expects a finite number, "
                                        "got '%s'",
                                        f.key, value.c_str()));
        bool below = f.strictMin ? v <= f.min : v < f.min;
        if (below || v > f.max)
            return rangeFail(value);
        *static_cast<double *>(f.p) = v;
        return true;
    }
    }
    panic("unreachable field kind");
}

/** The two list-valued profile keys, serialized as comma lists. */
bool
Parser::setListField(DriverProfile &p, const std::string &key,
                     const std::string &value, int line, bool *handled)
{
    *handled = true;
    if (key == "broken_kernels") {
        p.brokenKernels.clear();
        for (const std::string &item : split(value, ',')) {
            std::string name = trim(item);
            if (name.empty())
                return fail(line, "'broken_kernels' has an empty entry");
            p.brokenKernels.push_back(name);
        }
        return true;
    }
    if (key == "kernel_time_derates") {
        p.kernelTimeDerates.clear();
        for (const std::string &item : split(value, ',')) {
            std::string entry = trim(item);
            size_t colon = entry.find(':');
            if (colon == std::string::npos || colon == 0)
                return fail(line,
                            strprintf("'kernel_time_derates' entry "
                                      "'%s' is not name:factor",
                                      entry.c_str()));
            std::string name = trim(entry.substr(0, colon));
            std::string num = trim(entry.substr(colon + 1));
            char *end = nullptr;
            double factor = std::strtod(num.c_str(), &end);
            if (num.empty() || *end != '\0' || !std::isfinite(factor) ||
                factor <= 0)
                return fail(line,
                            strprintf("'kernel_time_derates' factor "
                                      "'%s' must be a positive number",
                                      num.c_str()));
            p.kernelTimeDerates.push_back({name, factor});
        }
        return true;
    }
    *handled = false;
    return true;
}

bool
Parser::parse(const std::string &text)
{
    auto dev_fields = deviceFields(spec);
    auto uvm_fields = uvmFields(spec);
    // -1 = device preamble, else the api index of the open section.
    int section = -1;
    bool seen_section[apiCount] = {false, false, false};
    std::vector<std::string> seen_keys;
    // First UVM key seen, validated against unified_memory at the end
    // of the parse (the keys may precede the unified_memory line).
    int uvm_line = 0;
    std::string uvm_key;

    std::istringstream in(text);
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
        ++line;
        std::string s = trim(raw);
        if (s.empty() || s[0] == '#')
            continue;

        if (s.front() == '[') {
            if (s.back() != ']')
                return fail(line, strprintf("malformed section header "
                                            "'%s'",
                                            s.c_str()));
            std::string name = toLower(trim(s.substr(1, s.size() - 2)));
            int api = -1;
            for (int a = 0; a < apiCount; ++a)
                if (name == kSectionNames[a])
                    api = a;
            if (api < 0)
                return fail(line, strprintf("unknown section '[%s]' "
                                            "(expected [vulkan], "
                                            "[opencl] or [cuda])",
                                            name.c_str()));
            if (seen_section[api])
                return fail(line, strprintf("duplicate section '[%s]'",
                                            name.c_str()));
            seen_section[api] = true;
            section = api;
            seen_keys.clear();
            continue;
        }

        size_t eq = s.find('=');
        if (eq == std::string::npos)
            return fail(line, strprintf("expected 'key = value' or a "
                                        "'[section]' header, got '%s'",
                                        s.c_str()));
        std::string key = trim(s.substr(0, eq));
        std::string value = trim(s.substr(eq + 1));
        if (key.empty())
            return fail(line, "empty key before '='");

        for (const std::string &k : seen_keys)
            if (k == key)
                return fail(line, strprintf("duplicate key '%s'",
                                            key.c_str()));
        seen_keys.push_back(key);

        if (section < 0) {
            bool matched = false;
            for (const FieldRef &f : dev_fields)
                if (key == f.key) {
                    matched = true;
                    if (!setField(f, value, line))
                        return false;
                    break;
                }
            for (const FieldRef &f : uvm_fields)
                if (!matched && key == f.key) {
                    matched = true;
                    if (!setField(f, value, line))
                        return false;
                    if (uvm_line == 0) {
                        uvm_line = line;
                        uvm_key = key;
                    }
                    break;
                }
            if (!matched)
                return fail(line,
                            strprintf("unknown device key '%s' (driver "
                                      "keys belong in an API section)",
                                      key.c_str()));
            continue;
        }

        DriverProfile &prof = spec.apis[section];
        bool handled = false;
        if (!setListField(prof, key, value, line, &handled))
            return false;
        if (handled)
            continue;
        bool matched = false;
        for (const FieldRef &f : profileFields(prof))
            if (key == f.key) {
                matched = true;
                if (!setField(f, value, line))
                    return false;
                break;
            }
        if (!matched)
            return fail(line, strprintf("unknown driver key '%s' in "
                                        "section '[%s]'",
                                        key.c_str(),
                                        kSectionNames[section]));
    }

    if (spec.name.empty())
        return fail(0, "device spec is missing required key 'name'");
    if (uvm_line != 0 && !spec.unifiedMemory)
        return fail(uvm_line,
                    strprintf("'%s' requires unified_memory = true",
                              uvm_key.c_str()));
    return true;
}

} // namespace

std::string
serializeDevice(const DeviceSpec &d)
{
    // The table wants mutable access for parsing; serialization never
    // writes, so a local copy keeps the API const-correct.
    DeviceSpec copy = d;
    std::string out;
    out += "# VComputeBench device spec.  Field semantics and "
           "calibration notes:\n";
    out += "# docs/DEVICE_MODEL.md.  Regenerate canonical form with "
           "vcb_report\n";
    out += "# --write-builtin-specs (built-in parts only).\n\n";
    emitFields(out, deviceFields(copy));
    if (copy.unifiedMemory)
        emitFields(out, uvmFields(copy));

    for (int a = 0; a < apiCount; ++a) {
        DriverProfile &p = copy.apis[a];
        out += strprintf("\n[%s]\n", kSectionNames[a]);
        if (!p.available) {
            // An unavailable API keeps profile defaults; one line says
            // everything (the paper's "-" table cells).
            out += "available = false\n";
            continue;
        }
        emitFields(out, profileFields(p));
        if (!p.brokenKernels.empty()) {
            std::string joined;
            for (const std::string &k : p.brokenKernels)
                joined += (joined.empty() ? "" : ",") + k;
            out += strprintf("broken_kernels = %s\n", joined.c_str());
        }
        if (!p.kernelTimeDerates.empty()) {
            std::string joined;
            for (const auto &[name, factor] : p.kernelTimeDerates)
                joined += (joined.empty() ? "" : ",") + name + ":" +
                          fmtDouble(factor);
            out += strprintf("kernel_time_derates = %s\n",
                             joined.c_str());
        }
    }
    return out;
}

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnvBytes(uint64_t h, const void *data, size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
fnvStr(uint64_t h, const std::string &s)
{
    // Length-prefixed so adjacent strings cannot alias.
    uint64_t len = s.size();
    h = fnvBytes(h, &len, sizeof(len));
    return fnvBytes(h, s.data(), s.size());
}

uint64_t
hashFields(uint64_t h, const std::vector<FieldRef> &fields)
{
    for (const FieldRef &f : fields) {
        h = fnvBytes(h, f.key, std::strlen(f.key));
        switch (f.kind) {
          case FieldKind::Str:
            h = fnvStr(h, *static_cast<const std::string *>(f.p));
            break;
          case FieldKind::Bool: {
            unsigned char v =
                *static_cast<const bool *>(f.p) ? 1 : 0;
            h = fnvBytes(h, &v, 1);
            break;
          }
          case FieldKind::U32:
            h = fnvBytes(h, f.p, sizeof(uint32_t));
            break;
          case FieldKind::U64:
            h = fnvBytes(h, f.p, sizeof(uint64_t));
            break;
          case FieldKind::Dbl:
            // Hash the bit pattern: exact, like the shortest-exact
            // decimal form in the text serializer.
            h = fnvBytes(h, f.p, sizeof(double));
            break;
        }
    }
    return h;
}

} // namespace

uint64_t
hashDevice(const DeviceSpec &d)
{
    // The field tables want mutable access (the parser writes through
    // them); hashing only reads, so the const_cast is sound and spares
    // the deep copy serializeDevice makes.
    DeviceSpec &mut = const_cast<DeviceSpec &>(d);
    uint64_t h = hashFields(kFnvOffset, deviceFields(mut));
    // Mirror serializeDevice: UVM fields contribute only on unified
    // parts, so hard-cap and UVM specs can never alias.
    if (mut.unifiedMemory)
        h = hashFields(h, uvmFields(mut));
    for (int a = 0; a < apiCount; ++a) {
        DriverProfile &p = mut.apis[a];
        h = fnvBytes(h, kSectionNames[a], std::strlen(kSectionNames[a]));
        if (!p.available) {
            // Mirror serializeDevice: an unavailable API contributes
            // only its availability.
            unsigned char v = 0;
            h = fnvBytes(h, &v, 1);
            continue;
        }
        h = hashFields(h, profileFields(p));
        for (const std::string &k : p.brokenKernels)
            h = fnvStr(h, k);
        for (const auto &[name, factor] : p.kernelTimeDerates) {
            h = fnvStr(h, name);
            h = fnvBytes(h, &factor, sizeof(factor));
        }
    }
    return h;
}

std::optional<DeviceSpec>
parseDevice(const std::string &text, std::string *error)
{
    Parser p;
    if (!p.parse(text)) {
        if (error)
            *error = p.err;
        return std::nullopt;
    }
    return p.spec;
}

DeviceSpec
loadDeviceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read device spec '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    std::string err;
    auto spec = parseDevice(text.str(), &err);
    if (!spec)
        fatal("%s: %s", path.c_str(), err.c_str());
    return *spec;
}

std::vector<DeviceSpec>
loadDeviceDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        fatal("device spec directory '%s' does not exist", dir.c_str());

    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.is_regular_file() &&
            entry.path().extension() == ".dev")
            paths.push_back(entry.path().string());
    if (paths.empty())
        fatal("no *.dev specs in '%s'", dir.c_str());
    std::sort(paths.begin(), paths.end());

    std::vector<DeviceSpec> devices;
    for (const std::string &path : paths) {
        DeviceSpec d = loadDeviceFile(path);
        for (const DeviceSpec &prev : devices)
            if (prev.name == d.name)
                fatal("%s: duplicate device name '%s'", path.c_str(),
                      d.name.c_str());
        devices.push_back(std::move(d));
    }
    return devices;
}

} // namespace vcb::sim

#include "sim/compile_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "sim/device_file.h"
#include "sim/kernel.h"

namespace vcb::sim {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t
fnv1a(const void *data, size_t bytes, uint64_t h = kFnvOffset)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** -1 = not read yet; 0 = off; 1 = on. */
std::atomic<int> g_cacheEnabled{-1};

/** Parsed VCB_COMPILE_CACHE: enabled flag + optional capacity. */
struct CacheEnv
{
    bool enabled = true;
    size_t capacity = 1024;
};

CacheEnv
readCacheEnv()
{
    CacheEnv env;
    const char *v = std::getenv("VCB_COMPILE_CACHE");
    if (!v || !*v)
        return env;
    std::string s(v);
    if (s == "0" || s == "off" || s == "OFF") {
        env.enabled = false;
        return env;
    }
    if (s == "1" || s == "on" || s == "ON")
        return env;
    char *end = nullptr;
    long n = std::strtol(v, &end, 10);
    if (end && *end == '\0' && n > 0) {
        env.capacity = static_cast<size_t>(n);
        return env;
    }
    warn("ignoring invalid VCB_COMPILE_CACHE='%s' "
         "(want 0/off, 1/on or a positive entry count)",
         v);
    return env;
}

} // namespace

uint64_t
hashModule(const spirv::Module &m)
{
    std::vector<uint32_t> words = m.serialize();
    return fnv1a(words.data(), words.size() * sizeof(uint32_t));
}

uint64_t
deviceFingerprint(const DeviceSpec &dev)
{
    // Table-driven field hash: equal iff serializeDevice() text is
    // equal, but with no text formatting on the per-compile hot path.
    return hashDevice(dev);
}

CompileCacheKey
makeCompileCacheKey(const spirv::Module &m, const DeviceSpec &dev,
                    Api api, const LowerOptions &opt)
{
    CompileCacheKey key;
    key.moduleHash = hashModule(m);
    key.deviceFp = deviceFingerprint(dev);
    uint32_t cfg = static_cast<uint32_t>(api);
    cfg |= (opt.fuseCmpBranch ? 1u : 0u) << 2;
    cfg |= (opt.fuseConstAlu ? 1u : 0u) << 3;
    cfg |= (opt.fuseAddrMem ? 1u : 0u) << 4;
    cfg |= (opt.fuseMulAdd ? 1u : 0u) << 5;
    cfg |= (opt.fuseSuperops ? 1u : 0u) << 6;
    // lowerKernel gates superop formation on the VCB_SUPEROPS runtime
    // switch on top of LowerOptions, so it is part of the content key.
    cfg |= (superopsEnabled() ? 1u : 0u) << 7;
    key.config = cfg;
    return key;
}

size_t
CompileCache::Shard::KeyHash::operator()(const CompileCacheKey &k) const
{
    uint64_t h = kFnvOffset;
    h = fnv1a(&k.moduleHash, sizeof(k.moduleHash), h);
    h = fnv1a(&k.deviceFp, sizeof(k.deviceFp), h);
    h = fnv1a(&k.config, sizeof(k.config), h);
    return static_cast<size_t>(h);
}

CompileCache::CompileCache(size_t capacity, size_t shard_count)
    : shards(shard_count ? shard_count : 1),
      totalCapacity(capacity ? capacity : 1)
{
    perShardCapacity =
        std::max<size_t>(1, totalCapacity / shards.size());
}

CompileCache &
CompileCache::global()
{
    static CompileCache cache(readCacheEnv().capacity, 8);
    return cache;
}

bool
CompileCache::globalEnabled()
{
    int v = g_cacheEnabled.load(std::memory_order_relaxed);
    if (v < 0) {
        v = readCacheEnv().enabled ? 1 : 0;
        g_cacheEnabled.store(v, std::memory_order_relaxed);
    }
    return v != 0;
}

void
CompileCache::setGlobalEnabled(int enabled)
{
    g_cacheEnabled.store(enabled < 0 ? -1 : (enabled ? 1 : 0),
                         std::memory_order_relaxed);
}

CompileCache::Shard &
CompileCache::shardFor(const CompileCacheKey &key)
{
    return shards[Shard::KeyHash{}(key) % shards.size()];
}

std::unique_ptr<CompiledKernel>
CompileCache::lookup(const CompileCacheKey &key)
{
    Shard &shard = shardFor(key);
    std::shared_ptr<const CompiledKernel> found;
    {
        std::lock_guard<std::mutex> lk(shard.mtx);
        auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            found = it->second->kernel;
        }
    }
    {
        std::lock_guard<std::mutex> lk(statsMtx);
        if (found)
            ++counters.hits;
        else
            ++counters.misses;
    }
    if (!found)
        return nullptr;
    // Copy the metadata, share the program: CompiledKernel::micro is
    // an immutable shared_ptr, so this copy aliases the cached
    // micro-op stream instead of duplicating it.  Callers own their
    // kernel and may re-lower it — lowerKernel publishes a fresh
    // program into the copy, never mutating the shared one.
    return std::make_unique<CompiledKernel>(*found);
}

void
CompileCache::insert(const CompileCacheKey &key, const CompiledKernel &k)
{
    Shard &shard = shardFor(key);
    uint64_t evicted = 0;
    {
        std::lock_guard<std::mutex> lk(shard.mtx);
        auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            // Refresh in place (identical content by construction).
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            it->second->kernel =
                std::make_shared<const CompiledKernel>(k);
        } else {
            shard.lru.push_front(
                Entry{key, std::make_shared<const CompiledKernel>(k)});
            shard.index[key] = shard.lru.begin();
            while (shard.lru.size() > perShardCapacity) {
                shard.index.erase(shard.lru.back().key);
                shard.lru.pop_back();
                ++evicted;
            }
        }
    }
    {
        std::lock_guard<std::mutex> lk(statsMtx);
        ++counters.insertions;
        counters.evictions += evicted;
    }
}

void
CompileCache::recordCompileCpu(uint64_t ns)
{
    compileCalls.fetch_add(1, std::memory_order_relaxed);
    compileCpuNs.fetch_add(ns, std::memory_order_relaxed);
}

CompileCacheStats
CompileCache::stats() const
{
    CompileCacheStats out;
    {
        std::lock_guard<std::mutex> lk(statsMtx);
        out = counters;
    }
    uint64_t entries = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lk(shard.mtx);
        entries += shard.lru.size();
    }
    out.entries = entries;
    out.compileCalls = compileCalls.load(std::memory_order_relaxed);
    out.compileCpuNs = compileCpuNs.load(std::memory_order_relaxed);
    return out;
}

void
CompileCache::clear()
{
    for (Shard &shard : shards) {
        std::lock_guard<std::mutex> lk(shard.mtx);
        shard.index.clear();
        shard.lru.clear();
    }
    compileCalls.store(0, std::memory_order_relaxed);
    compileCpuNs.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(statsMtx);
    counters = CompileCacheStats{};
}

} // namespace vcb::sim

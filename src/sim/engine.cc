#include "sim/engine.h"

#include <atomic>
#include <mutex>
#include <set>

#include "common/logging.h"
#include "common/threadpool.h"
#include "sim/interpreter.h"
#include "sim/sampler.h"
#include "sim/timing.h"

namespace vcb::sim {

namespace {

/** Decompose a linear workgroup index into (x, y, z). */
inline void
unflatten(uint64_t idx, const uint32_t groups[3], uint32_t &x,
          uint32_t &y, uint32_t &z)
{
    x = static_cast<uint32_t>(idx % groups[0]);
    y = static_cast<uint32_t>((idx / groups[0]) % groups[1]);
    z = static_cast<uint32_t>(idx / (uint64_t(groups[0]) * groups[1]));
}

} // namespace

DispatchResult
ExecutionEngine::dispatch(const DispatchContext &ctx)
{
    const CompiledKernel &k = *ctx.kernel;
    VCB_ASSERT(ctx.kernel != nullptr, "dispatch without kernel");
    VCB_ASSERT(ctx.groups[0] >= 1 && ctx.groups[1] >= 1 &&
                   ctx.groups[2] >= 1,
               "kernel '%s': zero workgroup count", k.module.name.c_str());

    // Every declared binding must be backed by a buffer.
    for (const auto &decl : k.module.bindings) {
        VCB_ASSERT(decl.binding < ctx.buffers.size() &&
                       ctx.buffers[decl.binding].data != nullptr,
                   "kernel '%s': binding %u has no buffer bound",
                   k.module.name.c_str(), decl.binding);
    }
    VCB_ASSERT(ctx.pushWords >= k.module.pushWords,
               "kernel '%s': push constants missing (%u of %u words)",
               k.module.name.c_str(), ctx.pushWords, k.module.pushWords);

    uint64_t total = uint64_t(ctx.groups[0]) * ctx.groups[1] *
                     ctx.groups[2];

    // Pick up to four spread-out sample workgroups for the coalescing
    // model (always including workgroup 0).
    std::set<uint64_t> sample_set;
    sample_set.insert(0);
    if (total > 1) {
        sample_set.insert(total / 4);
        sample_set.insert(total / 2);
        sample_set.insert((3 * total) / 4);
    }

    CoalesceSampler sampler(k.numSites, dev.warpWidth, dev.cacheLineBytes,
                            k.localCount());

    // Shared accumulation across workers.
    std::mutex merge_mtx;
    DispatchStats stats;
    std::vector<uint64_t> site_exec(k.numSites, 0);

    auto merge = [&](const WorkgroupStats &ws) {
        std::lock_guard<std::mutex> lk(merge_mtx);
        stats.laneCycles += ws.laneCycles;
        stats.sharedAccesses += ws.sharedAccesses;
        stats.atomicOps += ws.atomicOps;
        stats.barriers += ws.barriers;
        stats.invocations += ws.invocations;
        for (uint32_t s = 0; s < k.numSites; ++s)
            site_exec[s] += ws.siteExec[s];
    };

    // Sampled workgroups run serially first (the sampler is not
    // thread-safe); workgroups are independent, so order is irrelevant
    // to results.
    {
        Interpreter interp;
        interp.prepare(ctx);
        WorkgroupStats ws;
        ws.siteExec.assign(k.numSites, 0);
        for (uint64_t idx : sample_set) {
            uint32_t x, y, z;
            unflatten(idx, ctx.groups, x, y, z);
            interp.runWorkgroup(x, y, z, ws, &sampler);
        }
        merge(ws);
    }

    // Remaining workgroups in parallel, batched per worker invocation.
    if (total > sample_set.size()) {
        static thread_local Interpreter tls_interp;
        static thread_local WorkgroupStats tls_ws;
        // Collect non-sampled indices count; iterate all and skip.
        ThreadPool::global().parallelFor(total, [&](uint64_t idx) {
            if (sample_set.count(idx))
                return;
            tls_interp.prepare(ctx);
            tls_ws.siteExec.assign(k.numSites, 0);
            tls_ws.laneCycles = 0;
            tls_ws.sharedAccesses = 0;
            tls_ws.atomicOps = 0;
            tls_ws.barriers = 0;
            tls_ws.invocations = 0;
            uint32_t x, y, z;
            unflatten(idx, ctx.groups, x, y, z);
            tls_interp.runWorkgroup(x, y, z, tls_ws, nullptr);
            merge(tls_ws);
        });
    }

    // Fold site execution counts into DRAM/on-chip traffic using the
    // sampled coalescing ratios.
    bool promote = k.promoted;
    for (uint32_t s = 0; s < k.numSites; ++s) {
        uint64_t exec = site_exec[s];
        if (exec == 0)
            continue;
        if (promote && k.sitePromote[s]) {
            stats.promotedAccesses += exec;
        } else {
            stats.dramAccesses += exec;
            stats.dramTransactions +=
                static_cast<double>(exec) * sampler.ratioFor(s);
        }
    }

    DispatchResult result;
    result.stats = stats;
    const DriverProfile &prof = dev.profile(k.api);
    double derate = prof.kernelTimeFactor(k.module.name,
                                          k.module.sharedWords > 0);
    result.kernelNs = dev.dispatchLatencyNs + prof.dispatchSetupNs +
                      derate * TimingModel::kernelExecNs(dev, k, stats);
    return result;
}

} // namespace vcb::sim

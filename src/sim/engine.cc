#include "sim/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/logging.h"
#include "common/threadpool.h"
#include "sim/interpreter.h"
#include "sim/sampler.h"
#include "sim/timing.h"

namespace vcb::sim {

namespace {

/** Decompose a linear workgroup index into (x, y, z). */
inline void
unflatten(uint64_t idx, const uint32_t groups[3], uint32_t &x,
          uint32_t &y, uint32_t &z)
{
    x = static_cast<uint32_t>(idx % groups[0]);
    y = static_cast<uint32_t>((idx / groups[0]) % groups[1]);
    z = static_cast<uint32_t>(idx / (uint64_t(groups[0]) * groups[1]));
}

/** Per-participant execution state, scoped to one dispatch so buffers
 *  are released when the dispatch ends (a thread_local interpreter
 *  would pin the last dispatch's register/shared vectors forever). */
struct WorkerState
{
    Interpreter interp;
    WorkgroupStats ws;
    bool active = false;
};

std::atomic<uint64_t> g_workgroupsExecuted{0};
std::atomic<uint64_t> g_dispatchWallNs{0};
/** Same wall time, attributed to the thread that called dispatch():
 *  valid because dispatch() joins its pool fan-out before returning,
 *  so the whole dispatch elapses on the calling thread.  Lets sweep
 *  workers (src/harness/sweep.cc) ledger per-cell simulator time
 *  without tearing the process-wide counter apart. */
thread_local uint64_t t_dispatchWallNs = 0;
std::atomic<uint64_t>
    g_tierWorkgroups[static_cast<size_t>(ExecTier::Count)]{};

} // namespace

uint64_t
executedWorkgroupCount()
{
    return g_workgroupsExecuted.load(std::memory_order_relaxed);
}

uint64_t
dispatchWallNs()
{
    return g_dispatchWallNs.load(std::memory_order_relaxed);
}

uint64_t
dispatchWallNsThisThread()
{
    return t_dispatchWallNs;
}

uint64_t
tierWorkgroupCount(ExecTier t)
{
    return g_tierWorkgroups[static_cast<size_t>(t)].load(
        std::memory_order_relaxed);
}

DispatchResult
ExecutionEngine::dispatch(const DispatchContext &ctx)
{
    const auto wall_start = std::chrono::steady_clock::now();
    struct WallScope
    {
        std::chrono::steady_clock::time_point t0;
        ~WallScope()
        {
            const uint64_t ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            g_dispatchWallNs.fetch_add(ns, std::memory_order_relaxed);
            t_dispatchWallNs += ns;
        }
    } wall_scope{wall_start};

    VCB_ASSERT(ctx.kernel != nullptr, "dispatch without kernel");
    const CompiledKernel &k = *ctx.kernel;
    VCB_ASSERT(ctx.groups[0] >= 1 && ctx.groups[1] >= 1 &&
                   ctx.groups[2] >= 1,
               "kernel '%s': zero workgroup count", k.module.name.c_str());

    // Every declared binding must be backed by a buffer.
    for (const auto &decl : k.module.bindings) {
        VCB_ASSERT(decl.binding < ctx.buffers.size() &&
                       ctx.buffers[decl.binding].data != nullptr,
                   "kernel '%s': binding %u has no buffer bound",
                   k.module.name.c_str(), decl.binding);
    }
    VCB_ASSERT(ctx.pushWords >= k.module.pushWords,
               "kernel '%s': push constants missing (%u of %u words)",
               k.module.name.c_str(), ctx.pushWords, k.module.pushWords);

    uint64_t total = uint64_t(ctx.groups[0]) * ctx.groups[1] *
                     ctx.groups[2];
    g_workgroupsExecuted.fetch_add(total, std::memory_order_relaxed);

    // Pick up to four spread-out sample workgroups for the coalescing
    // model (always including workgroup 0), as a sorted unique array.
    uint64_t samples[4];
    size_t num_samples = 0;
    samples[num_samples++] = 0;
    if (total > 1) {
        for (uint64_t s : {total / 4, total / 2, (3 * total) / 4})
            if (s != samples[num_samples - 1])
                samples[num_samples++] = s;
    }

    CoalesceSampler sampler(k.numSites, dev.warpWidth, dev.cacheLineBytes,
                            k.localCount());

    DispatchStats stats;
    std::vector<uint64_t> site_exec(k.numSites, 0);

    // Workers accumulate privately; everything merges exactly once per
    // dispatch after the parallel region joins — no mutex on the
    // per-workgroup path.
    auto merge = [&](const WorkgroupStats &ws) {
        stats.laneCycles += ws.laneCycles;
        stats.sharedAccesses += ws.sharedAccesses;
        stats.atomicOps += ws.atomicOps;
        stats.barriers += ws.barriers;
        stats.invocations += ws.invocations;
        for (uint32_t s = 0; s < k.numSites; ++s)
            site_exec[s] += ws.siteExec[s];
        // Tier usage is perf telemetry, not simulation state: it goes
        // to the process-wide counters, never into DispatchStats.
        for (size_t t = 0; t < static_cast<size_t>(ExecTier::Count); ++t)
            if (ws.tierWorkgroups[t])
                g_tierWorkgroups[t].fetch_add(
                    ws.tierWorkgroups[t], std::memory_order_relaxed);
    };

    // Sampled workgroups run serially first (the sampler is not
    // thread-safe); workgroups are independent, so order is irrelevant
    // to results.
    {
        Interpreter interp;
        interp.prepare(ctx);
        WorkgroupStats ws;
        ws.siteExec.assign(k.numSites, 0);
        for (size_t i = 0; i < num_samples; ++i) {
            uint32_t x, y, z;
            unflatten(samples[i], ctx.groups, x, y, z);
            interp.runWorkgroup(x, y, z, ws, &sampler);
        }
        merge(ws);
    }

    // Remaining workgroups in parallel, whole ranges per worker
    // invocation.  prepare() and the siteExec sizing run once per
    // participant instead of once per workgroup; the sorted sample
    // array is subtracted from each range up front so the hot loop is
    // branch-free over contiguous sub-ranges.
    if (total > num_samples) {
        ThreadPool &pool = ThreadPool::global();
        std::vector<WorkerState> workers(pool.workerCount() + 1);
        pool.parallelForRange(
            total, [&](uint64_t begin, uint64_t end, unsigned w) {
                WorkerState &st = workers[w];
                if (!st.active) {
                    st.active = true;
                    st.interp.prepare(ctx);
                    st.ws.siteExec.assign(k.numSites, 0);
                }
                auto run = [&](uint64_t from, uint64_t to) {
                    for (uint64_t idx = from; idx < to; ++idx) {
                        uint32_t x, y, z;
                        unflatten(idx, ctx.groups, x, y, z);
                        st.interp.runWorkgroup(x, y, z, st.ws, nullptr);
                    }
                };
                uint64_t at = begin;
                for (size_t i = 0; i < num_samples && at < end; ++i) {
                    uint64_t s = samples[i];
                    if (s < at)
                        continue;
                    if (s >= end)
                        break;
                    run(at, s);
                    at = s + 1;
                }
                run(at, end);
            });
        for (const WorkerState &st : workers)
            if (st.active)
                merge(st.ws);
    }

    // Fold site execution counts into DRAM/on-chip traffic using the
    // sampled coalescing ratios.
    bool promote = k.promoted;
    for (uint32_t s = 0; s < k.numSites; ++s) {
        uint64_t exec = site_exec[s];
        if (exec == 0)
            continue;
        if (promote && k.sitePromote[s]) {
            stats.promotedAccesses += exec;
        } else {
            stats.dramAccesses += exec;
            stats.dramTransactions +=
                static_cast<double>(exec) * sampler.ratioFor(s);
        }
    }

    DispatchResult result;
    result.stats = stats;
    const DriverProfile &prof = dev.profile(k.api);
    double derate = prof.kernelTimeFactor(k.module.name,
                                          k.module.sharedWords > 0);
    result.kernelNs =
        dev.dispatchLatencyNs + prof.dispatchSetupNs +
        derate * TimingModel::kernelExecNs(dev, k, stats,
                                           ctx.dramDerate);
    return result;
}

} // namespace vcb::sim

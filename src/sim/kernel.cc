#include "sim/kernel.h"

#include "common/logging.h"
#include "common/strutil.h"

namespace vcb::sim {

uint32_t
CompiledKernel::localCount() const
{
    return module.localSize[0] * module.localSize[1] * module.localSize[2];
}

std::unique_ptr<CompiledKernel>
compileKernel(const spirv::Module &m, const DeviceSpec &dev, Api api,
              std::string *errorOut)
{
    auto fail = [&](const std::string &msg) {
        if (errorOut)
            *errorOut = msg;
        return nullptr;
    };

    const DriverProfile &prof = dev.profile(api);
    if (!prof.available)
        return fail(strprintf("%s is not available on %s", apiName(api),
                              dev.name.c_str()));
    if (prof.kernelBroken(m.name))
        return fail(strprintf("driver failure: %s %s rejects kernel '%s'",
                              dev.name.c_str(), apiName(api),
                              m.name.c_str()));

    std::string verr;
    if (!spirv::validate(m, &verr))
        return fail("module validation failed: " + verr);

    uint32_t local = m.localSize[0] * m.localSize[1] * m.localSize[2];
    if (local > dev.maxWorkgroupInvocations)
        return fail(strprintf("workgroup size %u exceeds device limit %u",
                              local, dev.maxWorkgroupInvocations));
    if (m.pushWords * 4 > dev.maxPushBytes)
        return fail(strprintf("push block %u B exceeds device limit %u B",
                              m.pushWords * 4, dev.maxPushBytes));

    auto k = std::make_unique<CompiledKernel>();
    k->module = m;
    k->insns = m.decode();
    k->api = api;

    // Build the global-memory site table.
    k->siteOfInsn.assign(k->insns.size(), 0);
    bool anyHint = false;
    for (size_t i = 0; i < k->insns.size(); ++i) {
        const spirv::Insn &insn = k->insns[i];
        bool isMem = false;
        uint32_t flags = 0;
        switch (insn.op) {
          case spirv::Op::LdBuf:
            isMem = true;
            flags = insn.d;
            break;
          case spirv::Op::StBuf:
            isMem = true;
            flags = insn.d;
            break;
          case spirv::Op::AtomIAdd:
          case spirv::Op::AtomIMin:
          case spirv::Op::AtomIMax:
          case spirv::Op::AtomIOr:
            isMem = true;
            break;
          default:
            break;
        }
        if (!isMem)
            continue;
        k->siteOfInsn[i] = ++k->numSites;
        bool hinted = (flags & spirv::MemFlagPromoteHint) != 0;
        k->sitePromote.push_back(hinted ? 1 : 0);
        anyHint = anyHint || hinted;
    }

    // Apply the driver profile.
    k->promoted = prof.localMemPromotion && anyHint;
    k->codeQualityEff = prof.codeQuality;
    if (m.sharedWords > 0)
        k->codeQualityEff *= prof.sharedMemCodegenFactor;

    double perInsn = (api == Api::OpenCl)   ? prof.jitBuildNsPerInsn
                     : (api == Api::Vulkan) ? prof.pipelineCompileNsPerInsn
                                            : 0.0;
    k->compileNs = perInsn * static_cast<double>(k->insns.size());

    // Lower to the executable micro-op form (see microop.h).  Runs
    // after the site table is built: site slots are baked into the
    // micro-ops.
    lowerKernel(*k);

    if (errorOut)
        errorOut->clear();
    return k;
}

} // namespace vcb::sim

#include "sim/kernel.h"

#include <chrono>
#include <ctime>

#include "common/logging.h"
#include "common/strutil.h"
#include "sim/compile_cache.h"

namespace vcb::sim {

uint32_t
CompiledKernel::localCount() const
{
    return module.localSize[0] * module.localSize[1] * module.localSize[2];
}

namespace {

std::unique_ptr<CompiledKernel>
compileKernelImpl(const spirv::Module &m, const DeviceSpec &dev, Api api,
                  std::string *errorOut)
{
    auto fail = [&](const std::string &msg) {
        if (errorOut)
            *errorOut = msg;
        return nullptr;
    };

    // Content-addressed compile cache (sim/compile_cache.h).  Only
    // SUCCESSFUL compiles are cached, and every input to the failure
    // checks below (module content, device spec, API) is part of the
    // key, so a hit can skip them: the same inputs passed before.
    bool useCache = CompileCache::globalEnabled();
    CompileCacheKey cacheKey;
    if (useCache) {
        cacheKey = makeCompileCacheKey(m, dev, api);
        if (auto cached = CompileCache::global().lookup(cacheKey)) {
            if (errorOut)
                errorOut->clear();
            return cached;
        }
    }

    const DriverProfile &prof = dev.profile(api);
    if (!prof.available)
        return fail(strprintf("%s is not available on %s", apiName(api),
                              dev.name.c_str()));
    if (prof.kernelBroken(m.name))
        return fail(strprintf("driver failure: %s %s rejects kernel '%s'",
                              dev.name.c_str(), apiName(api),
                              m.name.c_str()));

    std::string verr;
    if (!spirv::validate(m, &verr))
        return fail("module validation failed: " + verr);

    uint32_t local = m.localSize[0] * m.localSize[1] * m.localSize[2];
    if (local > dev.maxWorkgroupInvocations)
        return fail(strprintf("workgroup size %u exceeds device limit %u",
                              local, dev.maxWorkgroupInvocations));
    if (m.pushWords * 4 > dev.maxPushBytes)
        return fail(strprintf("push block %u B exceeds device limit %u B",
                              m.pushWords * 4, dev.maxPushBytes));

    auto k = std::make_unique<CompiledKernel>();
    k->module = m;
    k->insns = m.decode();
    k->api = api;

    // Build the global-memory site table.
    k->siteOfInsn.assign(k->insns.size(), 0);
    bool anyHint = false;
    for (size_t i = 0; i < k->insns.size(); ++i) {
        const spirv::Insn &insn = k->insns[i];
        bool isMem = false;
        uint32_t flags = 0;
        switch (insn.op) {
          case spirv::Op::LdBuf:
            isMem = true;
            flags = insn.d;
            break;
          case spirv::Op::StBuf:
            isMem = true;
            flags = insn.d;
            break;
          case spirv::Op::AtomIAdd:
          case spirv::Op::AtomIMin:
          case spirv::Op::AtomIMax:
          case spirv::Op::AtomIOr:
            isMem = true;
            break;
          default:
            break;
        }
        if (!isMem)
            continue;
        k->siteOfInsn[i] = ++k->numSites;
        bool hinted = (flags & spirv::MemFlagPromoteHint) != 0;
        k->sitePromote.push_back(hinted ? 1 : 0);
        anyHint = anyHint || hinted;
    }

    // Apply the driver profile.
    k->promoted = prof.localMemPromotion && anyHint;
    k->codeQualityEff = prof.codeQuality;
    if (m.sharedWords > 0)
        k->codeQualityEff *= prof.sharedMemCodegenFactor;

    double perInsn = (api == Api::OpenCl)   ? prof.jitBuildNsPerInsn
                     : (api == Api::Vulkan) ? prof.pipelineCompileNsPerInsn
                                            : 0.0;
    k->compileNs = perInsn * static_cast<double>(k->insns.size());

    // Lower to the executable micro-op form (see microop.h).  Runs
    // after the site table is built: site slots are baked into the
    // micro-ops.
    lowerKernel(*k);

    if (useCache)
        CompileCache::global().insert(cacheKey, *k);

    if (errorOut)
        errorOut->clear();
    return k;
}

} // namespace

namespace {

/** Per-thread CPU nanoseconds: immune to preemption, so per-call cost
 *  stays meaningful while other sessions saturate the machine. */
uint64_t
threadCpuNs()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<uint64_t>(ts.tv_nsec);
#endif
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

std::unique_ptr<CompiledKernel>
compileKernel(const spirv::Module &m, const DeviceSpec &dev, Api api,
              std::string *errorOut)
{
    // CPU-time accounting feeds the serve layer's cache ablation
    // (vcb_load): the off/warm delta of this counter IS the latency
    // the cache removes from request service time.
    uint64_t t0 = threadCpuNs();
    auto k = compileKernelImpl(m, dev, api, errorOut);
    CompileCache::global().recordCompileCpu(threadCpuNs() - t0);
    return k;
}

} // namespace vcb::sim

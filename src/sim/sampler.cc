#include "sim/sampler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/mathutil.h"

namespace vcb::sim {

CoalesceSampler::CoalesceSampler(uint32_t num_sites, uint32_t warp_width,
                                 uint32_t line_bytes, uint32_t local_count)
    : numSites(num_sites), warpWidth(warp_width), lineBytes(line_bytes),
      localCount(local_count),
      numWarps(static_cast<uint32_t>(ceilDiv(local_count, warp_width))),
      agg(num_sites)
{
    VCB_ASSERT(warp_width > 0 && line_bytes > 0, "bad sampler params");
    occCount.assign(static_cast<size_t>(localCount) * numSites, 0);
    slotOf.assign(static_cast<size_t>(numSites) * occCap * numWarps, -1);
}

void
CoalesceSampler::beginWorkgroup()
{
    std::fill(occCount.begin(), occCount.end(), 0);
    for (size_t slot = 0; slot < touched.size(); ++slot) {
        linePool[slot].clear();
        slotOf[touched[slot]] = -1;
    }
    touched.clear();
}

void
CoalesceSampler::record(uint32_t lane, uint32_t site, uint64_t byte_addr)
{
    VCB_ASSERT(site < numSites && lane < localCount,
               "sampler record out of range");
    uint32_t &occ = occCount[static_cast<size_t>(lane) * numSites + site];
    uint32_t occ_idx = std::min(occ, occCap - 1);
    ++occ;

    uint32_t warp = lane / warpWidth;
    uint32_t key = (site * occCap + occ_idx) * numWarps + warp;
    uint64_t line = byte_addr / lineBytes;

    int32_t slot = slotOf[key];
    if (slot < 0) {
        slot = static_cast<int32_t>(touched.size());
        slotOf[key] = slot;
        touched.push_back(key);
        if (linePool.size() < touched.size())
            linePool.resize(touched.size());
    }
    std::vector<uint64_t> &lines = linePool[slot];
    // Groups normally hold at most one line per warp lane; a linear
    // scan suffices (the saturated last occ bucket can grow larger).
    if (std::find(lines.begin(), lines.end(), line) == lines.end())
        lines.push_back(line);
    agg[site].accesses += 1;
}

void
CoalesceSampler::endWorkgroup()
{
    for (size_t slot = 0; slot < touched.size(); ++slot) {
        uint32_t key = touched[slot];
        uint32_t site = key / (occCap * numWarps);
        agg[site].transactions += linePool[slot].size();
        linePool[slot].clear(); // capacity reused across workgroups
        slotOf[key] = -1;
    }
    touched.clear();
    std::fill(occCount.begin(), occCount.end(), 0);
}

double
CoalesceSampler::ratioFor(uint32_t site) const
{
    VCB_ASSERT(site < numSites, "ratioFor out of range");
    const SiteAgg &a = agg[site];
    if (a.accesses == 0)
        return 1.0;
    return static_cast<double>(a.transactions) /
           static_cast<double>(a.accesses);
}

bool
CoalesceSampler::sampled(uint32_t site) const
{
    VCB_ASSERT(site < numSites, "sampled out of range");
    return agg[site].accesses != 0;
}

} // namespace vcb::sim

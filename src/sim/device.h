/**
 * @file
 * Simulated GPU device descriptions and per-API driver profiles.
 *
 * A DeviceSpec captures the architectural parameters that the paper's
 * findings depend on (compute width, clock, DRAM bandwidth, coalescing
 * granularity, heap sizes) and one DriverProfile per programming model
 * capturing the *driver* behaviours the paper attributes differences
 * to: launch/submit/sync overheads, JIT/pipeline compile costs,
 * compiler maturity (local-memory promotion, code quality), and
 * platform quirks (Snapdragon's push-constant fallback, Nexus's weak
 * shared-memory codegen, outright driver failures for particular
 * kernels).
 *
 * Everything here is a *model input*: constants are set once per
 * device (with rationale) and never per-benchmark.  The paper's four
 * parts are compiled in (device_registry.cc); any device — those four
 * included — can also be described by a `.dev` spec file under
 * `devices/`, loaded through sim/device_file.h (see
 * docs/DEVICE_MODEL.md), which is how the report pipeline gets its
 * registry.
 */

#ifndef VCB_SIM_DEVICE_H
#define VCB_SIM_DEVICE_H

#include <cstdint>
#include <string>
#include <vector>

namespace vcb::sim {

/** The three programming models under study. */
enum class Api { Vulkan = 0, OpenCl = 1, Cuda = 2 };

/** Number of APIs (array sizing). */
constexpr int apiCount = 3;

/** Printable API name. */
const char *apiName(Api api);

/** Per-(device, API) driver behaviour model. */
struct DriverProfile
{
    /** Whether this API is supported on the device at all. */
    bool available = false;
    /** Reported version string (Tables II/III). */
    std::string version;

    // ---- host-side overheads, all in nanoseconds -----------------------
    /** Cost of one kernel launch/enqueue call (CUDA launch, OpenCL
     *  clEnqueueNDRangeKernel).  Vulkan does not pay this per dispatch. */
    double launchOverheadNs = 0;
    /** Cost of one queue submission (vkQueueSubmit / implicit flush). */
    double submitOverheadNs = 0;
    /** Host latency to observe completion of a blocking wait
     *  (fence wait / clFinish / cudaDeviceSynchronize wakeup). */
    double syncWakeupNs = 0;
    /** OpenCL-style JIT: program build cost per IR instruction. */
    double jitBuildNsPerInsn = 0;
    /** Vulkan pipeline creation cost per IR instruction. */
    double pipelineCompileNsPerInsn = 0;

    // ---- device-side per-command costs (executed from a command
    //      buffer or implicitly per launch), nanoseconds ----------------
    double dispatchSetupNs = 0;   ///< per dispatch (work distribution)
    double barrierNs = 0;         ///< per pipeline/memory barrier
    double bindPipelineNs = 0;    ///< per compute-pipeline bind
    double bindDescSetNs = 0;     ///< per descriptor-set bind
    double pushConstantNs = 0;    ///< per push-constant update

    // ---- compiler maturity ---------------------------------------------
    /** Whether the kernel compiler honours MemFlagPromoteHint and keeps
     *  the marked accesses in on-chip memory.  The paper found OpenCL
     *  and CUDA compilers do, the young Vulkan SPIR-V compilers do not
     *  (bfs ISA comparison with CodeXL, Sec. V-A2). */
    bool localMemPromotion = false;
    /** ALU code-generation quality: multiplier on compute throughput. */
    double codeQuality = 1.0;
    /** Fraction of peak DRAM bandwidth this API's generated code and
     *  runtime achieve for streaming accesses. */
    double memEfficiency = 0.8;
    /** Multiplier on the device's memory-transaction issue rate; models
     *  small per-transaction savings of thinner runtimes. */
    double txEfficiency = 1.0;

    // ---- quirks -----------------------------------------------------------
    /** Snapdragon 625 quirk (paper Sec. V-B1): the driver implements
     *  push constants as ordinary buffer rebinds, charging
     *  bindDescSetNs for every vkCmdPushConstants. */
    bool pushConstantsAsBufferBind = false;
    /** Nexus/PowerVR quirk (paper Sec. V-B2): kernels that use
     *  workgroup shared memory compile to poor code; multiplier applied
     *  to codeQuality for such kernels. */
    double sharedMemCodegenFactor = 1.0;
    /** Kernels (by entry-point name) this driver fails to build/run —
     *  reproduces the paper's reported driver failures. */
    std::vector<std::string> brokenKernels;

    /**
     * Per-kernel execution-time multipliers (name-prefix matched),
     * for driver pathologies the paper reports without a mechanism
     * (e.g. the Nexus Vulkan driver's hotspot slowdown, Sec. V-B2).
     */
    std::vector<std::pair<std::string, double>> kernelTimeDerates;

    /**
     * Execution-time multiplier applied to kernels that use workgroup
     * shared memory — models immature drivers compiling local-memory
     * code poorly (the Snapdragon-wide Vulkan slowdowns, Sec. V-B2).
     */
    double sharedKernelTimeDerate = 1.0;

    /** True if this profile refuses the named kernel. */
    bool kernelBroken(const std::string &name) const;

    /** Combined execution-time multiplier for a kernel. */
    double kernelTimeFactor(const std::string &name,
                            bool uses_shared) const;
};

/** Architectural description of one simulated GPU. */
struct DeviceSpec
{
    std::string name;        ///< marketing name (Tables II/III)
    std::string vendor;
    std::string platform;    ///< host platform description
    bool mobile = false;

    // ---- compute ---------------------------------------------------------
    uint32_t computeUnits = 1;   ///< SMs / CUs / shader clusters
    uint32_t simdWidth = 32;     ///< lanes issued per CU per cycle
    uint32_t warpWidth = 32;     ///< coalescing / scheduling granularity
    double clockGhz = 1.0;

    // ---- memory system ------------------------------------------------------
    double peakBwGBs = 100.0;    ///< DRAM peak bandwidth (GB/s = B/ns)
    double sharedBwGBs = 400.0;  ///< aggregate on-chip/LDS bandwidth
    uint32_t cacheLineBytes = 64;
    double txPerNs = 1.5;        ///< max DRAM transactions per ns
    double dispatchLatencyNs = 3000; ///< fixed front-end latency/dispatch
    double atomicNsEach = 2.0;   ///< serialisation cost per atomic op

    // ---- heaps / transfer -----------------------------------------------------
    uint64_t deviceHeapBytes = 4ull << 30;
    uint64_t hostVisibleHeapBytes = 16ull << 30;
    double hostCopyBwGBs = 12.0; ///< PCIe for desktop, DRAM for mobile
    bool unifiedMemory = false;

    // ---- unified-memory paging (UVM) ------------------------------------
    // Only meaningful when unifiedMemory is true (the parser rejects
    // the keys otherwise).  With uvmOversubscription left at 1 the
    // device heap stays a hard cap — the paper parts' behaviour; > 1
    // lets allocations overflow into the shared pool up to
    // heap x factor, paying first-touch migration and a bandwidth
    // derate while oversubscribed (UVMBench/ALTIS-style modeling, see
    // docs/DEVICE_MODEL.md).
    /** Allocation cap as a multiple of deviceHeapBytes (1 = hard cap). */
    double uvmOversubscription = 1.0;
    /** Migration granularity (driver page size). */
    uint32_t uvmPageBytes = 65536;
    /** Transfer cost per migrated page on first device touch. */
    double uvmMigrationNsPerPage = 0;
    /** Fault-handling latency charged per migrated page. */
    double uvmFaultLatencyNs = 0;
    /** DRAM bandwidth multiplier while the working set oversubscribes
     *  the device heap (1 = no derate; smaller = slower). */
    double uvmOversubBwDerate = 1.0;

    /** True when allocations may overflow the device heap (paging). */
    bool uvmPagingEnabled() const
    {
        return unifiedMemory && uvmOversubscription > 1.0;
    }
    /** Total allocatable bytes: heap x oversubscription factor, never
     *  beyond the host-visible pool. */
    uint64_t uvmCapBytes() const;

    // ---- limits ------------------------------------------------------------
    uint32_t maxPushBytes = 256;
    uint32_t maxWorkgroupInvocations = 1024;
    uint32_t computeQueueCount = 1;
    uint32_t transferQueueCount = 1;

    /** One profile per Api (indexed by static_cast<int>(Api)). */
    DriverProfile apis[apiCount];

    /** Profile accessor with availability check left to the caller. */
    const DriverProfile &profile(Api api) const;

    /** Lanes retired per nanosecond = CUs * simdWidth * clockGhz. */
    double lanesPerNs() const;
};

/** The compiled-in paper devices, in Table II then Table III order. */
const std::vector<DeviceSpec> &deviceRegistry();

/**
 * The devices the runtime front-ends enumerate (vkm's
 * vkEnumeratePhysicalDevices analogue and the OpenCL platform list):
 * the compiled-in paper parts by default, or whatever
 * setActiveDeviceRegistry() installed — the report pipeline's
 * spec-file registry (sim/device_file.h).
 *
 * The override is THREAD-SCOPED: each thread sees its own installed
 * registry (or the compiled-in default).  Tools that install one in
 * main() and run everything there behave exactly as before; serve
 * sessions (src/serve/) each install their own registry on their
 * worker thread, so concurrent sessions with different device
 * directories can never observe each other's devices.
 */
const std::vector<DeviceSpec> &activeDeviceRegistry();

/**
 * Install `devices` as the calling thread's active registry and return
 * the stored copies.  Benchmarks must run against these exact objects
 * (the Vulkan front-end resolves a DeviceSpec to a physical device by
 * identity), so callers keep references into the returned vector.
 * Call before creating any runtime context on this thread; the
 * thread's previous active registry storage is invalidated.
 */
const std::vector<DeviceSpec> &
setActiveDeviceRegistry(std::vector<DeviceSpec> devices);

/** Remove the calling thread's registry override: activeDeviceRegistry
 *  falls back to the compiled-in deviceRegistry().  Invalidates the
 *  storage returned by setActiveDeviceRegistry on this thread. */
void clearActiveDeviceRegistry();

/**
 * RAII registry override: installs `devices` on the calling thread for
 * the scope's lifetime, then restores the previous thread state
 * (a prior override's contents, or no override).  The serve layer
 * wraps every session worker in one of these.
 */
class ScopedDeviceRegistry
{
  public:
    explicit ScopedDeviceRegistry(std::vector<DeviceSpec> devices);
    ~ScopedDeviceRegistry();

    ScopedDeviceRegistry(const ScopedDeviceRegistry &) = delete;
    ScopedDeviceRegistry &operator=(const ScopedDeviceRegistry &) = delete;

    /** The installed (stored) device objects. */
    const std::vector<DeviceSpec> &devices() const;

  private:
    std::vector<DeviceSpec> saved;
    bool hadOverride = false;
};

/** Find a device in the active registry by (case-insensitive
 *  substring) name; fatal if absent. */
const DeviceSpec &deviceByName(const std::string &name);

/** Registry ids used throughout benches: "gtx1050ti", "rx560",
 *  "adreno506", "g6430". */
const DeviceSpec &gtx1050ti();
const DeviceSpec &rx560();
const DeviceSpec &adreno506();
const DeviceSpec &powervrG6430();

} // namespace vcb::sim

#endif // VCB_SIM_DEVICE_H

/**
 * @file
 * Driver-compiled kernels.
 *
 * Each runtime front-end (Vulkan-mini pipelines, OpenCL-mini program
 * builds, CUDA-mini module loads) turns a spirv::Module into a
 * CompiledKernel by running the module through "the driver compiler":
 * validation, instruction decode, and application of the driver
 * profile (code quality, local-memory promotion of hinted accesses,
 * compile-time cost).  The same source module therefore yields
 * different compiled artefacts per API — the structure behind the
 * paper's bfs compiler-maturity finding.
 */

#ifndef VCB_SIM_KERNEL_H
#define VCB_SIM_KERNEL_H

#include <memory>
#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/microop.h"
#include "spirv/module.h"

namespace vcb::sim {

/** A kernel after driver compilation for one (device, API) pair. */
struct CompiledKernel
{
    /** The source module (metadata: local size, bindings, push size). */
    spirv::Module module;
    /** Decoded instruction stream. */
    std::vector<spirv::Insn> insns;
    /** Which API's compiler produced this. */
    Api api = Api::Vulkan;

    /** Whether MemFlagPromoteHint accesses were promoted on-chip. */
    bool promoted = false;
    /** Effective compute-throughput multiplier (codeQuality, further
     *  reduced for shared-memory kernels on quirky drivers). */
    double codeQualityEff = 1.0;
    /** One-time compile cost in ns (JIT build / pipeline creation). */
    double compileNs = 0.0;

    // ---- memory-site table (for coalescing stats) ----------------------
    /** insn index -> site slot + 1; 0 = not a global-memory access. */
    std::vector<uint32_t> siteOfInsn;
    /** Number of distinct global-memory access sites. */
    uint32_t numSites = 0;
    /** Per site: carries MemFlagPromoteHint. */
    std::vector<uint8_t> sitePromote;

    /** The executable lowering the interpreter actually runs (packed
     *  micro-ops, fused pairs, suffix cost table) — see microop.h.
     *  Immutable once published by lowerKernel(), so compile-cache
     *  hits share one program across sessions instead of deep-copying
     *  the micro-op stream; re-lowering swaps in a fresh program and
     *  never mutates the shared one (copy-on-write). */
    std::shared_ptr<const MicroKernel> micro;

    /** Invocations per workgroup. */
    uint32_t localCount() const;
};

/**
 * Compile a module for a device/API.
 *
 * Fails (returns nullptr, sets errorOut) when the API is unavailable
 * on the device, the module does not validate, the workgroup exceeds
 * device limits, the push block exceeds the device push limit, or the
 * driver profile lists the kernel as broken (reproducing the paper's
 * reported driver failures).
 */
std::unique_ptr<CompiledKernel>
compileKernel(const spirv::Module &m, const DeviceSpec &dev, Api api,
              std::string *errorOut);

} // namespace vcb::sim

#endif // VCB_SIM_KERNEL_H

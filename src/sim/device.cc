#include "sim/device.h"

#include "common/logging.h"
#include "common/strutil.h"

namespace vcb::sim {

const char *
apiName(Api api)
{
    switch (api) {
      case Api::Vulkan:
        return "Vulkan";
      case Api::OpenCl:
        return "OpenCL";
      case Api::Cuda:
        return "CUDA";
    }
    return "<bad>";
}

bool
DriverProfile::kernelBroken(const std::string &name) const
{
    for (const auto &b : brokenKernels)
        if (startsWith(name, b))
            return true;
    return false;
}

double
DriverProfile::kernelTimeFactor(const std::string &name,
                                bool uses_shared) const
{
    double factor = uses_shared ? sharedKernelTimeDerate : 1.0;
    for (const auto &[prefix, derate] : kernelTimeDerates)
        if (startsWith(name, prefix))
            factor *= derate;
    return factor;
}

const DriverProfile &
DeviceSpec::profile(Api api) const
{
    return apis[static_cast<int>(api)];
}

double
DeviceSpec::lanesPerNs() const
{
    return computeUnits * simdWidth * clockGhz;
}

uint64_t
DeviceSpec::uvmCapBytes() const
{
    if (!uvmPagingEnabled())
        return deviceHeapBytes;
    double cap = static_cast<double>(deviceHeapBytes) *
                 uvmOversubscription;
    double pool = static_cast<double>(hostVisibleHeapBytes);
    return static_cast<uint64_t>(cap < pool ? cap : pool);
}

} // namespace vcb::sim

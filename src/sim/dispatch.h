/**
 * @file
 * Dispatch-level plumbing: buffer bindings and execution statistics.
 */

#ifndef VCB_SIM_DISPATCH_H
#define VCB_SIM_DISPATCH_H

#include <cstdint>
#include <vector>

namespace vcb::sim {

struct CompiledKernel;

/**
 * Executor tiers, fastest first.  Selection is per kernel from
 * lowering metadata (chooseExecTier) unless a sampler or robust access
 * forces the instrumented tier, or VCB_EXECUTOR forces one for
 * debugging.  Every tier produces bit-identical buffers, DispatchStats
 * and kernelNs — the tiers differ only in host speed.
 */
enum class ExecTier : uint8_t
{
    /** Branch/atomic-free kernels: the whole dispatch body runs as one
     *  fused loop over fixed-width lane blocks, no divergence checks. */
    Trace,
    /** Op-major lockstep over lane blocks of W; a divergent branch or
     *  atomic bails only the affected block to the lane-major tier. */
    Block,
    /** One lane at a time to phase end — the order-defining reference
     *  executor (atomics observe exactly this lane order). */
    LaneMajor,
    /** Lane-major plus sampler recording / robust clamping. */
    Instrumented,
    Count
};

/** Symbolic tier name ("trace", "block", "lane", "instrumented"). */
const char *execTierName(ExecTier t);

/** Forced tier parsed from VCB_EXECUTOR (same names), cached on first
 *  use; returns ExecTier::Count when unset/auto. */
ExecTier executorOverride();
/** Test hook: force a tier programmatically (Count = back to auto /
 *  re-read VCB_EXECUTOR). */
void setExecutorOverride(ExecTier t);

/** Lane-block width W for the block/trace tiers: VCB_BLOCK_W, one of
 *  4/8/16 (default 8), cached on first use. */
uint32_t blockWidth();
/** Test hook: force W (0 = back to env/default). */
void setBlockWidth(uint32_t w);

/** A storage buffer as seen by the interpreter: a span of words. */
struct BufferBinding
{
    uint32_t *data = nullptr;
    uint64_t words = 0;
};

/** Aggregate execution statistics of one dispatch. */
struct DispatchStats
{
    uint64_t invocations = 0;
    /** ALU issue cycles summed over all lanes (per-op cost table). */
    uint64_t laneCycles = 0;
    /** Global-memory word accesses that hit DRAM. */
    uint64_t dramAccesses = 0;
    /** Estimated DRAM line transactions (coalescing model). */
    double dramTransactions = 0;
    /** Word accesses served on-chip due to promotion. */
    uint64_t promotedAccesses = 0;
    /** Explicit shared-memory word accesses. */
    uint64_t sharedAccesses = 0;
    uint64_t atomicOps = 0;
    /** Barrier phases crossed (summed over workgroups). */
    uint64_t barriers = 0;

    // UVM paging costs of this dispatch.  The engine never writes
    // these (residency is runtime front-end state); the vkm/ocl/cuda
    // front-ends fill them in when a dispatch first touches paged
    // allocations (sim/uvm.h).
    /** Bytes migrated device-ward before this dispatch ran. */
    uint64_t migratedBytes = 0;
    /** Migration + page-fault time charged ahead of the kernel. */
    double faultNs = 0;

    /** Tier-equivalence tests demand bit-identical stats. */
    bool operator==(const DispatchStats &) const = default;
};

/** Immutable inputs of one dispatch. */
struct DispatchContext
{
    const CompiledKernel *kernel = nullptr;
    uint32_t groups[3] = {1, 1, 1};
    /** Indexed by binding number. */
    std::vector<BufferBinding> buffers;
    const uint32_t *push = nullptr;
    uint32_t pushWords = 0;
    /** Clamp out-of-bounds accesses instead of trapping. */
    bool robustAccess = false;
    /** DRAM bandwidth multiplier for this dispatch — < 1 while a UVM
     *  device's working set oversubscribes its heap (sim/uvm.h). */
    double dramDerate = 1.0;
};

/** Result of simulating one dispatch. */
struct DispatchResult
{
    /** Device-side execution time (includes dispatch fixed latency). */
    double kernelNs = 0;
    DispatchStats stats;
};

} // namespace vcb::sim

#endif // VCB_SIM_DISPATCH_H

/**
 * @file
 * Dispatch-level plumbing: buffer bindings and execution statistics.
 */

#ifndef VCB_SIM_DISPATCH_H
#define VCB_SIM_DISPATCH_H

#include <cstdint>
#include <vector>

namespace vcb::sim {

struct CompiledKernel;

/** A storage buffer as seen by the interpreter: a span of words. */
struct BufferBinding
{
    uint32_t *data = nullptr;
    uint64_t words = 0;
};

/** Aggregate execution statistics of one dispatch. */
struct DispatchStats
{
    uint64_t invocations = 0;
    /** ALU issue cycles summed over all lanes (per-op cost table). */
    uint64_t laneCycles = 0;
    /** Global-memory word accesses that hit DRAM. */
    uint64_t dramAccesses = 0;
    /** Estimated DRAM line transactions (coalescing model). */
    double dramTransactions = 0;
    /** Word accesses served on-chip due to promotion. */
    uint64_t promotedAccesses = 0;
    /** Explicit shared-memory word accesses. */
    uint64_t sharedAccesses = 0;
    uint64_t atomicOps = 0;
    /** Barrier phases crossed (summed over workgroups). */
    uint64_t barriers = 0;
};

/** Immutable inputs of one dispatch. */
struct DispatchContext
{
    const CompiledKernel *kernel = nullptr;
    uint32_t groups[3] = {1, 1, 1};
    /** Indexed by binding number. */
    std::vector<BufferBinding> buffers;
    const uint32_t *push = nullptr;
    uint32_t pushWords = 0;
    /** Clamp out-of-bounds accesses instead of trapping. */
    bool robustAccess = false;
};

/** Result of simulating one dispatch. */
struct DispatchResult
{
    /** Device-side execution time (includes dispatch fixed latency). */
    double kernelNs = 0;
    DispatchStats stats;
};

} // namespace vcb::sim

#endif // VCB_SIM_DISPATCH_H

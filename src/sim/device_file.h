/**
 * @file
 * Device spec files: load and save DeviceSpec/DriverProfile as plain
 * key=value text, so new devices need zero recompilation.
 *
 * The format (fully documented with field semantics and calibration
 * guidance in docs/DEVICE_MODEL.md) is one `key = value` pair per
 * line: an unsectioned preamble holds the DeviceSpec architectural
 * fields, and one `[vulkan]` / `[opencl]` / `[cuda]` section per API
 * holds that DriverProfile.  `#` starts a full-line comment; blank
 * lines separate sections.  Example:
 *
 *     name = NVIDIA GTX1050Ti
 *     mobile = false
 *     compute_units = 6
 *     ...
 *     [vulkan]
 *     available = true
 *     submit_overhead_ns = 10000
 *     ...
 *
 * Serialization is exact: doubles are printed with the shortest
 * decimal form that parses back to the identical bits, so
 * parse(serialize(d)) reproduces `d` field-for-field and
 * serialize(parse(text)) is a canonical form.  Parse errors are
 * positional ("line 12: unknown key 'foo'") and distinguish syntax,
 * unknown-key, bad-value and out-of-range failures.
 *
 * The `devices/` directory at the repo root holds the paper's four
 * parts (byte-identical to serializing the built-in registry — a
 * test enforces it) plus the post-paper expansion profiles; the
 * reporting pipeline (tools/vcb_report) loads everything from there.
 */

#ifndef VCB_SIM_DEVICE_FILE_H
#define VCB_SIM_DEVICE_FILE_H

#include <optional>
#include <string>
#include <vector>

#include "sim/device.h"

namespace vcb::sim {

/** Canonical spec-file text for a device (every field, calibrated
 *  values in shortest exact decimal form). */
std::string serializeDevice(const DeviceSpec &d);

/**
 * FNV-1a over every serializable field of `d`, walking the same field
 * tables as serializeDevice — two specs hash equal iff their canonical
 * spec text is equal — but without formatting any text, so it is cheap
 * enough to call per kernel compile (the compile cache fingerprints
 * the device on every lookup).
 */
uint64_t hashDevice(const DeviceSpec &d);

/**
 * Parse spec-file text.  On failure returns nullopt and, when `error`
 * is non-null, stores a positional message ("line 12: ...").
 */
std::optional<DeviceSpec> parseDevice(const std::string &text,
                                      std::string *error = nullptr);

/** Load one spec file; fatal (with path + line) on any error. */
DeviceSpec loadDeviceFile(const std::string &path);

/**
 * Load every `*.dev` file in `dir`, sorted by filename (so report
 * order is stable).  Fatal on parse errors, duplicate device names or
 * a missing/empty directory.
 */
std::vector<DeviceSpec> loadDeviceDir(const std::string &dir);

} // namespace vcb::sim

#endif // VCB_SIM_DEVICE_FILE_H

#include "sim/timing.h"

#include <algorithm>

#include "common/logging.h"

namespace vcb::sim {

double
TimingModel::kernelExecNs(const DeviceSpec &dev,
                          const CompiledKernel &kernel,
                          const DispatchStats &stats,
                          double dram_derate)
{
    const DriverProfile &prof = dev.profile(kernel.api);

    // Compute-bound: lanes retired per ns, derated by codegen quality.
    double lanes_per_ns = dev.lanesPerNs() * kernel.codeQualityEff;
    double compute_ns =
        static_cast<double>(stats.laneCycles) / lanes_per_ns;

    // DRAM-bound: useful-byte bandwidth and transaction-issue limits.
    double useful_bytes = static_cast<double>(stats.dramAccesses) * 4.0;
    double bw_ns = useful_bytes / (dev.peakBwGBs * prof.memEfficiency);
    double tx_ns = stats.dramTransactions /
                   (dev.txPerNs * prof.txEfficiency);
    // Oversubscribed UVM working sets run the DRAM system slower —
    // thrashing migrations steal bandwidth and transaction slots alike.
    double dram_ns = std::max(bw_ns, tx_ns) / dram_derate;

    // On-chip bound: promoted accesses and explicit shared memory.
    double onchip_bytes =
        static_cast<double>(stats.promotedAccesses + stats.sharedAccesses)
        * 4.0;
    double onchip_ns = onchip_bytes / dev.sharedBwGBs;

    // Atomics serialise within memory channels.
    double atomic_ns = static_cast<double>(stats.atomicOps) *
                       dev.atomicNsEach /
                       static_cast<double>(dev.computeUnits);

    return std::max({compute_ns, dram_ns, onchip_ns}) + atomic_ns;
}

double
TimingModel::transferNs(const DeviceSpec &dev, uint64_t bytes)
{
    return static_cast<double>(bytes) / dev.hostCopyBwGBs;
}

double
TimingModel::deviceCopyNs(const DeviceSpec &dev, uint64_t bytes)
{
    // Device-local copies run at full DRAM speed: read + write traffic.
    return 2.0 * static_cast<double>(bytes) / dev.peakBwGBs;
}

} // namespace vcb::sim

#include "sim/uvm.h"

namespace vcb::sim {

uint64_t
uvmPagesFor(const DeviceSpec &dev, uint64_t bytes)
{
    uint64_t page = dev.uvmPageBytes;
    return (bytes + page - 1) / page;
}

double
uvmMigrateNs(const DeviceSpec &dev, uint64_t bytes)
{
    return static_cast<double>(uvmPagesFor(dev, bytes)) *
           (dev.uvmMigrationNsPerPage + dev.uvmFaultLatencyNs);
}

} // namespace vcb::sim

/**
 * @file
 * Memory-coalescing sampler.
 *
 * GPUs service a warp's simultaneous memory accesses as a set of cache
 * line transactions; the number of *distinct* lines a warp touches per
 * access determines achieved bandwidth (the whole point of the paper's
 * strided microbenchmark, Figs. 1 and 3).  Interpreting every work
 * item lane-by-lane, we cannot observe warps directly, so instead we
 * *sample* a few workgroups: for every global-memory site we group the
 * k-th dynamic execution by each lane with the k-th execution by the
 * other lanes of the same warp and count distinct lines in the group.
 * The per-site transactions-per-access ratio from the sampled
 * workgroups is then applied to the site's dispatch-wide access count.
 *
 * Exact for regular kernels (all of the suite's except bfs's data
 * dependent loops, where it is a documented approximation).
 */

#ifndef VCB_SIM_SAMPLER_H
#define VCB_SIM_SAMPLER_H

#include <cstdint>
#include <vector>

namespace vcb::sim {

/** Collects per-site coalescing ratios from sampled workgroups. */
class CoalesceSampler
{
  public:
    /**
     * @param num_sites   number of global-memory sites in the kernel
     * @param warp_width  coalescing granularity of the device
     * @param line_bytes  cache line size
     * @param local_count invocations per workgroup
     */
    CoalesceSampler(uint32_t num_sites, uint32_t warp_width,
                    uint32_t line_bytes, uint32_t local_count);

    /** Reset per-workgroup state before sampling a workgroup. */
    void beginWorkgroup();

    /** Record one access: lane linear id, site slot, byte address. */
    void record(uint32_t lane, uint32_t site, uint64_t byte_addr);

    /** Fold the finished workgroup into the per-site aggregates. */
    void endWorkgroup();

    /** Transactions-per-access for a site; 1.0 when never sampled
     *  (conservative: fully uncoalesced). */
    double ratioFor(uint32_t site) const;

    /** True if the site was observed in any sampled workgroup. */
    bool sampled(uint32_t site) const;

  private:
    /** Occurrences beyond the cap share the last bucket. */
    static constexpr uint32_t occCap = 128;

    struct SiteAgg
    {
        uint64_t accesses = 0;
        uint64_t transactions = 0;
    };

    uint32_t numSites;
    uint32_t warpWidth;
    uint32_t lineBytes;
    uint32_t localCount;
    uint32_t numWarps;

    std::vector<SiteAgg> agg;
    /** Current workgroup: per (lane, site) occurrence counters. */
    std::vector<uint32_t> occCount;

    // Distinct-line sets of the current workgroup, keyed by the dense
    // (site, occ, warp) index.  Slots are handed out on first touch —
    // the record() hot path is an array lookup instead of a hash
    // probe.  Each slot's line vector usually holds <= warpWidth
    // entries (one line per warp lane), but the saturated last occ
    // bucket aggregates every execution past occCap, so the vectors
    // stay growable; their capacity is reused across workgroups.
    std::vector<int32_t> slotOf;                ///< key -> slot or -1
    std::vector<uint32_t> touched;              ///< keys used this wg
    std::vector<std::vector<uint64_t>> linePool; ///< per-slot lines
};

} // namespace vcb::sim

#endif // VCB_SIM_SAMPLER_H

/**
 * @file
 * Content-addressed compile cache: (kernel source, lowering options,
 * device, API) -> driver-compiled kernel.
 *
 * Every front-end compile funnels through sim::compileKernel, which
 * validates the module, builds the memory-site table and lowers to the
 * micro-op executable (sim/microop.h) — by far the most expensive part
 * of serving a benchmark request.  The serve layer (src/serve/) replays
 * thousands of requests over a small set of kernels, so compileKernel
 * consults this cache first: a hit returns a copy of the previously
 * compiled artefact's metadata SHARING its immutable micro-op program
 * and skips validation, decode and lowering entirely.
 *
 * Keying is by content, never by identity:
 *
 *  - the kernel source, as an FNV-1a hash of the module's canonical
 *    binary serialization (spirv::Module::serialize — name, local
 *    size, bindings, push/shared sizes and the full code stream);
 *  - the effective lowering configuration (LowerOptions bits plus the
 *    VCB_SUPEROPS runtime gate, which lowerKernel consults);
 *  - the device, as an FNV-1a hash of its canonical spec-file text
 *    (sim/device_file.h serializeDevice — every architectural and
 *    driver-profile field, so two near-identical DeviceSpecs can never
 *    alias);
 *  - the API (the same module compiles differently per driver
 *    profile).
 *
 * The store is a sharded LRU: each shard owns a mutex, an LRU list and
 * an index, so concurrent serve sessions hit different shards without
 * contending.  Entries are immutable shared_ptrs; lookups copy the
 * metadata fields but share the micro-op program, which is itself an
 * immutable shared_ptr<const MicroKernel> (CompiledKernel::micro) —
 * the dominant allocation is never deep-copied per hit.  Callers that
 * re-lower a compiled kernel (the fused-vs-unfused tests) get a fresh
 * program published into their copy; the shared one is untouched, so
 * no caller can corrupt the cached artefact.
 *
 * Cache hits are observably invisible by construction — the result is
 * field-for-field identical to what a fresh compile would produce —
 * and tests/test_interpreter.cc enforces it (program bytes,
 * DispatchStats and kernelNs bit-identical across the full kernel
 * registry).
 *
 * The VCB_COMPILE_CACHE environment knob controls the process-wide
 * instance: unset/"1"/"on" = enabled (default capacity), "0"/"off" =
 * disabled, a positive integer = enabled with that entry capacity.
 */

#ifndef VCB_SIM_COMPILE_CACHE_H
#define VCB_SIM_COMPILE_CACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/device.h"
#include "sim/microop.h"
#include "spirv/module.h"

namespace vcb::sim {

struct CompiledKernel;

/** FNV-1a over the module's canonical binary serialization. */
uint64_t hashModule(const spirv::Module &m);

/** FNV-1a over the device's canonical spec-file text (every field of
 *  DeviceSpec and all three DriverProfiles). */
uint64_t deviceFingerprint(const DeviceSpec &dev);

/** A fully resolved cache key.  Equality compares every field, so a
 *  64-bit hash collision in one component still needs the others to
 *  match before an entry aliases. */
struct CompileCacheKey
{
    uint64_t moduleHash = 0;
    uint64_t deviceFp = 0;
    /** api | LowerOptions bits | superops runtime gate (see
     *  makeCompileCacheKey). */
    uint32_t config = 0;

    bool operator==(const CompileCacheKey &) const = default;
};

/** Key for one compileKernel invocation: `opt` must be the options
 *  lowerKernel will run with (compileKernel uses the defaults); the
 *  VCB_SUPEROPS runtime gate is folded in here. */
CompileCacheKey makeCompileCacheKey(const spirv::Module &m,
                                    const DeviceSpec &dev, Api api,
                                    const LowerOptions &opt = {});

/** Monotonic cache counters (snapshot). */
struct CompileCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    /** Current entry count across all shards. */
    uint64_t entries = 0;

    /** compileKernel invocations and their total thread-CPU cost,
     *  recorded whether or not the cache was consulted — the ablation
     *  measures the cache's latency win from the off/warm delta.
     *  Thread-CPU time, not wall time: under a saturated machine wall
     *  time mostly measures preemption. */
    uint64_t compileCalls = 0;
    uint64_t compileCpuNs = 0;

    double hitRate() const
    {
        uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }
};

/** Thread-safe sharded-LRU store of compiled kernels. */
class CompileCache
{
  public:
    /**
     * @param capacity total entry budget (split evenly over shards,
     *        at least one entry per shard).
     * @param shards   lock shards; 1 gives a single deterministic LRU
     *        (unit tests), the global instance uses several.
     */
    explicit CompileCache(size_t capacity = 1024, size_t shards = 8);

    /** The process-wide instance compileKernel consults (capacity from
     *  VCB_COMPILE_CACHE when it parses as a positive integer). */
    static CompileCache &global();

    /** Whether compileKernel should consult the global instance:
     *  VCB_COMPILE_CACHE unset/"1"/"on" = yes, "0"/"off" = no, as
     *  overridden by setGlobalEnabled. */
    static bool globalEnabled();

    /** Force the global gate on (1) / off (0), or re-read the
     *  environment (-1).  Test/ablation hook, like
     *  setSuperopsEnabled(). */
    static void setGlobalEnabled(int enabled);

    /** Deep copy of the cached artefact, or nullptr on miss.  A hit
     *  refreshes the entry's LRU position. */
    std::unique_ptr<CompiledKernel> lookup(const CompileCacheKey &key);

    /** Store a copy of `k` under `key`, evicting the shard's
     *  least-recently-used entry when over budget.  Re-inserting an
     *  existing key refreshes the entry. */
    void insert(const CompileCacheKey &key, const CompiledKernel &k);

    CompileCacheStats stats() const;

    /** Add one compileKernel invocation's thread-CPU cost to the
     *  counters (called by compileKernel on every path, hit or not). */
    void recordCompileCpu(uint64_t ns);

    /** Drop every entry and reset the counters. */
    void clear();

    size_t capacity() const { return totalCapacity; }

  private:
    struct Entry
    {
        CompileCacheKey key;
        std::shared_ptr<const CompiledKernel> kernel;
    };

    struct Shard
    {
        mutable std::mutex mtx;
        /** Front = most recently used. */
        std::list<Entry> lru;
        struct KeyHash
        {
            size_t operator()(const CompileCacheKey &k) const;
        };
        std::unordered_map<CompileCacheKey, std::list<Entry>::iterator,
                           KeyHash>
            index;
    };

    Shard &shardFor(const CompileCacheKey &key);

    std::vector<Shard> shards;
    size_t totalCapacity;
    size_t perShardCapacity;

    mutable std::mutex statsMtx;
    CompileCacheStats counters;

    std::atomic<uint64_t> compileCalls{0};
    std::atomic<uint64_t> compileCpuNs{0};
};

} // namespace vcb::sim

#endif // VCB_SIM_COMPILE_CACHE_H

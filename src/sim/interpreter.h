/**
 * @file
 * The kernel interpreter: functional execution of one workgroup.
 *
 * Invocations are interpreted lane-by-lane over the kernel's micro-op
 * lowering (see microop.h).  Workgroup barriers are handled by phased
 * execution: every lane runs until its next Barrier (or Ret), then all
 * lanes resume — equivalent to lockstep execution for data-race-free
 * kernels, which is what every supported programming model requires
 * anyway.  Mixed barrier arrival (some lanes done, some at a barrier)
 * is the undefined behaviour all three real APIs document; the
 * simulator traps it.
 *
 * Two execution paths share one template: the fast path (no coalescing
 * sampler attached, robust access off) carries no instrumentation
 * branches in the memory pipeline; the instrumented path adds sampler
 * recording and out-of-bounds clamping.  Both produce bit-identical
 * results and statistics.
 *
 * Global-memory words are accessed through relaxed std::atomic_ref so
 * that independent workgroups can be interpreted on different host
 * threads without UB (benign same-value flag races, e.g. bfs's stop
 * flag, behave exactly as on real hardware).
 */

#ifndef VCB_SIM_INTERPRETER_H
#define VCB_SIM_INTERPRETER_H

#include <cstdint>
#include <vector>

#include "sim/dispatch.h"
#include "sim/kernel.h"
#include "sim/sampler.h"

namespace vcb::sim {

/** Per-workgroup statistics, merged into DispatchStats by the engine. */
struct WorkgroupStats
{
    uint64_t laneCycles = 0;
    uint64_t sharedAccesses = 0;
    uint64_t atomicOps = 0;
    uint64_t barriers = 0;
    uint64_t invocations = 0;
    /** Global-memory accesses per site (sized kernel.numSites). */
    std::vector<uint64_t> siteExec;
};

/**
 * Reusable workgroup executor.  One instance must only be used by one
 * thread at a time; the engine keeps one per worker thread for the
 * duration of a dispatch.
 */
class Interpreter
{
  public:
    Interpreter() = default;

    /** Point the interpreter at a dispatch (cheap when unchanged). */
    void prepare(const DispatchContext &ctx);

    /**
     * Execute workgroup (wx, wy, wz) to completion, accumulating into
     * ws (whose siteExec must be pre-sized).  When sampler is non-null
     * this workgroup's memory accesses are recorded for coalescing
     * estimation.
     */
    void runWorkgroup(uint32_t wx, uint32_t wy, uint32_t wz,
                      WorkgroupStats &ws, CoalesceSampler *sampler);

  private:
    struct LaneId
    {
        uint32_t x, y, z;
    };

    /**
     * Execute one barrier phase lane-by-lane: every lane runs from
     * pcs[lane] until Ret or Barrier; counts of each outcome are
     * returned so the caller can detect completion vs divergence.
     * Instrumented adds sampler recording and robust-access clamping.
     */
    template <bool Instrumented>
    void runPhase(uint32_t wx, uint32_t wy, uint32_t wz,
                  WorkgroupStats &ws, CoalesceSampler *sampler,
                  uint32_t &done_out, uint32_t &barrier_out);

    /**
     * Execute one phase op-major (lockstep): all lanes start at the
     * same pc and each micro-op runs across the whole workgroup before
     * the next, amortizing dispatch over lanes and letting the
     * reg-major register file vectorize.  Valid for data-race-free
     * kernels, whose results are order-independent between barriers
     * (the simulator's documented execution contract).  Falls back to
     * the lane-major runPhase mid-phase when lanes diverge at a
     * branch, or at ops whose lane order is observable (atomics).
     */
    void runPhaseVector(uint32_t start_pc, uint32_t wx, uint32_t wy,
                        uint32_t wz, WorkgroupStats &ws,
                        uint32_t &done_out, uint32_t &barrier_out);

    const DispatchContext *ctx = nullptr;
    const CompiledKernel *kernel = nullptr;
    uint32_t localCount = 0;

    std::vector<uint32_t> regs;   ///< localCount x regCount
    std::vector<uint32_t> pcs;    ///< per-lane program counter
    std::vector<uint32_t> shared; ///< workgroup shared memory
    std::vector<LaneId> lids;     ///< per-lane local-invocation id
};

} // namespace vcb::sim

#endif // VCB_SIM_INTERPRETER_H

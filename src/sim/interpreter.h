/**
 * @file
 * The kernel interpreter: functional execution of one workgroup.
 *
 * Invocations are interpreted over the kernel's micro-op lowering
 * (see microop.h).  Workgroup barriers are handled by phased
 * execution: every lane runs until its next Barrier (or Ret), then all
 * lanes resume — equivalent to lockstep execution for data-race-free
 * kernels, which is what every supported programming model requires
 * anyway.  Mixed barrier arrival (some lanes done, some at a barrier)
 * is the undefined behaviour all three real APIs document; the
 * simulator traps it.
 *
 * Four executor tiers share the phase loop (see ExecTier in
 * dispatch.h): the trace and block tiers run lanes in fixed-width
 * blocks of W over the reg-major register file — per-op loops with a
 * compile-time trip count so the compiler emits real SIMD, contiguous
 * and uniform memory fast paths, and per-block divergence containment
 * (a divergent branch or atomic bails only the affected W lanes to the
 * lane-major executor).  The lane-major tier is the order-defining
 * reference; the instrumented tier adds sampler recording and
 * out-of-bounds clamping.  All tiers produce bit-identical buffers,
 * statistics and simulated timing.
 *
 * Global-memory words are accessed through relaxed std::atomic_ref so
 * that independent workgroups can be interpreted on different host
 * threads without UB (benign same-value flag races, e.g. bfs's stop
 * flag, behave exactly as on real hardware).
 */

#ifndef VCB_SIM_INTERPRETER_H
#define VCB_SIM_INTERPRETER_H

#include <cstdint>
#include <vector>

#include "sim/dispatch.h"
#include "sim/kernel.h"
#include "sim/sampler.h"

namespace vcb::sim {

/** Per-workgroup statistics, merged into DispatchStats by the engine. */
struct WorkgroupStats
{
    uint64_t laneCycles = 0;
    uint64_t sharedAccesses = 0;
    uint64_t atomicOps = 0;
    uint64_t barriers = 0;
    uint64_t invocations = 0;
    /** Workgroups run per executor tier (indexed by ExecTier).  Merged
     *  into the engine's process-wide counters, NOT DispatchStats:
     *  tier choice must never change simulation results. */
    uint64_t tierWorkgroups[static_cast<size_t>(ExecTier::Count)] = {};
    /** Global-memory accesses per site (sized kernel.numSites). */
    std::vector<uint64_t> siteExec;
};

/**
 * Reusable workgroup executor.  One instance must only be used by one
 * thread at a time; the engine keeps one per worker thread for the
 * duration of a dispatch.
 */
class Interpreter
{
  public:
    Interpreter() = default;

    /** Point the interpreter at a dispatch (cheap when unchanged). */
    void prepare(const DispatchContext &ctx);

    /**
     * Execute workgroup (wx, wy, wz) to completion, accumulating into
     * ws (whose siteExec must be pre-sized).  When sampler is non-null
     * this workgroup's memory accesses are recorded for coalescing
     * estimation.
     */
    void runWorkgroup(uint32_t wx, uint32_t wy, uint32_t wz,
                      WorkgroupStats &ws, CoalesceSampler *sampler);

  private:
    struct LaneId
    {
        uint32_t x, y, z;
    };

    /**
     * Execute one barrier phase lane-by-lane for lanes in
     * [lane_begin, lane_end): every lane runs from pcs[lane] until Ret
     * or Barrier; counts of each outcome are ACCUMULATED into the out
     * params so block executors can bail lane ranges into it.
     * Instrumented adds sampler recording and robust-access clamping.
     */
    template <bool Instrumented>
    void runPhase(uint32_t lane_begin, uint32_t lane_end, uint32_t wx,
                  uint32_t wy, uint32_t wz, WorkgroupStats &ws,
                  CoalesceSampler *sampler, uint32_t &done_out,
                  uint32_t &barrier_out);

    /**
     * Execute one phase op-major over the whole workgroup: every lane
     * is at start_pc and each micro-op runs across all lanes before
     * the next, amortizing dispatch over the workgroup and letting the
     * reg-major lane vectors vectorize.  Memory ops take per-W-block
     * fast paths: contiguous addresses become a single bounds test
     * plus memcpy, uniform addresses one load broadcast.  On a
     * divergent branch the per-lane pcs are written and the rest of
     * the phase continues in runPhaseBlocks (divergence containment at
     * W-lane granularity); ops whose lane order is observable
     * (atomics) bail the same way and serialize block by block.
     * TraceTier compiles the branch/atomic machinery out entirely for
     * straight-line kernels: the whole dispatch body is one fused
     * op-major loop.
     */
    template <uint32_t W, bool TraceTier>
    void runPhaseWg(uint32_t start_pc, uint32_t wx, uint32_t wy,
                    uint32_t wz, WorkgroupStats &ws, uint32_t &done_out,
                    uint32_t &barrier_out);

    /** Dispatch runPhaseWg on the run-time block width `bw`. */
    void runPhaseWgDyn(bool trace, uint32_t start_pc, uint32_t wx,
                       uint32_t wy, uint32_t wz, WorkgroupStats &ws,
                       uint32_t &done_out, uint32_t &barrier_out);

    /**
     * Phase continuation over fixed-width lane blocks, resuming from
     * the per-lane pcs: each block of W lanes whose pcs agree runs the
     * rest of the phase in lockstep (compile-time trip count W over
     * contiguous lane vectors — real SIMD); blocks with mixed pcs, and
     * blocks that diverge again or reach an atomic, fall to the
     * lane-major executor AT BLOCK GRANULARITY ONLY.  Running block b
     * to phase end before block b+1 starts preserves the lane-major
     * executor's global atomic order exactly.  Tail lanes (localCount
     * % W) always run lane-major.
     */
    template <uint32_t W>
    void runPhaseBlocks(uint32_t wx, uint32_t wy, uint32_t wz,
                        WorkgroupStats &ws, uint32_t &done_out,
                        uint32_t &barrier_out);

    /** Dispatch runPhaseBlocks on the run-time block width `bw`. */
    void runPhaseBlocksDyn(uint32_t wx, uint32_t wy, uint32_t wz,
                           WorkgroupStats &ws, uint32_t &done_out,
                           uint32_t &barrier_out);

    /**
     * Execute one superop (see SuperKind in microop.h) over lanes
     * [lane_begin, lane_end) as a fused per-lane loop: the run's
     * intermediates stay in host registers instead of round-tripping
     * through the lane register file.  Used by the trace/block
     * executors; the lane-major executors run the scalar per-lane
     * case inline (which also handles sampling and robust clamping).
     */
    void execSuper(const SuperOp &sup, uint32_t pc, uint32_t lane_begin,
                   uint32_t lane_end, WorkgroupStats &ws);

    const DispatchContext *ctx = nullptr;
    const CompiledKernel *kernel = nullptr;
    uint32_t localCount = 0;
    /** Non-instrumented tier for this dispatch (effectiveExecTier). */
    ExecTier tier = ExecTier::Block;
    /** Lane-block width W for the block/trace tiers. */
    uint32_t bw = 8;

    std::vector<uint32_t> regs;   ///< localCount x regCount
    std::vector<uint32_t> pcs;    ///< per-lane program counter
    std::vector<uint32_t> shared; ///< workgroup shared memory
    std::vector<LaneId> lids;     ///< per-lane local-invocation id
};

} // namespace vcb::sim

#endif // VCB_SIM_INTERPRETER_H

/**
 * @file
 * The kernel interpreter: functional execution of one workgroup.
 *
 * Invocations are interpreted lane-by-lane.  Workgroup barriers are
 * handled by phased execution: every lane runs until its next Barrier
 * (or Ret), then all lanes resume — equivalent to lockstep execution
 * for data-race-free kernels, which is what every supported
 * programming model requires anyway.  Mixed barrier arrival (some
 * lanes done, some at a barrier) is the undefined behaviour all three
 * real APIs document; the simulator traps it.
 *
 * Global-memory words are accessed through relaxed std::atomic_ref so
 * that independent workgroups can be interpreted on different host
 * threads without UB (benign same-value flag races, e.g. bfs's stop
 * flag, behave exactly as on real hardware).
 */

#ifndef VCB_SIM_INTERPRETER_H
#define VCB_SIM_INTERPRETER_H

#include <cstdint>
#include <vector>

#include "sim/dispatch.h"
#include "sim/kernel.h"
#include "sim/sampler.h"

namespace vcb::sim {

/** Per-workgroup statistics, merged into DispatchStats by the engine. */
struct WorkgroupStats
{
    uint64_t laneCycles = 0;
    uint64_t sharedAccesses = 0;
    uint64_t atomicOps = 0;
    uint64_t barriers = 0;
    uint64_t invocations = 0;
    /** Global-memory accesses per site (sized kernel.numSites). */
    std::vector<uint64_t> siteExec;
};

/**
 * Reusable workgroup executor.  One instance must only be used by one
 * thread at a time; the engine keeps one per worker thread.
 */
class Interpreter
{
  public:
    Interpreter() = default;

    /** Point the interpreter at a dispatch (cheap when unchanged). */
    void prepare(const DispatchContext &ctx);

    /**
     * Execute workgroup (wx, wy, wz) to completion, accumulating into
     * ws (whose siteExec must be pre-sized).  When sampler is non-null
     * this workgroup's memory accesses are recorded for coalescing
     * estimation.
     */
    void runWorkgroup(uint32_t wx, uint32_t wy, uint32_t wz,
                      WorkgroupStats &ws, CoalesceSampler *sampler);

  private:
    enum class LaneState : uint8_t { Ready, AtBarrier, Done };

    LaneState runLane(uint32_t lane, uint32_t wx, uint32_t wy,
                      uint32_t wz, WorkgroupStats &ws,
                      CoalesceSampler *sampler);

    const DispatchContext *ctx = nullptr;
    const CompiledKernel *kernel = nullptr;
    uint32_t localCount = 0;

    std::vector<uint32_t> regs;    ///< localCount x regCount
    std::vector<uint32_t> pcs;     ///< per-lane program counter
    std::vector<LaneState> states; ///< per-lane state
    std::vector<uint32_t> shared;  ///< workgroup shared memory
};

} // namespace vcb::sim

#endif // VCB_SIM_INTERPRETER_H

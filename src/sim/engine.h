/**
 * @file
 * The execution engine: functionally executes a dispatch across all
 * workgroups and produces its simulated device time.
 *
 * dispatch() interprets a few spread-out workgroups first on the
 * instrumented executor with the coalescing sampler attached, then
 * fans the remaining workgroups out over
 * ThreadPool::parallelForRange, where each worker runs the kernel's
 * selected executor tier (trace / block-lockstep over lane blocks of
 * W, bailing divergent or atomic blocks to lane-major — see ExecTier
 * in src/sim/dispatch.h, src/sim/interpreter.cc and
 * docs/ARCHITECTURE.md).  Workgroups are independent in every
 * supported programming model, so parallel interpretation preserves
 * results for valid kernels; per-worker statistics merge once per
 * dispatch, so no lock sits on the per-workgroup path.
 */

#ifndef VCB_SIM_ENGINE_H
#define VCB_SIM_ENGINE_H

#include "sim/device.h"
#include "sim/dispatch.h"
#include "sim/kernel.h"

namespace vcb::sim {

/**
 * Process-wide count of workgroups executed by all engines, for perf
 * tooling (tools/vcb_perf): sample before/after a run to derive
 * workgroups-per-second.  Monotonic, never reset.
 */
uint64_t executedWorkgroupCount();

/**
 * Process-wide wall-clock nanoseconds spent inside
 * ExecutionEngine::dispatch — the simulator's own execution time,
 * excluding host-side workload generation, reference computation and
 * validation.  Monotonic, never reset; the companion to
 * executedWorkgroupCount() for throughput measurement.
 */
uint64_t dispatchWallNs();

/**
 * Wall-clock nanoseconds spent inside dispatch() by the CALLING
 * thread.  dispatch() joins its thread-pool fan-out before returning,
 * so the full dispatch duration elapses on the caller — this counter
 * therefore partitions dispatchWallNs() by dispatching thread.  The
 * sweep executor samples it around each cell to attribute simulator
 * time per cell without a process-wide reset.
 */
uint64_t dispatchWallNsThisThread();

/**
 * Process-wide count of workgroups run on one executor tier, for perf
 * tooling (vcb_perf's per-tier breakdown).  Like
 * executedWorkgroupCount(): monotonic, never reset, and deliberately
 * OUTSIDE DispatchStats — tier choice must never affect simulation
 * results.  A workgroup counts toward the tier it was dispatched on
 * even when some of its lane blocks bailed to the lane-major executor.
 */
uint64_t tierWorkgroupCount(ExecTier t);

/** Per-device dispatch executor. */
class ExecutionEngine
{
  public:
    explicit ExecutionEngine(const DeviceSpec &dev) : dev(dev) {}

    /**
     * Execute the kernel over a (gx, gy, gz) grid.
     *
     * @param ctx dispatch inputs; ctx.kernel/buffers must be populated.
     * @return simulated device time (including fixed dispatch latency
     *         and the driver's per-dispatch setup) plus statistics.
     */
    DispatchResult dispatch(const DispatchContext &ctx);

    const DeviceSpec &device() const { return dev; }

  private:
    const DeviceSpec &dev;
};

} // namespace vcb::sim

#endif // VCB_SIM_ENGINE_H

/**
 * @file
 * The four GPUs of the paper's evaluation (Tables II and III).
 *
 * Architectural numbers (compute units, clocks, peak bandwidth, push
 * constant limits, warp/wavefront widths) are the public specs of the
 * real parts.  Driver-profile constants (overheads, efficiencies,
 * compiler maturity, quirks) are the *calibrated model inputs*; each is
 * annotated with the paper observation (or the cited prior work, e.g.
 * Fang et al. [15] for launch overheads) that motivates it.  They are
 * set once here and shared by every benchmark — per-benchmark results
 * then *emerge* from executed instruction and memory-access counts.
 *
 * These four are the only compiled-in devices.  The `devices/`
 * directory at the repo root carries the same four serialized as
 * spec files (byte-identical — tests/test_device_file.cc enforces it)
 * plus the post-paper expansion parts, and the report pipeline
 * (tools/vcb_report) loads everything from there: new devices are
 * added as spec files, never here.  Field-by-field semantics and
 * calibration guidance: docs/DEVICE_MODEL.md; load/save API:
 * sim/device_file.h.
 */

#include "sim/device.h"

#include "common/logging.h"
#include "common/strutil.h"

namespace vcb::sim {

namespace {

DeviceSpec
makeGtx1050Ti()
{
    DeviceSpec d;
    d.name = "NVIDIA GTX1050Ti";
    d.vendor = "NVIDIA";
    d.platform = "Ubuntu 16.04 64-bit, Core i5-2500K, 16 GB";
    d.mobile = false;
    // Pascal GP107: 6 SMs x 128 CUDA cores @ ~1.39 GHz boost.
    d.computeUnits = 6;
    d.simdWidth = 128;
    d.warpWidth = 32;
    d.clockGhz = 1.39;
    // 7 GHz effective GDDR5 on a 128-bit bus = 112 GB/s (paper Sec. V-A1).
    d.peakBwGBs = 112.0;
    d.sharedBwGBs = 900.0;
    d.cacheLineBytes = 64;
    // Transaction issue limit: unit-stride (2 lines per warp access)
    // stays bandwidth-bound, while wide strides (a line per lane) are
    // transaction-bound and split by the per-API transaction
    // efficiency — reproducing Fig. 1's large-stride behaviour.
    d.txPerNs = 1.70;
    d.dispatchLatencyNs = 1500;
    d.atomicNsEach = 2.0;
    d.deviceHeapBytes = 4ull << 30;
    d.hostVisibleHeapBytes = 16ull << 30;
    d.hostCopyBwGBs = 12.0; // PCIe 3.0 x16 effective
    d.unifiedMemory = false;
    d.maxPushBytes = 256; // paper Sec. VI-B
    d.maxWorkgroupInvocations = 1024;
    d.computeQueueCount = 8;
    d.transferQueueCount = 2;

    DriverProfile &vk = d.apis[static_cast<int>(Api::Vulkan)];
    vk.available = true;
    vk.version = "API Version 1.0.42";
    vk.submitOverheadNs = 10000;
    vk.syncWakeupNs = 14000;
    vk.pipelineCompileNsPerInsn = 9000;
    vk.dispatchSetupNs = 700;
    vk.barrierNs = 600;
    vk.bindPipelineNs = 1000;
    vk.bindDescSetNs = 900;
    vk.pushConstantNs = 150;
    // Young SPIR-V compiler: no local-memory promotion (bfs finding).
    vk.localMemPromotion = false;
    vk.codeQuality = 1.0;
    vk.memEfficiency = 0.849; // measured unit stride -> 79.6 % (Fig. 1a)
    vk.txEfficiency = 1.06;   // Fig. 1a: slight win beyond 64 B strides

    DriverProfile &cl = d.apis[static_cast<int>(Api::OpenCl)];
    cl.available = true;
    cl.version = "OpenCL 1.2";
    cl.launchOverheadNs = 6500;  // clEnqueueNDRangeKernel (Fang et al.)
    cl.syncWakeupNs = 22000;     // clFinish round trip
    cl.jitBuildNsPerInsn = 90000; // JIT: excluded from kernel-time regions
    cl.dispatchSetupNs = 1000;
    cl.barrierNs = 0;
    cl.localMemPromotion = true; // mature compiler (CodeXL finding)
    cl.codeQuality = 1.0;
    cl.memEfficiency = 0.88;
    cl.txEfficiency = 1.0;

    DriverProfile &cu = d.apis[static_cast<int>(Api::Cuda)];
    cu.available = true;
    cu.version = "CUDA 8.0";
    cu.launchOverheadNs = 5500;
    cu.syncWakeupNs = 16000;
    cu.dispatchSetupNs = 800;
    cu.localMemPromotion = true;
    cu.codeQuality = 1.0;
    cu.memEfficiency = 0.926; // measured unit stride -> 84 % (Fig. 1a)
    cu.txEfficiency = 1.0;
    return d;
}

DeviceSpec
makeRx560()
{
    DeviceSpec d;
    d.name = "AMD RX560";
    d.vendor = "AMD";
    d.platform = "Ubuntu 16.04 64-bit, Core i5-2500K, 16 GB";
    d.mobile = false;
    // Polaris 21: 16 CUs x 64 stream processors @ ~1.175 GHz.
    d.computeUnits = 16;
    d.simdWidth = 64;
    d.warpWidth = 64; // GCN wavefront
    d.clockGhz = 1.175;
    d.peakBwGBs = 112.0; // same GDDR5 configuration as above
    d.sharedBwGBs = 1000.0;
    d.cacheLineBytes = 64;
    d.txPerNs = 1.70;
    d.dispatchLatencyNs = 1800;
    d.atomicNsEach = 2.0;
    d.deviceHeapBytes = 4ull << 30;
    d.hostVisibleHeapBytes = 16ull << 30;
    d.hostCopyBwGBs = 12.0;
    d.unifiedMemory = false;
    d.maxPushBytes = 128; // paper Sec. VI-B
    d.maxWorkgroupInvocations = 1024;
    d.computeQueueCount = 4;
    d.transferQueueCount = 2;

    DriverProfile &vk = d.apis[static_cast<int>(Api::Vulkan)];
    vk.available = true;
    vk.version = "API Version 1.0.37";
    vk.submitOverheadNs = 11000;
    vk.syncWakeupNs = 15000;
    vk.pipelineCompileNsPerInsn = 10000;
    vk.dispatchSetupNs = 1500;
    vk.barrierNs = 1500;
    vk.bindPipelineNs = 1300;
    vk.bindDescSetNs = 1000;
    vk.pushConstantNs = 160;
    vk.localMemPromotion = false;
    vk.codeQuality = 1.0;
    vk.memEfficiency = 0.791; // measured unit stride -> 71.6 % (Fig. 1b)
    vk.txEfficiency = 1.05;

    DriverProfile &cl = d.apis[static_cast<int>(Api::OpenCl)];
    cl.available = true;
    cl.version = "OpenCL 2.0";
    // AMDGPU-Pro's CL stack has a leaner submission path than NVIDIA's:
    // the paper's RX560 geomean (1.26x) is visibly smaller than the
    // GTX1050Ti one (1.66x).
    cl.launchOverheadNs = 6000;
    cl.syncWakeupNs = 16000;
    cl.jitBuildNsPerInsn = 110000;
    cl.dispatchSetupNs = 1200;
    cl.localMemPromotion = true;
    cl.codeQuality = 1.0;
    cl.memEfficiency = 0.758; // measured unit stride -> 71.5 % (Fig. 1b)
    cl.txEfficiency = 1.0;

    // No CUDA on AMD hardware.
    d.apis[static_cast<int>(Api::Cuda)].available = false;
    return d;
}

DeviceSpec
makeAdreno506()
{
    DeviceSpec d;
    d.name = "Qualcomm Adreno 506";
    d.vendor = "Qualcomm";
    d.platform = "Snapdragon 625, ARM Cortex A53 x8, Android 7.0";
    d.mobile = true;
    d.computeUnits = 2;
    d.simdWidth = 32;
    d.warpWidth = 64;
    d.clockGhz = 0.65;
    d.peakBwGBs = 3.7; // LPDDR3 share available to the GPU
    d.sharedBwGBs = 40.0;
    d.cacheLineBytes = 64;
    d.txPerNs = 0.050;
    d.dispatchLatencyNs = 9000;
    d.atomicNsEach = 12.0;
    d.deviceHeapBytes = 512ull << 20;
    d.hostVisibleHeapBytes = 512ull << 20;
    d.hostCopyBwGBs = 3.0; // unified memory: copies run at DRAM speed
    d.unifiedMemory = true;
    d.maxPushBytes = 128; // paper Sec. VI-B: 128 B on both mobiles
    d.maxWorkgroupInvocations = 512;
    d.computeQueueCount = 1;
    d.transferQueueCount = 1;

    DriverProfile &vk = d.apis[static_cast<int>(Api::Vulkan)];
    vk.available = true;
    vk.version = "API Version 1.0.20";
    vk.submitOverheadNs = 55000;
    vk.syncWakeupNs = 70000;
    vk.pipelineCompileNsPerInsn = 25000;
    vk.dispatchSetupNs = 10000;
    vk.barrierNs = 6000;
    // Re-binding a different compute pipeline thrashes the young
    // driver: benchmarks switching pipelines every iteration
    // (gaussian, lud, cfd, bfs) lose, while single-pipeline ones
    // (pathfinder) keep their command-buffer advantage -- matching
    // Fig. 4b where only pathfinder speeds up.
    vk.bindPipelineNs = 45000;
    vk.bindDescSetNs = 12000;
    vk.pushConstantNs = 500;
    // Shared-memory kernels compile poorly on this driver.
    vk.sharedKernelTimeDerate = 2.0;
    // Paper Sec. V-B1: the driver appears to treat push constants as
    // ordinary storage-buffer rebinds.
    vk.pushConstantsAsBufferBind = true;
    vk.localMemPromotion = false;
    // Immature Vulkan driver (paper Sec. V-B2: geomean 0.83x, "can be
    // related to the immaturity of the Vulkan drivers on this platform").
    vk.codeQuality = 0.76;
    vk.memEfficiency = 0.91;
    vk.txEfficiency = 1.02;

    DriverProfile &cl = d.apis[static_cast<int>(Api::OpenCl)];
    cl.available = true;
    cl.version = "OpenCL 2.0";
    cl.launchOverheadNs = 30000;
    cl.syncWakeupNs = 60000;
    cl.jitBuildNsPerInsn = 500000;
    cl.dispatchSetupNs = 3000;
    cl.localMemPromotion = true;
    cl.codeQuality = 1.0;
    cl.memEfficiency = 0.92;
    cl.txEfficiency = 1.0;
    // Paper Sec. V-B2: "on Snapdragon only the lud OpenCL failed
    // because of driver issues".
    cl.brokenKernels = {"lud"};

    d.apis[static_cast<int>(Api::Cuda)].available = false;
    return d;
}

DeviceSpec
makePowervrG6430()
{
    DeviceSpec d;
    d.name = "Imagination PowerVR Rogue G6430";
    d.vendor = "Imagination";
    d.platform = "Google Nexus Player, Intel Atom x4, Android 7.1";
    d.mobile = true;
    d.computeUnits = 4;
    d.simdWidth = 32;
    d.warpWidth = 32;
    d.clockGhz = 0.533;
    // Paper Fig. 3a: 2.85 GB/s is 89 % of peak => peak = 3.2 GB/s.
    d.peakBwGBs = 3.2;
    d.sharedBwGBs = 35.0;
    d.cacheLineBytes = 64;
    d.txPerNs = 0.047;
    d.dispatchLatencyNs = 8000;
    d.atomicNsEach = 14.0;
    d.deviceHeapBytes = 384ull << 20;
    d.hostVisibleHeapBytes = 384ull << 20;
    d.hostCopyBwGBs = 2.6;
    d.unifiedMemory = true;
    d.maxPushBytes = 128;
    d.maxWorkgroupInvocations = 512;
    d.computeQueueCount = 1;
    d.transferQueueCount = 1;

    DriverProfile &vk = d.apis[static_cast<int>(Api::Vulkan)];
    vk.available = true;
    vk.version = "API Version 1.0.30";
    vk.submitOverheadNs = 25000;
    vk.syncWakeupNs = 35000;
    vk.pipelineCompileNsPerInsn = 22000;
    vk.dispatchSetupNs = 2500;
    vk.barrierNs = 1500;
    vk.bindPipelineNs = 5000;
    vk.bindDescSetNs = 4000;
    vk.pushConstantNs = 400;
    vk.localMemPromotion = false;
    vk.codeQuality = 0.97;
    vk.memEfficiency = 0.90; // measured unit stride -> 2.69 GB/s (Fig. 3a)
    vk.txEfficiency = 1.05;  // Fig. 3a: Vulkan slightly ahead above 4 B
    // Paper Sec. V-B2: hotspot is the one Nexus benchmark where
    // Vulkan does not win; the paper gives no mechanism, so it is
    // modelled as a per-kernel execution derate in this driver.
    vk.kernelTimeDerates = {{"hotspot", 2.2}};
    // Paper Sec. V-B2: "the backprop OpenCL and Vulkan implementations
    // failed to run on Nexus".
    vk.brokenKernels = {"backprop"};

    DriverProfile &cl = d.apis[static_cast<int>(Api::OpenCl)];
    cl.available = true;
    cl.version = "OpenCL 1.2 (libpvrcpt.so)";
    cl.launchOverheadNs = 35000;
    cl.syncWakeupNs = 70000;
    cl.jitBuildNsPerInsn = 550000;
    cl.dispatchSetupNs = 2000;
    cl.localMemPromotion = true;
    cl.codeQuality = 1.0;
    cl.memEfficiency = 0.953; // measured unit stride -> 2.85 GB/s (Fig. 3a)
    cl.txEfficiency = 1.0;
    cl.brokenKernels = {"backprop"};

    d.apis[static_cast<int>(Api::Cuda)].available = false;
    return d;
}

} // namespace

const std::vector<DeviceSpec> &
deviceRegistry()
{
    static const std::vector<DeviceSpec> registry = {
        makeGtx1050Ti(),
        makeRx560(),
        makeAdreno506(),
        makePowervrG6430(),
    };
    return registry;
}

namespace {
/** Thread-scoped override state: each thread that calls
 *  setActiveDeviceRegistry gets its own storage, so concurrent serve
 *  sessions with different device registries can never observe (or
 *  dangle pointers into) each other's specs.  The runtime front-ends
 *  resolve DeviceSpecs by identity, so the storage must stay stable
 *  for as long as the thread runs workloads against it. */
thread_local bool activeOverride = false;
thread_local std::vector<DeviceSpec> activeStorage;
} // namespace

const std::vector<DeviceSpec> &
activeDeviceRegistry()
{
    return activeOverride ? activeStorage : deviceRegistry();
}

const std::vector<DeviceSpec> &
setActiveDeviceRegistry(std::vector<DeviceSpec> devices)
{
    VCB_ASSERT(!devices.empty(),
               "active device registry cannot be empty");
    activeStorage = std::move(devices);
    activeOverride = true;
    return activeStorage;
}

void
clearActiveDeviceRegistry()
{
    activeOverride = false;
    activeStorage.clear();
}

ScopedDeviceRegistry::ScopedDeviceRegistry(std::vector<DeviceSpec> devices)
    : hadOverride(activeOverride)
{
    if (hadOverride)
        saved = std::move(activeStorage);
    setActiveDeviceRegistry(std::move(devices));
}

ScopedDeviceRegistry::~ScopedDeviceRegistry()
{
    if (hadOverride)
        setActiveDeviceRegistry(std::move(saved));
    else
        clearActiveDeviceRegistry();
}

const std::vector<DeviceSpec> &
ScopedDeviceRegistry::devices() const
{
    return activeStorage;
}

const DeviceSpec &
deviceByName(const std::string &name)
{
    std::string needle = toLower(name);
    for (const auto &d : activeDeviceRegistry()) {
        if (toLower(d.name).find(needle) != std::string::npos)
            return d;
    }
    fatal("no device matching '%s' in the registry", name.c_str());
}

const DeviceSpec &
gtx1050ti()
{
    return deviceRegistry()[0];
}

const DeviceSpec &
rx560()
{
    return deviceRegistry()[1];
}

const DeviceSpec &
adreno506()
{
    return deviceRegistry()[2];
}

const DeviceSpec &
powervrG6430()
{
    return deviceRegistry()[3];
}

} // namespace vcb::sim

/**
 * @file
 * Unified-memory paging model shared by the three runtime front-ends.
 *
 * On a device with `unifiedMemory = true` and `uvm_oversubscription`
 * > 1, allocations may overflow the device-local heap into the shared
 * pool up to `DeviceSpec::uvmCapBytes()` (UVMBench/ALTIS-style
 * oversubscription; docs/DEVICE_MODEL.md has the field reference and
 * calibration notes).  The model is deliberately simple and fully
 * deterministic:
 *
 *  - **placement** is decided at allocation time: an allocation that
 *    no longer fits the device heap is *paged*; one that exceeds the
 *    cap fails exactly like a hard-cap device;
 *  - **first-touch migration**: a paged allocation starts non-resident
 *    and every host access (map, write/read buffer, memcpy) evicts it
 *    again; the next device command touching it charges
 *    `pages x (uvm_migration_ns_per_page + uvm_fault_latency_ns)`
 *    ahead of the kernel and marks it resident;
 *  - **bandwidth derate**: while total usage exceeds the device heap,
 *    dispatches run their DRAM system at
 *    `uvm_oversub_bw_derate x` speed (DispatchContext::dramDerate).
 *
 * UvmAccounting is the one bookkeeping object all three front-ends
 * embed (and the property tests drive directly), so vkm/ocl/cuda can
 * never disagree on placement, cap checks or migration costs.
 */

#ifndef VCB_SIM_UVM_H
#define VCB_SIM_UVM_H

#include <cstdint>

#include "sim/device.h"

namespace vcb::sim {

/** Pages needed to migrate `bytes` (ceiling division). */
uint64_t uvmPagesFor(const DeviceSpec &dev, uint64_t bytes);

/** First-touch migration cost of a `bytes`-sized allocation:
 *  pages x (migration + fault latency). */
double uvmMigrateNs(const DeviceSpec &dev, uint64_t bytes);

/** Device-heap pool accounting for one context/device session. */
class UvmAccounting
{
  public:
    explicit UvmAccounting(const DeviceSpec &dev) : dev_(&dev) {}

    /** Where an allocation landed (or why it failed). */
    enum class Placement
    {
        DeviceLocal, ///< fits the device heap
        Paged,       ///< overflows the heap, lives in the shared pool
        TooBig       ///< exceeds the cap — allocation must fail
    };

    /** Try to allocate; usage grows unless the result is TooBig. */
    Placement alloc(uint64_t bytes)
    {
        if (used_ + bytes > capBytes())
            return Placement::TooBig;
        bool paged = used_ + bytes > dev_->deviceHeapBytes;
        used_ += bytes;
        return paged ? Placement::Paged : Placement::DeviceLocal;
    }

    /** Return an allocation's bytes to the pool. */
    void free(uint64_t bytes) { used_ -= bytes; }

    /** Bytes currently allocated against the pool. */
    uint64_t heapUsed() const { return used_; }

    /** Hard allocation limit: the device heap, or heap x
     *  oversubscription factor when paging is enabled. */
    uint64_t capBytes() const { return dev_->uvmCapBytes(); }

    /** True while the working set exceeds the device heap. */
    bool oversubscribed() const
    {
        return used_ > dev_->deviceHeapBytes;
    }

    /** DRAM derate for the next dispatch (1 when not oversubscribed). */
    double bwDerate() const
    {
        return oversubscribed() ? dev_->uvmOversubBwDerate : 1.0;
    }

    /** Record a first-touch migration (run-level counters). */
    void chargeMigration(uint64_t bytes, double ns)
    {
        migratedBytes_ += bytes;
        faultNs_ += ns;
    }

    /** Total bytes migrated device-ward this session. */
    uint64_t migratedBytes() const { return migratedBytes_; }
    /** Total migration + fault time charged this session. */
    double faultNs() const { return faultNs_; }

  private:
    const DeviceSpec *dev_;
    uint64_t used_ = 0;
    uint64_t migratedBytes_ = 0;
    double faultNs_ = 0;
};

} // namespace vcb::sim

#endif // VCB_SIM_UVM_H

/**
 * @file
 * CUDA-mini ("cuda"): the CUDA-runtime-style API of the simulator,
 * available only on NVIDIA-model devices.
 *
 * Modelled behaviours the study relies on: kernels arrive offline
 * compiled (fat binary — no JIT in application time), per-launch
 * overheads are the lowest of the three APIs, streams pipeline
 * launches in order, and host synchronisation (stream/device sync) is
 * required between dependent multi-kernel iterations.
 */

#ifndef VCB_CUDA_CUDA_RT_H
#define VCB_CUDA_CUDA_RT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/device.h"
#include "spirv/module.h"

namespace vcb::cuda {

struct RuntimeImpl;
struct DevPtrImpl;
struct FunctionImpl;

/** True if the device supports CUDA (NVIDIA parts only). */
bool available(const sim::DeviceSpec &dev);

/** A device allocation (cudaMalloc analogue). */
class DevPtr
{
  public:
    DevPtr() = default;
    bool valid() const { return impl_ != nullptr; }
    uint64_t sizeBytes() const;
    DevPtrImpl *impl() const { return impl_.get(); }
    std::shared_ptr<DevPtrImpl> impl_;
};

/** A loaded kernel (cuModuleGetFunction analogue). */
class Function
{
  public:
    Function() = default;
    bool valid() const { return impl_ != nullptr; }
    FunctionImpl *impl() const { return impl_.get(); }
    std::shared_ptr<FunctionImpl> impl_;
};

/** Per-device CUDA runtime state (context + default/extra streams). */
class Runtime
{
  public:
    /** fatal() if CUDA is unavailable on the device. */
    explicit Runtime(const sim::DeviceSpec &dev, uint32_t streams = 1);
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    const sim::DeviceSpec &device() const;

    /** cudaMalloc: returns an invalid DevPtr on out-of-memory so
     *  callers can skip the workload; UVM devices page past the heap
     *  (cudaMallocManaged semantics) up to uvmCapBytes(). */
    DevPtr malloc(uint64_t bytes);
    /** cudaMemcpy host->device (blocking). */
    void memcpyHtoD(DevPtr dst, const void *src, uint64_t bytes);
    /** cudaMemcpy device->host (blocking). */
    void memcpyDtoH(void *dst, DevPtr src, uint64_t bytes);
    /** cudaMemset. */
    void memset(DevPtr dst, uint32_t word_value, uint64_t bytes);

    /** Load an offline-compiled kernel; fatal on rejection. */
    Function loadFunction(const spirv::Module &m);

    /**
     * kernel<<<grid, block, 0, stream>>>(args...): block sizes must
     * match the module's local size; buffer args map to bindings and
     * scalar args to push-constant words (in order).
     */
    void launchKernel(Function f, uint32_t grid_x, uint32_t grid_y,
                      uint32_t grid_z,
                      const std::vector<DevPtr> &buffer_args,
                      const std::vector<uint32_t> &scalar_args,
                      uint32_t stream = 0);

    /**
     * cudaEventRecord + cudaEventElapsedTime analogue: returns the
     * simulated timestamp at which the stream reaches this point (its
     * pending work's completion, or now if idle).
     */
    double eventRecordNs(uint32_t stream = 0);

    /** cudaStreamSynchronize. */
    void streamSynchronize(uint32_t stream = 0);
    /** cudaDeviceSynchronize. */
    void deviceSynchronize();

    /** Simulated host clock (std::chrono analogue). */
    double hostNowNs() const;

    RuntimeImpl *impl() const { return impl_.get(); }

  private:
    std::unique_ptr<RuntimeImpl> impl_;
};

/** Bytes currently allocated against the runtime's device heap. */
uint64_t heapUsed(const Runtime &rt);

/** Bytes migrated device-ward by UVM first-touch paging so far. */
uint64_t uvmMigratedBytes(const Runtime &rt);

/** Migration + fault time charged to the device by UVM paging, ns. */
double uvmFaultNs(const Runtime &rt);

} // namespace vcb::cuda

#endif // VCB_CUDA_CUDA_RT_H

#include "cuda/cuda_rt.h"

#include <cstring>

#include "common/logging.h"
#include "sim/engine.h"
#include "sim/kernel.h"
#include "sim/timeline.h"
#include "sim/timing.h"
#include "sim/uvm.h"

namespace vcb::cuda {

struct RuntimeImpl
{
    const sim::DeviceSpec *spec = nullptr;
    std::unique_ptr<sim::ExecutionEngine> engine;
    std::unique_ptr<sim::Timeline> timeline;
    std::unique_ptr<sim::UvmAccounting> uvm;
};

struct DevPtrImpl
{
    RuntimeImpl *rt = nullptr;
    uint64_t bytes = 0;
    /** UVM: overflowed the device heap into the shared pool. */
    bool paged = false;
    /** UVM: device-side; host memcpys clear this and the next launch
     *  touching the allocation pays the first-touch migration. */
    bool resident = false;
    std::vector<uint32_t> words;

    ~DevPtrImpl()
    {
        if (rt)
            rt->uvm->free(bytes);
    }
};

struct FunctionImpl
{
    RuntimeImpl *rt = nullptr;
    std::unique_ptr<sim::CompiledKernel> kernel;
};

bool
available(const sim::DeviceSpec &dev)
{
    return dev.profile(sim::Api::Cuda).available;
}

uint64_t
DevPtr::sizeBytes() const
{
    VCB_ASSERT(impl_, "null device pointer");
    return impl_->bytes;
}

Runtime::Runtime(const sim::DeviceSpec &dev, uint32_t streams)
    : impl_(std::make_unique<RuntimeImpl>())
{
    if (!available(dev))
        fatal("cuda: no CUDA support on %s", dev.name.c_str());
    VCB_ASSERT(streams >= 1, "need at least one stream");
    impl_->spec = &dev;
    impl_->engine = std::make_unique<sim::ExecutionEngine>(dev);
    impl_->timeline = std::make_unique<sim::Timeline>(streams);
    impl_->uvm = std::make_unique<sim::UvmAccounting>(dev);
}

Runtime::~Runtime() = default;

const sim::DeviceSpec &
Runtime::device() const
{
    return *impl_->spec;
}

double
Runtime::hostNowNs() const
{
    return impl_->timeline->hostNow();
}

DevPtr
Runtime::malloc(uint64_t bytes)
{
    VCB_ASSERT(bytes > 0 && bytes % 4 == 0,
               "allocation must be a positive multiple of 4");
    // cudaErrorMemoryAllocation surfaces as an invalid DevPtr so
    // callers can skip the workload rather than abort — the same
    // failure surface as vkm's ErrorOutOfDeviceMemory.  UVM devices
    // (cudaMallocManaged semantics) page past the heap instead.
    sim::UvmAccounting::Placement placement = impl_->uvm->alloc(bytes);
    if (placement == sim::UvmAccounting::Placement::TooBig) {
        warn("cuda: out of device memory on %s (%llu B used, %llu B "
             "requested)",
             impl_->spec->name.c_str(),
             (unsigned long long)impl_->uvm->heapUsed(),
             (unsigned long long)bytes);
        return DevPtr();
    }
    DevPtr p;
    p.impl_ = std::make_shared<DevPtrImpl>();
    p.impl_->rt = impl_.get();
    p.impl_->bytes = bytes;
    p.impl_->paged = placement == sim::UvmAccounting::Placement::Paged;
    p.impl_->words.assign(bytes / 4, 0);
    return p;
}

void
Runtime::memcpyHtoD(DevPtr dst, const void *src, uint64_t bytes)
{
    VCB_ASSERT(dst.valid() && src && bytes <= dst.sizeBytes(),
               "bad memcpyHtoD");
    std::memcpy(dst.impl()->words.data(), src, bytes);
    // Host access evicts paged allocations (first-touch model).
    dst.impl()->resident = false;
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::Cuda);
    impl_->timeline->hostAdvance(prof.launchOverheadNs);
    double end = impl_->timeline->enqueue(
        0, sim::TimingModel::transferNs(*impl_->spec, bytes));
    impl_->timeline->hostWaitUntil(end, prof.syncWakeupNs);
}

void
Runtime::memcpyDtoH(void *dst, DevPtr src, uint64_t bytes)
{
    VCB_ASSERT(src.valid() && dst && bytes <= src.sizeBytes(),
               "bad memcpyDtoH");
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::Cuda);
    impl_->timeline->hostAdvance(prof.launchOverheadNs);
    double end = impl_->timeline->enqueue(
        0, sim::TimingModel::transferNs(*impl_->spec, bytes));
    impl_->timeline->hostWaitUntil(end, prof.syncWakeupNs);
    std::memcpy(dst, src.impl()->words.data(), bytes);
    // Host access evicts paged allocations (first-touch model).
    src.impl()->resident = false;
}

void
Runtime::memset(DevPtr dst, uint32_t word_value, uint64_t bytes)
{
    VCB_ASSERT(dst.valid() && bytes % 4 == 0 && bytes <= dst.sizeBytes(),
               "bad memset");
    std::fill(dst.impl()->words.begin(),
              dst.impl()->words.begin() + bytes / 4, word_value);
    // memset runs device-side: a paged destination pages in first.
    double migrate_ns = 0;
    DevPtrImpl *p = dst.impl();
    if (p->paged && !p->resident) {
        migrate_ns = sim::uvmMigrateNs(*impl_->spec, p->bytes);
        p->resident = true;
        impl_->uvm->chargeMigration(p->bytes, migrate_ns);
    }
    impl_->timeline->enqueue(
        0, migrate_ns +
               sim::TimingModel::deviceCopyNs(*impl_->spec, bytes) / 2.0);
}

Function
Runtime::loadFunction(const spirv::Module &m)
{
    std::string err;
    auto kernel =
        sim::compileKernel(m, *impl_->spec, sim::Api::Cuda, &err);
    if (!kernel)
        fatal("cuda: module load failed: %s", err.c_str());
    Function f;
    f.impl_ = std::make_shared<FunctionImpl>();
    f.impl_->rt = impl_.get();
    f.impl_->kernel = std::move(kernel);
    return f;
}

void
Runtime::launchKernel(Function f, uint32_t grid_x, uint32_t grid_y,
                      uint32_t grid_z,
                      const std::vector<DevPtr> &buffer_args,
                      const std::vector<uint32_t> &scalar_args,
                      uint32_t stream)
{
    VCB_ASSERT(f.valid(), "null function");
    VCB_ASSERT(stream < impl_->timeline->queueCount(),
               "stream %u out of range", stream);
    const sim::CompiledKernel &kernel = *f.impl()->kernel;
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::Cuda);

    sim::DispatchContext ctx;
    ctx.kernel = &kernel;
    ctx.groups[0] = grid_x;
    ctx.groups[1] = grid_y;
    ctx.groups[2] = grid_z;
    ctx.buffers.resize(kernel.module.bindingBound());

    // Buffer args are assigned to bindings in declaration order.
    VCB_ASSERT(buffer_args.size() == kernel.module.bindings.size(),
               "kernel '%s' expects %zu buffer args, got %zu",
               kernel.module.name.c_str(),
               kernel.module.bindings.size(), buffer_args.size());
    // UVM first-touch migration: non-resident paged arguments page in
    // ahead of the launch, charged as device time on the stream.
    double migrate_ns = 0;
    for (size_t i = 0; i < buffer_args.size(); ++i) {
        const auto &decl = kernel.module.bindings[i];
        VCB_ASSERT(buffer_args[i].valid(), "null buffer arg %zu", i);
        DevPtrImpl *p = buffer_args[i].impl();
        if (p->paged && !p->resident) {
            double ns = sim::uvmMigrateNs(*impl_->spec, p->bytes);
            migrate_ns += ns;
            p->resident = true;
            impl_->uvm->chargeMigration(p->bytes, ns);
        }
        ctx.buffers[decl.binding] = {p->words.data(), p->words.size()};
    }

    std::vector<uint32_t> push(
        std::max<uint32_t>(kernel.module.pushWords, 1), 0);
    VCB_ASSERT(scalar_args.size() == kernel.module.pushWords,
               "kernel '%s' expects %u scalar args, got %zu",
               kernel.module.name.c_str(), kernel.module.pushWords,
               scalar_args.size());
    for (size_t i = 0; i < scalar_args.size(); ++i)
        push[i] = scalar_args[i];
    ctx.push = push.data();
    ctx.pushWords = static_cast<uint32_t>(push.size());

    ctx.dramDerate = impl_->uvm->bwDerate();

    impl_->timeline->hostAdvance(prof.launchOverheadNs);
    sim::DispatchResult r = impl_->engine->dispatch(ctx);
    impl_->timeline->enqueue(stream, migrate_ns + r.kernelNs);
}

double
Runtime::eventRecordNs(uint32_t stream)
{
    VCB_ASSERT(stream < impl_->timeline->queueCount(),
               "stream %u out of range", stream);
    return std::max(impl_->timeline->queueReady(stream),
                    impl_->timeline->hostNow());
}

void
Runtime::streamSynchronize(uint32_t stream)
{
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::Cuda);
    impl_->timeline->hostWaitQueue(stream, prof.syncWakeupNs);
}

void
Runtime::deviceSynchronize()
{
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::Cuda);
    impl_->timeline->hostWaitAll(prof.syncWakeupNs);
}

uint64_t
heapUsed(const Runtime &rt)
{
    return rt.impl()->uvm->heapUsed();
}

uint64_t
uvmMigratedBytes(const Runtime &rt)
{
    return rt.impl()->uvm->migratedBytes();
}

double
uvmFaultNs(const Runtime &rt)
{
    return rt.impl()->uvm->faultNs();
}

} // namespace vcb::cuda

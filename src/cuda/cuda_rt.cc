#include "cuda/cuda_rt.h"

#include <cstring>

#include "common/logging.h"
#include "sim/engine.h"
#include "sim/kernel.h"
#include "sim/timeline.h"
#include "sim/timing.h"

namespace vcb::cuda {

struct RuntimeImpl
{
    const sim::DeviceSpec *spec = nullptr;
    std::unique_ptr<sim::ExecutionEngine> engine;
    std::unique_ptr<sim::Timeline> timeline;
    uint64_t heapUsed = 0;
};

struct DevPtrImpl
{
    RuntimeImpl *rt = nullptr;
    uint64_t bytes = 0;
    std::vector<uint32_t> words;
};

struct FunctionImpl
{
    RuntimeImpl *rt = nullptr;
    std::unique_ptr<sim::CompiledKernel> kernel;
};

bool
available(const sim::DeviceSpec &dev)
{
    return dev.profile(sim::Api::Cuda).available;
}

uint64_t
DevPtr::sizeBytes() const
{
    VCB_ASSERT(impl_, "null device pointer");
    return impl_->bytes;
}

Runtime::Runtime(const sim::DeviceSpec &dev, uint32_t streams)
    : impl_(std::make_unique<RuntimeImpl>())
{
    if (!available(dev))
        fatal("cuda: no CUDA support on %s", dev.name.c_str());
    VCB_ASSERT(streams >= 1, "need at least one stream");
    impl_->spec = &dev;
    impl_->engine = std::make_unique<sim::ExecutionEngine>(dev);
    impl_->timeline = std::make_unique<sim::Timeline>(streams);
}

Runtime::~Runtime() = default;

const sim::DeviceSpec &
Runtime::device() const
{
    return *impl_->spec;
}

double
Runtime::hostNowNs() const
{
    return impl_->timeline->hostNow();
}

DevPtr
Runtime::malloc(uint64_t bytes)
{
    VCB_ASSERT(bytes > 0 && bytes % 4 == 0,
               "allocation must be a positive multiple of 4");
    if (impl_->heapUsed + bytes > impl_->spec->deviceHeapBytes)
        fatal("cuda: out of device memory on %s",
              impl_->spec->name.c_str());
    impl_->heapUsed += bytes;
    DevPtr p;
    p.impl_ = std::make_shared<DevPtrImpl>();
    p.impl_->rt = impl_.get();
    p.impl_->bytes = bytes;
    p.impl_->words.assign(bytes / 4, 0);
    return p;
}

void
Runtime::memcpyHtoD(DevPtr dst, const void *src, uint64_t bytes)
{
    VCB_ASSERT(dst.valid() && src && bytes <= dst.sizeBytes(),
               "bad memcpyHtoD");
    std::memcpy(dst.impl()->words.data(), src, bytes);
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::Cuda);
    impl_->timeline->hostAdvance(prof.launchOverheadNs);
    double end = impl_->timeline->enqueue(
        0, sim::TimingModel::transferNs(*impl_->spec, bytes));
    impl_->timeline->hostWaitUntil(end, prof.syncWakeupNs);
}

void
Runtime::memcpyDtoH(void *dst, DevPtr src, uint64_t bytes)
{
    VCB_ASSERT(src.valid() && dst && bytes <= src.sizeBytes(),
               "bad memcpyDtoH");
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::Cuda);
    impl_->timeline->hostAdvance(prof.launchOverheadNs);
    double end = impl_->timeline->enqueue(
        0, sim::TimingModel::transferNs(*impl_->spec, bytes));
    impl_->timeline->hostWaitUntil(end, prof.syncWakeupNs);
    std::memcpy(dst, src.impl()->words.data(), bytes);
}

void
Runtime::memset(DevPtr dst, uint32_t word_value, uint64_t bytes)
{
    VCB_ASSERT(dst.valid() && bytes % 4 == 0 && bytes <= dst.sizeBytes(),
               "bad memset");
    std::fill(dst.impl()->words.begin(),
              dst.impl()->words.begin() + bytes / 4, word_value);
    impl_->timeline->enqueue(
        0, sim::TimingModel::deviceCopyNs(*impl_->spec, bytes) / 2.0);
}

Function
Runtime::loadFunction(const spirv::Module &m)
{
    std::string err;
    auto kernel =
        sim::compileKernel(m, *impl_->spec, sim::Api::Cuda, &err);
    if (!kernel)
        fatal("cuda: module load failed: %s", err.c_str());
    Function f;
    f.impl_ = std::make_shared<FunctionImpl>();
    f.impl_->rt = impl_.get();
    f.impl_->kernel = std::move(kernel);
    return f;
}

void
Runtime::launchKernel(Function f, uint32_t grid_x, uint32_t grid_y,
                      uint32_t grid_z,
                      const std::vector<DevPtr> &buffer_args,
                      const std::vector<uint32_t> &scalar_args,
                      uint32_t stream)
{
    VCB_ASSERT(f.valid(), "null function");
    VCB_ASSERT(stream < impl_->timeline->queueCount(),
               "stream %u out of range", stream);
    const sim::CompiledKernel &kernel = *f.impl()->kernel;
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::Cuda);

    sim::DispatchContext ctx;
    ctx.kernel = &kernel;
    ctx.groups[0] = grid_x;
    ctx.groups[1] = grid_y;
    ctx.groups[2] = grid_z;
    ctx.buffers.resize(kernel.module.bindingBound());

    // Buffer args are assigned to bindings in declaration order.
    VCB_ASSERT(buffer_args.size() == kernel.module.bindings.size(),
               "kernel '%s' expects %zu buffer args, got %zu",
               kernel.module.name.c_str(),
               kernel.module.bindings.size(), buffer_args.size());
    for (size_t i = 0; i < buffer_args.size(); ++i) {
        const auto &decl = kernel.module.bindings[i];
        VCB_ASSERT(buffer_args[i].valid(), "null buffer arg %zu", i);
        DevPtrImpl *p = buffer_args[i].impl();
        ctx.buffers[decl.binding] = {p->words.data(), p->words.size()};
    }

    std::vector<uint32_t> push(
        std::max<uint32_t>(kernel.module.pushWords, 1), 0);
    VCB_ASSERT(scalar_args.size() == kernel.module.pushWords,
               "kernel '%s' expects %u scalar args, got %zu",
               kernel.module.name.c_str(), kernel.module.pushWords,
               scalar_args.size());
    for (size_t i = 0; i < scalar_args.size(); ++i)
        push[i] = scalar_args[i];
    ctx.push = push.data();
    ctx.pushWords = static_cast<uint32_t>(push.size());

    impl_->timeline->hostAdvance(prof.launchOverheadNs);
    sim::DispatchResult r = impl_->engine->dispatch(ctx);
    impl_->timeline->enqueue(stream, r.kernelNs);
}

double
Runtime::eventRecordNs(uint32_t stream)
{
    VCB_ASSERT(stream < impl_->timeline->queueCount(),
               "stream %u out of range", stream);
    return std::max(impl_->timeline->queueReady(stream),
                    impl_->timeline->hostNow());
}

void
Runtime::streamSynchronize(uint32_t stream)
{
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::Cuda);
    impl_->timeline->hostWaitQueue(stream, prof.syncWakeupNs);
}

void
Runtime::deviceSynchronize()
{
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::Cuda);
    impl_->timeline->hostWaitAll(prof.syncWakeupNs);
}

} // namespace vcb::cuda

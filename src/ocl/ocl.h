/**
 * @file
 * OpenCL-mini ("ocl"): the OpenCL 1.2/2.0-style runtime of the
 * simulator, used as the paper's cross-vendor baseline.
 *
 * Differences from vkm that matter to the study and are modelled here:
 *  - programs are built (JIT-compiled) at run time, charging host time
 *    (the paper excludes this from kernel-time regions by starting the
 *    measured region after build);
 *  - each kernel launch (enqueueNDRange) pays a host-side enqueue
 *    overhead; there are no command buffers to amortise it;
 *  - the driver compiler is mature: it honours local-memory promotion
 *    hints (the bfs finding);
 *  - in-order queues give enqueue-ahead pipelining, but host blocking
 *    waits (finish) are required by the multi-kernel method whenever
 *    an iteration depends on the previous one.
 *
 * Scalar kernel arguments map onto the kernel's push-constant words
 * (OpenCL's clSetKernelArg with a non-buffer argument).
 */

#ifndef VCB_OCL_OCL_H
#define VCB_OCL_OCL_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/device.h"
#include "spirv/module.h"

namespace vcb::ocl {

struct ContextImpl;
struct BufferImpl;
struct ProgramImpl;
struct KernelImpl;
struct EventImpl;

/** Memory flags for buffer creation. */
enum MemFlag : uint32_t
{
    MemReadWrite = 1u << 0,
    MemReadOnly = 1u << 1,
    MemWriteOnly = 1u << 2,
};

/** Profiling info of one enqueued command (simulated ns, absolute). */
struct Event
{
    std::shared_ptr<EventImpl> impl;
    bool valid() const { return impl != nullptr; }
    double queuedNs() const;
    double startNs() const;
    double endNs() const;
};

/** All simulated devices exposing OpenCL. */
std::vector<const sim::DeviceSpec *> getDevices();

/**
 * An OpenCL context + in-order command queue for one device.
 * (The suite never needs multiple queues per CL context, matching the
 * Rodinia hosts.)
 */
class Context
{
  public:
    explicit Context(const sim::DeviceSpec &dev);
    ~Context();

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    const sim::DeviceSpec &device() const;

    /** Simulated host clock (std::chrono analogue). */
    double hostNowNs() const;

    /** clFinish: drain the queue, blocking the host. */
    void finish();

    ContextImpl *impl() const { return impl_.get(); }

  private:
    std::unique_ptr<ContextImpl> impl_;
};

/** A device buffer. */
class Buffer
{
  public:
    Buffer() = default;
    bool valid() const { return impl_ != nullptr; }
    uint64_t sizeBytes() const;
    BufferImpl *impl() const { return impl_.get(); }

  private:
    friend Buffer createBuffer(Context &, uint32_t, uint64_t);
    std::shared_ptr<BufferImpl> impl_;
};

/** A program: IR "source" plus the build products. */
class Program
{
  public:
    Program() = default;
    bool valid() const { return impl_ != nullptr; }
    ProgramImpl *impl() const { return impl_.get(); }

  private:
    friend Program createProgramWithSource(Context &,
                                           const spirv::Module &);
    std::shared_ptr<ProgramImpl> impl_;
};

/** A kernel with bound arguments. */
class Kernel
{
  public:
    Kernel() = default;
    bool valid() const { return impl_ != nullptr; }
    KernelImpl *impl() const { return impl_.get(); }

  private:
    friend Kernel createKernel(Program, const std::string &,
                               std::string *);
    std::shared_ptr<KernelImpl> impl_;
};

/**
 * Allocate a device buffer.  Returns an invalid Buffer on heap
 * exhaustion (CL_MEM_OBJECT_ALLOCATION_FAILURE) so callers can skip
 * the workload; UVM devices page past the heap up to
 * DeviceSpec::uvmCapBytes() instead.
 */
Buffer createBuffer(Context &ctx, uint32_t flags, uint64_t bytes);

/** Bytes currently allocated against the context's device heap. */
uint64_t heapUsed(const Context &ctx);

/** Bytes migrated device-ward by UVM first-touch paging so far. */
uint64_t uvmMigratedBytes(const Context &ctx);

/** Migration + fault time charged to the device by UVM paging, ns. */
double uvmFaultNs(const Context &ctx);

/** Wrap kernel source (the IR module) into a program. */
Program createProgramWithSource(Context &ctx, const spirv::Module &m);

/**
 * clBuildProgram: runs the driver JIT, charging host time.  Returns
 * false and fills errorOut on driver rejection (e.g. the Snapdragon
 * lud failure) or validation failure.
 */
bool buildProgram(Program program, std::string *errorOut);

/** Create the (single) kernel of a built program by entry-point name. */
Kernel createKernel(Program program, const std::string &name,
                    std::string *errorOut);

/** Bind a buffer argument to the binding slot it occupies in the IR. */
void setKernelArgBuffer(Kernel k, uint32_t binding, Buffer buf);

/** Bind a scalar argument to a push-constant word. */
void setKernelArgScalar(Kernel k, uint32_t word, uint32_t value);
void setKernelArgScalarF(Kernel k, uint32_t word, float value);

/**
 * Enqueue an NDRange launch.  Sizes are in work-items (OpenCL style);
 * global must be a multiple of the kernel's local size.  Non-blocking:
 * the host only pays the enqueue overhead.
 */
Event enqueueNDRangeKernel(Context &ctx, Kernel k, uint32_t gx,
                           uint32_t gy = 1, uint32_t gz = 1);

/** Blocking or non-blocking buffer write (host -> device). */
Event enqueueWriteBuffer(Context &ctx, Buffer buf, bool blocking,
                         uint64_t offset, uint64_t bytes,
                         const void *src);

/** Blocking or non-blocking buffer read (device -> host). */
Event enqueueReadBuffer(Context &ctx, Buffer buf, bool blocking,
                        uint64_t offset, uint64_t bytes, void *dst);

} // namespace vcb::ocl

#endif // VCB_OCL_OCL_H

#include "ocl/ocl.h"

#include <cstring>
#include <map>

#include "common/logging.h"
#include "sim/engine.h"
#include "sim/kernel.h"
#include "sim/timeline.h"
#include "sim/timing.h"
#include "sim/uvm.h"

namespace vcb::ocl {

struct EventImpl
{
    double queuedNs = 0;
    double startNs = 0;
    double endNs = 0;
};

double
Event::queuedNs() const
{
    VCB_ASSERT(impl, "null event");
    return impl->queuedNs;
}

double
Event::startNs() const
{
    VCB_ASSERT(impl, "null event");
    return impl->startNs;
}

double
Event::endNs() const
{
    VCB_ASSERT(impl, "null event");
    return impl->endNs;
}

struct ContextImpl
{
    const sim::DeviceSpec *spec = nullptr;
    std::unique_ptr<sim::ExecutionEngine> engine;
    std::unique_ptr<sim::Timeline> timeline;
    std::unique_ptr<sim::UvmAccounting> uvm;
};

struct BufferImpl
{
    ContextImpl *ctx = nullptr;
    uint64_t bytes = 0;
    /** UVM: overflowed the device heap into the shared pool. */
    bool paged = false;
    /** UVM: device-side; host writes/reads clear this and the next
     *  launch touching the buffer pays the first-touch migration. */
    bool resident = false;
    std::vector<uint32_t> words;

    ~BufferImpl()
    {
        if (ctx)
            ctx->uvm->free(bytes);
    }
};

struct ProgramImpl
{
    ContextImpl *ctx = nullptr;
    spirv::Module module;
    std::unique_ptr<sim::CompiledKernel> kernel;
    bool built = false;
};

struct KernelImpl
{
    ProgramImpl *program = nullptr;
    std::map<uint32_t, Buffer> buffers;
    std::vector<uint32_t> push;
};

std::vector<const sim::DeviceSpec *>
getDevices()
{
    std::vector<const sim::DeviceSpec *> out;
    for (const auto &d : sim::activeDeviceRegistry())
        if (d.profile(sim::Api::OpenCl).available)
            out.push_back(&d);
    return out;
}

Context::Context(const sim::DeviceSpec &dev)
    : impl_(std::make_unique<ContextImpl>())
{
    VCB_ASSERT(dev.profile(sim::Api::OpenCl).available,
               "OpenCL is not available on %s", dev.name.c_str());
    impl_->spec = &dev;
    impl_->engine = std::make_unique<sim::ExecutionEngine>(dev);
    impl_->timeline = std::make_unique<sim::Timeline>(1);
    impl_->uvm = std::make_unique<sim::UvmAccounting>(dev);
}

Context::~Context() = default;

const sim::DeviceSpec &
Context::device() const
{
    return *impl_->spec;
}

double
Context::hostNowNs() const
{
    return impl_->timeline->hostNow();
}

void
Context::finish()
{
    const sim::DriverProfile &prof =
        impl_->spec->profile(sim::Api::OpenCl);
    impl_->timeline->hostWaitQueue(0, prof.syncWakeupNs);
}

uint64_t
Buffer::sizeBytes() const
{
    VCB_ASSERT(impl_, "null buffer");
    return impl_->bytes;
}

Buffer
createBuffer(Context &ctx, uint32_t flags, uint64_t bytes)
{
    VCB_ASSERT(bytes > 0 && bytes % 4 == 0,
               "buffer size must be a positive multiple of 4");
    VCB_ASSERT(flags != 0, "buffer needs memory flags");
    ContextImpl *c = ctx.impl();
    // CL_MEM_OBJECT_ALLOCATION_FAILURE surfaces as an invalid Buffer so
    // callers can skip the workload rather than abort the process —
    // the same failure surface as vkm's ErrorOutOfDeviceMemory.  UVM
    // devices page past the heap instead (up to uvmCapBytes()).
    sim::UvmAccounting::Placement placement = c->uvm->alloc(bytes);
    if (placement == sim::UvmAccounting::Placement::TooBig) {
        warn("ocl: CL_MEM_OBJECT_ALLOCATION_FAILURE on %s (%llu B used, "
             "%llu B requested)",
             c->spec->name.c_str(),
             (unsigned long long)c->uvm->heapUsed(),
             (unsigned long long)bytes);
        return Buffer();
    }
    Buffer b;
    b.impl_ = std::make_shared<BufferImpl>();
    b.impl_->ctx = c;
    b.impl_->bytes = bytes;
    b.impl_->paged = placement == sim::UvmAccounting::Placement::Paged;
    b.impl_->words.assign(bytes / 4, 0);
    return b;
}

uint64_t
heapUsed(const Context &ctx)
{
    return ctx.impl()->uvm->heapUsed();
}

uint64_t
uvmMigratedBytes(const Context &ctx)
{
    return ctx.impl()->uvm->migratedBytes();
}

double
uvmFaultNs(const Context &ctx)
{
    return ctx.impl()->uvm->faultNs();
}

Program
createProgramWithSource(Context &ctx, const spirv::Module &m)
{
    Program p;
    p.impl_ = std::make_shared<ProgramImpl>();
    p.impl_->ctx = ctx.impl();
    p.impl_->module = m;
    return p;
}

bool
buildProgram(Program program, std::string *errorOut)
{
    VCB_ASSERT(program.valid(), "null program");
    ProgramImpl *p = program.impl();
    const sim::DeviceSpec &spec = *p->ctx->spec;
    std::string err;
    auto kernel = sim::compileKernel(p->module, spec, sim::Api::OpenCl,
                                     &err);
    if (!kernel) {
        if (errorOut)
            *errorOut = err;
        return false;
    }
    // JIT build runs on the host, inside application time.
    p->ctx->timeline->hostAdvance(kernel->compileNs);
    p->kernel = std::move(kernel);
    p->built = true;
    if (errorOut)
        errorOut->clear();
    return true;
}

Kernel
createKernel(Program program, const std::string &name,
             std::string *errorOut)
{
    VCB_ASSERT(program.valid(), "null program");
    ProgramImpl *p = program.impl();
    if (!p->built) {
        if (errorOut)
            *errorOut = "program was not built";
        return Kernel();
    }
    if (p->module.name != name) {
        if (errorOut)
            *errorOut = strprintf("no kernel '%s' in program ('%s')",
                                  name.c_str(), p->module.name.c_str());
        return Kernel();
    }
    Kernel k;
    k.impl_ = std::make_shared<KernelImpl>();
    k.impl_->program = p;
    k.impl_->push.assign(std::max<uint32_t>(p->module.pushWords, 1), 0);
    if (errorOut)
        errorOut->clear();
    return k;
}

void
setKernelArgBuffer(Kernel k, uint32_t binding, Buffer buf)
{
    VCB_ASSERT(k.valid() && buf.valid(), "null kernel/buffer");
    VCB_ASSERT(k.impl()->program->module.findBinding(binding),
               "kernel '%s' has no binding %u",
               k.impl()->program->module.name.c_str(), binding);
    k.impl()->buffers[binding] = buf;
}

void
setKernelArgScalar(Kernel k, uint32_t word, uint32_t value)
{
    VCB_ASSERT(k.valid(), "null kernel");
    VCB_ASSERT(word < k.impl()->program->module.pushWords,
               "kernel '%s' scalar arg word %u out of range",
               k.impl()->program->module.name.c_str(), word);
    k.impl()->push[word] = value;
}

void
setKernelArgScalarF(Kernel k, uint32_t word, float value)
{
    uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    setKernelArgScalar(k, word, bits);
}

Event
enqueueNDRangeKernel(Context &ctx, Kernel k, uint32_t gx, uint32_t gy,
                     uint32_t gz)
{
    VCB_ASSERT(k.valid(), "null kernel");
    ContextImpl *c = ctx.impl();
    KernelImpl *ki = k.impl();
    const sim::CompiledKernel &kernel = *ki->program->kernel;
    const sim::DriverProfile &prof = c->spec->profile(sim::Api::OpenCl);

    const uint32_t *ls = kernel.module.localSize;
    VCB_ASSERT(gx % ls[0] == 0 && gy % ls[1] == 0 && gz % ls[2] == 0,
               "kernel '%s': global size (%u,%u,%u) not a multiple of "
               "local size (%u,%u,%u)",
               kernel.module.name.c_str(), gx, gy, gz, ls[0], ls[1],
               ls[2]);

    sim::DispatchContext dctx;
    dctx.kernel = &kernel;
    dctx.groups[0] = gx / ls[0];
    dctx.groups[1] = gy / ls[1];
    dctx.groups[2] = gz / ls[2];
    dctx.buffers.resize(kernel.module.bindingBound());
    // UVM first-touch migration: non-resident paged arguments page in
    // ahead of the launch, charged as device time on the queue.
    double migrate_ns = 0;
    for (const auto &decl : kernel.module.bindings) {
        auto it = ki->buffers.find(decl.binding);
        VCB_ASSERT(it != ki->buffers.end(),
                   "kernel '%s': argument (binding %u) was never set",
                   kernel.module.name.c_str(), decl.binding);
        BufferImpl *b = it->second.impl();
        if (b->paged && !b->resident) {
            double ns = sim::uvmMigrateNs(*c->spec, b->bytes);
            migrate_ns += ns;
            b->resident = true;
            c->uvm->chargeMigration(b->bytes, ns);
        }
        dctx.buffers[decl.binding] = {b->words.data(), b->words.size()};
    }
    dctx.push = ki->push.data();
    dctx.pushWords = static_cast<uint32_t>(ki->push.size());
    dctx.dramDerate = c->uvm->bwDerate();

    // Host pays the enqueue overhead; the device work is appended to
    // the in-order queue (enqueue-ahead pipelining).
    c->timeline->hostAdvance(prof.launchOverheadNs);
    Event ev;
    ev.impl = std::make_shared<EventImpl>();
    ev.impl->queuedNs = c->timeline->hostNow();

    sim::DispatchResult r = c->engine->dispatch(dctx);
    double start = std::max(c->timeline->queueReady(0),
                            c->timeline->hostNow());
    ev.impl->startNs = start;
    ev.impl->endNs = c->timeline->enqueue(0, migrate_ns + r.kernelNs);
    return ev;
}

Event
enqueueWriteBuffer(Context &ctx, Buffer buf, bool blocking,
                   uint64_t offset, uint64_t bytes, const void *src)
{
    VCB_ASSERT(buf.valid() && src, "bad write args");
    VCB_ASSERT(offset % 4 == 0 && bytes % 4 == 0 &&
                   offset + bytes <= buf.sizeBytes(),
               "write range out of bounds");
    ContextImpl *c = ctx.impl();
    const sim::DriverProfile &prof = c->spec->profile(sim::Api::OpenCl);

    std::memcpy(reinterpret_cast<uint8_t *>(buf.impl()->words.data()) +
                    offset,
                src, bytes);
    // Host access evicts paged allocations (first-touch model).
    buf.impl()->resident = false;

    c->timeline->hostAdvance(prof.launchOverheadNs);
    Event ev;
    ev.impl = std::make_shared<EventImpl>();
    ev.impl->queuedNs = c->timeline->hostNow();
    double start = std::max(c->timeline->queueReady(0),
                            c->timeline->hostNow());
    ev.impl->startNs = start;
    ev.impl->endNs = c->timeline->enqueue(
        0, sim::TimingModel::transferNs(*c->spec, bytes));
    if (blocking)
        c->timeline->hostWaitUntil(ev.impl->endNs, prof.syncWakeupNs);
    return ev;
}

Event
enqueueReadBuffer(Context &ctx, Buffer buf, bool blocking, uint64_t offset,
                  uint64_t bytes, void *dst)
{
    VCB_ASSERT(buf.valid() && dst, "bad read args");
    VCB_ASSERT(offset % 4 == 0 && bytes % 4 == 0 &&
                   offset + bytes <= buf.sizeBytes(),
               "read range out of bounds");
    ContextImpl *c = ctx.impl();
    const sim::DriverProfile &prof = c->spec->profile(sim::Api::OpenCl);

    std::memcpy(dst,
                reinterpret_cast<uint8_t *>(buf.impl()->words.data()) +
                    offset,
                bytes);
    // Host access evicts paged allocations (first-touch model).
    buf.impl()->resident = false;

    c->timeline->hostAdvance(prof.launchOverheadNs);
    Event ev;
    ev.impl = std::make_shared<EventImpl>();
    ev.impl->queuedNs = c->timeline->hostNow();
    double start = std::max(c->timeline->queueReady(0),
                            c->timeline->hostNow());
    ev.impl->startNs = start;
    ev.impl->endNs = c->timeline->enqueue(
        0, sim::TimingModel::transferNs(*c->spec, bytes));
    if (blocking)
        c->timeline->hostWaitUntil(ev.impl->endNs, prof.syncWakeupNs);
    return ev;
}

} // namespace vcb::ocl

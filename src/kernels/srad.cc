/**
 * @file
 * srad kernels (Rodinia srad: Speckle Reducing Anisotropic Diffusion,
 * a structured-grid stencil whose outer loop needs a full-image
 * statistics reduction every iteration).
 *
 * Per iteration the host runs: srad_reduce (partial sums of J and J^2,
 * finished on the host into q0sqr), srad_step1 (diffusion coefficient
 * from the four directional derivatives), srad_step2 (image update
 * from the coefficient field).  The reduction makes srad the one
 * structured-grid family whose host loop must read device results back
 * between stencil steps.
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

// Workgroup: 256 lanes, one pixel each.
// shared[0..255]   : per-lane J values for the sum reduction
// shared[256..511] : per-lane J^2 values for the sum-of-squares
spirv::Module
buildSradReduce()
{
    Builder b("srad_reduce", 256);
    b.bindStorage(0, ElemType::F32, true); // J[n]
    b.bindStorage(1, ElemType::F32);       // psum[numBlocks]
    b.bindStorage(2, ElemType::F32);       // psum2[numBlocks]
    b.setPushWords(1);
    b.setSharedWords(512);

    auto lane = b.localIdX();
    auto gid = b.globalIdX();
    auto n = b.ldPush(0);
    auto zero = b.constI(0);
    auto c256 = b.constI(256);

    auto valid = b.ult(gid, n);
    auto safe = b.select(valid, gid, zero);
    auto v = b.ldBuf(0, safe);
    auto fzero = b.constF(0.0f);
    v = b.select(valid, v, fzero);
    b.stShared(lane, v);
    b.stShared(b.iadd(lane, c256), b.fmul(v, v));
    b.barrier();

    // Tree reduction over both banks (stride 128 .. 1).
    for (uint32_t s = 128; s >= 1; s /= 2) {
        auto stride = b.constI(static_cast<int32_t>(s));
        auto active = b.ilt(lane, stride);
        b.ifThen(active, [&] {
            auto other = b.iadd(lane, stride);
            b.stShared(lane,
                       b.fadd(b.ldShared(lane), b.ldShared(other)));
            auto mine2 = b.iadd(lane, c256);
            auto other2 = b.iadd(other, c256);
            b.stShared(mine2,
                       b.fadd(b.ldShared(mine2), b.ldShared(other2)));
        });
        b.barrier();
    }

    auto is_writer = b.ieq(lane, zero);
    b.ifThen(is_writer, [&] {
        auto block = b.groupIdX();
        b.stBuf(1, block, b.ldShared(zero));
        b.stBuf(2, block, b.ldShared(c256));
    });
    return b.finish();
}

spirv::Module
buildSradStep1()
{
    Builder b("srad_step1", blockSize, blockSize);
    b.bindStorage(0, ElemType::F32, true); // J (g*g)
    b.bindStorage(1, ElemType::F32);       // c
    b.bindStorage(2, ElemType::F32);       // dN
    b.bindStorage(3, ElemType::F32);       // dS
    b.bindStorage(4, ElemType::F32);       // dW
    b.bindStorage(5, ElemType::F32);       // dE
    b.setPushWords(2);

    auto g = b.ldPush(0);
    auto q0 = b.ldPush(1);
    auto gi = b.globalIdX(); // column
    auto gj = b.globalIdY(); // row
    auto zero = b.constI(0);
    auto one = b.constI(1);
    auto g1 = b.isub(g, one);

    auto load_clamped = [&](Builder::Reg r, Builder::Reg c) {
        auto rr = b.imin(b.imax(r, zero), g1);
        auto cc = b.imin(b.imax(c, zero), g1);
        return b.ldBuf(0, b.iadd(b.imul(rr, g), cc));
    };

    auto in_range = b.iand(b.ult(gi, g), b.ult(gj, g));
    b.ifThen(in_range, [&] {
        auto idx = b.iadd(b.imul(gj, g), gi);
        auto jc = b.ldBuf(0, idx);
        auto dn = b.fsub(load_clamped(b.isub(gj, one), gi), jc);
        auto ds = b.fsub(load_clamped(b.iadd(gj, one), gi), jc);
        auto dw = b.fsub(load_clamped(gj, b.isub(gi, one)), jc);
        auto de = b.fsub(load_clamped(gj, b.iadd(gi, one)), jc);
        b.stBuf(2, idx, dn);
        b.stBuf(3, idx, ds);
        b.stBuf(4, idx, dw);
        b.stBuf(5, idx, de);

        // q^2 from the normalized gradient magnitude and laplacian.
        auto sq = b.fadd(b.fadd(b.fmul(dn, dn), b.fmul(ds, ds)),
                         b.fadd(b.fmul(dw, dw), b.fmul(de, de)));
        auto jc2 = b.fmul(jc, jc);
        auto g2 = b.fdiv(sq, jc2);
        auto l = b.fdiv(b.fadd(b.fadd(dn, ds), b.fadd(dw, de)), jc);
        auto half = b.constF(0.5f);
        auto sixteenth = b.constF(0.0625f);
        auto num = b.fsub(b.fmul(half, g2),
                          b.fmul(sixteenth, b.fmul(l, l)));
        auto fone = b.constF(1.0f);
        auto quarter = b.constF(0.25f);
        auto den = b.fadd(fone, b.fmul(quarter, l));
        auto qsqr = b.fdiv(num, b.fmul(den, den));

        // Diffusion coefficient, clamped to [0, 1].
        auto den2 = b.fdiv(b.fsub(qsqr, q0),
                           b.fmul(q0, b.fadd(fone, q0)));
        auto cval = b.fdiv(fone, b.fadd(fone, den2));
        cval = b.fmin(b.fmax(cval, b.constF(0.0f)), fone);
        b.stBuf(1, idx, cval);
    });
    return b.finish();
}

spirv::Module
buildSradStep2()
{
    Builder b("srad_step2", blockSize, blockSize);
    b.bindStorage(0, ElemType::F32);       // J (g*g), updated in place
    b.bindStorage(1, ElemType::F32, true); // c
    b.bindStorage(2, ElemType::F32, true); // dN
    b.bindStorage(3, ElemType::F32, true); // dS
    b.bindStorage(4, ElemType::F32, true); // dW
    b.bindStorage(5, ElemType::F32, true); // dE
    b.setPushWords(2);

    auto g = b.ldPush(0);
    auto lambda = b.ldPush(1);
    auto gi = b.globalIdX();
    auto gj = b.globalIdY();
    auto one = b.constI(1);
    auto g1 = b.isub(g, one);

    auto in_range = b.iand(b.ult(gi, g), b.ult(gj, g));
    b.ifThen(in_range, [&] {
        auto idx = b.iadd(b.imul(gj, g), gi);
        // Rodinia's divergence uses the centre coefficient for the
        // north/west fluxes and the south/east neighbours' for the rest.
        auto cc = b.ldBuf(1, idx);
        auto s_row = b.imin(b.iadd(gj, one), g1);
        auto cs = b.ldBuf(1, b.iadd(b.imul(s_row, g), gi));
        auto e_col = b.imin(b.iadd(gi, one), g1);
        auto ce = b.ldBuf(1, b.iadd(b.imul(gj, g), e_col));

        auto d = b.fmul(cc, b.ldBuf(2, idx));
        d = b.fadd(d, b.fmul(cs, b.ldBuf(3, idx)));
        d = b.fadd(d, b.fmul(cc, b.ldBuf(4, idx)));
        d = b.fadd(d, b.fmul(ce, b.ldBuf(5, idx)));

        auto lam4 = b.fmul(b.constF(0.25f), lambda);
        b.stBuf(0, idx, b.ffma(lam4, d, b.ldBuf(0, idx)));
    });
    return b.finish();
}

} // namespace vcb::kernels

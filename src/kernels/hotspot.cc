/**
 * @file
 * hotspot kernel (Rodinia hotspot: tiled thermal stencil with halo
 * staging in workgroup shared memory).
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

namespace {
constexpr uint32_t tile = blockSize;       // 16
constexpr uint32_t staged = tile + 2;      // 18 (tile + halo)
} // namespace

spirv::Module
buildHotspotStep()
{
    Builder b("hotspot_step", tile, tile);
    b.bindStorage(0, ElemType::F32, true); // tIn
    b.bindStorage(1, ElemType::F32, true); // power
    b.bindStorage(2, ElemType::F32);       // tOut
    b.setPushWords(6);
    b.setSharedWords(staged * staged);

    auto g = b.ldPush(0);
    auto cc = b.ldPush(1);
    auto rx_inv = b.ldPush(2);
    auto ry_inv = b.ldPush(3);
    auto rz_inv = b.ldPush(4);
    auto amb = b.ldPush(5);

    auto gi = b.globalIdX(); // column
    auto gj = b.globalIdY(); // row
    auto li = b.localIdX();
    auto lj = b.localIdY();
    auto zero = b.constI(0);
    auto one = b.constI(1);
    auto g1 = b.isub(g, one);
    auto s = b.constI(static_cast<int32_t>(staged));

    // Clamped global load helper: t_in[clamp(r, 0, g-1)*g + clamp(c)].
    auto load_clamped = [&](Builder::Reg r, Builder::Reg c) {
        auto rr = b.imin(b.imax(r, zero), g1);
        auto cc2 = b.imin(b.imax(c, zero), g1);
        return b.ldBuf(0, b.iadd(b.imul(rr, g), cc2));
    };

    // Stage centre cell at shared[(lj+1)*18 + li+1].
    auto sj = b.iadd(lj, one);
    auto si = b.iadd(li, one);
    b.stShared(b.iadd(b.imul(sj, s), si), load_clamped(gj, gi));

    // Halo: edge lanes stage one extra cell each.
    auto tile_max = b.constI(static_cast<int32_t>(tile - 1));
    b.ifThen(b.ieq(li, zero), [&] {
        b.stShared(b.iadd(b.imul(sj, s), zero),
                   load_clamped(gj, b.isub(gi, one)));
    });
    b.ifThen(b.ieq(li, tile_max), [&] {
        b.stShared(b.iadd(b.imul(sj, s), b.iadd(si, one)),
                   load_clamped(gj, b.iadd(gi, one)));
    });
    b.ifThen(b.ieq(lj, zero), [&] {
        b.stShared(b.iadd(b.imul(zero, s), si),
                   load_clamped(b.isub(gj, one), gi));
    });
    b.ifThen(b.ieq(lj, tile_max), [&] {
        b.stShared(b.iadd(b.imul(b.iadd(sj, one), s), si),
                   load_clamped(b.iadd(gj, one), gi));
    });
    b.barrier();

    auto in_range = b.iand(b.ult(gi, g), b.ult(gj, g));
    b.ifThen(in_range, [&] {
        auto centre = b.ldShared(b.iadd(b.imul(sj, s), si));
        auto north = b.ldShared(b.iadd(b.imul(b.isub(sj, one), s), si));
        auto south = b.ldShared(b.iadd(b.imul(b.iadd(sj, one), s), si));
        auto west = b.ldShared(b.iadd(b.imul(sj, s), b.isub(si, one)));
        auto east = b.ldShared(b.iadd(b.imul(sj, s), b.iadd(si, one)));
        auto p = b.ldBuf(1, b.iadd(b.imul(gj, g), gi));

        auto two = b.constF(2.0f);
        auto vert = b.fsub(b.fadd(north, south), b.fmul(two, centre));
        auto horiz = b.fsub(b.fadd(east, west), b.fmul(two, centre));
        auto sink = b.fsub(amb, centre);
        auto delta = b.fadd(p, b.fmul(vert, ry_inv));
        delta = b.fadd(delta, b.fmul(horiz, rx_inv));
        delta = b.fadd(delta, b.fmul(sink, rz_inv));
        auto out = b.ffma(cc, delta, centre);
        b.stBuf(2, b.iadd(b.imul(gj, g), gi), out);
    });
    return b.finish();
}

} // namespace vcb::kernels

/**
 * @file
 * nw kernel (Rodinia needle: 16x16 alignment-matrix blocks processed
 * along block anti-diagonals; internal cell wavefront with barriers).
 *
 * Rodinia ships two kernels (one per matrix triangle) that differ only
 * in how block coordinates derive from the launch index; here the host
 * passes the block anti-diagonal s and its starting x, so a single
 * module covers both phases — the launch *pattern* (2*nb - 1 dependent
 * launches) is identical.
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

namespace {
constexpr uint32_t B = nwBlockSize;    // 32
constexpr uint32_t T = B + 1;          // staged block incl. borders
} // namespace

spirv::Module
buildNwBlock()
{
    Builder b("nw_block", B);
    b.bindStorage(0, ElemType::I32);       // itemsets (n+1)^2
    b.bindStorage(1, ElemType::I32, true); // reference (n+1)^2
    b.setPushWords(4);
    b.setSharedWords(T * T + B * B);

    auto n = b.ldPush(0);
    auto s = b.ldPush(1);
    auto x_start = b.ldPush(2);
    auto penalty = b.ldPush(3);
    auto tx = b.localIdX();
    auto bx = b.groupIdX();
    auto one = b.constI(1);
    auto zero = b.constI(0);
    auto bconst = b.constI(static_cast<int32_t>(B));
    auto tconst = b.constI(static_cast<int32_t>(T));
    auto refoff = b.constI(static_cast<int32_t>(T * T));

    auto nn = b.iadd(n, one); // matrix dimension with border row/col
    auto x = b.iadd(x_start, bx);
    auto y = b.isub(s, x);
    auto row0 = b.imul(y, bconst); // border row of this block
    auto col0 = b.imul(x, bconst);

    // Stage borders: temp[0][0], temp[tx+1][0], temp[0][tx+1].
    b.ifThen(b.ieq(tx, zero), [&] {
        b.stShared(zero, b.ldBuf(0, b.iadd(b.imul(row0, nn), col0)));
    });
    auto tx1 = b.iadd(tx, one);
    b.stShared(b.imul(tx1, tconst),
               b.ldBuf(0, b.iadd(b.imul(b.iadd(row0, tx1), nn), col0)));
    b.stShared(tx1,
               b.ldBuf(0, b.iadd(b.imul(row0, nn), b.iadd(col0, tx1))));

    // Stage the reference block: lane tx loads its column.
    b.forRange(zero, bconst, one, [&](Builder::Reg ty) {
        auto g = b.iadd(b.imul(b.iadd(row0, b.iadd(ty, one)), nn),
                        b.iadd(col0, tx1));
        b.stShared(b.iadd(refoff, b.iadd(b.imul(ty, bconst), tx)),
                   b.ldBuf(1, g));
    });
    b.barrier();

    // Cell wavefront: internal anti-diagonal m in [0, 2B-1).
    auto m_end = b.constI(static_cast<int32_t>(2 * B - 1));
    auto m = b.mov(zero);
    b.whileLoop(
        [&] { return b.ilt(m, m_end); },
        [&] {
            auto ty = b.isub(m, tx);
            auto active = b.iand(b.ile(tx, m),
                                 b.iand(b.ige(ty, zero),
                                        b.ilt(ty, bconst)));
            b.ifThen(active, [&] {
                auto trow = b.iadd(ty, one);
                auto tcol = tx1;
                auto diag = b.ldShared(
                    b.iadd(b.imul(b.isub(trow, one), tconst),
                           b.isub(tcol, one)));
                auto up = b.ldShared(
                    b.iadd(b.imul(b.isub(trow, one), tconst), tcol));
                auto left = b.ldShared(
                    b.iadd(b.imul(trow, tconst), b.isub(tcol, one)));
                auto ref = b.ldShared(
                    b.iadd(refoff, b.iadd(b.imul(ty, bconst), tx)));
                auto best = b.imax(b.iadd(diag, ref),
                                   b.imax(b.isub(up, penalty),
                                          b.isub(left, penalty)));
                b.stShared(b.iadd(b.imul(trow, tconst), tcol), best);
            });
            b.barrier();
            b.iaddTo(m, m, one);
        });

    // Write the block back: lane tx stores its column.
    b.forRange(zero, bconst, one, [&](Builder::Reg ty) {
        auto g = b.iadd(b.imul(b.iadd(row0, b.iadd(ty, one)), nn),
                        b.iadd(col0, tx1));
        auto v = b.ldShared(
            b.iadd(b.imul(b.iadd(ty, one), tconst), tx1));
        b.stBuf(0, g, v);
    });
    return b.finish();
}

} // namespace vcb::kernels

/**
 * @file
 * nn kernel (Rodinia nn: Euclidean distances of location records to a
 * query point; the host selects the K nearest afterwards).
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

spirv::Module
buildNnEuclid()
{
    Builder b("nn_euclid", 256);
    b.bindStorage(0, ElemType::F32, true); // lat
    b.bindStorage(1, ElemType::F32, true); // lng
    b.bindStorage(2, ElemType::F32);       // dist
    b.setPushWords(3);

    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto q_lat = b.ldPush(1);
    auto q_lng = b.ldPush(2);

    auto in_range = b.ult(i, n);
    b.ifThen(in_range, [&] {
        auto dlat = b.fsub(b.ldBuf(0, i), q_lat);
        auto dlng = b.fsub(b.ldBuf(1, i), q_lng);
        auto d2 = b.ffma(dlat, dlat, b.fmul(dlng, dlng));
        b.stBuf(2, i, b.fsqrt(d2));
    });
    return b.finish();
}

} // namespace vcb::kernels

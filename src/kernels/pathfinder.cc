/**
 * @file
 * pathfinder kernel (Rodinia pathfinder: one DP row per launch,
 * ping-pong src/dst row buffers).
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

spirv::Module
buildPathfinderRow()
{
    Builder b("pathfinder_row", 256);
    b.bindStorage(0, ElemType::I32, true); // data (rows x cols)
    b.bindStorage(1, ElemType::I32, true); // src row
    b.bindStorage(2, ElemType::I32);       // dst row
    b.setPushWords(2);

    auto j = b.globalIdX();
    auto cols = b.ldPush(0);
    auto row = b.ldPush(1);
    auto zero = b.constI(0);
    auto one = b.constI(1);

    auto in_range = b.ult(j, cols);
    b.ifThen(in_range, [&] {
        auto left_idx = b.imax(b.isub(j, one), zero);
        auto right_idx = b.imin(b.iadd(j, one), b.isub(cols, one));
        auto left = b.ldBuf(1, left_idx);
        auto mid = b.ldBuf(1, j);
        auto right = b.ldBuf(1, right_idx);
        auto best = b.imin(b.imin(left, mid), right);
        auto cell = b.ldBuf(0, b.iadd(b.imul(row, cols), j));
        b.stBuf(2, j, b.iadd(cell, best));
    });
    return b.finish();
}

} // namespace vcb::kernels

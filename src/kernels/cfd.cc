/**
 * @file
 * cfd kernels (Rodinia euler3d structure: three dependent kernels per
 * solver iteration over an unstructured mesh).
 *
 * The flux mathematics is a synthetic-but-stable equivalent (smoothed
 * neighbour exchange with per-neighbour sqrt/divide work): the study's
 * cfd findings depend on the *shape* (three compute-heavy kernels,
 * three pipeline binds per iteration, fixed iteration count), not on
 * the exact Euler flux formula.
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

namespace {
/** Number of conserved variables per cell (density, 3 momentum,
 *  energy), as in euler3d. */
constexpr uint32_t nVar = 5;
/** Neighbours per cell in the synthetic mesh. */
constexpr uint32_t nNb = 4;
/** Smoothing coefficient of the synthetic flux. */
constexpr float fluxCoeff = 0.12f;
} // namespace

spirv::Module
buildCfdStepFactor()
{
    Builder b("cfd_compute_step_factor", 128);
    b.bindStorage(0, ElemType::F32, true); // variables 5n
    b.bindStorage(1, ElemType::F32, true); // areas n
    b.bindStorage(2, ElemType::F32);       // stepFactors n
    b.setPushWords(1);

    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto in_range = b.ult(i, n);
    b.ifThen(in_range, [&] {
        auto rho = b.ldBuf(0, i);
        auto mx = b.ldBuf(0, b.iadd(i, n));
        auto my = b.ldBuf(0, b.iadd(i, b.imul(n, b.constI(2))));
        auto mz = b.ldBuf(0, b.iadd(i, b.imul(n, b.constI(3))));
        auto e = b.ldBuf(0, b.iadd(i, b.imul(n, b.constI(4))));

        auto rho_safe = b.fmax(rho, b.constF(1e-6f));
        auto m2 = b.ffma(mx, mx, b.ffma(my, my, b.fmul(mz, mz)));
        auto v2 = b.fdiv(m2, b.fmul(rho_safe, rho_safe));
        auto half_rho_v2 = b.fmul(b.constF(0.5f),
                                  b.fmul(rho_safe, v2));
        auto p = b.fmul(b.constF(0.4f), b.fsub(e, half_rho_v2));
        p = b.fmax(p, b.constF(1e-6f));
        auto c = b.fsqrt(b.fdiv(b.fmul(b.constF(1.4f), p), rho_safe));
        auto speed = b.fsqrt(v2);
        auto area = b.fmax(b.ldBuf(1, i), b.constF(1e-6f));
        auto denom = b.fmul(b.fsqrt(area), b.fadd(speed, c));
        b.stBuf(2, i, b.fdiv(b.constF(0.5f), denom));
    });
    return b.finish();
}

spirv::Module
buildCfdComputeFlux()
{
    Builder b("cfd_compute_flux", 128);
    b.bindStorage(0, ElemType::F32, true); // variables 5n
    b.bindStorage(1, ElemType::I32, true); // neighbors 4n
    b.bindStorage(2, ElemType::F32, true); // normals 4n
    b.bindStorage(3, ElemType::F32);       // fluxes 5n
    b.setPushWords(1);

    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto zero = b.constI(0);
    auto in_range = b.ult(i, n);
    b.ifThen(in_range, [&] {
        // Centre values and accumulators.
        Builder::Reg centre[nVar];
        Builder::Reg acc[nVar];
        for (uint32_t v = 0; v < nVar; ++v) {
            auto off = b.iadd(i, b.imul(n, b.constI((int32_t)v)));
            centre[v] = b.ldBuf(0, off);
            acc[v] = b.constF(0.0f);
        }
        auto coeff = b.constF(fluxCoeff);
        for (uint32_t nb = 0; nb < nNb; ++nb) {
            auto slot = b.iadd(i, b.imul(n, b.constI((int32_t)nb)));
            auto j = b.ldBuf(1, slot);
            auto valid = b.ige(j, zero);
            b.ifThen(valid, [&] {
                auto w = b.ldBuf(2, slot);
                // Per-neighbour weight: coeff * sqrt(w) / (1 + w).
                auto speed = b.fsqrt(w);
                auto weight = b.fdiv(b.fmul(coeff, speed),
                                     b.fadd(b.constF(1.0f), w));
                for (uint32_t v = 0; v < nVar; ++v) {
                    auto off = b.iadd(j, b.imul(n, b.constI((int32_t)v)));
                    auto other = b.ldBuf(0, off);
                    auto diff = b.fsub(other, centre[v]);
                    auto upd = b.ffma(diff, weight, acc[v]);
                    b.movTo(acc[v], upd);
                }
            });
        }
        for (uint32_t v = 0; v < nVar; ++v) {
            auto off = b.iadd(i, b.imul(n, b.constI((int32_t)v)));
            b.stBuf(3, off, acc[v]);
        }
    });
    return b.finish();
}

spirv::Module
buildCfdTimeStep()
{
    Builder b("cfd_time_step", 128);
    b.bindStorage(0, ElemType::F32);       // variables 5n
    b.bindStorage(1, ElemType::F32, true); // stepFactors n
    b.bindStorage(2, ElemType::F32, true); // fluxes 5n
    b.setPushWords(2);

    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto rk = b.ldPush(1);
    auto in_range = b.ult(i, n);
    b.ifThen(in_range, [&] {
        auto sf = b.ldBuf(1, i);
        auto factor = b.fmul(rk, sf);
        for (uint32_t v = 0; v < nVar; ++v) {
            auto off = b.iadd(i, b.imul(n, b.constI((int32_t)v)));
            auto cur = b.ldBuf(0, off);
            auto flux = b.ldBuf(2, off);
            b.stBuf(0, off, b.ffma(factor, flux, cur));
        }
    });
    return b.finish();
}

} // namespace vcb::kernels

/**
 * @file
 * gaussian kernels (Rodinia gaussian: Fan1 / Fan2 per elimination
 * step t, launched n-1 times with a dependency between steps).
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

// m[(i+t+1)*n + t] = a[(i+t+1)*n + t] / a[t*n + t]
spirv::Module
buildGaussianFan1()
{
    Builder b("gaussian_fan1", 256);
    b.bindStorage(0, ElemType::F32, true); // a
    b.bindStorage(1, ElemType::F32);       // m
    b.setPushWords(2);

    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto t = b.ldPush(1);
    auto one = b.constI(1);

    auto limit = b.isub(b.isub(n, one), t);
    auto in_range = b.ult(i, limit);
    b.ifThen(in_range, [&] {
        auto row = b.iadd(b.iadd(i, t), one);
        auto idx = b.iadd(b.imul(row, n), t);
        auto pivot = b.ldBuf(0, b.iadd(b.imul(t, n), t));
        auto mult = b.fdiv(b.ldBuf(0, idx), pivot);
        b.stBuf(1, idx, mult);
    });
    return b.finish();
}

// a[row*n + col] -= m[row*n + t] * a[t*n + col]; col == 0 also fixes b.
spirv::Module
buildGaussianFan2()
{
    Builder b("gaussian_fan2", 256);
    b.bindStorage(0, ElemType::F32);       // a
    b.bindStorage(1, ElemType::F32, true); // m
    b.bindStorage(2, ElemType::F32);       // b
    b.setPushWords(2);

    auto gid = b.globalIdX();
    auto n = b.ldPush(0);
    auto t = b.ldPush(1);
    auto one = b.constI(1);

    auto rows = b.isub(b.isub(n, one), t); // rows below the pivot
    auto cols = b.isub(n, t);              // columns from t rightwards
    auto total = b.imul(rows, cols);
    auto in_range = b.ult(gid, total);
    b.ifThen(in_range, [&] {
        auto r = b.idiv(gid, cols);
        auto c = b.irem(gid, cols);
        auto row = b.iadd(b.iadd(r, t), one);
        auto col = b.iadd(c, t);
        auto mult = b.ldBuf(1, b.iadd(b.imul(row, n), t));
        auto idx = b.iadd(b.imul(row, n), col);
        auto pivot_row = b.ldBuf(0, b.iadd(b.imul(t, n), col));
        auto v = b.fsub(b.ldBuf(0, idx), b.fmul(mult, pivot_row));
        b.stBuf(0, idx, v);
        auto zero = b.constI(0);
        auto fix_b = b.ieq(c, zero);
        b.ifThen(fix_b, [&] {
            auto bt = b.ldBuf(2, t);
            auto brow = b.ldBuf(2, row);
            b.stBuf(2, row, b.fsub(brow, b.fmul(mult, bt)));
        });
    });
    return b.finish();
}

} // namespace vcb::kernels

/**
 * @file
 * The VComputeBench kernel library.
 *
 * Each function builds one compute kernel as a spirv::Module — the
 * analogue of the GLSL compute shaders the paper compiles offline with
 * glslangvalidator.  The kernels implement the same algorithms as the
 * Rodinia 3.1 CUDA/OpenCL versions (no algorithmic changes, per the
 * paper's methodology) so that cross-API comparisons isolate the
 * programming model.
 *
 * Conventions:
 *  - buffers are 32-bit word arrays; binding numbers are per kernel;
 *  - scalar parameters arrive as push-constant words (Vulkan push
 *    constants / OpenCL & CUDA scalar kernel arguments);
 *  - each doc comment lists bindings and push words in order.
 */

#ifndef VCB_KERNELS_KERNELS_H
#define VCB_KERNELS_KERNELS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "spirv/module.h"

namespace vcb::kernels {

/** Workgroup edge for the blocked kernels (Rodinia BLOCK_SIZE). */
constexpr uint32_t blockSize = 16;
/** nw uses a wider block so per-diagonal launches carry real work at
 *  the simulated sizes (Rodinia tunes this per platform too). */
constexpr uint32_t nwBlockSize = 32;
/** Hidden-layer width of backprop (Rodinia fixed at 16). */
constexpr uint32_t bpHidden = 16;

// ---------------------------------------------------------------------------
// Microbenchmarks
// ---------------------------------------------------------------------------

/**
 * vectorAdd — Z[i] = X[i] + Y[i] (the paper's Listing-1 example).
 * Bindings: 0=X(ro f32), 1=Y(ro f32), 2=Z(f32).  Push: [0]=n.
 * Local size 256.
 */
spirv::Module buildVecAdd();

/**
 * stridedRead — the strided memory-bandwidth microbenchmark (Figs. 1
 * and 3).  Thread j accumulates src[(r*threads + j) * stride] for
 * r in [0, rounds); a guarded never-taken store keeps the loop live.
 * Bindings: 0=src(ro f32), 1=guard(f32).
 * Push: [0]=stride, [1]=rounds, [2]=threads.  Local size 256.
 */
spirv::Module buildStridedRead();

// ---------------------------------------------------------------------------
// backprop (deep learning, unstructured grid)
// ---------------------------------------------------------------------------

/**
 * backprop_layerforward — partial weighted sums of the hidden layer
 * with a shared-memory tree reduction (workgroup = 16 inputs x 16
 * hidden units).
 * Bindings: 0=input(ro f32 n), 1=weights(ro f32 n*16),
 *           2=partial(f32 numBlocks*16).
 * Push: [0]=n.  Local size 256, shared 16 + 256 words.
 */
spirv::Module buildBackpropLayerForward();

/**
 * backprop_adjust_weights — w[i][j] += lr * delta[j] * input[i].
 * Bindings: 0=input(ro f32 n), 1=delta(ro f32 16), 2=weights(f32 n*16).
 * Push: [0]=n, [1]=lr (f32 bits).  Local size 256.
 */
spirv::Module buildBackpropAdjustWeights();

// ---------------------------------------------------------------------------
// bfs (graph traversal)
// ---------------------------------------------------------------------------

/**
 * bfs_kernel1 — expand the frontier.  The edge-array and visited-flag
 * loads carry MemFlagPromoteHint: mature compilers keep them on-chip
 * (the paper's CodeXL finding), young Vulkan compilers do not.
 * Bindings: 0=nodeStart(ro i32), 1=nodeDegree(ro i32), 2=edges(ro i32),
 *           3=mask(i32), 4=updatingMask(i32), 5=visited(ro i32),
 *           6=cost(i32).
 * Push: [0]=numNodes.  Local size 256.
 */
spirv::Module buildBfsKernel1();

/**
 * bfs_kernel2 — fold the updating mask and raise the continue flag.
 * Bindings: 0=mask(i32), 1=updatingMask(i32), 2=visited(i32),
 *           3=stop(i32, word 0).
 * Push: [0]=numNodes.  Local size 256.
 */
spirv::Module buildBfsKernel2();

// ---------------------------------------------------------------------------
// cfd (fluid dynamics; synthetic-mesh euler3d equivalent)
// ---------------------------------------------------------------------------

/**
 * cfd_compute_step_factor.
 * Bindings: 0=variables(ro f32 5n SoA), 1=areas(ro f32 n),
 *           2=stepFactors(f32 n).
 * Push: [0]=n.  Local size 128.
 */
spirv::Module buildCfdStepFactor();

/**
 * cfd_compute_flux — neighbour gather over the 4-neighbour synthetic
 * mesh; the compute-heavy kernel (sqrt/div per neighbour).
 * Bindings: 0=variables(ro f32 5n), 1=neighbors(ro i32 4n),
 *           2=normals(ro f32 4n), 3=fluxes(f32 5n).
 * Push: [0]=n.  Local size 128.
 */
spirv::Module buildCfdComputeFlux();

/**
 * cfd_time_step — variables += stepFactor * fluxes (RK stage).
 * Bindings: 0=variables(f32 5n), 1=stepFactors(ro f32 n),
 *           2=fluxes(ro f32 5n).
 * Push: [0]=n, [1]=rkFactor (f32 bits).  Local size 128.
 */
spirv::Module buildCfdTimeStep();

// ---------------------------------------------------------------------------
// gaussian (dense linear algebra)
// ---------------------------------------------------------------------------

/**
 * gaussian_fan1 — column multipliers for elimination step t.
 * Bindings: 0=a(ro f32 n*n), 1=m(f32 n*n).
 * Push: [0]=n, [1]=t.  Local size 256.
 */
spirv::Module buildGaussianFan1();

/**
 * gaussian_fan2 — row reduction for step t (updates a and b).
 * Bindings: 0=a(f32 n*n), 1=m(ro f32 n*n), 2=b(f32 n).
 * Push: [0]=n, [1]=t.  Local size 256.
 */
spirv::Module buildGaussianFan2();

// ---------------------------------------------------------------------------
// hotspot (structured grid, shared-memory tiled stencil)
// ---------------------------------------------------------------------------

/**
 * hotspot_step — one tiled stencil step with halo staging in shared
 * memory (16x16 tile, 18x18 staged).
 * Bindings: 0=tIn(ro f32 g*g), 1=power(ro f32 g*g), 2=tOut(f32 g*g).
 * Push: [0]=g, [1]=cc, [2]=rxInv, [3]=ryInv, [4]=rzInv, [5]=amb
 * (floats as bits).  Local size 16x16.
 */
spirv::Module buildHotspotStep();

// ---------------------------------------------------------------------------
// lud (dense linear algebra, blocked 16x16)
// ---------------------------------------------------------------------------

/**
 * lud_diagonal — in-place LU of diagonal block t (single workgroup of
 * 16 lanes, barrier per elimination step).
 * Bindings: 0=a(f32 n*n).  Push: [0]=n, [1]=t.  Local 16, shared 256.
 */
spirv::Module buildLudDiagonal();

/**
 * lud_perimeter — updates row blocks (t, t+1+w) and column blocks
 * (t+1+w, t); workgroup w in [0, 2*(nb-t-1)).
 * Bindings: 0=a(f32 n*n).  Push: [0]=n, [1]=t.  Local 16, shared 512.
 */
spirv::Module buildLudPerimeter();

/**
 * lud_internal — trailing submatrix update, 2D grid of 16x16 lanes.
 * Bindings: 0=a(f32 n*n).  Push: [0]=n, [1]=t.
 * Local 16x16, shared 512.
 */
spirv::Module buildLudInternal();

// ---------------------------------------------------------------------------
// nn (data mining)
// ---------------------------------------------------------------------------

/**
 * nn_euclid — Euclidean distance of each (lat, lng) record to the
 * query point.
 * Bindings: 0=lat(ro f32 n), 1=lng(ro f32 n), 2=dist(f32 n).
 * Push: [0]=n, [1]=qLat (bits), [2]=qLng (bits).  Local size 256.
 */
spirv::Module buildNnEuclid();

// ---------------------------------------------------------------------------
// nw (dynamic programming)
// ---------------------------------------------------------------------------

/**
 * nw_block — one 16x16 block of the alignment matrix per workgroup,
 * internal anti-diagonal wavefront with barriers; workgroup bx walks
 * the block anti-diagonal s (x = xStart + bx, y = s - x).
 * Bindings: 0=itemsets(i32 (n+1)^2), 1=reference(ro i32 (n+1)^2).
 * Push: [0]=n, [1]=s, [2]=xStart, [3]=penalty.
 * Local 16, shared 17*17 + 16*16 words.
 */
spirv::Module buildNwBlock();

// ---------------------------------------------------------------------------
// pathfinder (grid traversal)
// ---------------------------------------------------------------------------

/**
 * pathfinder_row — one dynamic-programming row:
 * dst[j] = data[row*cols + j] + min(src[j-1], src[j], src[j+1]).
 * Bindings: 0=data(ro i32 rows*cols), 1=src(ro i32 cols),
 *           2=dst(i32 cols).
 * Push: [0]=cols, [1]=row.  Local size 256.
 */
spirv::Module buildPathfinderRow();

// ---------------------------------------------------------------------------
// srad (structured grid, stencil + per-iteration statistics reduction)
// ---------------------------------------------------------------------------

/**
 * srad_reduce — per-workgroup partial sums of J and J^2 via a
 * shared-memory tree reduction; the host folds the partials into the
 * iteration's q0sqr.
 * Bindings: 0=J(ro f32 n), 1=psum(f32 numBlocks), 2=psum2(f32 numBlocks).
 * Push: [0]=n.  Local size 256, shared 512 words.
 */
spirv::Module buildSradReduce();

/**
 * srad_step1 — directional derivatives (clamped neighbours) and the
 * diffusion coefficient c, clamped to [0, 1].
 * Bindings: 0=J(ro f32 g*g), 1=c(f32 g*g), 2=dN, 3=dS, 4=dW, 5=dE
 * (all f32 g*g).  Push: [0]=g, [1]=q0sqr (f32 bits).  Local 16x16.
 */
spirv::Module buildSradStep1();

/**
 * srad_step2 — divergence of the coefficient-weighted derivatives;
 * J += 0.25 * lambda * d in place.
 * Bindings: 0=J(f32 g*g), 1=c(ro), 2=dN(ro), 3=dS(ro), 4=dW(ro),
 *           5=dE(ro).  Push: [0]=g, [1]=lambda (f32 bits).
 * Local 16x16.
 */
spirv::Module buildSradStep2();

// ---------------------------------------------------------------------------
// kmeans (data mining, host convergence loop)
// ---------------------------------------------------------------------------

/**
 * kmeans_swap — transpose the feature matrix AoS (n x f) -> SoA (f x n)
 * so the assignment kernel's feature loop is coalesced.
 * Bindings: 0=features AoS(ro f32 n*f), 1=features SoA(f32 f*n).
 * Push: [0]=n, [1]=f.  Local size 256.
 */
spirv::Module buildKmeansSwap();

/**
 * kmeans_assign — nearest-centroid assignment; counts changed
 * memberships into an atomic delta word the host polls for
 * convergence.
 * Bindings: 0=features SoA(ro f32 f*n), 1=centroids(ro f32 k*f),
 *           2=membership(i32 n), 3=delta(i32, word 0).
 * Push: [0]=n, [1]=f, [2]=k.  Local size 256.
 */
spirv::Module buildKmeansAssign();

// ---------------------------------------------------------------------------
// streamcluster (data mining, branch-divergent pairwise distances)
// ---------------------------------------------------------------------------

/**
 * streamcluster_gain — weighted distance of every point to candidate
 * centre x; points that would switch record their saving in lower[]
 * and raise switchFlag[].
 * Bindings: 0=coords SoA(ro f32 dim*n), 1=weight(ro f32 n),
 *           2=cost(ro f32 n), 3=lower(f32 n), 4=switchFlag(i32 n).
 * Push: [0]=n, [1]=dim, [2]=x.  Local size 256.
 */
spirv::Module buildStreamclusterGain();

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/** Builder signature shared by every kernel above. */
using BuildFn = spirv::Module (*)();

/**
 * Entry-point name → builder for every kernel in this library, in
 * header order.  vcb_disasm, the golden-reference coverage test and
 * future tools share this single table; keep it in sync when adding a
 * kernel.
 */
const std::vector<std::pair<std::string, BuildFn>> &kernelRegistry();

/** Build a kernel by entry-point name; fatal when unknown. */
spirv::Module buildByName(const std::string &name);

} // namespace vcb::kernels

#endif // VCB_KERNELS_KERNELS_H

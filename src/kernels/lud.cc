/**
 * @file
 * lud kernels (Rodinia lud: blocked right-looking LU, block size 16,
 * three kernels per elimination step: diagonal, perimeter, internal).
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

namespace {
constexpr uint32_t B = blockSize; // 16
} // namespace

// Single workgroup of 16 lanes factorises diagonal block t in shared
// memory: lane j owns row j of the block.
spirv::Module
buildLudDiagonal()
{
    Builder b("lud_diagonal", B);
    b.bindStorage(0, ElemType::F32);
    b.setPushWords(2);
    b.setSharedWords(B * B);

    auto n = b.ldPush(0);
    auto t = b.ldPush(1);
    auto j = b.localIdX();
    auto bconst = b.constI(static_cast<int32_t>(B));
    auto base = b.imul(t, bconst); // top-left element index (row = col)

    // Load row j of the block into shared.
    auto one = b.constI(1);
    auto zero = b.constI(0);
    b.forRange(zero, bconst, one, [&](Builder::Reg k) {
        auto g = b.iadd(b.imul(b.iadd(base, j), n), b.iadd(base, k));
        b.stShared(b.iadd(b.imul(j, bconst), k), b.ldBuf(0, g));
    });
    b.barrier();

    // Elimination steps (static unroll over the pivot index i).
    for (uint32_t i = 0; i + 1 < B; ++i) {
        auto iv = b.constI(static_cast<int32_t>(i));
        auto below = b.igt(j, iv);
        b.ifThen(below, [&] {
            auto lji = b.iadd(b.imul(j, bconst), iv);
            auto uii = b.ldShared(
                b.constI(static_cast<int32_t>(i * B + i)));
            b.stShared(lji, b.fdiv(b.ldShared(lji), uii));
        });
        b.barrier();
        b.ifThen(below, [&] {
            auto lji = b.ldShared(b.iadd(b.imul(j, bconst), iv));
            auto start = b.constI(static_cast<int32_t>(i + 1));
            b.forRange(start, bconst, one, [&](Builder::Reg k) {
                auto jk = b.iadd(b.imul(j, bconst), k);
                auto ik = b.iadd(b.constI(static_cast<int32_t>(i * B)),
                                 k);
                auto v = b.fsub(b.ldShared(jk),
                                b.fmul(lji, b.ldShared(ik)));
                b.stShared(jk, v);
            });
        });
        b.barrier();
    }

    // Write row j back.
    b.forRange(zero, bconst, one, [&](Builder::Reg k) {
        auto g = b.iadd(b.imul(b.iadd(base, j), n), b.iadd(base, k));
        b.stBuf(0, g, b.ldShared(b.iadd(b.imul(j, bconst), k)));
    });
    return b.finish();
}

// Workgroup w < half handles row block (t, t+1+w): columns of U.
// Workgroup w >= half handles column block (t+1+w-half, t): rows of L.
// shared[0..255] = diagonal block, shared[256..511] = work block.
spirv::Module
buildLudPerimeter()
{
    Builder b("lud_perimeter", B);
    b.bindStorage(0, ElemType::F32);
    b.setPushWords(3); // n, t, half
    b.setSharedWords(2 * B * B);

    auto n = b.ldPush(0);
    auto t = b.ldPush(1);
    auto half = b.ldPush(2);
    auto j = b.localIdX();
    auto w = b.groupIdX();
    auto bconst = b.constI(static_cast<int32_t>(B));
    auto woff = b.constI(static_cast<int32_t>(B * B));
    auto zero = b.constI(0);
    auto one = b.constI(1);

    auto is_row = b.ult(w, half);
    auto off = b.select(is_row, w, b.isub(w, half));
    auto other = b.iadd(b.iadd(t, one), off);
    auto brow = b.select(is_row, t, other);
    auto bcol = b.select(is_row, other, t);

    // Load diag block (row j) and work block (row j).
    auto dbase_r = b.imul(b.iadd(b.imul(t, bconst), j), n);
    auto dbase_c = b.imul(t, bconst);
    b.forRange(zero, bconst, one, [&](Builder::Reg k) {
        auto g = b.iadd(dbase_r, b.iadd(dbase_c, k));
        b.stShared(b.iadd(b.imul(j, bconst), k), b.ldBuf(0, g));
    });
    auto wbase_r = b.imul(b.iadd(b.imul(brow, bconst), j), n);
    auto wbase_c = b.imul(bcol, bconst);
    b.forRange(zero, bconst, one, [&](Builder::Reg k) {
        auto g = b.iadd(wbase_r, b.iadd(wbase_c, k));
        b.stShared(b.iadd(woff, b.iadd(b.imul(j, bconst), k)),
                   b.ldBuf(0, g));
    });
    b.barrier();

    // Both branches are pure per-lane work (lane j owns column j of a
    // row block / row j of a column block) — no further barriers.
    b.ifThenElse(
        is_row,
        [&] {
            // U block: w[i][j] -= sum_{k<i} d[i][k] * w[k][j]
            b.forRange(zero, bconst, one, [&](Builder::Reg i) {
                auto acc = b.ldShared(
                    b.iadd(woff, b.iadd(b.imul(i, bconst), j)));
                b.forRange(zero, i, one, [&](Builder::Reg k) {
                    auto dik = b.ldShared(b.iadd(b.imul(i, bconst), k));
                    auto wkj = b.ldShared(
                        b.iadd(woff, b.iadd(b.imul(k, bconst), j)));
                    auto prod = b.fmul(dik, wkj);
                    auto nprod = b.fneg(prod);
                    auto sum = b.fadd(acc, nprod);
                    b.movTo(acc, sum);
                });
                b.stShared(b.iadd(woff, b.iadd(b.imul(i, bconst), j)),
                           acc);
            });
        },
        [&] {
            // L block: w[j][i] = (w[j][i] - sum_{k<i} w[j][k] * d[k][i])
            //                    / d[i][i]
            b.forRange(zero, bconst, one, [&](Builder::Reg i) {
                auto acc = b.ldShared(
                    b.iadd(woff, b.iadd(b.imul(j, bconst), i)));
                b.forRange(zero, i, one, [&](Builder::Reg k) {
                    auto wjk = b.ldShared(
                        b.iadd(woff, b.iadd(b.imul(j, bconst), k)));
                    auto dki = b.ldShared(b.iadd(b.imul(k, bconst), i));
                    auto prod = b.fmul(wjk, dki);
                    auto sum = b.fsub(acc, prod);
                    b.movTo(acc, sum);
                });
                auto dii = b.ldShared(b.iadd(b.imul(i, bconst), i));
                b.stShared(b.iadd(woff, b.iadd(b.imul(j, bconst), i)),
                           b.fdiv(acc, dii));
            });
        });
    b.barrier();

    // Write the work block back (row j).
    b.forRange(zero, bconst, one, [&](Builder::Reg k) {
        auto g = b.iadd(wbase_r, b.iadd(wbase_c, k));
        b.stBuf(0, g,
                b.ldShared(b.iadd(woff, b.iadd(b.imul(j, bconst), k))));
    });
    return b.finish();
}

// 2D grid over the trailing submatrix; lane (li, lj) of workgroup
// (bx, by) updates a[(t+1+by)*16+lj][(t+1+bx)*16+li].
spirv::Module
buildLudInternal()
{
    Builder b("lud_internal", B, B);
    b.bindStorage(0, ElemType::F32);
    b.setPushWords(2);
    b.setSharedWords(2 * B * B);

    auto n = b.ldPush(0);
    auto t = b.ldPush(1);
    auto li = b.localIdX();
    auto lj = b.localIdY();
    auto bx = b.groupIdX();
    auto by = b.groupIdY();
    auto bconst = b.constI(static_cast<int32_t>(B));
    auto uoff = b.constI(static_cast<int32_t>(B * B));
    auto one = b.constI(1);

    auto row_block = b.iadd(b.iadd(t, one), by);
    auto col_block = b.iadd(b.iadd(t, one), bx);

    // L block: rows (row_block), cols (t).  Lane stages one element.
    auto l_g = b.iadd(b.imul(b.iadd(b.imul(row_block, bconst), lj), n),
                      b.iadd(b.imul(t, bconst), li));
    b.stShared(b.iadd(b.imul(lj, bconst), li), b.ldBuf(0, l_g));
    // U block: rows (t), cols (col_block).
    auto u_g = b.iadd(b.imul(b.iadd(b.imul(t, bconst), lj), n),
                      b.iadd(b.imul(col_block, bconst), li));
    b.stShared(b.iadd(uoff, b.iadd(b.imul(lj, bconst), li)),
               b.ldBuf(0, u_g));
    b.barrier();

    auto acc = b.constF(0.0f);
    auto zero = b.constI(0);
    b.forRange(zero, bconst, one, [&](Builder::Reg k) {
        auto l = b.ldShared(b.iadd(b.imul(lj, bconst), k));
        auto u = b.ldShared(b.iadd(uoff, b.iadd(b.imul(k, bconst), li)));
        auto sum = b.ffma(l, u, acc);
        b.movTo(acc, sum);
    });

    auto g = b.iadd(b.imul(b.iadd(b.imul(row_block, bconst), lj), n),
                    b.iadd(b.imul(col_block, bconst), li));
    b.stBuf(0, g, b.fsub(b.ldBuf(0, g), acc));
    return b.finish();
}

} // namespace vcb::kernels

/**
 * @file
 * backprop kernels (Rodinia backprop, 16-unit hidden layer).
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

// Workgroup: 256 lanes = 16 inputs x 16 hidden units.
// shared[0..15]          : staged input tile
// shared[16..271]        : per-(input, hidden) products for reduction
spirv::Module
buildBackpropLayerForward()
{
    Builder b("backprop_layerforward", 256);
    b.bindStorage(0, ElemType::F32, true);  // input[n]
    b.bindStorage(1, ElemType::F32, true);  // weights[n*16]
    b.bindStorage(2, ElemType::F32);        // partial[numBlocks*16]
    b.setPushWords(1);
    b.setSharedWords(16 + 256);

    auto lane = b.localLinearId();
    auto sixteen = b.constI(16);
    auto i_local = b.irem(lane, sixteen);
    auto j = b.idiv(lane, sixteen);
    auto block = b.groupIdX();
    auto n = b.ldPush(0);

    auto i_global = b.iadd(b.imul(block, sixteen), i_local);
    auto valid = b.ult(i_global, n);

    // Lanes with j == 0 stage the input tile.
    auto zero = b.constI(0);
    auto is_loader = b.ieq(j, zero);
    b.ifThen(is_loader, [&] {
        auto safe = b.select(valid, i_global, zero);
        auto v = b.ldBuf(0, safe);
        auto fzero = b.constF(0.0f);
        auto staged = b.select(valid, v, fzero);
        b.stShared(i_local, staged);
    });
    b.barrier();

    // prod(i_local, j) = input[i] * w[i*16 + j]
    auto safe_i = b.select(valid, i_global, zero);
    auto w_idx = b.iadd(b.imul(safe_i, sixteen), j);
    auto w = b.ldBuf(1, w_idx);
    auto in_v = b.ldShared(i_local);
    auto prod = b.fmul(in_v, w);
    auto fzero = b.constF(0.0f);
    prod = b.select(valid, prod, fzero);
    // Store at 16 + i_local*16 + j so the reduction over i_local walks
    // a fixed stride per hidden unit.
    auto slot = b.iadd(sixteen, b.iadd(b.imul(i_local, sixteen), j));
    b.stShared(slot, prod);
    b.barrier();

    // Tree reduction over i_local (stride 8, 4, 2, 1).
    for (uint32_t s = 8; s >= 1; s /= 2) {
        auto stride = b.constI(static_cast<int32_t>(s));
        auto active = b.ilt(i_local, stride);
        b.ifThen(active, [&] {
            auto mine = b.iadd(sixteen,
                               b.iadd(b.imul(i_local, sixteen), j));
            auto theirs = b.iadd(
                sixteen,
                b.iadd(b.imul(b.iadd(i_local, stride), sixteen), j));
            auto sum = b.fadd(b.ldShared(mine), b.ldShared(theirs));
            b.stShared(mine, sum);
        });
        b.barrier();
    }

    // Lane row 0 writes the per-block partial sums.
    auto is_writer = b.ieq(i_local, zero);
    b.ifThen(is_writer, [&] {
        auto out_idx = b.iadd(b.imul(block, sixteen), j);
        b.stBuf(2, out_idx, b.ldShared(b.iadd(sixteen, j)));
    });
    return b.finish();
}

// w[i*16 + j] += lr * delta[j] * input[i]
spirv::Module
buildBackpropAdjustWeights()
{
    Builder b("backprop_adjust_weights", 256);
    b.bindStorage(0, ElemType::F32, true); // input[n]
    b.bindStorage(1, ElemType::F32, true); // delta[16]
    b.bindStorage(2, ElemType::F32);       // weights[n*16]
    b.setPushWords(2);

    auto gid = b.globalIdX();
    auto n = b.ldPush(0);
    auto lr = b.ldPush(1);
    auto sixteen = b.constI(16);
    auto i = b.idiv(gid, sixteen);
    auto j = b.irem(gid, sixteen);
    auto in_range = b.ult(i, n);
    b.ifThen(in_range, [&] {
        auto input = b.ldBuf(0, i);
        auto delta = b.ldBuf(1, j);
        auto w = b.ldBuf(2, gid);
        auto upd = b.ffma(b.fmul(lr, delta), input, w);
        b.stBuf(2, gid, upd);
    });
    return b.finish();
}

} // namespace vcb::kernels

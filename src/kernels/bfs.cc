/**
 * @file
 * bfs kernels (Rodinia bfs: frontier expansion + mask fold).
 *
 * The edge-array and visited-flag loads in kernel1 carry the
 * promote-to-on-chip hint: disassembling the real drivers' output the
 * paper found the OpenCL compiler used workgroup local memory for
 * these accesses while the Vulkan compiler issued plain buffer loads
 * (Sec. V-A2) — the cause of bfs's Vulkan slowdown on both desktop
 * GPUs.
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;
using spirv::MemFlagPromoteHint;

spirv::Module
buildBfsKernel1()
{
    Builder b("bfs_kernel1", 256);
    b.bindStorage(0, ElemType::I32, true); // nodeStart
    b.bindStorage(1, ElemType::I32, true); // nodeDegree
    b.bindStorage(2, ElemType::I32, true); // edges
    b.bindStorage(3, ElemType::I32);       // mask
    b.bindStorage(4, ElemType::I32);       // updatingMask
    b.bindStorage(5, ElemType::I32, true); // visited
    b.bindStorage(6, ElemType::I32);       // cost
    b.setPushWords(1);

    auto tid = b.globalIdX();
    auto n = b.ldPush(0);
    auto zero = b.constI(0);
    auto one = b.constI(1);

    auto in_range = b.ult(tid, n);
    b.ifThen(in_range, [&] {
        auto active = b.ine(b.ldBuf(3, tid), zero);
        b.ifThen(active, [&] {
            b.stBuf(3, tid, zero);
            auto my_cost = b.ldBuf(6, tid);
            auto next_cost = b.iadd(my_cost, one);
            auto start = b.ldBuf(0, tid);
            auto degree = b.ldBuf(1, tid);
            auto end = b.iadd(start, degree);
            b.forRange(start, end, one, [&](Builder::Reg e) {
                auto id = b.ldBuf(2, e, MemFlagPromoteHint);
                auto seen = b.ldBuf(5, id);
                auto fresh = b.ieq(seen, zero);
                b.ifThen(fresh, [&] {
                    b.stBuf(6, id, next_cost);
                    b.stBuf(4, id, one);
                });
            });
        });
    });
    return b.finish();
}

spirv::Module
buildBfsKernel2()
{
    Builder b("bfs_kernel2", 256);
    b.bindStorage(0, ElemType::I32); // mask
    b.bindStorage(1, ElemType::I32); // updatingMask
    b.bindStorage(2, ElemType::I32); // visited
    b.bindStorage(3, ElemType::I32); // stop flag (word 0)
    b.setPushWords(1);

    auto tid = b.globalIdX();
    auto n = b.ldPush(0);
    auto zero = b.constI(0);
    auto one = b.constI(1);

    auto in_range = b.ult(tid, n);
    b.ifThen(in_range, [&] {
        auto pending = b.ine(b.ldBuf(1, tid), zero);
        b.ifThen(pending, [&] {
            b.stBuf(0, tid, one);
            b.stBuf(2, tid, one);
            b.stBuf(3, zero, one); // benign same-value race
            b.stBuf(1, tid, zero);
        });
    });
    return b.finish();
}

} // namespace vcb::kernels

/**
 * @file
 * kmeans kernels (Rodinia kmeans: data-parallel cluster assignment on
 * the device, centroid recomputation on the host, iterated until the
 * membership stops changing).
 *
 * kmeans_swap runs once to transpose the feature matrix into SoA form
 * so the assignment kernel's feature loop is coalesced (Rodinia does
 * the same transpose on the GPU).  kmeans_assign then runs once per
 * host iteration; the changed-membership counter it maintains with an
 * atomic is what the host's convergence loop reads back every
 * iteration — the blocking multi-kernel pattern the paper contrasts
 * with Vulkan's enqueue-ahead submission.
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

spirv::Module
buildKmeansSwap()
{
    Builder b("kmeans_swap", 256);
    b.bindStorage(0, ElemType::F32, true); // features AoS (n x f)
    b.bindStorage(1, ElemType::F32);       // features SoA (f x n)
    b.setPushWords(2);

    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto f = b.ldPush(1);
    auto zero = b.constI(0);
    auto one = b.constI(1);

    auto in_range = b.ult(i, n);
    b.ifThen(in_range, [&] {
        auto base = b.imul(i, f);
        b.forRange(zero, f, one, [&](Builder::Reg j) {
            auto v = b.ldBuf(0, b.iadd(base, j));
            b.stBuf(1, b.iadd(b.imul(j, n), i), v);
        });
    });
    return b.finish();
}

spirv::Module
buildKmeansAssign()
{
    Builder b("kmeans_assign", 256);
    b.bindStorage(0, ElemType::F32, true); // features SoA (f x n)
    b.bindStorage(1, ElemType::F32, true); // centroids (k x f)
    b.bindStorage(2, ElemType::I32);       // membership[n]
    b.bindStorage(3, ElemType::I32);       // delta counter (word 0)
    b.setPushWords(3);

    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto f = b.ldPush(1);
    auto k = b.ldPush(2);
    auto zero = b.constI(0);
    auto one = b.constI(1);

    auto in_range = b.ult(i, n);
    b.ifThen(in_range, [&] {
        auto best_idx = b.mov(zero);
        auto best_dist = b.constF(3.402823466e38f); // FLT_MAX
        b.forRange(zero, k, one, [&](Builder::Reg c) {
            auto dist = b.constF(0.0f);
            auto cbase = b.imul(c, f);
            b.forRange(zero, f, one, [&](Builder::Reg j) {
                auto x = b.ldBuf(0, b.iadd(b.imul(j, n), i));
                auto cent = b.ldBuf(1, b.iadd(cbase, j));
                auto diff = b.fsub(x, cent);
                b.faddTo(dist, dist, b.fmul(diff, diff));
            });
            // Strict less-than: the first of equal minima wins, so the
            // assignment is deterministic for every executor order.
            auto better = b.flt(dist, best_dist);
            b.movTo(best_dist, b.select(better, dist, best_dist));
            b.movTo(best_idx, b.select(better, c, best_idx));
        });
        auto old = b.ldBuf(2, i);
        auto changed = b.ine(old, best_idx);
        b.ifThen(changed, [&] { b.atomIAdd(3, zero, one); });
        b.stBuf(2, i, best_idx);
    });
    return b.finish();
}

} // namespace vcb::kernels

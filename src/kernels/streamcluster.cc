/**
 * @file
 * streamcluster kernel (Rodinia streamcluster: the pgain step of
 * online facility-location clustering).
 *
 * For one candidate centre x the kernel computes every point's
 * weighted distance to x and, where that beats the point's current
 * assignment cost, records the saving and a switch flag; the host sums
 * the savings, decides whether opening x is worth it, and reassigns.
 * The per-lane comparison makes the kernel branch-divergent in a way
 * none of the structured-grid families are — half a warp takes the
 * cheaper-centre path while the other half does not — so it exercises
 * the interpreter's lane-major fallback rather than the lockstep fast
 * path.
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

spirv::Module
buildStreamclusterGain()
{
    Builder b("streamcluster_gain", 256);
    b.bindStorage(0, ElemType::F32, true); // coords SoA (dim x n)
    b.bindStorage(1, ElemType::F32, true); // weight[n]
    b.bindStorage(2, ElemType::F32, true); // cost[n]
    b.bindStorage(3, ElemType::F32);       // lower[n] (saving if switched)
    b.bindStorage(4, ElemType::I32);       // switchFlag[n]
    b.setPushWords(3);

    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto dim = b.ldPush(1);
    auto x = b.ldPush(2); // candidate centre's point index
    auto zero = b.constI(0);
    auto one = b.constI(1);

    auto in_range = b.ult(i, n);
    b.ifThen(in_range, [&] {
        auto d = b.constF(0.0f);
        b.forRange(zero, dim, one, [&](Builder::Reg j) {
            auto row = b.imul(j, n);
            auto mine = b.ldBuf(0, b.iadd(row, i));
            auto cand = b.ldBuf(0, b.iadd(row, x));
            auto diff = b.fsub(mine, cand);
            b.faddTo(d, d, b.fmul(diff, diff));
        });
        auto cost_new = b.fmul(b.ldBuf(1, i), d);
        auto cheaper = b.flt(cost_new, b.ldBuf(2, i));
        b.ifThenElse(
            cheaper,
            [&] {
                b.stBuf(3, i, b.fsub(b.ldBuf(2, i), cost_new));
                b.stBuf(4, i, one);
            },
            [&] {
                b.stBuf(3, i, b.constF(0.0f));
                b.stBuf(4, i, zero);
            });
    });
    return b.finish();
}

} // namespace vcb::kernels

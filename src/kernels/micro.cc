/**
 * @file
 * Microbenchmark kernels: vectorAdd and stridedRead.
 */

#include "kernels/kernels.h"

#include "spirv/builder.h"

namespace vcb::kernels {

using spirv::Builder;
using spirv::ElemType;

// GLSL equivalent:
//   layout(local_size_x = 256) in;
//   void main() {
//       uint i = gl_GlobalInvocationID.x;
//       if (i < pc.n) Z[i] = X[i] + Y[i];
//   }
spirv::Module
buildVecAdd()
{
    Builder b("vectorAdd", 256);
    b.bindStorage(0, ElemType::F32, true);
    b.bindStorage(1, ElemType::F32, true);
    b.bindStorage(2, ElemType::F32);
    b.setPushWords(1);

    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto in_range = b.ult(i, n);
    b.ifThen(in_range, [&] {
        auto x = b.ldBuf(0, i);
        auto y = b.ldBuf(1, i);
        b.stBuf(2, i, b.fadd(x, y));
    });
    return b.finish();
}

// GLSL equivalent:
//   uint j = gl_GlobalInvocationID.x;
//   float sum = 0;
//   for (uint r = 0; r < pc.rounds; ++r)
//       sum += src[((r & 7) * pc.threads + j) * pc.stride];
//   if (sum == 123456789.0) guard[0] = sum;   // never taken
//
// The row index wraps over an 8-row window so the footprint stays
// bounded while the round count amortises launch costs; the window
// (threads * 8 * stride * 4 bytes) far exceeds the caches of every
// modelled GPU, so each pass streams from DRAM as a larger buffer
// would.
spirv::Module
buildStridedRead()
{
    Builder b("stridedRead", 256);
    b.bindStorage(0, ElemType::F32, true);
    b.bindStorage(1, ElemType::F32);
    b.setPushWords(3);

    auto j = b.globalIdX();
    auto stride = b.ldPush(0);
    auto rounds = b.ldPush(1);
    auto threads = b.ldPush(2);

    auto sum = b.constF(0.0f);
    auto zero = b.constI(0);
    auto one = b.constI(1);
    auto window_mask = b.constI(7);
    b.forRange(zero, rounds, one, [&](Builder::Reg r) {
        auto row = b.iand(r, window_mask);
        auto base = b.imul(row, threads);
        auto idx = b.imul(b.iadd(base, j), stride);
        auto v = b.ldBuf(0, idx);
        b.faddTo(sum, sum, v);
    });

    auto sentinel = b.constF(123456789.0f);
    auto taken = b.feq(sum, sentinel);
    b.ifThen(taken, [&] { b.stBuf(1, zero, sum); });
    return b.finish();
}

} // namespace vcb::kernels

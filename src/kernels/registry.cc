/**
 * @file
 * The kernel registry: one table mapping entry-point names to their
 * builders, shared by vcb_disasm, the golden-reference coverage test
 * and anything else that needs "all kernels" without hard-coding the
 * list.
 */

#include "kernels/kernels.h"

#include "common/logging.h"

namespace vcb::kernels {

const std::vector<std::pair<std::string, BuildFn>> &
kernelRegistry()
{
    static const std::vector<std::pair<std::string, BuildFn>> table = {
        {"vectorAdd", buildVecAdd},
        {"stridedRead", buildStridedRead},
        {"backprop_layerforward", buildBackpropLayerForward},
        {"backprop_adjust_weights", buildBackpropAdjustWeights},
        {"bfs_kernel1", buildBfsKernel1},
        {"bfs_kernel2", buildBfsKernel2},
        {"cfd_compute_step_factor", buildCfdStepFactor},
        {"cfd_compute_flux", buildCfdComputeFlux},
        {"cfd_time_step", buildCfdTimeStep},
        {"gaussian_fan1", buildGaussianFan1},
        {"gaussian_fan2", buildGaussianFan2},
        {"hotspot_step", buildHotspotStep},
        {"lud_diagonal", buildLudDiagonal},
        {"lud_perimeter", buildLudPerimeter},
        {"lud_internal", buildLudInternal},
        {"nn_euclid", buildNnEuclid},
        {"nw_block", buildNwBlock},
        {"pathfinder_row", buildPathfinderRow},
        {"srad_reduce", buildSradReduce},
        {"srad_step1", buildSradStep1},
        {"srad_step2", buildSradStep2},
        {"kmeans_swap", buildKmeansSwap},
        {"kmeans_assign", buildKmeansAssign},
        {"streamcluster_gain", buildStreamclusterGain},
    };
    return table;
}

spirv::Module
buildByName(const std::string &name)
{
    for (const auto &[k, fn] : kernelRegistry())
        if (k == name)
            return fn();
    fatal("unknown kernel '%s'", name.c_str());
}

} // namespace vcb::kernels

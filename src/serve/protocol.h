/**
 * @file
 * The vcb_serve wire protocol: newline-delimited flat JSON.
 *
 * Every request and every response is exactly one line holding one
 * FLAT JSON object — string, number and boolean values only.  Nested
 * objects/arrays, null, duplicate keys and unknown keys are rejected
 * (a load generator feeding a long-lived server must fail loudly on a
 * malformed or misspelled request, not silently default it), which
 * also keeps the parser small enough to be obviously correct.
 *
 * Run request (all keys optional except "bench"):
 *
 *   {"id": "r1", "bench": "bfs", "size": 0, "api": "vulkan",
 *    "device": "gtx1050ti", "strategy": "batched", "queues": 2}
 *
 *   "size" is a desktop/mobile size index (number) or a size label
 *   (string, e.g. "64K").  "strategy" is a strategyName() or
 *   "default".
 *
 * Control commands:
 *
 *   {"cmd": "stats", "id": "s1"}        -> one flat stats line
 *   {"cmd": "drain", "id": "d1"}        -> ack after queues empty
 *   {"cmd": "shutdown", "id": "q1"}     -> drain, ack, exit
 *   {"cmd": "cache", "enabled": true}   -> toggle the compile cache
 *   {"cmd": "cache_clear"}              -> drop cached kernels
 *
 * Responses echo the request id and carry a "type" discriminator:
 * "result" (a completed run), "ok" (control ack), "error" (rejected
 * request), "stats".  Results arrive in COMPLETION order, not
 * submission order — the id is the correlation key.  result_hash is
 * the FNV-1a hash of the final host arrays as a hex string (JSON
 * numbers cannot carry 64 bits), the bit-identity handle used by
 * vcb_load and the serve tests.
 */

#ifndef VCB_SERVE_PROTOCOL_H
#define VCB_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vcb::serve {

/** One value of a flat JSON object. */
struct JsonField
{
    enum class Kind { String, Number, Bool };
    Kind kind = Kind::String;
    std::string str;
    double num = 0;
    bool b = false;
};

/** Parsed flat object, in key order. */
using JsonObject = std::vector<std::pair<std::string, JsonField>>;

/**
 * Parse one line as a flat JSON object.  Rejects (returns false, sets
 * `err`) on syntax errors, nested objects/arrays, null values,
 * duplicate keys and trailing garbage.  \uXXXX escapes are accepted
 * for ASCII code points only.
 */
bool parseFlatObject(const std::string &line, JsonObject *out,
                     std::string *err);

/** JSON string escaping (quotes not included). */
std::string jsonEscape(const std::string &s);

/** A decoded request line. */
struct Request
{
    enum class Kind { Run, Stats, Drain, Shutdown, Cache, CacheClear };
    Kind kind = Kind::Run;

    /** Client correlation id (echoed verbatim; may be empty). */
    std::string id;

    // ---- Run ----------------------------------------------------------
    std::string bench;
    std::string device = "gtx1050ti";
    std::string api = "vulkan";
    /** Size index into the device-class size list... */
    int sizeIdx = 0;
    /** ...or, when non-empty, a size label ("64K") looked up instead. */
    std::string sizeLabel;
    /** strategyName() or empty/"default" = the workload's preferred. */
    std::string strategy;
    /** Vulkan multi-queue width (0 = serial single-queue path). */
    uint32_t queues = 0;

    // ---- Cache --------------------------------------------------------
    bool cacheEnabled = true;
};

/**
 * Decode one wire line into a Request.  Strict: every key must be
 * known for the request's kind and well-typed.  Returns false and a
 * human-readable reason on rejection.
 */
bool parseRequestLine(const std::string &line, Request *req,
                      std::string *err);

/** A response line (see serializeResponse for the wire mapping). */
struct Response
{
    /** "result", "ok", "error" or "stats". */
    std::string type = "result";
    std::string id;
    bool ok = false;
    /** Rejection reason / run skip reason (emitted when non-empty). */
    std::string error;
    /** Control ack: the command being acknowledged. */
    std::string cmd;

    // ---- result fields (type == "result") -----------------------------
    std::string bench, device, api, strategy, size;
    double kernelRegionNs = 0;
    double totalNs = 0;
    uint64_t launches = 0;
    bool validated = false;
    /** FNV-1a of the final host arrays (bit-identity handle). */
    uint64_t resultHash = 0;
    /** Wall-clock service time inside the session (ns). */
    double serviceNs = 0;
    /** Session that executed the request. */
    unsigned session = 0;

    /** Extra flat fields appended verbatim (stats lines): the value
     *  must already be valid JSON (number, true/false or a quoted
     *  string). */
    std::vector<std::pair<std::string, std::string>> extra;
};

/** Encode a response as one flat-JSON wire line (no newline). */
std::string serializeResponse(const Response &r);

} // namespace vcb::serve

#endif // VCB_SERVE_PROTOCOL_H

/**
 * @file
 * Serve-side latency and throughput accounting.
 *
 * Sessions record one wall-clock service-time sample per completed
 * request; the broker snapshots them for the stats command and
 * vcb_load derives its ablation numbers from the same recorder, so
 * tool and server always agree on what "p95" means: the q-th
 * percentile of the per-request service time (nearest-rank over all
 * samples since the last reset), not a decayed or bucketed estimate.
 * Request counts (accepted / completed / errors / rejected) are plain
 * atomics so the serve loop never takes the sample lock just to
 * count.
 */

#ifndef VCB_SERVE_METRICS_H
#define VCB_SERVE_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vcb::serve {

/** Thread-safe latency sample store with percentile snapshots. */
class LatencyRecorder
{
  public:
    void record(double ns);

    struct Snapshot
    {
        uint64_t count = 0;
        double minNs = 0;
        double maxNs = 0;
        double meanNs = 0;
        /** Nearest-rank percentiles. */
        double p50Ns = 0;
        double p95Ns = 0;
        double p99Ns = 0;
    };

    Snapshot snapshot() const;
    void reset();

  private:
    mutable std::mutex mtx;
    std::vector<double> samples;
    double sum = 0;
};

/** Broker-wide counters + latency, shared by all sessions. */
struct ServeMetrics
{
    LatencyRecorder latency;

    /** Run requests admitted to a session queue. */
    std::atomic<uint64_t> accepted{0};
    /** Completed with ok=true. */
    std::atomic<uint64_t> completed{0};
    /** Completed with ok=false (unknown bench/device, skips...). */
    std::atomic<uint64_t> errors{0};
    /** Lines rejected before reaching a session (parse errors). */
    std::atomic<uint64_t> rejected{0};

    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();

    double elapsedSeconds() const;
    /** Completed ok-requests per second of broker lifetime. */
    double throughputRps() const;
};

} // namespace vcb::serve

#endif // VCB_SERVE_METRICS_H

#include "serve/protocol.h"

#include <cctype>
#include <cstdlib>

#include "common/logging.h"
#include "common/strutil.h"

namespace vcb::serve {

namespace {

/** Cursor over one wire line. */
struct Cursor
{
    const std::string &s;
    size_t pos = 0;

    void skipWs()
    {
        while (pos < s.size() && std::isspace((unsigned char)s[pos]))
            ++pos;
    }
    bool atEnd()
    {
        skipWs();
        return pos >= s.size();
    }
    bool eat(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }
    char peek()
    {
        skipWs();
        return pos < s.size() ? s[pos] : '\0';
    }
};

bool
parseString(Cursor &c, std::string *out, std::string *err)
{
    if (!c.eat('"')) {
        *err = strprintf("expected string at offset %zu", c.pos);
        return false;
    }
    out->clear();
    while (c.pos < c.s.size()) {
        char ch = c.s[c.pos++];
        if (ch == '"')
            return true;
        if ((unsigned char)ch < 0x20) {
            *err = "unescaped control character in string";
            return false;
        }
        if (ch != '\\') {
            out->push_back(ch);
            continue;
        }
        if (c.pos >= c.s.size()) {
            *err = "truncated escape sequence";
            return false;
        }
        char esc = c.s[c.pos++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (c.pos + 4 > c.s.size()) {
                *err = "truncated \\u escape";
                return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
                char h = c.s[c.pos++];
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= (unsigned)(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= (unsigned)(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code |= (unsigned)(h - 'A' + 10);
                else {
                    *err = "invalid \\u escape digit";
                    return false;
                }
            }
            if (code > 0x7f) {
                *err = strprintf("\\u%04x: only ASCII \\u escapes are "
                                 "supported",
                                 code);
                return false;
            }
            out->push_back((char)code);
            break;
          }
          default:
            *err = strprintf("invalid escape '\\%c'", esc);
            return false;
        }
    }
    *err = "unterminated string";
    return false;
}

bool
parseValue(Cursor &c, JsonField *out, std::string *err)
{
    char ch = c.peek();
    if (ch == '"') {
        out->kind = JsonField::Kind::String;
        return parseString(c, &out->str, err);
    }
    if (ch == '{' || ch == '[') {
        *err = "nested objects/arrays are not allowed "
               "(flat protocol)";
        return false;
    }
    if (ch == 't' || ch == 'f') {
        const char *word = ch == 't' ? "true" : "false";
        size_t len = ch == 't' ? 4 : 5;
        if (c.s.compare(c.pos, len, word) != 0) {
            *err = strprintf("bad literal at offset %zu", c.pos);
            return false;
        }
        c.pos += len;
        out->kind = JsonField::Kind::Bool;
        out->b = ch == 't';
        return true;
    }
    if (ch == 'n') {
        *err = "null values are not allowed";
        return false;
    }
    if (ch == '-' || (ch >= '0' && ch <= '9')) {
        size_t start = c.pos;
        while (c.pos < c.s.size() &&
               (std::isdigit((unsigned char)c.s[c.pos]) ||
                c.s[c.pos] == '-' || c.s[c.pos] == '+' ||
                c.s[c.pos] == '.' || c.s[c.pos] == 'e' ||
                c.s[c.pos] == 'E'))
            ++c.pos;
        std::string tok = c.s.substr(start, c.pos - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0') {
            *err = strprintf("bad number '%s'", tok.c_str());
            return false;
        }
        out->kind = JsonField::Kind::Number;
        out->num = v;
        return true;
    }
    *err = strprintf("unexpected character '%c' at offset %zu", ch,
                     c.pos);
    return false;
}

/** Fetch a field by key; nullptr when absent. */
const JsonField *
find(const JsonObject &obj, const std::string &key)
{
    for (const auto &kv : obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

bool
wantString(const JsonObject &obj, const std::string &key,
           std::string *out, std::string *err)
{
    const JsonField *f = find(obj, key);
    if (!f)
        return true;
    if (f->kind != JsonField::Kind::String) {
        *err = strprintf("'%s' must be a string", key.c_str());
        return false;
    }
    *out = f->str;
    return true;
}

bool
wantIndex(const JsonObject &obj, const std::string &key, uint32_t max,
          uint32_t *out, std::string *err)
{
    const JsonField *f = find(obj, key);
    if (!f)
        return true;
    if (f->kind != JsonField::Kind::Number || f->num < 0 ||
        f->num > max || f->num != (double)(uint32_t)f->num) {
        *err = strprintf("'%s' must be an integer in [0, %u]",
                         key.c_str(), max);
        return false;
    }
    *out = (uint32_t)f->num;
    return true;
}

} // namespace

bool
parseFlatObject(const std::string &line, JsonObject *out,
                std::string *err)
{
    out->clear();
    Cursor c{line};
    if (!c.eat('{')) {
        *err = "expected '{'";
        return false;
    }
    if (c.eat('}')) {
        if (!c.atEnd()) {
            *err = "trailing characters after object";
            return false;
        }
        return true;
    }
    for (;;) {
        std::string key;
        if (!parseString(c, &key, err))
            return false;
        if (find(*out, key)) {
            *err = strprintf("duplicate key '%s'", key.c_str());
            return false;
        }
        if (!c.eat(':')) {
            *err = strprintf("expected ':' after key '%s'",
                             key.c_str());
            return false;
        }
        JsonField value;
        if (!parseValue(c, &value, err))
            return false;
        out->emplace_back(std::move(key), std::move(value));
        if (c.eat(','))
            continue;
        if (c.eat('}'))
            break;
        *err = "expected ',' or '}'";
        return false;
    }
    if (!c.atEnd()) {
        *err = "trailing characters after object";
        return false;
    }
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if ((unsigned char)ch < 0x20)
                out += strprintf("\\u%04x", (unsigned char)ch);
            else
                out.push_back(ch);
        }
    }
    return out;
}

bool
parseRequestLine(const std::string &line, Request *req,
                 std::string *err)
{
    JsonObject obj;
    if (!parseFlatObject(line, &obj, err))
        return false;

    *req = Request{};
    if (!wantString(obj, "id", &req->id, err))
        return false;

    std::string cmd;
    if (!wantString(obj, "cmd", &cmd, err))
        return false;

    if (!cmd.empty()) {
        if (cmd == "stats")
            req->kind = Request::Kind::Stats;
        else if (cmd == "drain")
            req->kind = Request::Kind::Drain;
        else if (cmd == "shutdown")
            req->kind = Request::Kind::Shutdown;
        else if (cmd == "cache")
            req->kind = Request::Kind::Cache;
        else if (cmd == "cache_clear")
            req->kind = Request::Kind::CacheClear;
        else {
            *err = strprintf("unknown command '%s'", cmd.c_str());
            return false;
        }
        for (const auto &kv : obj) {
            const std::string &k = kv.first;
            if (k == "id" || k == "cmd")
                continue;
            if (k == "enabled" && req->kind == Request::Kind::Cache) {
                if (kv.second.kind != JsonField::Kind::Bool) {
                    *err = "'enabled' must be a boolean";
                    return false;
                }
                req->cacheEnabled = kv.second.b;
                continue;
            }
            *err = strprintf("unknown key '%s' for command '%s'",
                             k.c_str(), cmd.c_str());
            return false;
        }
        return true;
    }

    req->kind = Request::Kind::Run;
    for (const auto &kv : obj) {
        const std::string &k = kv.first;
        if (k != "id" && k != "bench" && k != "device" && k != "api" &&
            k != "size" && k != "strategy" && k != "queues") {
            *err = strprintf("unknown key '%s' in run request",
                             k.c_str());
            return false;
        }
    }
    if (!wantString(obj, "bench", &req->bench, err) ||
        !wantString(obj, "device", &req->device, err) ||
        !wantString(obj, "api", &req->api, err) ||
        !wantString(obj, "strategy", &req->strategy, err))
        return false;
    if (req->bench.empty()) {
        *err = "run request is missing 'bench'";
        return false;
    }
    if (const JsonField *f = find(obj, "size")) {
        if (f->kind == JsonField::Kind::String) {
            req->sizeLabel = f->str;
        } else {
            uint32_t idx = 0;
            if (!wantIndex(obj, "size", 1024, &idx, err))
                return false;
            req->sizeIdx = (int)idx;
        }
    }
    if (!wantIndex(obj, "queues", 64, &req->queues, err))
        return false;
    return true;
}

std::string
serializeResponse(const Response &r)
{
    std::string out = strprintf("{\"type\": \"%s\"", r.type.c_str());
    if (!r.id.empty())
        out += strprintf(", \"id\": \"%s\"", jsonEscape(r.id).c_str());
    out += strprintf(", \"ok\": %s", r.ok ? "true" : "false");
    if (!r.cmd.empty())
        out += strprintf(", \"cmd\": \"%s\"", jsonEscape(r.cmd).c_str());
    if (!r.error.empty())
        out += strprintf(", \"error\": \"%s\"",
                         jsonEscape(r.error).c_str());
    if (r.type == "result" && r.ok) {
        out += strprintf(
            ", \"bench\": \"%s\", \"device\": \"%s\", \"api\": \"%s\", "
            "\"strategy\": \"%s\", \"size\": \"%s\"",
            jsonEscape(r.bench).c_str(), jsonEscape(r.device).c_str(),
            jsonEscape(r.api).c_str(), jsonEscape(r.strategy).c_str(),
            jsonEscape(r.size).c_str());
        out += strprintf(", \"kernel_region_ns\": %.1f, "
                         "\"total_ns\": %.1f, \"launches\": %llu, "
                         "\"validated\": %s",
                         r.kernelRegionNs, r.totalNs,
                         (unsigned long long)r.launches,
                         r.validated ? "true" : "false");
        out += strprintf(", \"result_hash\": \"%016llx\"",
                         (unsigned long long)r.resultHash);
    }
    if (r.type == "result")
        out += strprintf(", \"service_ns\": %.0f, \"session\": %u",
                         r.serviceNs, r.session);
    for (const auto &kv : r.extra)
        out += strprintf(", \"%s\": %s", kv.first.c_str(),
                         kv.second.c_str());
    out += "}";
    return out;
}

} // namespace vcb::serve

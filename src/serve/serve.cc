#include "serve/serve.h"

#include <chrono>
#include <cstdio>
#include <future>

#include "common/logging.h"
#include "common/strutil.h"
#include "sim/compile_cache.h"
#include "suite/benchmark.h"

namespace vcb::serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t
fnv1a(const void *data, size_t bytes, uint64_t h)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** Non-fatal suite::byName. */
const suite::Benchmark *
findBench(const std::string &name)
{
    std::string needle = toLower(name);
    for (const suite::Benchmark *b : suite::registry())
        if (b->name() == needle)
            return b;
    return nullptr;
}

/** Non-fatal sim::deviceByName (same case-insensitive substring
 *  match), against the calling thread's active registry. */
const sim::DeviceSpec *
findDevice(const std::string &name)
{
    std::string needle = toLower(name);
    for (const auto &d : sim::activeDeviceRegistry())
        if (toLower(d.name).find(needle) != std::string::npos)
            return &d;
    return nullptr;
}

bool
parseApiName(const std::string &s, sim::Api *out)
{
    std::string l = toLower(s);
    if (l == "vulkan" || l == "vk")
        *out = sim::Api::Vulkan;
    else if (l == "opencl" || l == "cl")
        *out = sim::Api::OpenCl;
    else if (l == "cuda" || l == "cu")
        *out = sim::Api::Cuda;
    else
        return false;
    return true;
}

bool
parseStrategyName(const std::string &s, suite::SubmitStrategy *out)
{
    for (int i = 0; i < suite::submitStrategyCount; ++i) {
        auto strat = (suite::SubmitStrategy)i;
        if (s == suite::strategyName(strat)) {
            *out = strat;
            return true;
        }
    }
    return false;
}

Response
reject(const Request &req, unsigned session, std::string why)
{
    Response r;
    r.type = "result";
    r.id = req.id;
    r.ok = false;
    r.error = std::move(why);
    r.session = session;
    return r;
}

} // namespace

uint64_t
hashHostArrays(const suite::HostArrays &host)
{
    uint64_t h = kFnvOffset;
    uint64_t n = host.size();
    h = fnv1a(&n, sizeof(n), h);
    for (const auto &arr : host) {
        uint64_t len = arr.size();
        h = fnv1a(&len, sizeof(len), h);
        h = fnv1a(arr.data(), arr.size() * sizeof(uint32_t), h);
    }
    return h;
}

Response
executeRequest(const Request &req, unsigned session)
{
    const suite::Benchmark *bench = findBench(req.bench);
    if (!bench)
        return reject(req, session,
                      strprintf("unknown bench '%s'",
                                req.bench.c_str()));

    const sim::DeviceSpec *dev = findDevice(req.device);
    if (!dev)
        return reject(req, session,
                      strprintf("no device matching '%s' in this "
                                "session's registry",
                                req.device.c_str()));

    sim::Api api;
    if (!parseApiName(req.api, &api))
        return reject(req, session,
                      strprintf("unknown API '%s'", req.api.c_str()));

    auto sizes = bench->sizesFor(*dev);
    if (sizes.empty())
        return reject(req, session,
                      strprintf("%s has no sizes for %s: %s",
                                bench->name().c_str(),
                                dev->name.c_str(),
                                bench->mobileSkipReason(*dev).c_str()));
    suite::SizeConfig cfg;
    if (!req.sizeLabel.empty()) {
        bool found = false;
        for (const auto &s : sizes)
            if (s.label == req.sizeLabel) {
                cfg = s;
                found = true;
                break;
            }
        if (!found)
            return reject(req, session,
                          strprintf("no size labelled '%s' for %s on "
                                    "%s",
                                    req.sizeLabel.c_str(),
                                    bench->name().c_str(),
                                    dev->name.c_str()));
    } else {
        if (req.sizeIdx < 0 || (size_t)req.sizeIdx >= sizes.size())
            return reject(req, session,
                          strprintf("size index %d out of range "
                                    "(%zu sizes)",
                                    req.sizeIdx, sizes.size()));
        cfg = sizes[req.sizeIdx];
    }

    suite::Workload w = bench->workload(cfg);

    suite::WorkloadOptions opts;
    opts.queueCount = req.queues;
    if (!req.strategy.empty() && req.strategy != "default") {
        suite::SubmitStrategy strat;
        if (!parseStrategyName(req.strategy, &strat))
            return reject(req, session,
                          strprintf("unknown strategy '%s'",
                                    req.strategy.c_str()));
        if (!suite::strategyApplicable(w, strat))
            return reject(req, session,
                          strprintf("strategy '%s' is not applicable "
                                    "to %s",
                                    req.strategy.c_str(),
                                    bench->name().c_str()));
        opts.strategy = strat;
    }

    suite::HostArrays host;
    suite::RunResult res = suite::runWorkload(w, *dev, api, opts, &host);

    Response r;
    r.type = "result";
    r.id = req.id;
    r.session = session;
    if (!res.ok) {
        r.ok = false;
        r.error = res.skipReason;
        return r;
    }
    r.ok = true;
    r.bench = bench->name();
    r.device = dev->name;
    r.api = sim::apiName(api);
    r.strategy = res.strategy;
    r.size = cfg.label;
    r.kernelRegionNs = res.kernelRegionNs;
    r.totalNs = res.totalNs;
    r.launches = res.launches;
    r.validated = res.validated;
    if (!res.validated && r.error.empty())
        r.error = res.validationError;
    r.resultHash = hashHostArrays(host);
    return r;
}

// ---------------------------------------------------------------------------
// ServeSession
// ---------------------------------------------------------------------------

ServeSession::ServeSession(unsigned id,
                           std::vector<sim::DeviceSpec> devices,
                           ServeMetrics *metrics)
    : id_(id), devices_(std::move(devices)), metrics_(metrics),
      thread([this] { threadLoop(); })
{
}

ServeSession::~ServeSession()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cv.notify_all();
    thread.join();
}

void
ServeSession::enqueue(Request req, ResponseFn done)
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        VCB_ASSERT(!stopping, "enqueue on a stopping session");
        queue.emplace_back(std::move(req), std::move(done));
    }
    cv.notify_one();
}

void
ServeSession::drain()
{
    std::unique_lock<std::mutex> lk(mtx);
    cvIdle.wait(lk, [&] { return queue.empty() && !busy; });
}

size_t
ServeSession::pending() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return queue.size() + (busy ? 1 : 0);
}

void
ServeSession::threadLoop()
{
    // The session's private registry for the lifetime of the thread.
    // Every front-end lookup below (vkm physical devices, OpenCL
    // platform list) resolves against these objects and no others.
    std::unique_ptr<sim::ScopedDeviceRegistry> reg;
    if (!devices_.empty())
        reg = std::make_unique<sim::ScopedDeviceRegistry>(devices_);

    for (;;) {
        std::pair<Request, ResponseFn> item;
        {
            std::unique_lock<std::mutex> lk(mtx);
            cv.wait(lk, [&] { return stopping || !queue.empty(); });
            if (queue.empty()) {
                // stopping && drained: the destructor waits in join,
                // so everything queued before it ran to completion.
                return;
            }
            item = std::move(queue.front());
            queue.pop_front();
            busy = true;
        }

        auto t0 = std::chrono::steady_clock::now();
        Response r = executeRequest(item.first, id_);
        r.serviceNs = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (metrics_) {
            metrics_->latency.record(r.serviceNs);
            if (r.ok)
                ++metrics_->completed;
            else
                ++metrics_->errors;
        }
        if (item.second)
            item.second(r);

        {
            std::lock_guard<std::mutex> lk(mtx);
            busy = false;
            if (queue.empty())
                cvIdle.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// ServeBroker
// ---------------------------------------------------------------------------

ServeBroker::ServeBroker(BrokerConfig cfg)
{
    unsigned n = cfg.sessions ? cfg.sessions : 1;
    sessions_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        sessions_.push_back(std::make_unique<ServeSession>(
            i, cfg.devices, &metrics_));
}

ServeBroker::~ServeBroker() = default;

void
ServeBroker::submit(Request req, ServeSession::ResponseFn done)
{
    ++metrics_.accepted;
    uint64_t slot = rr.fetch_add(1) % sessions_.size();
    sessions_[slot]->enqueue(std::move(req), std::move(done));
}

Response
ServeBroker::submitSync(const Request &req)
{
    std::promise<Response> prom;
    std::future<Response> fut = prom.get_future();
    submit(req, [&prom](const Response &r) { prom.set_value(r); });
    return fut.get();
}

void
ServeBroker::drain()
{
    for (auto &s : sessions_)
        s->drain();
}

std::string
ServeBroker::statsLine(const std::string &id) const
{
    LatencyRecorder::Snapshot lat = metrics_.latency.snapshot();
    sim::CompileCacheStats cache = sim::CompileCache::global().stats();

    Response r;
    r.type = "stats";
    r.id = id;
    r.ok = true;
    auto num = [](double v) { return strprintf("%.1f", v); };
    auto cnt = [](uint64_t v) {
        return strprintf("%llu", (unsigned long long)v);
    };
    r.extra = {
        {"sessions", cnt(sessions_.size())},
        {"accepted", cnt(metrics_.accepted.load())},
        {"completed", cnt(metrics_.completed.load())},
        {"errors", cnt(metrics_.errors.load())},
        {"rejected", cnt(metrics_.rejected.load())},
        {"latency_count", cnt(lat.count)},
        {"latency_mean_ns", num(lat.meanNs)},
        {"latency_p50_ns", num(lat.p50Ns)},
        {"latency_p95_ns", num(lat.p95Ns)},
        {"latency_p99_ns", num(lat.p99Ns)},
        {"throughput_rps", strprintf("%.3f", metrics_.throughputRps())},
        {"cache_enabled",
         sim::CompileCache::globalEnabled() ? "true" : "false"},
        {"cache_hits", cnt(cache.hits)},
        {"cache_misses", cnt(cache.misses)},
        {"cache_insertions", cnt(cache.insertions)},
        {"cache_evictions", cnt(cache.evictions)},
        {"cache_entries", cnt(cache.entries)},
        {"cache_hit_rate", strprintf("%.4f", cache.hitRate())},
        {"compile_calls", cnt(cache.compileCalls)},
        {"compile_cpu_ns", cnt(cache.compileCpuNs)},
    };
    return serializeResponse(r);
}

// ---------------------------------------------------------------------------
// Self-test
// ---------------------------------------------------------------------------

namespace {

int
checkProtocol()
{
    int failures = 0;
    auto expectOk = [&](const std::string &line) {
        Request req;
        std::string err;
        if (!parseRequestLine(line, &req, &err)) {
            std::fprintf(stderr,
                         "self-test: expected accept, got '%s': %s\n",
                         err.c_str(), line.c_str());
            ++failures;
        }
    };
    auto expectReject = [&](const std::string &line) {
        Request req;
        std::string err;
        if (parseRequestLine(line, &req, &err)) {
            std::fprintf(stderr,
                         "self-test: expected reject: %s\n",
                         line.c_str());
            ++failures;
        }
    };
    expectOk("{\"id\": \"a\", \"bench\": \"bfs\"}");
    expectOk("{\"bench\": \"nw\", \"size\": 1, \"api\": \"cl\","
             " \"strategy\": \"batched\", \"queues\": 2}");
    expectOk("{\"cmd\": \"stats\", \"id\": \"s\"}");
    expectOk("{\"cmd\": \"cache\", \"enabled\": false}");
    expectReject("not json");
    expectReject("{\"bench\": \"bfs\"} trailing");
    expectReject("{\"bench\": \"bfs\", \"bogus\": 1}");
    expectReject("{\"bench\": {\"nested\": true}}");
    expectReject("{\"bench\": \"bfs\", \"size\": [0]}");
    expectReject("{\"bench\": \"bfs\", \"bench\": \"nw\"}");
    expectReject("{\"id\": \"x\"}");
    expectReject("{\"cmd\": \"reboot\"}");
    expectReject("{\"bench\": \"bfs\", \"size\": -1}");
    expectReject("{\"bench\": null}");
    return failures;
}

} // namespace

int
runSelfTest()
{
    int failures = checkProtocol();

    // A small cross-API mix (size 0 keeps it fast), each entry twice
    // so the broker run exercises the compile cache.
    std::vector<Request> mix;
    auto add = [&](const char *bench, const char *api,
                   const char *device) {
        Request r;
        r.bench = bench;
        r.api = api;
        r.device = device;
        mix.push_back(r);
    };
    add("bfs", "vulkan", "gtx1050ti");
    add("pathfinder", "opencl", "gtx1050ti");
    add("hotspot", "cuda", "gtx1050ti");
    add("nw", "vulkan", "rx560");
    for (size_t i = 0, n = mix.size(); i < n; ++i)
        mix.push_back(mix[i]);
    for (size_t i = 0; i < mix.size(); ++i)
        mix[i].id = strprintf("st%zu", i);

    // Serial golden pass on this thread.
    std::vector<Response> serial;
    for (const Request &req : mix)
        serial.push_back(executeRequest(req));

    // Concurrent pass through a multi-session broker.
    std::vector<Response> served(mix.size());
    {
        ServeBroker broker(BrokerConfig{3, {}});
        for (size_t i = 0; i < mix.size(); ++i)
            broker.submit(mix[i], [&served, i](const Response &r) {
                served[i] = r;
            });
        broker.drain();
    }

    for (size_t i = 0; i < mix.size(); ++i) {
        const Response &a = serial[i];
        const Response &b = served[i];
        if (!a.ok || !a.validated) {
            std::fprintf(stderr,
                         "self-test: serial %s failed: %s\n",
                         mix[i].id.c_str(), a.error.c_str());
            ++failures;
            continue;
        }
        if (!b.ok || !b.validated) {
            std::fprintf(stderr,
                         "self-test: served %s failed: %s\n",
                         mix[i].id.c_str(), b.error.c_str());
            ++failures;
            continue;
        }
        if (a.resultHash != b.resultHash ||
            a.kernelRegionNs != b.kernelRegionNs ||
            a.launches != b.launches) {
            std::fprintf(stderr,
                         "self-test: %s diverged: serial "
                         "hash=%016llx ns=%.1f served hash=%016llx "
                         "ns=%.1f\n",
                         mix[i].id.c_str(),
                         (unsigned long long)a.resultHash,
                         a.kernelRegionNs,
                         (unsigned long long)b.resultHash,
                         b.kernelRegionNs);
            ++failures;
        }
    }

    if (failures == 0)
        std::fprintf(stderr,
                     "self-test: %zu served requests bit-identical to "
                     "serial golden path\n",
                     mix.size());
    return failures;
}

} // namespace vcb::serve

#include "serve/metrics.h"

#include <algorithm>

namespace vcb::serve {

void
LatencyRecorder::record(double ns)
{
    std::lock_guard<std::mutex> lk(mtx);
    samples.push_back(ns);
    sum += ns;
}

LatencyRecorder::Snapshot
LatencyRecorder::snapshot() const
{
    std::vector<double> sorted;
    double total = 0;
    {
        std::lock_guard<std::mutex> lk(mtx);
        sorted = samples;
        total = sum;
    }
    Snapshot s;
    s.count = sorted.size();
    if (sorted.empty())
        return s;
    std::sort(sorted.begin(), sorted.end());
    s.minNs = sorted.front();
    s.maxNs = sorted.back();
    s.meanNs = total / (double)sorted.size();
    auto rank = [&](double q) {
        // Nearest-rank: smallest sample with at least q of the mass
        // at or below it.
        size_t n = sorted.size();
        size_t idx = (size_t)(q * (double)n);
        if (idx >= n)
            idx = n - 1;
        return sorted[idx];
    };
    s.p50Ns = rank(0.50);
    s.p95Ns = rank(0.95);
    s.p99Ns = rank(0.99);
    return s;
}

void
LatencyRecorder::reset()
{
    std::lock_guard<std::mutex> lk(mtx);
    samples.clear();
    sum = 0;
}

double
ServeMetrics::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

double
ServeMetrics::throughputRps() const
{
    double secs = elapsedSeconds();
    return secs > 0 ? (double)completed.load() / secs : 0.0;
}

} // namespace vcb::serve

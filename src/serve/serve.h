/**
 * @file
 * The serve layer: long-lived benchmark execution sessions.
 *
 * A ServeSession is one worker thread with its own request queue and
 * its OWN active device registry — the session installs a
 * ScopedDeviceRegistry on its thread (sim/device.h), so two sessions
 * configured with different device directories can never observe each
 * other's devices, and the runtime front-ends' raw DeviceSpec
 * pointers (vkm resolves physical devices by identity) always point
 * into the session's private storage.
 *
 * A ServeBroker owns N sessions and shards incoming run requests over
 * them round-robin.  Execution itself is the ordinary golden path —
 * build the benchmark's declarative workload, hand it to the shared
 * API runners, validate against the CPU reference — so a served
 * result is bit-identical to what the same request produces serially
 * in vcb_run; executeRequest() is that path factored to be callable
 * from any thread, and hashHostArrays() turns the final host arrays
 * into the compact bit-identity handle the protocol carries.
 *
 * Repeated requests hit the content-addressed compile cache
 * (sim/compile_cache.h) under compileKernel, which is where the serve
 * layer's steady-state latency win comes from; vcb_load measures it
 * as a cache-on/off ablation.
 */

#ifndef VCB_SERVE_SERVE_H
#define VCB_SERVE_SERVE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/metrics.h"
#include "serve/protocol.h"
#include "sim/device.h"
#include "suite/workload.h"

namespace vcb::serve {

/** FNV-1a over the final host arrays (lengths + contents): the
 *  bit-identity handle of one benchmark execution. */
uint64_t hashHostArrays(const suite::HostArrays &host);

/**
 * Execute one run request synchronously against the CALLING thread's
 * active device registry and return the filled response (ok=false
 * with a reason for unknown bench/device/api/strategy/size,
 * inapplicable strategies, and runner skips).  Never fatal: a serve
 * process must outlive any malformed request.
 */
Response executeRequest(const Request &req, unsigned session = 0);

/** One session: a worker thread + queue + private device registry. */
class ServeSession
{
  public:
    using ResponseFn = std::function<void(const Response &)>;

    /**
     * @param id      session number (stamped into responses).
     * @param devices this session's device registry; empty = the
     *        compiled-in paper devices.
     * @param metrics broker-wide counters to record into; may be null.
     */
    ServeSession(unsigned id, std::vector<sim::DeviceSpec> devices,
                 ServeMetrics *metrics = nullptr);

    /** Graceful drain: blocks until every queued request has been
     *  executed and answered, then joins the worker. */
    ~ServeSession();

    ServeSession(const ServeSession &) = delete;
    ServeSession &operator=(const ServeSession &) = delete;

    /** Queue a run request; `done` fires on the session thread when
     *  it completes. */
    void enqueue(Request req, ResponseFn done);

    /** Block until the queue is empty and the worker is idle. */
    void drain();

    size_t pending() const;
    unsigned id() const { return id_; }

  private:
    void threadLoop();

    unsigned id_;
    std::vector<sim::DeviceSpec> devices_;
    ServeMetrics *metrics_;

    mutable std::mutex mtx;
    std::condition_variable cv;
    std::condition_variable cvIdle;
    std::deque<std::pair<Request, ResponseFn>> queue;
    bool stopping = false;
    bool busy = false;

    std::thread thread;
};

/** Broker construction parameters. */
struct BrokerConfig
{
    /** Engine-session pool size. */
    unsigned sessions = 4;
    /** Device registry installed in every session; empty = the
     *  compiled-in paper devices. */
    std::vector<sim::DeviceSpec> devices;
};

/** N sessions + round-robin sharding + shared metrics. */
class ServeBroker
{
  public:
    explicit ServeBroker(BrokerConfig cfg = {});
    /** Drains every session (graceful shutdown). */
    ~ServeBroker();

    ServeBroker(const ServeBroker &) = delete;
    ServeBroker &operator=(const ServeBroker &) = delete;

    /** Shard a run request to the next session; `done` fires on that
     *  session's thread. */
    void submit(Request req, ServeSession::ResponseFn done);

    /** Convenience for synchronous clients (vcb_load closed loop,
     *  tests): submit and block for the response. */
    Response submitSync(const Request &req);

    /** Block until every session is idle. */
    void drain();

    /** One flat-JSON stats line (the "stats" command's answer):
     *  counters, latency percentiles, throughput, compile-cache
     *  counters. */
    std::string statsLine(const std::string &id) const;

    ServeMetrics &metrics() { return metrics_; }
    unsigned sessionCount() const { return (unsigned)sessions_.size(); }

  private:
    std::vector<std::unique_ptr<ServeSession>> sessions_;
    std::atomic<uint64_t> rr{0};
    ServeMetrics metrics_;
};

/**
 * Built-in end-to-end check (`vcb_serve --self-test`): protocol
 * accept/reject cases, then a small request mix executed serially and
 * through a multi-session broker, demanding bit-identical result
 * hashes and simulated times.  Returns the number of failures
 * (0 = pass); failures are described on stderr.
 */
int runSelfTest();

} // namespace vcb::serve

#endif // VCB_SERVE_SERVE_H

/**
 * @file
 * The VComputeBench suite: benchmark interface and registry.
 *
 * Each benchmark (a Table-I row of the paper, or one of the suite
 * expansion families) knows its Rodinia metadata (dwarf, domain), its
 * desktop and mobile size configurations (paper axis labels plus the
 * simulator parameters they map to — each bench_*.cc documents its
 * own scaling rationale next to its SizeConfig lists), and how to
 * build its declarative workload program (suite/workload.h) for a
 * given size.
 *
 * run() generates the workload deterministically (same bits for every
 * API) and hands it to the shared runners, which execute it, measure
 * the paper's metric (the kernel-only region on the simulated host
 * clock), download results and validate them against the benchmark's
 * from-scratch CPU reference.
 */

#ifndef VCB_SUITE_BENCHMARK_H
#define VCB_SUITE_BENCHMARK_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device.h"
#include "suite/workload.h"

namespace vcb::suite {

/** One input-size configuration of a benchmark. */
struct SizeConfig
{
    /** Paper axis label, e.g. "64K" or "512-08". */
    std::string label;
    /** Simulator parameters (benchmark-specific meaning). */
    std::vector<uint64_t> params;
};

/** Abstract benchmark (one Table-I row). */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    virtual std::string name() const = 0;     ///< "bfs"
    virtual std::string fullName() const = 0; ///< "Breadth-First Search"
    virtual std::string dwarf() const = 0;    ///< "Graph Traversal"
    virtual std::string domain() const = 0;   ///< "Graph Theory"

    /** Sizes of the desktop evaluation (Fig. 2). */
    virtual std::vector<SizeConfig> desktopSizes() const = 0;
    /** Sizes of the mobile evaluation (Fig. 4); empty when the
     *  benchmark cannot run on mobile at all. */
    virtual std::vector<SizeConfig> mobileSizes() const = 0;
    /** Non-empty when mobile runs are skipped wholesale on `dev`
     *  (cfd: the working set exceeds a hard-cap mobile heap; UVM
     *  parts page instead and run). */
    virtual std::string
    mobileSkipReason(const sim::DeviceSpec &dev) const
    {
        (void)dev;
        return "";
    }

    /** The size list this benchmark actually runs on `dev`: desktop
     *  sizes on desktop parts, mobile sizes on mobile parts, empty
     *  when mobileSkipReason(dev) applies — the one skip test every
     *  caller (figures, report book, serve, CLI) goes through. */
    std::vector<SizeConfig> sizesFor(const sim::DeviceSpec &dev) const
    {
        if (!dev.mobile)
            return desktopSizes();
        return mobileSkipReason(dev).empty() ? mobileSizes()
                                             : std::vector<SizeConfig>{};
    }

    /** Build the declarative host program for one size configuration:
     *  deterministically generated inputs, buffers, step list, loop
     *  structure, preferred Vulkan submission strategy and the CPU
     *  reference validation. */
    virtual Workload workload(const SizeConfig &cfg) const = 0;

    /** Execute on a device under an API at a size configuration
     *  through the shared workload runners.  `opts` selects the Vulkan
     *  submission strategy (default: the workload's preferred). */
    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg,
                  const WorkloadOptions &opts = {}) const;
};

/** All benchmarks: the paper's Table-I rows in order, then the suite
 *  expansion families (srad, kmeans, streamcluster). */
const std::vector<const Benchmark *> &registry();

/** Look up by short name; fatal when unknown. */
const Benchmark &byName(const std::string &name);

/** Deterministic workload seed for a benchmark + size (all APIs see
 *  identical inputs). */
uint64_t workloadSeed(const std::string &bench_name,
                      const SizeConfig &cfg);

} // namespace vcb::suite

#endif // VCB_SUITE_BENCHMARK_H

/**
 * @file
 * The VComputeBench suite: benchmark interface and registry.
 *
 * Each benchmark (a Table-I row of the paper, or one of the suite
 * expansion families) knows its Rodinia metadata (dwarf, domain), its
 * desktop and mobile size configurations (paper axis labels plus the
 * simulator parameters they map to — each bench_*.cc documents its
 * own scaling rationale next to its SizeConfig lists), and how to run
 * itself on a given simulated device under each of the three
 * programming models.
 *
 * run() generates the workload deterministically (same bits for every
 * API), executes the benchmark, measures the paper's metric (the
 * kernel-only region on the simulated host clock), downloads results
 * and validates them against a from-scratch CPU reference.
 */

#ifndef VCB_SUITE_BENCHMARK_H
#define VCB_SUITE_BENCHMARK_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device.h"

namespace vcb::suite {

/** One input-size configuration of a benchmark. */
struct SizeConfig
{
    /** Paper axis label, e.g. "64K" or "512-08". */
    std::string label;
    /** Simulator parameters (benchmark-specific meaning). */
    std::vector<uint64_t> params;
};

/** Outcome of one benchmark execution. */
struct RunResult
{
    /** False when the configuration cannot run (missing API support,
     *  driver failure, out of memory) — skipReason says why. */
    bool ok = false;
    std::string skipReason;

    /** The paper's metric: kernel-only region on the host clock (ns),
     *  i.e. launches + kernels + synchronisation, excluding context
     *  setup, JIT, transfers and host pre/post-processing. */
    double kernelRegionNs = 0;
    /** End-to-end time including transfers (ns). */
    double totalNs = 0;
    /** Kernel launches (CL/CUDA) or recorded dispatches (Vulkan). */
    uint64_t launches = 0;

    /** Output matched the CPU reference. */
    bool validated = false;
    std::string validationError;
};

/** Abstract benchmark (one Table-I row). */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    virtual std::string name() const = 0;     ///< "bfs"
    virtual std::string fullName() const = 0; ///< "Breadth-First Search"
    virtual std::string dwarf() const = 0;    ///< "Graph Traversal"
    virtual std::string domain() const = 0;   ///< "Graph Theory"

    /** Sizes of the desktop evaluation (Fig. 2). */
    virtual std::vector<SizeConfig> desktopSizes() const = 0;
    /** Sizes of the mobile evaluation (Fig. 4); empty when the
     *  benchmark cannot run on mobile at all. */
    virtual std::vector<SizeConfig> mobileSizes() const = 0;
    /** Non-empty when mobile runs are skipped wholesale (cfd: the
     *  paper-size datasets exceed the mobile device heaps). */
    virtual std::string mobileSkipReason() const { return ""; }

    /** Execute on a device under an API at a size configuration. */
    virtual RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                          const SizeConfig &cfg) const = 0;
};

/** All benchmarks: the paper's Table-I rows in order, then the suite
 *  expansion families (srad, kmeans, streamcluster). */
const std::vector<const Benchmark *> &registry();

/** Look up by short name; fatal when unknown. */
const Benchmark &byName(const std::string &name);

/** Deterministic workload seed for a benchmark + size (all APIs see
 *  identical inputs). */
uint64_t workloadSeed(const std::string &bench_name,
                      const SizeConfig &cfg);

} // namespace vcb::suite

#endif // VCB_SUITE_BENCHMARK_H

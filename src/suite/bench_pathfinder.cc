/**
 * @file
 * pathfinder — dynamic programming on a 2-D grid (Grid Traversal).
 *
 * Rows depend on each other, so the OpenCL/CUDA runner uses the
 * multi-kernel method: one launch per row with a host sync (Sync step
 * per iteration).  The preferred Vulkan strategy is batched: every row
 * in a single command buffer with a pipeline barrier between rows,
 * ping-ponging the two row buffers by alternating binding lists — the
 * paper's flagship Vulkan-specific optimisation (Sec. IV-C).
 * Re-record-per-iteration is the sweepable naive baseline.
 */

#include "suite/benchmark.h"

#include <algorithm>
#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

struct GridData
{
    uint32_t rows = 0, cols = 0;
    std::vector<int32_t> data;
};

GridData
generateGrid(uint32_t rows, uint32_t cols, uint64_t seed)
{
    Rng rng(seed);
    GridData g;
    g.rows = rows;
    g.cols = cols;
    g.data.resize(uint64_t(rows) * cols);
    for (auto &v : g.data)
        v = static_cast<int32_t>(rng.nextBelow(10));
    return g;
}

std::vector<int32_t>
referencePathfinder(const GridData &g)
{
    std::vector<int32_t> src(g.data.begin(), g.data.begin() + g.cols);
    std::vector<int32_t> dst(g.cols);
    for (uint32_t r = 1; r < g.rows; ++r) {
        for (uint32_t j = 0; j < g.cols; ++j) {
            int32_t best = src[j];
            if (j > 0)
                best = std::min(best, src[j - 1]);
            if (j + 1 < g.cols)
                best = std::min(best, src[j + 1]);
            dst[j] = g.data[uint64_t(r) * g.cols + j] + best;
        }
        std::swap(src, dst);
    }
    return src;
}

enum BufferIx : size_t { B_DATA, B_RA, B_RB };
enum HostIx : size_t { H_OUT };

Workload
makeWorkload(GridData grid)
{
    auto in = std::make_shared<const GridData>(std::move(grid));
    const GridData &g = *in;

    Workload w;
    w.name = "pathfinder";
    w.kernels = {kernels::buildPathfinderRow()};
    // Row 0 of the data seeds the DP in buffer A.
    std::vector<uint32_t> data_words = wordsOf(g.data);
    std::vector<uint32_t> row0(data_words.begin(),
                               data_words.begin() + g.cols);
    w.buffers = {{g.data.size() * 4, std::move(data_words)},
                 {uint64_t(g.cols) * 4, std::move(row0)},
                 {uint64_t(g.cols) * 4, {}}};
    w.host = {std::vector<uint32_t>(g.cols)};

    uint32_t groups = static_cast<uint32_t>(ceilDiv(g.cols, 256));
    uint32_t cols = g.cols;
    w.bodyFor = [groups, cols](uint32_t it) {
        uint32_t r = it + 1;
        bool ping = r % 2 == 1; // odd rows read A, write B
        return std::vector<WorkloadStep>{
            dispatchStep(0, groups, 1, 1, {pw(cols), pw(r)},
                         {{0, B_DATA},
                          {1, ping ? B_RA : B_RB},
                          {2, ping ? B_RB : B_RA}}),
            barrierStep(), syncStep()};
    };
    w.iterations = g.rows - 1;
    w.epilogue = {
        readbackStep((g.rows % 2 == 1) ? B_RA : B_RB, H_OUT)};
    w.preferred = SubmitStrategy::Batched;
    w.validate = [in](const HostArrays &h) {
        return compareInts(intsOf(h[H_OUT]), referencePathfinder(*in));
    };
    return w;
}

class PathfinderBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "pathfinder"; }
    std::string fullName() const override { return "Path Finder"; }
    std::string dwarf() const override { return "Dynamic Programming"; }
    std::string domain() const override { return "Grid Traversal"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 10K / 50K / 100K columns, 100 rows.
        return {{"10K", {64, 16384}},
                {"50K", {64, 32768}},
                {"100K", {64, 65536}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"512", {32, 512}}, {"1024", {32, 1024}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateGrid(static_cast<uint32_t>(cfg.params[0]),
                         static_cast<uint32_t>(cfg.params[1]),
                         workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makePathfinder()
{
    static PathfinderBenchmark b;
    return &b;
}

} // namespace vcb::suite

/**
 * @file
 * pathfinder — dynamic programming on a 2-D grid (Grid Traversal).
 *
 * Rows depend on each other, so CUDA/OpenCL use the multi-kernel
 * method: one launch per row with a host sync (blocking iteration).
 * Vulkan records every row into a single command buffer with a
 * pipeline barrier between rows and ping-pongs the two row buffers by
 * alternating pre-built descriptor sets — the paper's flagship
 * Vulkan-specific optimisation (Sec. IV-C).
 */

#include "suite/benchmark.h"

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

struct GridData
{
    uint32_t rows = 0, cols = 0;
    std::vector<int32_t> data;
};

GridData
generateGrid(uint32_t rows, uint32_t cols, uint64_t seed)
{
    Rng rng(seed);
    GridData g;
    g.rows = rows;
    g.cols = cols;
    g.data.resize(uint64_t(rows) * cols);
    for (auto &v : g.data)
        v = static_cast<int32_t>(rng.nextBelow(10));
    return g;
}

std::vector<int32_t>
referencePathfinder(const GridData &g)
{
    std::vector<int32_t> src(g.data.begin(), g.data.begin() + g.cols);
    std::vector<int32_t> dst(g.cols);
    for (uint32_t r = 1; r < g.rows; ++r) {
        for (uint32_t j = 0; j < g.cols; ++j) {
            int32_t best = src[j];
            if (j > 0)
                best = std::min(best, src[j - 1]);
            if (j + 1 < g.cols)
                best = std::min(best, src[j + 1]);
            dst[j] = g.data[uint64_t(r) * g.cols + j] + best;
        }
        std::swap(src, dst);
    }
    return src;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const GridData &g)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err =
        createVkKernel(ctx, kernels::buildPathfinderRow(), &k);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint64_t row_bytes = uint64_t(g.cols) * 4;
    auto b_data = ctx.createDeviceBuffer(g.data.size() * 4);
    auto b_a = ctx.createDeviceBuffer(row_bytes);
    auto b_b = ctx.createDeviceBuffer(row_bytes);
    ctx.upload(b_data, g.data.data(), g.data.size() * 4);
    ctx.upload(b_a, g.data.data(), row_bytes); // row 0 seeds the DP

    // Ping-pong via two pre-built descriptor sets.
    auto s_ab = makeDescriptorSet(ctx, k,
                                  {{0, b_data}, {1, b_a}, {2, b_b}});
    auto s_ba = makeDescriptorSet(ctx, k,
                                  {{0, b_data}, {1, b_b}, {2, b_a}});

    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    uint32_t groups = static_cast<uint32_t>(ceilDiv(g.cols, 256));
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    for (uint32_t r = 1; r < g.rows; ++r) {
        vkm::cmdBindDescriptorSet(cb, k.layout, 0,
                                  (r % 2 == 1) ? s_ab : s_ba);
        uint32_t push[2] = {g.cols, r};
        vkm::cmdPushConstants(cb, k.layout, 0, 8, push);
        vkm::cmdDispatch(cb, groups, 1, 1);
        vkm::cmdPipelineBarrier(cb);
        res.launches += 1;
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    double t0 = ctx.now();
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    res.kernelRegionNs = ctx.now() - t0;

    vkm::Buffer final_buf = (g.rows % 2 == 1) ? b_a : b_b;
    std::vector<int32_t> out(g.cols);
    ctx.download(final_buf, out.data(), row_bytes);
    res.totalNs = ctx.now() - t_total0;

    res.validationError = compareInts(out, referencePathfinder(g));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const GridData &g)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto prog = ocl::createProgramWithSource(
        ctx, kernels::buildPathfinderRow());
    std::string err;
    if (!ocl::buildProgram(prog, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k = ocl::createKernel(prog, "pathfinder_row", &err);
    VCB_ASSERT(k.valid(), "kernel creation failed: %s", err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint64_t row_bytes = uint64_t(g.cols) * 4;
    auto b_data = ocl::createBuffer(ctx, ocl::MemReadOnly,
                                    g.data.size() * 4);
    auto b_a = ocl::createBuffer(ctx, ocl::MemReadWrite, row_bytes);
    auto b_b = ocl::createBuffer(ctx, ocl::MemReadWrite, row_bytes);
    ocl::enqueueWriteBuffer(ctx, b_data, true, 0, g.data.size() * 4,
                            g.data.data());
    ocl::enqueueWriteBuffer(ctx, b_a, true, 0, row_bytes, g.data.data());

    uint32_t global = static_cast<uint32_t>(ceilDiv(g.cols, 256)) * 256;

    double t0 = ctx.hostNowNs();
    for (uint32_t r = 1; r < g.rows; ++r) {
        // Multi-kernel method: re-bind args, launch, host sync.
        ocl::setKernelArgBuffer(k, 0, b_data);
        ocl::setKernelArgBuffer(k, 1, (r % 2 == 1) ? b_a : b_b);
        ocl::setKernelArgBuffer(k, 2, (r % 2 == 1) ? b_b : b_a);
        ocl::setKernelArgScalar(k, 0, g.cols);
        ocl::setKernelArgScalar(k, 1, r);
        ocl::enqueueNDRangeKernel(ctx, k, global);
        res.launches += 1;
        ctx.finish();
    }
    res.kernelRegionNs = ctx.hostNowNs() - t0;

    auto final_buf = (g.rows % 2 == 1) ? b_a : b_b;
    std::vector<int32_t> out(g.cols);
    ocl::enqueueReadBuffer(ctx, final_buf, true, 0, row_bytes,
                           out.data());
    res.totalNs = ctx.hostNowNs() - t_total0;

    res.validationError = compareInts(out, referencePathfinder(g));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runCuda(const sim::DeviceSpec &dev, const GridData &g)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f = rt.loadFunction(kernels::buildPathfinderRow());

    double t_total0 = rt.hostNowNs();
    uint64_t row_bytes = uint64_t(g.cols) * 4;
    auto d_data = rt.malloc(g.data.size() * 4);
    auto d_a = rt.malloc(row_bytes);
    auto d_b = rt.malloc(row_bytes);
    rt.memcpyHtoD(d_data, g.data.data(), g.data.size() * 4);
    rt.memcpyHtoD(d_a, g.data.data(), row_bytes);

    uint32_t groups = static_cast<uint32_t>(ceilDiv(g.cols, 256));

    double t0 = rt.hostNowNs();
    for (uint32_t r = 1; r < g.rows; ++r) {
        auto &src = (r % 2 == 1) ? d_a : d_b;
        auto &dst = (r % 2 == 1) ? d_b : d_a;
        rt.launchKernel(f, groups, 1, 1, {d_data, src, dst},
                        {g.cols, r});
        res.launches += 1;
        rt.deviceSynchronize();
    }
    res.kernelRegionNs = rt.hostNowNs() - t0;

    auto &final_buf = (g.rows % 2 == 1) ? d_a : d_b;
    std::vector<int32_t> out(g.cols);
    rt.memcpyDtoH(out.data(), final_buf, row_bytes);
    res.totalNs = rt.hostNowNs() - t_total0;

    res.validationError = compareInts(out, referencePathfinder(g));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

class PathfinderBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "pathfinder"; }
    std::string fullName() const override { return "Path Finder"; }
    std::string dwarf() const override { return "Dynamic Programming"; }
    std::string domain() const override { return "Grid Traversal"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 10K / 50K / 100K columns, 100 rows.
        return {{"10K", {64, 16384}},
                {"50K", {64, 32768}},
                {"100K", {64, 65536}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"512", {32, 512}}, {"1024", {32, 1024}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        GridData g = generateGrid(static_cast<uint32_t>(cfg.params[0]),
                                  static_cast<uint32_t>(cfg.params[1]),
                                  workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, g);
          case sim::Api::OpenCl:
            return runOpenCl(dev, g);
          case sim::Api::Cuda:
            return runCuda(dev, g);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makePathfinder()
{
    static PathfinderBenchmark b;
    return &b;
}

} // namespace vcb::suite

/**
 * @file
 * Workload-building blocks shared between the bench drivers
 * (src/suite/bench_*.cc) and the golden-reference scenarios
 * (src/suite/validate.cc), so the two cannot drift apart:
 *
 *  - word <-> float/int conversion helpers (buffers and host arrays
 *    are 32-bit word vectors everywhere);
 *  - input generators and CPU references that both harnesses consume
 *    (the bfs CSR graph is the canonical case: the bench driver and
 *    the golden scenario build the same graph shape from the same RNG
 *    call sequence and validate against the same frontier BFS).
 */

#ifndef VCB_SUITE_WORKLOADS_H
#define VCB_SUITE_WORKLOADS_H

#include <cstdint>
#include <vector>

namespace vcb::suite {

// ---------------------------------------------------------------------------
// Word conversions
// ---------------------------------------------------------------------------

/** Reinterpret floats as their 32-bit word patterns. */
std::vector<uint32_t> wordsOf(const std::vector<float> &v);
/** Reinterpret int32s as 32-bit words. */
std::vector<uint32_t> wordsOf(const std::vector<int32_t> &v);
/** Inverse of wordsOf(float). */
std::vector<float> floatsOf(const std::vector<uint32_t> &w);
/** Inverse of wordsOf(int32). */
std::vector<int32_t> intsOf(const std::vector<uint32_t> &w);

// ---------------------------------------------------------------------------
// bfs: CSR graph, deterministic generator, CPU reference
// ---------------------------------------------------------------------------

/** A CSR graph for the bfs family. */
struct Graph
{
    uint32_t n = 0;
    int32_t source = 0;
    std::vector<int32_t> start;
    std::vector<int32_t> degree;
    std::vector<int32_t> edges;
};

/**
 * Deterministic random CSR graph: node i gets
 * `min_degree + Rng::nextBelow(degree_spread)` out-edges to uniformly
 * random targets.  The bench driver uses (2, 9); the golden scenario
 * a smaller (1, 4) at its fixed seed — both through this one builder.
 */
Graph generateBfsGraph(uint32_t n, uint64_t seed, uint32_t min_degree,
                       uint32_t degree_spread);

/** Frontier BFS from g.source: per-node cost, -1 when unreachable. */
std::vector<int32_t> referenceBfs(const Graph &g);

/** The level-synchronous kernels' host-side working state (masks and
 *  costs as uploaded before the first level). */
struct BfsHostState
{
    std::vector<int32_t> mask, umask, visited, cost;

    explicit BfsHostState(const Graph &g);
};

} // namespace vcb::suite

#endif // VCB_SUITE_WORKLOADS_H

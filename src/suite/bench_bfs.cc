/**
 * @file
 * bfs — Breadth-First Search (Graph Traversal / Graph Theory).
 *
 * Host structure (all APIs): level-synchronous frontier expansion; the
 * host must read the continue flag back every level, so every API pays
 * a host round trip per level (the paper's bfs result is therefore
 * decided by kernel quality, not launch overhead — Sec. V-A2).
 *
 * Vulkan: the per-level command buffer (kernel1, barrier, kernel2) is
 * recorded once and resubmitted each level; the stop flag lives in a
 * mapped host-visible buffer.
 */

#include "suite/benchmark.h"

#include <deque>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

struct Graph
{
    uint32_t n = 0;
    int32_t source = 0;
    std::vector<int32_t> start;
    std::vector<int32_t> degree;
    std::vector<int32_t> edges;
};

Graph
generateGraph(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Graph g;
    g.n = n;
    g.start.resize(n);
    g.degree.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        g.start[i] = static_cast<int32_t>(g.edges.size());
        uint32_t deg = 2 + static_cast<uint32_t>(rng.nextBelow(9));
        g.degree[i] = static_cast<int32_t>(deg);
        for (uint32_t e = 0; e < deg; ++e)
            g.edges.push_back(static_cast<int32_t>(rng.nextBelow(n)));
    }
    return g;
}

std::vector<int32_t>
referenceBfs(const Graph &g)
{
    std::vector<int32_t> cost(g.n, -1);
    std::deque<int32_t> frontier;
    cost[g.source] = 0;
    frontier.push_back(g.source);
    while (!frontier.empty()) {
        int32_t u = frontier.front();
        frontier.pop_front();
        for (int32_t e = g.start[u]; e < g.start[u] + g.degree[u]; ++e) {
            int32_t v = g.edges[e];
            if (cost[v] < 0) {
                cost[v] = cost[u] + 1;
                frontier.push_back(v);
            }
        }
    }
    return cost;
}

struct HostState
{
    std::vector<int32_t> mask, umask, visited, cost;

    explicit HostState(const Graph &g)
        : mask(g.n, 0), umask(g.n, 0), visited(g.n, 0), cost(g.n, -1)
    {
        mask[g.source] = 1;
        visited[g.source] = 1;
        cost[g.source] = 0;
    }
};

RunResult
runVulkan(const sim::DeviceSpec &dev, const Graph &g)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k1, k2;
    std::string err = createVkKernel(ctx, kernels::buildBfsKernel1(), &k1);
    if (err.empty())
        err = createVkKernel(ctx, kernels::buildBfsKernel2(), &k2);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint64_t node_bytes = uint64_t(g.n) * 4;
    auto b_start = ctx.createDeviceBuffer(node_bytes);
    auto b_deg = ctx.createDeviceBuffer(node_bytes);
    auto b_edges = ctx.createDeviceBuffer(g.edges.size() * 4);
    auto b_mask = ctx.createDeviceBuffer(node_bytes);
    auto b_umask = ctx.createDeviceBuffer(node_bytes);
    auto b_visited = ctx.createDeviceBuffer(node_bytes);
    auto b_cost = ctx.createDeviceBuffer(node_bytes);
    auto b_stop = ctx.createHostBuffer(4);

    HostState st(g);
    ctx.upload(b_start, g.start.data(), node_bytes);
    ctx.upload(b_deg, g.degree.data(), node_bytes);
    ctx.upload(b_edges, g.edges.data(), g.edges.size() * 4);
    ctx.upload(b_mask, st.mask.data(), node_bytes);
    ctx.upload(b_umask, st.umask.data(), node_bytes);
    ctx.upload(b_visited, st.visited.data(), node_bytes);
    ctx.upload(b_cost, st.cost.data(), node_bytes);

    auto s1 = makeDescriptorSet(ctx, k1,
                                {{0, b_start},
                                 {1, b_deg},
                                 {2, b_edges},
                                 {3, b_mask},
                                 {4, b_umask},
                                 {5, b_visited},
                                 {6, b_cost}});
    auto s2 = makeDescriptorSet(
        ctx, k2,
        {{0, b_mask}, {1, b_umask}, {2, b_visited}, {3, b_stop}});

    // Record the per-level command buffer once; resubmit every level.
    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    uint32_t groups = static_cast<uint32_t>(ceilDiv(g.n, 256));
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k1.pipeline);
    vkm::cmdBindDescriptorSet(cb, k1.layout, 0, s1);
    vkm::cmdPushConstants(cb, k1.layout, 0, 4, &g.n);
    vkm::cmdDispatch(cb, groups, 1, 1);
    vkm::cmdPipelineBarrier(cb);
    vkm::cmdBindPipeline(cb, k2.pipeline);
    vkm::cmdBindDescriptorSet(cb, k2.layout, 0, s2);
    vkm::cmdPushConstants(cb, k2.layout, 0, 4, &g.n);
    vkm::cmdDispatch(cb, groups, 1, 1);
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
    uint32_t *stop = ctx.map(b_stop);

    double t0 = ctx.now();
    for (;;) {
        *stop = 0;
        vkm::SubmitInfo si;
        si.commandBuffers.push_back(cb);
        vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(ctx.device, {fence}),
                   "waitForFences");
        vkm::check(vkm::resetFences(ctx.device, {fence}), "resetFences");
        res.launches += 2;
        if (*stop == 0)
            break;
    }
    res.kernelRegionNs = ctx.now() - t0;

    std::vector<int32_t> cost(g.n);
    ctx.download(b_cost, cost.data(), node_bytes);
    res.totalNs = ctx.now() - t_total0;

    res.validationError = compareInts(cost, referenceBfs(g));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const Graph &g)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto p1 = ocl::createProgramWithSource(ctx, kernels::buildBfsKernel1());
    auto p2 = ocl::createProgramWithSource(ctx, kernels::buildBfsKernel2());
    std::string err;
    if (!ocl::buildProgram(p1, &err) || !ocl::buildProgram(p2, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k1 = ocl::createKernel(p1, "bfs_kernel1", &err);
    auto k2 = ocl::createKernel(p2, "bfs_kernel2", &err);
    VCB_ASSERT(k1.valid() && k2.valid(), "kernel creation failed: %s",
               err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint64_t node_bytes = uint64_t(g.n) * 4;
    auto b_start = ocl::createBuffer(ctx, ocl::MemReadOnly, node_bytes);
    auto b_deg = ocl::createBuffer(ctx, ocl::MemReadOnly, node_bytes);
    auto b_edges = ocl::createBuffer(ctx, ocl::MemReadOnly,
                                     g.edges.size() * 4);
    auto b_mask = ocl::createBuffer(ctx, ocl::MemReadWrite, node_bytes);
    auto b_umask = ocl::createBuffer(ctx, ocl::MemReadWrite, node_bytes);
    auto b_visited = ocl::createBuffer(ctx, ocl::MemReadWrite, node_bytes);
    auto b_cost = ocl::createBuffer(ctx, ocl::MemReadWrite, node_bytes);
    auto b_stop = ocl::createBuffer(ctx, ocl::MemReadWrite, 4);

    HostState st(g);
    ocl::enqueueWriteBuffer(ctx, b_start, true, 0, node_bytes,
                            g.start.data());
    ocl::enqueueWriteBuffer(ctx, b_deg, true, 0, node_bytes,
                            g.degree.data());
    ocl::enqueueWriteBuffer(ctx, b_edges, true, 0, g.edges.size() * 4,
                            g.edges.data());
    ocl::enqueueWriteBuffer(ctx, b_mask, true, 0, node_bytes,
                            st.mask.data());
    ocl::enqueueWriteBuffer(ctx, b_umask, true, 0, node_bytes,
                            st.umask.data());
    ocl::enqueueWriteBuffer(ctx, b_visited, true, 0, node_bytes,
                            st.visited.data());
    ocl::enqueueWriteBuffer(ctx, b_cost, true, 0, node_bytes,
                            st.cost.data());

    ocl::setKernelArgBuffer(k1, 0, b_start);
    ocl::setKernelArgBuffer(k1, 1, b_deg);
    ocl::setKernelArgBuffer(k1, 2, b_edges);
    ocl::setKernelArgBuffer(k1, 3, b_mask);
    ocl::setKernelArgBuffer(k1, 4, b_umask);
    ocl::setKernelArgBuffer(k1, 5, b_visited);
    ocl::setKernelArgBuffer(k1, 6, b_cost);
    ocl::setKernelArgScalar(k1, 0, g.n);
    ocl::setKernelArgBuffer(k2, 0, b_mask);
    ocl::setKernelArgBuffer(k2, 1, b_umask);
    ocl::setKernelArgBuffer(k2, 2, b_visited);
    ocl::setKernelArgBuffer(k2, 3, b_stop);
    ocl::setKernelArgScalar(k2, 0, g.n);

    uint32_t global = static_cast<uint32_t>(ceilDiv(g.n, 256)) * 256;
    int32_t stop = 0;

    double t0 = ctx.hostNowNs();
    for (;;) {
        stop = 0;
        ocl::enqueueWriteBuffer(ctx, b_stop, false, 0, 4, &stop);
        ocl::enqueueNDRangeKernel(ctx, k1, global);
        ocl::enqueueNDRangeKernel(ctx, k2, global);
        res.launches += 2;
        ocl::enqueueReadBuffer(ctx, b_stop, true, 0, 4, &stop);
        if (stop == 0)
            break;
    }
    res.kernelRegionNs = ctx.hostNowNs() - t0;

    std::vector<int32_t> cost(g.n);
    ocl::enqueueReadBuffer(ctx, b_cost, true, 0, node_bytes, cost.data());
    res.totalNs = ctx.hostNowNs() - t_total0;

    res.validationError = compareInts(cost, referenceBfs(g));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runCuda(const sim::DeviceSpec &dev, const Graph &g)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f1 = rt.loadFunction(kernels::buildBfsKernel1());
    auto f2 = rt.loadFunction(kernels::buildBfsKernel2());

    double t_total0 = rt.hostNowNs();
    uint64_t node_bytes = uint64_t(g.n) * 4;
    auto d_start = rt.malloc(node_bytes);
    auto d_deg = rt.malloc(node_bytes);
    auto d_edges = rt.malloc(g.edges.size() * 4);
    auto d_mask = rt.malloc(node_bytes);
    auto d_umask = rt.malloc(node_bytes);
    auto d_visited = rt.malloc(node_bytes);
    auto d_cost = rt.malloc(node_bytes);
    auto d_stop = rt.malloc(4);

    HostState st(g);
    rt.memcpyHtoD(d_start, g.start.data(), node_bytes);
    rt.memcpyHtoD(d_deg, g.degree.data(), node_bytes);
    rt.memcpyHtoD(d_edges, g.edges.data(), g.edges.size() * 4);
    rt.memcpyHtoD(d_mask, st.mask.data(), node_bytes);
    rt.memcpyHtoD(d_umask, st.umask.data(), node_bytes);
    rt.memcpyHtoD(d_visited, st.visited.data(), node_bytes);
    rt.memcpyHtoD(d_cost, st.cost.data(), node_bytes);

    uint32_t groups = static_cast<uint32_t>(ceilDiv(g.n, 256));
    int32_t stop = 0;

    double t0 = rt.hostNowNs();
    for (;;) {
        stop = 0;
        rt.memcpyHtoD(d_stop, &stop, 4);
        rt.launchKernel(f1, groups, 1, 1,
                        {d_start, d_deg, d_edges, d_mask, d_umask,
                         d_visited, d_cost},
                        {g.n});
        rt.launchKernel(f2, groups, 1, 1,
                        {d_mask, d_umask, d_visited, d_stop}, {g.n});
        res.launches += 2;
        rt.memcpyDtoH(&stop, d_stop, 4);
        if (stop == 0)
            break;
    }
    res.kernelRegionNs = rt.hostNowNs() - t0;

    std::vector<int32_t> cost(g.n);
    rt.memcpyDtoH(cost.data(), d_cost, node_bytes);
    res.totalNs = rt.hostNowNs() - t_total0;

    res.validationError = compareInts(cost, referenceBfs(g));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

class BfsBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "bfs"; }
    std::string fullName() const override
    {
        return "Breadth-First Search";
    }
    std::string dwarf() const override { return "Graph Traversal"; }
    std::string domain() const override { return "Graph Theory"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 4K / 64K / 1M nodes.  Simulated graphs are sized so
        // all three points sit in the kernel-dominated regime the
        // paper's 1M-node result demonstrates.
        return {{"4K", {49152}}, {"64K", {98304}}, {"1M", {196608}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"4k", {2048}}, {"16k", {8192}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        Graph g = generateGraph(static_cast<uint32_t>(cfg.params[0]),
                                workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, g);
          case sim::Api::OpenCl:
            return runOpenCl(dev, g);
          case sim::Api::Cuda:
            return runCuda(dev, g);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeBfs()
{
    static BfsBenchmark b;
    return &b;
}

} // namespace vcb::suite

/**
 * @file
 * bfs — Breadth-First Search (Graph Traversal / Graph Theory).
 *
 * Host structure (all APIs): level-synchronous frontier expansion; the
 * host must read the continue flag back every level, so every API pays
 * a host round trip per level (the paper's bfs result is therefore
 * decided by kernel quality, not launch overhead — Sec. V-A2).
 *
 * The per-level program (zero the stop flag, kernel1, barrier,
 * kernel2, read the stop flag) is identical every level, so the
 * preferred Vulkan strategy is record-once-resubmit; the stop flag
 * lives in a mapped host-visible buffer.  The CSR generator and CPU
 * reference are shared with the golden bfs scenario
 * (suite/workloads.h).
 */

#include "suite/benchmark.h"

#include <memory>

#include "common/mathutil.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

enum BufferIx : size_t
{
    B_START,
    B_DEG,
    B_EDGES,
    B_MASK,
    B_UMASK,
    B_VISITED,
    B_COST,
    B_STOP
};
enum HostIx : size_t { H_ZERO, H_STOP, H_COST };

Workload
makeWorkload(Graph graph)
{
    auto in = std::make_shared<const Graph>(std::move(graph));
    const Graph &g = *in;

    Workload w;
    w.name = "bfs";
    w.kernels = {kernels::buildBfsKernel1(), kernels::buildBfsKernel2()};

    uint64_t node_bytes = uint64_t(g.n) * 4;
    BfsHostState st(g);
    w.buffers = {{node_bytes, wordsOf(g.start)},
                 {node_bytes, wordsOf(g.degree)},
                 {g.edges.size() * 4, wordsOf(g.edges)},
                 {node_bytes, wordsOf(st.mask)},
                 {node_bytes, wordsOf(st.umask)},
                 {node_bytes, wordsOf(st.visited)},
                 {node_bytes, wordsOf(st.cost)},
                 {4, {}, /*hostVisible=*/true}};
    w.host = {{0u}, {0u}, std::vector<uint32_t>(g.n)};

    uint32_t groups = static_cast<uint32_t>(ceilDiv(g.n, 256));
    w.body = {uploadStep(B_STOP, H_ZERO),
              dispatchStep(0, groups, 1, 1, {pw(g.n)},
                           {{0, B_START},
                            {1, B_DEG},
                            {2, B_EDGES},
                            {3, B_MASK},
                            {4, B_UMASK},
                            {5, B_VISITED},
                            {6, B_COST}}),
              barrierStep(),
              dispatchStep(1, groups, 1, 1, {pw(g.n)},
                           {{0, B_MASK},
                            {1, B_UMASK},
                            {2, B_VISITED},
                            {3, B_STOP}}),
              readbackStep(B_STOP, H_STOP)};
    w.iterations = UINT32_MAX; // until the frontier drains
    w.converged = [](const HostArrays &h) { return h[H_STOP][0] == 0; };
    w.epilogue = {readbackStep(B_COST, H_COST)};
    w.preferred = SubmitStrategy::RecordOnce;
    w.validate = [in](const HostArrays &h) {
        return compareInts(intsOf(h[H_COST]), referenceBfs(*in));
    };
    return w;
}

class BfsBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "bfs"; }
    std::string fullName() const override
    {
        return "Breadth-First Search";
    }
    std::string dwarf() const override { return "Graph Traversal"; }
    std::string domain() const override { return "Graph Theory"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 4K / 64K / 1M nodes.  Simulated graphs are sized so
        // all three points sit in the kernel-dominated regime the
        // paper's 1M-node result demonstrates.
        return {{"4K", {49152}}, {"64K", {98304}}, {"1M", {196608}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"4k", {2048}}, {"16k", {8192}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateBfsGraph(static_cast<uint32_t>(cfg.params[0]),
                             workloadSeed(name(), cfg), 2, 9));
    }
};

} // namespace

const Benchmark *
makeBfs()
{
    static BfsBenchmark b;
    return &b;
}

} // namespace vcb::suite

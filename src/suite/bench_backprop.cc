/**
 * @file
 * backprop — neural-network training step (Unstructured Grid / Deep
 * Learning).
 *
 * Two kernels with a host-side reduction between them (layer forward
 * partial sums -> host sigmoid/delta -> weight adjustment), as in
 * Rodinia.  Only two launches: all APIs perform similarly (the paper
 * groups backprop with nn and nw).  The layer-forward kernel uses a
 * shared-memory tree reduction — this is one of the two benchmarks
 * whose driver builds fail on the Nexus (both OpenCL and Vulkan),
 * reproduced via the device profiles.
 */

#include "suite/benchmark.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

constexpr uint32_t hid = kernels::bpHidden; // 16
constexpr float learningRate = 0.3f;

struct Net
{
    uint32_t n = 0; ///< input units (multiple of 16 by construction)
    std::vector<float> input;   // n
    std::vector<float> weights; // n * 16
    std::vector<float> w2;      // 16 (hidden -> output)
};

Net
generateNet(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Net net;
    net.n = static_cast<uint32_t>(alignUp(n, 16));
    net.input.resize(net.n);
    net.weights.resize(uint64_t(net.n) * hid);
    net.w2.resize(hid);
    for (auto &v : net.input)
        v = rng.nextFloat(0.0f, 1.0f);
    for (auto &v : net.weights)
        v = rng.nextFloat(-0.5f, 0.5f);
    for (auto &v : net.w2)
        v = rng.nextFloat(-0.5f, 0.5f);
    return net;
}

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/**
 * Host phase between the two kernels: reduce partial sums, forward to
 * the output unit, back-propagate the error into per-hidden deltas.
 * Identical code runs in the reference and in every API runner.
 */
std::vector<float>
hostDeltas(const Net &net, const std::vector<float> &partial)
{
    uint32_t blocks = net.n / 16;
    std::vector<float> hidden(hid, 0.0f);
    for (uint32_t blk = 0; blk < blocks; ++blk)
        for (uint32_t j = 0; j < hid; ++j)
            hidden[j] += partial[blk * hid + j];
    for (uint32_t j = 0; j < hid; ++j)
        hidden[j] = sigmoid(hidden[j]);

    float out = 0.0f;
    for (uint32_t j = 0; j < hid; ++j)
        out += hidden[j] * net.w2[j];
    out = sigmoid(out);

    const float target = 0.5f;
    float delta_out = (target - out) * out * (1.0f - out);
    std::vector<float> delta(hid);
    for (uint32_t j = 0; j < hid; ++j)
        delta[j] = hidden[j] * (1.0f - hidden[j]) * delta_out *
                   net.w2[j];
    return delta;
}

/** CPU reference: partial sums in the same blocked order as the
 *  kernel's tree reduction, then the weight update. */
void
reference(const Net &net, std::vector<float> *partial_out,
          std::vector<float> *weights_out)
{
    uint32_t blocks = net.n / 16;
    std::vector<float> partial(uint64_t(blocks) * hid, 0.0f);
    for (uint32_t blk = 0; blk < blocks; ++blk) {
        for (uint32_t j = 0; j < hid; ++j) {
            // Tree order: pairwise over 16 inputs.
            float v[16];
            for (uint32_t i = 0; i < 16; ++i)
                v[i] = net.input[blk * 16 + i] *
                       net.weights[uint64_t(blk * 16 + i) * hid + j];
            for (uint32_t s = 8; s >= 1; s /= 2)
                for (uint32_t i = 0; i < s; ++i)
                    v[i] += v[i + s];
            partial[blk * hid + j] = v[0];
        }
    }
    std::vector<float> delta = hostDeltas(net, partial);
    std::vector<float> weights = net.weights;
    for (uint32_t i = 0; i < net.n; ++i)
        for (uint32_t j = 0; j < hid; ++j)
            weights[uint64_t(i) * hid + j] = std::fma(
                learningRate * delta[j], net.input[i],
                weights[uint64_t(i) * hid + j]);
    if (partial_out)
        *partial_out = std::move(partial);
    if (weights_out)
        *weights_out = std::move(weights);
}

RunResult
finish(RunResult res, const Net &net, const std::vector<float> &partial,
       const std::vector<float> &weights)
{
    std::vector<float> ref_partial, ref_weights;
    reference(net, &ref_partial, &ref_weights);
    res.validationError = compareFloats(partial, ref_partial);
    if (res.validationError.empty())
        res.validationError = compareFloats(weights, ref_weights);
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const Net &net)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k1, k2;
    std::string err =
        createVkKernel(ctx, kernels::buildBackpropLayerForward(), &k1);
    if (err.empty())
        err = createVkKernel(ctx, kernels::buildBackpropAdjustWeights(),
                             &k2);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint32_t blocks = net.n / 16;
    uint64_t in_bytes = uint64_t(net.n) * 4;
    uint64_t w_bytes = uint64_t(net.n) * hid * 4;
    uint64_t part_bytes = uint64_t(blocks) * hid * 4;
    auto b_in = ctx.createDeviceBuffer(in_bytes);
    auto b_w = ctx.createDeviceBuffer(w_bytes);
    auto b_part = ctx.createDeviceBuffer(part_bytes);
    auto b_delta = ctx.createDeviceBuffer(hid * 4);
    ctx.upload(b_in, net.input.data(), in_bytes);
    ctx.upload(b_w, net.weights.data(), w_bytes);

    auto s1 = makeDescriptorSet(ctx, k1,
                                {{0, b_in}, {1, b_w}, {2, b_part}});
    auto s2 = makeDescriptorSet(ctx, k2,
                                {{0, b_in}, {1, b_delta}, {2, b_w}});

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    double t0 = ctx.now();
    // Phase 1: layer forward.
    vkm::CommandBuffer cb1;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb1),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb1), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb1, k1.pipeline);
    vkm::cmdBindDescriptorSet(cb1, k1.layout, 0, s1);
    vkm::cmdPushConstants(cb1, k1.layout, 0, 4, &net.n);
    vkm::cmdDispatch(cb1, blocks, 1, 1);
    vkm::check(vkm::endCommandBuffer(cb1), "endCommandBuffer");
    vkm::SubmitInfo si1;
    si1.commandBuffers.push_back(cb1);
    vkm::check(vkm::queueSubmit(ctx.queue, {si1}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    vkm::check(vkm::resetFences(ctx.device, {fence}), "resetFences");

    std::vector<float> partial(uint64_t(blocks) * hid);
    ctx.download(b_part, partial.data(), part_bytes);
    std::vector<float> delta = hostDeltas(net, partial);
    ctx.upload(b_delta, delta.data(), hid * 4);

    // Phase 2: weight adjustment.
    vkm::CommandBuffer cb2;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb2),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb2), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb2, k2.pipeline);
    vkm::cmdBindDescriptorSet(cb2, k2.layout, 0, s2);
    uint32_t push[2] = {net.n, 0};
    std::memcpy(&push[1], &learningRate, 4);
    vkm::cmdPushConstants(cb2, k2.layout, 0, 8, push);
    vkm::cmdDispatch(cb2, (uint32_t)ceilDiv(uint64_t(net.n) * hid, 256),
                     1, 1);
    vkm::check(vkm::endCommandBuffer(cb2), "endCommandBuffer");
    vkm::SubmitInfo si2;
    si2.commandBuffers.push_back(cb2);
    vkm::check(vkm::queueSubmit(ctx.queue, {si2}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    res.kernelRegionNs = ctx.now() - t0;
    res.launches = 2;

    std::vector<float> weights(uint64_t(net.n) * hid);
    ctx.download(b_w, weights.data(), w_bytes);
    res.totalNs = ctx.now() - t_total0;
    return finish(std::move(res), net, partial, weights);
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const Net &net)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto p1 = ocl::createProgramWithSource(
        ctx, kernels::buildBackpropLayerForward());
    auto p2 = ocl::createProgramWithSource(
        ctx, kernels::buildBackpropAdjustWeights());
    std::string err;
    if (!ocl::buildProgram(p1, &err) || !ocl::buildProgram(p2, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k1 = ocl::createKernel(p1, "backprop_layerforward", &err);
    auto k2 = ocl::createKernel(p2, "backprop_adjust_weights", &err);
    VCB_ASSERT(k1.valid() && k2.valid(), "kernel creation failed: %s",
               err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint32_t blocks = net.n / 16;
    uint64_t in_bytes = uint64_t(net.n) * 4;
    uint64_t w_bytes = uint64_t(net.n) * hid * 4;
    uint64_t part_bytes = uint64_t(blocks) * hid * 4;
    auto b_in = ocl::createBuffer(ctx, ocl::MemReadOnly, in_bytes);
    auto b_w = ocl::createBuffer(ctx, ocl::MemReadWrite, w_bytes);
    auto b_part = ocl::createBuffer(ctx, ocl::MemReadWrite, part_bytes);
    auto b_delta = ocl::createBuffer(ctx, ocl::MemReadOnly, hid * 4);
    ocl::enqueueWriteBuffer(ctx, b_in, true, 0, in_bytes,
                            net.input.data());
    ocl::enqueueWriteBuffer(ctx, b_w, true, 0, w_bytes,
                            net.weights.data());

    double t0 = ctx.hostNowNs();
    ocl::setKernelArgBuffer(k1, 0, b_in);
    ocl::setKernelArgBuffer(k1, 1, b_w);
    ocl::setKernelArgBuffer(k1, 2, b_part);
    ocl::setKernelArgScalar(k1, 0, net.n);
    ocl::enqueueNDRangeKernel(ctx, k1, blocks * 256);
    ctx.finish();

    std::vector<float> partial(uint64_t(blocks) * hid);
    ocl::enqueueReadBuffer(ctx, b_part, true, 0, part_bytes,
                           partial.data());
    std::vector<float> delta = hostDeltas(net, partial);
    ocl::enqueueWriteBuffer(ctx, b_delta, true, 0, hid * 4,
                            delta.data());

    ocl::setKernelArgBuffer(k2, 0, b_in);
    ocl::setKernelArgBuffer(k2, 1, b_delta);
    ocl::setKernelArgBuffer(k2, 2, b_w);
    ocl::setKernelArgScalar(k2, 0, net.n);
    ocl::setKernelArgScalarF(k2, 1, learningRate);
    ocl::enqueueNDRangeKernel(
        ctx, k2, (uint32_t)ceilDiv(uint64_t(net.n) * hid, 256) * 256);
    ctx.finish();
    res.kernelRegionNs = ctx.hostNowNs() - t0;
    res.launches = 2;

    std::vector<float> weights(uint64_t(net.n) * hid);
    ocl::enqueueReadBuffer(ctx, b_w, true, 0, w_bytes, weights.data());
    res.totalNs = ctx.hostNowNs() - t_total0;
    return finish(std::move(res), net, partial, weights);
}

RunResult
runCuda(const sim::DeviceSpec &dev, const Net &net)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f1 = rt.loadFunction(kernels::buildBackpropLayerForward());
    auto f2 = rt.loadFunction(kernels::buildBackpropAdjustWeights());

    double t_total0 = rt.hostNowNs();
    uint32_t blocks = net.n / 16;
    uint64_t in_bytes = uint64_t(net.n) * 4;
    uint64_t w_bytes = uint64_t(net.n) * hid * 4;
    uint64_t part_bytes = uint64_t(blocks) * hid * 4;
    auto d_in = rt.malloc(in_bytes);
    auto d_w = rt.malloc(w_bytes);
    auto d_part = rt.malloc(part_bytes);
    auto d_delta = rt.malloc(hid * 4);
    rt.memcpyHtoD(d_in, net.input.data(), in_bytes);
    rt.memcpyHtoD(d_w, net.weights.data(), w_bytes);

    double t0 = rt.hostNowNs();
    rt.launchKernel(f1, blocks, 1, 1, {d_in, d_w, d_part}, {net.n});
    rt.deviceSynchronize();

    std::vector<float> partial(uint64_t(blocks) * hid);
    rt.memcpyDtoH(partial.data(), d_part, part_bytes);
    std::vector<float> delta = hostDeltas(net, partial);
    rt.memcpyHtoD(d_delta, delta.data(), hid * 4);

    uint32_t lr_bits;
    std::memcpy(&lr_bits, &learningRate, 4);
    rt.launchKernel(f2, (uint32_t)ceilDiv(uint64_t(net.n) * hid, 256), 1,
                    1, {d_in, d_delta, d_w}, {net.n, lr_bits});
    rt.deviceSynchronize();
    res.kernelRegionNs = rt.hostNowNs() - t0;
    res.launches = 2;

    std::vector<float> weights(uint64_t(net.n) * hid);
    rt.memcpyDtoH(weights.data(), d_w, w_bytes);
    res.totalNs = rt.hostNowNs() - t_total0;
    return finish(std::move(res), net, partial, weights);
}

class BackpropBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "backprop"; }
    std::string fullName() const override { return "Back Propagation"; }
    std::string dwarf() const override { return "Unstructured Grid"; }
    std::string domain() const override { return "Deep Learning"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 4K / 64K / 256K input units.
        return {{"4K", {4096}}, {"64K", {65536}}, {"256K", {262144}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"64K", {16384}}, {"256K", {65536}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        Net net = generateNet(static_cast<uint32_t>(cfg.params[0]),
                              workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, net);
          case sim::Api::OpenCl:
            return runOpenCl(dev, net);
          case sim::Api::Cuda:
            return runCuda(dev, net);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeBackprop()
{
    static BackpropBenchmark b;
    return &b;
}

} // namespace vcb::suite

/**
 * @file
 * backprop — neural-network training step (Unstructured Grid / Deep
 * Learning).
 *
 * Two kernels with a host-side reduction between them (layer forward
 * partial sums -> host sigmoid/delta -> weight adjustment), as in
 * Rodinia.  Only two launches: all APIs perform similarly (the paper
 * groups backprop with nn and nw).  The layer-forward kernel uses a
 * shared-memory tree reduction — this is one of the two benchmarks
 * whose driver builds fail on the Nexus (both OpenCL and Vulkan),
 * reproduced via the device profiles.
 */

#include "suite/benchmark.h"

#include <cmath>
#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

constexpr uint32_t hid = kernels::bpHidden; // 16
constexpr float learningRate = 0.3f;

struct Net
{
    uint32_t n = 0; ///< input units (multiple of 16 by construction)
    std::vector<float> input;   // n
    std::vector<float> weights; // n * 16
    std::vector<float> w2;      // 16 (hidden -> output)
};

Net
generateNet(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Net net;
    net.n = static_cast<uint32_t>(alignUp(n, 16));
    net.input.resize(net.n);
    net.weights.resize(uint64_t(net.n) * hid);
    net.w2.resize(hid);
    for (auto &v : net.input)
        v = rng.nextFloat(0.0f, 1.0f);
    for (auto &v : net.weights)
        v = rng.nextFloat(-0.5f, 0.5f);
    for (auto &v : net.w2)
        v = rng.nextFloat(-0.5f, 0.5f);
    return net;
}

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/**
 * Host phase between the two kernels: reduce partial sums, forward to
 * the output unit, back-propagate the error into per-hidden deltas.
 * Identical code runs in the reference and in the workload's host
 * callback, on every API.
 */
std::vector<float>
hostDeltas(const Net &net, const std::vector<float> &partial)
{
    uint32_t blocks = net.n / 16;
    std::vector<float> hidden(hid, 0.0f);
    for (uint32_t blk = 0; blk < blocks; ++blk)
        for (uint32_t j = 0; j < hid; ++j)
            hidden[j] += partial[blk * hid + j];
    for (uint32_t j = 0; j < hid; ++j)
        hidden[j] = sigmoid(hidden[j]);

    float out = 0.0f;
    for (uint32_t j = 0; j < hid; ++j)
        out += hidden[j] * net.w2[j];
    out = sigmoid(out);

    const float target = 0.5f;
    float delta_out = (target - out) * out * (1.0f - out);
    std::vector<float> delta(hid);
    for (uint32_t j = 0; j < hid; ++j)
        delta[j] = hidden[j] * (1.0f - hidden[j]) * delta_out *
                   net.w2[j];
    return delta;
}

/** CPU reference: partial sums in the same blocked order as the
 *  kernel's tree reduction, then the weight update. */
void
reference(const Net &net, std::vector<float> *partial_out,
          std::vector<float> *weights_out)
{
    uint32_t blocks = net.n / 16;
    std::vector<float> partial(uint64_t(blocks) * hid, 0.0f);
    for (uint32_t blk = 0; blk < blocks; ++blk) {
        for (uint32_t j = 0; j < hid; ++j) {
            // Tree order: pairwise over 16 inputs.
            float v[16];
            for (uint32_t i = 0; i < 16; ++i)
                v[i] = net.input[blk * 16 + i] *
                       net.weights[uint64_t(blk * 16 + i) * hid + j];
            for (uint32_t s = 8; s >= 1; s /= 2)
                for (uint32_t i = 0; i < s; ++i)
                    v[i] += v[i + s];
            partial[blk * hid + j] = v[0];
        }
    }
    std::vector<float> delta = hostDeltas(net, partial);
    std::vector<float> weights = net.weights;
    for (uint32_t i = 0; i < net.n; ++i)
        for (uint32_t j = 0; j < hid; ++j)
            weights[uint64_t(i) * hid + j] = std::fma(
                learningRate * delta[j], net.input[i],
                weights[uint64_t(i) * hid + j]);
    if (partial_out)
        *partial_out = std::move(partial);
    if (weights_out)
        *weights_out = std::move(weights);
}

enum BufferIx : size_t { B_IN, B_W, B_PART, B_DELTA };
enum HostIx : size_t { H_PART, H_DELTA, H_W };

Workload
makeWorkload(Net n)
{
    auto in = std::make_shared<const Net>(std::move(n));
    const Net &net = *in;

    uint32_t blocks = net.n / 16;
    uint64_t in_bytes = uint64_t(net.n) * 4;
    uint64_t w_bytes = uint64_t(net.n) * hid * 4;
    uint64_t part_bytes = uint64_t(blocks) * hid * 4;

    Workload w;
    w.name = "backprop";
    w.kernels = {kernels::buildBackpropLayerForward(),
                 kernels::buildBackpropAdjustWeights()};
    w.buffers = {{in_bytes, wordsOf(net.input)},
                 {w_bytes, wordsOf(net.weights)},
                 {part_bytes, {}},
                 {hid * 4, {}}};
    w.host = {std::vector<uint32_t>(uint64_t(blocks) * hid),
              std::vector<uint32_t>(hid),
              std::vector<uint32_t>(uint64_t(net.n) * hid)};

    w.body = {
        dispatchStep(0, blocks, 1, 1, {pw(net.n)},
                     {{0, B_IN}, {1, B_W}, {2, B_PART}}),
        syncStep(),
        readbackStep(B_PART, H_PART),
        hostStep([in](HostArrays &h) {
            h[H_DELTA] = wordsOf(hostDeltas(*in, floatsOf(h[H_PART])));
        }),
        uploadStep(B_DELTA, H_DELTA),
        dispatchStep(1,
                     (uint32_t)ceilDiv(uint64_t(net.n) * hid, 256), 1, 1,
                     {pw(net.n), pwF(learningRate)},
                     {{0, B_IN}, {1, B_DELTA}, {2, B_W}}),
        syncStep(),
    };
    w.epilogue = {readbackStep(B_W, H_W)};
    w.preferred = SubmitStrategy::RecordOnce;
    w.validate = [in](const HostArrays &h) {
        std::vector<float> ref_partial, ref_weights;
        reference(*in, &ref_partial, &ref_weights);
        std::string err = compareFloats(floatsOf(h[H_PART]), ref_partial);
        if (err.empty())
            err = compareFloats(floatsOf(h[H_W]), ref_weights);
        return err;
    };
    return w;
}

class BackpropBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "backprop"; }
    std::string fullName() const override { return "Back Propagation"; }
    std::string dwarf() const override { return "Unstructured Grid"; }
    std::string domain() const override { return "Deep Learning"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 4K / 64K / 256K input units.
        return {{"4K", {4096}}, {"64K", {65536}}, {"256K", {262144}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"64K", {16384}}, {"256K", {65536}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateNet(static_cast<uint32_t>(cfg.params[0]),
                        workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeBackprop()
{
    static BackpropBenchmark b;
    return &b;
}

} // namespace vcb::suite

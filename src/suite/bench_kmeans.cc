/**
 * @file
 * kmeans — K-Means clustering (Dense Linear Algebra / Data Mining),
 * the Rodinia convergence-loop family.
 *
 * Host structure (all APIs): the assignment kernel runs on the device,
 * but the centroids are recomputed on the host from the memberships,
 * so every iteration uploads centroids, dispatches, and reads the
 * membership array and the atomic changed-counter back — the blocking
 * multi-kernel method on every API.  Vulkan records the per-iteration
 * command buffer once and resubmits it; the iteration count is decided
 * purely by the data (loop until delta == 0 or maxIters), which is
 * what the convergence-determinism tests pin down.
 */

#include "suite/benchmark.h"

#include <bit>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

/** Upper bound on convergence iterations (Rodinia caps at 500; the
 *  simulated sizes converge far earlier, the cap merely bounds test
 *  time).  The CPU reference applies the same cap, so validation holds
 *  even for a non-converged configuration. */
constexpr uint32_t kMaxIters = 20;

struct Points
{
    uint32_t n = 0, f = 0, k = 0;
    std::vector<float> aos; ///< n x f feature matrix
};

Points
generatePoints(uint32_t n, uint32_t f, uint32_t k, uint64_t seed)
{
    Rng rng(seed);
    Points p;
    p.n = n;
    p.f = f;
    p.k = k;
    p.aos.resize(uint64_t(n) * f);
    for (auto &v : p.aos)
        v = rng.nextFloat(0.0f, 10.0f);
    return p;
}

/** One CPU assignment pass mirroring kmeans_assign's operation order
 *  (SoA feature walk, named temporaries, strict less-than).
 *  @return number of changed memberships. */
int32_t
assignOnCpu(const Points &p, const std::vector<float> &soa,
            const std::vector<float> &cent, std::vector<int32_t> &mem)
{
    int32_t delta = 0;
    for (uint32_t i = 0; i < p.n; ++i) {
        int32_t best = 0;
        float best_dist = 3.402823466e38f;
        for (uint32_t c = 0; c < p.k; ++c) {
            float dist = 0.0f;
            for (uint32_t j = 0; j < p.f; ++j) {
                float diff = soa[size_t(j) * p.n + i] -
                             cent[size_t(c) * p.f + j];
                float sq = diff * diff;
                dist = dist + sq;
            }
            if (dist < best_dist) {
                best_dist = dist;
                best = (int32_t)c;
            }
        }
        if (mem[i] != best)
            ++delta;
        mem[i] = best;
    }
    return delta;
}

/** Host-side centroid update shared by the reference and every API
 *  path: mean of each cluster's members, empty clusters keep their
 *  previous centre. */
void
updateCentroids(const Points &p, const std::vector<int32_t> &mem,
                std::vector<float> &cent)
{
    std::vector<float> sums(size_t(p.k) * p.f, 0.0f);
    std::vector<uint32_t> counts(p.k, 0);
    for (uint32_t i = 0; i < p.n; ++i) {
        ++counts[(uint32_t)mem[i]];
        for (uint32_t j = 0; j < p.f; ++j) {
            size_t off = size_t(mem[i]) * p.f + j;
            sums[off] = sums[off] + p.aos[size_t(i) * p.f + j];
        }
    }
    for (uint32_t c = 0; c < p.k; ++c)
        for (uint32_t j = 0; j < p.f; ++j)
            if (counts[c] > 0)
                cent[size_t(c) * p.f + j] =
                    sums[size_t(c) * p.f + j] / (float)counts[c];
}

std::vector<float>
initialCentroids(const Points &p)
{
    // Rodinia seeds the centroids with the first k points.
    return std::vector<float>(p.aos.begin(),
                              p.aos.begin() + size_t(p.k) * p.f);
}

std::vector<float>
transposed(const Points &p)
{
    std::vector<float> soa(size_t(p.n) * p.f);
    for (uint32_t i = 0; i < p.n; ++i)
        for (uint32_t j = 0; j < p.f; ++j)
            soa[size_t(j) * p.n + i] = p.aos[size_t(i) * p.f + j];
    return soa;
}

/** Full CPU reference: returns the final membership. */
std::vector<int32_t>
referenceKmeans(const Points &p)
{
    auto soa = transposed(p);
    auto cent = initialCentroids(p);
    std::vector<int32_t> mem(p.n, -1);
    for (uint32_t it = 0; it < kMaxIters; ++it) {
        int32_t delta = assignOnCpu(p, soa, cent, mem);
        updateCentroids(p, mem, cent);
        if (delta == 0)
            break;
    }
    return mem;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const Points &p)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k_swap, k_assign;
    std::string err = createVkKernel(ctx, kernels::buildKmeansSwap(), &k_swap);
    if (err.empty())
        err = createVkKernel(ctx, kernels::buildKmeansAssign(), &k_assign);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint64_t feat_bytes = uint64_t(p.n) * p.f * 4;
    uint64_t cent_bytes = uint64_t(p.k) * p.f * 4;
    uint64_t mem_bytes = uint64_t(p.n) * 4;
    auto b_aos = ctx.createDeviceBuffer(feat_bytes);
    auto b_soa = ctx.createDeviceBuffer(feat_bytes);
    auto b_cent = ctx.createDeviceBuffer(cent_bytes);
    auto b_mem = ctx.createDeviceBuffer(mem_bytes);
    auto b_delta = ctx.createDeviceBuffer(4);

    std::vector<int32_t> mem(p.n, -1);
    ctx.upload(b_aos, p.aos.data(), feat_bytes);
    ctx.upload(b_mem, mem.data(), mem_bytes);

    auto s_swap = makeDescriptorSet(ctx, k_swap, {{0, b_aos}, {1, b_soa}});
    auto s_assign = makeDescriptorSet(
        ctx, k_assign,
        {{0, b_soa}, {1, b_cent}, {2, b_mem}, {3, b_delta}});

    const uint32_t groups = (uint32_t)ceilDiv(p.n, 256);
    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    // One-time feature transpose.
    vkm::CommandBuffer cb_swap, cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb_swap),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb_swap), "beginCommandBuffer");
    uint32_t push_swap[2] = {p.n, p.f};
    vkm::cmdBindPipeline(cb_swap, k_swap.pipeline);
    vkm::cmdBindDescriptorSet(cb_swap, k_swap.layout, 0, s_swap);
    vkm::cmdPushConstants(cb_swap, k_swap.layout, 0, 8, push_swap);
    vkm::cmdDispatch(cb_swap, groups, 1, 1);
    vkm::check(vkm::endCommandBuffer(cb_swap), "endCommandBuffer");

    // The per-iteration command buffer is identical every iteration
    // (only buffer contents change): record once, resubmit.
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    uint32_t push_assign[3] = {p.n, p.f, p.k};
    vkm::cmdBindPipeline(cb, k_assign.pipeline);
    vkm::cmdBindDescriptorSet(cb, k_assign.layout, 0, s_assign);
    vkm::cmdPushConstants(cb, k_assign.layout, 0, 12, push_assign);
    vkm::cmdDispatch(cb, groups, 1, 1);
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    auto cent = initialCentroids(p);
    int32_t delta = 0;

    double t0 = ctx.now();
    vkm::SubmitInfo si_swap;
    si_swap.commandBuffers.push_back(cb_swap);
    vkm::check(vkm::queueSubmit(ctx.queue, {si_swap}, fence),
               "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    vkm::check(vkm::resetFences(ctx.device, {fence}), "resetFences");
    res.launches += 1;

    for (uint32_t it = 0; it < kMaxIters; ++it) {
        ctx.upload(b_cent, cent.data(), cent_bytes);
        int32_t zero = 0;
        ctx.upload(b_delta, &zero, 4);
        vkm::SubmitInfo si;
        si.commandBuffers.push_back(cb);
        vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(ctx.device, {fence}),
                   "waitForFences");
        vkm::check(vkm::resetFences(ctx.device, {fence}), "resetFences");
        res.launches += 1;
        ctx.download(b_delta, &delta, 4);
        ctx.download(b_mem, mem.data(), mem_bytes);
        updateCentroids(p, mem, cent);
        if (delta == 0)
            break;
    }
    res.kernelRegionNs = ctx.now() - t0;
    res.totalNs = ctx.now() - t_total0;

    res.validationError = compareInts(mem, referenceKmeans(p));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const Points &p)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto p_swap = ocl::createProgramWithSource(ctx, kernels::buildKmeansSwap());
    auto p_assign =
        ocl::createProgramWithSource(ctx, kernels::buildKmeansAssign());
    std::string err;
    if (!ocl::buildProgram(p_swap, &err) ||
        !ocl::buildProgram(p_assign, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k_swap = ocl::createKernel(p_swap, "kmeans_swap", &err);
    auto k_assign = ocl::createKernel(p_assign, "kmeans_assign", &err);
    VCB_ASSERT(k_swap.valid() && k_assign.valid(),
               "kernel creation failed: %s", err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint64_t feat_bytes = uint64_t(p.n) * p.f * 4;
    uint64_t cent_bytes = uint64_t(p.k) * p.f * 4;
    uint64_t mem_bytes = uint64_t(p.n) * 4;
    auto b_aos = ocl::createBuffer(ctx, ocl::MemReadOnly, feat_bytes);
    auto b_soa = ocl::createBuffer(ctx, ocl::MemReadWrite, feat_bytes);
    auto b_cent = ocl::createBuffer(ctx, ocl::MemReadOnly, cent_bytes);
    auto b_mem = ocl::createBuffer(ctx, ocl::MemReadWrite, mem_bytes);
    auto b_delta = ocl::createBuffer(ctx, ocl::MemReadWrite, 4);

    std::vector<int32_t> mem(p.n, -1);
    ocl::enqueueWriteBuffer(ctx, b_aos, true, 0, feat_bytes, p.aos.data());
    ocl::enqueueWriteBuffer(ctx, b_mem, true, 0, mem_bytes, mem.data());

    ocl::setKernelArgBuffer(k_swap, 0, b_aos);
    ocl::setKernelArgBuffer(k_swap, 1, b_soa);
    ocl::setKernelArgScalar(k_swap, 0, p.n);
    ocl::setKernelArgScalar(k_swap, 1, p.f);
    ocl::setKernelArgBuffer(k_assign, 0, b_soa);
    ocl::setKernelArgBuffer(k_assign, 1, b_cent);
    ocl::setKernelArgBuffer(k_assign, 2, b_mem);
    ocl::setKernelArgBuffer(k_assign, 3, b_delta);
    ocl::setKernelArgScalar(k_assign, 0, p.n);
    ocl::setKernelArgScalar(k_assign, 1, p.f);
    ocl::setKernelArgScalar(k_assign, 2, p.k);

    uint32_t global = (uint32_t)ceilDiv(p.n, 256) * 256;
    auto cent = initialCentroids(p);
    int32_t delta = 0;

    double t0 = ctx.hostNowNs();
    ocl::enqueueNDRangeKernel(ctx, k_swap, global);
    res.launches += 1;
    ctx.finish();
    for (uint32_t it = 0; it < kMaxIters; ++it) {
        int32_t zero = 0;
        ocl::enqueueWriteBuffer(ctx, b_cent, false, 0, cent_bytes,
                                cent.data());
        ocl::enqueueWriteBuffer(ctx, b_delta, false, 0, 4, &zero);
        ocl::enqueueNDRangeKernel(ctx, k_assign, global);
        res.launches += 1;
        ocl::enqueueReadBuffer(ctx, b_delta, true, 0, 4, &delta);
        ocl::enqueueReadBuffer(ctx, b_mem, true, 0, mem_bytes, mem.data());
        updateCentroids(p, mem, cent);
        if (delta == 0)
            break;
    }
    res.kernelRegionNs = ctx.hostNowNs() - t0;
    res.totalNs = ctx.hostNowNs() - t_total0;

    res.validationError = compareInts(mem, referenceKmeans(p));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runCuda(const sim::DeviceSpec &dev, const Points &p)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f_swap = rt.loadFunction(kernels::buildKmeansSwap());
    auto f_assign = rt.loadFunction(kernels::buildKmeansAssign());

    double t_total0 = rt.hostNowNs();
    uint64_t feat_bytes = uint64_t(p.n) * p.f * 4;
    uint64_t cent_bytes = uint64_t(p.k) * p.f * 4;
    uint64_t mem_bytes = uint64_t(p.n) * 4;
    auto d_aos = rt.malloc(feat_bytes);
    auto d_soa = rt.malloc(feat_bytes);
    auto d_cent = rt.malloc(cent_bytes);
    auto d_mem = rt.malloc(mem_bytes);
    auto d_delta = rt.malloc(4);

    std::vector<int32_t> mem(p.n, -1);
    rt.memcpyHtoD(d_aos, p.aos.data(), feat_bytes);
    rt.memcpyHtoD(d_mem, mem.data(), mem_bytes);

    uint32_t groups = (uint32_t)ceilDiv(p.n, 256);
    auto cent = initialCentroids(p);
    int32_t delta = 0;

    double t0 = rt.hostNowNs();
    rt.launchKernel(f_swap, groups, 1, 1, {d_aos, d_soa}, {p.n, p.f});
    res.launches += 1;
    rt.deviceSynchronize();
    for (uint32_t it = 0; it < kMaxIters; ++it) {
        int32_t zero = 0;
        rt.memcpyHtoD(d_cent, cent.data(), cent_bytes);
        rt.memcpyHtoD(d_delta, &zero, 4);
        rt.launchKernel(f_assign, groups, 1, 1,
                        {d_soa, d_cent, d_mem, d_delta},
                        {p.n, p.f, p.k});
        res.launches += 1;
        rt.memcpyDtoH(&delta, d_delta, 4);
        rt.memcpyDtoH(mem.data(), d_mem, mem_bytes);
        updateCentroids(p, mem, cent);
        if (delta == 0)
            break;
    }
    res.kernelRegionNs = rt.hostNowNs() - t0;
    res.totalNs = rt.hostNowNs() - t_total0;

    res.validationError = compareInts(mem, referenceKmeans(p));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

class KmeansBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "kmeans"; }
    std::string fullName() const override { return "K-Means Clustering"; }
    std::string dwarf() const override { return "Dense Linear Algebra"; }
    std::string domain() const override { return "Data Mining"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // params: {points, features, clusters}.
        return {{"8K", {8192, 4, 5}},
                {"32K", {32768, 4, 5}},
                {"64K", {65536, 4, 5}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"2K", {2048, 4, 5}}, {"8K", {8192, 4, 5}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        Points p = generatePoints(static_cast<uint32_t>(cfg.params[0]),
                                  static_cast<uint32_t>(cfg.params[1]),
                                  static_cast<uint32_t>(cfg.params[2]),
                                  workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, p);
          case sim::Api::OpenCl:
            return runOpenCl(dev, p);
          case sim::Api::Cuda:
            return runCuda(dev, p);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeKmeans()
{
    static KmeansBenchmark b;
    return &b;
}

} // namespace vcb::suite

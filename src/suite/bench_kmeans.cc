/**
 * @file
 * kmeans — K-Means clustering (Dense Linear Algebra / Data Mining),
 * the Rodinia convergence-loop family.
 *
 * Host structure (all APIs): the assignment kernel runs on the device,
 * but the centroids are recomputed on the host from the memberships,
 * so every iteration uploads centroids, dispatches, and reads the
 * membership array and the atomic changed-counter back — the blocking
 * multi-kernel method on every API.  The per-iteration program is
 * identical (only buffer contents move), so the preferred Vulkan
 * strategy is record-once-resubmit; the iteration count is decided
 * purely by the data (loop until delta == 0 or maxIters), which is
 * what the convergence-determinism tests pin down.
 *
 * The point set is split into independent slices, each with its own
 * feature/membership/delta buffers against the shared (read-only
 * within an iteration) centroid buffer; the per-slice assignment
 * dispatches carry dependency edges (Workload::dag) so the
 * multi-queue Vulkan path overlaps them across compute queues.  A
 * slice's SoA values and distance-accumulation order match the
 * unsliced layout element for element, and total delta is the sum of
 * slice deltas, so memberships, the convergence trajectory and the
 * final centroids are bit-identical at any queue count.
 */

#include "suite/benchmark.h"

#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

/** Upper bound on convergence iterations (Rodinia caps at 500; the
 *  simulated sizes converge far earlier, the cap merely bounds test
 *  time).  The CPU reference applies the same cap, so validation holds
 *  even for a non-converged configuration. */
constexpr uint32_t kMaxIters = 20;

struct Points
{
    uint32_t n = 0, f = 0, k = 0;
    std::vector<float> aos; ///< n x f feature matrix
};

Points
generatePoints(uint32_t n, uint32_t f, uint32_t k, uint64_t seed)
{
    Rng rng(seed);
    Points p;
    p.n = n;
    p.f = f;
    p.k = k;
    p.aos.resize(uint64_t(n) * f);
    for (auto &v : p.aos)
        v = rng.nextFloat(0.0f, 10.0f);
    return p;
}

/** One CPU assignment pass mirroring kmeans_assign's operation order
 *  (SoA feature walk, named temporaries, strict less-than).
 *  @return number of changed memberships. */
int32_t
assignOnCpu(const Points &p, const std::vector<float> &soa,
            const std::vector<float> &cent, std::vector<int32_t> &mem)
{
    int32_t delta = 0;
    for (uint32_t i = 0; i < p.n; ++i) {
        int32_t best = 0;
        float best_dist = 3.402823466e38f;
        for (uint32_t c = 0; c < p.k; ++c) {
            float dist = 0.0f;
            for (uint32_t j = 0; j < p.f; ++j) {
                float diff = soa[size_t(j) * p.n + i] -
                             cent[size_t(c) * p.f + j];
                float sq = diff * diff;
                dist = dist + sq;
            }
            if (dist < best_dist) {
                best_dist = dist;
                best = (int32_t)c;
            }
        }
        if (mem[i] != best)
            ++delta;
        mem[i] = best;
    }
    return delta;
}

/** Host-side centroid update shared by the reference and the
 *  workload's host callback: mean of each cluster's members, empty
 *  clusters keep their previous centre. */
void
updateCentroids(const Points &p, const std::vector<int32_t> &mem,
                std::vector<float> &cent)
{
    std::vector<float> sums(size_t(p.k) * p.f, 0.0f);
    std::vector<uint32_t> counts(p.k, 0);
    for (uint32_t i = 0; i < p.n; ++i) {
        ++counts[(uint32_t)mem[i]];
        for (uint32_t j = 0; j < p.f; ++j) {
            size_t off = size_t(mem[i]) * p.f + j;
            sums[off] = sums[off] + p.aos[size_t(i) * p.f + j];
        }
    }
    for (uint32_t c = 0; c < p.k; ++c)
        for (uint32_t j = 0; j < p.f; ++j)
            if (counts[c] > 0)
                cent[size_t(c) * p.f + j] =
                    sums[size_t(c) * p.f + j] / (float)counts[c];
}

std::vector<float>
initialCentroids(const Points &p)
{
    // Rodinia seeds the centroids with the first k points.
    return std::vector<float>(p.aos.begin(),
                              p.aos.begin() + size_t(p.k) * p.f);
}

std::vector<float>
transposed(const Points &p)
{
    std::vector<float> soa(size_t(p.n) * p.f);
    for (uint32_t i = 0; i < p.n; ++i)
        for (uint32_t j = 0; j < p.f; ++j)
            soa[size_t(j) * p.n + i] = p.aos[size_t(i) * p.f + j];
    return soa;
}

/** Full CPU reference: returns the final membership. */
std::vector<int32_t>
referenceKmeans(const Points &p)
{
    auto soa = transposed(p);
    auto cent = initialCentroids(p);
    std::vector<int32_t> mem(p.n, -1);
    for (uint32_t it = 0; it < kMaxIters; ++it) {
        int32_t delta = assignOnCpu(p, soa, cent, mem);
        updateCentroids(p, mem, cent);
        if (delta == 0)
            break;
    }
    return mem;
}

/** Independent point slices; each gets its own assignment dispatch. */
constexpr size_t kChunks = 4;

// Buffer layout: B_CENT shared, then per chunk c a quartet
// {aos, soa, mem, delta} starting at 1 + 4c.
enum BufferIx : size_t { B_CENT };
constexpr size_t B_AOS(size_t c) { return 1 + 4 * c; }
constexpr size_t B_SOA(size_t c) { return 2 + 4 * c; }
constexpr size_t B_MEM(size_t c) { return 3 + 4 * c; }
constexpr size_t B_DELTA(size_t c) { return 4 + 4 * c; }

// Host layout: zero word, centroids, combined delta, then per chunk c
// {delta, mem} at 3 + 2c / 4 + 2c.
enum HostIx : size_t { H_ZERO, H_CENT, H_DELTA };
constexpr size_t H_CDELTA(size_t c) { return 3 + 2 * c; }
constexpr size_t H_MEM(size_t c) { return 4 + 2 * c; }

Workload
makeWorkload(Points pts)
{
    auto in = std::make_shared<const Points>(std::move(pts));
    const Points &p = *in;
    uint64_t cent_bytes = uint64_t(p.k) * p.f * 4;

    Workload w;
    w.name = "kmeans";
    w.kernels = {kernels::buildKmeansSwap(), kernels::buildKmeansAssign()};
    w.dag = true;
    w.buffers = {{cent_bytes, {}}};
    w.host = {{0u}, wordsOf(initialCentroids(p)), {0u}};

    std::vector<size_t> bounds(kChunks + 1);
    for (size_t c = 0; c <= kChunks; ++c)
        bounds[c] = size_t(p.n) * c / kChunks;
    std::vector<uint32_t> cns(kChunks);
    for (size_t c = 0; c < kChunks; ++c) {
        uint32_t cn = cns[c] = uint32_t(bounds[c + 1] - bounds[c]);
        std::vector<float> aos(p.aos.begin() + bounds[c] * p.f,
                               p.aos.begin() + bounds[c + 1] * p.f);
        w.buffers.push_back({uint64_t(cn) * p.f * 4, wordsOf(aos)});
        w.buffers.push_back({uint64_t(cn) * p.f * 4, {}});
        w.buffers.push_back(
            {uint64_t(cn) * 4,
             wordsOf(std::vector<int32_t>(cn, -1))});
        w.buffers.push_back({4, {}});
        w.host.push_back({0u});
        w.host.push_back(std::vector<uint32_t>(cn));
    }

    // One-time per-slice feature transposes — independent dag roots.
    for (size_t c = 0; c < kChunks; ++c)
        w.prologue.push_back(dispatchStep(
            0, (uint32_t)ceilDiv(cns[c], 256), 1, 1,
            {pw(cns[c]), pw(p.f)}, {{0, B_AOS(c)}, {1, B_SOA(c)}}));

    // The per-iteration program is identical every iteration (only
    // buffer contents change): record once, resubmit.  Step indices:
    // 0 centroid upload, 1..kChunks delta clears, then per chunk the
    // assignment dispatch (after the shared upload and its own clear)
    // and two readbacks behind it; the trailing host step folds slice
    // results together.
    w.body.push_back(uploadStep(B_CENT, H_CENT));
    for (size_t c = 0; c < kChunks; ++c)
        w.body.push_back(uploadStep(B_DELTA(c), H_ZERO));
    const size_t firstAssign = w.body.size();
    for (size_t c = 0; c < kChunks; ++c)
        w.body.push_back(withDeps(
            dispatchStep(1, (uint32_t)ceilDiv(cns[c], 256), 1, 1,
                         {pw(cns[c]), pw(p.f), pw(p.k)},
                         {{0, B_SOA(c)},
                          {1, B_CENT},
                          {2, B_MEM(c)},
                          {3, B_DELTA(c)}}),
            {0, 1 + c}));
    std::vector<size_t> readbacks;
    for (size_t c = 0; c < kChunks; ++c) {
        readbacks.push_back(w.body.size());
        w.body.push_back(withDeps(readbackStep(B_DELTA(c), H_CDELTA(c)),
                                  {firstAssign + c}));
        readbacks.push_back(w.body.size());
        w.body.push_back(withDeps(readbackStep(B_MEM(c), H_MEM(c)),
                                  {firstAssign + c}));
    }
    w.body.push_back(withDeps(
        hostStep([in](HostArrays &h) {
            int32_t delta = 0;
            std::vector<int32_t> mem;
            for (size_t c = 0; c < kChunks; ++c) {
                delta += static_cast<int32_t>(h[H_CDELTA(c)][0]);
                std::vector<int32_t> part = intsOf(h[H_MEM(c)]);
                mem.insert(mem.end(), part.begin(), part.end());
            }
            h[H_DELTA][0] = static_cast<uint32_t>(delta);
            std::vector<float> cent = floatsOf(h[H_CENT]);
            updateCentroids(*in, mem, cent);
            h[H_CENT] = wordsOf(cent);
        }),
        readbacks));
    w.iterations = kMaxIters;
    w.converged = [](const HostArrays &h) {
        return static_cast<int32_t>(h[H_DELTA][0]) == 0;
    };
    w.preferred = SubmitStrategy::RecordOnce;
    w.validate = [in](const HostArrays &h) {
        std::vector<int32_t> mem;
        for (size_t c = 0; c < kChunks; ++c) {
            std::vector<int32_t> part = intsOf(h[H_MEM(c)]);
            mem.insert(mem.end(), part.begin(), part.end());
        }
        return compareInts(mem, referenceKmeans(*in));
    };
    return w;
}

class KmeansBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "kmeans"; }
    std::string fullName() const override { return "K-Means Clustering"; }
    std::string dwarf() const override { return "Dense Linear Algebra"; }
    std::string domain() const override { return "Data Mining"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // params: {points, features, clusters}.
        return {{"8K", {8192, 4, 5}},
                {"32K", {32768, 4, 5}},
                {"64K", {65536, 4, 5}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"2K", {2048, 4, 5}}, {"8K", {8192, 4, 5}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generatePoints(static_cast<uint32_t>(cfg.params[0]),
                           static_cast<uint32_t>(cfg.params[1]),
                           static_cast<uint32_t>(cfg.params[2]),
                           workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeKmeans()
{
    static KmeansBenchmark b;
    return &b;
}

} // namespace vcb::suite

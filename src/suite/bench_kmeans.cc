/**
 * @file
 * kmeans — K-Means clustering (Dense Linear Algebra / Data Mining),
 * the Rodinia convergence-loop family.
 *
 * Host structure (all APIs): the assignment kernel runs on the device,
 * but the centroids are recomputed on the host from the memberships,
 * so every iteration uploads centroids, dispatches, and reads the
 * membership array and the atomic changed-counter back — the blocking
 * multi-kernel method on every API.  The per-iteration program is
 * identical (only buffer contents move), so the preferred Vulkan
 * strategy is record-once-resubmit; the iteration count is decided
 * purely by the data (loop until delta == 0 or maxIters), which is
 * what the convergence-determinism tests pin down.
 */

#include "suite/benchmark.h"

#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

/** Upper bound on convergence iterations (Rodinia caps at 500; the
 *  simulated sizes converge far earlier, the cap merely bounds test
 *  time).  The CPU reference applies the same cap, so validation holds
 *  even for a non-converged configuration. */
constexpr uint32_t kMaxIters = 20;

struct Points
{
    uint32_t n = 0, f = 0, k = 0;
    std::vector<float> aos; ///< n x f feature matrix
};

Points
generatePoints(uint32_t n, uint32_t f, uint32_t k, uint64_t seed)
{
    Rng rng(seed);
    Points p;
    p.n = n;
    p.f = f;
    p.k = k;
    p.aos.resize(uint64_t(n) * f);
    for (auto &v : p.aos)
        v = rng.nextFloat(0.0f, 10.0f);
    return p;
}

/** One CPU assignment pass mirroring kmeans_assign's operation order
 *  (SoA feature walk, named temporaries, strict less-than).
 *  @return number of changed memberships. */
int32_t
assignOnCpu(const Points &p, const std::vector<float> &soa,
            const std::vector<float> &cent, std::vector<int32_t> &mem)
{
    int32_t delta = 0;
    for (uint32_t i = 0; i < p.n; ++i) {
        int32_t best = 0;
        float best_dist = 3.402823466e38f;
        for (uint32_t c = 0; c < p.k; ++c) {
            float dist = 0.0f;
            for (uint32_t j = 0; j < p.f; ++j) {
                float diff = soa[size_t(j) * p.n + i] -
                             cent[size_t(c) * p.f + j];
                float sq = diff * diff;
                dist = dist + sq;
            }
            if (dist < best_dist) {
                best_dist = dist;
                best = (int32_t)c;
            }
        }
        if (mem[i] != best)
            ++delta;
        mem[i] = best;
    }
    return delta;
}

/** Host-side centroid update shared by the reference and the
 *  workload's host callback: mean of each cluster's members, empty
 *  clusters keep their previous centre. */
void
updateCentroids(const Points &p, const std::vector<int32_t> &mem,
                std::vector<float> &cent)
{
    std::vector<float> sums(size_t(p.k) * p.f, 0.0f);
    std::vector<uint32_t> counts(p.k, 0);
    for (uint32_t i = 0; i < p.n; ++i) {
        ++counts[(uint32_t)mem[i]];
        for (uint32_t j = 0; j < p.f; ++j) {
            size_t off = size_t(mem[i]) * p.f + j;
            sums[off] = sums[off] + p.aos[size_t(i) * p.f + j];
        }
    }
    for (uint32_t c = 0; c < p.k; ++c)
        for (uint32_t j = 0; j < p.f; ++j)
            if (counts[c] > 0)
                cent[size_t(c) * p.f + j] =
                    sums[size_t(c) * p.f + j] / (float)counts[c];
}

std::vector<float>
initialCentroids(const Points &p)
{
    // Rodinia seeds the centroids with the first k points.
    return std::vector<float>(p.aos.begin(),
                              p.aos.begin() + size_t(p.k) * p.f);
}

std::vector<float>
transposed(const Points &p)
{
    std::vector<float> soa(size_t(p.n) * p.f);
    for (uint32_t i = 0; i < p.n; ++i)
        for (uint32_t j = 0; j < p.f; ++j)
            soa[size_t(j) * p.n + i] = p.aos[size_t(i) * p.f + j];
    return soa;
}

/** Full CPU reference: returns the final membership. */
std::vector<int32_t>
referenceKmeans(const Points &p)
{
    auto soa = transposed(p);
    auto cent = initialCentroids(p);
    std::vector<int32_t> mem(p.n, -1);
    for (uint32_t it = 0; it < kMaxIters; ++it) {
        int32_t delta = assignOnCpu(p, soa, cent, mem);
        updateCentroids(p, mem, cent);
        if (delta == 0)
            break;
    }
    return mem;
}

enum BufferIx : size_t { B_AOS, B_SOA, B_CENT, B_MEM, B_DELTA };
enum HostIx : size_t { H_ZERO, H_CENT, H_DELTA, H_MEM };

Workload
makeWorkload(Points pts)
{
    auto in = std::make_shared<const Points>(std::move(pts));
    const Points &p = *in;
    uint64_t feat_bytes = uint64_t(p.n) * p.f * 4;
    uint64_t cent_bytes = uint64_t(p.k) * p.f * 4;
    uint64_t mem_bytes = uint64_t(p.n) * 4;

    Workload w;
    w.name = "kmeans";
    w.kernels = {kernels::buildKmeansSwap(), kernels::buildKmeansAssign()};
    w.buffers = {{feat_bytes, wordsOf(p.aos)},
                 {feat_bytes, {}},
                 {cent_bytes, {}},
                 {mem_bytes, wordsOf(std::vector<int32_t>(p.n, -1))},
                 {4, {}}};
    w.host = {{0u},
              wordsOf(initialCentroids(p)),
              {0u},
              std::vector<uint32_t>(p.n)};

    const uint32_t groups = (uint32_t)ceilDiv(p.n, 256);
    // One-time feature transpose.
    w.prologue = {dispatchStep(0, groups, 1, 1, {pw(p.n), pw(p.f)},
                               {{0, B_AOS}, {1, B_SOA}})};
    // The per-iteration program is identical every iteration (only
    // buffer contents change): record once, resubmit.
    w.body = {
        uploadStep(B_CENT, H_CENT),
        uploadStep(B_DELTA, H_ZERO),
        dispatchStep(1, groups, 1, 1, {pw(p.n), pw(p.f), pw(p.k)},
                     {{0, B_SOA}, {1, B_CENT}, {2, B_MEM}, {3, B_DELTA}}),
        readbackStep(B_DELTA, H_DELTA),
        readbackStep(B_MEM, H_MEM),
        hostStep([in](HostArrays &h) {
            std::vector<int32_t> mem = intsOf(h[H_MEM]);
            std::vector<float> cent = floatsOf(h[H_CENT]);
            updateCentroids(*in, mem, cent);
            h[H_CENT] = wordsOf(cent);
        }),
    };
    w.iterations = kMaxIters;
    w.converged = [](const HostArrays &h) {
        return static_cast<int32_t>(h[H_DELTA][0]) == 0;
    };
    w.preferred = SubmitStrategy::RecordOnce;
    w.validate = [in](const HostArrays &h) {
        return compareInts(intsOf(h[H_MEM]), referenceKmeans(*in));
    };
    return w;
}

class KmeansBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "kmeans"; }
    std::string fullName() const override { return "K-Means Clustering"; }
    std::string dwarf() const override { return "Dense Linear Algebra"; }
    std::string domain() const override { return "Data Mining"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // params: {points, features, clusters}.
        return {{"8K", {8192, 4, 5}},
                {"32K", {32768, 4, 5}},
                {"64K", {65536, 4, 5}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"2K", {2048, 4, 5}}, {"8K", {8192, 4, 5}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generatePoints(static_cast<uint32_t>(cfg.params[0]),
                           static_cast<uint32_t>(cfg.params[1]),
                           static_cast<uint32_t>(cfg.params[2]),
                           workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeKmeans()
{
    static KmeansBenchmark b;
    return &b;
}

} // namespace vcb::suite

#include "suite/vkhelp.h"

#include <cstring>

#include "common/logging.h"

namespace vcb::suite {

using namespace vcb::vkm;

VkContext
VkContext::create(const sim::DeviceSpec &spec)
{
    VkContext ctx;
    check(createInstance({"vcomputebench", true}, &ctx.instance),
          "createInstance");
    for (auto pd : enumeratePhysicalDevices(ctx.instance))
        if (&physicalDeviceSpec(pd) == &spec)
            ctx.phys = pd;
    VCB_ASSERT(ctx.phys.valid(), "%s does not expose Vulkan",
               spec.name.c_str());

    DeviceCreateInfo dci;
    dci.queueCreateInfos.push_back({0, spec.computeQueueCount});
    dci.queueCreateInfos.push_back({1, 1});
    check(createDevice(ctx.phys, dci, &ctx.device), "createDevice");
    for (uint32_t i = 0; i < spec.computeQueueCount; ++i)
        ctx.computeQueues.push_back(getDeviceQueue(ctx.device, 0, i));
    ctx.queue = ctx.computeQueues[0];
    ctx.transferQueue = getDeviceQueue(ctx.device, 1, 0);
    check(createCommandPool(ctx.device, {0}, &ctx.cmdPool),
          "createCommandPool");
    check(createDescriptorPool(ctx.device, {256}, &ctx.descPool),
          "createDescriptorPool");
    ctx.unified = spec.unifiedMemory;
    return ctx;
}

namespace {

vkm::Buffer
makeBuffer(VkContext &ctx, uint64_t bytes, uint32_t mem_flags)
{
    Buffer buf;
    BufferCreateInfo bci;
    bci.size = bytes;
    bci.usage = BufferUsageStorage | BufferUsageTransferSrc |
                BufferUsageTransferDst;
    check(createBuffer(ctx.device, bci, &buf), "createBuffer");

    MemoryRequirements reqs = getBufferMemoryRequirements(ctx.device, buf);
    auto props = getPhysicalDeviceMemoryProperties(ctx.phys);
    uint32_t type = findMemoryType(props, reqs.memoryTypeBits, mem_flags);
    VCB_ASSERT(type != UINT32_MAX, "no matching memory type");

    DeviceMemory mem;
    MemoryAllocateInfo mai;
    mai.allocationSize = reqs.size;
    mai.memoryTypeIndex = type;
    Result r = allocateMemory(ctx.device, mai, &mem);
    if (r == Result::ErrorOutOfDeviceMemory) {
        // Surface heap exhaustion as an invalid buffer so the caller
        // can skip the workload — same surface as ocl/cuda allocation.
        warn("vkm: out of device memory allocating %llu B on %s",
             (unsigned long long)bytes,
             physicalDeviceSpec(ctx.phys).name.c_str());
        return Buffer();
    }
    check(r, "allocateMemory");
    check(bindBufferMemory(ctx.device, buf, mem, 0), "bindBufferMemory");
    return buf;
}

} // namespace

vkm::Buffer
VkContext::createDeviceBuffer(uint64_t bytes)
{
    return makeBuffer(*this, bytes, MemoryDeviceLocal);
}

vkm::Buffer
VkContext::createHostBuffer(uint64_t bytes)
{
    return makeBuffer(*this, bytes,
                      MemoryHostVisible | MemoryHostCoherent);
}

uint32_t *
VkContext::map(vkm::Buffer buf)
{
    void *ptr = nullptr;
    check(mapMemory(device, bufferMemory(buf), 0, bufferSize(buf),
                    &ptr),
          "mapMemory");
    return static_cast<uint32_t *>(ptr);
}

bool
VkContext::upload(vkm::Buffer dst, const void *src, uint64_t bytes)
{
    if (unified) {
        // Unified memory: write through a map.
        void *ptr = nullptr;
        check(mapMemory(device, bufferMemory(dst), 0, bytes, &ptr),
              "mapMemory");
        std::memcpy(ptr, src, bytes);
        unmapMemory(device, bufferMemory(dst));
        return true;
    }
    // Discrete: staging buffer + copy on the transfer queue (the
    // paper's recommended use of transfer queues for large copies).
    Buffer staging = createHostBuffer(bytes);
    if (!staging.valid())
        return false;
    void *ptr = nullptr;
    check(mapMemory(device, bufferMemory(staging), 0, bytes, &ptr),
          "mapMemory");
    std::memcpy(ptr, src, bytes);
    unmapMemory(device, bufferMemory(staging));

    CommandBuffer cb;
    CommandPoolCreateInfo cpci;
    cpci.queueFamilyIndex = 1;
    CommandPool pool;
    check(createCommandPool(device, cpci, &pool), "createCommandPool");
    check(allocateCommandBuffer(device, pool, &cb),
          "allocateCommandBuffer");
    check(beginCommandBuffer(cb), "beginCommandBuffer");
    cmdCopyBuffer(cb, staging, dst, {0, 0, bytes});
    check(endCommandBuffer(cb), "endCommandBuffer");

    Fence fence;
    check(createFence(device, &fence), "createFence");
    SubmitInfo si;
    si.commandBuffers.push_back(cb);
    check(queueSubmit(transferQueue, {si}, fence), "queueSubmit");
    check(waitForFences(device, {fence}), "waitForFences");
    return true;
}

bool
VkContext::download(vkm::Buffer src, void *dst, uint64_t bytes)
{
    if (unified) {
        void *ptr = nullptr;
        check(mapMemory(device, bufferMemory(src), 0, bytes, &ptr),
              "mapMemory");
        std::memcpy(dst, ptr, bytes);
        unmapMemory(device, bufferMemory(src));
        return true;
    }
    Buffer staging = createHostBuffer(bytes);
    if (!staging.valid())
        return false;

    CommandBuffer cb;
    CommandPoolCreateInfo cpci;
    cpci.queueFamilyIndex = 1;
    CommandPool pool;
    check(createCommandPool(device, cpci, &pool), "createCommandPool");
    check(allocateCommandBuffer(device, pool, &cb),
          "allocateCommandBuffer");
    check(beginCommandBuffer(cb), "beginCommandBuffer");
    cmdCopyBuffer(cb, src, staging, {0, 0, bytes});
    check(endCommandBuffer(cb), "endCommandBuffer");

    Fence fence;
    check(createFence(device, &fence), "createFence");
    SubmitInfo si;
    si.commandBuffers.push_back(cb);
    check(queueSubmit(transferQueue, {si}, fence), "queueSubmit");
    check(waitForFences(device, {fence}), "waitForFences");

    void *ptr = nullptr;
    check(mapMemory(device, bufferMemory(staging), 0, bytes, &ptr),
          "mapMemory");
    std::memcpy(dst, ptr, bytes);
    unmapMemory(device, bufferMemory(staging));
    return true;
}

double
VkContext::now() const
{
    return hostNowNs(device);
}

std::string
createVkKernel(VkContext &ctx, const spirv::Module &m, VkKernel *out)
{
    VkKernel k;
    ShaderModuleCreateInfo smci;
    smci.code = m.serialize();
    Result r = createShaderModule(ctx.device, smci, &k.module);
    if (r != Result::Success)
        return strprintf("shader module rejected (%s)", resultName(r));

    DescriptorSetLayoutCreateInfo dslci;
    for (const auto &bnd : m.bindings)
        dslci.bindings.push_back({bnd.binding});
    r = createDescriptorSetLayout(ctx.device, dslci, &k.dsl);
    if (r != Result::Success)
        return strprintf("descriptor layout rejected (%s)",
                         resultName(r));

    PipelineLayoutCreateInfo plci;
    plci.setLayouts.push_back(k.dsl);
    if (m.pushWords > 0)
        plci.pushConstantRanges.push_back({0, m.pushWords * 4});
    r = createPipelineLayout(ctx.device, plci, &k.layout);
    if (r != Result::Success)
        return strprintf("pipeline layout rejected (%s)", resultName(r));

    r = createComputePipeline(ctx.device, {k.module, k.layout},
                              &k.pipeline);
    if (r != Result::Success)
        return strprintf("pipeline creation failed for '%s' (%s)",
                         m.name.c_str(), resultName(r));
    *out = k;
    return "";
}

vkm::DescriptorSet
makeDescriptorSet(VkContext &ctx, const VkKernel &k,
                  const std::vector<std::pair<uint32_t, vkm::Buffer>>
                      &bindings)
{
    DescriptorSet set;
    check(allocateDescriptorSet(ctx.device, ctx.descPool, k.dsl, &set),
          "allocateDescriptorSet");
    std::vector<WriteDescriptorSet> writes;
    for (const auto &[binding, buffer] : bindings)
        writes.push_back({set, binding, buffer});
    updateDescriptorSets(ctx.device, writes);
    return set;
}

} // namespace vcb::suite

#include "suite/benchmark.h"

#include "common/logging.h"

namespace vcb::suite {

// Defined one per bench_*.cc translation unit.
const Benchmark *makeBackprop();
const Benchmark *makeBfs();
const Benchmark *makeCfd();
const Benchmark *makeGaussian();
const Benchmark *makeHotspot();
const Benchmark *makeLud();
const Benchmark *makeNn();
const Benchmark *makeNw();
const Benchmark *makePathfinder();
const Benchmark *makeSrad();
const Benchmark *makeKmeans();
const Benchmark *makeStreamcluster();

const std::vector<const Benchmark *> &
registry()
{
    // The paper's nine families in Table-I order, then the suite
    // expansion (srad, kmeans, streamcluster).
    static const std::vector<const Benchmark *> benches = {
        makeBackprop(), makeBfs(),        makeCfd(),
        makeGaussian(), makeHotspot(),    makeLud(),
        makeNn(),       makeNw(),         makePathfinder(),
        makeSrad(),     makeKmeans(),     makeStreamcluster(),
    };
    return benches;
}

RunResult
Benchmark::run(const sim::DeviceSpec &dev, sim::Api api,
               const SizeConfig &cfg, const WorkloadOptions &opts) const
{
    return runWorkload(workload(cfg), dev, api, opts);
}

const Benchmark &
byName(const std::string &name)
{
    for (const Benchmark *b : registry())
        if (b->name() == name)
            return *b;
    fatal("no benchmark named '%s'", name.c_str());
}

uint64_t
workloadSeed(const std::string &bench_name, const SizeConfig &cfg)
{
    // FNV-1a over name + parameters: stable across runs and APIs.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (char c : bench_name) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    for (uint64_t p : cfg.params)
        mix(p);
    return h;
}

} // namespace vcb::suite

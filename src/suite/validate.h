/**
 * @file
 * Output validation helpers (the paper validates every VCompute
 * benchmark against the CUDA/OpenCL outputs; we validate all three
 * backends against CPU references).
 */

#ifndef VCB_SUITE_VALIDATE_H
#define VCB_SUITE_VALIDATE_H

#include <cstdint>
#include <string>
#include <vector>

namespace vcb::suite {

/**
 * Element-wise float comparison with relative+absolute tolerance.
 * @return empty string on success, else a description of the first
 *         mismatch.
 */
std::string compareFloats(const std::vector<float> &got,
                          const std::vector<float> &expect,
                          double rel_tol = 1e-4,
                          double abs_tol = 1e-5);

/** Exact element-wise integer comparison. */
std::string compareInts(const std::vector<int32_t> &got,
                        const std::vector<int32_t> &expect);

} // namespace vcb::suite

#endif // VCB_SUITE_VALIDATE_H

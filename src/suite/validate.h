/**
 * @file
 * Output validation helpers (the paper validates every VCompute
 * benchmark against the CUDA/OpenCL outputs; we validate all three
 * backends against CPU references).
 */

#ifndef VCB_SUITE_VALIDATE_H
#define VCB_SUITE_VALIDATE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/microop.h"
#include "spirv/module.h"

namespace vcb::suite {

/**
 * Element-wise float comparison with relative+absolute tolerance.
 * @return empty string on success, else a description of the first
 *         mismatch.
 */
std::string compareFloats(const std::vector<float> &got,
                          const std::vector<float> &expect,
                          double rel_tol = 1e-4,
                          double abs_tol = 1e-5);

/** Exact element-wise integer comparison. */
std::string compareInts(const std::vector<int32_t> &got,
                        const std::vector<int32_t> &expect);

// ---------------------------------------------------------------------------
// Golden-reference validation harness.
//
// A GoldenScenario is a deterministic, host-driven execution of one or
// more suite kernels on seeded inputs, together with a from-scratch CPU
// reference of the final buffer contents (the paper's Section-IV
// methodology: every benchmark output is validated against a known-good
// result).  Scenarios are replayed through the per-API driver-compile +
// execution-engine path, so each of the simulated Vulkan / OpenCL /
// CUDA backends can be checked against the reference and against each
// other.
// ---------------------------------------------------------------------------

/** One dispatch of a scenario's schedule. */
struct GoldenStep
{
    /** Index into GoldenScenario::modules. */
    size_t module = 0;
    /** Workgroup grid. */
    uint32_t groups[3] = {1, 1, 1};
    /** Push-constant words for this dispatch. */
    std::vector<uint32_t> push;
    /** Kernel binding number -> scenario buffer index. */
    std::vector<size_t> buffers;
};

/** Expected final contents of one scenario buffer. */
struct GoldenCheck
{
    size_t buffer = 0;
    /** F32 compares with tolerance; I32/U32 compare exactly. */
    spirv::ElemType elem = spirv::ElemType::F32;
    /** CPU-reference words. */
    std::vector<uint32_t> expect;
    /** Tolerances for F32 checks. */
    double relTol = 1e-4;
    double absTol = 1e-5;
};

/** A full scenario: kernels + seeded inputs + schedule + reference. */
struct GoldenScenario
{
    /** Scenario name, e.g. "gaussian". */
    std::string name;
    /** The kernel modules the schedule dispatches. */
    std::vector<spirv::Module> modules;
    /** Initial buffer contents (words). */
    std::vector<std::vector<uint32_t>> buffers;
    /** Dispatches, in order (host-driven dependency chain). */
    std::vector<GoldenStep> steps;
    /** Final-state expectations. */
    std::vector<GoldenCheck> checks;
};

/** Result of replaying a scenario on one simulated API path. */
struct GoldenOutcome
{
    /** False when a driver refused a kernel (unavailable API, broken
     *  kernel, limit violation) — skipReason says why. */
    bool ran = false;
    std::string skipReason;
    /** Empty when every check matched the CPU reference. */
    std::string error;
    /** Final contents of each checked buffer, in check order (for
     *  cross-API agreement tests). */
    std::vector<std::vector<uint32_t>> checkedBuffers;
    /** Per-step simulation statistics and summed simulated kernel
     *  time, in step order — the tier-equivalence tests demand these
     *  stay bit-identical under every forced executor tier, block
     *  width and superop setting. */
    std::vector<sim::DispatchStats> stepStats;
    double kernelNs = 0;
};

/**
 * All golden scenarios.  Together they cover every kernel in
 * src/kernels/ with at least one seeded-input / CPU-reference case —
 * the coverage test in tests/test_golden.cc checks the scenario set
 * against kernels::kernelRegistry(), so the counts stay self-
 * describing as the suite grows.
 */
const std::vector<GoldenScenario> &goldenScenarios();

/** Look up a scenario by name; fatal when unknown. */
const GoldenScenario &goldenScenarioByName(const std::string &name);

/**
 * Replay a scenario on `dev` under `api`: driver-compile every module,
 * execute the schedule on the execution engine, and compare the final
 * buffers against the CPU reference.
 *
 * @param lower when non-null, every compiled kernel is re-lowered with
 *        these options before execution — the fused-vs-unfused
 *        bit-equality tests replay each scenario under
 *        sim::LowerOptions::noFusion() and demand identical
 *        checkedBuffers.
 */
GoldenOutcome runGoldenScenario(const GoldenScenario &s,
                                const sim::DeviceSpec &dev, sim::Api api,
                                const sim::LowerOptions *lower = nullptr);

} // namespace vcb::suite

#endif // VCB_SUITE_VALIDATE_H

#include "suite/workload.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>

#include "common/logging.h"
#include "cuda/cuda_rt.h"
#include "ocl/ocl.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

const char *
strategyName(SubmitStrategy s)
{
    switch (s) {
      case SubmitStrategy::RecordOnce:
        return "record-once";
      case SubmitStrategy::ReRecord:
        return "re-record";
      case SubmitStrategy::Batched:
        return "batched";
    }
    return "?";
}

PushWord
pw(uint32_t v)
{
    PushWord p;
    p.value = v;
    return p;
}

PushWord
pwF(float v)
{
    return pw(std::bit_cast<uint32_t>(v));
}

PushWord
pwHost(size_t array, size_t word)
{
    PushWord p;
    p.hostArray = array;
    p.hostWord = word;
    return p;
}

WorkloadStep
dispatchStep(size_t kernel, uint32_t gx, uint32_t gy, uint32_t gz,
             std::vector<PushWord> push,
             std::vector<std::pair<uint32_t, size_t>> bindings)
{
    WorkloadStep s;
    s.kind = WorkloadStep::Kind::Dispatch;
    s.kernel = kernel;
    s.groups[0] = gx;
    s.groups[1] = gy;
    s.groups[2] = gz;
    s.push = std::move(push);
    s.bindings = std::move(bindings);
    return s;
}

WorkloadStep
barrierStep()
{
    WorkloadStep s;
    s.kind = WorkloadStep::Kind::Barrier;
    return s;
}

WorkloadStep
syncStep()
{
    WorkloadStep s;
    s.kind = WorkloadStep::Kind::Sync;
    return s;
}

WorkloadStep
uploadStep(size_t buffer, size_t host_array)
{
    WorkloadStep s;
    s.kind = WorkloadStep::Kind::Upload;
    s.buffer = buffer;
    s.hostArray = host_array;
    return s;
}

WorkloadStep
uploadIfStep(size_t buffer, size_t host_array, size_t cond_array,
             size_t cond_word)
{
    WorkloadStep s = uploadStep(buffer, host_array);
    s.condArray = cond_array;
    s.condWord = cond_word;
    return s;
}

WorkloadStep
readbackStep(size_t buffer, size_t host_array)
{
    WorkloadStep s;
    s.kind = WorkloadStep::Kind::Readback;
    s.buffer = buffer;
    s.hostArray = host_array;
    return s;
}

WorkloadStep
hostStep(std::function<void(HostArrays &)> fn)
{
    WorkloadStep s;
    s.kind = WorkloadStep::Kind::HostCall;
    s.fn = std::move(fn);
    return s;
}

WorkloadStep
withDeps(WorkloadStep s, std::vector<size_t> deps)
{
    s.deps = std::move(deps);
    return s;
}

namespace {

using Kind = WorkloadStep::Kind;

bool
isDeviceStep(const WorkloadStep &s)
{
    return s.kind == Kind::Dispatch || s.kind == Kind::Barrier;
}

uint32_t
resolvePush(const PushWord &p, const HostArrays &host)
{
    if (p.immediate())
        return p.value;
    VCB_ASSERT(p.hostArray < host.size() &&
                   p.hostWord < host[p.hostArray].size(),
               "push word references host[%zu][%zu] out of range",
               p.hostArray, p.hostWord);
    return host[p.hostArray][p.hostWord];
}

bool
uploadEnabled(const WorkloadStep &s, const HostArrays &host)
{
    if (s.condArray == SIZE_MAX)
        return true;
    return host[s.condArray][s.condWord] != 0;
}

const std::vector<WorkloadStep> &
bodyOf(const Workload &w, uint32_t it,
       std::vector<WorkloadStep> &scratch)
{
    if (!w.bodyFor)
        return w.body;
    scratch = w.bodyFor(it);
    return scratch;
}

bool
pushesImmediate(const std::vector<WorkloadStep> &steps)
{
    for (const auto &s : steps)
        if (s.kind == Kind::Dispatch)
            for (const auto &p : s.push)
                if (!p.immediate())
                    return false;
    return true;
}

bool
pureDevice(const std::vector<WorkloadStep> &steps)
{
    for (const auto &s : steps)
        if (!isDeviceStep(s) && s.kind != Kind::Sync)
            return false;
    return true;
}

void
checkWorkload(const Workload &w)
{
    VCB_ASSERT(!(w.converged && w.bodyFor),
               "%s: converge-until workloads must use the uniform body",
               w.name.c_str());
    VCB_ASSERT(w.bodyFor == nullptr || w.iterations != UINT32_MAX,
               "%s: per-iteration bodies need a finite trip count",
               w.name.c_str());
    auto checkSteps = [&](const std::vector<WorkloadStep> &steps,
                          const char *which, bool dag_timed) {
        for (size_t i = 0; i < steps.size(); ++i) {
            for (size_t d : steps[i].deps)
                VCB_ASSERT(d < i,
                           "%s: %s step %zu depends on step %zu — deps "
                           "must point backwards (list order is the "
                           "topological order)",
                           w.name.c_str(), which, i, d);
            if (dag_timed)
                VCB_ASSERT(steps[i].kind != Kind::Barrier,
                           "%s: dag %s expresses ordering via deps, "
                           "not barrier steps",
                           w.name.c_str(), which);
        }
    };
    checkSteps(w.prologue, "prologue", w.dag);
    checkSteps(w.body, "body", w.dag);
    checkSteps(w.epilogue, "epilogue", false);
    VCB_ASSERT(!(w.dag && w.bodyFor),
               "%s: dag workloads need a uniform body", w.name.c_str());
}

/** Validation epilogue shared by the three runners. */
void
finishRun(const Workload &w, const HostArrays &host, RunResult &res)
{
    res.validationError = w.validate ? w.validate(host) : "";
    res.validated = res.validationError.empty();
    res.ok = true;
}

} // namespace

namespace {

/** Applicability over pre-materialized per-iteration bodies (`bodies`
 *  empty when the workload uses the uniform `body`), so callers that
 *  already materialized them don't pay bodyFor again. */
bool
strategyApplicableOver(
    const Workload &w, SubmitStrategy s,
    const std::vector<std::vector<WorkloadStep>> &bodies)
{
    switch (s) {
      case SubmitStrategy::ReRecord:
        return true;
      case SubmitStrategy::RecordOnce:
        // The same recorded commands must be valid every iteration:
        // one uniform body whose push values never move.
        return !w.bodyFor && pushesImmediate(w.body);
      case SubmitStrategy::Batched: {
        // The host cannot intervene inside a batch: fixed trip count,
        // no host steps, no host-resolved pushes.
        if (w.converged)
            return false;
        if (!w.bodyFor)
            return pureDevice(w.body) && pushesImmediate(w.body);
        for (const auto &b : bodies)
            if (!pureDevice(b) || !pushesImmediate(b))
                return false;
        return true;
      }
    }
    return false;
}

std::vector<std::vector<WorkloadStep>>
materializeBodies(const Workload &w)
{
    std::vector<std::vector<WorkloadStep>> bodies;
    if (w.bodyFor)
        for (uint32_t it = 0; it < w.iterations; ++it)
            bodies.push_back(w.bodyFor(it));
    return bodies;
}

} // namespace

bool
strategyApplicable(const Workload &w, SubmitStrategy s)
{
    // Only the Batched check over a per-iteration body needs the
    // materialized step lists.
    if (s == SubmitStrategy::Batched && w.bodyFor && !w.converged)
        return strategyApplicableOver(w, s, materializeBodies(w));
    return strategyApplicableOver(w, s, {});
}

std::vector<SubmitStrategy>
applicableStrategies(const Workload &w)
{
    std::vector<SubmitStrategy> out;
    for (int i = 0; i < submitStrategyCount; ++i) {
        auto s = static_cast<SubmitStrategy>(i);
        if (strategyApplicable(w, s))
            out.push_back(s);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Vulkan runner
// ---------------------------------------------------------------------------

namespace {

/** Per-run Vulkan execution state: context, compiled kernels, buffers
 *  (device-local or persistently mapped host-visible), the descriptor
 *  set cache, and the streaming recorder used by the ReRecord path,
 *  prologues and epilogues. */
struct VkRun
{
    const Workload &w;
    VkContext ctx;
    std::vector<VkKernel> kernels;
    std::vector<vkm::Buffer> buffers;
    std::vector<uint32_t *> maps; ///< non-null for hostVisible buffers
    HostArrays host;
    RunResult &res;

    vkm::Fence fence;
    vkm::CommandBuffer streamCb;
    bool streaming = false;
    uint64_t streamDispatches = 0;

    using SetKey =
        std::pair<size_t, std::vector<std::pair<uint32_t, size_t>>>;
    std::map<SetKey, vkm::DescriptorSet> sets;

    /** Redundant-state elision within one command-buffer recording:
     *  the hand-written drivers hoisted pipeline binds and unchanged
     *  push constants out of their loops (pathfinder binds its one
     *  pipeline once for all rows; hotspot pushes its constants once
     *  for all steps), and on drivers where binds are expensive (the
     *  Snapdragon push-constant quirk) that is what preserves the
     *  command-buffer win.  Reset at every begin. */
    vkm::Pipeline lastPipeline;
    vkm::DescriptorSet lastSet;
    vkm::PipelineLayout lastPushLayout;
    std::vector<uint32_t> lastPushWords;

    void resetRecordState()
    {
        lastPipeline.reset();
        lastSet.reset();
        lastPushLayout.reset();
        lastPushWords.clear();
    }

    VkRun(const Workload &wl, const sim::DeviceSpec &dev, RunResult &r)
        : w(wl), ctx(VkContext::create(dev)), host(wl.host), res(r)
    {
    }

    /** Compile every kernel; non-empty return = skip reason. */
    std::string compileKernels()
    {
        kernels.resize(w.kernels.size());
        for (size_t i = 0; i < w.kernels.size(); ++i) {
            std::string err =
                createVkKernel(ctx, w.kernels[i], &kernels[i]);
            if (!err.empty())
                return err;
        }
        return "";
    }

    /** Create and initialise every buffer; non-empty = skip reason
     *  (heap exhaustion surfaces here, not as a fatal). */
    std::string createBuffers()
    {
        maps.assign(w.buffers.size(), nullptr);
        for (size_t i = 0; i < w.buffers.size(); ++i) {
            const WorkloadBuffer &bd = w.buffers[i];
            if (bd.hostVisible) {
                buffers.push_back(ctx.createHostBuffer(bd.bytes));
            } else {
                buffers.push_back(ctx.createDeviceBuffer(bd.bytes));
            }
            if (!buffers.back().valid())
                return strprintf("out of device memory (buffer %zu, "
                                 "%llu B)",
                                 i, (unsigned long long)bd.bytes);
            if (bd.hostVisible)
                maps[i] = ctx.map(buffers.back());
            if (!bd.init.empty()) {
                if (maps[i])
                    std::memcpy(maps[i], bd.init.data(),
                                bd.init.size() * 4);
                else if (!ctx.upload(buffers[i], bd.init.data(),
                                     bd.init.size() * 4))
                    return strprintf("out of host-visible memory "
                                     "staging buffer %zu",
                                     i);
            }
        }
        vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
        vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool,
                                              &streamCb),
                   "allocateCommandBuffer");
        return "";
    }

    vkm::DescriptorSet setFor(const WorkloadStep &s)
    {
        SetKey key{s.kernel, s.bindings};
        auto it = sets.find(key);
        if (it != sets.end())
            return it->second;
        std::vector<std::pair<uint32_t, vkm::Buffer>> binds;
        for (const auto &[binding, buf] : s.bindings)
            binds.push_back({binding, buffers[buf]});
        vkm::DescriptorSet set =
            makeDescriptorSet(ctx, kernels[s.kernel], binds);
        sets.emplace(std::move(key), set);
        return set;
    }

    /** Pre-create every descriptor set a step list will need (before
     *  the timed region, matching the hand-written drivers). */
    void prescanSets(const std::vector<WorkloadStep> &steps)
    {
        for (const auto &s : steps)
            if (s.kind == Kind::Dispatch)
                setFor(s);
    }

    void recordDispatch(vkm::CommandBuffer cb, const WorkloadStep &s)
    {
        const VkKernel &k = kernels[s.kernel];
        if (!(lastPipeline == k.pipeline)) {
            vkm::cmdBindPipeline(cb, k.pipeline);
            lastPipeline = k.pipeline;
        }
        vkm::DescriptorSet set = setFor(s);
        if (!(lastSet == set)) {
            vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
            lastSet = set;
        }
        if (!s.push.empty()) {
            std::vector<uint32_t> words(s.push.size());
            for (size_t i = 0; i < s.push.size(); ++i)
                words[i] = resolvePush(s.push[i], host);
            if (!(lastPushLayout == k.layout) ||
                words != lastPushWords) {
                vkm::cmdPushConstants(cb, k.layout, 0,
                                      (uint32_t)words.size() * 4,
                                      words.data());
                lastPushLayout = k.layout;
                lastPushWords = words;
            }
        }
        vkm::cmdDispatch(cb, s.groups[0], s.groups[1], s.groups[2]);
    }

    void submitWait(vkm::CommandBuffer cb)
    {
        vkm::SubmitInfo si;
        si.commandBuffers.push_back(cb);
        vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(ctx.device, {fence}),
                   "waitForFences");
        vkm::check(vkm::resetFences(ctx.device, {fence}), "resetFences");
    }

    /** Submit + wait whatever the streaming recorder holds. */
    void flushStream()
    {
        if (!streaming)
            return;
        vkm::check(vkm::endCommandBuffer(streamCb), "endCommandBuffer");
        submitWait(streamCb);
        res.launches += streamDispatches;
        streaming = false;
        streamDispatches = 0;
    }

    /** Execute one host-side step (device work already flushed). */
    void execHostStep(const WorkloadStep &s)
    {
        switch (s.kind) {
          case Kind::Sync:
            break; // the flush preceding this call was the sync
          case Kind::Upload: {
            if (!uploadEnabled(s, host))
                break;
            const auto &src = host[s.hostArray];
            if (maps[s.buffer])
                std::memcpy(maps[s.buffer], src.data(), src.size() * 4);
            else
                ctx.upload(buffers[s.buffer], src.data(),
                           src.size() * 4);
            break;
          }
          case Kind::Readback: {
            auto &dst = host[s.hostArray];
            if (maps[s.buffer])
                std::memcpy(dst.data(), maps[s.buffer], dst.size() * 4);
            else
                ctx.download(buffers[s.buffer], dst.data(),
                             dst.size() * 4);
            break;
          }
          case Kind::HostCall:
            s.fn(host);
            break;
          default:
            fatal("not a host step");
        }
    }

    /** Streaming executor: record device runs as encountered, flush at
     *  every host step.  Used for prologues, epilogues and the whole
     *  body under ReRecord. */
    void execStream(const std::vector<WorkloadStep> &steps)
    {
        for (const auto &s : steps) {
            switch (s.kind) {
              case Kind::Dispatch:
                if (!streaming) {
                    vkm::check(vkm::resetCommandBuffer(streamCb),
                               "resetCommandBuffer");
                    vkm::check(vkm::beginCommandBuffer(streamCb),
                               "beginCommandBuffer");
                    resetRecordState();
                    streaming = true;
                }
                recordDispatch(streamCb, s);
                ++streamDispatches;
                break;
              case Kind::Barrier:
                if (streaming)
                    vkm::cmdPipelineBarrier(streamCb);
                break;
              default:
                flushStream();
                execHostStep(s);
                break;
            }
        }
    }
};

/** A pre-recorded command buffer plus its dispatch count. */
struct Segment
{
    vkm::CommandBuffer cb;
    uint64_t dispatches = 0;
};

/** Record the device runs of a uniform body into one command buffer
 *  per segment (a segment = a maximal run of dispatch/barrier steps). */
std::vector<Segment>
recordSegments(VkRun &run, const std::vector<WorkloadStep> &steps)
{
    std::vector<Segment> segs;
    bool open = false;
    for (const auto &s : steps) {
        if (s.kind == Kind::Dispatch) {
            if (!open) {
                Segment seg;
                vkm::check(vkm::allocateCommandBuffer(
                               run.ctx.device, run.ctx.cmdPool, &seg.cb),
                           "allocateCommandBuffer");
                vkm::check(vkm::beginCommandBuffer(seg.cb),
                           "beginCommandBuffer");
                run.resetRecordState();
                segs.push_back(seg);
                open = true;
            }
            run.recordDispatch(segs.back().cb, s);
            ++segs.back().dispatches;
        } else if (s.kind == Kind::Barrier) {
            if (open)
                vkm::cmdPipelineBarrier(segs.back().cb);
        } else {
            if (open)
                vkm::check(vkm::endCommandBuffer(segs.back().cb),
                           "endCommandBuffer");
            open = false;
        }
    }
    if (open)
        vkm::check(vkm::endCommandBuffer(segs.back().cb),
                   "endCommandBuffer");
    return segs;
}

/** Execute one iteration of a uniform body against its pre-recorded
 *  segments: resubmit each segment where its device run sits, execute
 *  host steps in between. */
void
execRecordOnceIteration(VkRun &run, const std::vector<WorkloadStep> &steps,
                        const std::vector<Segment> &segs)
{
    size_t seg = 0;
    bool in_run = false;
    for (const auto &s : steps) {
        if (isDeviceStep(s)) {
            if (!in_run) {
                VCB_ASSERT(seg < segs.size(), "segment underflow");
                run.submitWait(segs[seg].cb);
                run.res.launches += segs[seg].dispatches;
                ++seg;
                in_run = true;
            }
        } else {
            in_run = false;
            run.execHostStep(s);
        }
    }
}

/** Record the whole fixed-trip-count loop into batch command buffers
 *  of `batch_n` iterations each (0 = all in one), with a barrier at
 *  every iteration boundary.  `bodies` holds the pre-materialized
 *  per-iteration step lists (empty for a uniform body). */
std::vector<Segment>
recordBatches(VkRun &run, const Workload &w,
              const std::vector<std::vector<WorkloadStep>> &bodies,
              uint32_t batch_n)
{
    std::vector<Segment> batches;
    if (batch_n == 0)
        batch_n = w.iterations;
    bool open = false;
    bool last_was_barrier = true;
    uint32_t in_batch = 0;
    auto close = [&]() {
        if (open)
            vkm::check(vkm::endCommandBuffer(batches.back().cb),
                       "endCommandBuffer");
        open = false;
        in_batch = 0;
    };
    for (uint32_t it = 0; it < w.iterations; ++it) {
        if (!open) {
            Segment seg;
            vkm::check(vkm::allocateCommandBuffer(
                           run.ctx.device, run.ctx.cmdPool, &seg.cb),
                       "allocateCommandBuffer");
            vkm::check(vkm::beginCommandBuffer(seg.cb),
                       "beginCommandBuffer");
            run.resetRecordState();
            batches.push_back(seg);
            open = true;
            last_was_barrier = true;
        }
        for (const auto &s : w.bodyFor ? bodies[it] : w.body) {
            if (s.kind == Kind::Dispatch) {
                run.recordDispatch(batches.back().cb, s);
                ++batches.back().dispatches;
                last_was_barrier = false;
            } else if (s.kind == Kind::Barrier ||
                       s.kind == Kind::Sync) {
                // In-batch Sync degenerates to an execution barrier;
                // no doubling when the body already ends with one.
                if (!last_was_barrier)
                    vkm::cmdPipelineBarrier(batches.back().cb);
                last_was_barrier = true;
            }
        }
        // Order the next iteration behind this one.
        if (!last_was_barrier && it + 1 < w.iterations &&
            in_batch + 1 < batch_n) {
            vkm::cmdPipelineBarrier(batches.back().cb);
            last_was_barrier = true;
        }
        if (++in_batch == batch_n)
            close();
    }
    close();
    return batches;
}

// ---------------------------------------------------------------------------
// Multi-queue DAG scheduler
// ---------------------------------------------------------------------------

/** One dispatch of a dag step list, placed on a compute queue, with
 *  its own command buffer and fence and the cross-queue semaphore
 *  edges it waits on / signals. */
struct DagNode
{
    size_t step = 0;    ///< index into the step list
    uint32_t queue = 0; ///< compute-queue index
    std::vector<size_t> waits;   ///< edge indices (into DagPlan::edges)
    std::vector<size_t> signals; ///< edge indices
    vkm::CommandBuffer cb;
    vkm::Fence fence;
};

/** The static schedule of one dag step list: computed once (dag bodies
 *  are uniform), replayed every iteration. */
struct DagPlan
{
    std::vector<DagNode> nodes;  ///< one per Dispatch step, list order
    std::vector<size_t> nodeOf;  ///< step index -> node index / SIZE_MAX
    std::vector<vkm::Semaphore> edges; ///< one per cross-queue edge
};

/**
 * Assign each dispatch to a queue and materialize the cross-queue
 * semaphore edges.
 *
 * Placement: a dispatch inherits the queue of its first
 * dispatch-dependency (keeping a dependent chain on one queue, so the
 * chain's spine needs no semaphores — in-queue order covers it); roots
 * round-robin across the `queues` available queues.  Every remaining
 * dependency that crosses queues gets a dedicated binary semaphore,
 * signaled by the producer's submit and consumed by the consumer's —
 * consumption (vkm clears `signaled` on wait) is what lets the same
 * semaphore serve every iteration.
 */
DagPlan
buildDagPlan(VkRun &run, const std::vector<WorkloadStep> &steps,
             uint32_t queues)
{
    DagPlan plan;
    plan.nodeOf.assign(steps.size(), SIZE_MAX);
    uint32_t rr = 0;
    for (size_t i = 0; i < steps.size(); ++i) {
        if (steps[i].kind != Kind::Dispatch)
            continue;
        DagNode node;
        node.step = i;
        node.queue = UINT32_MAX;
        for (size_t d : steps[i].deps)
            if (plan.nodeOf[d] != SIZE_MAX) {
                node.queue = plan.nodes[plan.nodeOf[d]].queue;
                break;
            }
        if (node.queue == UINT32_MAX)
            node.queue = rr++ % queues;
        vkm::check(vkm::allocateCommandBuffer(run.ctx.device,
                                              run.ctx.cmdPool, &node.cb),
                   "allocateCommandBuffer");
        vkm::check(vkm::createFence(run.ctx.device, &node.fence),
                   "createFence");
        plan.nodeOf[i] = plan.nodes.size();
        plan.nodes.push_back(std::move(node));
        DagNode &self = plan.nodes.back();
        for (size_t d : steps[i].deps) {
            size_t pn = plan.nodeOf[d];
            if (pn == SIZE_MAX || plan.nodes[pn].queue == self.queue)
                continue;
            vkm::Semaphore sem;
            vkm::check(vkm::createSemaphore(run.ctx.device, &sem),
                       "createSemaphore");
            plan.nodes[pn].signals.push_back(plan.edges.size());
            self.waits.push_back(plan.edges.size());
            plan.edges.push_back(sem);
        }
    }
    return plan;
}

/** (Re-)record one node's self-contained command buffer.  Recording
 *  advances no simulated clock, so RecordOnce and ReRecord differ only
 *  in when this runs, never in the timeline. */
void
recordDagNode(VkRun &run, DagNode &node, const WorkloadStep &s)
{
    vkm::check(vkm::resetCommandBuffer(node.cb), "resetCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(node.cb), "beginCommandBuffer");
    run.resetRecordState();
    run.recordDispatch(node.cb, s);
    vkm::check(vkm::endCommandBuffer(node.cb), "endCommandBuffer");
}

/**
 * Execute one pass over a dag step list against its plan: dispatches
 * submit to their assigned queue (one submit per node, fence always
 * attached), host steps first fence-wait the dispatches they depend on
 * (all submitted so far when they declare none — conservative), and
 * the pass ends with a single join over every fence so the next
 * iteration reuses them.  Submission happens in list order, so the
 * functional (eager) results are bit-identical to the serial path by
 * construction — queue count only moves the simulated timeline.
 */
void
execDag(VkRun &run, const std::vector<WorkloadStep> &steps,
        DagPlan &plan, bool rerecord)
{
    std::vector<bool> submitted(plan.nodes.size(), false);
    for (size_t i = 0; i < steps.size(); ++i) {
        const WorkloadStep &s = steps[i];
        if (s.kind == Kind::Dispatch) {
            DagNode &node = plan.nodes[plan.nodeOf[i]];
            if (rerecord)
                recordDagNode(run, node, s);
            vkm::SubmitInfo si;
            for (size_t e : node.waits)
                si.waitSemaphores.push_back(plan.edges[e]);
            si.commandBuffers.push_back(node.cb);
            for (size_t e : node.signals)
                si.signalSemaphores.push_back(plan.edges[e]);
            vkm::check(vkm::queueSubmit(run.ctx.computeQueues[node.queue],
                                        {si}, node.fence),
                       "queueSubmit");
            submitted[plan.nodeOf[i]] = true;
            ++run.res.launches;
        } else {
            std::vector<vkm::Fence> wait;
            if (!s.deps.empty()) {
                for (size_t d : s.deps) {
                    size_t n = plan.nodeOf[d];
                    if (n != SIZE_MAX && submitted[n])
                        wait.push_back(plan.nodes[n].fence);
                }
            } else {
                for (size_t n = 0; n < plan.nodes.size(); ++n)
                    if (submitted[n])
                        wait.push_back(plan.nodes[n].fence);
            }
            if (!wait.empty())
                vkm::check(vkm::waitForFences(run.ctx.device, wait),
                           "waitForFences");
            run.execHostStep(s);
        }
    }
    std::vector<vkm::Fence> all;
    for (size_t n = 0; n < plan.nodes.size(); ++n)
        if (submitted[n])
            all.push_back(plan.nodes[n].fence);
    if (!all.empty()) {
        vkm::check(vkm::waitForFences(run.ctx.device, all),
                   "waitForFences");
        vkm::check(vkm::resetFences(run.ctx.device, all), "resetFences");
    }
}

} // namespace

RunResult
runWorkloadVulkan(const Workload &w, const sim::DeviceSpec &dev,
                  const WorkloadOptions &opts, HostArrays *host_out)
{
    checkWorkload(w);
    SubmitStrategy strat = opts.strategy.value_or(w.preferred);
    // Materialize per-iteration bodies once; the applicability check,
    // descriptor prescan, recording and the ReRecord loop all reuse
    // them.
    std::vector<std::vector<WorkloadStep>> bodies =
        materializeBodies(w);
    VCB_ASSERT(strategyApplicableOver(w, strat, bodies),
               "%s: strategy %s not applicable", w.name.c_str(),
               strategyName(strat));
    const bool multiq = opts.queueCount > 0;
    if (multiq) {
        VCB_ASSERT(w.dag, "%s: multi-queue mode needs a dag workload",
                   w.name.c_str());
        VCB_ASSERT(strat != SubmitStrategy::Batched,
                   "%s: batched submits whole iterations at once — "
                   "nothing is left to spread across queues",
                   w.name.c_str());
    }

    RunResult res;
    res.strategy = strategyName(strat);
    VkRun run(w, dev, res);
    res.skipReason = run.compileKernels();
    if (!res.skipReason.empty())
        return res;
    const uint32_t nq =
        multiq ? std::min<uint32_t>(
                     opts.queueCount,
                     (uint32_t)run.ctx.computeQueues.size())
               : 1;
    res.queuesUsed = nq;

    double t_total0 = run.ctx.now();
    res.skipReason = run.createBuffers();
    if (!res.skipReason.empty())
        return res;

    // Pre-create descriptor sets and pre-record what the strategy
    // allows, all outside the timed region (as the hand-written
    // drivers did).
    run.prescanSets(w.prologue);
    run.prescanSets(w.epilogue);
    if (w.bodyFor) {
        for (const auto &b : bodies)
            run.prescanSets(b);
    } else {
        run.prescanSets(w.body);
    }
    std::vector<Segment> prerec;
    DagPlan proPlan, bodyPlan;
    if (multiq) {
        proPlan = buildDagPlan(run, w.prologue, nq);
        bodyPlan = buildDagPlan(run, w.body, nq);
        if (strat == SubmitStrategy::RecordOnce)
            for (DagNode &n : bodyPlan.nodes)
                recordDagNode(run, n, w.body[n.step]);
    } else if (strat == SubmitStrategy::RecordOnce) {
        prerec = recordSegments(run, w.body);
    } else if (strat == SubmitStrategy::Batched) {
        prerec = recordBatches(run, w, bodies, opts.batchN);
    }

    double t0 = run.ctx.now();
    double busy0 = vkm::deviceBusyNs(run.ctx.device);
    if (multiq) {
        // The prologue runs once: record at execution time (recording
        // is free on the simulated clock either way).
        execDag(run, w.prologue, proPlan, true);
        for (uint32_t it = 0; it < w.iterations; ++it) {
            execDag(run, w.body, bodyPlan,
                    strat == SubmitStrategy::ReRecord);
            if (w.converged && w.converged(run.host))
                break;
        }
        res.kernelRegionNs = run.ctx.now() - t0;
        res.deviceBusyNs = vkm::deviceBusyNs(run.ctx.device) - busy0;

        run.execStream(w.epilogue);
        run.flushStream();
        res.totalNs = run.ctx.now() - t_total0;
        res.migratedBytes = vkm::uvmMigratedBytes(run.ctx.device);
        res.faultNs = vkm::uvmFaultNs(run.ctx.device);

        finishRun(w, run.host, res);
        if (host_out)
            *host_out = std::move(run.host);
        return res;
    }
    run.execStream(w.prologue);
    run.flushStream();
    switch (strat) {
      case SubmitStrategy::RecordOnce:
        for (uint32_t it = 0; it < w.iterations; ++it) {
            execRecordOnceIteration(run, w.body, prerec);
            if (w.converged && w.converged(run.host))
                break;
        }
        break;
      case SubmitStrategy::ReRecord:
        for (uint32_t it = 0; it < w.iterations; ++it) {
            run.execStream(w.bodyFor ? bodies[it] : w.body);
            run.flushStream();
            if (w.converged && w.converged(run.host))
                break;
        }
        break;
      case SubmitStrategy::Batched:
        for (const Segment &batch : prerec) {
            run.submitWait(batch.cb);
            res.launches += batch.dispatches;
        }
        break;
    }
    run.flushStream();
    res.kernelRegionNs = run.ctx.now() - t0;
    res.deviceBusyNs = vkm::deviceBusyNs(run.ctx.device) - busy0;

    run.execStream(w.epilogue);
    run.flushStream();
    res.totalNs = run.ctx.now() - t_total0;
    res.migratedBytes = vkm::uvmMigratedBytes(run.ctx.device);
    res.faultNs = vkm::uvmFaultNs(run.ctx.device);

    finishRun(w, run.host, res);
    if (host_out)
        *host_out = std::move(run.host);
    return res;
}

// ---------------------------------------------------------------------------
// OpenCL runner
// ---------------------------------------------------------------------------

RunResult
runWorkloadOcl(const Workload &w, const sim::DeviceSpec &dev,
               HostArrays *host_out)
{
    checkWorkload(w);
    RunResult res;
    res.strategy = "per-launch";
    ocl::Context ctx(dev);
    // A Kernel references its Program non-owningly: keep the programs
    // alive for the whole run.
    std::vector<ocl::Program> programs;
    std::vector<ocl::Kernel> kernels;
    for (const spirv::Module &m : w.kernels) {
        programs.push_back(ocl::createProgramWithSource(ctx, m));
        std::string err;
        if (!ocl::buildProgram(programs.back(), &err)) {
            res.skipReason = err;
            return res;
        }
        ocl::Kernel k = ocl::createKernel(programs.back(), m.name, &err);
        VCB_ASSERT(k.valid(), "kernel creation failed: %s", err.c_str());
        kernels.push_back(k);
    }

    double t_total0 = ctx.hostNowNs();
    std::vector<ocl::Buffer> buffers;
    for (size_t i = 0; i < w.buffers.size(); ++i) {
        const WorkloadBuffer &bd = w.buffers[i];
        buffers.push_back(
            ocl::createBuffer(ctx, ocl::MemReadWrite, bd.bytes));
        if (!buffers.back().valid()) {
            res.skipReason =
                strprintf("out of device memory (buffer %zu, %llu B)",
                          i, (unsigned long long)bd.bytes);
            return res;
        }
        if (!bd.init.empty())
            ocl::enqueueWriteBuffer(ctx, buffers.back(), true, 0,
                                    bd.init.size() * 4, bd.init.data());
    }

    HostArrays host = w.host;
    bool queue_busy = false;
    auto exec = [&](const std::vector<WorkloadStep> &steps) {
        for (const WorkloadStep &s : steps) {
            switch (s.kind) {
              case Kind::Dispatch: {
                const spirv::Module &m = w.kernels[s.kernel];
                ocl::Kernel &k = kernels[s.kernel];
                for (const auto &[binding, buf] : s.bindings)
                    ocl::setKernelArgBuffer(k, binding, buffers[buf]);
                for (uint32_t i = 0; i < s.push.size(); ++i)
                    ocl::setKernelArgScalar(k, i,
                                            resolvePush(s.push[i], host));
                ocl::enqueueNDRangeKernel(ctx, k,
                                          s.groups[0] * m.localSize[0],
                                          s.groups[1] * m.localSize[1],
                                          s.groups[2] * m.localSize[2]);
                ++res.launches;
                queue_busy = true;
                break;
              }
              case Kind::Barrier:
                break; // the in-order queue is the barrier
              case Kind::Sync:
                ctx.finish();
                queue_busy = false;
                break;
              case Kind::Upload:
                if (uploadEnabled(s, host)) {
                    const auto &src = host[s.hostArray];
                    ocl::enqueueWriteBuffer(ctx, buffers[s.buffer],
                                            false, 0, src.size() * 4,
                                            src.data());
                    queue_busy = true;
                }
                break;
              case Kind::Readback: {
                auto &dst = host[s.hostArray];
                ocl::enqueueReadBuffer(ctx, buffers[s.buffer], true, 0,
                                       dst.size() * 4, dst.data());
                queue_busy = false;
                break;
              }
              case Kind::HostCall:
                s.fn(host);
                break;
            }
        }
    };

    double t0 = ctx.hostNowNs();
    exec(w.prologue);
    std::vector<WorkloadStep> scratch;
    for (uint32_t it = 0; it < w.iterations; ++it) {
        exec(bodyOf(w, it, scratch));
        if (w.converged && w.converged(host))
            break;
    }
    if (queue_busy)
        ctx.finish(); // drain enqueue-ahead work (nw) into the region
    res.kernelRegionNs = ctx.hostNowNs() - t0;

    exec(w.epilogue);
    res.totalNs = ctx.hostNowNs() - t_total0;
    res.migratedBytes = ocl::uvmMigratedBytes(ctx);
    res.faultNs = ocl::uvmFaultNs(ctx);

    finishRun(w, host, res);
    if (host_out)
        *host_out = std::move(host);
    return res;
}

// ---------------------------------------------------------------------------
// CUDA runner
// ---------------------------------------------------------------------------

RunResult
runWorkloadCuda(const Workload &w, const sim::DeviceSpec &dev,
                HostArrays *host_out)
{
    checkWorkload(w);
    RunResult res;
    res.strategy = "per-launch";
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    std::vector<cuda::Function> fns;
    for (const spirv::Module &m : w.kernels)
        fns.push_back(rt.loadFunction(m));

    double t_total0 = rt.hostNowNs();
    std::vector<cuda::DevPtr> buffers;
    for (size_t i = 0; i < w.buffers.size(); ++i) {
        const WorkloadBuffer &bd = w.buffers[i];
        buffers.push_back(rt.malloc(bd.bytes));
        if (!buffers.back().valid()) {
            res.skipReason =
                strprintf("out of device memory (buffer %zu, %llu B)",
                          i, (unsigned long long)bd.bytes);
            return res;
        }
        if (!bd.init.empty())
            rt.memcpyHtoD(buffers.back(), bd.init.data(),
                          bd.init.size() * 4);
    }

    HostArrays host = w.host;
    bool queue_busy = false;
    auto exec = [&](const std::vector<WorkloadStep> &steps) {
        for (const WorkloadStep &s : steps) {
            switch (s.kind) {
              case Kind::Dispatch: {
                // cudaLaunchKernel takes buffer args positionally: the
                // kernel's bindings in ascending binding order.
                std::vector<std::pair<uint32_t, size_t>> ordered =
                    s.bindings;
                std::sort(ordered.begin(), ordered.end());
                std::vector<cuda::DevPtr> args;
                for (const auto &[binding, buf] : ordered) {
                    (void)binding;
                    args.push_back(buffers[buf]);
                }
                std::vector<uint32_t> scalars(s.push.size());
                for (size_t i = 0; i < s.push.size(); ++i)
                    scalars[i] = resolvePush(s.push[i], host);
                rt.launchKernel(fns[s.kernel], s.groups[0], s.groups[1],
                                s.groups[2], args, scalars);
                ++res.launches;
                queue_busy = true;
                break;
              }
              case Kind::Barrier:
                break; // streams execute in order
              case Kind::Sync:
                rt.deviceSynchronize();
                queue_busy = false;
                break;
              case Kind::Upload:
                if (uploadEnabled(s, host)) {
                    const auto &src = host[s.hostArray];
                    rt.memcpyHtoD(buffers[s.buffer], src.data(),
                                  src.size() * 4);
                }
                break;
              case Kind::Readback: {
                auto &dst = host[s.hostArray];
                rt.memcpyDtoH(dst.data(), buffers[s.buffer],
                              dst.size() * 4);
                queue_busy = false;
                break;
              }
              case Kind::HostCall:
                s.fn(host);
                break;
            }
        }
    };

    double t0 = rt.hostNowNs();
    exec(w.prologue);
    std::vector<WorkloadStep> scratch;
    for (uint32_t it = 0; it < w.iterations; ++it) {
        exec(bodyOf(w, it, scratch));
        if (w.converged && w.converged(host))
            break;
    }
    if (queue_busy)
        rt.deviceSynchronize();
    res.kernelRegionNs = rt.hostNowNs() - t0;

    exec(w.epilogue);
    res.totalNs = rt.hostNowNs() - t_total0;
    res.migratedBytes = cuda::uvmMigratedBytes(rt);
    res.faultNs = cuda::uvmFaultNs(rt);

    finishRun(w, host, res);
    if (host_out)
        *host_out = std::move(host);
    return res;
}

RunResult
runWorkload(const Workload &w, const sim::DeviceSpec &dev, sim::Api api,
            const WorkloadOptions &opts, HostArrays *host_out)
{
    switch (api) {
      case sim::Api::Vulkan:
        return runWorkloadVulkan(w, dev, opts, host_out);
      case sim::Api::OpenCl:
        return runWorkloadOcl(w, dev, host_out);
      case sim::Api::Cuda:
        return runWorkloadCuda(w, dev, host_out);
    }
    return RunResult();
}

} // namespace vcb::suite

/**
 * @file
 * hotspot — thermal simulation (Structured Grid / Physics).
 *
 * S dependent stencil steps over a g x g die; shared-memory tiled
 * kernel (the benchmark behind the Nexus Vulkan slowdown — weak
 * shared-memory codegen, Sec. V-B2).  CUDA/OpenCL: blocking step
 * loop; Vulkan: one command buffer, descriptor-set ping-pong.
 */

#include "suite/benchmark.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

struct Die
{
    uint32_t g = 0;
    uint32_t steps = 0;
    std::vector<float> temp;
    std::vector<float> power;
    // Rodinia-style physical constants, pre-reduced to the kernel's
    // push-constant form.
    float cc = 0.05f;
    float rxInv = 0.4f;
    float ryInv = 0.4f;
    float rzInv = 0.1f;
    float amb = 80.0f;
};

Die
generateDie(uint32_t g, uint32_t steps, uint64_t seed)
{
    Rng rng(seed);
    Die d;
    d.g = g;
    d.steps = steps;
    d.temp.resize(uint64_t(g) * g);
    d.power.resize(uint64_t(g) * g);
    for (auto &t : d.temp)
        t = rng.nextFloat(70.0f, 90.0f);
    for (auto &p : d.power)
        p = rng.nextFloat(0.0f, 2.0f);
    return d;
}

std::vector<float>
referenceHotspot(const Die &d)
{
    uint32_t g = d.g;
    std::vector<float> cur = d.temp, next(cur.size());
    auto at = [&](const std::vector<float> &v, int64_t r,
                  int64_t c) -> float {
        r = std::min<int64_t>(std::max<int64_t>(r, 0), g - 1);
        c = std::min<int64_t>(std::max<int64_t>(c, 0), g - 1);
        return v[uint64_t(r) * g + uint64_t(c)];
    };
    for (uint32_t s = 0; s < d.steps; ++s) {
        for (uint32_t r = 0; r < g; ++r) {
            for (uint32_t c = 0; c < g; ++c) {
                float centre = cur[uint64_t(r) * g + c];
                float vert = at(cur, int64_t(r) - 1, c) +
                             at(cur, int64_t(r) + 1, c) - 2.0f * centre;
                float horiz = at(cur, r, int64_t(c) - 1) +
                              at(cur, r, int64_t(c) + 1) - 2.0f * centre;
                float delta = d.power[uint64_t(r) * g + c] +
                              vert * d.ryInv + horiz * d.rxInv +
                              (d.amb - centre) * d.rzInv;
                next[uint64_t(r) * g + c] =
                    std::fma(d.cc, delta, centre);
            }
        }
        std::swap(cur, next);
    }
    return cur;
}

std::vector<uint32_t>
pushWords(const Die &d)
{
    std::vector<uint32_t> push(6);
    push[0] = d.g;
    std::memcpy(&push[1], &d.cc, 4);
    std::memcpy(&push[2], &d.rxInv, 4);
    std::memcpy(&push[3], &d.ryInv, 4);
    std::memcpy(&push[4], &d.rzInv, 4);
    std::memcpy(&push[5], &d.amb, 4);
    return push;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const Die &d)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err = createVkKernel(ctx, kernels::buildHotspotStep(), &k);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint64_t bytes = uint64_t(d.g) * d.g * 4;
    auto b_a = ctx.createDeviceBuffer(bytes);
    auto b_b = ctx.createDeviceBuffer(bytes);
    auto b_p = ctx.createDeviceBuffer(bytes);
    ctx.upload(b_a, d.temp.data(), bytes);
    ctx.upload(b_p, d.power.data(), bytes);

    auto s_ab = makeDescriptorSet(ctx, k, {{0, b_a}, {1, b_p}, {2, b_b}});
    auto s_ba = makeDescriptorSet(ctx, k, {{0, b_b}, {1, b_p}, {2, b_a}});

    auto push = pushWords(d);
    uint32_t groups = d.g / kernels::blockSize;

    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    vkm::cmdPushConstants(cb, k.layout, 0,
                          (uint32_t)push.size() * 4, push.data());
    for (uint32_t s = 0; s < d.steps; ++s) {
        vkm::cmdBindDescriptorSet(cb, k.layout, 0,
                                  (s % 2 == 0) ? s_ab : s_ba);
        vkm::cmdDispatch(cb, groups, groups, 1);
        vkm::cmdPipelineBarrier(cb);
        res.launches += 1;
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    double t0 = ctx.now();
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    res.kernelRegionNs = ctx.now() - t0;

    std::vector<float> out(uint64_t(d.g) * d.g);
    ctx.download((d.steps % 2 == 0) ? b_a : b_b, out.data(), bytes);
    res.totalNs = ctx.now() - t_total0;

    res.validationError = compareFloats(out, referenceHotspot(d));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const Die &d)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto prog =
        ocl::createProgramWithSource(ctx, kernels::buildHotspotStep());
    std::string err;
    if (!ocl::buildProgram(prog, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k = ocl::createKernel(prog, "hotspot_step", &err);
    VCB_ASSERT(k.valid(), "kernel creation failed: %s", err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint64_t bytes = uint64_t(d.g) * d.g * 4;
    auto b_a = ocl::createBuffer(ctx, ocl::MemReadWrite, bytes);
    auto b_b = ocl::createBuffer(ctx, ocl::MemReadWrite, bytes);
    auto b_p = ocl::createBuffer(ctx, ocl::MemReadOnly, bytes);
    ocl::enqueueWriteBuffer(ctx, b_a, true, 0, bytes, d.temp.data());
    ocl::enqueueWriteBuffer(ctx, b_p, true, 0, bytes, d.power.data());

    auto push = pushWords(d);
    uint32_t global = d.g;

    double t0 = ctx.hostNowNs();
    for (uint32_t s = 0; s < d.steps; ++s) {
        ocl::setKernelArgBuffer(k, 0, (s % 2 == 0) ? b_a : b_b);
        ocl::setKernelArgBuffer(k, 1, b_p);
        ocl::setKernelArgBuffer(k, 2, (s % 2 == 0) ? b_b : b_a);
        for (uint32_t w = 0; w < push.size(); ++w)
            ocl::setKernelArgScalar(k, w, push[w]);
        ocl::enqueueNDRangeKernel(ctx, k, global, global);
        res.launches += 1;
        ctx.finish();
    }
    res.kernelRegionNs = ctx.hostNowNs() - t0;

    std::vector<float> out(uint64_t(d.g) * d.g);
    ocl::enqueueReadBuffer(ctx, (d.steps % 2 == 0) ? b_a : b_b, true, 0,
                           bytes, out.data());
    res.totalNs = ctx.hostNowNs() - t_total0;

    res.validationError = compareFloats(out, referenceHotspot(d));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runCuda(const sim::DeviceSpec &dev, const Die &d)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f = rt.loadFunction(kernels::buildHotspotStep());

    double t_total0 = rt.hostNowNs();
    uint64_t bytes = uint64_t(d.g) * d.g * 4;
    auto d_a = rt.malloc(bytes);
    auto d_b = rt.malloc(bytes);
    auto d_p = rt.malloc(bytes);
    rt.memcpyHtoD(d_a, d.temp.data(), bytes);
    rt.memcpyHtoD(d_p, d.power.data(), bytes);

    auto push = pushWords(d);
    std::vector<uint32_t> scalars(push.begin(), push.end());
    uint32_t groups = d.g / kernels::blockSize;

    double t0 = rt.hostNowNs();
    for (uint32_t s = 0; s < d.steps; ++s) {
        auto &src = (s % 2 == 0) ? d_a : d_b;
        auto &dst = (s % 2 == 0) ? d_b : d_a;
        rt.launchKernel(f, groups, groups, 1, {src, d_p, dst}, scalars);
        res.launches += 1;
        rt.deviceSynchronize();
    }
    res.kernelRegionNs = rt.hostNowNs() - t0;

    std::vector<float> out(uint64_t(d.g) * d.g);
    rt.memcpyDtoH(out.data(), (d.steps % 2 == 0) ? d_a : d_b, bytes);
    res.totalNs = rt.hostNowNs() - t_total0;

    res.validationError = compareFloats(out, referenceHotspot(d));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

class HotspotBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "hotspot"; }
    std::string fullName() const override
    {
        return "Hotspot Simulation";
    }
    std::string dwarf() const override { return "Structured Grid"; }
    std::string domain() const override { return "Physics"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 512 grid with 8 / 16 / 32 steps.
        return {{"512-08", {256, 8}},
                {"512-16", {256, 16}},
                {"512-32", {256, 32}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"128-8", {128, 8}}, {"128-16", {128, 16}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        Die d = generateDie(static_cast<uint32_t>(cfg.params[0]),
                            static_cast<uint32_t>(cfg.params[1]),
                            workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, d);
          case sim::Api::OpenCl:
            return runOpenCl(dev, d);
          case sim::Api::Cuda:
            return runCuda(dev, d);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeHotspot()
{
    static HotspotBenchmark b;
    return &b;
}

} // namespace vcb::suite

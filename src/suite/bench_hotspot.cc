/**
 * @file
 * hotspot — thermal simulation (Structured Grid / Physics).
 *
 * S dependent stencil steps over a g x g die; shared-memory tiled
 * kernel (the benchmark behind the Nexus Vulkan slowdown — weak
 * shared-memory codegen, Sec. V-B2).  The two buffers ping-pong via
 * alternating binding lists, so the body varies per iteration:
 * preferred Vulkan strategy batched (one command buffer, descriptor
 * ping-pong), with re-record as the sweepable baseline.  CUDA/OpenCL:
 * blocking step loop.
 */

#include "suite/benchmark.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

struct Die
{
    uint32_t g = 0;
    uint32_t steps = 0;
    std::vector<float> temp;
    std::vector<float> power;
    // Rodinia-style physical constants, pre-reduced to the kernel's
    // push-constant form.
    float cc = 0.05f;
    float rxInv = 0.4f;
    float ryInv = 0.4f;
    float rzInv = 0.1f;
    float amb = 80.0f;
};

Die
generateDie(uint32_t g, uint32_t steps, uint64_t seed)
{
    Rng rng(seed);
    Die d;
    d.g = g;
    d.steps = steps;
    d.temp.resize(uint64_t(g) * g);
    d.power.resize(uint64_t(g) * g);
    for (auto &t : d.temp)
        t = rng.nextFloat(70.0f, 90.0f);
    for (auto &p : d.power)
        p = rng.nextFloat(0.0f, 2.0f);
    return d;
}

std::vector<float>
referenceHotspot(const Die &d)
{
    uint32_t g = d.g;
    std::vector<float> cur = d.temp, next(cur.size());
    auto at = [&](const std::vector<float> &v, int64_t r,
                  int64_t c) -> float {
        r = std::min<int64_t>(std::max<int64_t>(r, 0), g - 1);
        c = std::min<int64_t>(std::max<int64_t>(c, 0), g - 1);
        return v[uint64_t(r) * g + uint64_t(c)];
    };
    for (uint32_t s = 0; s < d.steps; ++s) {
        for (uint32_t r = 0; r < g; ++r) {
            for (uint32_t c = 0; c < g; ++c) {
                float centre = cur[uint64_t(r) * g + c];
                float vert = at(cur, int64_t(r) - 1, c) +
                             at(cur, int64_t(r) + 1, c) - 2.0f * centre;
                float horiz = at(cur, r, int64_t(c) - 1) +
                              at(cur, r, int64_t(c) + 1) - 2.0f * centre;
                float delta = d.power[uint64_t(r) * g + c] +
                              vert * d.ryInv + horiz * d.rxInv +
                              (d.amb - centre) * d.rzInv;
                next[uint64_t(r) * g + c] =
                    std::fma(d.cc, delta, centre);
            }
        }
        std::swap(cur, next);
    }
    return cur;
}

std::vector<PushWord>
pushWords(const Die &d)
{
    return {pw(d.g),     pwF(d.cc),    pwF(d.rxInv),
            pwF(d.ryInv), pwF(d.rzInv), pwF(d.amb)};
}

enum BufferIx : size_t { B_TA, B_P, B_TB };
enum HostIx : size_t { H_OUT };

Workload
makeWorkload(Die die)
{
    auto in = std::make_shared<const Die>(std::move(die));
    const Die &d = *in;
    uint64_t bytes = uint64_t(d.g) * d.g * 4;

    Workload w;
    w.name = "hotspot";
    w.kernels = {kernels::buildHotspotStep()};
    w.buffers = {{bytes, wordsOf(d.temp)},
                 {bytes, wordsOf(d.power)},
                 {bytes, {}}};
    w.host = {std::vector<uint32_t>(uint64_t(d.g) * d.g)};

    uint32_t groups = d.g / kernels::blockSize;
    auto push = pushWords(d);
    w.bodyFor = [groups, push](uint32_t s) {
        // Ping-pong: even steps read A write B, odd the reverse.
        bool even = s % 2 == 0;
        return std::vector<WorkloadStep>{
            dispatchStep(0, groups, groups, 1, push,
                         {{0, even ? B_TA : B_TB},
                          {1, B_P},
                          {2, even ? B_TB : B_TA}}),
            barrierStep(), syncStep()};
    };
    w.iterations = d.steps;
    w.epilogue = {
        readbackStep((d.steps % 2 == 0) ? B_TA : B_TB, H_OUT)};
    w.preferred = SubmitStrategy::Batched;
    w.validate = [in](const HostArrays &h) {
        return compareFloats(floatsOf(h[H_OUT]), referenceHotspot(*in));
    };
    return w;
}

class HotspotBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "hotspot"; }
    std::string fullName() const override
    {
        return "Hotspot Simulation";
    }
    std::string dwarf() const override { return "Structured Grid"; }
    std::string domain() const override { return "Physics"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 512 grid with 8 / 16 / 32 steps.
        return {{"512-08", {256, 8}},
                {"512-16", {256, 16}},
                {"512-32", {256, 32}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"128-8", {128, 8}}, {"128-16", {128, 16}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateDie(static_cast<uint32_t>(cfg.params[0]),
                        static_cast<uint32_t>(cfg.params[1]),
                        workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeHotspot()
{
    static HotspotBenchmark b;
    return &b;
}

} // namespace vcb::suite

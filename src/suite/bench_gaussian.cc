/**
 * @file
 * gaussian — Gaussian Elimination (Dense Linear Algebra).
 *
 * n-1 dependent elimination steps of two kernels each (Fan1, Fan2).
 * The per-step push constants (n, t) and dispatch sizes shrink as the
 * elimination proceeds, so the body varies per iteration: the
 * preferred Vulkan strategy is batched (all steps recorded into one
 * command buffer, the paper's method), with re-record-per-iteration as
 * the sweepable naive baseline.  CUDA/OpenCL: blocking multi-kernel
 * iterations.
 */

#include "suite/benchmark.h"

#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

struct LinearSystem
{
    uint32_t n = 0;
    std::vector<float> a;
    std::vector<float> b;
};

LinearSystem
generateSystem(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    LinearSystem s;
    s.n = n;
    s.a.resize(uint64_t(n) * n);
    s.b.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        float row_sum = 0;
        for (uint32_t j = 0; j < n; ++j) {
            float v = rng.nextFloat(0.1f, 1.0f);
            s.a[uint64_t(i) * n + j] = v;
            row_sum += v;
        }
        // Diagonal dominance keeps the elimination numerically stable.
        s.a[uint64_t(i) * n + i] = row_sum + 1.0f;
        s.b[i] = rng.nextFloat(0.0f, 10.0f);
    }
    return s;
}

/** CPU reference: the same elimination order (Fan1 then Fan2). */
void
referenceEliminate(LinearSystem &s, std::vector<float> *m_out)
{
    uint32_t n = s.n;
    std::vector<float> m(uint64_t(n) * n, 0.0f);
    for (uint32_t t = 0; t + 1 < n; ++t) {
        for (uint32_t i = t + 1; i < n; ++i)
            m[uint64_t(i) * n + t] =
                s.a[uint64_t(i) * n + t] / s.a[uint64_t(t) * n + t];
        for (uint32_t i = t + 1; i < n; ++i) {
            float mult = m[uint64_t(i) * n + t];
            for (uint32_t j = t; j < n; ++j)
                s.a[uint64_t(i) * n + j] -=
                    mult * s.a[uint64_t(t) * n + j];
            s.b[i] -= mult * s.b[t];
        }
    }
    if (m_out)
        *m_out = std::move(m);
}

enum BufferIx : size_t { B_A, B_M, B_B };
enum HostIx : size_t { H_A, H_B };

Workload
makeWorkload(LinearSystem s)
{
    auto in = std::make_shared<const LinearSystem>(std::move(s));
    const LinearSystem &sys = *in;
    uint32_t n = sys.n;

    Workload w;
    w.name = "gaussian";
    w.kernels = {kernels::buildGaussianFan1(),
                 kernels::buildGaussianFan2()};
    w.buffers = {{uint64_t(n) * n * 4, wordsOf(sys.a)},
                 {uint64_t(n) * n * 4, {}},
                 {uint64_t(n) * 4, wordsOf(sys.b)}};
    w.host = {std::vector<uint32_t>(uint64_t(n) * n),
              std::vector<uint32_t>(n)};

    w.bodyFor = [n](uint32_t t) {
        uint32_t rows = n - 1 - t;
        uint64_t cells = uint64_t(rows) * (n - t);
        return std::vector<WorkloadStep>{
            dispatchStep(0, (uint32_t)ceilDiv(rows, 256), 1, 1,
                         {pw(n), pw(t)}, {{0, B_A}, {1, B_M}}),
            barrierStep(),
            dispatchStep(1, (uint32_t)ceilDiv(cells, 256), 1, 1,
                         {pw(n), pw(t)},
                         {{0, B_A}, {1, B_M}, {2, B_B}}),
            barrierStep(),
            syncStep()};
    };
    w.iterations = n - 1;
    w.epilogue = {readbackStep(B_A, H_A), readbackStep(B_B, H_B)};
    w.preferred = SubmitStrategy::Batched;
    w.validate = [in](const HostArrays &h) {
        LinearSystem ref = *in;
        referenceEliminate(ref, nullptr);
        std::string err =
            compareFloats(floatsOf(h[H_A]), ref.a, 2e-3, 1e-3);
        if (err.empty())
            err = compareFloats(floatsOf(h[H_B]), ref.b, 2e-3, 1e-3);
        return err;
    };
    return w;
}

class GaussianBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "gaussian"; }
    std::string fullName() const override
    {
        return "Gaussian Elimination";
    }
    std::string dwarf() const override
    {
        return "Dense Linear Algebra";
    }
    std::string domain() const override { return "Linear Algebra"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 208 / 1024 / 2048.
        return {{"208", {96}}, {"1024", {160}}, {"2048", {224}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"208", {48}}, {"416", {80}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateSystem(static_cast<uint32_t>(cfg.params[0]),
                           workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeGaussian()
{
    static GaussianBenchmark b;
    return &b;
}

} // namespace vcb::suite

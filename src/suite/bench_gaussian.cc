/**
 * @file
 * gaussian — Gaussian Elimination (Dense Linear Algebra).
 *
 * n-1 dependent elimination steps of two kernels each (Fan1, Fan2).
 * CUDA/OpenCL: blocking multi-kernel iterations.  Vulkan: all steps in
 * one command buffer, per-step scalars delivered via push constants.
 */

#include "suite/benchmark.h"

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

struct LinearSystem
{
    uint32_t n = 0;
    std::vector<float> a;
    std::vector<float> b;
};

LinearSystem
generateSystem(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    LinearSystem s;
    s.n = n;
    s.a.resize(uint64_t(n) * n);
    s.b.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        float row_sum = 0;
        for (uint32_t j = 0; j < n; ++j) {
            float v = rng.nextFloat(0.1f, 1.0f);
            s.a[uint64_t(i) * n + j] = v;
            row_sum += v;
        }
        // Diagonal dominance keeps the elimination numerically stable.
        s.a[uint64_t(i) * n + i] = row_sum + 1.0f;
        s.b[i] = rng.nextFloat(0.0f, 10.0f);
    }
    return s;
}

/** CPU reference: the same elimination order (Fan1 then Fan2). */
void
referenceEliminate(LinearSystem &s, std::vector<float> *m_out)
{
    uint32_t n = s.n;
    std::vector<float> m(uint64_t(n) * n, 0.0f);
    for (uint32_t t = 0; t + 1 < n; ++t) {
        for (uint32_t i = t + 1; i < n; ++i)
            m[uint64_t(i) * n + t] =
                s.a[uint64_t(i) * n + t] / s.a[uint64_t(t) * n + t];
        for (uint32_t i = t + 1; i < n; ++i) {
            float mult = m[uint64_t(i) * n + t];
            for (uint32_t j = t; j < n; ++j)
                s.a[uint64_t(i) * n + j] -=
                    mult * s.a[uint64_t(t) * n + j];
            s.b[i] -= mult * s.b[t];
        }
    }
    if (m_out)
        *m_out = std::move(m);
}

RunResult
finish(RunResult res, const LinearSystem &sys, std::vector<float> a,
       std::vector<float> b)
{
    LinearSystem ref = sys;
    referenceEliminate(ref, nullptr);
    res.validationError = compareFloats(a, ref.a, 2e-3, 1e-3);
    if (res.validationError.empty())
        res.validationError = compareFloats(b, ref.b, 2e-3, 1e-3);
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const LinearSystem &sys)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k1, k2;
    std::string err =
        createVkKernel(ctx, kernels::buildGaussianFan1(), &k1);
    if (err.empty())
        err = createVkKernel(ctx, kernels::buildGaussianFan2(), &k2);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint32_t n = sys.n;
    uint64_t mat_bytes = uint64_t(n) * n * 4;
    auto b_a = ctx.createDeviceBuffer(mat_bytes);
    auto b_m = ctx.createDeviceBuffer(mat_bytes);
    auto b_b = ctx.createDeviceBuffer(uint64_t(n) * 4);
    ctx.upload(b_a, sys.a.data(), mat_bytes);
    ctx.upload(b_b, sys.b.data(), uint64_t(n) * 4);

    auto s1 = makeDescriptorSet(ctx, k1, {{0, b_a}, {1, b_m}});
    auto s2 = makeDescriptorSet(ctx, k2,
                                {{0, b_a}, {1, b_m}, {2, b_b}});

    // All n-1 steps recorded once; push constants carry (n, t).
    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    for (uint32_t t = 0; t + 1 < n; ++t) {
        uint32_t push[2] = {n, t};
        uint32_t rows = n - 1 - t;
        vkm::cmdBindPipeline(cb, k1.pipeline);
        vkm::cmdBindDescriptorSet(cb, k1.layout, 0, s1);
        vkm::cmdPushConstants(cb, k1.layout, 0, 8, push);
        vkm::cmdDispatch(cb, (uint32_t)ceilDiv(rows, 256), 1, 1);
        vkm::cmdPipelineBarrier(cb);
        vkm::cmdBindPipeline(cb, k2.pipeline);
        vkm::cmdBindDescriptorSet(cb, k2.layout, 0, s2);
        vkm::cmdPushConstants(cb, k2.layout, 0, 8, push);
        uint64_t cells = uint64_t(rows) * (n - t);
        vkm::cmdDispatch(cb, (uint32_t)ceilDiv(cells, 256), 1, 1);
        vkm::cmdPipelineBarrier(cb);
        res.launches += 2;
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    double t0 = ctx.now();
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    res.kernelRegionNs = ctx.now() - t0;

    std::vector<float> a(uint64_t(n) * n), b(n);
    ctx.download(b_a, a.data(), mat_bytes);
    ctx.download(b_b, b.data(), uint64_t(n) * 4);
    res.totalNs = ctx.now() - t_total0;
    return finish(res, sys, std::move(a), std::move(b));
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const LinearSystem &sys)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto p1 = ocl::createProgramWithSource(ctx,
                                           kernels::buildGaussianFan1());
    auto p2 = ocl::createProgramWithSource(ctx,
                                           kernels::buildGaussianFan2());
    std::string err;
    if (!ocl::buildProgram(p1, &err) || !ocl::buildProgram(p2, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k1 = ocl::createKernel(p1, "gaussian_fan1", &err);
    auto k2 = ocl::createKernel(p2, "gaussian_fan2", &err);
    VCB_ASSERT(k1.valid() && k2.valid(), "kernel creation failed: %s",
               err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint32_t n = sys.n;
    uint64_t mat_bytes = uint64_t(n) * n * 4;
    auto b_a = ocl::createBuffer(ctx, ocl::MemReadWrite, mat_bytes);
    auto b_m = ocl::createBuffer(ctx, ocl::MemReadWrite, mat_bytes);
    auto b_b = ocl::createBuffer(ctx, ocl::MemReadWrite,
                                 uint64_t(n) * 4);
    ocl::enqueueWriteBuffer(ctx, b_a, true, 0, mat_bytes, sys.a.data());
    ocl::enqueueWriteBuffer(ctx, b_b, true, 0, uint64_t(n) * 4,
                            sys.b.data());

    ocl::setKernelArgBuffer(k1, 0, b_a);
    ocl::setKernelArgBuffer(k1, 1, b_m);
    ocl::setKernelArgBuffer(k2, 0, b_a);
    ocl::setKernelArgBuffer(k2, 1, b_m);
    ocl::setKernelArgBuffer(k2, 2, b_b);

    double t0 = ctx.hostNowNs();
    for (uint32_t t = 0; t + 1 < n; ++t) {
        uint32_t rows = n - 1 - t;
        ocl::setKernelArgScalar(k1, 0, n);
        ocl::setKernelArgScalar(k1, 1, t);
        ocl::enqueueNDRangeKernel(
            ctx, k1, (uint32_t)ceilDiv(rows, 256) * 256);
        ocl::setKernelArgScalar(k2, 0, n);
        ocl::setKernelArgScalar(k2, 1, t);
        uint64_t cells = uint64_t(rows) * (n - t);
        ocl::enqueueNDRangeKernel(
            ctx, k2, (uint32_t)ceilDiv(cells, 256) * 256);
        res.launches += 2;
        ctx.finish();
    }
    res.kernelRegionNs = ctx.hostNowNs() - t0;

    std::vector<float> a(uint64_t(n) * n), b(n);
    ocl::enqueueReadBuffer(ctx, b_a, true, 0, mat_bytes, a.data());
    ocl::enqueueReadBuffer(ctx, b_b, true, 0, uint64_t(n) * 4, b.data());
    res.totalNs = ctx.hostNowNs() - t_total0;
    return finish(res, sys, std::move(a), std::move(b));
}

RunResult
runCuda(const sim::DeviceSpec &dev, const LinearSystem &sys)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f1 = rt.loadFunction(kernels::buildGaussianFan1());
    auto f2 = rt.loadFunction(kernels::buildGaussianFan2());

    double t_total0 = rt.hostNowNs();
    uint32_t n = sys.n;
    uint64_t mat_bytes = uint64_t(n) * n * 4;
    auto d_a = rt.malloc(mat_bytes);
    auto d_m = rt.malloc(mat_bytes);
    auto d_b = rt.malloc(uint64_t(n) * 4);
    rt.memcpyHtoD(d_a, sys.a.data(), mat_bytes);
    rt.memcpyHtoD(d_b, sys.b.data(), uint64_t(n) * 4);

    double t0 = rt.hostNowNs();
    for (uint32_t t = 0; t + 1 < n; ++t) {
        uint32_t rows = n - 1 - t;
        rt.launchKernel(f1, (uint32_t)ceilDiv(rows, 256), 1, 1,
                        {d_a, d_m}, {n, t});
        uint64_t cells = uint64_t(rows) * (n - t);
        rt.launchKernel(f2, (uint32_t)ceilDiv(cells, 256), 1, 1,
                        {d_a, d_m, d_b}, {n, t});
        res.launches += 2;
        rt.deviceSynchronize();
    }
    res.kernelRegionNs = rt.hostNowNs() - t0;

    std::vector<float> a(uint64_t(n) * n), b(n);
    rt.memcpyDtoH(a.data(), d_a, mat_bytes);
    rt.memcpyDtoH(b.data(), d_b, uint64_t(n) * 4);
    res.totalNs = rt.hostNowNs() - t_total0;
    return finish(res, sys, std::move(a), std::move(b));
}

class GaussianBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "gaussian"; }
    std::string fullName() const override
    {
        return "Gaussian Elimination";
    }
    std::string dwarf() const override
    {
        return "Dense Linear Algebra";
    }
    std::string domain() const override { return "Linear Algebra"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 208 / 1024 / 2048.
        return {{"208", {96}}, {"1024", {160}}, {"2048", {224}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"208", {48}}, {"416", {80}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        LinearSystem sys = generateSystem(
            static_cast<uint32_t>(cfg.params[0]),
            workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, sys);
          case sim::Api::OpenCl:
            return runOpenCl(dev, sys);
          case sim::Api::Cuda:
            return runCuda(dev, sys);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeGaussian()
{
    static GaussianBenchmark b;
    return &b;
}

} // namespace vcb::suite

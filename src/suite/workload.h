/**
 * @file
 * The workload-program layer: one declarative host loop per benchmark,
 * three shared API runners.
 *
 * A Workload describes everything a benchmark's host side does —
 * buffers and their deterministic initial contents, a step list
 * (dispatch, barrier, host sync, upload, readback, host callback), a
 * host loop (fixed trip count or converge-until predicate) and the
 * preferred Vulkan submission strategy.  The three runners execute the
 * same program through the real runtime front-ends (vkm / ocl / cuda),
 * so the paper's cross-API comparison is made once, in one place,
 * instead of being re-implemented by every bench_*.cc driver.
 *
 * Because the submission strategy is a runner parameter rather than
 * hand-written driver code, every Vulkan benchmark whose program shape
 * permits it can be swept across strategies (the paper's Sec. V
 * launch-overhead analysis, suite-wide):
 *
 *  - RecordOnce  — record the loop body's command buffer(s) once and
 *                  resubmit every iteration (bfs, kmeans: the body is
 *                  identical per iteration, only buffer contents move);
 *  - ReRecord    — reset + re-record per iteration (required whenever
 *                  a push value is computed by the host mid-loop, e.g.
 *                  srad's q0sqr, and the paper's "naive" baseline);
 *  - Batched     — record N iterations (default: all) into one command
 *                  buffer with barriers and submit once per batch (the
 *                  paper's flagship optimisation: pathfinder, gaussian,
 *                  hotspot, lud, nw, cfd).
 *
 * OpenCL and CUDA have no command buffers; their runner issues one
 * launch per dispatch step (the multi-kernel method), with Sync steps
 * mapping to clFinish / cudaDeviceSynchronize.
 */

#ifndef VCB_SUITE_WORKLOAD_H
#define VCB_SUITE_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/device.h"
#include "spirv/module.h"

namespace vcb::suite {

/** Outcome of one benchmark execution. */
struct RunResult
{
    /** False when the configuration cannot run (missing API support,
     *  driver failure, out of memory) — skipReason says why. */
    bool ok = false;
    std::string skipReason;

    /** The paper's metric: kernel-only region on the host clock (ns),
     *  i.e. launches + kernels + synchronisation, excluding context
     *  setup, JIT, transfers and host pre/post-processing. */
    double kernelRegionNs = 0;
    /** End-to-end time including transfers (ns). */
    double totalNs = 0;
    /** Kernel launches (CL/CUDA) or recorded dispatches (Vulkan). */
    uint64_t launches = 0;

    /** Submission strategy the run used: a strategyName() for Vulkan,
     *  "per-launch" for OpenCL/CUDA. */
    std::string strategy;

    /** Compute queues the Vulkan run spread dispatches over (1 for the
     *  serial path and for OpenCL/CUDA). */
    uint32_t queuesUsed = 1;
    /** Summed device-busy time over all queues inside the kernel
     *  region (Vulkan only; 0 elsewhere).  busy/elapsed > 1 is the
     *  signature of genuine multi-queue overlap. */
    double deviceBusyNs = 0;

    /** UVM paging traffic inside the run: bytes migrated device-ward
     *  by first-touch faults, and the migration + fault time charged
     *  to the device clock.  Both 0 on non-paging devices. */
    uint64_t migratedBytes = 0;
    double faultNs = 0;

    /** Output matched the CPU reference. */
    bool validated = false;
    std::string validationError;
};

/** How the Vulkan runner turns the loop body into queue submissions. */
enum class SubmitStrategy
{
    /** Record the body's command buffer(s) once, resubmit per
     *  iteration.  Needs a uniform body with immediate push values. */
    RecordOnce = 0,
    /** Reset + re-record per iteration.  Always applicable. */
    ReRecord = 1,
    /** Record N iterations into one command buffer (barriers between),
     *  one submission per batch.  Needs a pure-device body and a fixed
     *  trip count. */
    Batched = 2,
};

/** Number of strategies (array sizing / sweeps). */
constexpr int submitStrategyCount = 3;

/** Printable strategy name ("record-once", "re-record", "batched"). */
const char *strategyName(SubmitStrategy s);

/** Mutable host-side state of a running workload: one word vector per
 *  declared host array (uploads read them, readbacks and host
 *  callbacks write them). */
using HostArrays = std::vector<std::vector<uint32_t>>;

/** One push-constant word of a dispatch: an immediate value, or a
 *  reference into a host array resolved when the dispatch is issued
 *  (recorded for Vulkan, launched for OpenCL/CUDA) — how host-computed
 *  per-iteration values like srad's q0sqr reach the kernel. */
struct PushWord
{
    uint32_t value = 0;
    size_t hostArray = SIZE_MAX; ///< SIZE_MAX = immediate
    size_t hostWord = 0;

    bool immediate() const { return hostArray == SIZE_MAX; }
};

/** Immediate push word. */
PushWord pw(uint32_t v);
/** Immediate push word from a float's bits. */
PushWord pwF(float v);
/** Host-resolved push word: host[array][word] at issue time. */
PushWord pwHost(size_t array, size_t word);

/** One step of a workload's host program. */
struct WorkloadStep
{
    enum class Kind
    {
        /** Launch kernel `kernel` over `groups` workgroups with `push`
         *  constants and `bindings` (binding number -> buffer index). */
        Dispatch,
        /** Execution dependency between dispatches.  A Vulkan pipeline
         *  barrier; implicit on the OpenCL/CUDA in-order queues. */
        Barrier,
        /** Host synchronisation point: clFinish /
         *  cudaDeviceSynchronize; ends the current Vulkan command
         *  buffer segment (submit + fence wait). */
        Sync,
        /** Copy host[hostArray] into buffer `buffer` (optionally only
         *  when host[condArray][condWord] != 0). */
        Upload,
        /** Blocking copy of buffer `buffer` into host[hostArray]
         *  (the array's current size decides the byte count). */
        Readback,
        /** Arbitrary host computation over the host arrays (centroid
         *  updates, reduction folds...).  Runs outside device time. */
        HostCall,
    };

    Kind kind = Kind::Dispatch;

    // Dispatch
    size_t kernel = 0;
    uint32_t groups[3] = {1, 1, 1};
    std::vector<PushWord> push;
    std::vector<std::pair<uint32_t, size_t>> bindings;

    // Upload / Readback
    size_t buffer = 0;
    size_t hostArray = 0;
    size_t condArray = SIZE_MAX; ///< Upload only; SIZE_MAX = always
    size_t condWord = 0;

    // HostCall
    std::function<void(HostArrays &)> fn;

    /** Indices of earlier steps in the same list this step depends on
     *  (each must be < this step's own index, so list order is a valid
     *  topological order).  Empty = conservative: after everything
     *  before it.  Only dag workloads declare deps; the serial runners
     *  (OpenCL, CUDA, single-queue Vulkan) execute in list order and
     *  ignore them. */
    std::vector<size_t> deps;
};

/** Step factories (the declarative vocabulary of bench_*.cc). */
WorkloadStep dispatchStep(size_t kernel, uint32_t gx, uint32_t gy,
                          uint32_t gz, std::vector<PushWord> push,
                          std::vector<std::pair<uint32_t, size_t>>
                              bindings);
WorkloadStep barrierStep();
WorkloadStep syncStep();
WorkloadStep uploadStep(size_t buffer, size_t host_array);
WorkloadStep uploadIfStep(size_t buffer, size_t host_array,
                          size_t cond_array, size_t cond_word);
WorkloadStep readbackStep(size_t buffer, size_t host_array);
WorkloadStep hostStep(std::function<void(HostArrays &)> fn);
/** Attach declared dependencies to a step (dag workloads). */
WorkloadStep withDeps(WorkloadStep s, std::vector<size_t> deps);

/** One device buffer of a workload. */
struct WorkloadBuffer
{
    uint64_t bytes = 0;
    /** Deterministic initial contents; empty = left zeroed.  Uploaded
     *  before the timed region (counted in totalNs only). */
    std::vector<uint32_t> init;
    /** Vulkan: allocate host-visible and keep it persistently mapped,
     *  so body uploads/readbacks are plain memory traffic (bfs's stop
     *  flag).  Ignored by OpenCL/CUDA. */
    bool hostVisible = false;
};

/**
 * A benchmark's whole host program, declared once and executed by all
 * three API runners.
 *
 * Execution model (identical on every API):
 *
 *   [create buffers, upload initial contents]         —— totalNs only
 *   t0
 *   prologue steps                                    —— kernelRegionNs
 *   for it in [0, iterations):
 *       body steps (bodyFor(it) when per-iteration)
 *       if converged && converged(host): break
 *   t1 = implicit final sync
 *   epilogue steps (result downloads)                 —— totalNs only
 *   validate(host)
 *
 * A converge-until workload (converged != nullptr) must use the
 * uniform `body` (not bodyFor) — its per-iteration work is identical
 * by construction, only buffer contents move.
 */
struct Workload
{
    std::string name;
    std::vector<spirv::Module> kernels;
    std::vector<WorkloadBuffer> buffers;
    /** Initial host-array contents (mutable run state). */
    HostArrays host;

    /** One-time steps inside the timed region (kmeans's transpose). */
    std::vector<WorkloadStep> prologue;
    /** Uniform loop body, used when bodyFor is empty. */
    std::vector<WorkloadStep> body;
    /** Per-iteration body for statically varying loops (gaussian's
     *  (n, t) pushes, hotspot's ping-pong bindings). */
    std::function<std::vector<WorkloadStep>(uint32_t)> bodyFor;
    /** Loop trip count (UINT32_MAX for converge-until loops). */
    uint32_t iterations = 1;
    /** Optional convergence predicate, checked after each iteration. */
    std::function<bool(const HostArrays &)> converged;
    /** Untimed result downloads, after the kernel region. */
    std::vector<WorkloadStep> epilogue;

    /** The strategy the paper's method would pick for this program —
     *  what Benchmark::run uses unless the caller overrides it. */
    SubmitStrategy preferred = SubmitStrategy::ReRecord;

    /** True when the step lists carry meaningful `deps` edges, i.e.
     *  steps with no path between them are independent and the Vulkan
     *  runner may spread them over multiple compute queues
     *  (WorkloadOptions::queueCount).  Requires a uniform body (no
     *  bodyFor) and no Barrier steps in prologue/body — ordering is
     *  expressed by the edges, not by list position. */
    bool dag = false;

    /** Compare the final host arrays against a CPU reference; empty
     *  string = validated. */
    std::function<std::string(const HostArrays &)> validate;
};

/**
 * Whether the Vulkan runner can execute `w` under strategy `s`:
 * ReRecord always; RecordOnce needs a uniform body whose pushes are
 * all immediate; Batched needs a fixed trip count and pure-device
 * bodies (dispatch/barrier/sync only, immediate pushes).
 */
bool strategyApplicable(const Workload &w, SubmitStrategy s);

/** All applicable strategies, in enum order. */
std::vector<SubmitStrategy> applicableStrategies(const Workload &w);

/** Runner options (Vulkan submission axis; OpenCL/CUDA ignore it). */
struct WorkloadOptions
{
    /** Vulkan strategy; unset = the workload's preferred. */
    std::optional<SubmitStrategy> strategy;
    /** Batched: iterations per command buffer; 0 = all in one. */
    uint32_t batchN = 0;
    /** Vulkan multi-queue mode: spread a dag workload's independent
     *  dispatch chains over up to this many compute queues (clamped to
     *  the device's computeQueueCount), joining cross-queue edges with
     *  semaphores.  0 = the serial single-queue path.  Requires
     *  Workload::dag; Batched does not apply (it submits whole
     *  iterations, leaving nothing to overlap). */
    uint32_t queueCount = 0;
};

/** Execute through the Vulkan-mini front-end.  `host_out`, when
 *  non-null, receives the final host arrays (bit-identity tests). */
RunResult runWorkloadVulkan(const Workload &w, const sim::DeviceSpec &dev,
                            const WorkloadOptions &opts = {},
                            HostArrays *host_out = nullptr);

/** Execute through the OpenCL-mini front-end (per-launch method). */
RunResult runWorkloadOcl(const Workload &w, const sim::DeviceSpec &dev,
                         HostArrays *host_out = nullptr);

/** Execute through the CUDA-mini front-end (per-launch method). */
RunResult runWorkloadCuda(const Workload &w, const sim::DeviceSpec &dev,
                          HostArrays *host_out = nullptr);

/** Dispatch on `api` (the single entry point Benchmark::run uses). */
RunResult runWorkload(const Workload &w, const sim::DeviceSpec &dev,
                      sim::Api api, const WorkloadOptions &opts = {},
                      HostArrays *host_out = nullptr);

} // namespace vcb::suite

#endif // VCB_SUITE_WORKLOAD_H

/**
 * @file
 * srad — Speckle Reducing Anisotropic Diffusion (Structured Grid /
 * Image Processing), a Rodinia family the paper's suite inherits.
 *
 * Host structure (all APIs): every iteration needs the image mean and
 * variance, so the host dispatches the reduction, reads the partial
 * sums back, folds them into q0sqr, and only then can it issue the two
 * stencil steps with q0sqr as a push value.  The readback in the
 * middle of every iteration means no API can run the loop purely
 * enqueue-ahead; Vulkan still batches the two stencil dispatches into
 * one submission with a pipeline barrier between them.
 */

#include "suite/benchmark.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

struct Image
{
    uint32_t g = 0;     ///< image edge (multiple of 16)
    uint32_t iters = 0; ///< diffusion iterations
    float lambda = 0.05f;
    std::vector<float> j;
};

Image
generateImage(uint32_t g, uint32_t iters, uint64_t seed)
{
    Rng rng(seed);
    Image im;
    im.g = g;
    im.iters = iters;
    im.j.resize(uint64_t(g) * g);
    for (auto &v : im.j)
        v = rng.nextFloat(1.0f, 2.0f);
    return im;
}

/** Fold device (or mirrored) partial sums into q0sqr — the one copy
 *  of the host-side statistics math, shared by the CPU reference and
 *  every API runner so all paths stay bit-identical. */
float
foldQ0sqr(const std::vector<float> &psum, const std::vector<float> &psum2,
          uint32_t n)
{
    float sum = 0.0f, sum2 = 0.0f;
    for (size_t blk = 0; blk < psum.size(); ++blk) {
        sum = sum + psum[blk];
        sum2 = sum2 + psum2[blk];
    }
    const float nf = (float)n;
    float mean = sum / nf;
    float m2 = mean * mean;
    float var = sum2 / nf - m2;
    return var / m2;
}

/** Mirror of srad_reduce's tree (per 256-lane block), folded through
 *  foldQ0sqr exactly as the runners fold the device partials. */
float
q0sqrOf(const std::vector<float> &j, uint32_t n)
{
    uint32_t blocks = (uint32_t)ceilDiv(n, 256);
    std::vector<float> psum(blocks), psum2(blocks);
    for (uint32_t blk = 0; blk < blocks; ++blk) {
        float p[256], p2[256];
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t gi = blk * 256 + i;
            float v = gi < n ? j[gi] : 0.0f;
            p[i] = v;
            p2[i] = v * v;
        }
        for (uint32_t str = 128; str >= 1; str /= 2) {
            for (uint32_t i = 0; i < str; ++i) {
                p[i] = p[i] + p[i + str];
                p2[i] = p2[i] + p2[i + str];
            }
        }
        psum[blk] = p[0];
        psum2[blk] = p2[0];
    }
    return foldQ0sqr(psum, psum2, n);
}

/** From-scratch CPU reference mirroring the kernels' operation order
 *  (named temporaries keep mul+add pairs uncontracted). */
std::vector<float>
referenceSrad(const Image &im)
{
    const uint32_t g = im.g, n = g * g;
    std::vector<float> j = im.j, c(n), dn(n), ds(n), dw(n), de(n);
    auto clampi = [&](int32_t v) {
        return std::min(std::max(v, 0), (int32_t)g - 1);
    };
    for (uint32_t it = 0; it < im.iters; ++it) {
        float q0 = q0sqrOf(j, n);
        for (int32_t r = 0; r < (int32_t)g; ++r) {
            for (int32_t col = 0; col < (int32_t)g; ++col) {
                size_t idx = size_t(r) * g + col;
                float jc = j[idx];
                auto at = [&](int32_t rr, int32_t cc) {
                    return j[size_t(clampi(rr)) * g + clampi(cc)];
                };
                dn[idx] = at(r - 1, col) - jc;
                ds[idx] = at(r + 1, col) - jc;
                dw[idx] = at(r, col - 1) - jc;
                de[idx] = at(r, col + 1) - jc;
                float sqa = dn[idx] * dn[idx];
                float sqb = ds[idx] * ds[idx];
                float sqc = dw[idx] * dw[idx];
                float sqd = de[idx] * de[idx];
                float sq = (sqa + sqb) + (sqc + sqd);
                float jc2 = jc * jc;
                float g2 = sq / jc2;
                float lsum = (dn[idx] + ds[idx]) + (dw[idx] + de[idx]);
                float l = lsum / jc;
                float hg = 0.5f * g2;
                float ll = l * l;
                float sl = 0.0625f * ll;
                float num = hg - sl;
                float qt = 0.25f * l;
                float den = 1.0f + qt;
                float dd = den * den;
                float qsqr = num / dd;
                float qd = qsqr - q0;
                float q1 = 1.0f + q0;
                float qq = q0 * q1;
                float den2 = qd / qq;
                float e1 = 1.0f + den2;
                float cval = 1.0f / e1;
                c[idx] = std::fmin(std::fmax(cval, 0.0f), 1.0f);
            }
        }
        for (int32_t r = 0; r < (int32_t)g; ++r) {
            for (int32_t col = 0; col < (int32_t)g; ++col) {
                size_t idx = size_t(r) * g + col;
                float cc = c[idx];
                float cs = c[size_t(clampi(r + 1)) * g + col];
                float ce = c[size_t(r) * g + clampi(col + 1)];
                float d = cc * dn[idx];
                float t1 = cs * ds[idx];
                d = d + t1;
                float t2 = cc * dw[idx];
                d = d + t2;
                float t3 = ce * de[idx];
                d = d + t3;
                float lam4 = 0.25f * im.lambda;
                j[idx] = std::fma(lam4, d, j[idx]);
            }
        }
    }
    return j;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const Image &im)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k_red, k_s1, k_s2;
    std::string err = createVkKernel(ctx, kernels::buildSradReduce(), &k_red);
    if (err.empty())
        err = createVkKernel(ctx, kernels::buildSradStep1(), &k_s1);
    if (err.empty())
        err = createVkKernel(ctx, kernels::buildSradStep2(), &k_s2);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    const uint32_t g = im.g, n = g * g;
    const uint32_t blocks = (uint32_t)ceilDiv(n, 256);
    uint64_t bytes = uint64_t(n) * 4;
    auto b_j = ctx.createDeviceBuffer(bytes);
    auto b_psum = ctx.createDeviceBuffer(uint64_t(blocks) * 4);
    auto b_psum2 = ctx.createDeviceBuffer(uint64_t(blocks) * 4);
    auto b_c = ctx.createDeviceBuffer(bytes);
    auto b_dn = ctx.createDeviceBuffer(bytes);
    auto b_ds = ctx.createDeviceBuffer(bytes);
    auto b_dw = ctx.createDeviceBuffer(bytes);
    auto b_de = ctx.createDeviceBuffer(bytes);
    ctx.upload(b_j, im.j.data(), bytes);

    auto s_red = makeDescriptorSet(ctx, k_red,
                                   {{0, b_j}, {1, b_psum}, {2, b_psum2}});
    auto s_s1 = makeDescriptorSet(ctx, k_s1,
                                  {{0, b_j},
                                   {1, b_c},
                                   {2, b_dn},
                                   {3, b_ds},
                                   {4, b_dw},
                                   {5, b_de}});
    auto s_s2 = makeDescriptorSet(ctx, k_s2,
                                  {{0, b_j},
                                   {1, b_c},
                                   {2, b_dn},
                                   {3, b_ds},
                                   {4, b_dw},
                                   {5, b_de}});

    // The reduction command buffer never changes: record once,
    // resubmit each iteration.
    vkm::CommandBuffer cb_red, cb_steps;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb_red),
               "allocateCommandBuffer");
    vkm::check(
        vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb_steps),
        "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb_red), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb_red, k_red.pipeline);
    vkm::cmdBindDescriptorSet(cb_red, k_red.layout, 0, s_red);
    vkm::cmdPushConstants(cb_red, k_red.layout, 0, 4, &n);
    vkm::cmdDispatch(cb_red, blocks, 1, 1);
    vkm::check(vkm::endCommandBuffer(cb_red), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
    std::vector<float> psum(blocks), psum2(blocks);
    const uint32_t tiles = g / kernels::blockSize;

    double t0 = ctx.now();
    for (uint32_t it = 0; it < im.iters; ++it) {
        vkm::SubmitInfo si_red;
        si_red.commandBuffers.push_back(cb_red);
        vkm::check(vkm::queueSubmit(ctx.queue, {si_red}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(ctx.device, {fence}),
                   "waitForFences");
        vkm::check(vkm::resetFences(ctx.device, {fence}), "resetFences");
        ctx.download(b_psum, psum.data(), uint64_t(blocks) * 4);
        ctx.download(b_psum2, psum2.data(), uint64_t(blocks) * 4);
        float q0 = foldQ0sqr(psum, psum2, n);

        // Both stencil steps in one submission; the q0sqr push value
        // changes every iteration, so the command buffer is re-recorded.
        vkm::check(vkm::resetCommandBuffer(cb_steps), "resetCommandBuffer");
        vkm::check(vkm::beginCommandBuffer(cb_steps), "beginCommandBuffer");
        uint32_t push1[2] = {g, std::bit_cast<uint32_t>(q0)};
        vkm::cmdBindPipeline(cb_steps, k_s1.pipeline);
        vkm::cmdBindDescriptorSet(cb_steps, k_s1.layout, 0, s_s1);
        vkm::cmdPushConstants(cb_steps, k_s1.layout, 0, 8, push1);
        vkm::cmdDispatch(cb_steps, tiles, tiles, 1);
        vkm::cmdPipelineBarrier(cb_steps);
        uint32_t push2[2] = {g, std::bit_cast<uint32_t>(im.lambda)};
        vkm::cmdBindPipeline(cb_steps, k_s2.pipeline);
        vkm::cmdBindDescriptorSet(cb_steps, k_s2.layout, 0, s_s2);
        vkm::cmdPushConstants(cb_steps, k_s2.layout, 0, 8, push2);
        vkm::cmdDispatch(cb_steps, tiles, tiles, 1);
        vkm::check(vkm::endCommandBuffer(cb_steps), "endCommandBuffer");

        vkm::SubmitInfo si_steps;
        si_steps.commandBuffers.push_back(cb_steps);
        vkm::check(vkm::queueSubmit(ctx.queue, {si_steps}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(ctx.device, {fence}),
                   "waitForFences");
        vkm::check(vkm::resetFences(ctx.device, {fence}), "resetFences");
        res.launches += 3;
    }
    res.kernelRegionNs = ctx.now() - t0;

    std::vector<float> out(n);
    ctx.download(b_j, out.data(), bytes);
    res.totalNs = ctx.now() - t_total0;

    res.validationError = compareFloats(out, referenceSrad(im));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const Image &im)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto p_red = ocl::createProgramWithSource(ctx, kernels::buildSradReduce());
    auto p_s1 = ocl::createProgramWithSource(ctx, kernels::buildSradStep1());
    auto p_s2 = ocl::createProgramWithSource(ctx, kernels::buildSradStep2());
    std::string err;
    if (!ocl::buildProgram(p_red, &err) || !ocl::buildProgram(p_s1, &err) ||
        !ocl::buildProgram(p_s2, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k_red = ocl::createKernel(p_red, "srad_reduce", &err);
    auto k_s1 = ocl::createKernel(p_s1, "srad_step1", &err);
    auto k_s2 = ocl::createKernel(p_s2, "srad_step2", &err);
    VCB_ASSERT(k_red.valid() && k_s1.valid() && k_s2.valid(),
               "kernel creation failed: %s", err.c_str());

    double t_total0 = ctx.hostNowNs();
    const uint32_t g = im.g, n = g * g;
    const uint32_t blocks = (uint32_t)ceilDiv(n, 256);
    uint64_t bytes = uint64_t(n) * 4;
    auto b_j = ocl::createBuffer(ctx, ocl::MemReadWrite, bytes);
    auto b_psum = ocl::createBuffer(ctx, ocl::MemReadWrite,
                                    uint64_t(blocks) * 4);
    auto b_psum2 = ocl::createBuffer(ctx, ocl::MemReadWrite,
                                     uint64_t(blocks) * 4);
    auto b_c = ocl::createBuffer(ctx, ocl::MemReadWrite, bytes);
    auto b_dn = ocl::createBuffer(ctx, ocl::MemReadWrite, bytes);
    auto b_ds = ocl::createBuffer(ctx, ocl::MemReadWrite, bytes);
    auto b_dw = ocl::createBuffer(ctx, ocl::MemReadWrite, bytes);
    auto b_de = ocl::createBuffer(ctx, ocl::MemReadWrite, bytes);
    ocl::enqueueWriteBuffer(ctx, b_j, true, 0, bytes, im.j.data());

    ocl::setKernelArgBuffer(k_red, 0, b_j);
    ocl::setKernelArgBuffer(k_red, 1, b_psum);
    ocl::setKernelArgBuffer(k_red, 2, b_psum2);
    ocl::setKernelArgScalar(k_red, 0, n);
    for (auto *k : {&k_s1, &k_s2}) {
        ocl::setKernelArgBuffer(*k, 0, b_j);
        ocl::setKernelArgBuffer(*k, 1, b_c);
        ocl::setKernelArgBuffer(*k, 2, b_dn);
        ocl::setKernelArgBuffer(*k, 3, b_ds);
        ocl::setKernelArgBuffer(*k, 4, b_dw);
        ocl::setKernelArgBuffer(*k, 5, b_de);
        ocl::setKernelArgScalar(*k, 0, g);
    }
    ocl::setKernelArgScalar(k_s2, 1, std::bit_cast<uint32_t>(im.lambda));

    std::vector<float> psum(blocks), psum2(blocks);
    double t0 = ctx.hostNowNs();
    for (uint32_t it = 0; it < im.iters; ++it) {
        ocl::enqueueNDRangeKernel(ctx, k_red, blocks * 256);
        ocl::enqueueReadBuffer(ctx, b_psum, true, 0,
                               uint64_t(blocks) * 4, psum.data());
        ocl::enqueueReadBuffer(ctx, b_psum2, true, 0,
                               uint64_t(blocks) * 4, psum2.data());
        float q0 = foldQ0sqr(psum, psum2, n);
        ocl::setKernelArgScalar(k_s1, 1, std::bit_cast<uint32_t>(q0));
        ocl::enqueueNDRangeKernel(ctx, k_s1, g, g);
        ocl::enqueueNDRangeKernel(ctx, k_s2, g, g);
        res.launches += 3;
        ctx.finish();
    }
    res.kernelRegionNs = ctx.hostNowNs() - t0;

    std::vector<float> out(n);
    ocl::enqueueReadBuffer(ctx, b_j, true, 0, bytes, out.data());
    res.totalNs = ctx.hostNowNs() - t_total0;

    res.validationError = compareFloats(out, referenceSrad(im));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runCuda(const sim::DeviceSpec &dev, const Image &im)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f_red = rt.loadFunction(kernels::buildSradReduce());
    auto f_s1 = rt.loadFunction(kernels::buildSradStep1());
    auto f_s2 = rt.loadFunction(kernels::buildSradStep2());

    double t_total0 = rt.hostNowNs();
    const uint32_t g = im.g, n = g * g;
    const uint32_t blocks = (uint32_t)ceilDiv(n, 256);
    uint64_t bytes = uint64_t(n) * 4;
    auto d_j = rt.malloc(bytes);
    auto d_psum = rt.malloc(uint64_t(blocks) * 4);
    auto d_psum2 = rt.malloc(uint64_t(blocks) * 4);
    auto d_c = rt.malloc(bytes);
    auto d_dn = rt.malloc(bytes);
    auto d_ds = rt.malloc(bytes);
    auto d_dw = rt.malloc(bytes);
    auto d_de = rt.malloc(bytes);
    rt.memcpyHtoD(d_j, im.j.data(), bytes);

    const uint32_t tiles = g / kernels::blockSize;
    std::vector<float> psum(blocks), psum2(blocks);

    double t0 = rt.hostNowNs();
    for (uint32_t it = 0; it < im.iters; ++it) {
        rt.launchKernel(f_red, blocks, 1, 1, {d_j, d_psum, d_psum2}, {n});
        rt.memcpyDtoH(psum.data(), d_psum, uint64_t(blocks) * 4);
        rt.memcpyDtoH(psum2.data(), d_psum2, uint64_t(blocks) * 4);
        float q0 = foldQ0sqr(psum, psum2, n);
        rt.launchKernel(f_s1, tiles, tiles, 1,
                        {d_j, d_c, d_dn, d_ds, d_dw, d_de},
                        {g, std::bit_cast<uint32_t>(q0)});
        rt.launchKernel(f_s2, tiles, tiles, 1,
                        {d_j, d_c, d_dn, d_ds, d_dw, d_de},
                        {g, std::bit_cast<uint32_t>(im.lambda)});
        res.launches += 3;
        rt.deviceSynchronize();
    }
    res.kernelRegionNs = rt.hostNowNs() - t0;

    std::vector<float> out(n);
    rt.memcpyDtoH(out.data(), d_j, bytes);
    res.totalNs = rt.hostNowNs() - t_total0;

    res.validationError = compareFloats(out, referenceSrad(im));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

class SradBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "srad"; }
    std::string fullName() const override
    {
        return "Speckle Reducing Anisotropic Diffusion";
    }
    std::string dwarf() const override { return "Structured Grid"; }
    std::string domain() const override { return "Image Processing"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Rodinia runs 502x458; the simulated grids are 16-aligned.
        return {{"128", {128, 4}},
                {"256", {256, 4}},
                {"512", {512, 4}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"64", {64, 2}}, {"128", {128, 2}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        Image im = generateImage(static_cast<uint32_t>(cfg.params[0]),
                                 static_cast<uint32_t>(cfg.params[1]),
                                 workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, im);
          case sim::Api::OpenCl:
            return runOpenCl(dev, im);
          case sim::Api::Cuda:
            return runCuda(dev, im);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeSrad()
{
    static SradBenchmark b;
    return &b;
}

} // namespace vcb::suite

/**
 * @file
 * srad — Speckle Reducing Anisotropic Diffusion (Structured Grid /
 * Image Processing), a Rodinia family the paper's suite inherits.
 *
 * Host structure (all APIs): every iteration needs the image mean and
 * variance, so the host dispatches the reduction, reads the partial
 * sums back, folds them into q0sqr, and only then can it issue the two
 * stencil steps with q0sqr as a push value.  The readback in the
 * middle of every iteration means no API can run the loop purely
 * enqueue-ahead, and the host-computed q0sqr push pins Vulkan to the
 * re-record strategy (a command buffer recorded earlier would bake a
 * stale value) — srad is the suite's one inherently re-record
 * workload, next to streamcluster.
 */

#include "suite/benchmark.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

struct Image
{
    uint32_t g = 0;     ///< image edge (multiple of 16)
    uint32_t iters = 0; ///< diffusion iterations
    float lambda = 0.05f;
    std::vector<float> j;
};

Image
generateImage(uint32_t g, uint32_t iters, uint64_t seed)
{
    Rng rng(seed);
    Image im;
    im.g = g;
    im.iters = iters;
    im.j.resize(uint64_t(g) * g);
    for (auto &v : im.j)
        v = rng.nextFloat(1.0f, 2.0f);
    return im;
}

/** Fold device (or mirrored) partial sums into q0sqr — the one copy
 *  of the host-side statistics math, shared by the CPU reference and
 *  the workload's host callback so all paths stay bit-identical. */
float
foldQ0sqr(const std::vector<float> &psum, const std::vector<float> &psum2,
          uint32_t n)
{
    float sum = 0.0f, sum2 = 0.0f;
    for (size_t blk = 0; blk < psum.size(); ++blk) {
        sum = sum + psum[blk];
        sum2 = sum2 + psum2[blk];
    }
    const float nf = (float)n;
    float mean = sum / nf;
    float m2 = mean * mean;
    float var = sum2 / nf - m2;
    return var / m2;
}

/** Mirror of srad_reduce's tree (per 256-lane block), folded through
 *  foldQ0sqr exactly as the runners fold the device partials. */
float
q0sqrOf(const std::vector<float> &j, uint32_t n)
{
    uint32_t blocks = (uint32_t)ceilDiv(n, 256);
    std::vector<float> psum(blocks), psum2(blocks);
    for (uint32_t blk = 0; blk < blocks; ++blk) {
        float p[256], p2[256];
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t gi = blk * 256 + i;
            float v = gi < n ? j[gi] : 0.0f;
            p[i] = v;
            p2[i] = v * v;
        }
        for (uint32_t str = 128; str >= 1; str /= 2) {
            for (uint32_t i = 0; i < str; ++i) {
                p[i] = p[i] + p[i + str];
                p2[i] = p2[i] + p2[i + str];
            }
        }
        psum[blk] = p[0];
        psum2[blk] = p2[0];
    }
    return foldQ0sqr(psum, psum2, n);
}

/** From-scratch CPU reference mirroring the kernels' operation order
 *  (named temporaries keep mul+add pairs uncontracted). */
std::vector<float>
referenceSrad(const Image &im)
{
    const uint32_t g = im.g, n = g * g;
    std::vector<float> j = im.j, c(n), dn(n), ds(n), dw(n), de(n);
    auto clampi = [&](int32_t v) {
        return std::min(std::max(v, 0), (int32_t)g - 1);
    };
    for (uint32_t it = 0; it < im.iters; ++it) {
        float q0 = q0sqrOf(j, n);
        for (int32_t r = 0; r < (int32_t)g; ++r) {
            for (int32_t col = 0; col < (int32_t)g; ++col) {
                size_t idx = size_t(r) * g + col;
                float jc = j[idx];
                auto at = [&](int32_t rr, int32_t cc) {
                    return j[size_t(clampi(rr)) * g + clampi(cc)];
                };
                dn[idx] = at(r - 1, col) - jc;
                ds[idx] = at(r + 1, col) - jc;
                dw[idx] = at(r, col - 1) - jc;
                de[idx] = at(r, col + 1) - jc;
                float sqa = dn[idx] * dn[idx];
                float sqb = ds[idx] * ds[idx];
                float sqc = dw[idx] * dw[idx];
                float sqd = de[idx] * de[idx];
                float sq = (sqa + sqb) + (sqc + sqd);
                float jc2 = jc * jc;
                float g2 = sq / jc2;
                float lsum = (dn[idx] + ds[idx]) + (dw[idx] + de[idx]);
                float l = lsum / jc;
                float hg = 0.5f * g2;
                float ll = l * l;
                float sl = 0.0625f * ll;
                float num = hg - sl;
                float qt = 0.25f * l;
                float den = 1.0f + qt;
                float dd = den * den;
                float qsqr = num / dd;
                float qd = qsqr - q0;
                float q1 = 1.0f + q0;
                float qq = q0 * q1;
                float den2 = qd / qq;
                float e1 = 1.0f + den2;
                float cval = 1.0f / e1;
                c[idx] = std::fmin(std::fmax(cval, 0.0f), 1.0f);
            }
        }
        for (int32_t r = 0; r < (int32_t)g; ++r) {
            for (int32_t col = 0; col < (int32_t)g; ++col) {
                size_t idx = size_t(r) * g + col;
                float cc = c[idx];
                float cs = c[size_t(clampi(r + 1)) * g + col];
                float ce = c[size_t(r) * g + clampi(col + 1)];
                float d = cc * dn[idx];
                float t1 = cs * ds[idx];
                d = d + t1;
                float t2 = cc * dw[idx];
                d = d + t2;
                float t3 = ce * de[idx];
                d = d + t3;
                float lam4 = 0.25f * im.lambda;
                j[idx] = std::fma(lam4, d, j[idx]);
            }
        }
    }
    return j;
}

enum BufferIx : size_t
{
    B_J,
    B_PSUM,
    B_PSUM2,
    B_C,
    B_DN,
    B_DS,
    B_DW,
    B_DE
};
enum HostIx : size_t { H_PSUM, H_PSUM2, H_Q0, H_J };

Workload
makeWorkload(Image image)
{
    auto in = std::make_shared<const Image>(std::move(image));
    const Image &im = *in;
    const uint32_t g = im.g, n = g * g;
    const uint32_t blocks = (uint32_t)ceilDiv(n, 256);
    const uint32_t tiles = g / kernels::blockSize;
    uint64_t bytes = uint64_t(n) * 4;

    Workload w;
    w.name = "srad";
    w.kernels = {kernels::buildSradReduce(), kernels::buildSradStep1(),
                 kernels::buildSradStep2()};
    w.buffers = {{bytes, wordsOf(im.j)},
                 {uint64_t(blocks) * 4, {}},
                 {uint64_t(blocks) * 4, {}},
                 {bytes, {}},
                 {bytes, {}},
                 {bytes, {}},
                 {bytes, {}},
                 {bytes, {}}};
    w.host = {std::vector<uint32_t>(blocks),
              std::vector<uint32_t>(blocks), {0u},
              std::vector<uint32_t>(n)};

    std::vector<std::pair<uint32_t, size_t>> stencil_bindings = {
        {0, B_J}, {1, B_C}, {2, B_DN}, {3, B_DS}, {4, B_DW}, {5, B_DE}};
    w.body = {
        dispatchStep(0, blocks, 1, 1, {pw(n)},
                     {{0, B_J}, {1, B_PSUM}, {2, B_PSUM2}}),
        readbackStep(B_PSUM, H_PSUM),
        readbackStep(B_PSUM2, H_PSUM2),
        hostStep([n](HostArrays &h) {
            float q0 = foldQ0sqr(floatsOf(h[H_PSUM]),
                                 floatsOf(h[H_PSUM2]), n);
            h[H_Q0][0] = std::bit_cast<uint32_t>(q0);
        }),
        // Both stencil steps in one submission; q0sqr is resolved from
        // the host fold when the dispatch is issued.
        dispatchStep(1, tiles, tiles, 1, {pw(g), pwHost(H_Q0, 0)},
                     stencil_bindings),
        barrierStep(),
        dispatchStep(2, tiles, tiles, 1, {pw(g), pwF(im.lambda)},
                     stencil_bindings),
        syncStep(),
    };
    w.iterations = im.iters;
    w.epilogue = {readbackStep(B_J, H_J)};
    w.preferred = SubmitStrategy::ReRecord;
    w.validate = [in](const HostArrays &h) {
        return compareFloats(floatsOf(h[H_J]), referenceSrad(*in));
    };
    return w;
}

class SradBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "srad"; }
    std::string fullName() const override
    {
        return "Speckle Reducing Anisotropic Diffusion";
    }
    std::string dwarf() const override { return "Structured Grid"; }
    std::string domain() const override { return "Image Processing"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Rodinia runs 502x458; the simulated grids are 16-aligned.
        return {{"128", {128, 4}},
                {"256", {256, 4}},
                {"512", {512, 4}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"64", {64, 2}}, {"128", {128, 2}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateImage(static_cast<uint32_t>(cfg.params[0]),
                          static_cast<uint32_t>(cfg.params[1]),
                          workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeSrad()
{
    static SradBenchmark b;
    return &b;
}

} // namespace vcb::suite

/**
 * @file
 * The strided memory-bandwidth microbenchmark (paper Sec. V-A1 and
 * V-B1; Figures 1 and 3), runnable under all three APIs.
 *
 * The measured quantity is useful-byte bandwidth: rounds * threads *
 * 4 bytes divided by the kernel-region time.  Under Vulkan the stride
 * is delivered by vkCmdPushConstants inside the command buffer — the
 * access pattern that exposes the Snapdragon push-constant quirk.
 */

#ifndef VCB_SUITE_BANDWIDTH_H
#define VCB_SUITE_BANDWIDTH_H

#include <cstdint>
#include <vector>

#include "sim/device.h"

namespace vcb::suite {

struct BandwidthPoint
{
    uint32_t stride = 1; ///< in elements (4 bytes each)
    double gbPerSec = 0;
};

struct BandwidthConfig
{
    uint32_t threads = 16384; ///< concurrent reader threads
    uint32_t rounds = 64;     ///< reads per thread (8-row window)
    uint32_t repeats = 3;     ///< timed kernel repetitions per stride
};

/**
 * Run the strided-read sweep for the given strides.
 * @return one point per stride (monotone layout of Figs. 1/3).
 */
std::vector<BandwidthPoint>
runBandwidthSweep(const sim::DeviceSpec &dev, sim::Api api,
                  const std::vector<uint32_t> &strides,
                  const BandwidthConfig &cfg = BandwidthConfig());

} // namespace vcb::suite

#endif // VCB_SUITE_BANDWIDTH_H

/**
 * @file
 * The strided memory-bandwidth microbenchmark (paper Sec. V-A1 and
 * V-B1; Figures 1 and 3), runnable under all three APIs.
 *
 * The measured quantity is useful-byte bandwidth: rounds * threads *
 * 4 bytes divided by the kernel-region time.  Under Vulkan the stride
 * is delivered by vkCmdPushConstants inside the command buffer — the
 * access pattern that exposes the Snapdragon push-constant quirk.
 */

#ifndef VCB_SUITE_BANDWIDTH_H
#define VCB_SUITE_BANDWIDTH_H

#include <cstdint>
#include <vector>

#include "sim/device.h"

namespace vcb::suite {

struct BandwidthPoint
{
    uint32_t stride = 1; ///< in elements (4 bytes each)
    double gbPerSec = 0;
};

struct BandwidthConfig
{
    uint32_t threads = 16384; ///< concurrent reader threads
    uint32_t rounds = 64;     ///< reads per thread (8-row window)
    uint32_t repeats = 3;     ///< timed kernel repetitions per stride
};

/**
 * Run the strided-read sweep for the given strides.
 * @return one point per stride (monotone layout of Figs. 1/3).
 */
std::vector<BandwidthPoint>
runBandwidthSweep(const sim::DeviceSpec &dev, sim::Api api,
                  const std::vector<uint32_t> &strides,
                  const BandwidthConfig &cfg = BandwidthConfig());

/** One working-set point of the oversubscription sweep. */
struct OversubPoint
{
    double factor = 0;            ///< working set / device-local heap
    uint64_t workingSetBytes = 0; ///< actual buffer size (rounded to
                                  ///< a whole thread grid)
    double gbPerSec = 0;          ///< useful-byte bandwidth, including
                                  ///< migration stalls
    uint64_t migratedBytes = 0;   ///< UVM pages migrated on first touch
    double faultNs = 0;           ///< total migration + fault time
};

struct OversubConfig
{
    /** Working-set sizes as multiples of deviceHeapBytes; factors
     *  above 1.0 oversubscribe the heap on UVM parts. */
    std::vector<double> factors = {0.5, 0.75, 1.0, 1.25, 1.5, 2.0};
    uint32_t rounds = 8;  ///< unit-stride reads per thread per pass
    uint32_t repeats = 1; ///< timed kernel repetitions per factor
};

/**
 * The oversubscribed-bandwidth sweep: a unit-stride read over working
 * sets from cfg.factors x deviceHeapBytes.  Each factor runs in a
 * FRESH context (heap accounting starts from zero), so points are
 * independent: factors <= 1.0 stay device-local, factors > 1.0 page
 * through the UVM pool and pay first-touch migration plus the
 * oversubscribed-bandwidth derate.  Only meaningful on devices with
 * uvmPagingEnabled(); on hard-cap parts the > 1.0 factors fail
 * allocation and report zero bandwidth.
 */
std::vector<OversubPoint>
runOversubSweep(const sim::DeviceSpec &dev, sim::Api api,
                const OversubConfig &cfg = OversubConfig());

} // namespace vcb::suite

#endif // VCB_SUITE_BANDWIDTH_H

/**
 * @file
 * nn — K-Nearest Neighbors (Dense Linear Algebra / Data Mining).
 *
 * A single distance kernel over the record set; the host selects the
 * K nearest afterwards (outside the kernel-time region, as in
 * Rodinia).  No inter-launch dependencies: all three APIs issue one
 * launch/submission, and the one-dispatch body sweeps all three
 * Vulkan strategies trivially.
 */

#include "suite/benchmark.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

struct Records
{
    uint32_t n = 0;
    float qLat = 30.0f, qLng = 90.0f;
    std::vector<float> lat, lng;
};

Records
generateRecords(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Records r;
    r.n = n;
    r.lat.resize(n);
    r.lng.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        r.lat[i] = rng.nextFloat(0.0f, 90.0f);
        r.lng[i] = rng.nextFloat(0.0f, 180.0f);
    }
    return r;
}

std::vector<float>
referenceDistances(const Records &r)
{
    std::vector<float> d(r.n);
    for (uint32_t i = 0; i < r.n; ++i) {
        float dlat = r.lat[i] - r.qLat;
        float dlng = r.lng[i] - r.qLng;
        d[i] = std::sqrt(std::fma(dlat, dlat, dlng * dlng));
    }
    return d;
}

enum BufferIx : size_t { B_LAT, B_LNG, B_DIST };
enum HostIx : size_t { H_DIST };

Workload
makeWorkload(Records recs)
{
    auto in = std::make_shared<const Records>(std::move(recs));
    const Records &r = *in;
    uint64_t bytes = uint64_t(r.n) * 4;

    Workload w;
    w.name = "nn";
    w.kernels = {kernels::buildNnEuclid()};
    w.buffers = {{bytes, wordsOf(r.lat)},
                 {bytes, wordsOf(r.lng)},
                 {bytes, {}}};
    w.host = {std::vector<uint32_t>(r.n)};

    w.body = {dispatchStep(0, (uint32_t)ceilDiv(r.n, 256), 1, 1,
                           {pw(r.n), pwF(r.qLat), pwF(r.qLng)},
                           {{0, B_LAT}, {1, B_LNG}, {2, B_DIST}})};
    w.epilogue = {readbackStep(B_DIST, H_DIST)};
    w.preferred = SubmitStrategy::Batched;
    w.validate = [in](const HostArrays &h) {
        std::vector<float> dist = floatsOf(h[H_DIST]);
        std::string err = compareFloats(dist, referenceDistances(*in));
        // Host-side top-K selection (outside the timed region), kept
        // to mirror the Rodinia host behaviour.
        std::partial_sort(dist.begin(),
                          dist.begin() +
                              std::min<size_t>(5, dist.size()),
                          dist.end());
        return err;
    };
    return w;
}

class NnBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "nn"; }
    std::string fullName() const override
    {
        return "K-Nearest Neighbors";
    }
    std::string dwarf() const override
    {
        return "Dense Linear Algebra";
    }
    std::string domain() const override { return "Data Mining"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 256K / 8M / 16M records.
        return {{"256K", {262144}}, {"8M", {1048576}}, {"16M", {2097152}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"256K", {65536}}, {"8M", {262144}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateRecords(static_cast<uint32_t>(cfg.params[0]),
                            workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeNn()
{
    static NnBenchmark b;
    return &b;
}

} // namespace vcb::suite

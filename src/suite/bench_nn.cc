/**
 * @file
 * nn — K-Nearest Neighbors (Dense Linear Algebra / Data Mining).
 *
 * The distance pass is embarrassingly parallel, so the record set is
 * split into independent slices — one dispatch per slice, declared
 * with no dependency edges between them (Workload::dag).  On the
 * multi-queue Vulkan path the slices spread across compute queues and
 * genuinely overlap; every serial path (OpenCL, CUDA, single-queue
 * Vulkan) just runs them back to back.  Per-record math is unchanged
 * from the single-dispatch version, so results are bit-identical at
 * any queue count.  The host selects the K nearest afterwards
 * (outside the kernel-time region, as in Rodinia).
 */

#include "suite/benchmark.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

struct Records
{
    uint32_t n = 0;
    float qLat = 30.0f, qLng = 90.0f;
    std::vector<float> lat, lng;
};

Records
generateRecords(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Records r;
    r.n = n;
    r.lat.resize(n);
    r.lng.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        r.lat[i] = rng.nextFloat(0.0f, 90.0f);
        r.lng[i] = rng.nextFloat(0.0f, 180.0f);
    }
    return r;
}

std::vector<float>
referenceDistances(const Records &r)
{
    std::vector<float> d(r.n);
    for (uint32_t i = 0; i < r.n; ++i) {
        float dlat = r.lat[i] - r.qLat;
        float dlng = r.lng[i] - r.qLng;
        d[i] = std::sqrt(std::fma(dlat, dlat, dlng * dlng));
    }
    return d;
}

/** Independent record slices (one dispatch each; all sizes are
 *  multiples of this, but the split handles remainders anyway). */
constexpr size_t kChunks = 4;

// Buffers: per chunk c, {lat, lng, dist} at 3c / 3c+1 / 3c+2.
// Host arrays: per chunk c, the slice's distances at index c.

Workload
makeWorkload(Records recs)
{
    auto in = std::make_shared<const Records>(std::move(recs));
    const Records &r = *in;

    Workload w;
    w.name = "nn";
    w.kernels = {kernels::buildNnEuclid()};
    w.dag = true;

    std::vector<size_t> bounds(kChunks + 1);
    for (size_t c = 0; c <= kChunks; ++c)
        bounds[c] = size_t(r.n) * c / kChunks;
    for (size_t c = 0; c < kChunks; ++c) {
        uint32_t cn = uint32_t(bounds[c + 1] - bounds[c]);
        std::vector<float> lat(r.lat.begin() + bounds[c],
                               r.lat.begin() + bounds[c + 1]);
        std::vector<float> lng(r.lng.begin() + bounds[c],
                               r.lng.begin() + bounds[c + 1]);
        uint64_t bytes = uint64_t(cn) * 4;
        w.buffers.push_back({bytes, wordsOf(lat)});
        w.buffers.push_back({bytes, wordsOf(lng)});
        w.buffers.push_back({bytes, {}});
        w.host.push_back(std::vector<uint32_t>(cn));
        w.body.push_back(dispatchStep(
            0, (uint32_t)ceilDiv(cn, 256), 1, 1,
            {pw(cn), pwF(r.qLat), pwF(r.qLng)},
            {{0, 3 * c}, {1, 3 * c + 1}, {2, 3 * c + 2}}));
        w.epilogue.push_back(readbackStep(3 * c + 2, c));
    }
    w.preferred = SubmitStrategy::Batched;
    w.validate = [in](const HostArrays &h) {
        std::vector<float> dist;
        for (size_t c = 0; c < kChunks; ++c) {
            std::vector<float> part = floatsOf(h[c]);
            dist.insert(dist.end(), part.begin(), part.end());
        }
        std::string err = compareFloats(dist, referenceDistances(*in));
        // Host-side top-K selection (outside the timed region), kept
        // to mirror the Rodinia host behaviour.
        std::partial_sort(dist.begin(),
                          dist.begin() +
                              std::min<size_t>(5, dist.size()),
                          dist.end());
        return err;
    };
    return w;
}

class NnBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "nn"; }
    std::string fullName() const override
    {
        return "K-Nearest Neighbors";
    }
    std::string dwarf() const override
    {
        return "Dense Linear Algebra";
    }
    std::string domain() const override { return "Data Mining"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 256K / 8M / 16M records.
        return {{"256K", {262144}}, {"8M", {1048576}}, {"16M", {2097152}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"256K", {65536}}, {"8M", {262144}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateRecords(static_cast<uint32_t>(cfg.params[0]),
                            workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeNn()
{
    static NnBenchmark b;
    return &b;
}

} // namespace vcb::suite

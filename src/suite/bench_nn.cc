/**
 * @file
 * nn — K-Nearest Neighbors (Dense Linear Algebra / Data Mining).
 *
 * A single distance kernel over the record set; the host selects the
 * K nearest afterwards (outside the kernel-time region, as in
 * Rodinia).  No inter-launch dependencies: all three APIs issue one
 * launch/submission.
 */

#include "suite/benchmark.h"

#include <cmath>

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

struct Records
{
    uint32_t n = 0;
    float qLat = 30.0f, qLng = 90.0f;
    std::vector<float> lat, lng;
};

Records
generateRecords(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Records r;
    r.n = n;
    r.lat.resize(n);
    r.lng.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        r.lat[i] = rng.nextFloat(0.0f, 90.0f);
        r.lng[i] = rng.nextFloat(0.0f, 180.0f);
    }
    return r;
}

std::vector<float>
referenceDistances(const Records &r)
{
    std::vector<float> d(r.n);
    for (uint32_t i = 0; i < r.n; ++i) {
        float dlat = r.lat[i] - r.qLat;
        float dlng = r.lng[i] - r.qLng;
        d[i] = std::sqrt(std::fma(dlat, dlat, dlng * dlng));
    }
    return d;
}

RunResult
finish(RunResult res, const Records &r, std::vector<float> dist)
{
    res.validationError = compareFloats(dist, referenceDistances(r));
    res.validated = res.validationError.empty();
    // Host-side top-K selection (outside the timed region), kept to
    // mirror the Rodinia host behaviour.
    std::partial_sort(dist.begin(),
                      dist.begin() + std::min<size_t>(5, dist.size()),
                      dist.end());
    res.ok = true;
    return res;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const Records &r)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err = createVkKernel(ctx, kernels::buildNnEuclid(), &k);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint64_t bytes = uint64_t(r.n) * 4;
    auto b_lat = ctx.createDeviceBuffer(bytes);
    auto b_lng = ctx.createDeviceBuffer(bytes);
    auto b_dist = ctx.createDeviceBuffer(bytes);
    ctx.upload(b_lat, r.lat.data(), bytes);
    ctx.upload(b_lng, r.lng.data(), bytes);

    auto set = makeDescriptorSet(ctx, k,
                                 {{0, b_lat}, {1, b_lng}, {2, b_dist}});
    uint32_t push[3] = {r.n, 0, 0};
    std::memcpy(&push[1], &r.qLat, 4);
    std::memcpy(&push[2], &r.qLng, 4);

    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
    vkm::cmdPushConstants(cb, k.layout, 0, 12, push);
    vkm::cmdDispatch(cb, (uint32_t)ceilDiv(r.n, 256), 1, 1);
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");
    res.launches = 1;

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    double t0 = ctx.now();
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    res.kernelRegionNs = ctx.now() - t0;

    std::vector<float> dist(r.n);
    ctx.download(b_dist, dist.data(), bytes);
    res.totalNs = ctx.now() - t_total0;
    return finish(std::move(res), r, std::move(dist));
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const Records &r)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto prog = ocl::createProgramWithSource(ctx, kernels::buildNnEuclid());
    std::string err;
    if (!ocl::buildProgram(prog, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k = ocl::createKernel(prog, "nn_euclid", &err);
    VCB_ASSERT(k.valid(), "kernel creation failed: %s", err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint64_t bytes = uint64_t(r.n) * 4;
    auto b_lat = ocl::createBuffer(ctx, ocl::MemReadOnly, bytes);
    auto b_lng = ocl::createBuffer(ctx, ocl::MemReadOnly, bytes);
    auto b_dist = ocl::createBuffer(ctx, ocl::MemWriteOnly, bytes);
    ocl::enqueueWriteBuffer(ctx, b_lat, true, 0, bytes, r.lat.data());
    ocl::enqueueWriteBuffer(ctx, b_lng, true, 0, bytes, r.lng.data());

    ocl::setKernelArgBuffer(k, 0, b_lat);
    ocl::setKernelArgBuffer(k, 1, b_lng);
    ocl::setKernelArgBuffer(k, 2, b_dist);
    ocl::setKernelArgScalar(k, 0, r.n);
    ocl::setKernelArgScalarF(k, 1, r.qLat);
    ocl::setKernelArgScalarF(k, 2, r.qLng);

    double t0 = ctx.hostNowNs();
    ocl::enqueueNDRangeKernel(ctx, k,
                              (uint32_t)ceilDiv(r.n, 256) * 256);
    res.launches = 1;
    ctx.finish();
    res.kernelRegionNs = ctx.hostNowNs() - t0;

    std::vector<float> dist(r.n);
    ocl::enqueueReadBuffer(ctx, b_dist, true, 0, bytes, dist.data());
    res.totalNs = ctx.hostNowNs() - t_total0;
    return finish(std::move(res), r, std::move(dist));
}

RunResult
runCuda(const sim::DeviceSpec &dev, const Records &r)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f = rt.loadFunction(kernels::buildNnEuclid());

    double t_total0 = rt.hostNowNs();
    uint64_t bytes = uint64_t(r.n) * 4;
    auto d_lat = rt.malloc(bytes);
    auto d_lng = rt.malloc(bytes);
    auto d_dist = rt.malloc(bytes);
    rt.memcpyHtoD(d_lat, r.lat.data(), bytes);
    rt.memcpyHtoD(d_lng, r.lng.data(), bytes);

    uint32_t lat_bits, lng_bits;
    std::memcpy(&lat_bits, &r.qLat, 4);
    std::memcpy(&lng_bits, &r.qLng, 4);

    double t0 = rt.hostNowNs();
    rt.launchKernel(f, (uint32_t)ceilDiv(r.n, 256), 1, 1,
                    {d_lat, d_lng, d_dist}, {r.n, lat_bits, lng_bits});
    res.launches = 1;
    rt.deviceSynchronize();
    res.kernelRegionNs = rt.hostNowNs() - t0;

    std::vector<float> dist(r.n);
    rt.memcpyDtoH(dist.data(), d_dist, bytes);
    res.totalNs = rt.hostNowNs() - t_total0;
    return finish(std::move(res), r, std::move(dist));
}

class NnBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "nn"; }
    std::string fullName() const override
    {
        return "K-Nearest Neighbors";
    }
    std::string dwarf() const override
    {
        return "Dense Linear Algebra";
    }
    std::string domain() const override { return "Data Mining"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 256K / 8M / 16M records.
        return {{"256K", {262144}}, {"8M", {1048576}}, {"16M", {2097152}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"256K", {65536}}, {"8M", {262144}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        Records r = generateRecords(static_cast<uint32_t>(cfg.params[0]),
                                    workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, r);
          case sim::Api::OpenCl:
            return runOpenCl(dev, r);
          case sim::Api::Cuda:
            return runCuda(dev, r);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeNn()
{
    static NnBenchmark b;
    return &b;
}

} // namespace vcb::suite

/**
 * @file
 * cfd — CFD solver (Unstructured Grid / Fluid Dynamics).
 *
 * A fixed number of solver iterations, each running three dependent
 * kernels (step factor, flux, time step).  Vulkan must bind three
 * compute pipelines per iteration inside its command buffer — the
 * overhead the paper identifies as eroding cfd's command-buffer
 * savings; iteration count does not grow with input size, so neither
 * does the speedup (Sec. V-A2).  The body is uniform and pure-device,
 * so cfd sweeps all three submission strategies.
 *
 * Mobile: the paper reports the cfd datasets do not fit on either
 * mobile platform, so hard-cap mobile parts skip it wholesale.  Parts
 * modeling UVM oversubscription (uvm_oversubscription > 1) page the
 * working set into the shared pool instead and run it, paying
 * first-touch migration and the oversubscribed-bandwidth derate.
 */

#include "suite/benchmark.h"

#include <cmath>
#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

constexpr uint32_t iterations = 20; // Rodinia runs 2000; scaled
constexpr float rkFactor = 0.8f;

struct Mesh
{
    uint32_t n = 0;
    std::vector<float> variables;  // 5n (SoA)
    std::vector<float> areas;      // n
    std::vector<int32_t> neighbors; // 4n (SoA; -1 = boundary)
    std::vector<float> normals;    // 4n
};

Mesh
generateMesh(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Mesh m;
    m.n = n;
    m.variables.resize(5ull * n);
    m.areas.resize(n);
    m.neighbors.resize(4ull * n);
    m.normals.resize(4ull * n);
    uint32_t width = 1;
    while (width * width < n)
        ++width;
    for (uint32_t i = 0; i < n; ++i) {
        m.variables[i] = rng.nextFloat(1.0f, 2.0f);               // rho
        m.variables[n + i] = rng.nextFloat(-0.5f, 0.5f);          // mx
        m.variables[2ull * n + i] = rng.nextFloat(-0.5f, 0.5f);   // my
        m.variables[3ull * n + i] = rng.nextFloat(-0.5f, 0.5f);   // mz
        m.variables[4ull * n + i] = rng.nextFloat(2.0f, 3.0f);    // E
        m.areas[i] = rng.nextFloat(0.5f, 2.0f);
        int64_t cand[4] = {int64_t(i) - 1, int64_t(i) + 1,
                           int64_t(i) - width, int64_t(i) + width};
        for (uint32_t nb = 0; nb < 4; ++nb) {
            m.neighbors[uint64_t(nb) * n + i] =
                (cand[nb] >= 0 && cand[nb] < int64_t(n))
                    ? static_cast<int32_t>(cand[nb])
                    : -1;
            m.normals[uint64_t(nb) * n + i] = rng.nextFloat(0.5f, 1.5f);
        }
    }
    return m;
}

/** CPU reference mirroring the three kernels' float order. */
std::vector<float>
referenceCfd(const Mesh &mesh)
{
    uint32_t n = mesh.n;
    std::vector<float> var = mesh.variables;
    std::vector<float> sf(n), flux(5ull * n);
    for (uint32_t it = 0; it < iterations; ++it) {
        for (uint32_t i = 0; i < n; ++i) {
            float rho = std::fmax(var[i], 1e-6f);
            float mx = var[n + i], my = var[2ull * n + i],
                  mz = var[3ull * n + i];
            float e = var[4ull * n + i];
            float m2 = std::fma(mx, mx, std::fma(my, my, mz * mz));
            float v2 = m2 / (rho * rho);
            float p = 0.4f * (e - 0.5f * (rho * v2));
            p = std::fmax(p, 1e-6f);
            float c = std::sqrt(1.4f * p / rho);
            float speed = std::sqrt(v2);
            float area = std::fmax(mesh.areas[i], 1e-6f);
            sf[i] = 0.5f / (std::sqrt(area) * (speed + c));
        }
        for (uint32_t i = 0; i < n; ++i) {
            float acc[5] = {0, 0, 0, 0, 0};
            for (uint32_t nb = 0; nb < 4; ++nb) {
                int32_t j = mesh.neighbors[uint64_t(nb) * n + i];
                if (j < 0)
                    continue;
                float w = mesh.normals[uint64_t(nb) * n + i];
                float weight =
                    (0.12f * std::sqrt(w)) / (1.0f + w);
                for (uint32_t v = 0; v < 5; ++v) {
                    float diff = var[uint64_t(v) * n + uint32_t(j)] -
                                 var[uint64_t(v) * n + i];
                    acc[v] = std::fma(diff, weight, acc[v]);
                }
            }
            for (uint32_t v = 0; v < 5; ++v)
                flux[uint64_t(v) * n + i] = acc[v];
        }
        for (uint32_t i = 0; i < n; ++i) {
            float factor = rkFactor * sf[i];
            for (uint32_t v = 0; v < 5; ++v)
                var[uint64_t(v) * n + i] =
                    std::fma(factor, flux[uint64_t(v) * n + i],
                             var[uint64_t(v) * n + i]);
        }
    }
    return var;
}

enum BufferIx : size_t { B_VAR, B_AREA, B_NB, B_NORM, B_SF, B_FLUX };
enum HostIx : size_t { H_VAR };

Workload
makeWorkload(Mesh m)
{
    auto in = std::make_shared<const Mesh>(std::move(m));
    const Mesh &mesh = *in;
    uint32_t n = mesh.n;

    Workload w;
    w.name = "cfd";
    w.kernels = {kernels::buildCfdStepFactor(),
                 kernels::buildCfdComputeFlux(),
                 kernels::buildCfdTimeStep()};
    w.buffers = {{5ull * n * 4, wordsOf(mesh.variables)},
                 {uint64_t(n) * 4, wordsOf(mesh.areas)},
                 {4ull * n * 4, wordsOf(mesh.neighbors)},
                 {4ull * n * 4, wordsOf(mesh.normals)},
                 {uint64_t(n) * 4, {}},
                 {5ull * n * 4, {}}};
    w.host = {std::vector<uint32_t>(5ull * n)};

    uint32_t groups = (uint32_t)ceilDiv(n, 128);
    // Three pipeline binds per iteration — cfd's Vulkan tax.
    w.body = {dispatchStep(0, groups, 1, 1, {pw(n)},
                           {{0, B_VAR}, {1, B_AREA}, {2, B_SF}}),
              barrierStep(),
              dispatchStep(1, groups, 1, 1, {pw(n)},
                           {{0, B_VAR},
                            {1, B_NB},
                            {2, B_NORM},
                            {3, B_FLUX}}),
              barrierStep(),
              dispatchStep(2, groups, 1, 1, {pw(n), pwF(rkFactor)},
                           {{0, B_VAR}, {1, B_SF}, {2, B_FLUX}}),
              barrierStep(),
              syncStep()};
    w.iterations = iterations;
    w.epilogue = {readbackStep(B_VAR, H_VAR)};
    w.preferred = SubmitStrategy::Batched;
    w.validate = [in](const HostArrays &h) {
        return compareFloats(floatsOf(h[H_VAR]), referenceCfd(*in),
                             1e-3, 1e-4);
    };
    return w;
}

class CfdBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "cfd"; }
    std::string fullName() const override { return "CFD Solver"; }
    std::string dwarf() const override { return "Unstructured Grid"; }
    std::string domain() const override { return "Fluid Dynamics"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: fvcorr domains with 97K / 193K / 232K elements.
        return {{"97K", {24576}}, {"193K", {49152}}, {"232K", {61440}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        // Working sets sized to overflow the modeled mobile device
        // heaps: UVM parts page them in (with first-touch migration
        // and oversubscription derates); hard-cap parts skip.
        return {{"97K", {24576}}, {"193K", {49152}}};
    }
    std::string
    mobileSkipReason(const sim::DeviceSpec &dev) const override
    {
        if (dev.uvmPagingEnabled())
            return "";
        return "dataset exceeds mobile device-local heap (paper: 'cfd "
               "could not fit on both platforms')";
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateMesh(static_cast<uint32_t>(cfg.params[0]),
                         workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeCfd()
{
    static CfdBenchmark b;
    return &b;
}

} // namespace vcb::suite
